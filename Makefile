GO ?= go
BIN := bin

.PHONY: build test race bench lint raxmlvet fmt clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# lint mirrors the CI gates that need no network: gofmt, go vet, and the
# project invariant suite (cmd/raxmlvet) driven through the vet tool
# protocol. staticcheck/govulncheck run in CI where their pinned versions
# are installed.
lint: raxmlvet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed for:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/$(BIN)/raxmlvet ./...

raxmlvet:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/raxmlvet ./cmd/raxmlvet

fmt:
	gofmt -w .

clean:
	rm -rf $(BIN)
