GO ?= go
BIN := bin

.PHONY: build test race bench bench-json scaling-gate backend-gate obs-gate memo-gate chaos fuzz lint raxmlvet trace fmt clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./...

# bench-json measures the compute-backend x search-worker matrix of the
# SPR search on the 42_SC stand-in workload and writes the result (timings,
# kernel counters, host metadata, speedup, newview-ratio, memo, and
# instrumentation-overhead cells) as schema-validated JSON. The committed
# snapshot is BENCH_PR10.json (BENCH_PR5/6/8/9.json are the retained
# schema/1, /2, /3 and /4 snapshots — PR6 documents the 1.7x pooled newview
# redundancy the shared vector store eliminated); CI regenerates a quick
# variant and validates both. Extra flags:
# make bench-json BENCHJSON_FLAGS="-quick -out /tmp/smoke.json"
BENCHJSON_FLAGS ?= -out BENCH_PR10.json
bench-json:
	$(GO) run ./cmd/benchjson $(BENCHJSON_FLAGS)

# scaling-gate is the local mirror of the CI job of the same name: rebuild
# the full bench matrix and hold it to the PR-8 acceptance budgets — pooled
# newview calls within 1.15x of serial (always enforced by -check) and, on
# hosts with >= 4 CPUs, a 4-worker wall-time speedup of at least
# MIN_SPEEDUP. On smaller hosts the speedup bar is skipped (the redundancy
# gate still applies; work counts do not depend on the CPU count), then a
# short fuzz session interleaves edits/invalidations/reads against the
# shared epoch-tagged store, auditing every epoch against a cold recompute.
MIN_SPEEDUP ?= 1.5
scaling-gate:
	@mkdir -p $(BIN)
	$(GO) run ./cmd/benchjson -reps 3 -out $(BIN)/bench-scaling.json
	@if [ "$$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)" -ge 4 ]; then \
		$(GO) run ./cmd/benchjson -check $(BIN)/bench-scaling.json -min-speedup $(MIN_SPEEDUP); \
	else \
		echo "scaling-gate: < 4 CPUs, skipping the $(MIN_SPEEDUP)x speedup bar"; \
		$(GO) run ./cmd/benchjson -check $(BIN)/bench-scaling.json; \
	fi
	$(GO) test -run=NONE -fuzz=FuzzEpochCacheEquivalence -fuzztime=$(FUZZTIME) ./internal/likelihood

# backend-gate is the local mirror of the CI compute-backend gate: every
# registered likelihood backend must reproduce the scalar reference on the
# 42_SC search (same accepted moves, logL within 1e-9), the per-kernel
# equivalence suite must pass under the race detector, and a short fuzz
# session hunts for alignment shapes where a backend diverges.
backend-gate:
	$(GO) test -count=1 -run 'TestBackendCrossValidation42SC' ./internal/search
	$(GO) test -race -count=1 -run 'TestBackend|FuzzBackendEquivalence' ./internal/likelihood
	$(GO) test -run=NONE -fuzz=FuzzBackendEquivalence -fuzztime=$(FUZZTIME) ./internal/likelihood

# obs-gate is the local mirror of the CI observability gate: the span
# tracer / flight recorder / Prometheus exposition / histogram suite under
# the race detector, the pinned-seed chaos flight post-mortem scenario, a
# real CLI run whose wall-trace and flight artifacts are re-validated on
# write, and the committed bench snapshot's instrumentation-overhead
# budget (wall-time ratio instrumented/baseline <= MAX_OBS_OVERHEAD; only
# trustworthy on a quiet host, hence a separate knob).
MAX_OBS_OVERHEAD ?= 1.02
obs-gate:
	@mkdir -p $(BIN)
	$(GO) test -race -count=1 \
		-run 'Span|Flight|Prom|Histogram|DebugServer|WallTrace|Instrumentation|KernelHists|MetricsContent' \
		./internal/obs/... ./internal/mw/... ./internal/search/... ./internal/core/...
	RAXML_CHAOS_SEED=$${RAXML_CHAOS_SEED:-42} $(GO) test -race -count=1 \
		-run 'TestFlightChaosDumpQuarantine|TestSupervisePanicRecovery' ./internal/mw
	$(GO) run ./cmd/seqgen -seed 4251 -taxa 12 -sites 400 -out $(BIN)/obs.phy
	$(GO) run ./cmd/raxml -in $(BIN)/obs.phy -inferences 1 -bootstraps 3 -workers 2 \
		-rounds 2 -radius 3 -trace-out $(BIN)/wall-trace.json -flight-out $(BIN)/flight.json
	$(GO) run ./cmd/benchjson -check BENCH_PR10.json -max-obs-overhead $(MAX_OBS_OVERHEAD)

# memo-gate is the local mirror of the CI topology-memo gate: the memo-on
# SPR search must replay the memo-off move sequence exactly (serial and
# pooled, 42_SC fixture) while skipping work, the memo's lock discipline
# must survive the race detector under concurrent probe/insert traffic and
# a deliberately tiny eviction-churning capacity, a short fuzz session
# round-trips random phylo2vec vectors through decode/encode, and the
# committed bench snapshot must show the memo-on serial cell no slower
# than its memo-off twin (only trustworthy on a quiet host, like the obs
# overhead budget).
memo-gate:
	$(GO) test -count=1 -run 'TestTopoMemoEquivalenceGate42SC' ./internal/search
	$(GO) test -race -count=1 -run 'TestTopoMemo' ./internal/search
	$(GO) test -run=NONE -fuzz=FuzzPhylo2VecRoundTrip -fuzztime=$(FUZZTIME) ./internal/phylotree
	$(GO) run ./cmd/benchjson -check BENCH_PR10.json -max-memo-ratio 1.0

# chaos replays the fault-injection campaigns under the race detector with a
# pinned seed, so a failure here is reproducible bit for bit. Override
# RAXML_CHAOS_SEED to explore other fault schedules.
chaos:
	RAXML_CHAOS_SEED=$${RAXML_CHAOS_SEED:-42} $(GO) test -race -count=1 \
		-run 'Chaos|Supervise|Quarantine|Retry|Hang|Backoff|Checkpoint|Resumed|Fault' \
		./internal/mw/... ./internal/fault/... ./internal/core/...

# fuzz throws random bytes at the checkpoint loaders for a short, CI-sized
# session; longer local runs: make fuzz FUZZTIME=10m
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzLoadCheckpoint -fuzztime=$(FUZZTIME) ./internal/mw

# lint mirrors the CI gates that need no network: gofmt, go vet, the
# seven-analyzer project invariant suite (cmd/raxmlvet) driven through
# the vet tool protocol, and the standalone self-lint of the commands and
# the lint engine itself (which also audits //lint:ignore directives).
# staticcheck/govulncheck run in CI where their pinned versions are
# installed.
lint: raxmlvet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed for:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/$(BIN)/raxmlvet ./...
	$(BIN)/raxmlvet ./cmd/... ./internal/lint/...

raxmlvet:
	@mkdir -p $(BIN)
	$(GO) build -o $(BIN)/raxmlvet ./cmd/raxmlvet

# trace runs a small simulated MGPS campaign and writes its timeline as
# Chrome trace-event JSON (open in Perfetto or chrome://tracing). cellsim
# schema-validates the file before writing it; the same invocation runs in
# CI and uploads the trace as a build artifact. Byte-determinism of this
# file is pinned by the golden tests in internal/obs.
trace:
	@mkdir -p $(BIN)
	$(GO) run ./cmd/cellsim -stage all-offloaded -scheduler mgps \
		-bootstraps 8 -episodes 40 -trace $(BIN)/trace.json

fmt:
	gofmt -w .

clean:
	rm -rf $(BIN)
