package raxmlcell

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/bench"
	"raxmlcell/internal/cell"
	"raxmlcell/internal/cellrt"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/parsimony"
	"raxmlcell/internal/platform"
	"raxmlcell/internal/search"
	"raxmlcell/internal/seqsim"
	"raxmlcell/internal/workload"
)

// benchStage runs one staged-optimization table cell (1 worker, 1
// bootstrap) per iteration and reports the simulated seconds alongside the
// paper's published value.
func benchStage(b *testing.B, stage cellrt.Stage) {
	cfg := bench.DefaultConfig()
	var last float64
	for i := 0; i < b.N; i++ {
		rep, err := cellrt.Run(cfg.Profile, cfg.Cost, cfg.Params, cellrt.Config{
			Stage: stage, Scheduler: cellrt.SchedNaive, Workers: 1, Searches: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rep.Seconds
	}
	b.ReportMetric(last, "simulated-s")
	b.ReportMetric(bench.PaperStageTimes[stage][0], "paper-s")
}

func BenchmarkTable1PPEOnly(b *testing.B)      { benchStage(b, cellrt.StagePPEOnly) }
func BenchmarkTable1NaiveOffload(b *testing.B) { benchStage(b, cellrt.StageNaiveOffload) }
func BenchmarkTable2SDKExp(b *testing.B)       { benchStage(b, cellrt.StageSDKExp) }
func BenchmarkTable3VectorCond(b *testing.B)   { benchStage(b, cellrt.StageVectorCond) }
func BenchmarkTable4DoubleBuffer(b *testing.B) { benchStage(b, cellrt.StageDoubleBuffer) }
func BenchmarkTable5Vectorize(b *testing.B)    { benchStage(b, cellrt.StageVectorFP) }
func BenchmarkTable6DirectComm(b *testing.B)   { benchStage(b, cellrt.StageDirectComm) }
func BenchmarkTable7OffloadAll(b *testing.B)   { benchStage(b, cellrt.StageAllOffloaded) }

// BenchmarkTable8MGPS runs the dynamic scheduler at 8 bootstraps.
func BenchmarkTable8MGPS(b *testing.B) {
	cfg := bench.DefaultConfig()
	var last float64
	for i := 0; i < b.N; i++ {
		rep, err := cellrt.Run(cfg.Profile, cfg.Cost, cfg.Params, cellrt.Config{
			Stage: cellrt.StageAllOffloaded, Scheduler: cellrt.SchedMGPS, Searches: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = rep.Seconds
	}
	b.ReportMetric(last, "simulated-s")
	b.ReportMetric(bench.PaperMGPSTimes[1], "paper-s")
}

// BenchmarkFigure3Platforms regenerates the full platform-comparison series.
func BenchmarkFigure3Platforms(b *testing.B) {
	cfg := bench.DefaultConfig()
	var pts []bench.Figure3Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = bench.Figure3(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := pts[len(pts)-1] // 128 bootstraps
	b.ReportMetric(last.Cell, "cell-128bs-s")
	b.ReportMetric(last.Power5, "power5-128bs-s")
	b.ReportMetric(last.Xeon, "xeon-128bs-s")
}

// BenchmarkProfileSplit runs a real Go tree search and reports the
// §5.2 profile split (share of kernel operations in the three offloaded
// functions) computed from the live meter.
func BenchmarkProfileSplit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params{Taxa: 12, Sites: 400, MeanBranch: 0.1, Alpha: 0.8}, m, rng)
	if err != nil {
		b.Fatal(err)
	}
	pat := alignment.Compress(a)
	var meter likelihood.Meter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(2))
		start, err := parsimony.BuildStepwise(pat, rng)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := search.Run(eng, start, search.Options{Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05, AlphaOpt: true}); err != nil {
			b.Fatal(err)
		}
		meter = eng.Meter
	}
	b.StopTimer()
	total := float64(meter.NewviewCalls + meter.MakenewzCalls + meter.EvaluateCalls)
	if total > 0 {
		b.ReportMetric(100*float64(meter.NewviewCalls)/total, "newview-%calls")
		b.ReportMetric(100*float64(meter.MakenewzCalls)/total, "makenewz-%calls")
		b.ReportMetric(100*float64(meter.EvaluateCalls)/total, "evaluate-%calls")
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationSignalScaling shows the mailbox-vs-direct signalling gap
// growing with the number of workers (Section 5.2.6 "scales with
// parallelism").
func BenchmarkAblationSignalScaling(b *testing.B) {
	cfg := bench.DefaultConfig()
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var mb, dc float64
			for i := 0; i < b.N; i++ {
				rep1, err := cellrt.Run(cfg.Profile, cfg.Cost, cfg.Params, cellrt.Config{
					Stage: cellrt.StageVectorFP, Scheduler: cellrt.SchedNaive,
					Workers: workers, Searches: 4 * workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep2, err := cellrt.Run(cfg.Profile, cfg.Cost, cfg.Params, cellrt.Config{
					Stage: cellrt.StageDirectComm, Scheduler: cellrt.SchedNaive,
					Workers: workers, Searches: 4 * workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				mb, dc = rep1.Seconds, rep2.Seconds
			}
			b.ReportMetric(100*(1-dc/mb), "direct-comm-gain-%")
		})
	}
}

// BenchmarkAblationBuffering sweeps the strip-mining DMA buffer size for
// the single- vs double-buffered kernels (the paper tuned 2 KB).
func BenchmarkAblationBuffering(b *testing.B) {
	for _, bufBytes := range []float64{512, 2048, 8192} {
		b.Run(fmt.Sprintf("buf-%dB", int(bufBytes)), func(b *testing.B) {
			cfg := bench.DefaultConfig()
			cfg.Profile.DMABatchBytes = bufBytes
			var single, double float64
			for i := 0; i < b.N; i++ {
				rep1, err := cellrt.Run(cfg.Profile, cfg.Cost, cfg.Params, cellrt.Config{
					Stage: cellrt.StageVectorCond, Scheduler: cellrt.SchedNaive, Workers: 1, Searches: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep2, err := cellrt.Run(cfg.Profile, cfg.Cost, cfg.Params, cellrt.Config{
					Stage: cellrt.StageDoubleBuffer, Scheduler: cellrt.SchedNaive, Workers: 1, Searches: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				single, double = rep1.Seconds, rep2.Seconds
			}
			b.ReportMetric(single-double, "dma-stall-s")
		})
	}
}

// BenchmarkAblationSchedulers compares the three schedulers across
// task-parallelism degrees.
func BenchmarkAblationSchedulers(b *testing.B) {
	cfg := bench.DefaultConfig()
	for _, searches := range []int{1, 4, 8, 32} {
		for _, sched := range []cellrt.Scheduler{cellrt.SchedEDTLP, cellrt.SchedLLP, cellrt.SchedMGPS} {
			name := fmt.Sprintf("%v-searches-%d", sched, searches)
			b.Run(name, func(b *testing.B) {
				workers := 4
				if sched == cellrt.SchedEDTLP {
					workers = 8
				}
				if searches < workers {
					workers = searches
				}
				var last float64
				for i := 0; i < b.N; i++ {
					rep, err := cellrt.Run(cfg.Profile, cfg.Cost, cfg.Params, cellrt.Config{
						Stage: cellrt.StageAllOffloaded, Scheduler: sched,
						Workers: workers, Searches: searches,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = rep.Seconds
				}
				b.ReportMetric(last, "simulated-s")
			})
		}
	}
}

// BenchmarkAblationSPEScaling sweeps the machine's SPE count under LLP for
// a single search — the Amdahl curve behind the paper's -36% one-bootstrap
// MGPS gain.
func BenchmarkAblationSPEScaling(b *testing.B) {
	cfg := bench.DefaultConfig()
	for _, spes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("spes-%d", spes), func(b *testing.B) {
			params := cfg.Params
			params.NumSPE = spes
			sched := cellrt.SchedLLP
			if spes == 1 {
				sched = cellrt.SchedNaive // LLP needs a second SPE to distribute to
			}
			var last float64
			for i := 0; i < b.N; i++ {
				rep, err := cellrt.Run(cfg.Profile, cfg.Cost, params, cellrt.Config{
					Stage: cellrt.StageAllOffloaded, Scheduler: sched,
					Workers: 1, Searches: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = rep.Seconds
			}
			b.ReportMetric(last, "simulated-s")
		})
	}
}

// BenchmarkAblationBranch varies how often the scaling branch is taken and
// compares the scalar and integer-cast conditionals on the real kernels.
func BenchmarkAblationBranch(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params{Taxa: 40, Sites: 300, MeanBranch: 0.2}, m, rng)
	if err != nil {
		b.Fatal(err)
	}
	pat := alignment.Compress(a)
	for _, cfgName := range []string{"scalar-cond", "int-cond"} {
		b.Run(cfgName, func(b *testing.B) {
			kc := likelihood.Config{IntCond: cfgName == "int-cond"}
			eng, err := likelihood.NewEngine(pat, m, kc)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(10))
			tr, err := parsimony.BuildStepwise(pat, rng)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Evaluate(tr.Tips[0]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(eng.Meter.ScaleChecks)/float64(b.N), "checks/op")
		})
	}
}

// BenchmarkAblationTipCases measures the real-kernel benefit of the
// tip-case specializations: a caterpillar places most newview calls in the
// tip/inner class, a balanced random tree mixes in inner/inner work.
func BenchmarkAblationTipCases(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	m := seqsim.DefaultModel()
	a, truth, err := seqsim.Generate(seqsim.Params{Taxa: 24, Sites: 500, MeanBranch: 0.1}, m, rng)
	if err != nil {
		b.Fatal(err)
	}
	pat := alignment.Compress(a)
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Evaluate(truth.Tips[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	mt := eng.Meter
	total := float64(mt.TipTipCalls + mt.TipInnerCalls + mt.InnerInnerCalls)
	b.ReportMetric(100*float64(mt.TipTipCalls+mt.TipInnerCalls)/total, "tip-case-%")
}

// --- real-kernel microbenchmarks ---

// BenchmarkNewview42SC runs the real newview kernel over the full 42_SC
// stand-in tree (one full-tree recomputation per iteration).
func BenchmarkNewview42SC(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params42SC(), m, rng)
	if err != nil {
		b.Fatal(err)
	}
	pat := alignment.Compress(a)
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := parsimony.BuildStepwise(pat, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.NewView(tr.Tips[0].Back)
	}
	b.StopTimer()
	b.ReportMetric(float64(pat.NumPatterns()), "patterns")
}

// BenchmarkMakenewz42SC optimizes one branch of the 42_SC stand-in.
func BenchmarkMakenewz42SC(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params42SC(), m, rng)
	if err != nil {
		b.Fatal(err)
	}
	pat := alignment.Compress(a)
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := parsimony.BuildStepwise(pat, rng)
	if err != nil {
		b.Fatal(err)
	}
	edge := tr.Edges()[5]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.MakeNewz(edge); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluate42SC computes the full log likelihood of the 42_SC
// stand-in per iteration.
func BenchmarkEvaluate42SC(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params42SC(), m, rng)
	if err != nil {
		b.Fatal(err)
	}
	pat := alignment.Compress(a)
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := parsimony.BuildStepwise(pat, rng)
	if err != nil {
		b.Fatal(err)
	}
	var ll float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ll, err = eng.Evaluate(tr.Tips[0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(ll, "logL")
}

// benchSmooth42SC measures a branch-smoothing sweep over the 42_SC
// stand-in tree, the hot loop of the search, with and without incremental
// partial-vector caching. combines/op is the number of newview executions a
// sweep actually performs; cachehits/op counts the traversal-descriptor
// stops at valid cached vectors.
func benchSmooth42SC(b *testing.B, incremental bool, backend string) {
	rng := rand.New(rand.NewSource(61))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params42SC(), m, rng)
	if err != nil {
		b.Fatal(err)
	}
	pat := alignment.Compress(a)
	tr, err := parsimony.BuildStepwise(pat, rng)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{Incremental: incremental, Backend: backend})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.SmoothBranches(eng, tr, 1, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(eng.Meter.NewviewCalls)/float64(b.N), "combines/op")
	b.ReportMetric(float64(eng.Meter.CacheHits)/float64(b.N), "cachehits/op")
}

func BenchmarkSmooth42SC(b *testing.B)        { benchSmooth42SC(b, false, "scalar") }
func BenchmarkSmoothBatched42SC(b *testing.B) { benchSmooth42SC(b, false, "batched") }
func BenchmarkSmoothCached42SC(b *testing.B)  { benchSmooth42SC(b, true, "scalar") }

// benchSearch42SC runs a whole small hill-climbing search per iteration
// (fresh tree and engine each time) and reports the end-to-end newview-call
// count under full recomputation vs incremental caching.
func benchSearch42SC(b *testing.B, incremental bool, backend string) {
	rng := rand.New(rand.NewSource(62))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params42SC(), m, rng)
	if err != nil {
		b.Fatal(err)
	}
	pat := alignment.Compress(a)
	var combines, hits uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(63)))
		if err != nil {
			b.Fatal(err)
		}
		eng, err := likelihood.NewEngine(pat, m, likelihood.Config{Incremental: incremental, Backend: backend})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := search.Run(eng, start, search.Options{
			Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05,
		}); err != nil {
			b.Fatal(err)
		}
		combines += eng.Meter.NewviewCalls
		hits += eng.Meter.CacheHits
	}
	b.StopTimer()
	b.ReportMetric(float64(combines)/float64(b.N), "combines/op")
	b.ReportMetric(float64(hits)/float64(b.N), "cachehits/op")
}

func BenchmarkSearch42SC(b *testing.B)        { benchSearch42SC(b, false, "scalar") }
func BenchmarkSearchBatched42SC(b *testing.B) { benchSearch42SC(b, false, "batched") }
func BenchmarkSearchCached42SC(b *testing.B)  { benchSearch42SC(b, true, "scalar") }

// BenchmarkParallelSPR42SC is the task-level-parallelism counterpart of
// BenchmarkSearch42SC: the identical whole-search workload with SPR
// candidates fanned out over a worker pool (and traversal descriptors
// executed wavefront-parallel). The serial/workers-4 pair is the source of
// the committed BENCH_PR5.json speedup figure; results are
// scheduling-invariant, so logL is reported for cross-checking.
func BenchmarkParallelSPR42SC(b *testing.B) {
	rng := rand.New(rand.NewSource(62))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params42SC(), m, rng)
	if err != nil {
		b.Fatal(err)
	}
	pat := alignment.Compress(a)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var ll float64
			for i := 0; i < b.N; i++ {
				start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(63)))
				if err != nil {
					b.Fatal(err)
				}
				eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
				if err != nil {
					b.Fatal(err)
				}
				res, err := search.Run(eng, start, search.Options{
					Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05,
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				ll = res.LogL
			}
			b.ReportMetric(ll, "logL")
		})
	}
}

// BenchmarkParallelEvaluate measures the shared-memory loop-level
// parallelism of the kernels (the RAxML-OMP analogue) on a wide alignment.
func BenchmarkParallelEvaluate(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	m := seqsim.DefaultModel()
	a, truth, err := seqsim.Generate(seqsim.Params{Taxa: 24, Sites: 5000, MeanBranch: 0.1, Alpha: 0.8}, m, rng)
	if err != nil {
		b.Fatal(err)
	}
	pat := alignment.Compress(a)
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads-%d", threads), func(b *testing.B) {
			eng, err := likelihood.NewEngine(pat, m, likelihood.Config{Threads: threads})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Evaluate(truth.Tips[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFastExpVsLibm compares the SDK-style exp against math.Exp.
func BenchmarkFastExpVsLibm(b *testing.B) {
	xs := make([]float64, 1024)
	rng := rand.New(rand.NewSource(31))
	for i := range xs {
		xs[i] = -10 * rng.Float64()
	}
	b.Run("fastexp", func(b *testing.B) {
		s := 0.0
		for i := 0; i < b.N; i++ {
			s += likelihood.FastExp(xs[i%len(xs)])
		}
		if math.IsNaN(s) {
			b.Fatal("NaN")
		}
	})
	b.Run("libm", func(b *testing.B) {
		s := 0.0
		for i := 0; i < b.N; i++ {
			s += math.Exp(xs[i%len(xs)])
		}
		if math.IsNaN(s) {
			b.Fatal("NaN")
		}
	})
}

// BenchmarkMasterWorkerThroughput runs a real parallel mini-analysis.
func BenchmarkMasterWorkerThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params{Taxa: 8, Sites: 200, MeanBranch: 0.1}, m, rng)
	if err != nil {
		b.Fatal(err)
	}
	pat := alignment.Compress(a)
	_ = pat
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.Power5().Makespan(8); err != nil {
			b.Fatal(err)
		}
		if _, err := workloadRoundTrip(pat); err != nil {
			b.Fatal(err)
		}
	}
}

func workloadRoundTrip(pat *alignment.Patterns) (float64, error) {
	prof := workload.Profile42SC()
	rep, err := cellrt.Run(prof, cell.DefaultCostModel(), cell.DefaultParams(), cellrt.Config{
		Stage: cellrt.StageAllOffloaded, Scheduler: cellrt.SchedEDTLP, Workers: 8, Searches: 8,
	})
	if err != nil {
		return 0, err
	}
	return rep.Seconds, nil
}
