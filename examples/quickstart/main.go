// Quickstart: generate a small synthetic DNA alignment, infer a maximum
// likelihood tree with the RAxML-style engine, and compare it to the tree
// the data was generated from.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/core"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/search"
	"raxmlcell/internal/seqsim"
)

func main() {
	log.SetFlags(0)

	// 1. Simulate 16 taxa x 800 sites of DNA under GTR+Γ along a random
	//    true tree (in real use you would read a PHYLIP/FASTA file with
	//    alignment.ReadPhylip / alignment.ReadFasta).
	rng := rand.New(rand.NewSource(2026))
	model := seqsim.DefaultModel()
	align, truth, err := seqsim.Generate(seqsim.Params{
		Taxa: 16, Sites: 800, MeanBranch: 0.1, Alpha: 0.8,
	}, model, rng)
	if err != nil {
		log.Fatal(err)
	}
	patterns := alignment.Compress(align)
	fmt.Printf("alignment: %d taxa x %d sites, %d distinct site patterns\n",
		patterns.NumTaxa, patterns.NumSites, patterns.NumPatterns())

	// 2. One full inference: parsimony starting tree, branch-length
	//    smoothing, Gamma-shape fitting, lazy SPR hill climbing.
	cfg := core.DefaultConfig()
	cfg.Seed = 7
	cfg.Search = search.Options{Radius: 5, MaxRounds: 8, SmoothPasses: 4, Epsilon: 0.01, AlphaOpt: true}
	result, meter, err := core.InferOnce(patterns, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("log likelihood: %.4f  (fitted Gamma alpha %.3f, %d SPR moves in %d rounds)\n",
		result.LogL, result.Alpha, result.Moves, result.Rounds)
	fmt.Printf("kernel calls: %d newview, %d makenewz, %d evaluate\n",
		meter.NewviewCalls, meter.MakenewzCalls, meter.EvaluateCalls)

	// 3. How close did the search get to the generating topology?
	if err := truth.AlignTaxa(patterns.Names); err != nil {
		log.Fatal(err)
	}
	rf, err := phylotree.RobinsonFoulds(truth, result.Tree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Robinson-Foulds distance to the true tree: %d (0 = exact recovery)\n", rf)
	fmt.Printf("inferred tree:\n%s\n", result.Tree.Newick())
}
