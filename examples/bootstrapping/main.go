// Bootstrapping: the paper's "publishable analysis" workflow at laptop
// scale — multiple independent inferences to find the best-known ML tree,
// plus non-parametric bootstrap replicates over the master-worker runtime
// (the Go analogue of RAxML-VI-HPC's MPI scheme), ending with per-branch
// support values.
//
//	go run ./examples/bootstrapping
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/core"
	"raxmlcell/internal/search"
	"raxmlcell/internal/seqsim"
)

func main() {
	log.SetFlags(0)

	// The 42_SC stand-in: 42 taxa x 1167 nucleotides, ~250 patterns — the
	// same dimensions the paper benchmarks.
	rng := rand.New(rand.NewSource(4251))
	align, _, err := seqsim.Generate(seqsim.Params42SC(), seqsim.DefaultModel(), rng)
	if err != nil {
		log.Fatal(err)
	}
	patterns := alignment.Compress(align)
	fmt.Printf("alignment: %d taxa x %d sites, %d patterns\n",
		patterns.NumTaxa, patterns.NumSites, patterns.NumPatterns())

	cfg := core.Config{
		Inferences: 2,  // distinct randomized starting trees
		Bootstraps: 10, // a real analysis uses 100+; kept small here
		Seed:       99,
		Workers:    4, // the "MPI process" count
		Alpha:      0.8,
		Cats:       4,
		Search:     search.Options{Radius: 4, MaxRounds: 4, SmoothPasses: 3, Epsilon: 0.02, AlphaOpt: true},
	}
	fmt.Printf("running %d inferences + %d bootstraps on %d workers...\n",
		cfg.Inferences, cfg.Bootstraps, cfg.Workers)

	analysis, err := core.Analyze(patterns, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nper-job results:\n")
	for _, r := range analysis.Results {
		fmt.Printf("  %-9v #%-3d  logL %12.4f   alpha %.3f\n", r.Job.Kind, r.Job.Index, r.LogL, r.Alpha)
	}

	fmt.Printf("\nbest-known ML tree: logL %.4f (alpha %.3f)\n", analysis.BestLogL, analysis.Alpha)

	// Support values: the fraction of bootstrap trees containing each
	// internal branch of the best tree.
	vals := make([]float64, 0, len(analysis.Support))
	for _, v := range analysis.Support {
		vals = append(vals, v)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	fmt.Printf("bootstrap support (%d internal branches, best to worst):\n  ", len(vals))
	for _, v := range vals {
		fmt.Printf("%.2f ", v)
	}
	fmt.Printf("\n\naggregate kernel profile across all %d searches:\n  %s\n",
		len(analysis.Results), analysis.Meter.String())
	if analysis.Consensus != nil {
		fmt.Printf("\nmajority-rule consensus of the bootstrap trees (%d clades):\n%s\n",
			analysis.Consensus.CountClades(), analysis.Consensus.Newick())
	}
	fmt.Printf("\nbest tree (Newick):\n%s\n", analysis.Best.Newick())
}
