// Tracing: bridge a REAL Go tree search onto the simulated Cell. Instead of
// replaying the paper's published 42_SC workload numbers, this example runs
// an actual maximum likelihood search with the instrumented kernels,
// converts the measured operation counts into a workload profile
// (workload.FromMeter), and asks the simulator how that exact workload
// would have fared on the Cell at each optimization stage.
//
//	go run ./examples/tracing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/cellrt"
	"raxmlcell/internal/core"
	"raxmlcell/internal/search"
	"raxmlcell/internal/seqsim"
	"raxmlcell/internal/workload"
)

func main() {
	log.SetFlags(0)

	// A mid-sized real dataset: 20 taxa x 900 sites.
	rng := rand.New(rand.NewSource(7777))
	align, _, err := seqsim.Generate(seqsim.Params{
		Taxa: 20, Sites: 900, MeanBranch: 0.08, Alpha: 0.8, InvariantFraction: 0.4,
	}, seqsim.DefaultModel(), rng)
	if err != nil {
		log.Fatal(err)
	}
	patterns := alignment.Compress(align)

	fmt.Printf("running a real search over %d taxa x %d patterns...\n",
		patterns.NumTaxa, patterns.NumPatterns())
	cfg := core.DefaultConfig()
	cfg.Seed = 11
	cfg.Search = search.Options{Radius: 4, MaxRounds: 4, SmoothPasses: 3, Epsilon: 0.02, AlphaOpt: true}
	res, meter, err := core.InferOnce(patterns, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search done: logL %.4f after %d SPR moves\n", res.LogL, res.Moves)
	fmt.Printf("measured kernel profile:\n  %s\n\n", meter.String())

	total := float64(meter.NewviewCalls + meter.MakenewzCalls + meter.EvaluateCalls)
	fmt.Printf("call split: newview %.1f%%, makenewz %.1f%%, evaluate %.1f%%\n",
		100*float64(meter.NewviewCalls)/total,
		100*float64(meter.MakenewzCalls)/total,
		100*float64(meter.EvaluateCalls)/total)
	fmt.Println("(the paper profiled 76.8% / 19.16% / 2.37% of runtime for 42_SC on a Power5)")

	prof, err := workload.FromMeter("traced", meter, patterns.NumPatterns())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nthe same workload on the simulated Cell, stage by stage (1 worker, 1 search):")
	var prev float64
	for stage := cellrt.StagePPEOnly; stage < cellrt.NumStages; stage++ {
		rep, err := core.CellRun(prof, stage, cellrt.SchedNaive, 1, 1)
		if err != nil {
			log.Fatal(err)
		}
		delta := ""
		if prev > 0 {
			delta = fmt.Sprintf("  (%+.0f%%)", 100*(rep.Seconds/prev-1))
		}
		fmt.Printf("  %-14s %8.3fs%s\n", stage.String()+":", rep.Seconds, delta)
		prev = rep.Seconds
	}
	mgps, err := core.CellRun(prof, cellrt.StageAllOffloaded, cellrt.SchedMGPS, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-14s %8.3fs for 8 concurrent searches under MGPS\n", "mgps:", mgps.Seconds)
}
