// Cellport: walks the paper's entire optimization story on the simulated
// Cell Broadband Engine — from the PPE-only baseline (Table 1a), through the
// naive SPE offload that *slows the program down* (Table 1b), each of the
// five SPE-side optimizations (Tables 2-6), full three-function offloading
// (Table 7), the MGPS dynamic scheduler (Table 8), and finally the Figure 3
// platform comparison against IBM Power5 and Intel Xeon.
//
//	go run ./examples/cellport
package main

import (
	"fmt"
	"log"

	"raxmlcell/internal/bench"
	"raxmlcell/internal/cellrt"
)

func main() {
	log.SetFlags(0)

	cfg := bench.DefaultConfig()
	fmt.Println("RAxML on the Cell Broadband Engine: the 42_SC workload, step by step")
	fmt.Println("(simulated 3.2 GHz dual-thread PPE + 8 SPEs; paper values alongside)")
	fmt.Println()

	var prev float64
	for stage := cellrt.StagePPEOnly; stage < cellrt.NumStages; stage++ {
		exp, err := bench.StageTable(cfg, stage)
		if err != nil {
			log.Fatal(err)
		}
		t := exp.Rows[0].Simulated // 1 worker, 1 bootstrap
		delta := ""
		if prev > 0 {
			delta = fmt.Sprintf("  (%+.0f%% vs previous stage)", 100*(t/prev-1))
		}
		fmt.Printf("%-14s %-48s %7.2fs%s\n", exp.ID+":", exp.Title, t, delta)
		prev = t
	}

	t8, err := bench.MGPSTable(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %-48s %7.2fs  (%+.0f%% vs previous stage)\n",
		"table8:", t8.Title+" (1 bootstrap)", t8.Rows[0].Simulated,
		100*(t8.Rows[0].Simulated/prev-1))

	fmt.Println()
	fmt.Println("the headline claims:")
	naive, err := bench.StageTable(cfg, cellrt.StageNaiveOffload)
	if err != nil {
		log.Fatal(err)
	}
	ppe, err := bench.StageTable(cfg, cellrt.StagePPEOnly)
	if err != nil {
		log.Fatal(err)
	}
	full, err := bench.StageTable(cfg, cellrt.StageAllOffloaded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  naive offload is %.1fx SLOWER than the PPE alone (merely offloading is not enough)\n",
		naive.Rows[0].Simulated/ppe.Rows[0].Simulated)
	fmt.Printf("  the tuned port is %.0f%% faster than the PPE alone (paper: 25%%)\n",
		100*(1-full.Rows[0].Simulated/ppe.Rows[0].Simulated))
	fmt.Printf("  naive -> MGPS is a %.1fx improvement (paper: \"more than a factor of five\")\n",
		naive.Rows[0].Simulated/t8.Rows[0].Simulated)

	fmt.Println()
	fmt.Println("figure 3 — execution time vs number of bootstraps:")
	fmt.Printf("  %10s %12s %12s %12s %14s\n", "bootstraps", "Cell (MGPS)", "Power5", "Xeon x2", "Xeon/Cell")
	pts, err := bench.Figure3(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("  %10d %11.1fs %11.1fs %11.1fs %13.2fx\n",
			p.Bootstraps, p.Cell, p.Power5, p.Xeon, p.Xeon/p.Cell)
	}
}
