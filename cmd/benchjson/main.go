// Command benchjson measures the compute-backend and task-level-parallelism
// speedups of the SPR search on the 42_SC stand-in workload and writes them
// as machine-readable JSON (BENCH_PR10.json in the repo root is a committed
// snapshot).
//
// The workload follows BenchmarkSearch42SC / BenchmarkParallelSPR42SC in
// bench_test.go: simulate a 42-taxa x 1167-site alignment at the paper's
// benchmark dimensions (seed 62), build the same parsimony starting tree
// every run (seed 63), then hill-climb with Radius 3, MaxRounds 4,
// SmoothPasses 2, Epsilon 0.05 — once per (backend, search-workers) cell of
// the measurement matrix. (The benchmarks stop at 2 rounds; the extra
// rounds here give the confirmation-gated topology memo enough repeat
// traffic that its wall-time cell measures replay, not just probe cost.) Every cell must land on the identical logL and
// move sequence (backends and the worker pool are compute/scheduling
// changes, not search changes); benchjson enforces that before writing.
//
// Usage:
//
//	benchjson -out BENCH_PR10.json           # full matrix (best of -reps)
//	benchjson -quick -out /tmp/smoke.json    # single repetition (CI smoke)
//	benchjson -backend batched -workers 1    # one backend, serial only
//	benchjson -check BENCH_PR10.json         # parse + validate an existing file
//	benchjson -check f.json -min-speedup 1.5 # also gate pool scaling (CI)
//	benchjson -check f.json -max-obs-overhead 1.02 # gate instrumentation cost
//	benchjson -check f.json -max-memo-ratio 1.0    # gate memo-on wall time
//
// Besides wall-time speedups the report records pooled/serial newview-call
// ratios per backend ("<backend>-<N>w" -> Newviews(Nw)/Newviews(1w)). These
// count redundant work, not time, so they are meaningful on any host, and
// validation hard-fails any ratio above 1.15: with the shared epoch-tagged
// vector store a pooled search must not redo more than 15% of the serial
// search's newview work (in practice it does less — the store also reuses
// vectors across prune sites that the serial per-prune tables rebuild).
//
// Host metadata (cpus, GOMAXPROCS, Go version) is recorded so a committed
// snapshot from a small container is distinguishable from a multi-core CI
// run; the worker-scaling speedups are only meaningful when cpus >= workers
// (which is why the -min-speedup gate is opt-in, applied by the CI
// scaling-gate job on a multi-core runner), while the backend-vs-scalar
// speedups and the newview ratios are meaningful even on one CPU.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/parsimony"
	"raxmlcell/internal/search"
	"raxmlcell/internal/seqsim"
	"raxmlcell/internal/wallclock"
)

// Entry is one measured (backend, workers, memo) cell of the matrix.
type Entry struct {
	Name      string  `json:"name"` // "<backend>-<workers>w", "-nomemo" suffix when the memo is off
	Backend   string  `json:"backend"`
	Workers   int     `json:"workers"`
	Reps      int     `json:"reps"`
	NsPerOp   int64   `json:"ns_per_op"` // best (minimum) wall time of the reps
	LogL      float64 `json:"logL"`
	Rounds    int     `json:"rounds"`
	Moves     int     `json:"moves"`
	Newviews  uint64  `json:"newview_calls"`
	Makenewzs uint64  `json:"makenewz_calls"`
	Evaluates uint64  `json:"evaluate_calls"`
	Flops     uint64  `json:"flops"`
	Exps      uint64  `json:"exps"`

	// Topology-memo accounting (schema /5): whether the cell ran with the
	// content-addressed score memo, how many candidate evaluations it
	// replayed instead of running (cache.topo_hits), the resulting hit rate,
	// and how many candidates were scored fresh (search.candidates_scored —
	// strictly lower on memo-on cells than their memo-off twin).
	TopoMemo    bool    `json:"topo_memo"`
	TopoHits    uint64  `json:"topo_hits"`
	TopoHitRate float64 `json:"topo_hit_rate"`
	CandsScored uint64  `json:"candidates_scored"`
}

// ObsOverhead is the cost-of-instrumentation cell: the same serial 42sc
// search timed bare and then with the full observability stack engaged — a
// live metrics registry, a recording wall-clock span tracer, a flight
// recorder, and the per-kernel latency histograms — interleaved rep by rep
// so host drift hits both sides equally. Ratio is instrumented over
// baseline best times; the hot paths are designed allocation-free, so the
// ratio is accountable to a low single-digit-percent budget (the CI
// obs-gate passes -max-obs-overhead).
type ObsOverhead struct {
	Backend        string  `json:"backend"`
	Workers        int     `json:"workers"`
	Reps           int     `json:"reps"`
	BaselineNs     int64   `json:"baseline_ns"`
	InstrumentedNs int64   `json:"instrumented_ns"`
	Ratio          float64 `json:"ratio"`
}

// Report is the file schema. Schema /2 extended /1 with the backend axis:
// entries carry a backend name and the scalar speedup field became a map
// keyed by comparison name ("batched-vs-scalar-1w" for backend wins at
// fixed workers, "<backend>-2w" / "<backend>-4w" for pool scaling within a
// backend, relative to that backend's serial cell). Schema /3 adds the
// newview_ratios map — pooled newview calls over the same backend's serial
// cell, keyed "<backend>-<N>w" — the redundancy axis the shared
// ancestral-vector store is accountable to (validation rejects any ratio
// above newviewRatioMax). Schema /4 adds the obs_overhead cell measuring
// what the wall-clock tracing / flight / histogram instrumentation costs on
// the same workload. Schema /5 adds the topology-memo axis: every cell
// carries topo_memo/topo_hits/topo_hit_rate/candidates_scored, each backend
// gains a serial memo-off twin ("<backend>-1w-nomemo"), the determinism gate
// spans the memo axis too (memo on/off must agree on logL and the move
// sequence — the memo only deletes repeated work), and the speedups map
// gains "<backend>-memo-vs-nomemo-1w" (memo-off time over memo-on time).
type Report struct {
	Schema        string             `json:"schema"` // "raxmlcell-bench/5"
	Generated     string             `json:"generated"`
	GoVersion     string             `json:"go_version"`
	GOOS          string             `json:"goos"`
	GOARCH        string             `json:"goarch"`
	CPUs          int                `json:"cpus"`
	GOMAXPROCS    int                `json:"gomaxprocs"`
	Workload      string             `json:"workload"`
	Backends      []string           `json:"backends"`
	Entries       []Entry            `json:"entries"`
	Speedups      map[string]float64 `json:"speedups"`
	NewviewRatios map[string]float64 `json:"newview_ratios"`
	ObsOverhead   *ObsOverhead       `json:"obs_overhead"`
}

const schemaID = "raxmlcell-bench/5"

// newviewRatioMax is the redundancy budget: a pooled cell may perform at
// most 15% more newview calls than the serial cell of the same backend.
// Mirrors the gate in TestParallelSPRCrossValidation42SC.
const newviewRatioMax = 1.15

func main() {
	var (
		out      = flag.String("out", "BENCH_PR10.json", "output path")
		backends = flag.String("backend", "", "comma-separated compute backends to measure (default: all registered: "+strings.Join(likelihood.Backends(), ", ")+")")
		workers  = flag.String("workers", "1,2,4", "comma-separated search-worker counts per backend")
		reps     = flag.Int("reps", 3, "repetitions per entry; the best time is reported")
		quick    = flag.Bool("quick", false, "single repetition (CI smoke)")
		check    = flag.String("check", "", "validate an existing report file and exit")
		minSpeed = flag.Float64("min-speedup", 0, "fail validation if any backend's largest in-budget pool-scaling speedup (workers <= gomaxprocs of the measuring host) is below this (0 = no gate; CI passes 1.5)")
		maxObs   = flag.Float64("max-obs-overhead", 0, "fail validation if the obs_overhead ratio (instrumented/baseline wall time) exceeds this (0 = no gate; CI passes 1.02)")
		maxMemo  = flag.Float64("max-memo-ratio", 0, "fail validation if any backend's memo-on serial wall time exceeds this multiple of its memo-off twin (0 = no gate; the committed snapshot passes 1.0: memo-on must not be slower)")
	)
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check, *minSpeed, *maxObs, *maxMemo); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s report\n", *check, schemaID)
		return
	}

	if *quick {
		*reps = 1
	}
	bkList := likelihood.Backends()
	if *backends != "" {
		bkList = strings.Split(*backends, ",")
	}
	wkList, err := parseWorkers(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: -workers: %v\n", err)
		os.Exit(1)
	}
	rep, err := measure(bkList, wkList, *reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	// Self-validate what was just written: the committed snapshot must pass
	// the same gate CI applies (including -min-speedup / -max-obs-overhead
	// when the caller set them).
	if err := checkFile(*out, *minSpeed, *maxObs, *maxMemo); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: wrote invalid report: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %d entries (%s x workers %v)\n", *out, len(rep.Entries),
		strings.Join(rep.Backends, ","), wkList)
	names := make([]string, 0, len(rep.Speedups))
	for n := range rep.Speedups {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  speedup %-24s %.2fx\n", n, rep.Speedups[n])
	}
	names = names[:0]
	for n := range rep.NewviewRatios {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  newview ratio %-18s %.3f (budget %.2f)\n", n, rep.NewviewRatios[n], newviewRatioMax)
	}
	if o := rep.ObsOverhead; o != nil {
		fmt.Printf("  obs overhead %s-%dw: %.3fx (instrumented %.1fms vs baseline %.1fms)\n",
			o.Backend, o.Workers, o.Ratio,
			float64(o.InstrumentedNs)/1e6, float64(o.BaselineNs)/1e6)
	}
}

// parseWorkers turns "1,2,4" into a sorted, deduplicated []int.
func parseWorkers(s string) ([]int, error) {
	seen := map[int]bool{}
	var ws []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		if !seen[n] {
			seen[n] = true
			ws = append(ws, n)
		}
	}
	sort.Ints(ws)
	if len(ws) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return ws, nil
}

// measure runs the full backend x workers matrix and assembles the report.
func measure(backends []string, workers []int, reps int) (*Report, error) {
	rng := rand.New(rand.NewSource(62))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params42SC(), m, rng)
	if err != nil {
		return nil, err
	}
	pat := alignment.Compress(a)

	var entries []Entry
	for _, bk := range backends {
		// The serial memo-on/memo-off pair is measured interleaved (like the
		// obs_overhead cell) so host drift lands on both sides equally — the
		// memo's wall-time claim is a small difference between near-equal
		// times, exactly the regime where back-to-back cells lie.
		on, off, err := runEntryPair(pat, bk, reps)
		if err != nil {
			return nil, err
		}
		for _, w := range workers {
			if w == 1 {
				continue
			}
			e, err := runEntry(pat, bk, w, reps, true)
			if err != nil {
				return nil, err
			}
			entries = append(entries, *e)
		}
		entries = append(entries, *on, *off)
	}
	// Determinism gate: no cell of the matrix may change the search result.
	// Backends promise logL within 1e-9 of scalar and the identical move
	// sequence; the worker pool is a pure scheduling change, and the
	// topology memo only skips candidates that provably lose — so the
	// memo-off twins must agree too (the in-matrix equivalence evidence).
	ref := entries[0]
	for _, e := range entries[1:] {
		if math.Abs(ref.LogL-e.LogL) > 1e-9*math.Max(1, math.Abs(ref.LogL)) {
			return nil, fmt.Errorf("%s logL %.12f != %s %.12f", e.Name, e.LogL, ref.Name, ref.LogL)
		}
		if ref.Moves != e.Moves || ref.Rounds != e.Rounds {
			return nil, fmt.Errorf("search path diverged: %s %d moves/%d rounds, %s %d/%d",
				ref.Name, ref.Moves, ref.Rounds, e.Name, e.Moves, e.Rounds)
		}
	}

	overhead, err := measureObsOverhead(pat, backends[0], reps)
	if err != nil {
		return nil, err
	}

	return &Report{
		Schema:        schemaID,
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workload:      "42sc SPR search: seqsim.Params42SC seed 62, parsimony start seed 63, Radius 3, MaxRounds 4, SmoothPasses 2, Epsilon 0.05",
		Backends:      backends,
		Entries:       entries,
		Speedups:      speedups(entries),
		NewviewRatios: newviewRatios(entries),
		ObsOverhead:   overhead,
	}, nil
}

// obsStack is one fully-engaged observability configuration for the
// overhead cell: every sink the production pipeline can attach is live.
type obsStack struct {
	reg    *obs.Registry
	tracer *obs.SpanTracer
	flight *obs.FlightRecorder
}

// newObsStack builds a recording stack on the real wall clock.
func newObsStack() *obsStack {
	now := wallclock.Monotonic()
	tr := obs.NewSpanTracer(now)
	tr.SetRecording(true)
	return &obsStack{reg: obs.NewRegistry(), tracer: tr, flight: obs.NewFlightRecorder(0, now)}
}

// timedSearch runs one 42sc search cell (serial, given backend), optionally
// under a full observability stack, and returns its wall time.
func timedSearch(pat *alignment.Patterns, backend string, st *obsStack) (int64, error) {
	m := seqsim.DefaultModel()
	start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(63)))
	if err != nil {
		return 0, err
	}
	kcfg := likelihood.Config{Backend: backend}
	opt := search.Options{Radius: 3, MaxRounds: 4, SmoothPasses: 2, Epsilon: 0.05, Workers: 1}
	if st != nil {
		kcfg.Observer = obs.NewKernelHists(st.reg, backend)
		kcfg.Now = st.tracer.Now
		opt.Metrics = st.reg
		opt.Trace = st.tracer.Root("bench").WithJob(backend + "#0")
	}
	eng, err := likelihood.NewEngine(pat, m, kcfg)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	if st != nil {
		st.flight.Record("attempt", backend+"#0", 1, 0, "")
	}
	_, err = search.Run(eng, start, opt)
	if st != nil {
		st.flight.Record("attempt.ok", backend+"#0", 1, 0, "")
	}
	if err != nil {
		return 0, err
	}
	return time.Since(t0).Nanoseconds(), nil
}

// measureObsOverhead times the serial search bare and instrumented and
// reports best-of for each side. The two variants are interleaved pair by
// pair with the order alternating between pairs, so both slow drift and
// systematic warm-up effects of the host land on both sides equally; the
// minimum is the standard noise-rejecting estimator for a fixed workload
// (anything above the floor is scheduler interference, not the code).
// A ratio from fewer than a handful of pairs is meaningless on a busy
// host, so the cell measures at least minObsPairs pairs even under -quick.
func measureObsOverhead(pat *alignment.Patterns, backend string, reps int) (*ObsOverhead, error) {
	const minObsPairs = 5
	pairs := reps
	if pairs < minObsPairs {
		pairs = minObsPairs
	}
	o := &ObsOverhead{
		Backend: backend, Workers: 1, Reps: pairs,
		BaselineNs: math.MaxInt64, InstrumentedNs: math.MaxInt64,
	}
	for r := 0; r < pairs; r++ {
		// A fresh stack per rep keeps the tracer's event buffer from growing
		// across reps (amortized append cost would flatter later reps).
		stacks := [2]*obsStack{nil, newObsStack()}
		order := [2]int{0, 1}
		if r%2 == 1 {
			order = [2]int{1, 0}
		}
		for _, side := range order {
			ns, err := timedSearch(pat, backend, stacks[side])
			if err != nil {
				return nil, err
			}
			if side == 0 && ns < o.BaselineNs {
				o.BaselineNs = ns
			}
			if side == 1 && ns < o.InstrumentedNs {
				o.InstrumentedNs = ns
			}
		}
	}
	o.Ratio = float64(o.InstrumentedNs) / float64(o.BaselineNs)
	return o, nil
}

// newviewRatios derives the redundancy map: each pooled cell's newview-call
// count over the 1-worker cell of the same backend. A work-count ratio, not
// a time ratio — host-independent, and what the shared ancestral-vector
// store is gated on.
func newviewRatios(entries []Entry) map[string]float64 {
	// Memo-off twins are excluded on both sides: the ratio isolates pool
	// redundancy, so numerator and denominator must share the memo setting.
	serial := map[string]uint64{} // backend -> 1-worker memo-on newview calls
	for _, e := range entries {
		if e.Workers == 1 && e.TopoMemo {
			serial[e.Backend] = e.Newviews
		}
	}
	nr := map[string]float64{}
	for _, e := range entries {
		if s, ok := serial[e.Backend]; ok && e.Workers > 1 && e.TopoMemo && s > 0 {
			nr[e.Name] = float64(e.Newviews) / float64(s)
		}
	}
	return nr
}

// speedups derives the comparison map: each backend's pool scaling against
// its own serial cell, each non-scalar backend against scalar at equal
// worker counts (all memo-on cells), and the topology memo's own win —
// "<backend>-memo-vs-nomemo-1w", the memo-off serial time over the memo-on
// serial time of the same backend.
func speedups(entries []Entry) map[string]float64 {
	serial := map[string]int64{} // backend -> 1-worker memo-on ns
	nomemo := map[string]int64{} // backend -> 1-worker memo-off ns
	scalar := map[int]int64{}    // workers -> scalar memo-on ns
	for _, e := range entries {
		if e.Workers == 1 {
			if e.TopoMemo {
				serial[e.Backend] = e.NsPerOp
			} else {
				nomemo[e.Backend] = e.NsPerOp
			}
		}
		if e.Backend == "scalar" && e.TopoMemo {
			scalar[e.Workers] = e.NsPerOp
		}
	}
	sp := map[string]float64{}
	for _, e := range entries {
		if !e.TopoMemo {
			continue
		}
		if s, ok := serial[e.Backend]; ok && e.Workers > 1 {
			sp[e.Name] = float64(s) / float64(e.NsPerOp)
		}
		if s, ok := scalar[e.Workers]; ok && e.Backend != "scalar" {
			sp[fmt.Sprintf("%s-vs-scalar-%dw", e.Backend, e.Workers)] = float64(s) / float64(e.NsPerOp)
		}
	}
	for bk, off := range nomemo {
		if on, ok := serial[bk]; ok {
			sp[bk+"-memo-vs-nomemo-1w"] = float64(off) / float64(on)
		}
	}
	return sp
}

// newEntry builds the empty cell for one (backend, workers, memo) point.
func newEntry(backend string, workers, reps int, memo bool) *Entry {
	name := fmt.Sprintf("%s-%dw", backend, workers)
	if !memo {
		name += "-nomemo"
	}
	return &Entry{
		Name:    name,
		Backend: backend, Workers: workers, Reps: reps, NsPerOp: math.MaxInt64,
		TopoMemo: memo,
	}
}

// repInto runs one repetition of the cell's search and folds the wall time
// (keeping the minimum) and the deterministic result/counters into e. Every
// rep carries a fresh metrics registry so the memo accounting (hits, hit
// rate, fresh candidate scores) reflects a single search; the registry cost
// is identical across cells, so comparisons stay fair.
func repInto(pat *alignment.Patterns, e *Entry) error {
	start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(63)))
	if err != nil {
		return err
	}
	eng, err := likelihood.NewEngine(pat, seqsim.DefaultModel(), likelihood.Config{Backend: e.Backend})
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	t0 := time.Now()
	res, err := search.Run(eng, start, search.Options{
		Radius: 3, MaxRounds: 4, SmoothPasses: 2, Epsilon: 0.05,
		Workers: e.Workers, NoTopoMemo: !e.TopoMemo, Metrics: reg,
	})
	if err != nil {
		return err
	}
	if ns := time.Since(t0).Nanoseconds(); ns < e.NsPerOp {
		e.NsPerOp = ns
	}
	mt := eng.Meter
	e.LogL, e.Rounds, e.Moves = res.LogL, res.Rounds, res.Moves
	e.Newviews, e.Makenewzs, e.Evaluates = mt.NewviewCalls, mt.MakenewzCalls, mt.EvaluateCalls
	e.Flops, e.Exps = mt.Flops(), mt.Exps
	snap := reg.Snapshot()
	e.TopoHits, _ = snap.CounterValue("cache.topo_hits")
	e.TopoHitRate, _ = snap.GaugeValue("cache.topo_hit_rate")
	e.CandsScored, _ = snap.CounterValue("search.candidates_scored")
	return nil
}

// runEntry measures one (backend, workers, memo) cell, reporting the best
// wall time over reps repetitions and the (deterministic) result of the
// last one.
func runEntry(pat *alignment.Patterns, backend string, workers, reps int, memo bool) (*Entry, error) {
	e := newEntry(backend, workers, reps, memo)
	for r := 0; r < reps; r++ {
		if err := repInto(pat, e); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// runEntryPair measures the serial memo-on and memo-off cells of one
// backend interleaved, rep pair by rep pair with alternating order — the
// same noise-rejection scheme as measureObsOverhead, because the memo's
// wall-time delta is small enough for back-to-back cells to be dominated by
// host drift. At least minMemoPairs pairs run even under -quick: the fold
// keeps the per-cell minimum, and on a busy host slow bursts outlast a
// single pair, so both cells need enough pairs to each land in an unloaded
// window before the min is trustworthy.
func runEntryPair(pat *alignment.Patterns, backend string, reps int) (on, off *Entry, err error) {
	const minMemoPairs = 9
	pairs := reps
	if pairs < minMemoPairs {
		pairs = minMemoPairs
	}
	on = newEntry(backend, 1, pairs, true)
	off = newEntry(backend, 1, pairs, false)
	for r := 0; r < pairs; r++ {
		sides := [2]*Entry{on, off}
		if r%2 == 1 {
			sides = [2]*Entry{off, on}
		}
		for _, e := range sides {
			if err := repInto(pat, e); err != nil {
				return nil, nil, err
			}
		}
	}
	return on, off, nil
}

// checkFile parses and validates a report: schema tag, a full matrix of
// entries with non-zero timings and kernel counters, matching results
// across every cell, a non-empty speedup map with positive ratios, and a
// newview-ratio map that is complete (one ratio per pooled cell), consistent
// with the entries it was derived from, and within the redundancy budget.
// When minSpeedup > 0, each backend must additionally reach that pool-scaling
// speedup at its largest in-budget worker count (workers <= the measuring
// host's GOMAXPROCS — a 4-worker cell recorded on one CPU proves redundancy,
// not scaling, and is not held to a wall-time bar). When maxObsOverhead > 0,
// the obs_overhead ratio must not exceed it (opt-in for the same reason as
// the scaling gate: wall-time ratios are only trustworthy on a quiet host).
//
// Schema /5 additionally requires every backend to carry a serial memo-off
// twin agreeing with its memo-on cell on the search result, with the memo-on
// cell actually replaying scores (topo_hits > 0, hit rate in (0,1]) and
// scoring strictly fewer fresh candidates. When maxMemoRatio > 0, the
// memo-on serial wall time must stay within that multiple of the memo-off
// twin's (1.0 = "the memo must not cost time", the committed-snapshot gate).
func checkFile(path string, minSpeedup, maxObsOverhead, maxMemoRatio float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Schema != schemaID {
		return fmt.Errorf("schema %q, want %q", rep.Schema, schemaID)
	}
	if rep.CPUs < 1 || rep.GoVersion == "" {
		return fmt.Errorf("missing host metadata")
	}
	if len(rep.Backends) == 0 {
		return fmt.Errorf("no backends recorded")
	}
	if len(rep.Entries) == 0 {
		return fmt.Errorf("no entries")
	}
	serialByBackend := map[string]bool{}
	for _, e := range rep.Entries {
		if e.Backend == "" || e.Workers < 1 {
			return fmt.Errorf("entry %s: missing backend/workers", e.Name)
		}
		if e.Workers == 1 {
			serialByBackend[e.Backend] = true
		}
		if e.NsPerOp <= 0 {
			return fmt.Errorf("entry %s: ns_per_op %d", e.Name, e.NsPerOp)
		}
		// Evaluate may legitimately be zero: the SPR workload reads its
		// likelihoods off MakeNewz, so only the other kernels must show up.
		if e.Newviews == 0 || e.Makenewzs == 0 || e.Flops == 0 {
			return fmt.Errorf("entry %s: zero kernel counters", e.Name)
		}
		if !(e.LogL < 0) {
			return fmt.Errorf("entry %s: implausible logL %v", e.Name, e.LogL)
		}
	}
	for _, bk := range rep.Backends {
		if !serialByBackend[bk] {
			return fmt.Errorf("backend %s has no 1-worker entry", bk)
		}
	}
	ref := rep.Entries[0]
	for _, e := range rep.Entries[1:] {
		if math.Abs(ref.LogL-e.LogL) > 1e-9*math.Max(1, math.Abs(ref.LogL)) {
			return fmt.Errorf("entries disagree on logL: %s %.12f vs %s %.12f",
				ref.Name, ref.LogL, e.Name, e.LogL)
		}
		if ref.Moves != e.Moves || ref.Rounds != e.Rounds {
			return fmt.Errorf("entries disagree on search path: %s vs %s", ref.Name, e.Name)
		}
	}
	if len(rep.Speedups) == 0 && len(rep.Entries) > 1 {
		return fmt.Errorf("no speedups recorded for a multi-entry matrix")
	}
	for name, v := range rep.Speedups {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("speedup %s: %v", name, v)
		}
	}

	// Topology-memo gate: every backend carries a serial memo-off twin; the
	// memo-on serial cell must have replayed scores (hits > 0) and scored
	// strictly fewer fresh candidates, while memo-off cells must report no
	// memo activity at all. The search-result agreement across the memo axis
	// was already enforced by the determinism loop above.
	for _, bk := range rep.Backends {
		var on, off *Entry
		for i := range rep.Entries {
			e := &rep.Entries[i]
			if e.Backend != bk || e.Workers != 1 {
				continue
			}
			if e.TopoMemo {
				on = e
			} else {
				off = e
			}
		}
		if on == nil || off == nil {
			return fmt.Errorf("backend %s: missing serial memo-on/memo-off pair", bk)
		}
		if off.TopoHits != 0 || off.TopoHitRate != 0 {
			return fmt.Errorf("%s: memo-off cell reports memo activity (hits %d, rate %v)",
				off.Name, off.TopoHits, off.TopoHitRate)
		}
		if on.TopoHits == 0 || on.TopoHitRate <= 0 || on.TopoHitRate > 1 {
			return fmt.Errorf("%s: memo never replayed a score (hits %d, rate %v)",
				on.Name, on.TopoHits, on.TopoHitRate)
		}
		if off.CandsScored == 0 || on.CandsScored >= off.CandsScored {
			return fmt.Errorf("%s scored %d fresh candidates, memo-off twin %d — the memo deleted no work",
				on.Name, on.CandsScored, off.CandsScored)
		}
		if maxMemoRatio > 0 {
			ratio := float64(on.NsPerOp) / float64(off.NsPerOp)
			if ratio > maxMemoRatio {
				return fmt.Errorf("%s: memo-on wall time %.3fx of memo-off exceeds the %.2fx budget",
					on.Name, ratio, maxMemoRatio)
			}
		}
	}

	// Redundancy gate: the recorded newview_ratios must cover every pooled
	// cell, agree with the entries they summarize, and stay within budget.
	want := newviewRatios(rep.Entries)
	for name, w := range want {
		got, ok := rep.NewviewRatios[name]
		if !ok {
			return fmt.Errorf("newview ratio for %s missing", name)
		}
		if math.Abs(got-w) > 1e-9 {
			return fmt.Errorf("newview ratio %s: recorded %.6f, entries say %.6f", name, got, w)
		}
		if got > newviewRatioMax {
			return fmt.Errorf("newview ratio %s: %.3f exceeds redundancy budget %.2f (pooled search redoing serial work — shared vector store not effective)",
				name, got, newviewRatioMax)
		}
	}
	for name := range rep.NewviewRatios {
		if _, ok := want[name]; !ok {
			return fmt.Errorf("newview ratio %s has no matching entries", name)
		}
	}

	// The obs_overhead cell is mandatory in schema /4 and must be internally
	// consistent; the wall-time budget itself is opt-in.
	o := rep.ObsOverhead
	if o == nil {
		return fmt.Errorf("missing obs_overhead cell")
	}
	if o.Backend == "" || o.Workers < 1 || o.BaselineNs <= 0 || o.InstrumentedNs <= 0 {
		return fmt.Errorf("obs_overhead: incomplete cell %+v", *o)
	}
	if want := float64(o.InstrumentedNs) / float64(o.BaselineNs); math.Abs(o.Ratio-want) > 1e-9 {
		return fmt.Errorf("obs_overhead: ratio %.6f inconsistent with timings (want %.6f)", o.Ratio, want)
	}
	if maxObsOverhead > 0 && o.Ratio > maxObsOverhead {
		return fmt.Errorf("obs_overhead: %.3fx exceeds the %.2fx budget (instrumentation no longer free on the hot path)",
			o.Ratio, maxObsOverhead)
	}

	// Scaling gate (opt-in): each backend's pool must pay for itself in wall
	// time at the largest worker count the measuring host could actually run
	// in parallel.
	if minSpeedup > 0 {
		for _, bk := range rep.Backends {
			best := Entry{}
			for _, e := range rep.Entries {
				if e.Backend == bk && e.Workers > 1 && e.Workers <= rep.GOMAXPROCS && e.Workers > best.Workers {
					best = e
				}
			}
			if best.Workers == 0 {
				continue // host too small for any pooled cell; redundancy gate above still applied
			}
			sp, ok := rep.Speedups[best.Name]
			if !ok {
				return fmt.Errorf("no speedup recorded for %s", best.Name)
			}
			if sp < minSpeedup {
				return fmt.Errorf("speedup %s: %.2fx below the %.2fx scaling gate", best.Name, sp, minSpeedup)
			}
		}
	}
	return nil
}
