// Command benchjson measures the task-level-parallelism speedup of the SPR
// search on the 42_SC stand-in workload and writes it as machine-readable
// JSON (BENCH_PR5.json in the repo root is a committed snapshot).
//
// The workload mirrors BenchmarkSearch42SC / BenchmarkParallelSPR42SC in
// bench_test.go: simulate a 42-taxa x 1167-site alignment at the paper's
// benchmark dimensions (seed 62), build the same parsimony starting tree
// every run (seed 63), then hill-climb with Radius 3, MaxRounds 2,
// SmoothPasses 2, Epsilon 0.05 — once serially and once with the
// -search-workers pool. Both runs must land on the identical logL (the pool
// is a scheduling change, not a search change); benchjson enforces that
// before writing.
//
// Usage:
//
//	benchjson -out BENCH_PR5.json            # full measurement (best of -reps)
//	benchjson -quick -out /tmp/smoke.json    # single repetition (CI smoke)
//	benchjson -check BENCH_PR5.json          # parse + validate an existing file
//
// Host metadata (cpus, GOMAXPROCS, Go version) is recorded so a committed
// snapshot from a small container is distinguishable from a multi-core CI
// run; the speedup field is only meaningful when cpus >= workers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/parsimony"
	"raxmlcell/internal/search"
	"raxmlcell/internal/seqsim"
)

// Entry is one measured configuration of the search workload.
type Entry struct {
	Name      string  `json:"name"`
	Workers   int     `json:"workers"`
	Reps      int     `json:"reps"`
	NsPerOp   int64   `json:"ns_per_op"` // best (minimum) wall time of the reps
	LogL      float64 `json:"logL"`
	Rounds    int     `json:"rounds"`
	Moves     int     `json:"moves"`
	Newviews  uint64  `json:"newview_calls"`
	Makenewzs uint64  `json:"makenewz_calls"`
	Evaluates uint64  `json:"evaluate_calls"`
	Flops     uint64  `json:"flops"`
	Exps      uint64  `json:"exps"`
}

// Report is the file schema.
type Report struct {
	Schema     string  `json:"schema"` // "raxmlcell-bench/1"
	Generated  string  `json:"generated"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	CPUs       int     `json:"cpus"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Workload   string  `json:"workload"`
	Entries    []Entry `json:"entries"`
	Speedup    float64 `json:"speedup"` // serial ns_per_op / parallel ns_per_op
}

const schemaID = "raxmlcell-bench/1"

func main() {
	var (
		out     = flag.String("out", "BENCH_PR5.json", "output path")
		workers = flag.Int("workers", 4, "worker-pool size for the parallel entry")
		reps    = flag.Int("reps", 3, "repetitions per entry; the best time is reported")
		quick   = flag.Bool("quick", false, "single repetition (CI smoke)")
		check   = flag.String("check", "", "validate an existing report file and exit")
	)
	flag.Parse()

	if *check != "" {
		if err := checkFile(*check); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *check, err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s report\n", *check, schemaID)
		return
	}

	if *quick {
		*reps = 1
	}
	rep, err := measure(*workers, *reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	// Self-validate what was just written: the committed snapshot must pass
	// the same gate CI applies.
	if err := checkFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: wrote invalid report: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: serial %.2fms, workers=%d %.2fms, speedup %.2fx (cpus=%d)\n",
		*out, float64(rep.Entries[0].NsPerOp)/1e6, *workers,
		float64(rep.Entries[1].NsPerOp)/1e6, rep.Speedup, rep.CPUs)
}

// measure runs the serial and pooled search workloads and assembles the
// report.
func measure(workers, reps int) (*Report, error) {
	rng := rand.New(rand.NewSource(62))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params42SC(), m, rng)
	if err != nil {
		return nil, err
	}
	pat := alignment.Compress(a)

	serial, err := runEntry("serial", pat, 1, reps)
	if err != nil {
		return nil, err
	}
	pooled, err := runEntry(fmt.Sprintf("workers-%d", workers), pat, workers, reps)
	if err != nil {
		return nil, err
	}
	// Determinism gate: the pool must not change the search result.
	if math.Abs(serial.LogL-pooled.LogL) > 1e-9*math.Max(1, math.Abs(serial.LogL)) {
		return nil, fmt.Errorf("pooled logL %.12f != serial %.12f", pooled.LogL, serial.LogL)
	}
	if serial.Moves != pooled.Moves || serial.Rounds != pooled.Rounds {
		return nil, fmt.Errorf("search path diverged: serial %d moves/%d rounds, pooled %d/%d",
			serial.Moves, serial.Rounds, pooled.Moves, pooled.Rounds)
	}

	return &Report{
		Schema:     schemaID,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workload:   "42sc SPR search: seqsim.Params42SC seed 62, parsimony start seed 63, Radius 3, MaxRounds 2, SmoothPasses 2, Epsilon 0.05",
		Entries:    []Entry{*serial, *pooled},
		Speedup:    float64(serial.NsPerOp) / float64(pooled.NsPerOp),
	}, nil
}

// runEntry measures one configuration, reporting the best wall time over
// reps repetitions and the (deterministic) result of the last one.
func runEntry(name string, pat *alignment.Patterns, workers, reps int) (*Entry, error) {
	m := seqsim.DefaultModel()
	e := &Entry{Name: name, Workers: workers, Reps: reps, NsPerOp: math.MaxInt64}
	for r := 0; r < reps; r++ {
		start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(63)))
		if err != nil {
			return nil, err
		}
		eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res, err := search.Run(eng, start, search.Options{
			Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05,
			Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		if ns := time.Since(t0).Nanoseconds(); ns < e.NsPerOp {
			e.NsPerOp = ns
		}
		mt := eng.Meter
		e.LogL, e.Rounds, e.Moves = res.LogL, res.Rounds, res.Moves
		e.Newviews, e.Makenewzs, e.Evaluates = mt.NewviewCalls, mt.MakenewzCalls, mt.EvaluateCalls
		e.Flops, e.Exps = mt.Flops(), mt.Exps
	}
	return e, nil
}

// checkFile parses and validates a report: schema tag, both entries
// present with non-zero timings and kernel counters, matching results.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if rep.Schema != schemaID {
		return fmt.Errorf("schema %q, want %q", rep.Schema, schemaID)
	}
	if rep.CPUs < 1 || rep.GoVersion == "" {
		return fmt.Errorf("missing host metadata")
	}
	if len(rep.Entries) != 2 {
		return fmt.Errorf("%d entries, want 2 (serial + pooled)", len(rep.Entries))
	}
	serial, pooled := rep.Entries[0], rep.Entries[1]
	if serial.Workers != 1 || pooled.Workers < 2 {
		return fmt.Errorf("entry workers (%d, %d), want (1, >=2)", serial.Workers, pooled.Workers)
	}
	for _, e := range rep.Entries {
		if e.NsPerOp <= 0 {
			return fmt.Errorf("entry %s: ns_per_op %d", e.Name, e.NsPerOp)
		}
		// Evaluate may legitimately be zero: the SPR workload reads its
		// likelihoods off MakeNewz, so only the other kernels must show up.
		if e.Newviews == 0 || e.Makenewzs == 0 || e.Flops == 0 {
			return fmt.Errorf("entry %s: zero kernel counters", e.Name)
		}
		if !(e.LogL < 0) {
			return fmt.Errorf("entry %s: implausible logL %v", e.Name, e.LogL)
		}
	}
	if math.Abs(serial.LogL-pooled.LogL) > 1e-9*math.Max(1, math.Abs(serial.LogL)) {
		return fmt.Errorf("entries disagree on logL: %.12f vs %.12f", serial.LogL, pooled.LogL)
	}
	if rep.Speedup <= 0 {
		return fmt.Errorf("speedup %v", rep.Speedup)
	}
	return nil
}
