// Command benchtables regenerates every table and figure of the paper's
// evaluation section — Tables 1a/1b through 8 and Figure 3 — on the
// simulated Cell Broadband Engine, printing simulated versus published
// values. With -markdown it emits the measurement section consumed by
// EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"raxmlcell/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtables: ")

	var (
		markdown = flag.Bool("markdown", false, "emit Markdown tables")
		out      = flag.String("out", "", "write to file instead of stdout")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	exps, err := bench.All(cfg)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	crossover, err := bench.SchedulerCrossover(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if !*markdown {
		for _, e := range exps {
			fmt.Fprintln(w, e.Format())
		}
		fmt.Fprintln(w, "contribution3 — two vs three layers of parallelism (seconds)")
		fmt.Fprintf(w, "  %10s %10s %10s %10s\n", "searches", "EDTLP", "LLP", "MGPS")
		for _, p := range crossover {
			fmt.Fprintf(w, "  %10d %10.2f %10.2f %10.2f\n", p.Searches, p.EDTLP, p.LLP, p.MGPS)
		}
		return
	}

	defer func() {
		fmt.Fprintln(w, "### contribution3 — two vs three layers of parallelism")
		fmt.Fprintln(w)
		fmt.Fprintln(w, "| searches | EDTLP (s) | LLP (s) | MGPS (s) |")
		fmt.Fprintln(w, "|---:|---:|---:|---:|")
		for _, p := range crossover {
			fmt.Fprintf(w, "| %d | %.2f | %.2f | %.2f |\n", p.Searches, p.EDTLP, p.LLP, p.MGPS)
		}
	}()
	for _, e := range exps {
		fmt.Fprintf(w, "### %s — %s\n\n", e.ID, e.Title)
		hasPaper := false
		for _, r := range e.Rows {
			if r.Paper > 0 {
				hasPaper = true
			}
		}
		if hasPaper {
			fmt.Fprintln(w, "| configuration | simulated (s) | paper (s) | deviation |")
			fmt.Fprintln(w, "|---|---:|---:|---:|")
			for _, r := range e.Rows {
				fmt.Fprintf(w, "| %s | %.2f | %.2f | %+.1f%% |\n",
					r.Label, r.Simulated, r.Paper, 100*r.Deviation())
			}
		} else {
			fmt.Fprintln(w, "| series | simulated (s) |")
			fmt.Fprintln(w, "|---|---:|")
			for _, r := range e.Rows {
				fmt.Fprintf(w, "| %s | %.2f |\n", r.Label, r.Simulated)
			}
		}
		fmt.Fprintln(w)
	}
}
