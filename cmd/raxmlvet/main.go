// Command raxmlvet is the project's static-analysis suite (see
// internal/lint): seven analyzers that enforce simulator determinism
// (simdeterminism, plus its interprocedural extension nondettaint),
// incremental-cache coherence (invalidatepair), kernel allocation
// discipline (hotpathalloc), tolerance-based float comparison (floatcmp),
// kernel-context ownership under task parallelism (ctxownership) and
// backend kernel purity (backendpurity). Every run also audits
// //lint:ignore directives and reports the ones that no longer suppress
// anything (unusedsuppression).
//
// It runs in two modes:
//
//	raxmlvet [-json] [packages]     standalone; defaults to ./...
//	go vet -vettool=$(which raxmlvet) ./...
//
// In the second form the go command drives raxmlvet through the vet tool
// protocol: a -V=full version query for build caching, then one invocation
// per package with a JSON config file argument; cross-package analysis
// facts travel through the .vetx files of the same protocol. Exit status
// is non-zero when any finding is reported.
//
// -json prints the findings as one stable, sorted JSON array
// ({analyzer, file, line, col, message}) instead of text — the feed CI
// turns into GitHub annotations.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"raxmlcell/internal/lint"
)

func main() {
	args := os.Args[1:]

	// Vet tool protocol, part 1: version/buildID query used by the go
	// command as a cache key. The content hash of the binary itself keys
	// the cache, so rebuilding raxmlvet with changed analyzers correctly
	// invalidates prior vet results.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" {
			fmt.Printf("raxmlvet version devel buildID=%s\n", selfHash())
			return
		}
		if a == "-V" || a == "--V" {
			fmt.Println("raxmlvet version devel")
			return
		}
	}

	// Vet tool protocol, part 2: flag discovery. We expose no analyzer
	// flags, so the go command passes none through.
	for _, a := range args {
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}

	// Vet tool protocol, part 3: one *.cfg argument per package.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}

	// Standalone mode. The go command never forwards flags (we advertise
	// none in the -flags reply), so -json is purely a standalone switch.
	jsonOut := false
	patterns := args[:0:0]
	for _, a := range args {
		if a == "-json" || a == "--json" {
			jsonOut = true
			continue
		}
		patterns = append(patterns, a)
	}
	clean, err := lint.Main(os.Stdout, "", jsonOut, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raxmlvet:", err)
		os.Exit(1)
	}
	if !clean {
		os.Exit(2)
	}
}

// selfHash returns a short content hash of the running binary.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
