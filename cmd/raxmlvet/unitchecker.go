package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"sort"

	"raxmlcell/internal/lint"
)

// vetConfig mirrors the JSON config the go command writes for each package
// when driving a vet tool (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// moduleLocal reports whether the package under analysis belongs to the
// module being vetted. Only module-local packages get the (comparatively
// expensive) source parse + typecheck on dependency passes: the
// interprocedural analyzers recognize standard-library nondeterminism
// directly at call sites, so no facts need to be mined from GOROOT.
func (cfg *vetConfig) moduleLocal() bool {
	return cfg.ModulePath != "" && !cfg.Standard[cfg.ImportPath]
}

// writeVetx persists the package's exported facts (nil = none) to the
// path the go command designated. The go command threads the file into
// dependent packages' PackageVetx maps and caches it under the vet tool's
// buildID, so a rebuilt raxmlvet re-mines facts automatically.
func writeVetx(cfg *vetConfig, facts *lint.FactSet) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	if facts == nil {
		facts = lint.NewFactSet()
	}
	return os.WriteFile(cfg.VetxOutput, facts.Encode(), 0o666)
}

// readDepFacts merges the fact files of every dependency the go command
// handed us. Unreadable or unrecognized files (e.g. written by a
// pre-fact raxmlvet before the cache key rolled) degrade to no facts
// rather than failing the build.
func readDepFacts(cfg *vetConfig) *lint.FactSet {
	facts := lint.NewFactSet()
	paths := make([]string, 0, len(cfg.PackageVetx))
	for p := range cfg.PackageVetx {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(cfg.PackageVetx[p])
		if err != nil {
			continue
		}
		fs, err := lint.DecodeFacts(bytes.NewReader(data))
		if err != nil {
			continue
		}
		facts.Merge(fs)
	}
	return facts
}

// unitcheck analyzes the single package described by cfgFile and returns
// the process exit code: 0 clean, 1 tool/typecheck error, 2 findings.
// Dependency passes (VetxOnly) run only the fact-producing analyzers and
// report nothing; target passes run the full suite plus the
// unused-suppression audit.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raxmlvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "raxmlvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// Fast path: a dependency outside the module carries no project
	// facts, so skip the typecheck and publish an empty fact file.
	if cfg.VetxOnly && !cfg.moduleLocal() {
		if err := writeVetx(&cfg, nil); err != nil {
			fmt.Fprintln(os.Stderr, "raxmlvet:", err)
			return 1
		}
		return 0
	}

	emptyOut := func(code int) int {
		if err := writeVetx(&cfg, nil); err != nil {
			fmt.Fprintln(os.Stderr, "raxmlvet:", err)
			return 1
		}
		return code
	}

	fset := token.NewFileSet()
	files, err := lint.ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return emptyOut(0)
		}
		fmt.Fprintln(os.Stderr, "raxmlvet:", err)
		return 1
	}
	imp := lint.ExportDataImporter(fset, cfg.ImportMap, func(path string) (string, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return file, nil
	})
	pkg, err := lint.TypeCheck(fset, cfg.ImportPath, cfg.GoVersion, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return emptyOut(0)
		}
		fmt.Fprintln(os.Stderr, "raxmlvet:", err)
		return 1
	}
	pkg.Imported = readDepFacts(&cfg)
	pkg.FactsOnly = cfg.VetxOnly

	diags := lint.RunWithAudit(pkg, lint.All())
	if err := writeVetx(&cfg, pkg.Exported); err != nil {
		fmt.Fprintln(os.Stderr, "raxmlvet:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
