package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"raxmlcell/internal/lint"
)

// vetConfig mirrors the JSON config the go command writes for each package
// when driving a vet tool (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgFile and returns
// the process exit code: 0 clean, 1 tool/typecheck error, 2 findings.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raxmlvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "raxmlvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The go command propagates analysis facts between packages through
	// the Vetx files. This suite is fact-free, but the output file must
	// exist for the go command to cache the (empty) result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("raxmlvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "raxmlvet:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	files, err := lint.ParseFiles(fset, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "raxmlvet:", err)
		return 1
	}
	imp := lint.ExportDataImporter(fset, cfg.ImportMap, func(path string) (string, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return "", fmt.Errorf("no export data for %q", path)
		}
		return file, nil
	})
	pkg, err := lint.TypeCheck(fset, cfg.ImportPath, cfg.GoVersion, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "raxmlvet:", err)
		return 1
	}

	diags := lint.Run(pkg, lint.All())
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
