package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"raxmlcell/internal/lint"
)

// TestRegistersAllAnalyzers pins the analyzer set: dropping one from the
// registry would silently weaken CI, so the exact names are asserted.
func TestRegistersAllAnalyzers(t *testing.T) {
	want := []string{
		"simdeterminism", "nondettaint", "invalidatepair", "hotpathalloc",
		"floatcmp", "ctxownership", "backendpurity",
	}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// buildRaxmlvet compiles the command under test into a temp dir.
func buildRaxmlvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "raxmlvet")
	cmd := exec.Command("go", "build", "-o", bin, "raxmlcell/cmd/raxmlvet")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building raxmlvet: %v\n%s", err, out)
	}
	return bin
}

// writeProbeModule lays out a throwaway module whose internal/sim package
// contains a deliberate time.Now() — the acceptance probe for the lint job.
func writeProbeModule(t *testing.T, dir string, violate bool) {
	t.Helper()
	body := `package sim

func Tick() int64 { return 0 }
`
	if violate {
		body = `package sim

import "time"

func Tick() int64 { return time.Now().UnixNano() }
`
	}
	files := map[string]string{
		"go.mod":              "module lintprobe\n\ngo 1.24\n",
		"internal/sim/sim.go": body,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVettoolProtocol drives the binary exactly as CI does:
// go vet -vettool=raxmlvet must fail on a deliberate time.Now() inside
// internal/sim and pass once it is removed.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and invokes the go toolchain")
	}
	bin := buildRaxmlvet(t)

	t.Run("violation fails", func(t *testing.T) {
		dir := t.TempDir()
		writeProbeModule(t, dir, true)
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("go vet passed on a time.Now() violation\n%s", out)
		}
		if !strings.Contains(string(out), "simdeterminism") {
			t.Fatalf("failure not attributed to simdeterminism:\n%s", out)
		}
	})

	t.Run("clean passes", func(t *testing.T) {
		dir := t.TempDir()
		writeProbeModule(t, dir, false)
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
		}
	})
}

// TestStandaloneMode exercises the go-list-backed loader the same way.
func TestStandaloneMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and invokes the go toolchain")
	}
	bin := buildRaxmlvet(t)

	dir := t.TempDir()
	writeProbeModule(t, dir, true)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone raxmlvet passed on a violation\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit code 2 for findings, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "wall-clock time.Now") {
		t.Fatalf("missing finding in output:\n%s", out)
	}
}

// writeLaunderModule lays out a module where the nondeterminism is
// laundered across a package boundary: internal/util wraps time.Now()
// behind two helpers, internal/sim calls the outer one. Only the
// cross-package facts pass can connect the call to the clock, so these
// tests prove the facts round-trip end-to-end in both driver modes.
func writeLaunderModule(t *testing.T, dir string) {
	t.Helper()
	files := map[string]string{
		"go.mod": "module lintprobe\n\ngo 1.24\n",
		"internal/util/util.go": `package util

import "time"

func Stamp() int64 { return stamp() }

func stamp() int64 { return time.Now().UnixNano() }
`,
		"internal/sim/sim.go": `package sim

import "lintprobe/internal/util"

func Tick() int64 { return util.Stamp() }
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVettoolFactsRoundTrip drives go vet -vettool over the laundering
// module: the util package's facts travel through its .vetx file into
// the sim package's invocation, where the frontier call is flagged.
func TestVettoolFactsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and invokes the go toolchain")
	}
	bin := buildRaxmlvet(t)
	dir := t.TempDir()
	writeLaunderModule(t, dir)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed on cross-package laundered time.Now\n%s", out)
	}
	s := string(out)
	if !strings.Contains(s, "nondettaint") {
		t.Fatalf("failure not attributed to nondettaint:\n%s", s)
	}
	if !strings.Contains(s, "call to util.Stamp") || !strings.Contains(s, "calls util.stamp, which reads the wall clock via time.Now") {
		t.Fatalf("missing interprocedural witness chain:\n%s", s)
	}
}

// TestStandaloneFactsRoundTrip proves the go-list loader threads the
// same facts in memory, and that -json emits the stable CI feed.
func TestStandaloneFactsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and invokes the go toolchain")
	}
	bin := buildRaxmlvet(t)
	dir := t.TempDir()
	writeLaunderModule(t, dir)

	cmd := exec.Command(bin, "-json", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit code 2 for findings, got %v\n%s", err, out)
	}
	var findings []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1:\n%s", len(findings), out)
	}
	f := findings[0]
	if f.Analyzer != "nondettaint" || f.File != filepath.Join("internal", "sim", "sim.go") ||
		f.Line == 0 || f.Col == 0 ||
		!strings.Contains(f.Message, "calls util.stamp, which reads the wall clock") {
		t.Fatalf("unexpected finding: %+v", f)
	}
}

// TestUnusedSuppressionAudit checks the end-to-end audit: a directive
// that suppresses nothing is itself a finding, in both output modes.
func TestUnusedSuppressionAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and invokes the go toolchain")
	}
	bin := buildRaxmlvet(t)
	dir := t.TempDir()
	writeProbeModule(t, dir, false)
	stale := `package sim

// The directive below covers a line with no finding: stale.
//lint:ignore simdeterminism pretends to guard a wall-clock read
func Quiet() int64 { return 1 }
`
	if err := os.WriteFile(filepath.Join(dir, "internal", "sim", "stale.go"), []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit code 2 for a stale directive, got %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "unusedsuppression") ||
		!strings.Contains(s, "//lint:ignore simdeterminism directive suppresses nothing") {
		t.Fatalf("stale directive not reported:\n%s", s)
	}
}

// TestVersionQuery checks the -V=full handshake the go command uses for
// build caching: "<name> version devel buildID=<hash>".
func TestVersionQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildRaxmlvet(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatal(err)
	}
	f := strings.Fields(string(out))
	if len(f) < 4 || f[0] != "raxmlvet" || f[1] != "version" || f[2] != "devel" ||
		!strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Fatalf("malformed -V=full output: %q", out)
	}
}
