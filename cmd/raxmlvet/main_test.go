package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"raxmlcell/internal/lint"
)

// TestRegistersAllAnalyzers pins the analyzer set: dropping one from the
// registry would silently weaken CI, so the exact names are asserted.
func TestRegistersAllAnalyzers(t *testing.T) {
	want := []string{"simdeterminism", "invalidatepair", "hotpathalloc", "floatcmp"}
	all := lint.All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
}

// buildRaxmlvet compiles the command under test into a temp dir.
func buildRaxmlvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "raxmlvet")
	cmd := exec.Command("go", "build", "-o", bin, "raxmlcell/cmd/raxmlvet")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building raxmlvet: %v\n%s", err, out)
	}
	return bin
}

// writeProbeModule lays out a throwaway module whose internal/sim package
// contains a deliberate time.Now() — the acceptance probe for the lint job.
func writeProbeModule(t *testing.T, dir string, violate bool) {
	t.Helper()
	body := `package sim

func Tick() int64 { return 0 }
`
	if violate {
		body = `package sim

import "time"

func Tick() int64 { return time.Now().UnixNano() }
`
	}
	files := map[string]string{
		"go.mod":              "module lintprobe\n\ngo 1.24\n",
		"internal/sim/sim.go": body,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVettoolProtocol drives the binary exactly as CI does:
// go vet -vettool=raxmlvet must fail on a deliberate time.Now() inside
// internal/sim and pass once it is removed.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and invokes the go toolchain")
	}
	bin := buildRaxmlvet(t)

	t.Run("violation fails", func(t *testing.T) {
		dir := t.TempDir()
		writeProbeModule(t, dir, true)
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("go vet passed on a time.Now() violation\n%s", out)
		}
		if !strings.Contains(string(out), "simdeterminism") {
			t.Fatalf("failure not attributed to simdeterminism:\n%s", out)
		}
	})

	t.Run("clean passes", func(t *testing.T) {
		dir := t.TempDir()
		writeProbeModule(t, dir, false)
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
		}
	})
}

// TestStandaloneMode exercises the go-list-backed loader the same way.
func TestStandaloneMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and invokes the go toolchain")
	}
	bin := buildRaxmlvet(t)

	dir := t.TempDir()
	writeProbeModule(t, dir, true)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone raxmlvet passed on a violation\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit code 2 for findings, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "wall-clock time.Now") {
		t.Fatalf("missing finding in output:\n%s", out)
	}
}

// TestVersionQuery checks the -V=full handshake the go command uses for
// build caching: "<name> version devel buildID=<hash>".
func TestVersionQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildRaxmlvet(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatal(err)
	}
	f := strings.Fields(string(out))
	if len(f) < 4 || f[0] != "raxmlvet" || f[1] != "version" || f[2] != "devel" ||
		!strings.HasPrefix(f[len(f)-1], "buildID=") {
		t.Fatalf("malformed -V=full output: %q", out)
	}
}
