// Command seqgen generates synthetic DNA alignments by simulating sequence
// evolution along a random tree under a GTR+Γ model — the stand-in for the
// paper's 42_SC benchmark input (42 taxa x 1167 nucleotides, ~250 distinct
// site patterns).
//
// Usage:
//
//	seqgen -taxa 42 -sites 1167 -seed 1 -out 42sc.phy -tree-out 42sc.nwk
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/seqsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seqgen: ")

	var (
		taxa      = flag.Int("taxa", 42, "number of taxa")
		sites     = flag.Int("sites", 1167, "alignment length")
		seed      = flag.Int64("seed", 1, "random seed")
		mb        = flag.Float64("mean-branch", 0.02, "mean branch length (substitutions/site)")
		alpha     = flag.Float64("alpha", 0.8, "Gamma shape for rate heterogeneity")
		invariant = flag.Float64("invariant", 0.60, "fraction of invariant sites")
		gaps      = flag.Float64("gaps", 0, "fraction of characters replaced by gaps")
		format    = flag.String("format", "phylip", "output format: phylip or fasta")
		out       = flag.String("out", "", "alignment output file (default stdout)")
		treeOut   = flag.String("tree-out", "", "write the true tree (Newick) to this file")
	)
	flag.Parse()

	params := seqsim.Params{
		Taxa: *taxa, Sites: *sites, MeanBranch: *mb, Alpha: *alpha,
		GapFraction: *gaps, InvariantFraction: *invariant,
	}
	rng := rand.New(rand.NewSource(*seed))
	a, tree, err := seqsim.Generate(params, seqsim.DefaultModel(), rng)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch *format {
	case "phylip":
		err = alignment.WritePhylip(w, a)
	case "fasta":
		err = alignment.WriteFasta(w, a)
	default:
		log.Fatalf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *treeOut != "" {
		if err := os.WriteFile(*treeOut, []byte(tree.Newick()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	pat := alignment.Compress(a)
	fmt.Fprintf(os.Stderr, "seqgen: %d taxa x %d sites, %d distinct patterns\n",
		a.NumTaxa(), a.NumSites(), pat.NumPatterns())
}
