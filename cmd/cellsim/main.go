// Command cellsim runs the RAxML workload on the simulated Cell Broadband
// Engine under a chosen optimization stage and scheduler, printing the
// simulated execution time and SPE utilization — a single cell of the
// paper's Tables 1-8 on demand.
//
// Usage:
//
//	cellsim -stage all-offloaded -scheduler mgps -bootstraps 16
//	cellsim -stage naive-offload -workers 2 -bootstraps 8
//	cellsim -workload-from data.phy -stage all-offloaded  # drive the simulator
//	                                                      # from a real Go search
//	cellsim -scheduler mgps -bootstraps 8 -trace out.json # record the timeline
//	                                                      # (open in Perfetto)
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/cell"
	"raxmlcell/internal/cellrt"
	"raxmlcell/internal/core"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/search"
	"raxmlcell/internal/workload"
)

var stageByName = map[string]cellrt.Stage{
	"ppe-only":      cellrt.StagePPEOnly,
	"naive-offload": cellrt.StageNaiveOffload,
	"sdk-exp":       cellrt.StageSDKExp,
	"vector-cond":   cellrt.StageVectorCond,
	"double-buffer": cellrt.StageDoubleBuffer,
	"vector-fp":     cellrt.StageVectorFP,
	"direct-comm":   cellrt.StageDirectComm,
	"all-offloaded": cellrt.StageAllOffloaded,
}

var schedByName = map[string]cellrt.Scheduler{
	"naive": cellrt.SchedNaive,
	"edtlp": cellrt.SchedEDTLP,
	"llp":   cellrt.SchedLLP,
	"mgps":  cellrt.SchedMGPS,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cellsim: ")

	var (
		stageName = flag.String("stage", "all-offloaded", "optimization stage: "+names(stageByName))
		schedName = flag.String("scheduler", "naive", "scheduler: "+names(schedByName))
		workers   = flag.Int("workers", 1, "MPI processes (MGPS sizes itself)")
		boots     = flag.Int("bootstraps", 1, "number of tree searches")
		episodes  = flag.Int("episodes", 0, "scheduling quanta per search (0 = default 150)")
		wlFrom    = flag.String("workload-from", "", "derive the workload from a real search over this alignment instead of the 42_SC paper profile (was -trace before the timeline tracer took that name)")
		traceOut  = flag.String("trace", "", "write the simulated timeline as Chrome trace-event JSON to this file (open in Perfetto or chrome://tracing)")
	)
	flag.Parse()

	stage, ok := stageByName[*stageName]
	if !ok {
		log.Fatalf("unknown stage %q (want one of %s)", *stageName, names(stageByName))
	}
	sched, ok := schedByName[*schedName]
	if !ok {
		log.Fatalf("unknown scheduler %q (want one of %s)", *schedName, names(schedByName))
	}

	prof := workload.Profile42SC()
	if *wlFrom != "" {
		f, err := os.Open(*wlFrom)
		if err != nil {
			log.Fatal(err)
		}
		a, err := alignment.ReadPhylip(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		pat := alignment.Compress(a)
		fmt.Printf("tracing a real search over %d taxa x %d patterns...\n", pat.NumTaxa, pat.NumPatterns())
		cfg := core.DefaultConfig()
		cfg.Search = search.Options{Radius: 3, MaxRounds: 3, SmoothPasses: 3, Epsilon: 0.01, AlphaOpt: true}
		_, meter, err := core.InferOnce(pat, cfg)
		if err != nil {
			log.Fatal(err)
		}
		prof, err = workload.FromMeter(*wlFrom, meter, pat.NumPatterns())
		if err != nil {
			log.Fatal(err)
		}
	}

	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
	}
	cfg := cellrt.Config{
		Stage:     stage,
		Scheduler: sched,
		Workers:   *workers,
		Searches:  *boots,
		Episodes:  *episodes,
	}
	if tracer != nil {
		cfg.Tracer = tracer
	}
	rep, err := cellrt.Run(prof, cell.DefaultCostModel(), cell.DefaultParams(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	if tracer != nil {
		var buf bytes.Buffer
		if err := tracer.WriteJSON(&buf); err != nil {
			log.Fatal(err)
		}
		// Gate the file on the trace-event schema check, so a malformed
		// trace fails the run instead of surfacing later in a viewer.
		n, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*traceOut, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline: %d events written to %s (schema ok)\n", n, *traceOut)
	}

	fmt.Printf("workload %s: %d search(es), stage %v, scheduler %v, %d worker(s)\n",
		prof.Name, *boots, stage, sched, rep.Config.Workers)
	fmt.Printf("simulated time: %.2f s (%d cycles at 3.2 GHz)\n", rep.Seconds, rep.Cycles)
	fmt.Printf("offloaded calls: %.0f, signalling time: %.2f s, max LLP width: %d\n",
		rep.OffloadedCalls, rep.CommSeconds, rep.MaxLLPWidth)
	fmt.Printf("SPE utilization:")
	for i, u := range rep.SPEUtilization {
		fmt.Printf(" spe%d=%.0f%%", i, 100*u)
	}
	fmt.Println()
}

func names[T any](m map[string]T) string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Deterministic help text.
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return strings.Join(out, "|")
}
