// Command raxml is the end-to-end inference tool of the reproduction: it
// reads a DNA alignment (PHYLIP or FASTA), runs multiple maximum likelihood
// tree searches plus non-parametric bootstrapping under GTR+Γ with the
// master-worker runtime, and reports the best-known ML tree with bootstrap
// support values.
//
// Usage:
//
//	raxml -in data.phy -inferences 3 -bootstraps 20 -workers 4 -out best.nwk
//
// Observability: -v raises logging to Debug (per-job lifecycle and search
// trajectories), -quiet lowers it to warnings only, and -debug-addr starts
// an HTTP server exposing net/http/pprof under /debug/pprof/, a /metrics
// snapshot of the live supervision counters and kernel meter (JSON, or
// Prometheus text with ?format=prom), and /debug/flight. -trace-out records
// a wall-clock Chrome trace of the campaign (open in Perfetto); -flight-out
// dumps the flight recorder's final window for post-mortems.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strconv"
	"strings"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/core"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/search"
	"raxmlcell/internal/wallclock"
)

// fatal logs the error through the structured logger and exits non-zero.
func fatal(log *slog.Logger, err error) {
	log.Error("fatal", "error", err)
	os.Exit(1)
}

// writeAndValidate writes an observability artifact to path and re-reads it
// through its validator, returning the validated record count.
func writeAndValidate(path string, write func(*os.File) error, validate func(*os.File) (int, error)) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, err
	}
	rf, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer rf.Close()
	return validate(rf)
}

// dumpObs writes the wall-clock Chrome trace and the flight recorder's
// final event window to the requested files, self-validating each artifact
// on the way out. It runs after the campaign whether or not it succeeded —
// a failed run is when the post-mortems matter most.
func dumpObs(tracer *obs.SpanTracer, flight *obs.FlightRecorder, tracePath, flightPath string) error {
	if tracePath != "" && tracer != nil {
		n, err := writeAndValidate(tracePath,
			func(f *os.File) error { return tracer.WriteJSON(f) },
			func(f *os.File) (int, error) { return obs.ValidateTrace(f) })
		if err != nil {
			return fmt.Errorf("trace %s: %w", tracePath, err)
		}
		fmt.Printf("trace: %d events written to %s\n", n, tracePath)
		if d := tracer.Dropped(); d > 0 {
			fmt.Printf("trace: %d events dropped at the event cap (raise with SetMaxEvents)\n", d)
		}
	}
	if flightPath != "" && flight != nil {
		n, err := writeAndValidate(flightPath,
			func(f *os.File) error { return flight.WriteJSON(f) },
			func(f *os.File) (int, error) { return obs.ValidateFlight(f) })
		if err != nil {
			return fmt.Errorf("flight %s: %w", flightPath, err)
		}
		fmt.Printf("flight: %d events written to %s\n", n, flightPath)
	}
	return nil
}

func main() {
	var (
		in          = flag.String("in", "", "input alignment (PHYLIP or FASTA; required)")
		inferences  = flag.Int("inferences", 3, "number of independent tree searches")
		bootstraps  = flag.Int("bootstraps", 20, "number of bootstrap replicates")
		seed        = flag.Int64("seed", 42, "master random seed")
		workers     = flag.Int("workers", 4, "parallel workers (the MPI process count)")
		searchWk    = flag.Int("search-workers", 1, "concurrent SPR-candidate scoring / wavefront traversal workers inside each search (1 = serial, 0 = auto-size from GOMAXPROCS; see README for the -workers x -search-workers x -threads oversubscription guidance)")
		backend     = flag.String("backend", likelihood.DefaultBackend, "likelihood compute backend: "+strings.Join(likelihood.Backends(), ", "))
		threads     = flag.Int("threads", 1, "goroutines splitting the per-pattern loops inside each likelihood kernel call (the RAxML-OMP loop-level axis)")
		radius      = flag.Int("radius", 5, "SPR rearrangement radius")
		rounds      = flag.Int("rounds", 10, "maximum SPR rounds per search")
		alpha       = flag.Float64("alpha", 0.8, "initial Gamma shape")
		cats        = flag.Int("cats", 4, "Gamma rate categories")
		sdkExp      = flag.Bool("sdk-exp", false, "use the SDK-style fast exp kernel")
		intCond     = flag.Bool("int-cond", false, "use the integer-cast scaling conditional")
		incr        = flag.Bool("incremental", false, "cache partial likelihood vectors incrementally (dirty-flag traversal descriptors); same results, fewer newview calls, but not the paper's measured instruction mix")
		topoMemo    = flag.Bool("topo-memo", true, "memoize SPR/NNI candidate scores by canonical topology hash and skip re-evaluating topologies that provably lose to the acceptance threshold; identical moves and final tree, fewer likelihood evaluations (cache.topo_* metrics)")
		topoMemoCap = flag.Int("topo-memo-cap", 0, "topology memo capacity in entries, FIFO-evicted (0 = default "+strconv.Itoa(search.DefaultTopoMemoCap)+")")
		catCats     = flag.Int("cat", 0, "after the search, re-fit the tree under a CAT model with this many per-site rate categories (0 = off; RAxML default 25)")
		optModel    = flag.Bool("opt-model", false, "fit the GTR exchangeabilities on each final tree")
		startTree   = flag.String("start", "parsimony", "starting tree: parsimony, nj or random")
		checkpoint  = flag.String("checkpoint", "", "persist completed jobs to this file and resume from it")
		retries     = flag.Int("retries", 1, "retries per job after a failure (crash, timeout, invalid result)")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job attempt deadline; a hung job is killed and retried (0 = none)")
		maxQuar     = flag.Int("max-quarantine", 0, "jobs allowed to fail all attempts before the campaign aborts (-1 = unlimited, report partial results)")
		draw        = flag.Bool("draw", false, "print an ASCII rendering of the best tree")
		treesOut    = flag.String("trees-out", "", "write all result trees (best + bootstraps) to this NEXUS file")
		out         = flag.String("out", "", "write the best tree (Newick) to this file")
		verbose     = flag.Bool("v", false, "debug logging: per-job lifecycle, retries, search trajectories")
		quiet       = flag.Bool("quiet", false, "log warnings and errors only")
		debugAddr   = flag.String("debug-addr", "", "serve /debug/pprof/, /metrics and /debug/flight on this address (e.g. localhost:6060) for the duration of the run")
		traceOut    = flag.String("trace-out", "", "record a wall-clock Chrome trace of the campaign (spans for jobs, attempts, search rounds) and write it to this file")
		flightOut   = flag.String("flight-out", "", "write the flight recorder's final event window (JSON) to this file")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	logger := obs.NewLogger(os.Stderr, obs.Level(*verbose, *quiet))
	metrics := obs.NewRegistry()

	// One monotonic clock feeds every wall-clock observer so span starts,
	// flight timestamps and histogram samples share an epoch. The tracer is
	// always constructed (it is the campaign's time source for the latency
	// histograms) but only retains events when a trace was asked for.
	now := wallclock.Monotonic()
	tracer := obs.NewSpanTracer(now)
	tracer.SetRecording(*traceOut != "")
	var flight *obs.FlightRecorder
	if *flightOut != "" || *debugAddr != "" {
		flight = obs.NewFlightRecorder(0, now)
	}

	if *searchWk == 0 {
		// Occupancy-aware auto-sizing: GOMAXPROCS for the first search,
		// capped at the measured search.pool_busy_peak once the registry
		// has one (bootstrap campaigns re-resolve per process, so a pool
		// that never filled up shrinks on the next run).
		*searchWk = search.AutoWorkersFrom(metrics)
	}

	if *debugAddr != "" {
		srv, addr, err := obs.StartDebugServer(*debugAddr, metrics, obs.WithFlight(flight))
		if err != nil {
			fatal(logger, err)
		}
		defer srv.Close()
		logger.Info("debug server listening",
			"pprof", fmt.Sprintf("http://%s/debug/pprof/", addr),
			"metrics", fmt.Sprintf("http://%s/metrics", addr),
			"flight", fmt.Sprintf("http://%s/debug/flight", addr))
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(logger, err)
	}
	var a *alignment.Alignment
	switch {
	case strings.HasSuffix(*in, ".fa") || strings.HasSuffix(*in, ".fasta"):
		a, err = alignment.ReadFasta(f)
	case strings.HasSuffix(*in, ".nex") || strings.HasSuffix(*in, ".nexus"):
		a, err = alignment.ReadNexus(f)
	default:
		a, err = alignment.ReadPhylip(f)
	}
	f.Close()
	if err != nil {
		fatal(logger, err)
	}
	pat := alignment.Compress(a)
	fmt.Printf("alignment: %d taxa x %d sites (%d distinct patterns)\n",
		pat.NumTaxa, pat.NumSites, pat.NumPatterns())

	cfg := core.Config{
		Inferences:    *inferences,
		Bootstraps:    *bootstraps,
		Seed:          *seed,
		Workers:       *workers,
		Alpha:         *alpha,
		Cats:          *cats,
		StartTree:     *startTree,
		Checkpoint:    *checkpoint,
		Retries:       *retries,
		JobTimeout:    *jobTimeout,
		MaxQuarantine: *maxQuar,
		Search: search.Options{
			Radius: *radius, MaxRounds: *rounds,
			SmoothPasses: 4, Epsilon: 0.01, AlphaOpt: true, ModelOpt: *optModel,
			Workers:     *searchWk,
			NoTopoMemo:  !*topoMemo,
			TopoMemoCap: *topoMemoCap,
			// Per-round logL trajectory at -v: runs on the searching
			// goroutine, so it only formats when Debug is enabled.
			OnProgress: func(pr search.Progress) {
				logger.Debug("search round",
					"phase", pr.Phase, "round", pr.Round, "moves", pr.Moves,
					"logl", pr.LogL, "alpha", pr.Alpha)
			},
		},
		Kernel:  likelihood.Config{SDKExp: *sdkExp, IntCond: *intCond, Incremental: *incr, Threads: *threads, Backend: *backend},
		Log:     logger,
		Metrics: metrics,
		Trace:   tracer.Root("campaign"),
		Flight:  flight,
	}
	analysis, err := core.Analyze(pat, cfg)
	// Dump the trace and flight window before acting on the campaign error:
	// a failed run is exactly when the post-mortem artifacts matter.
	if derr := dumpObs(tracer, flight, *traceOut, *flightOut); derr != nil {
		logger.Error("observability dump failed", "error", derr)
	}
	if err != nil {
		fatal(logger, err)
	}

	if *verbose {
		for _, r := range analysis.Results {
			if r.Err != nil {
				fmt.Printf("  %-9v #%-3d quarantined: %v\n", r.Job.Kind, r.Job.Index, r.Err)
				continue
			}
			fmt.Printf("  %-9v #%-3d logL=%.4f alpha=%.3f\n",
				r.Job.Kind, r.Job.Index, r.LogL, r.Alpha)
		}
	}
	st := analysis.Stats
	if st.Retries > 0 || st.Timeouts > 0 || len(analysis.Quarantined) > 0 ||
		st.CheckpointFailures > 0 || st.CheckpointRecovered {
		fmt.Printf("supervision: %d attempts for %d jobs (%d retries, %d timeouts), %d quarantined\n",
			st.Attempts, len(analysis.Results), st.Retries, st.Timeouts, len(analysis.Quarantined))
		if st.CheckpointFailures > 0 {
			fmt.Printf("supervision: %d checkpoint write failures deferred and flushed\n", st.CheckpointFailures)
		}
		if st.CheckpointRecovered {
			fmt.Println("supervision: damaged checkpoint set aside (.corrupt); lost jobs recomputed")
		}
		for _, q := range analysis.Quarantined {
			fmt.Printf("  quarantined %v #%d after %d attempts: %v\n", q.Job.Kind, q.Job.Index, q.Attempts, q.Err)
		}
	}
	fmt.Printf("best ML tree: logL=%.4f alpha=%.3f\n", analysis.BestLogL, analysis.Alpha)
	if *bootstraps > 0 {
		vals := make([]float64, 0, len(analysis.Support))
		for _, v := range analysis.Support {
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			fmt.Println("bootstrap support: no surviving replicates")
		} else {
			sort.Float64s(vals)
			mean := 0.0
			for _, v := range vals {
				mean += v
			}
			mean /= float64(len(vals))
			fmt.Printf("bootstrap support over %d internal branches: mean %.2f, min %.2f, max %.2f\n",
				len(vals), mean, vals[0], vals[len(vals)-1])
		}
	}
	fmt.Printf("kernel profile: %s\n", analysis.Meter.String())

	if *catCats > 1 {
		catCfg := cfg
		catCfg.Seed = *seed
		res, catLL, _, err := core.InferCAT(pat, catCfg, *catCats)
		if err != nil {
			fatal(logger, err)
		}
		fmt.Printf("CAT-%d re-fit: logL=%.4f (Gamma search logL was %.4f)\n", *catCats, catLL, res.LogL)
	}

	if *draw {
		fmt.Println(analysis.Best.Ascii())
	}

	if *treesOut != "" {
		trees := []phylotree.NamedTree{{Name: "best", Tree: analysis.Best}}
		for _, r := range analysis.Results {
			if r.Err != nil {
				continue // quarantined jobs carry no tree
			}
			tr, err := phylotree.ParseNewick(r.Newick)
			if err != nil {
				fatal(logger, err)
			}
			trees = append(trees, phylotree.NamedTree{
				Name: fmt.Sprintf("%v_%d", r.Job.Kind, r.Job.Index),
				Tree: tr,
			})
		}
		tf, err := os.Create(*treesOut)
		if err != nil {
			fatal(logger, err)
		}
		if err := phylotree.WriteNexusTrees(tf, trees); err != nil {
			fatal(logger, err)
		}
		tf.Close()
		fmt.Printf("%d trees written to %s\n", len(trees), *treesOut)
	}

	newick := analysis.Best.Newick()
	if *out != "" {
		if err := os.WriteFile(*out, []byte(newick+"\n"), 0o644); err != nil {
			fatal(logger, err)
		}
		fmt.Printf("tree written to %s\n", *out)
	} else {
		fmt.Println(newick)
	}
}
