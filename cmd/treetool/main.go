// Command treetool is the tree-manipulation utility of the suite: compare
// trees (Robinson-Foulds and branch-score distances), build majority-rule
// consensus trees from a set of replicates, encode topologies (phylo2vec
// vector plus canonical hash), and render trees as ASCII.
//
// Usage:
//
//	treetool rf a.nwk b.nwk
//	treetool consensus -threshold 0.5 trees.nex
//	treetool encode trees.nwk
//	treetool hash -check a.nwk b.nwk
//	treetool draw best.nwk
//
// Tree files may be plain Newick (one tree per line) or NEXUS TREES blocks.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"raxmlcell/internal/phylotree"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("treetool: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "rf":
		cmdRF(os.Args[2:])
	case "consensus":
		cmdConsensus(os.Args[2:])
	case "encode":
		cmdEncode(os.Args[2:])
	case "hash":
		cmdHash(os.Args[2:])
	case "draw":
		cmdDraw(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: treetool rf <a> <b> | consensus [-threshold 0.5] <trees> | encode <trees> | hash [-check <a> <b>] <trees> | draw <tree>")
	os.Exit(2)
}

// readTrees loads trees from a Newick or NEXUS file.
func readTrees(path string) ([]phylotree.NamedTree, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := strings.TrimSpace(string(raw))
	if strings.HasPrefix(strings.ToUpper(text), "#NEXUS") {
		return phylotree.ReadNexusTrees(strings.NewReader(text))
	}
	var out []phylotree.NamedTree
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		tr, err := phylotree.ParseNewick(line)
		if err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, i+1, err)
		}
		out = append(out, phylotree.NamedTree{Name: fmt.Sprintf("tree_%d", len(out)), Tree: tr})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no trees", path)
	}
	return out, nil
}

func cmdRF(args []string) {
	if len(args) != 2 {
		usage()
	}
	ta, err := readTrees(args[0])
	if err != nil {
		log.Fatal(err)
	}
	tb, err := readTrees(args[1])
	if err != nil {
		log.Fatal(err)
	}
	a, b := ta[0].Tree, tb[0].Tree
	if err := b.AlignTaxa(a.Taxa); err != nil {
		log.Fatal(err)
	}
	rf, err := phylotree.RobinsonFoulds(a, b)
	if err != nil {
		log.Fatal(err)
	}
	bsd, err := phylotree.BranchScoreDistance(a, b)
	if err != nil {
		log.Fatal(err)
	}
	maxRF := 2 * (a.NumTips() - 3)
	fmt.Printf("robinson-foulds: %d (max %d, normalized %.3f)\n", rf, maxRF, float64(rf)/float64(maxRF))
	fmt.Printf("branch-score:    %.6f\n", bsd)
}

func cmdConsensus(args []string) {
	fs := flag.NewFlagSet("consensus", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.5, "majority threshold in [0.5, 1)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	named, err := readTrees(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	trees := make([]*phylotree.Tree, len(named))
	taxa := named[0].Tree.Taxa
	for i, nt := range named {
		if err := nt.Tree.AlignTaxa(taxa); err != nil {
			log.Fatalf("tree %s: %v", nt.Name, err)
		}
		trees[i] = nt.Tree
	}
	cons, err := phylotree.MajorityRuleConsensus(trees, *threshold)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d trees, %d majority clades\n", len(trees), cons.CountClades())
	fmt.Println(cons.Newick())
}

// canonicalize relabels the tree to its lexicographically sorted taxon
// order, so vectors and hashes from different files (or differently ordered
// renderings of one tree) are directly comparable.
func canonicalize(tr *phylotree.Tree) error {
	taxa := append([]string(nil), tr.Taxa...)
	sort.Strings(taxa)
	return tr.AlignTaxa(taxa)
}

func cmdEncode(args []string) {
	if len(args) != 1 {
		usage()
	}
	named, err := readTrees(args[0])
	if err != nil {
		log.Fatal(err)
	}
	for _, nt := range named {
		if err := canonicalize(nt.Tree); err != nil {
			log.Fatalf("tree %s: %v", nt.Name, err)
		}
		v, err := nt.Tree.Phylo2Vec()
		if err != nil {
			log.Fatalf("tree %s: %v", nt.Name, err)
		}
		h, err := phylotree.NewTopoHasher(nt.Tree.NumTips()).TreeHash(nt.Tree)
		if err != nil {
			log.Fatalf("tree %s: %v", nt.Name, err)
		}
		parts := make([]string, len(v))
		for i, x := range v {
			parts[i] = fmt.Sprint(x)
		}
		fmt.Printf("%s\t%s\tv=[%s]\n", nt.Name, h, strings.Join(parts, " "))
	}
}

func cmdHash(args []string) {
	fs := flag.NewFlagSet("hash", flag.ExitOnError)
	check := fs.Bool("check", false, "compare the first tree of two files; exit 1 when the topologies differ")
	fs.Parse(args)
	if *check {
		if fs.NArg() != 2 {
			usage()
		}
		ta, err := readTrees(fs.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		tb, err := readTrees(fs.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		a, b := ta[0].Tree, tb[0].Tree
		if err := canonicalize(a); err != nil {
			log.Fatal(err)
		}
		if err := b.AlignTaxa(a.Taxa); err != nil {
			log.Fatal(err)
		}
		hasher := phylotree.NewTopoHasher(a.NumTips())
		ha, err := hasher.TreeHash(a)
		if err != nil {
			log.Fatal(err)
		}
		hb, err := hasher.TreeHash(b)
		if err != nil {
			log.Fatal(err)
		}
		if ha != hb {
			fmt.Printf("differ: %s != %s\n", ha, hb)
			os.Exit(1)
		}
		fmt.Printf("identical: %s\n", ha)
		return
	}
	if fs.NArg() != 1 {
		usage()
	}
	named, err := readTrees(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	for _, nt := range named {
		if err := canonicalize(nt.Tree); err != nil {
			log.Fatalf("tree %s: %v", nt.Name, err)
		}
		h, err := phylotree.NewTopoHasher(nt.Tree.NumTips()).TreeHash(nt.Tree)
		if err != nil {
			log.Fatalf("tree %s: %v", nt.Name, err)
		}
		fmt.Printf("%s\t%s\n", nt.Name, h)
	}
}

func cmdDraw(args []string) {
	if len(args) != 1 {
		usage()
	}
	named, err := readTrees(args[0])
	if err != nil {
		log.Fatal(err)
	}
	for _, nt := range named {
		fmt.Printf("%s:\n%s\n", nt.Name, nt.Tree.Ascii())
	}
}
