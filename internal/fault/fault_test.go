package fault

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

func TestNewValidates(t *testing.T) {
	bad := []Config{
		{PCrash: -0.1},
		{PHang: 1.1},
		{PCheckpoint: 2},
		{PCrash: 0.5, PHang: 0.3, PSlow: 0.2, PCorrupt: 0.1}, // sum > 1
		{SlowDelay: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
	in, err := New(Config{Seed: 1, PCrash: 0.25, PHang: 0.25, PSlow: 0.25, PCorrupt: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if in == nil {
		t.Fatal("nil injector")
	}
}

func TestDecisionsAreDeterministic(t *testing.T) {
	cfg := Config{Seed: 99, PCrash: 0.2, PHang: 0.2, PSlow: 0.2, PCorrupt: 0.2, SlowDelay: 3 * time.Millisecond}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(-5); seed < 50; seed++ {
		for attempt := 1; attempt <= 8; attempt++ {
			da, db := a.JobAttempt(seed, attempt), b.JobAttempt(seed, attempt)
			if da != db {
				t.Fatalf("seed %d attempt %d: %+v != %+v", seed, attempt, da, db)
			}
		}
	}
	for n := 1; n <= 200; n++ {
		if a.CheckpointWrite(n) != b.CheckpointWrite(n) {
			t.Fatalf("checkpoint decision %d differs between identical injectors", n)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, _ := New(Config{Seed: 1, PCrash: 0.5})
	b, _ := New(Config{Seed: 2, PCrash: 0.5})
	same := 0
	for seed := int64(0); seed < 200; seed++ {
		if a.JobAttempt(seed, 1).Kind == b.JobAttempt(seed, 1).Kind {
			same++
		}
	}
	if same == 200 {
		t.Error("injector seed has no effect on decisions")
	}
}

func TestDecisionFrequencies(t *testing.T) {
	in, err := New(Config{Seed: 7, PCrash: 0.1, PHang: 0.2, PSlow: 0.3, PCorrupt: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40000
	counts := map[Kind]int{}
	for i := 0; i < n; i++ {
		counts[in.JobAttempt(int64(i), 1).Kind]++
	}
	want := map[Kind]float64{Crash: 0.1, Hang: 0.2, SlowDown: 0.3, Corrupt: 0.15, None: 0.25}
	for kind, p := range want {
		got := float64(counts[kind]) / n
		if math.Abs(got-p) > 0.015 {
			t.Errorf("%v frequency %.4f, want ~%.2f", kind, got, p)
		}
	}
}

func TestZeroConfigNeverFires(t *testing.T) {
	in, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if d := in.JobAttempt(int64(i), 1+i%5); d.Kind != None {
			t.Fatalf("zero-probability injector fired %v", d.Kind)
		}
		if in.CheckpointWrite(i + 1) {
			t.Fatal("zero-probability injector failed a checkpoint write")
		}
	}
}

func TestAttemptsAreIndependent(t *testing.T) {
	// A job that crashed on attempt 1 must not be doomed to crash forever:
	// the per-attempt draws have to differ.
	in, _ := New(Config{Seed: 11, PCrash: 0.5})
	varies := false
	for seed := int64(0); seed < 50 && !varies; seed++ {
		first := in.JobAttempt(seed, 1).Kind
		for attempt := 2; attempt <= 6; attempt++ {
			if in.JobAttempt(seed, attempt).Kind != first {
				varies = true
				break
			}
		}
	}
	if !varies {
		t.Error("fault decisions identical across attempts; retries could never succeed")
	}
}

func TestSlowDownCarriesDelay(t *testing.T) {
	in, _ := New(Config{Seed: 5, PSlow: 1, SlowDelay: 7 * time.Millisecond})
	d := in.JobAttempt(123, 1)
	if d.Kind != SlowDown || d.Delay != 7*time.Millisecond {
		t.Errorf("decision %+v, want SlowDown with 7ms delay", d)
	}
	// Default delay kicks in when unset.
	in2, _ := New(Config{Seed: 5, PSlow: 1})
	if d := in2.JobAttempt(123, 1); d.Delay != time.Millisecond {
		t.Errorf("default SlowDelay = %v, want 1ms", d.Delay)
	}
}

func TestCheckpointWriteFrequency(t *testing.T) {
	in, _ := New(Config{Seed: 21, PCheckpoint: 0.4})
	fails := 0
	const n = 20000
	for i := 1; i <= n; i++ {
		if in.CheckpointWrite(i) {
			fails++
		}
	}
	if got := float64(fails) / n; math.Abs(got-0.4) > 0.02 {
		t.Errorf("checkpoint failure frequency %.4f, want ~0.4", got)
	}
}

func TestJitter(t *testing.T) {
	seen := map[float64]bool{}
	for seed := int64(0); seed < 100; seed++ {
		for attempt := 1; attempt <= 4; attempt++ {
			j := Jitter(seed, attempt)
			if j < 0 || j >= 1 {
				t.Fatalf("Jitter(%d,%d) = %v outside [0,1)", seed, attempt, j)
			}
			if j != Jitter(seed, attempt) {
				t.Fatalf("Jitter(%d,%d) not deterministic", seed, attempt)
			}
			seen[j] = true
		}
	}
	if len(seen) < 350 {
		t.Errorf("only %d distinct jitter values over 400 coordinates", len(seen))
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		None: "none", Crash: "crash", Hang: "hang", SlowDown: "slowdown",
		Corrupt: "corrupt", CheckpointWrite: "checkpoint-write", Kind(42): "Kind(42)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestErrInjectedIdentity(t *testing.T) {
	wrapped := fmt.Errorf("worker crash: %w", ErrInjected)
	if !errors.Is(wrapped, ErrInjected) {
		t.Error("wrapped injected error lost identity")
	}
}
