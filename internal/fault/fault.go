// Package fault is a deterministic, seed-driven fault injector for the
// master-worker runtime: it decides, as a pure function of (injector seed,
// job seed, attempt), whether a job attempt crashes, hangs, slows down or
// returns a corrupted result, and whether a checkpoint write fails. Because
// every decision is a hash of its coordinates, a chaos run is exactly
// replayable from its seed — the property the chaos test suite relies on to
// assert that supervised runs reproduce fault-free results bit for bit.
//
// The package is covered by the raxmlvet simdeterminism analyzer: it draws
// from no wall clock and no global RNG. Randomness comes from a splitmix64
// hash of the decision coordinates, so decisions for different (job,
// attempt) pairs are independent yet individually reproducible, and the
// order in which workers ask for decisions cannot change them.
package fault

import (
	"errors"
	"fmt"
	"time"
)

// Kind enumerates the injectable fault classes, modelled on the failure
// modes a long MPI bootstrap campaign meets in practice.
type Kind int

const (
	// None: the attempt proceeds unmolested.
	None Kind = iota
	// Crash: the attempt dies immediately, as if its worker process was
	// lost; the supervisor sees an error and may retry.
	Crash
	// Hang: the attempt blocks until the supervisor's per-job deadline
	// kills it — the "silent node" failure mode deadline detection exists
	// for. Without an armed deadline a hang degrades to a crash so the
	// worker pool can never wedge.
	Hang
	// SlowDown: the attempt sleeps for Decision.Delay before doing real
	// work, exercising deadline headroom without changing the result.
	SlowDown
	// Corrupt: the attempt completes but its result payload is mangled
	// (truncated Newick or non-finite log-likelihood); result validation
	// must catch it and the supervisor must retry.
	Corrupt
	// CheckpointWrite: a checkpoint save on the master fails, exercising
	// the deferred-persistence path.
	CheckpointWrite
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case Hang:
		return "hang"
	case SlowDown:
		return "slowdown"
	case Corrupt:
		return "corrupt"
	case CheckpointWrite:
		return "checkpoint-write"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected is the root of every error produced by an injected fault, so
// supervision layers and tests can tell synthetic failures from real ones
// with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Clock abstracts the time source of the supervision layer: per-attempt
// deadlines, backoff sleeps, and slow-down faults all go through it. The
// simdeterminism invariant bars internal/mw and this package from the wall
// clock, so the real implementation lives in internal/wallclock and tests
// inject their own.
type Clock interface {
	// After returns a channel that receives after d elapses.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
}

// Config sets the per-attempt firing probability of each fault kind. The
// four job-fault probabilities are mutually exclusive per attempt (a single
// uniform draw is partitioned between them), so their sum must be <= 1.
type Config struct {
	Seed int64 // injector seed; same seed + same coordinates = same faults

	PCrash   float64 // P(attempt crashes)
	PHang    float64 // P(attempt hangs until its deadline)
	PSlow    float64 // P(attempt is delayed by SlowDelay)
	PCorrupt float64 // P(result payload is mangled)

	PCheckpoint float64 // P(one checkpoint write fails)

	SlowDelay time.Duration // duration a SlowDown fault sleeps (default 1ms)
}

// Injector hands out deterministic fault decisions. It is stateless after
// construction and safe for concurrent use by any number of workers.
type Injector struct {
	cfg Config
}

// New validates the configuration and builds an injector.
func New(cfg Config) (*Injector, error) {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"PCrash", cfg.PCrash}, {"PHang", cfg.PHang}, {"PSlow", cfg.PSlow},
		{"PCorrupt", cfg.PCorrupt}, {"PCheckpoint", cfg.PCheckpoint},
	} {
		if p.v < 0 || p.v > 1 {
			return nil, fmt.Errorf("fault: %s = %v outside [0,1]", p.name, p.v)
		}
	}
	if sum := cfg.PCrash + cfg.PHang + cfg.PSlow + cfg.PCorrupt; sum > 1 {
		return nil, fmt.Errorf("fault: job fault probabilities sum to %v > 1", sum)
	}
	if cfg.SlowDelay < 0 {
		return nil, fmt.Errorf("fault: negative SlowDelay %v", cfg.SlowDelay)
	}
	if cfg.SlowDelay == 0 {
		cfg.SlowDelay = time.Millisecond
	}
	return &Injector{cfg: cfg}, nil
}

// Decision is the fault selected for one job attempt.
type Decision struct {
	Kind  Kind
	Delay time.Duration // sleep length for SlowDown
	Coin  uint64        // deterministic variant selector for the fault's flavour
}

// domain-separation salts so the per-purpose draws are independent streams.
const (
	saltJobDraw  = 0x6a6f6264726177 // "jobdraw"
	saltCoin     = 0x636f696e       // "coin"
	saltCkpt     = 0x636b7074       // "ckpt"
	saltJitter   = 0x6a697474       // "jitt"
	saltInjector = 0x696e6a65       // "inje"
)

// JobAttempt returns the fault for the given (job seed, attempt)
// coordinates; attempt is 1-based. The decision is a pure function of the
// injector seed and the coordinates.
func (in *Injector) JobAttempt(jobSeed int64, attempt int) Decision {
	u := unit(mix(saltInjector, uint64(in.cfg.Seed), saltJobDraw, uint64(jobSeed), uint64(attempt)))
	d := Decision{
		Coin: mix(saltInjector, uint64(in.cfg.Seed), saltCoin, uint64(jobSeed), uint64(attempt)),
	}
	cum := in.cfg.PCrash
	if u < cum {
		d.Kind = Crash
		return d
	}
	cum += in.cfg.PHang
	if u < cum {
		d.Kind = Hang
		return d
	}
	cum += in.cfg.PSlow
	if u < cum {
		d.Kind = SlowDown
		d.Delay = in.cfg.SlowDelay
		return d
	}
	cum += in.cfg.PCorrupt
	if u < cum {
		d.Kind = Corrupt
		return d
	}
	return d
}

// CheckpointWrite reports whether the ordinal-th checkpoint save (1-based)
// should fail.
func (in *Injector) CheckpointWrite(ordinal int) bool {
	if in.cfg.PCheckpoint <= 0 {
		return false
	}
	return unit(mix(saltInjector, uint64(in.cfg.Seed), saltCkpt, uint64(ordinal))) < in.cfg.PCheckpoint
}

// Jitter returns a deterministic uniform draw in [0,1) keyed by (job seed,
// attempt) — the jitter source of the supervision backoff, kept here so the
// whole retry schedule is a pure function of the job seed.
func Jitter(jobSeed int64, attempt int) float64 {
	return unit(mix(saltJitter, uint64(jobSeed), uint64(attempt)))
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix chains splitmix64 over the values, giving a hash of the coordinate
// tuple that is stable across runs and platforms.
func mix(vals ...uint64) uint64 {
	h := uint64(0x8a5cd789635d2dff)
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// unit maps a 64-bit hash onto [0,1) with 53 bits of precision.
func unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
