package workload

import (
	"math/rand"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/parsimony"
	"raxmlcell/internal/search"
	"raxmlcell/internal/seqsim"
)

func TestProfile42SCMatchesPaper(t *testing.T) {
	p := Profile42SC()
	nv := p.Classes[Newview]
	if nv.Count != 230500 {
		t.Errorf("newview count = %g, paper says 230,500", nv.Count)
	}
	if nv.PerCall.LoopFlops != 25554 {
		t.Errorf("newview flops = %g, paper says 25,554", nv.PerCall.LoopFlops)
	}
	if nv.PerCall.Exps != 150 {
		t.Errorf("newview exps = %g, paper says ~150", nv.PerCall.Exps)
	}
	if nv.PerCall.LoopIters != 228 {
		t.Errorf("newview loop iters = %g, paper says 228", nv.PerCall.LoopIters)
	}
	if p.DMABatchBytes != 2048 {
		t.Errorf("DMA buffer = %g, paper tuned 2 KB", p.DMABatchBytes)
	}
	if p.TotalInvocations() != 230500+46000+9500 {
		t.Errorf("total invocations = %g", p.TotalInvocations())
	}
	for c := Class(0); c < NumClasses; c++ {
		ops := p.Classes[c].PerCall
		if ops.ParallelFrac <= 0 || ops.ParallelFrac >= 1 {
			t.Errorf("%v parallel fraction %g out of (0,1)", c, ops.ParallelFrac)
		}
	}
	if p.NestedFrac <= 0 || p.NestedFrac >= 1 {
		t.Errorf("nested fraction %g", p.NestedFrac)
	}
}

func TestClassString(t *testing.T) {
	if Newview.String() != "newview" || Makenewz.String() != "makenewz" ||
		Evaluate.String() != "evaluate" || Class(9).String() == "" {
		t.Error("class names wrong")
	}
}

func TestFromMeterRealSearch(t *testing.T) {
	// Run a real (small) inference, convert its meter to a profile, and
	// check the profile is coherent.
	rng := rand.New(rand.NewSource(3))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params{Taxa: 10, Sites: 300, MeanBranch: 0.1}, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	pat := alignment.Compress(a)
	start, err := parsimony.BuildStepwise(pat, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := search.Run(eng, start, search.Options{Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05, AlphaOpt: true}); err != nil {
		t.Fatal(err)
	}

	prof, err := FromMeter("real-10taxa", &eng.Meter, pat.NumPatterns())
	if err != nil {
		t.Fatal(err)
	}
	if prof.Classes[Newview].Count != float64(eng.Meter.NewviewCalls) {
		t.Error("newview count not preserved")
	}
	if prof.Classes[Makenewz].Count != float64(eng.Meter.MakenewzCalls) {
		t.Error("makenewz count not preserved")
	}
	// Flop conservation: class totals must sum to the meter total.
	total := 0.0
	for c := Class(0); c < NumClasses; c++ {
		total += prof.Classes[c].Count * prof.Classes[c].PerCall.LoopFlops
	}
	meterTotal := float64(eng.Meter.Flops())
	if rel := (total - meterTotal) / meterTotal; rel > 0.01 || rel < -0.01 {
		t.Errorf("flop totals diverge: profile %.3g vs meter %.3g", total, meterTotal)
	}
	// Logs belong to evaluate only.
	if prof.Classes[Newview].PerCall.Logs != 0 || prof.Classes[Evaluate].PerCall.Logs == 0 {
		t.Error("log attribution wrong")
	}
	if prof.Classes[Newview].PerCall.ScaleChecks == 0 {
		t.Error("newview lost its scale checks")
	}
}

func TestFromMeterEmpty(t *testing.T) {
	var m likelihood.Meter
	if _, err := FromMeter("empty", &m, 100); err == nil {
		t.Error("empty meter accepted")
	}
}
