// Package workload describes the RAxML kernel workload that the Cell
// runtime (internal/cellrt) schedules and charges for. A Profile captures
// one full tree search (one bootstrap or inference) as per-kernel-class
// invocation counts and per-invocation operation vectors.
//
// Two sources produce Profiles:
//
//   - Profile42SC() encodes the paper's own published measurements of the
//     42_SC input (230,500 newview invocations, 25,554 flops and ~150 exp()
//     calls per invocation, 228-pattern loops, 2 KB strip-mining buffers),
//     anchored against Table 1a's PPE-only runtime. This is what the table
//     reproductions replay.
//
//   - FromMeter converts a real measured likelihood.Meter from an actual Go
//     tree search into a Profile, tying the simulator to the living
//     implementation.
package workload

import (
	"fmt"

	"raxmlcell/internal/likelihood"
)

// Class identifies one of the three offloadable kernels.
type Class int

const (
	Newview Class = iota
	Makenewz
	Evaluate
	NumClasses
)

func (c Class) String() string {
	switch c {
	case Newview:
		return "newview"
	case Makenewz:
		return "makenewz"
	case Evaluate:
		return "evaluate"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Ops is the per-invocation operation vector of one kernel class.
type Ops struct {
	LoopFlops   float64 // DP flops in the vectorizable likelihood loops
	Exps        float64 // exponential calls (transition-matrix small loop)
	Logs        float64 // logarithm calls (evaluate)
	ScaleChecks float64 // executions of the 8-condition scaling if()
	ScaleEvents float64 // times the scaling body runs
	LoopIters   float64 // big-loop trip count (pattern count)
	Bytes       float64 // likelihood-vector bytes strip-mined through LS

	// OverheadSPE covers everything the op counts above do not: local-store
	// addressing, loop bookkeeping, loads/stores, function dispatch. The
	// ParallelFrac share of (OverheadSPE + loop work) distributes across
	// SPEs under loop-level parallelization; the rest is serial per call.
	OverheadSPE  float64
	OverheadPPE  float64
	ParallelFrac float64
}

// ClassProfile is an invocation class within one search.
type ClassProfile struct {
	Count   float64
	PerCall Ops
}

// Profile is one full tree search.
type Profile struct {
	Name    string
	Classes [NumClasses]ClassProfile

	// NestedFrac is the fraction of newview invocations made from inside
	// makenewz/evaluate; when all three functions live on the SPE those
	// calls need no PPE round trip (Section 5.2.7).
	NestedFrac float64

	// OrchestrationCycles is per-search PPE work that is never offloaded:
	// tree surgery, the search heuristic, MPI bookkeeping, I/O.
	OrchestrationCycles float64

	// DMABatchBytes is the strip-mining buffer size (the paper tuned 2 KB).
	DMABatchBytes float64
}

// Profile42SC reproduces the paper's measured 42_SC workload. The operation
// counts are the paper's own; the overhead constants are fitted so that the
// stage-by-stage runtimes of Tables 1-7 follow from the cost model in
// internal/cell (see EXPERIMENTS.md for the fit).
func Profile42SC() Profile {
	return Profile{
		Name: "42_SC",
		Classes: [NumClasses]ClassProfile{
			Newview: {
				Count: 230500,
				PerCall: Ops{
					LoopFlops:    25554,
					Exps:         150,
					ScaleChecks:  228,
					ScaleEvents:  2,
					LoopIters:    228,
					Bytes:        228 * 128, // three 4-double-per-category vectors + padding
					OverheadSPE:  226000,
					OverheadPPE:  0,
					ParallelFrac: 0.55,
				},
			},
			Makenewz: {
				Count: 46000,
				PerCall: Ops{
					LoopFlops: 60000, // sum table + ~5 Newton iterations
					Exps:      80,
					LoopIters: 228,
					Bytes:     2 * 228 * 128,
					// Newton's branchy control flow is disproportionately
					// expensive on the in-order PPE (OverheadPPE) while the
					// sum-table loops vectorize well on the SPE.
					OverheadSPE:  30000,
					OverheadPPE:  360000,
					ParallelFrac: 0.6,
				},
			},
			Evaluate: {
				Count: 9500,
				PerCall: Ops{
					LoopFlops:    20000,
					Exps:         32,
					Logs:         228,
					LoopIters:    228,
					Bytes:        228 * 128,
					OverheadSPE:  30000,
					OverheadPPE:  120000,
					ParallelFrac: 0.6,
				},
			},
		},
		NestedFrac:          0.6,
		OrchestrationCycles: 7.7e9, // ~2.4 s at 3.2 GHz, always on the PPE
		DMABatchBytes:       2048,
	}
}

// FromMeter summarizes a real measured search into a Profile, distributing
// the meter's aggregate op counts over the recorded invocation counts. The
// overhead constants are taken from the reference 42_SC profile scaled by
// the pattern count, since they model per-iteration bookkeeping the meter
// does not count.
func FromMeter(name string, m *likelihood.Meter, patterns int) (Profile, error) {
	if m.NewviewCalls == 0 {
		return Profile{}, fmt.Errorf("workload: meter has no newview calls")
	}
	ref := Profile42SC()
	scale := float64(patterns) / 228.0
	p := Profile{
		Name:                name,
		NestedFrac:          ref.NestedFrac,
		OrchestrationCycles: ref.OrchestrationCycles,
		DMABatchBytes:       ref.DMABatchBytes,
	}

	nv := float64(m.NewviewCalls)
	counts := [NumClasses]float64{
		Newview:  nv,
		Makenewz: float64(m.MakenewzCalls),
		Evaluate: float64(m.EvaluateCalls),
	}
	// The meter aggregates ops across all kernels; attribute the loop work
	// to the classes that actually ran, in proportion to the reference
	// profile, preserving the real call counts and real totals.
	refFlops := [NumClasses]float64{}
	refTotal := 0.0
	for c := Class(0); c < NumClasses; c++ {
		if counts[c] > 0 {
			refFlops[c] = ref.Classes[c].Count * ref.Classes[c].PerCall.LoopFlops
			refTotal += refFlops[c]
		}
	}
	totalFlops := float64(m.Flops())
	// Logarithms come from evaluate's per-site log and makenewz's Newton
	// iterations; attribute them to evaluate when it ran, else to makenewz.
	logOwner := Evaluate
	if counts[Evaluate] == 0 {
		logOwner = Makenewz
	}
	for c := Class(0); c < NumClasses; c++ {
		if counts[c] == 0 {
			continue
		}
		share := refFlops[c] / refTotal
		refOps := ref.Classes[c].PerCall
		ops := Ops{
			LoopFlops:    totalFlops * share / counts[c],
			Exps:         float64(m.Exps) * share / counts[c],
			LoopIters:    float64(patterns),
			Bytes:        float64(m.BytesStreamed) * share / counts[c],
			OverheadSPE:  refOps.OverheadSPE * scale,
			OverheadPPE:  refOps.OverheadPPE,
			ParallelFrac: refOps.ParallelFrac,
		}
		if c == Newview {
			ops.ScaleChecks = float64(m.ScaleChecks) / nv
			ops.ScaleEvents = float64(m.ScaleEvents) / nv
		}
		if c == logOwner {
			ops.Logs = float64(m.Logs) / counts[c]
		}
		p.Classes[c] = ClassProfile{Count: counts[c], PerCall: ops}
	}
	return p, nil
}

// TotalInvocations returns the number of kernel calls in one search.
func (p *Profile) TotalInvocations() float64 {
	t := 0.0
	for _, c := range p.Classes {
		t += c.Count
	}
	return t
}
