package wallclock

import (
	"testing"
	"time"
)

func TestClock(t *testing.T) {
	c := Clock{}
	start := time.Now()
	c.Sleep(2 * time.Millisecond)
	if time.Since(start) < 2*time.Millisecond {
		t.Error("Sleep returned early")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("After never fired")
	}
}
