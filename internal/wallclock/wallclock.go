// Package wallclock provides the real-time implementation of fault.Clock.
//
// It is a separate package on purpose: the raxmlvet simdeterminism analyzer
// bars internal/mw and internal/fault from touching the wall clock, so the
// supervision layer only ever sees an injected Clock. Production entry
// points (cmd/raxml, internal/core) inject Clock{} here; deterministic
// tests inject their own.
package wallclock

import (
	"time"

	"raxmlcell/internal/fault"
)

// Clock is the wall-clock fault.Clock.
type Clock struct{}

var _ fault.Clock = Clock{}

// After returns a channel that receives after d of real time.
func (Clock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep blocks for d of real time.
func (Clock) Sleep(d time.Duration) { time.Sleep(d) }

// Monotonic returns a monotonic elapsed-time source anchored at the moment
// of the call: each invocation of the returned function reports the real
// time elapsed since Monotonic() itself ran. This is the injection seam for
// the wall-clock observability layer (obs.SpanTracer, latency histograms):
// internal/obs and internal/mw are barred from time.Now by the
// simdeterminism analyzer, so production entry points (cmd/raxml,
// internal/core) mint the time source here and tests substitute
// deterministic counters.
func Monotonic() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}
