// Package bio provides the biological sequence primitives used throughout
// the RAxML-Cell reproduction: the DNA alphabet, IUPAC ambiguity codes, the
// 4-bit state encoding used by the likelihood and parsimony kernels, and a
// sequence container.
//
// The encoding follows RAxML: each nucleotide character maps to a 4-bit mask
// with one bit per base (A=1, C=2, G=4, T=8). Ambiguity codes set several
// bits; a gap or unknown character sets all four. The likelihood kernels use
// the mask to build tip likelihood vectors (bit set => conditional
// probability 1), and the parsimony kernel uses it directly as a Fitch state
// set.
package bio

import "fmt"

// NumStates is the number of character states for DNA data.
const NumStates = 4

// Base bit masks for the 4-bit state encoding.
const (
	BitA byte = 1 << iota
	BitC
	BitG
	BitT
)

// Gap is the 4-bit code of a gap/unknown character: all states possible.
const Gap byte = BitA | BitC | BitG | BitT

// code4 maps an upper-case byte to its 4-bit state mask, or 0 if invalid.
var code4 = [256]byte{
	'A': BitA,
	'C': BitC,
	'G': BitG,
	'T': BitT,
	'U': BitT, // RNA uracil treated as T
	'M': BitA | BitC,
	'R': BitA | BitG,
	'W': BitA | BitT,
	'S': BitC | BitG,
	'Y': BitC | BitT,
	'K': BitG | BitT,
	'V': BitA | BitC | BitG,
	'H': BitA | BitC | BitT,
	'D': BitA | BitG | BitT,
	'B': BitC | BitG | BitT,
	'N': Gap,
	'X': Gap,
	'?': Gap,
	'-': Gap,
	'O': Gap,
}

// char4 maps a 4-bit state mask back to its canonical IUPAC character.
var char4 = [16]byte{
	0:  '?',
	1:  'A',
	2:  'C',
	3:  'M',
	4:  'G',
	5:  'R',
	6:  'S',
	7:  'V',
	8:  'T',
	9:  'W',
	10: 'Y',
	11: 'H',
	12: 'K',
	13: 'D',
	14: 'B',
	15: '-',
}

// Encode returns the 4-bit state mask for a nucleotide character
// (case-insensitive). It reports an error for characters outside the IUPAC
// DNA alphabet.
func Encode(c byte) (byte, error) {
	u := c
	if u >= 'a' && u <= 'z' {
		u -= 'a' - 'A'
	}
	m := code4[u]
	if m == 0 {
		return 0, fmt.Errorf("bio: invalid nucleotide character %q", c)
	}
	return m, nil
}

// MustEncode is Encode for known-valid input; it panics on invalid bytes.
func MustEncode(c byte) byte {
	m, err := Encode(c)
	if err != nil {
		panic(err)
	}
	return m
}

// Decode returns the canonical IUPAC character for a 4-bit state mask.
func Decode(mask byte) byte {
	return char4[mask&0x0f]
}

// IsAmbiguous reports whether the mask represents more than one base.
func IsAmbiguous(mask byte) bool {
	m := mask & 0x0f
	return m&(m-1) != 0
}

// StateIndex returns the 0..3 index (A,C,G,T) of an unambiguous mask and ok
// false for ambiguous or empty masks.
func StateIndex(mask byte) (int, bool) {
	switch mask & 0x0f {
	case BitA:
		return 0, true
	case BitC:
		return 1, true
	case BitG:
		return 2, true
	case BitT:
		return 3, true
	}
	return 0, false
}

// BaseChar returns the character for state index 0..3.
func BaseChar(i int) byte {
	return [NumStates]byte{'A', 'C', 'G', 'T'}[i]
}
