package bio

import (
	"fmt"
	"strings"
)

// Sequence is a named, 4-bit-encoded DNA sequence.
type Sequence struct {
	Name  string
	Codes []byte // one 4-bit state mask per site
}

// NewSequence encodes the raw character data of a sequence. Whitespace inside
// the data is ignored (PHYLIP interleaved files space their blocks).
func NewSequence(name, data string) (*Sequence, error) {
	codes := make([]byte, 0, len(data))
	for i := 0; i < len(data); i++ {
		c := data[i]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			continue
		}
		m, err := Encode(c)
		if err != nil {
			return nil, fmt.Errorf("sequence %q site %d: %w", name, len(codes)+1, err)
		}
		codes = append(codes, m)
	}
	return &Sequence{Name: name, Codes: codes}, nil
}

// Len returns the number of sites.
func (s *Sequence) Len() int { return len(s.Codes) }

// String renders the sequence back to IUPAC characters.
func (s *Sequence) String() string {
	var b strings.Builder
	b.Grow(len(s.Codes))
	for _, m := range s.Codes {
		b.WriteByte(Decode(m))
	}
	return b.String()
}

// GC returns the fraction of unambiguous G/C sites, a common summary
// statistic used to sanity-check synthetic alignments.
func (s *Sequence) GC() float64 {
	if len(s.Codes) == 0 {
		return 0
	}
	gc, total := 0, 0
	for _, m := range s.Codes {
		if IsAmbiguous(m) {
			continue
		}
		total++
		if m == BitG || m == BitC {
			gc++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(gc) / float64(total)
}

// BaseCounts tallies unambiguous base occurrences (A, C, G, T order).
func (s *Sequence) BaseCounts() [NumStates]int {
	var n [NumStates]int
	for _, m := range s.Codes {
		if i, ok := StateIndex(m); ok {
			n[i]++
		}
	}
	return n
}
