package bio

import (
	"testing"
	"testing/quick"
)

func TestEncodeBases(t *testing.T) {
	cases := []struct {
		in   byte
		want byte
	}{
		{'A', BitA}, {'C', BitC}, {'G', BitG}, {'T', BitT},
		{'a', BitA}, {'c', BitC}, {'g', BitG}, {'t', BitT},
		{'U', BitT}, {'u', BitT},
		{'N', Gap}, {'-', Gap}, {'?', Gap}, {'X', Gap},
		{'R', BitA | BitG}, {'Y', BitC | BitT},
		{'M', BitA | BitC}, {'K', BitG | BitT},
		{'S', BitC | BitG}, {'W', BitA | BitT},
		{'V', BitA | BitC | BitG}, {'H', BitA | BitC | BitT},
		{'D', BitA | BitG | BitT}, {'B', BitC | BitG | BitT},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Fatalf("Encode(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Encode(%q) = %04b, want %04b", c.in, got, c.want)
		}
	}
}

func TestEncodeInvalid(t *testing.T) {
	for _, c := range []byte{'Z', 'J', '1', ' ', 0, '*'} {
		if _, err := Encode(c); err == nil {
			t.Errorf("Encode(%q) succeeded, want error", c)
		}
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	// Every nonzero 4-bit mask must decode to a character that re-encodes to
	// the same mask.
	for m := byte(1); m < 16; m++ {
		c := Decode(m)
		got, err := Encode(c)
		if err != nil {
			t.Fatalf("Encode(Decode(%04b)=%q): %v", m, c, err)
		}
		if got != m {
			t.Errorf("round trip %04b -> %q -> %04b", m, c, got)
		}
	}
}

func TestStateIndex(t *testing.T) {
	for i := 0; i < NumStates; i++ {
		mask := byte(1 << i)
		j, ok := StateIndex(mask)
		if !ok || j != i {
			t.Errorf("StateIndex(%04b) = %d,%v want %d,true", mask, j, ok, i)
		}
	}
	for _, m := range []byte{0, 3, 5, 15, 7} {
		if _, ok := StateIndex(m); ok {
			t.Errorf("StateIndex(%04b) ok, want ambiguous", m)
		}
	}
}

func TestIsAmbiguous(t *testing.T) {
	if IsAmbiguous(BitA) || IsAmbiguous(BitT) {
		t.Error("single base flagged ambiguous")
	}
	if !IsAmbiguous(Gap) || !IsAmbiguous(BitA|BitC) {
		t.Error("multi-base mask not flagged ambiguous")
	}
}

func TestBaseChar(t *testing.T) {
	want := "ACGT"
	for i := 0; i < NumStates; i++ {
		if BaseChar(i) != want[i] {
			t.Errorf("BaseChar(%d) = %q want %q", i, BaseChar(i), want[i])
		}
	}
}

func TestMustEncodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncode('Z') did not panic")
		}
	}()
	MustEncode('Z')
}

func TestNewSequence(t *testing.T) {
	s, err := NewSequence("taxon1", "ACGT acgt\nNN--")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 12 {
		t.Fatalf("Len = %d, want 12 (whitespace stripped)", s.Len())
	}
	if got := s.String(); got != "ACGTACGT----" {
		// N and - both canonicalize; N decodes to '-' only if mask==15.
		t.Errorf("String() = %q", got)
	}
}

func TestNewSequenceInvalid(t *testing.T) {
	if _, err := NewSequence("bad", "ACGZ"); err == nil {
		t.Error("invalid character accepted")
	}
}

func TestGCAndCounts(t *testing.T) {
	s, err := NewSequence("x", "GGCCAATT")
	if err != nil {
		t.Fatal(err)
	}
	if gc := s.GC(); gc != 0.5 {
		t.Errorf("GC = %v, want 0.5", gc)
	}
	n := s.BaseCounts()
	if n != [NumStates]int{2, 2, 2, 2} {
		t.Errorf("BaseCounts = %v", n)
	}
	empty := &Sequence{Name: "e"}
	if empty.GC() != 0 {
		t.Error("empty GC should be 0")
	}
	allGap, _ := NewSequence("g", "----")
	if allGap.GC() != 0 {
		t.Error("all-gap GC should be 0")
	}
}

// Property: Decode∘Encode is the identity on unambiguous bases and encoding
// is case-insensitive.
func TestEncodeProperties(t *testing.T) {
	f := func(raw uint8) bool {
		bases := []byte{'A', 'C', 'G', 'T'}
		c := bases[int(raw)%4]
		up, err1 := Encode(c)
		lo, err2 := Encode(c | 0x20)
		return err1 == nil && err2 == nil && up == lo && Decode(up) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
