package mw

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/fault"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/model"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/phylotree"
)

// RetryPolicy is the supervision policy of a campaign: how often a job is
// attempted, how long an attempt may run, and how many permanently failed
// jobs the campaign tolerates. The zero value reproduces the legacy
// semantics — one attempt per job, no deadline, no quarantine limit.
type RetryPolicy struct {
	// MaxAttempts is the attempt budget per job before it is quarantined;
	// values below 1 mean 1 (no retries). Jobs are pure functions of their
	// seed, so a retry reproduces exactly the result the failed attempt
	// would have produced.
	MaxAttempts int
	// JobTimeout is the per-attempt deadline; an attempt that exceeds it
	// is abandoned and counted as a failure (hung-worker detection). Zero
	// disables deadlines. Requires Config.Clock.
	JobTimeout time.Duration
	// Backoff is the base delay before the second attempt of a job; it
	// doubles per subsequent attempt with deterministic jitter in
	// [0.5,1.5) drawn from the job seed. Zero disables backoff.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth; zero means uncapped.
	MaxBackoff time.Duration
	// LimitQuarantine enables the quarantine budget: once more than
	// MaxQuarantine jobs are quarantined, the campaign is cancelled and
	// Supervise returns an error wrapping ErrCampaignAborted. When false
	// (the zero value), any number of quarantined jobs is tolerated and
	// the campaign always completes with a partial-results report.
	LimitQuarantine bool
	// MaxQuarantine is the number of quarantined jobs tolerated when
	// LimitQuarantine is set; 0 aborts on the first quarantined job.
	MaxQuarantine int
}

func (p RetryPolicy) maxAttempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Quarantine records a job that exhausted its attempt budget without
// producing a valid result.
type Quarantine struct {
	Job      Job
	Attempts int
	Err      error // the last attempt's failure

	// Flight is the flight-recorder window snapshotted at the moment the
	// quarantine was declared (nil when no recorder is configured) — the
	// last few thousand supervision events leading up to the failure.
	Flight []obs.FlightEvent
}

// Stats aggregates supervision counters across a campaign.
type Stats struct {
	Attempts       int // job attempts started
	Retries        int // attempts beyond each job's first
	Timeouts       int // attempts abandoned at their deadline
	FaultsInjected int // injected job faults encountered (chaos runs)

	CheckpointFailures  int  // checkpoint writes that failed and were deferred
	CheckpointRecovered bool // a damaged checkpoint file was set aside on load
}

// Report is the full outcome of a supervised campaign. Results holds every
// job that reached a final state, in (kind, index) order; quarantined jobs
// appear both in Results (with Err set to their last failure) and in
// Quarantined.
type Report struct {
	Results     []JobResult
	Quarantined []Quarantine
	Stats       Stats
	// Meter aggregates the kernel meters of every successful job — the
	// merged per-worker accounting, returned here (and republished live
	// through Config.Metrics) rather than only printed by callers.
	Meter likelihood.Meter
}

// aggregateMeter merges the kernel meters of the successful results.
func aggregateMeter(results []JobResult) likelihood.Meter {
	var m likelihood.Meter
	for i := range results {
		if results[i].Err == nil {
			m.Add(&results[i].Meter)
		}
	}
	return m
}

var (
	// ErrTimeout marks an attempt abandoned at its per-job deadline.
	ErrTimeout = errors.New("mw: attempt deadline exceeded")
	// ErrCampaignAborted marks a campaign cancelled because the
	// quarantine limit was breached.
	ErrCampaignAborted = errors.New("mw: quarantine limit breached")
	// ErrInvalidResult marks a completed job whose payload failed
	// validation (unparseable tree or non-finite fitted numbers).
	ErrInvalidResult = errors.New("mw: result failed validation")
)

// ValidateResult checks the integrity of a completed job payload: the tree
// must parse as Newick and the fitted numbers must be finite. Supervision
// treats a validation failure like any other attempt failure, so a
// corrupted result is retried and, if it keeps failing, quarantined.
func ValidateResult(r *JobResult) error {
	if r.Err != nil {
		return r.Err
	}
	if _, err := phylotree.ParseNewick(r.Newick); err != nil {
		return fmt.Errorf("%w: %v job %d: corrupt newick: %v", ErrInvalidResult, r.Job.Kind, r.Job.Index, err)
	}
	if math.IsNaN(r.LogL) || math.IsInf(r.LogL, 0) {
		return fmt.Errorf("%w: %v job %d: non-finite log-likelihood %v", ErrInvalidResult, r.Job.Kind, r.Job.Index, r.LogL)
	}
	if math.IsNaN(r.Alpha) || math.IsInf(r.Alpha, 0) || r.Alpha <= 0 {
		return fmt.Errorf("%w: %v job %d: invalid alpha %v", ErrInvalidResult, r.Job.Kind, r.Job.Index, r.Alpha)
	}
	return nil
}

// backoffDelay is the deterministic pre-attempt delay: exponential doubling
// from the policy's base with jitter in [0.5,1.5) drawn from the job seed,
// capped at MaxBackoff. attempt is the attempt about to start (>= 2).
func backoffDelay(p RetryPolicy, jobSeed int64, attempt int) time.Duration {
	if p.Backoff <= 0 || attempt <= 1 {
		return 0
	}
	exp := attempt - 2
	if exp > 20 {
		exp = 20 // 2^20 x base; past this any realistic cap has applied
	}
	d := p.Backoff << uint(exp)
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return time.Duration(float64(d) * (0.5 + fault.Jitter(jobSeed, attempt)))
}

// outcome is the final state of one job after supervision.
type outcome struct {
	result      JobResult
	attempts    int
	quarantined bool
}

// supervisor owns the shared state of one campaign.
type supervisor struct {
	pat *alignment.Patterns
	mod *model.Model
	cfg Config
	log *slog.Logger

	// attemptHist is the mw.attempt_ms latency histogram, resolved once
	// (nil without Metrics).
	attemptHist *obs.Histogram

	mu          sync.Mutex
	stats       Stats
	quarantined []Quarantine

	stop     chan struct{} // closed when the quarantine limit is breached
	stopOnce sync.Once
}

// count bumps a live supervision counter; a nil registry costs one branch.
func (s *supervisor) count(name string) {
	if s.cfg.Metrics != nil {
		s.cfg.Metrics.Counter(name).Inc()
	}
}

func (s *supervisor) abort() { s.stopOnce.Do(func() { close(s.stop) }) }

func (s *supervisor) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

func (s *supervisor) note(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}

func (s *supervisor) quarantineCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.quarantined)
}

func (s *supervisor) noteQuarantine(q Quarantine) {
	s.mu.Lock()
	s.quarantined = append(s.quarantined, q)
	n := len(s.quarantined)
	s.mu.Unlock()
	if s.cfg.Retry.LimitQuarantine && n > s.cfg.Retry.MaxQuarantine {
		s.abort()
	}
}

// Supervise executes the jobs under the configured retry policy (and fault
// plan, if any) and returns the full campaign report. Unless the quarantine
// limit is breached, Supervise succeeds even when jobs fail permanently:
// the report then carries partial results plus the quarantine list. On a
// limit breach it cancels outstanding work and returns the partial report
// together with an error wrapping ErrCampaignAborted.
func Supervise(pat *alignment.Patterns, mod *model.Model, jobs []Job, cfg Config) (*Report, error) {
	return supervise(pat, mod, jobs, cfg, nil)
}

// supervise is the shared campaign loop. onOutcome, when non-nil, runs in
// the collector goroutine after each job reaches a final state — the hook
// checkpointing uses to persist serially.
func supervise(pat *alignment.Patterns, mod *model.Model, jobs []Job, cfg Config, onOutcome func(*outcome)) (*Report, error) {
	if pat == nil || mod == nil {
		return nil, fmt.Errorf("mw: nil patterns or model")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Log == nil {
		cfg.Log = obs.Discard()
	}
	s := &supervisor{pat: pat, mod: mod, cfg: cfg, log: cfg.Log, stop: make(chan struct{})}
	if cfg.Metrics != nil {
		cfg.Metrics.Gauge("mw.jobs_total").Set(float64(len(jobs)))
		cfg.Metrics.Gauge("mw.workers").Set(float64(cfg.Workers))
		s.attemptHist = cfg.Metrics.Histogram("mw.attempt_ms", obs.MsBuckets)
	}
	s.log.Info("campaign start", "jobs", len(jobs), "workers", cfg.Workers,
		"max_attempts", cfg.Retry.maxAttempts())
	campaign := cfg.Trace.Start("campaign", "mw")
	cfg.Flight.Record("campaign.start", "", 0, -1,
		fmt.Sprintf("jobs=%d workers=%d", len(jobs), cfg.Workers))

	jobCh := make(chan Job)
	outCh := make(chan outcome, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker records onto its own trace track, so the timeline
			// shows the campaign's occupancy the way the sim tracer shows
			// SPE lanes.
			wctx := cfg.Trace.WithTrack("worker-" + strconv.Itoa(w)).WithWorker(w)
			for job := range jobCh {
				outCh <- s.superviseJob(job, w, wctx)
			}
		}(w)
	}
	go func() {
		defer close(jobCh)
		for _, j := range jobs {
			select {
			case jobCh <- j:
			case <-s.stop:
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(outCh)
	}()

	rep := &Report{}
	var failed int
	best := math.Inf(-1)
	for o := range outCh {
		rep.Results = append(rep.Results, o.result)
		if o.result.Err == nil {
			rep.Meter.Add(&o.result.Meter)
			if o.result.LogL > best {
				best = o.result.LogL
			}
		} else {
			failed++
		}
		if cfg.Metrics != nil {
			cfg.Metrics.Counter("mw.jobs_done").Inc()
			cfg.Metrics.Counter(obs.Key("mw.jobs_done", "kind", o.result.Job.Kind.String())).Inc()
			if o.result.Err != nil {
				cfg.Metrics.Counter("mw.jobs_failed").Inc()
			}
			if !math.IsInf(best, -1) {
				cfg.Metrics.Gauge("mw.best_logl").Set(best)
			}
			cfg.Metrics.Histogram("mw.attempts_per_job", []float64{1, 2, 3, 5, 10, 20}).
				Observe(float64(o.attempts))
			obs.PublishMeter(cfg.Metrics, "kernel.", &rep.Meter)
			// Also publish under the backend's own prefix so dashboards can
			// tell kernel traffic apart per compute backend (the totals are
			// the same series while a run uses a single backend, but the
			// name pins which one produced them).
			obs.PublishMeter(cfg.Metrics, "kernel."+cfg.Kernel.BackendName()+".", &rep.Meter)
		}
		s.log.Info("progress",
			"done", len(rep.Results), "total", len(jobs), "failed", failed,
			"quarantined", s.quarantineCount(), "best_logl", best)
		if onOutcome != nil {
			onOutcome(&o)
		}
	}

	campaign.End()
	cfg.Flight.Record("campaign.end", "", 0, -1,
		fmt.Sprintf("done=%d quarantined=%d", len(rep.Results), s.quarantineCount()))

	sortResults(rep.Results)
	s.mu.Lock()
	rep.Stats = s.stats
	rep.Quarantined = append([]Quarantine(nil), s.quarantined...)
	s.mu.Unlock()
	sort.Slice(rep.Quarantined, func(i, j int) bool {
		a, b := rep.Quarantined[i].Job, rep.Quarantined[j].Job
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Index < b.Index
	})
	if p := cfg.Retry; p.LimitQuarantine && len(rep.Quarantined) > p.MaxQuarantine {
		return rep, fmt.Errorf("%w: %d jobs quarantined, limit %d; first: %v",
			ErrCampaignAborted, len(rep.Quarantined), p.MaxQuarantine, rep.Quarantined[0].Err)
	}
	return rep, nil
}

// jobLabel names a job the way trace args and flight events carry it.
func jobLabel(job Job) string {
	return job.Kind.String() + "#" + strconv.Itoa(job.Index)
}

// superviseJob drives one job through its attempt budget: backoff, deadline
// enforcement, result validation, and finally success or quarantine. worker
// is the supervision worker index the job landed on; wctx is that worker's
// trace context.
func (s *supervisor) superviseJob(job Job, worker int, wctx obs.Ctx) outcome {
	label := jobLabel(job)
	jctx := wctx.WithJob(label)
	flight := s.cfg.Flight
	budget := s.cfg.Retry.maxAttempts()
	var last JobResult
	for attempt := 1; attempt <= budget; attempt++ {
		if s.stopped() {
			if last.Err == nil {
				last = JobResult{Job: job, Err: ErrCampaignAborted}
			}
			return outcome{result: last, attempts: attempt - 1}
		}
		if attempt > 1 {
			s.note(func(st *Stats) { st.Retries++ })
			s.count("mw.retries")
			d := backoffDelay(s.cfg.Retry, job.Seed, attempt)
			s.log.Warn("retrying job", "kind", job.Kind.String(), "index", job.Index,
				"attempt", attempt, "backoff", d, "last_error", last.Err)
			flight.Record("backoff", label, attempt, worker, d.String())
			if d > 0 && s.cfg.Clock != nil {
				bsp := jctx.Start("backoff", "mw")
				s.cfg.Clock.Sleep(d)
				bsp.End()
			}
		}
		s.note(func(st *Stats) { st.Attempts++ })
		s.count("mw.attempts")
		flight.Record("attempt", label, attempt, worker, "")
		asp := jctx.Start("attempt", "mw")
		r, timedOut := s.attemptOnce(job, attempt, worker, jctx)
		asp.EndObserve(s.attemptHist)
		if timedOut {
			s.note(func(st *Stats) { st.Timeouts++ })
			s.count("mw.timeouts")
			flight.Record("timeout", label, attempt, worker, s.cfg.Retry.JobTimeout.String())
		}
		if r.Err == nil {
			if verr := ValidateResult(&r); verr != nil {
				r.Err = verr
				s.log.Warn("result failed validation", "kind", job.Kind.String(),
					"index", job.Index, "attempt", attempt, "error", verr)
				flight.Record("invalid-result", label, attempt, worker, verr.Error())
			} else {
				s.log.Debug("job done", "kind", job.Kind.String(), "index", job.Index,
					"attempts", attempt, "logl", r.LogL, "alpha", r.Alpha)
				flight.Record("attempt.ok", label, attempt, worker, "")
				return outcome{result: r, attempts: attempt}
			}
		} else if !timedOut {
			flight.Record("attempt.err", label, attempt, worker, r.Err.Error())
		}
		last = r
	}
	var errDetail string
	if last.Err != nil {
		errDetail = last.Err.Error()
	}
	flight.Record("quarantine", label, budget, worker, errDetail)
	jctx.Instant("quarantine", "mw")
	// Snapshot *after* recording the quarantine event, so the dump attached
	// to the Quarantine includes it.
	s.noteQuarantine(Quarantine{Job: job, Attempts: budget, Err: last.Err, Flight: flight.Snapshot()})
	s.count("mw.quarantined")
	s.log.Error("job quarantined", "kind", job.Kind.String(), "index", job.Index,
		"attempts", budget, "error", last.Err)
	return outcome{result: last, attempts: budget, quarantined: true}
}

// attemptOnce runs a single attempt, arming the per-job deadline when one
// is configured. The second return value reports a deadline expiry.
func (s *supervisor) attemptOnce(job Job, attempt, worker int, jctx obs.Ctx) (JobResult, bool) {
	var dec fault.Decision
	if s.cfg.Fault != nil {
		dec = s.cfg.Fault.JobAttempt(job.Seed, attempt)
		if dec.Kind != fault.None {
			s.note(func(st *Stats) { st.FaultsInjected++ })
			s.count("mw.faults_injected")
			s.cfg.Flight.Record("fault", jobLabel(job), attempt, worker, dec.Kind.String())
		}
	}
	timeout := s.cfg.Retry.JobTimeout
	if timeout <= 0 || s.cfg.Clock == nil {
		return s.execute(job, attempt, worker, jctx, dec, nil), false
	}
	done := make(chan JobResult, 1) // buffered: an abandoned attempt still exits
	kill := make(chan struct{})
	go func() { done <- s.execute(job, attempt, worker, jctx, dec, kill) }()
	select {
	case r := <-done:
		return r, false
	case <-s.cfg.Clock.After(timeout):
		close(kill)
		return JobResult{Job: job, Err: fmt.Errorf("%w: %v job %d attempt %d exceeded %v",
			ErrTimeout, job.Kind, job.Index, attempt, timeout)}, true
	case <-s.stop:
		close(kill)
		return JobResult{Job: job, Err: ErrCampaignAborted}, false
	}
}

// execute runs one attempt end to end, applying the injected fault. kill is
// non-nil only when a deadline is armed; a Hang fault blocks on it so the
// goroutine exits once the supervisor abandons the attempt.
func (s *supervisor) execute(job Job, attempt, worker int, jctx obs.Ctx, dec fault.Decision, kill <-chan struct{}) JobResult {
	switch dec.Kind {
	case fault.Crash:
		return JobResult{Job: job, Err: fmt.Errorf("worker crash on %v job %d attempt %d: %w",
			job.Kind, job.Index, attempt, fault.ErrInjected)}
	case fault.Hang:
		if kill == nil {
			// No deadline armed: an indefinite block would wedge the
			// worker forever, so the hang degrades to an immediate crash.
			return JobResult{Job: job, Err: fmt.Errorf("worker hang (no deadline armed) on %v job %d attempt %d: %w",
				job.Kind, job.Index, attempt, fault.ErrInjected)}
		}
		<-kill
		return JobResult{Job: job, Err: fmt.Errorf("worker hung on %v job %d attempt %d: %w",
			job.Kind, job.Index, attempt, fault.ErrInjected)}
	case fault.SlowDown:
		if s.cfg.Clock != nil && dec.Delay > 0 {
			s.cfg.Clock.Sleep(dec.Delay)
		}
	}
	r := s.runJobSafe(job, attempt, worker, jctx)
	if dec.Kind == fault.Corrupt && r.Err == nil {
		corruptResult(&r, dec.Coin)
	}
	return r
}

// runJobSafe converts a panicking search into a failed attempt: the
// supervision loop then retries or quarantines it like any other failure
// instead of tearing the whole campaign down, and the flight recorder keeps
// the panic value for the post-mortem.
func (s *supervisor) runJobSafe(job Job, attempt, worker int, tctx obs.Ctx) (res JobResult) {
	defer func() {
		if p := recover(); p != nil {
			s.cfg.Flight.Record("panic", jobLabel(job), attempt, worker, fmt.Sprint(p))
			res = JobResult{Job: job, Err: fmt.Errorf("worker panic on %v job %d attempt %d: %v",
				job.Kind, job.Index, attempt, p)}
		}
	}()
	return runJob(s.pat, s.mod, job, s.cfg, tctx)
}

// corruptResult deterministically mangles a completed result the way a
// flaky worker or torn transfer would: an unparseable tree or a non-finite
// likelihood. ValidateResult must catch either flavour.
func corruptResult(r *JobResult, coin uint64) {
	if coin%2 == 0 {
		r.Newick = r.Newick[:len(r.Newick)/2] + "(" // torn mid-transfer, unbalanced
	} else {
		r.LogL = math.NaN()
	}
}

// sortResults orders results by (kind, index) — the stable order every
// public API returns.
func sortResults(results []JobResult) {
	sort.Slice(results, func(i, j int) bool {
		if results[i].Job.Kind != results[j].Job.Kind {
			return results[i].Job.Kind < results[j].Job.Kind
		}
		return results[i].Job.Index < results[j].Job.Index
	})
}
