// Package mw is the master-worker runtime of the reproduction: the
// goroutine/channel analogue of RAxML-VI-HPC's MPI scheme for running many
// independent tree searches — multiple inferences on the original alignment
// plus non-parametric bootstrap replicates — and collecting their results.
//
// Every job is fully determined by its seed, so runs are reproducible for
// any worker count: workers race for jobs but the result of each job does
// not depend on which worker executed it.
package mw

import (
	"fmt"
	"log/slog"
	"math/rand"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/fault"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/model"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/search"
)

// JobKind distinguishes the two workload types of a publishable analysis.
type JobKind int

const (
	// Inference searches on the original alignment from a fresh random
	// stepwise-addition starting tree.
	Inference JobKind = iota
	// Bootstrap searches on a column-resampled replicate of the alignment.
	Bootstrap
)

func (k JobKind) String() string {
	if k == Bootstrap {
		return "bootstrap"
	}
	return "inference"
}

// Job is one independent tree search.
type Job struct {
	Kind  JobKind
	Index int   // ordinal within its kind
	Seed  int64 // determines starting tree and (for bootstraps) resampling
}

// JobResult carries one finished search.
type JobResult struct {
	Job    Job
	Newick string
	LogL   float64
	Alpha  float64
	Meter  likelihood.Meter
	Err    error
}

// Config parameterizes a master-worker run.
type Config struct {
	Workers   int    // concurrent workers (the paper's MPI process count)
	StartTree string // starting-tree kind (see search.StartingTree)
	Search    search.Options
	Kernel    likelihood.Config

	// Retry is the supervision policy: per-attempt deadlines, retry
	// budget, backoff, and quarantine limit. The zero value keeps the
	// legacy semantics — one attempt per job, no deadline, failures
	// recorded in the result rather than aborting the campaign.
	Retry RetryPolicy

	// Fault, when non-nil, injects deterministic faults into job attempts
	// and checkpoint writes. Chaos testing only; production runs leave it
	// nil.
	Fault *fault.Injector

	// Clock supplies the time source for deadlines, backoff sleeps and
	// slow-down faults. The simdeterminism invariant bars this package
	// from the wall clock, so production entry points inject
	// wallclock.Clock; a nil Clock disables deadlines and backoff.
	Clock fault.Clock

	// Log receives structured supervision events — job lifecycle at Debug,
	// campaign progress at Info, retries/timeouts at Warn, quarantines at
	// Error. nil disables logging.
	Log *slog.Logger

	// Metrics, when non-nil, receives live campaign accounting: the
	// mw.* supervision counters, the running best log-likelihood, the
	// mw.attempt_ms / kernel.<backend>.<op>_ms latency histograms, and the
	// kernel.* meter aggregate republished after every completed job —
	// the feed behind the /metrics debug endpoint.
	Metrics *obs.Registry

	// Trace is the wall-clock span context the campaign records into: the
	// campaign span, per-worker tracks, job attempt/backoff spans, and
	// checkpoint saves, all propagated down into the search layer. The
	// zero Ctx disables tracing; its injected time source (when present)
	// also drives the latency histograms and kernel timing, so Metrics
	// without a Trace records no durations.
	Trace obs.Ctx

	// Flight, when non-nil, receives the structured supervision event
	// stream (attempts, retries, timeouts, quarantines, checkpoint
	// activity) into a fixed-size ring for post-mortems; each Quarantine
	// carries a snapshot of the window at the moment it was declared.
	Flight *obs.FlightRecorder

	// OnProgress, when non-nil, receives each job's search trajectory
	// (per-round log-likelihood). It may be called concurrently from
	// several workers and must be safe for that.
	OnProgress func(Job, search.Progress)
}

// Plan builds the standard job list of a full analysis: nInf multiple
// inferences and nBoot bootstraps, with deterministic per-job seeds derived
// from baseSeed.
func Plan(nInf, nBoot int, baseSeed int64) []Job {
	jobs := make([]Job, 0, nInf+nBoot)
	for i := 0; i < nInf; i++ {
		jobs = append(jobs, Job{Kind: Inference, Index: i, Seed: baseSeed + int64(i)*7919})
	}
	for i := 0; i < nBoot; i++ {
		jobs = append(jobs, Job{Kind: Bootstrap, Index: i, Seed: baseSeed + 1_000_003 + int64(i)*7919})
	}
	return jobs
}

// Run executes the jobs over the worker pool and returns results ordered by
// (kind, index). A job error is recorded in its result; Run only fails on
// configuration errors or a quarantine-limit breach (see RetryPolicy). It
// is the thin results-only view over Supervise; callers that need the
// attempt/retry/quarantine accounting should call Supervise directly.
func Run(pat *alignment.Patterns, mod *model.Model, jobs []Job, cfg Config) ([]JobResult, error) {
	rep, err := Supervise(pat, mod, jobs, cfg)
	if err != nil {
		return nil, err
	}
	return rep.Results, nil
}

// runJob executes one search end to end; it owns a private engine, RNG and
// meter so workers share nothing mutable. tctx is the job-labeled span
// context the search records into; its time source also drives the
// per-backend kernel latency histograms.
func runJob(pat *alignment.Patterns, mod *model.Model, job Job, cfg Config, tctx obs.Ctx) JobResult {
	res := JobResult{Job: job}
	rng := rand.New(rand.NewSource(job.Seed))

	work := pat
	if job.Kind == Bootstrap {
		work = alignment.BootstrapReplicate(pat, rng)
	}
	kcfg := cfg.Kernel
	if cfg.Metrics != nil {
		if now := tctx.TimeSource(); now != nil {
			kcfg.Observer = obs.NewKernelHists(cfg.Metrics, kcfg.BackendName())
			kcfg.Now = now
		}
	}
	eng, err := likelihood.NewEngine(work, mod, kcfg)
	if err != nil {
		res.Err = err
		return res
	}
	start, err := search.StartingTree(work, cfg.StartTree, rng)
	if err != nil {
		res.Err = err
		return res
	}
	opts := cfg.Search
	opts.Trace = tctx
	if cfg.OnProgress != nil {
		// Bind the job identity into the per-step trajectory hook, chaining
		// rather than replacing a hook the caller set on the search options
		// themselves (e.g. the CLI's per-round trajectory logging).
		prev := opts.OnProgress
		opts.OnProgress = func(pr search.Progress) {
			if prev != nil {
				prev(pr)
			}
			cfg.OnProgress(job, pr)
		}
	}
	out, err := search.Run(eng, start, opts)
	if err != nil {
		res.Err = err
		return res
	}
	res.Newick = out.Tree.Newick()
	res.LogL = out.LogL
	res.Alpha = out.Alpha
	res.Meter = eng.Meter
	return res
}

// Best returns the result with the highest log-likelihood among the given
// kind (the "best-known ML tree" of the paper), or an error if none
// succeeded.
func Best(results []JobResult, kind JobKind) (*JobResult, error) {
	var best *JobResult
	for i := range results {
		r := &results[i]
		if r.Job.Kind != kind || r.Err != nil {
			continue
		}
		if best == nil || r.LogL > best.LogL {
			best = r
		}
	}
	if best == nil {
		return nil, fmt.Errorf("mw: no successful %v results", kind)
	}
	return best, nil
}
