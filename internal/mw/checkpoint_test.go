package mw

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCheckpointResume(t *testing.T) {
	pat, m := testData(t, 7, 200)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	jobs := Plan(2, 3, 31)

	// Phase 1: run only the first two jobs "before the crash".
	partial, err := RunWithCheckpoint(pat, m, jobs[:2], Config{Workers: 2, Search: fastSearch()}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) != 2 {
		t.Fatalf("partial results = %d", len(partial))
	}

	// Phase 2: restart with the full job list; only the remaining three run.
	full, err := RunWithCheckpoint(pat, m, jobs, Config{Workers: 2, Search: fastSearch()}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(jobs) {
		t.Fatalf("full results = %d, want %d", len(full), len(jobs))
	}

	// Results must equal a fresh uncheckpointed run bit for bit (jobs are
	// seed-determined).
	fresh, err := Run(pat, m, jobs, Config{Workers: 2, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if fresh[i].Job != full[i].Job || fresh[i].Newick != full[i].Newick || fresh[i].LogL != full[i].LogL {
			t.Errorf("job %d differs between fresh and resumed runs", i)
		}
	}

	// Phase 3: everything checkpointed -> nothing re-runs, instant return.
	again, err := RunWithCheckpoint(pat, m, jobs, Config{Workers: 2, Search: fastSearch()}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(jobs) {
		t.Fatalf("no-op resume results = %d", len(again))
	}
}

func TestCheckpointFileFormat(t *testing.T) {
	pat, m := testData(t, 6, 100)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	if _, err := RunWithCheckpoint(pat, m, Plan(1, 1, 5), Config{Workers: 1, Search: fastSearch()}, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d results", len(loaded))
	}
	for _, r := range loaded {
		if r.Newick == "" || r.LogL >= 0 || r.Meter.NewviewCalls == 0 {
			t.Errorf("round-tripped result lost data: %+v", r.Job)
		}
	}
	// Corrupted file rejected.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	// Wrong version rejected.
	if err := os.WriteFile(path, []byte(`{"version":99,"done":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("version mismatch accepted")
	}
	// Missing file is empty, not an error.
	got, err := LoadCheckpoint(filepath.Join(dir, "absent.json"))
	if err != nil || got != nil {
		t.Errorf("missing checkpoint: %v, %v", got, err)
	}
	// Empty path rejected by RunWithCheckpoint.
	if _, err := RunWithCheckpoint(pat, m, Plan(1, 0, 5), Config{}, ""); err == nil {
		t.Error("empty path accepted")
	}
}
