package mw

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"raxmlcell/internal/fault"
)

func TestCheckpointResume(t *testing.T) {
	pat, m := testData(t, 7, 200)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	jobs := Plan(2, 3, 31)

	// Phase 1: run only the first two jobs "before the crash".
	partial, err := RunWithCheckpoint(pat, m, jobs[:2], Config{Workers: 2, Search: fastSearch()}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) != 2 {
		t.Fatalf("partial results = %d", len(partial))
	}

	// Phase 2: restart with the full job list; only the remaining three run.
	full, err := RunWithCheckpoint(pat, m, jobs, Config{Workers: 2, Search: fastSearch()}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(jobs) {
		t.Fatalf("full results = %d, want %d", len(full), len(jobs))
	}

	// Results must equal a fresh uncheckpointed run bit for bit (jobs are
	// seed-determined).
	fresh, err := Run(pat, m, jobs, Config{Workers: 2, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh {
		if fresh[i].Job != full[i].Job || fresh[i].Newick != full[i].Newick || fresh[i].LogL != full[i].LogL {
			t.Errorf("job %d differs between fresh and resumed runs", i)
		}
	}

	// Phase 3: everything checkpointed -> nothing re-runs, instant return.
	again, err := RunWithCheckpoint(pat, m, jobs, Config{Workers: 2, Search: fastSearch()}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(jobs) {
		t.Fatalf("no-op resume results = %d", len(again))
	}
}

func TestCheckpointFileFormat(t *testing.T) {
	pat, m := testData(t, 6, 100)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	if _, err := RunWithCheckpoint(pat, m, Plan(1, 1, 5), Config{Workers: 1, Search: fastSearch()}, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 {
		t.Fatalf("loaded %d results", len(loaded))
	}
	for _, r := range loaded {
		if r.Newick == "" || r.LogL >= 0 || r.Meter.NewviewCalls == 0 {
			t.Errorf("round-tripped result lost data: %+v", r.Job)
		}
	}
	// Corrupted file rejected.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("corrupt checkpoint accepted")
	}
	// Wrong version rejected.
	if err := os.WriteFile(path, []byte(`{"version":99,"done":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Error("version mismatch accepted")
	}
	// Missing file is empty, not an error.
	got, err := LoadCheckpoint(filepath.Join(dir, "absent.json"))
	if err != nil || got != nil {
		t.Errorf("missing checkpoint: %v, %v", got, err)
	}
	// Empty path rejected by RunWithCheckpoint.
	if _, err := RunWithCheckpoint(pat, m, Plan(1, 0, 5), Config{}, ""); err == nil {
		t.Error("empty path accepted")
	}
}

// TestCheckpointRecoversTruncatedFile is the issue's acceptance scenario: a
// checkpoint truncated mid-write must not abort the campaign. The damaged
// file is set aside and the run resumes from the last valid state, finishing
// with results bit-identical to a fresh run.
func TestCheckpointRecoversTruncatedFile(t *testing.T) {
	pat, m := testData(t, 7, 200)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	jobs := Plan(2, 2, 47)

	if _, err := RunWithCheckpoint(pat, m, jobs[:2], Config{Workers: 2, Search: fastSearch()}, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := SuperviseWithCheckpoint(pat, m, jobs, Config{Workers: 2, Search: fastSearch()}, path)
	if err != nil {
		t.Fatalf("truncated checkpoint aborted the campaign: %v", err)
	}
	if !rep.Stats.CheckpointRecovered {
		t.Error("CheckpointRecovered not reported")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("damaged checkpoint not set aside: %v", err)
	}
	fresh, err := Run(pat, m, jobs, Config{Workers: 2, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(fresh) {
		t.Fatalf("recovered run has %d results, want %d", len(rep.Results), len(fresh))
	}
	for i := range fresh {
		if fresh[i].Job != rep.Results[i].Job || fresh[i].Newick != rep.Results[i].Newick || fresh[i].LogL != rep.Results[i].LogL {
			t.Errorf("job %d differs between fresh and recovered runs", i)
		}
	}
	// The rewritten checkpoint must be valid and complete again.
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(jobs) {
		t.Errorf("rewritten checkpoint has %d entries, want %d", len(loaded), len(jobs))
	}
}

// TestCheckpointWriteFaultsTolerated injects checkpoint-write failures: the
// campaign must complete anyway, defer the failed saves, and leave a valid,
// complete checkpoint behind.
func TestCheckpointWriteFaultsTolerated(t *testing.T) {
	pat, m := testData(t, 6, 100)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	jobs := Plan(2, 4, 59)

	inj, err := fault.New(fault.Config{Seed: 8, PCheckpoint: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := SuperviseWithCheckpoint(pat, m, jobs, Config{Workers: 3, Search: fastSearch(), Fault: inj}, path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.CheckpointFailures == 0 {
		t.Error("no checkpoint failures recorded despite p=0.6 injector")
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("final checkpoint invalid: %v", err)
	}
	if len(loaded) != len(jobs) {
		t.Errorf("final checkpoint has %d entries, want %d", len(loaded), len(jobs))
	}
	for _, r := range loaded {
		if r.Err != nil {
			t.Errorf("job %+v persisted as failed: %v", r.Job, r.Err)
		}
	}
}

// TestResumedFailureIsRetried is the regression test for the Err
// round-tripping fix: a failed job restored from a checkpoint must carry
// the ErrResumed sentinel and must be re-run on resume instead of being
// treated as done.
func TestResumedFailureIsRetried(t *testing.T) {
	pat, m := testData(t, 7, 200)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	jobs := Plan(1, 1, 67)

	// Forge a checkpoint in which the inference failed and the bootstrap
	// succeeded with a stale (but valid) payload.
	good, err := Run(pat, m, jobs, Config{Workers: 1, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	forged := []JobResult{
		{Job: jobs[0], Err: errors.New("worker lost during previous campaign")},
		good[1],
	}
	if err := saveCheckpoint(path, forged); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var restoredErr error
	for _, r := range loaded {
		if r.Job == jobs[0] {
			restoredErr = r.Err
		}
	}
	if restoredErr == nil {
		t.Fatal("forged failure lost on load")
	}
	if !errors.Is(restoredErr, ErrResumed) {
		t.Errorf("restored error %v does not wrap ErrResumed", restoredErr)
	}

	rep, err := SuperviseWithCheckpoint(pat, m, jobs, Config{Workers: 1, Search: fastSearch()}, path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Errorf("job %+v still failed after resume: %v", r.Job, r.Err)
		}
	}
	if rep.Stats.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (only the restored failure re-runs)", rep.Stats.Attempts)
	}
	if rep.Results[0].Newick != good[0].Newick {
		t.Error("re-run job differs from fresh result")
	}
}

// TestCheckpointEntrySanitization: duplicate jobs are deduplicated and
// "successful" entries with invalid payloads are downgraded to restored
// failures, so they re-run.
func TestCheckpointEntrySanitization(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.json")
	blob := `{"version":1,"done":[
	 {"kind":0,"index":0,"seed":5,"newick":"(a:0.1,b:0.1,(c:0.1,d:0.1):0.1);","logl":-10,"alpha":0.9,"meter":{}},
	 {"kind":0,"index":0,"seed":5,"err":"late duplicate failure"},
	 {"kind":1,"index":0,"seed":9,"newick":"(a:0.1,(b:0.1","logl":-12,"alpha":0.9,"meter":{}},
	 {"kind":1,"index":1,"seed":13,"newick":"(a:0.1,b:0.1,(c:0.1,d:0.1):0.1);","logl":-12,"alpha":-3,"meter":{}}
	]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 3 {
		t.Fatalf("loaded %d entries, want 3 after dedup", len(loaded))
	}
	byJob := map[Job]JobResult{}
	for _, r := range loaded {
		byJob[r.Job] = r
	}
	if r := byJob[Job{Kind: Inference, Index: 0, Seed: 5}]; r.Err != nil {
		t.Errorf("valid entry lost to duplicate failure: %v", r.Err)
	}
	if r := byJob[Job{Kind: Bootstrap, Index: 0, Seed: 9}]; r.Err == nil || !errors.Is(r.Err, ErrResumed) {
		t.Errorf("torn-newick entry not downgraded to restored failure: %+v", r)
	}
	if r := byJob[Job{Kind: Bootstrap, Index: 1, Seed: 13}]; r.Err == nil || !errors.Is(r.Err, ErrInvalidResult) {
		t.Errorf("invalid-alpha entry not rejected: %+v", r)
	}
}
