package mw

import (
	"errors"
	"math"
	"testing"
	"time"

	"raxmlcell/internal/fault"
)

// testClock is a real-time clock for tests; test files are exempt from the
// simdeterminism wall-clock ban, and timeout races are harmless here
// because retries reproduce bit-identical results.
type testClock struct{}

func (testClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (testClock) Sleep(d time.Duration)                  { time.Sleep(d) }

func mustInjector(t *testing.T, cfg fault.Config) *fault.Injector {
	t.Helper()
	in, err := fault.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// requireIdentical asserts that every non-quarantined supervised result is
// bit-identical to the fault-free baseline for the same job.
func requireIdentical(t *testing.T, baseline map[Job]JobResult, rep *Report) {
	t.Helper()
	for _, r := range rep.Results {
		if r.Err != nil {
			continue
		}
		base, ok := baseline[r.Job]
		if !ok {
			t.Fatalf("no baseline for job %+v", r.Job)
		}
		if r.Newick != base.Newick {
			t.Errorf("%v job %d: Newick differs from fault-free run", r.Job.Kind, r.Job.Index)
		}
		if math.Float64bits(r.LogL) != math.Float64bits(base.LogL) {
			t.Errorf("%v job %d: LogL %v != baseline %v", r.Job.Kind, r.Job.Index, r.LogL, base.LogL)
		}
		if math.Float64bits(r.Alpha) != math.Float64bits(base.Alpha) {
			t.Errorf("%v job %d: Alpha %v != baseline %v", r.Job.Kind, r.Job.Index, r.Alpha, base.Alpha)
		}
		if r.Meter != base.Meter {
			t.Errorf("%v job %d: meter differs from fault-free run", r.Job.Kind, r.Job.Index)
		}
	}
}

func TestSuperviseRetriesCrashes(t *testing.T) {
	pat, m := testData(t, 7, 150)
	jobs := Plan(2, 3, 61)
	base, err := Run(pat, m, jobs, Config{Workers: 2, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	byJob := map[Job]JobResult{}
	for _, r := range base {
		byJob[r.Job] = r
	}

	cfg := Config{
		Workers: 4,
		Search:  fastSearch(),
		Retry:   RetryPolicy{MaxAttempts: 8},
		Fault:   mustInjector(t, fault.Config{Seed: 5, PCrash: 0.5}),
	}
	rep, err := Supervise(pat, m, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(rep.Results), len(jobs))
	}
	succeeded := 0
	for _, r := range rep.Results {
		if r.Err == nil {
			succeeded++
		}
	}
	if succeeded == 0 {
		t.Fatal("no job survived p=0.5 crashes with 8 attempts")
	}
	if rep.Stats.Attempts <= len(jobs) {
		t.Errorf("attempts = %d for %d jobs; expected retries under p=0.5 crashes", rep.Stats.Attempts, len(jobs))
	}
	if rep.Stats.Retries != rep.Stats.Attempts-len(jobs) {
		t.Errorf("retries = %d inconsistent with %d attempts over %d jobs", rep.Stats.Retries, rep.Stats.Attempts, len(jobs))
	}
	if rep.Stats.FaultsInjected == 0 {
		t.Error("no faults recorded despite p=0.5 injector")
	}
	requireIdentical(t, byJob, rep)
}

func TestSuperviseQuarantinesAfterBudget(t *testing.T) {
	pat, m := testData(t, 6, 100)
	jobs := Plan(2, 1, 17)
	cfg := Config{
		Workers: 2,
		Search:  fastSearch(),
		Retry:   RetryPolicy{MaxAttempts: 3},
		Fault:   mustInjector(t, fault.Config{Seed: 9, PCrash: 1}),
	}
	rep, err := Supervise(pat, m, jobs, cfg)
	if err != nil {
		t.Fatal(err) // no limit set: campaign must complete degraded
	}
	if len(rep.Quarantined) != len(jobs) {
		t.Fatalf("quarantined = %d, want all %d jobs", len(rep.Quarantined), len(jobs))
	}
	for _, q := range rep.Quarantined {
		if q.Attempts != 3 {
			t.Errorf("job %+v quarantined after %d attempts, want 3", q.Job, q.Attempts)
		}
		if !errors.Is(q.Err, fault.ErrInjected) {
			t.Errorf("quarantine error lost fault identity: %v", q.Err)
		}
	}
	if rep.Stats.Attempts != 3*len(jobs) {
		t.Errorf("attempts = %d, want %d", rep.Stats.Attempts, 3*len(jobs))
	}
	for _, r := range rep.Results {
		if r.Err == nil {
			t.Error("result without error despite certain crashes")
		}
	}
}

func TestSuperviseQuarantineLimitAborts(t *testing.T) {
	pat, m := testData(t, 6, 100)
	jobs := Plan(2, 6, 23)
	cfg := Config{
		Workers: 4,
		Search:  fastSearch(),
		Retry:   RetryPolicy{MaxAttempts: 2, LimitQuarantine: true, MaxQuarantine: 1},
		Fault:   mustInjector(t, fault.Config{Seed: 3, PCrash: 1}),
	}
	rep, err := Supervise(pat, m, jobs, cfg)
	if err == nil {
		t.Fatal("campaign succeeded despite certain crashes and limit 1")
	}
	if !errors.Is(err, ErrCampaignAborted) {
		t.Errorf("error %v does not wrap ErrCampaignAborted", err)
	}
	if rep == nil || len(rep.Quarantined) < 2 {
		t.Errorf("expected a partial report with at least 2 quarantined jobs, got %+v", rep)
	}
}

func TestSuperviseCorruptResultsRetried(t *testing.T) {
	pat, m := testData(t, 7, 150)
	jobs := Plan(1, 2, 41)
	base, err := Run(pat, m, jobs, Config{Workers: 1, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	byJob := map[Job]JobResult{}
	for _, r := range base {
		byJob[r.Job] = r
	}
	cfg := Config{
		Workers: 2,
		Search:  fastSearch(),
		Retry:   RetryPolicy{MaxAttempts: 10},
		Fault:   mustInjector(t, fault.Config{Seed: 77, PCorrupt: 0.6}),
	}
	rep, err := Supervise(pat, m, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, byJob, rep)
	for _, r := range rep.Results {
		if r.Err != nil && !errors.Is(r.Err, ErrInvalidResult) {
			t.Errorf("corrupt-fault failure not a validation error: %v", r.Err)
		}
	}
}

func TestSuperviseHangTimesOutAndRetries(t *testing.T) {
	pat, m := testData(t, 6, 100)
	jobs := Plan(1, 1, 53)
	base, err := Run(pat, m, jobs, Config{Workers: 1, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	byJob := map[Job]JobResult{}
	for _, r := range base {
		byJob[r.Job] = r
	}
	cfg := Config{
		Workers: 2,
		Search:  fastSearch(),
		Retry:   RetryPolicy{MaxAttempts: 12, JobTimeout: 300 * time.Millisecond, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
		Fault:   mustInjector(t, fault.Config{Seed: 31, PHang: 0.5}),
		Clock:   testClock{},
	}
	rep, err := Supervise(pat, m, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Fatalf("job %+v did not recover from hangs: %v", r.Job, r.Err)
		}
	}
	requireIdentical(t, byJob, rep)
	if rep.Stats.Timeouts == 0 && rep.Stats.Retries == 0 {
		// Possible but vanishingly unlikely with p=0.5 over 2 jobs x 12
		// attempts; treat as suspicious.
		t.Log("note: no hang fired for this seed")
	}
}

func TestSuperviseHangWithoutClockDegradesToCrash(t *testing.T) {
	// Without a deadline armed, an injected hang must not wedge the worker
	// pool: it fails fast like a crash. This test hangs forever if the
	// degradation is broken.
	pat, m := testData(t, 6, 100)
	jobs := Plan(1, 1, 29)
	cfg := Config{
		Workers: 1,
		Search:  fastSearch(),
		Retry:   RetryPolicy{MaxAttempts: 2},
		Fault:   mustInjector(t, fault.Config{Seed: 1, PHang: 1}),
	}
	rep, err := Supervise(pat, m, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != len(jobs) {
		t.Errorf("quarantined = %d, want %d", len(rep.Quarantined), len(jobs))
	}
	for _, q := range rep.Quarantined {
		if !errors.Is(q.Err, fault.ErrInjected) {
			t.Errorf("unexpected quarantine error: %v", q.Err)
		}
	}
}

func TestSuperviseSlowDownHarmless(t *testing.T) {
	pat, m := testData(t, 7, 150)
	jobs := Plan(1, 2, 71)
	base, err := Run(pat, m, jobs, Config{Workers: 1, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	byJob := map[Job]JobResult{}
	for _, r := range base {
		byJob[r.Job] = r
	}
	cfg := Config{
		Workers: 2,
		Search:  fastSearch(),
		Fault:   mustInjector(t, fault.Config{Seed: 13, PSlow: 0.8, SlowDelay: 2 * time.Millisecond}),
		Clock:   testClock{},
	}
	rep, err := Supervise(pat, m, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Fatalf("slow-down broke job %+v: %v", r.Job, r.Err)
		}
	}
	requireIdentical(t, byJob, rep)
}

func TestValidateResult(t *testing.T) {
	good := JobResult{Job: Job{Kind: Inference}, Newick: "(a:0.1,b:0.2,(c:0.1,d:0.3):0.05);", LogL: -123.4, Alpha: 0.8}
	if err := ValidateResult(&good); err != nil {
		t.Errorf("valid result rejected: %v", err)
	}
	cases := []JobResult{
		{Newick: "(a:0.1,b:0.2", LogL: -1, Alpha: 1},                                          // torn newick
		{Newick: good.Newick, LogL: math.NaN(), Alpha: 1},                                     // NaN logL
		{Newick: good.Newick, LogL: math.Inf(-1), Alpha: 1},                                   // -Inf logL
		{Newick: good.Newick, LogL: -1, Alpha: math.NaN()},                                    // NaN alpha
		{Newick: good.Newick, LogL: -1, Alpha: -2},                                            // negative alpha
		{Newick: "", LogL: -1, Alpha: 1},                                                      // empty tree
		{Newick: good.Newick, LogL: -1, Alpha: 1, Err: errors.New("already failed upstream")}, // existing error wins
	}
	for i, r := range cases {
		err := ValidateResult(&r)
		if err == nil {
			t.Errorf("case %d accepted: %+v", i, r)
			continue
		}
		if i < len(cases)-1 && !errors.Is(err, ErrInvalidResult) {
			t.Errorf("case %d error lost ErrInvalidResult identity: %v", i, err)
		}
	}
}

func TestBackoffDelay(t *testing.T) {
	p := RetryPolicy{Backoff: 100 * time.Millisecond, MaxBackoff: time.Second}
	if d := backoffDelay(p, 42, 1); d != 0 {
		t.Errorf("attempt 1 backoff = %v, want 0", d)
	}
	if d := backoffDelay(RetryPolicy{}, 42, 3); d != 0 {
		t.Errorf("zero policy backoff = %v, want 0", d)
	}
	// Deterministic for fixed coordinates.
	if backoffDelay(p, 42, 2) != backoffDelay(p, 42, 2) {
		t.Error("backoff not deterministic")
	}
	// Jittered within [0.5x, 1.5x) of the exponential base.
	for attempt := 2; attempt <= 5; attempt++ {
		base := p.Backoff << uint(attempt-2)
		if base > p.MaxBackoff {
			base = p.MaxBackoff
		}
		for seed := int64(0); seed < 40; seed++ {
			d := backoffDelay(p, seed, attempt)
			if d < base/2 || d >= base+base/2 {
				t.Fatalf("backoff(%d,%d) = %v outside [%v,%v)", seed, attempt, d, base/2, base+base/2)
			}
		}
	}
	// Cap applies.
	if d := backoffDelay(p, 7, 30); d >= time.Second+time.Second/2 {
		t.Errorf("capped backoff = %v, want < 1.5s", d)
	}
}

// TestSuperviseRaceStress drives the supervisor's retry and cancellation
// paths hard under the race detector: high worker count, certain faults,
// and a quarantine-limit breach mid-flight.
func TestSuperviseRaceStress(t *testing.T) {
	pat, m := testData(t, 6, 80)
	jobs := Plan(4, 20, 83)

	cfg := Config{
		Workers: 16,
		Search:  fastSearch(),
		Retry:   RetryPolicy{MaxAttempts: 3},
		Fault:   mustInjector(t, fault.Config{Seed: 19, PCrash: 0.25, PCorrupt: 0.25}),
	}
	rep, err := Supervise(pat, m, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != len(jobs) {
		t.Fatalf("results = %d, want %d", len(rep.Results), len(jobs))
	}

	// Same storm with a tight quarantine budget: must cancel cleanly.
	cfg.Retry = RetryPolicy{MaxAttempts: 1, LimitQuarantine: true, MaxQuarantine: 0}
	cfg.Fault = mustInjector(t, fault.Config{Seed: 19, PCrash: 0.9})
	rep, err = Supervise(pat, m, jobs, cfg)
	if err == nil {
		t.Fatal("quarantine-limit breach not reported")
	}
	if !errors.Is(err, ErrCampaignAborted) {
		t.Errorf("error %v does not wrap ErrCampaignAborted", err)
	}
	if rep == nil {
		t.Fatal("no partial report on abort")
	}
}
