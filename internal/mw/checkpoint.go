package mw

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/fault"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/model"
	"raxmlcell/internal/obs"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// ErrResumed is wrapped around job errors restored from a checkpoint, so
// callers can tell a replayed failure from a live one. Restored failures
// are never treated as completed work: RunWithCheckpoint re-runs them.
var ErrResumed = errors.New("mw: failure restored from checkpoint")

// savedResult is the serializable form of a JobResult.
type savedResult struct {
	Kind   JobKind          `json:"kind"`
	Index  int              `json:"index"`
	Seed   int64            `json:"seed"`
	Newick string           `json:"newick"`
	LogL   float64          `json:"logl"`
	Alpha  float64          `json:"alpha"`
	Meter  likelihood.Meter `json:"meter"`
	Err    string           `json:"err,omitempty"`
}

type checkpointFile struct {
	Version int           `json:"version"`
	Done    []savedResult `json:"done"`
}

func toSaved(r JobResult) savedResult {
	s := savedResult{Kind: r.Job.Kind, Index: r.Job.Index, Seed: r.Job.Seed}
	if r.Err != nil {
		// Failed jobs carry no payload: the numbers of a failed attempt
		// are meaningless, and a NaN log-likelihood (e.g. from a corrupted
		// result) would not even survive JSON encoding.
		s.Err = r.Err.Error()
		return s
	}
	s.Newick, s.LogL, s.Alpha, s.Meter = r.Newick, r.LogL, r.Alpha, r.Meter
	return s
}

func fromSaved(s savedResult) JobResult {
	r := JobResult{
		Job:    Job{Kind: s.Kind, Index: s.Index, Seed: s.Seed},
		Newick: s.Newick, LogL: s.LogL, Alpha: s.Alpha, Meter: s.Meter,
	}
	if s.Err != "" {
		r.Err = fmt.Errorf("%s: %w", s.Err, ErrResumed)
	}
	return r
}

// decodeCheckpoint parses and sanitizes raw checkpoint bytes. File-level
// damage (bad JSON, version skew) is an error; entry-level damage is
// recovered: duplicate jobs are deduplicated (a valid result wins over a
// failure, otherwise the last entry wins) and a "successful" entry whose
// payload fails validation is downgraded to a restored failure so the job
// is re-run rather than trusted.
func decodeCheckpoint(raw []byte) ([]JobResult, error) {
	var cf checkpointFile
	if err := json.Unmarshal(raw, &cf); err != nil {
		return nil, fmt.Errorf("mw: parsing checkpoint: %w", err)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("mw: checkpoint version %d, want %d", cf.Version, checkpointVersion)
	}
	byJob := make(map[Job]int, len(cf.Done))
	out := make([]JobResult, 0, len(cf.Done))
	for _, s := range cf.Done {
		r := fromSaved(s)
		if r.Err == nil {
			if verr := ValidateResult(&r); verr != nil {
				r = JobResult{Job: r.Job, Err: fmt.Errorf("%w: %w", verr, ErrResumed)}
			}
		}
		if i, ok := byJob[r.Job]; ok {
			if out[i].Err == nil && r.Err != nil {
				continue // keep the valid duplicate
			}
			out[i] = r
			continue
		}
		byJob[r.Job] = len(out)
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// LoadCheckpoint reads previously completed jobs from path. A missing file
// is not an error: it returns an empty set. File-level corruption (torn
// JSON, version skew) is an error; see RecoverCheckpoint for the lenient
// loader the campaign runner uses.
func LoadCheckpoint(path string) ([]JobResult, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("mw: reading checkpoint: %w", err)
	}
	return decodeCheckpoint(raw)
}

// RecoverCheckpoint is the fault-tolerant loader: file-level damage — a
// file truncated mid-write, torn JSON, version skew — is sidestepped by
// renaming the damaged file to path+".corrupt" and resuming from the empty
// state. Jobs are seed-determined, so re-running them reproduces the lost
// results exactly; nothing is silently wrong, merely recomputed. recovered
// reports whether a damaged file was set aside. Only real I/O errors fail.
func RecoverCheckpoint(path string) (results []JobResult, recovered bool, err error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("mw: reading checkpoint: %w", err)
	}
	results, derr := decodeCheckpoint(raw)
	if derr == nil {
		return results, false, nil
	}
	aside := path + ".corrupt"
	if rerr := os.Rename(path, aside); rerr != nil {
		return nil, false, fmt.Errorf("mw: checkpoint damaged (%v) and could not be set aside: %w", derr, rerr)
	}
	return nil, true, nil
}

// saveCheckpoint writes the completed set atomically (temp file + rename),
// in (kind, index) order so the file is reproducible for a given state.
func saveCheckpoint(path string, done []JobResult) error {
	sorted := append([]JobResult(nil), done...)
	sortResults(sorted)
	cf := checkpointFile{Version: checkpointVersion}
	for _, r := range sorted {
		cf.Done = append(cf.Done, toSaved(r))
	}
	raw, err := json.MarshalIndent(&cf, "", " ")
	if err != nil {
		return fmt.Errorf("mw: encoding checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("mw: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("mw: committing checkpoint: %w", err)
	}
	return nil
}

// checkpointer persists campaign progress. It runs entirely in the
// collector goroutine of supervise, so no locking is needed. A failed save
// (injected or real) is deferred rather than fatal: the next save rewrites
// the full completed set, and flush retries once more at campaign end.
type checkpointer struct {
	path     string
	inj      *fault.Injector
	cfg      *Config        // for Log/Metrics/Trace/Flight; never nil once constructed
	saveHist *obs.Histogram // checkpoint.save_ms (nil without Metrics)
	done     []JobResult
	idx      map[Job]int
	writes   int // save ordinals, for deterministic fault decisions
	failures int
	dirty    bool
}

func newCheckpointer(path string, cfg *Config, restored []JobResult) *checkpointer {
	c := &checkpointer{path: path, inj: cfg.Fault, cfg: cfg, idx: make(map[Job]int, len(restored))}
	if cfg.Metrics != nil {
		c.saveHist = cfg.Metrics.Histogram("checkpoint.save_ms", obs.MsBuckets)
	}
	for _, r := range restored {
		c.idx[r.Job] = len(c.done)
		c.done = append(c.done, r)
	}
	return c
}

func (c *checkpointer) noteFailure(err error) {
	c.failures++
	c.dirty = true
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Counter("mw.checkpoint_failures").Inc()
	}
	c.cfg.Log.Warn("checkpoint write failed, deferred", "path", c.path,
		"failures", c.failures, "error", err)
}

func (c *checkpointer) record(o *outcome) {
	if i, ok := c.idx[o.result.Job]; ok {
		c.done[i] = o.result // re-run of a restored failure replaces it
	} else {
		c.idx[o.result.Job] = len(c.done)
		c.done = append(c.done, o.result)
	}
	c.writes++
	if c.cfg.Metrics != nil {
		c.cfg.Metrics.Counter("mw.checkpoint_writes").Inc()
	}
	label := jobLabel(o.result.Job)
	sp := c.cfg.Trace.WithTrack("checkpoint").Start("checkpoint.save", "mw")
	if c.inj != nil && c.inj.CheckpointWrite(c.writes) {
		sp.EndObserve(c.saveHist)
		c.cfg.Flight.Record("checkpoint.fail", label, 0, -1, fault.ErrInjected.Error())
		c.noteFailure(fault.ErrInjected)
		return
	}
	if err := saveCheckpoint(c.path, c.done); err != nil {
		sp.EndObserve(c.saveHist)
		c.cfg.Flight.Record("checkpoint.fail", label, 0, -1, err.Error())
		c.noteFailure(err)
		return
	}
	sp.EndObserve(c.saveHist)
	c.cfg.Flight.Record("checkpoint.save", label, 0, -1, "")
	c.dirty = false
}

// flush persists any deferred state; it bypasses fault injection — it
// models the master retrying the final save until the filesystem answers.
func (c *checkpointer) flush() error {
	if !c.dirty {
		return nil
	}
	if err := saveCheckpoint(c.path, c.done); err != nil {
		return fmt.Errorf("mw: final checkpoint save failed after %d deferred failures: %w", c.failures, err)
	}
	c.dirty = false
	return nil
}

// SuperviseWithCheckpoint behaves like Supervise but persists every
// completed job to path and, on restart, skips jobs the checkpoint already
// covers — the recovery story a multi-day bootstrap campaign needs. The
// checkpoint is written atomically after each job, so a crash loses at most
// the jobs in flight; because jobs are fully seed-determined, re-running
// them after a restart yields identical results. A damaged checkpoint file
// is set aside (path+".corrupt") instead of aborting the campaign, and
// restored failures are re-run rather than trusted.
func SuperviseWithCheckpoint(pat *alignment.Patterns, mod *model.Model, jobs []Job, cfg Config, path string) (*Report, error) {
	if path == "" {
		return nil, fmt.Errorf("mw: empty checkpoint path")
	}
	if cfg.Log == nil {
		cfg.Log = obs.Discard()
	}
	restored, recovered, err := RecoverCheckpoint(path)
	if err != nil {
		return nil, err
	}
	if recovered {
		cfg.Log.Warn("damaged checkpoint set aside, lost jobs will be recomputed",
			"path", path, "aside", path+".corrupt")
		cfg.Trace.WithTrack("checkpoint").Instant("checkpoint.recover", "mw")
		cfg.Flight.Record("checkpoint.recover", "", 0, -1, "damaged file set aside: "+path+".corrupt")
	}
	if len(restored) > 0 {
		cfg.Log.Info("resuming from checkpoint", "path", path, "restored", len(restored))
		cfg.Flight.Record("checkpoint.resume", "", 0, -1, fmt.Sprintf("restored=%d", len(restored)))
	}
	restoredOK := make(map[Job]bool, len(restored))
	for _, r := range restored {
		if r.Err == nil {
			restoredOK[r.Job] = true
		}
	}
	var remaining []Job
	for _, j := range jobs {
		if !restoredOK[j] {
			remaining = append(remaining, j)
		}
	}

	ckpt := newCheckpointer(path, &cfg, restored)
	rep, serr := supervise(pat, mod, remaining, cfg, ckpt.record)
	if rep != nil {
		rep.Stats.CheckpointFailures = ckpt.failures
		rep.Stats.CheckpointRecovered = recovered
		all := append([]JobResult(nil), ckpt.done...)
		sortResults(all)
		rep.Results = all
		// The merged meter must cover restored jobs too, not just the
		// remainder this run executed.
		rep.Meter = aggregateMeter(all)
		obs.PublishMeter(cfg.Metrics, "kernel.", &rep.Meter)
		obs.PublishMeter(cfg.Metrics, "kernel."+cfg.Kernel.BackendName()+".", &rep.Meter)
	}
	if serr != nil {
		_ = ckpt.flush() // best-effort persistence of the partial state
		return rep, serr
	}
	if err := ckpt.flush(); err != nil {
		return rep, err
	}
	return rep, nil
}

// RunWithCheckpoint is the results-only view over SuperviseWithCheckpoint,
// mirroring Run over Supervise.
func RunWithCheckpoint(pat *alignment.Patterns, mod *model.Model, jobs []Job, cfg Config, path string) ([]JobResult, error) {
	rep, err := SuperviseWithCheckpoint(pat, mod, jobs, cfg, path)
	if err != nil {
		return nil, err
	}
	return rep.Results, nil
}
