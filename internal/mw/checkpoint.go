package mw

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/model"
)

// checkpointVersion guards the on-disk format.
const checkpointVersion = 1

// savedResult is the serializable form of a JobResult.
type savedResult struct {
	Kind   JobKind          `json:"kind"`
	Index  int              `json:"index"`
	Seed   int64            `json:"seed"`
	Newick string           `json:"newick"`
	LogL   float64          `json:"logl"`
	Alpha  float64          `json:"alpha"`
	Meter  likelihood.Meter `json:"meter"`
	Err    string           `json:"err,omitempty"`
}

type checkpointFile struct {
	Version int           `json:"version"`
	Done    []savedResult `json:"done"`
}

func toSaved(r JobResult) savedResult {
	s := savedResult{
		Kind: r.Job.Kind, Index: r.Job.Index, Seed: r.Job.Seed,
		Newick: r.Newick, LogL: r.LogL, Alpha: r.Alpha, Meter: r.Meter,
	}
	if r.Err != nil {
		s.Err = r.Err.Error()
	}
	return s
}

func fromSaved(s savedResult) JobResult {
	r := JobResult{
		Job:    Job{Kind: s.Kind, Index: s.Index, Seed: s.Seed},
		Newick: s.Newick, LogL: s.LogL, Alpha: s.Alpha, Meter: s.Meter,
	}
	if s.Err != "" {
		r.Err = fmt.Errorf("%s", s.Err)
	}
	return r
}

// LoadCheckpoint reads previously completed jobs from path. A missing file
// is not an error: it returns an empty set.
func LoadCheckpoint(path string) ([]JobResult, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("mw: reading checkpoint: %w", err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(raw, &cf); err != nil {
		return nil, fmt.Errorf("mw: parsing checkpoint: %w", err)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("mw: checkpoint version %d, want %d", cf.Version, checkpointVersion)
	}
	out := make([]JobResult, 0, len(cf.Done))
	for _, s := range cf.Done {
		out = append(out, fromSaved(s))
	}
	return out, nil
}

// saveCheckpoint writes the completed set atomically (temp file + rename).
func saveCheckpoint(path string, done []JobResult) error {
	cf := checkpointFile{Version: checkpointVersion}
	for _, r := range done {
		cf.Done = append(cf.Done, toSaved(r))
	}
	raw, err := json.MarshalIndent(&cf, "", " ")
	if err != nil {
		return fmt.Errorf("mw: encoding checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("mw: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("mw: committing checkpoint: %w", err)
	}
	return nil
}

// RunWithCheckpoint behaves like Run but persists every completed job to
// path and, on restart, skips jobs the checkpoint already covers — the
// recovery story a multi-day bootstrap campaign needs. The checkpoint is
// written atomically after each job, so a crash loses at most the jobs in
// flight; because jobs are fully seed-determined, re-running them after a
// restart yields identical results.
func RunWithCheckpoint(pat *alignment.Patterns, mod *model.Model, jobs []Job, cfg Config, path string) ([]JobResult, error) {
	if path == "" {
		return nil, fmt.Errorf("mw: empty checkpoint path")
	}
	done, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	completed := make(map[Job]bool, len(done))
	for _, r := range done {
		completed[r.Job] = true
	}
	var remaining []Job
	for _, j := range jobs {
		if !completed[j] {
			remaining = append(remaining, j)
		}
	}

	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	jobCh := make(chan Job)
	resCh := make(chan JobResult)
	for w := 0; w < cfg.Workers; w++ {
		go func() {
			for job := range jobCh {
				resCh <- runJob(pat, mod, job, cfg)
			}
		}()
	}
	go func() {
		for _, j := range remaining {
			jobCh <- j
		}
		close(jobCh)
	}()
	for range remaining {
		r := <-resCh
		done = append(done, r)
		if err := saveCheckpoint(path, done); err != nil {
			return nil, err
		}
	}

	sort.Slice(done, func(i, j int) bool {
		if done[i].Job.Kind != done[j].Job.Kind {
			return done[i].Job.Kind < done[j].Job.Kind
		}
		return done[i].Job.Index < done[j].Job.Index
	})
	return done, nil
}
