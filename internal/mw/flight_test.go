package mw

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"raxmlcell/internal/fault"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/search"
)

// fakeClock is a deterministic monotonic source for the wall-clock tracer
// (this package is under simdeterminism: no time.Now in non-test code, and
// tests stay deterministic by construction).
func fakeClock() func() time.Duration {
	var n atomic.Int64
	return func() time.Duration { return time.Duration(n.Add(1)) * time.Microsecond }
}

// TestFlightChaosDumpQuarantine is the acceptance scenario for the flight
// recorder: a crash+corrupt p=0.3 campaign over 4 workers must attach a
// non-empty, self-consistent flight snapshot to every quarantined job, and
// the recorder's full dump must pass ValidateFlight.
func TestFlightChaosDumpQuarantine(t *testing.T) {
	pat, m := testData(t, 7, 150)
	seed := chaosSeed(t)
	// A wide plan with a single attempt per job: at p=0.6 total fault rate a
	// healthy fraction of the 24 jobs lose their only attempt to a crash or
	// corruption and quarantine — the scenario needs bodies. (Seed 42's
	// attempt-1 draws for the narrow Plan(2,6) plan all happen to land in
	// the fault-free region, so the plan is deliberately wide.)
	jobs := Plan(4, 20, seed)

	flight := obs.NewFlightRecorder(0, fakeClock())
	tracer := obs.NewSpanTracer(fakeClock())
	rep, err := Supervise(pat, m, jobs, Config{
		Workers: 4,
		Search:  fastSearch(),
		Retry:   RetryPolicy{MaxAttempts: 1},
		Fault:   mustInjector(t, fault.Config{PCrash: 0.3, PCorrupt: 0.3, Seed: seed}),
		Flight:  flight,
		Trace:   tracer.Root("campaign"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) == 0 {
		t.Fatalf("chaos campaign quarantined nothing (seed %d); the scenario needs at least one post-mortem", seed)
	}

	for _, q := range rep.Quarantined {
		if len(q.Flight) == 0 {
			t.Fatalf("quarantined %v #%d carries no flight snapshot", q.Job.Kind, q.Job.Index)
		}
		label := q.Job.Kind.String() + "#" + itoa(q.Job.Index)
		sawQuarantine := false
		var prev uint64
		for i, ev := range q.Flight {
			if i > 0 && ev.Seq <= prev {
				t.Fatalf("flight snapshot out of order: seq %d after %d", ev.Seq, prev)
			}
			prev = ev.Seq
			if ev.Kind == "quarantine" && ev.Job == label {
				sawQuarantine = true
			}
		}
		if !sawQuarantine {
			t.Errorf("flight snapshot for %s lacks its quarantine event", label)
		}
	}

	// The recorder's own dump — what /debug/flight and -flight-out emit —
	// must self-validate, and it must contain the campaign bracketing plus
	// fault and attempt events.
	var buf bytes.Buffer
	if err := flight.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	if n, err := obs.ValidateFlight(bytes.NewReader(buf.Bytes())); err != nil || n == 0 {
		t.Fatalf("flight dump invalid (%d events): %v", n, err)
	}
	for _, kind := range []string{"campaign.start", "campaign.end", "attempt", "fault", "quarantine"} {
		if !strings.Contains(dump, `"kind": "`+kind+`"`) {
			t.Errorf("flight dump missing %q events:\n%s", kind, dump)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestSuperviseAttemptHistogram pins the mw.attempt_ms wiring: with a trace
// context supplying the clock, every attempt feeds exactly one sample.
func TestSuperviseAttemptHistogram(t *testing.T) {
	pat, m := testData(t, 8, 300)
	jobs := Plan(2, 2, 7)
	reg := obs.NewRegistry()
	tracer := obs.NewSpanTracer(fakeClock())
	tracer.SetRecording(false) // histograms must not require timeline capture

	rep, err := Supervise(pat, m, jobs, Config{
		Workers: 2,
		Search:  fastSearch(),
		Metrics: reg,
		Trace:   tracer.Root("campaign"),
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "mw.attempt_ms" {
			found = true
			if h.Count != uint64(rep.Stats.Attempts) {
				t.Errorf("mw.attempt_ms count = %d, Stats.Attempts = %d", h.Count, rep.Stats.Attempts)
			}
		}
	}
	if !found {
		t.Fatal("mw.attempt_ms histogram missing from snapshot")
	}
	if tracer.Len() != 0 {
		t.Fatalf("non-recording tracer retained %d events", tracer.Len())
	}
}

// TestSupervisePanicRecovery drives a panicking search hook through the
// supervisor: the panic must become a quarantine (not tear the campaign
// down) and leave "panic" events in the flight recorder.
func TestSupervisePanicRecovery(t *testing.T) {
	pat, m := testData(t, 8, 300)
	jobs := Plan(1, 0, 7)
	flight := obs.NewFlightRecorder(0, nil)

	sOpts := fastSearch()
	sOpts.OnProgress = func(pr search.Progress) { panic("injected test panic") }
	rep, err := Supervise(pat, m, jobs, Config{
		Workers: 2,
		Search:  sOpts,
		Retry:   RetryPolicy{MaxAttempts: 2},
		Flight:  flight,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined %d jobs, want 1", len(rep.Quarantined))
	}
	if got := rep.Quarantined[0].Err; got == nil || !strings.Contains(got.Error(), "panic") {
		t.Fatalf("quarantine error %v, want a panic conversion", got)
	}
	panics := 0
	for _, ev := range flight.Snapshot() {
		if ev.Kind == "panic" {
			panics++
			if !strings.Contains(ev.Detail, "injected test panic") {
				t.Errorf("panic event lost the panic value: %q", ev.Detail)
			}
		}
	}
	if panics != 2 { // one per attempt
		t.Fatalf("flight recorded %d panic events, want 2", panics)
	}
}

// TestOnProgressChaining guards the hook composition in runJob: a caller's
// search-level OnProgress and the campaign-level per-job OnProgress must
// both fire (the mw layer chains, it does not overwrite).
func TestOnProgressChaining(t *testing.T) {
	pat, m := testData(t, 8, 300)
	jobs := Plan(1, 0, 7)

	var searchHook, jobHook atomic.Int64
	sOpts := fastSearch()
	sOpts.OnProgress = func(pr search.Progress) { searchHook.Add(1) }
	_, err := Supervise(pat, m, jobs, Config{
		Workers: 1,
		Search:  sOpts,
		OnProgress: func(job Job, pr search.Progress) {
			jobHook.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if searchHook.Load() == 0 {
		t.Fatal("search-level OnProgress was overwritten by the campaign hook")
	}
	if searchHook.Load() != jobHook.Load() {
		t.Fatalf("hooks fired unevenly: search %d, job %d", searchHook.Load(), jobHook.Load())
	}
}
