package mw

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/bio"
	"raxmlcell/internal/model"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/search"
	"raxmlcell/internal/seqsim"
)

func testData(t *testing.T, taxa, sites int) (*alignment.Patterns, *model.Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(55))
	m := seqsim.DefaultModel()
	a, _, err := seqsim.Generate(seqsim.Params{
		Taxa: taxa, Sites: sites, MeanBranch: 0.1, Alpha: 0.8,
	}, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	return alignment.Compress(a), m
}

func fastSearch() search.Options {
	return search.Options{Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05}
}

func TestPlan(t *testing.T) {
	jobs := Plan(3, 5, 42)
	if len(jobs) != 8 {
		t.Fatalf("len = %d", len(jobs))
	}
	seeds := map[int64]bool{}
	inf, boot := 0, 0
	for _, j := range jobs {
		if seeds[j.Seed] {
			t.Errorf("duplicate seed %d", j.Seed)
		}
		seeds[j.Seed] = true
		switch j.Kind {
		case Inference:
			inf++
		case Bootstrap:
			boot++
		}
	}
	if inf != 3 || boot != 5 {
		t.Errorf("inf=%d boot=%d", inf, boot)
	}
	if Inference.String() != "inference" || Bootstrap.String() != "bootstrap" {
		t.Error("JobKind.String wrong")
	}
}

func TestRunCollectsAllJobs(t *testing.T) {
	pat, m := testData(t, 8, 300)
	jobs := Plan(2, 3, 7)
	results, err := Run(pat, m, jobs, Config{Workers: 3, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d failed: %v", i, r.Err)
		}
		if r.Newick == "" || math.IsNaN(r.LogL) || r.LogL >= 0 {
			t.Errorf("job %d result malformed: logL=%v", i, r.LogL)
		}
		if r.Meter.NewviewCalls == 0 {
			t.Errorf("job %d has empty meter", i)
		}
	}
	// Sorted by (kind, index).
	for i := 1; i < len(results); i++ {
		a, b := results[i-1].Job, results[i].Job
		if a.Kind > b.Kind || (a.Kind == b.Kind && a.Index >= b.Index) {
			t.Error("results not sorted")
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	pat, m := testData(t, 7, 200)
	jobs := Plan(1, 2, 99)
	r1, err := Run(pat, m, jobs, Config{Workers: 1, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(pat, m, jobs, Config{Workers: 4, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].Newick != r4[i].Newick || math.Abs(r1[i].LogL-r4[i].LogL) > 1e-9 {
			t.Errorf("job %d differs across worker counts", i)
		}
	}
}

func TestBootstrapResultsDiffer(t *testing.T) {
	pat, m := testData(t, 8, 300)
	jobs := Plan(0, 4, 13)
	results, err := Run(pat, m, jobs, Config{Workers: 2, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	lls := map[float64]bool{}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		lls[r.LogL] = true
	}
	if len(lls) < 2 {
		t.Error("all bootstrap replicates produced identical likelihoods; resampling suspect")
	}
}

func TestBest(t *testing.T) {
	pat, m := testData(t, 7, 200)
	results, err := Run(pat, m, Plan(3, 0, 5), Config{Workers: 2, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	best, err := Best(results, Inference)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.LogL > best.LogL {
			t.Error("Best did not return the maximum")
		}
	}
	if _, err := Best(results, Bootstrap); err == nil {
		t.Error("Best over absent kind succeeded")
	}
}

func TestRunErrors(t *testing.T) {
	pat, m := testData(t, 6, 100)
	if _, err := Run(nil, m, Plan(1, 0, 1), Config{}); err == nil {
		t.Error("nil patterns accepted")
	}
	if _, err := Run(pat, nil, Plan(1, 0, 1), Config{}); err == nil {
		t.Error("nil model accepted")
	}
}

func TestJobFailureIsReportedNotFatal(t *testing.T) {
	// A 2-taxon "alignment" cannot seed a tree search: every job must carry
	// an error in its result while Run itself succeeds.
	s1, err := bio.NewSequence("a", "ACGTACGT")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := bio.NewSequence("b", "ACGTACGA")
	if err != nil {
		t.Fatal(err)
	}
	a, err := alignment.New([]*bio.Sequence{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	pat := alignment.Compress(a)
	_, m := testData(t, 6, 100)
	results, err := Run(pat, m, Plan(2, 1, 3), Config{Workers: 2, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("%v job %d unexpectedly succeeded on 2 taxa", r.Job.Kind, r.Job.Index)
		}
	}
	if _, err := Best(results, Inference); err == nil {
		t.Error("Best over all-failed results succeeded")
	}
}

func TestEndToEndSupportValues(t *testing.T) {
	// Full mini-analysis: inferences + bootstraps + support on best tree.
	pat, m := testData(t, 8, 400)
	results, err := Run(pat, m, Plan(1, 6, 77), Config{Workers: 4, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	best, err := Best(results, Inference)
	if err != nil {
		t.Fatal(err)
	}
	bestTree, err := phylotree.ParseNewick(best.Newick)
	if err != nil {
		t.Fatal(err)
	}
	if err := bestTree.AlignTaxa(pat.Names); err != nil {
		t.Fatal(err)
	}
	var boots []*phylotree.Tree
	for _, r := range results {
		if r.Job.Kind != Bootstrap {
			continue
		}
		bt, err := phylotree.ParseNewick(r.Newick)
		if err != nil {
			t.Fatal(err)
		}
		if err := bt.AlignTaxa(pat.Names); err != nil {
			t.Fatal(err)
		}
		boots = append(boots, bt)
	}
	support, err := phylotree.SupportValues(bestTree, boots)
	if err != nil {
		t.Fatal(err)
	}
	if len(support) != 8-3 { // n-3 internal edges
		t.Errorf("support entries = %d, want %d", len(support), 5)
	}
	for b, v := range support {
		if v < 0 || v > 1 {
			t.Errorf("support %v out of range for %q", v, b)
		}
	}
	if mean := phylotree.MeanSupport(support); mean <= 0.2 {
		t.Errorf("mean support %.3f suspiciously low for high-signal data", mean)
	}
}
