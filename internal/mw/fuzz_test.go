package mw

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadCheckpoint throws arbitrary bytes at both checkpoint loaders. The
// contract under fuzzing:
//
//   - neither loader may panic, whatever the input;
//   - LoadCheckpoint either errors (file-level damage) or returns a
//     sanitized set: no duplicate jobs, every error-free entry passing
//     ValidateResult;
//   - RecoverCheckpoint never errors on parseable-or-not content (only real
//     I/O can fail): it either returns the same sanitized set or reports
//     recovery, in which case the damaged file has been renamed aside.
func FuzzLoadCheckpoint(f *testing.F) {
	seeds := []string{
		``,
		`{not json`,
		`null`,
		`42`,
		`{"version":1,"done":[]}`,
		`{"version":99,"done":[]}`,
		`{"version":1,"done":null}`,
		`{"version":1}`,
		`{"version":1,"done":[{"kind":0,"index":0,"seed":7,"newick":"(a:0.1,b:0.2,(c:0.1,d:0.3):0.05);","logl":-12.5,"alpha":0.8,"meter":{}}]}`,
		// Duplicate jobs, one valid and one failed.
		`{"version":1,"done":[{"kind":0,"index":0,"seed":7,"newick":"(a:0.1,b:0.2,(c:0.1,d:0.3):0.05);","logl":-12.5,"alpha":0.8,"meter":{}},{"kind":0,"index":0,"seed":7,"err":"boom"}]}`,
		// Torn newick and sign-flipped alpha.
		`{"version":1,"done":[{"kind":1,"index":2,"seed":9,"newick":"(a:0.1,(b:0.2","logl":-3,"alpha":0.8,"meter":{}}]}`,
		`{"version":1,"done":[{"kind":1,"index":2,"seed":9,"newick":"(a:0.1,b:0.2,(c:0.1,d:0.3):0.05);","logl":-3,"alpha":-1,"meter":{}}]}`,
		// Out-of-range numbers and odd types.
		`{"version":1,"done":[{"kind":0,"index":0,"seed":0,"logl":1e999}]}`,
		`{"version":1,"done":[{"kind":"inference"}]}`,
		`{"version":1,"done":[{"logl":null,"alpha":null}]}`,
		// Truncations of a realistic file.
		`{"version":1,"done":[{"kind":0,"index":0,"seed":7,"newick":"(a:0.1,b:0.2,(c`,
		`{"version":1,"done":[{"ki`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		strict := filepath.Join(dir, "strict.json")
		lenient := filepath.Join(dir, "lenient.json")
		if err := os.WriteFile(strict, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(lenient, data, 0o644); err != nil {
			t.Fatal(err)
		}

		checkSanitized := func(results []JobResult) {
			seen := map[Job]bool{}
			for i := range results {
				r := results[i]
				if seen[r.Job] {
					t.Errorf("duplicate job %+v survived loading", r.Job)
				}
				seen[r.Job] = true
				if r.Err == nil {
					if verr := ValidateResult(&r); verr != nil {
						t.Errorf("loader passed through invalid entry %+v: %v", r.Job, verr)
					}
				}
			}
		}

		res, err := LoadCheckpoint(strict)
		if err == nil {
			checkSanitized(res)
		}

		res2, recovered, rerr := RecoverCheckpoint(lenient)
		if rerr != nil {
			t.Fatalf("RecoverCheckpoint failed on in-memory damage: %v", rerr)
		}
		if recovered != (err != nil) {
			t.Errorf("recovered=%v inconsistent with strict loader error %v", recovered, err)
		}
		if recovered {
			if res2 != nil {
				t.Error("recovered load returned results")
			}
			if _, serr := os.Stat(lenient + ".corrupt"); serr != nil {
				t.Errorf("damaged file not set aside: %v", serr)
			}
			if _, serr := os.Stat(lenient); !os.IsNotExist(serr) {
				t.Error("damaged file still in place after recovery")
			}
		} else {
			checkSanitized(res2)
		}
	})
}
