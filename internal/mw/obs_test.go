package mw

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"raxmlcell/internal/obs"
	"raxmlcell/internal/search"
)

// TestSuperviseFeedsMetricsAndLog pins the observability wiring of a
// campaign: supervision counters, the republished kernel meter, the merged
// Report.Meter, the per-job progress hook and the structured log.
func TestSuperviseFeedsMetricsAndLog(t *testing.T) {
	pat, m := testData(t, 8, 300)
	jobs := Plan(2, 2, 7)

	reg := obs.NewRegistry()
	var logBuf bytes.Buffer
	var mu sync.Mutex
	progress := map[Job]int{}

	rep, err := Supervise(pat, m, jobs, Config{
		Workers: 2,
		Search:  fastSearch(),
		Log:     obs.NewLogger(&logBuf, obs.Level(true, false)),
		Metrics: reg,
		OnProgress: func(job Job, pr search.Progress) {
			mu.Lock()
			progress[job]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Report.Meter is the merge of every successful job's meter.
	var want uint64
	for _, r := range rep.Results {
		if r.Err == nil {
			want += r.Meter.NewviewCalls
		}
	}
	if want == 0 || rep.Meter.NewviewCalls != want {
		t.Fatalf("Report.Meter.NewviewCalls = %d, want %d", rep.Meter.NewviewCalls, want)
	}

	snap := reg.Snapshot()
	if v, _ := snap.CounterValue("mw.jobs_done"); v != uint64(len(jobs)) {
		t.Errorf("mw.jobs_done = %d, want %d", v, len(jobs))
	}
	if v, _ := snap.CounterValue("mw.attempts"); v != uint64(rep.Stats.Attempts) {
		t.Errorf("mw.attempts = %d, Stats.Attempts = %d", v, rep.Stats.Attempts)
	}
	if v, _ := snap.CounterValue(obs.Key("mw.jobs_done", "kind", "bootstrap")); v != 2 {
		t.Errorf("labeled bootstrap jobs_done = %d, want 2", v)
	}
	if v, _ := snap.CounterValue("kernel.newview_calls"); v != want {
		t.Errorf("kernel.newview_calls = %d, want %d", v, want)
	}
	best, ok := snap.GaugeValue("mw.best_logl")
	if !ok || best >= 0 {
		t.Errorf("mw.best_logl = %v, %v", best, ok)
	}
	found := false
	for _, h := range snap.Histograms {
		if h.Name == "mw.attempts_per_job" {
			found = true
			if h.Count != uint64(len(jobs)) {
				t.Errorf("attempts_per_job count = %d, want %d", h.Count, len(jobs))
			}
		}
	}
	if !found {
		t.Error("mw.attempts_per_job histogram missing from snapshot")
	}

	// Every job reported at least start+final through the bound hook.
	if len(progress) != len(jobs) {
		t.Errorf("progress seen for %d jobs, want %d", len(progress), len(jobs))
	}
	for job, n := range progress {
		if n < 2 {
			t.Errorf("job %+v reported only %d progress points", job, n)
		}
	}

	log := logBuf.String()
	for _, needle := range []string{"campaign start", "job done", "progress"} {
		if !strings.Contains(log, needle) {
			t.Errorf("log missing %q:\n%s", needle, log)
		}
	}
	if strings.Contains(log, "time=") {
		t.Error("log lines carry wall-clock timestamps")
	}
}

// TestSuperviseNilObservability guards the default path: no logger, no
// registry, no hook — identical campaign results.
func TestSuperviseNilObservability(t *testing.T) {
	pat, m := testData(t, 8, 300)
	jobs := Plan(1, 1, 7)
	plain, err := Supervise(pat, m, jobs, Config{Workers: 2, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	wired, err := Supervise(pat, m, jobs, Config{
		Workers: 2, Search: fastSearch(),
		Log: obs.Discard(), Metrics: reg,
		OnProgress: func(Job, search.Progress) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Results {
		p, w := plain.Results[i], wired.Results[i]
		if p.LogL != w.LogL || p.Newick != w.Newick {
			t.Fatalf("observability changed job %d: %.6f vs %.6f", i, p.LogL, w.LogL)
		}
	}
}
