package mw

import (
	"errors"
	"os"
	"strconv"
	"testing"
	"time"

	"raxmlcell/internal/fault"
)

// chaosSeed lets CI pin the chaos campaign seed (RAXML_CHAOS_SEED) so every
// run of the suite is replayable; the default matches the CI configuration.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("RAXML_CHAOS_SEED")
	if s == "" {
		return 42
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("RAXML_CHAOS_SEED=%q: %v", s, err)
	}
	return v
}

// TestChaosMatrix crosses fault kinds x probabilities x worker counts and
// asserts the core fault-tolerance guarantee: every job that survives
// supervision is bit-identical (Newick, LogL, Alpha, and even the kernel
// meter) to the fault-free baseline, because jobs are pure functions of
// their seed and retries simply re-evaluate that function.
func TestChaosMatrix(t *testing.T) {
	pat, m := testData(t, 7, 150)
	seed := chaosSeed(t)
	jobs := Plan(2, 4, seed)

	base, err := Run(pat, m, jobs, Config{Workers: 1, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	byJob := make(map[Job]JobResult, len(base))
	for _, r := range base {
		byJob[r.Job] = r
	}

	rows := []struct {
		name        string
		fcfg        fault.Config
		workers     int
		maxAttempts int
		timeout     time.Duration // 0 = no deadline, no clock
		replayable  bool          // attempt counts free of timing races
	}{
		{"no-faults", fault.Config{}, 4, 3, 0, true},
		{"crash-p0.3", fault.Config{PCrash: 0.3}, 4, 6, 0, true},
		{"corrupt-p0.3", fault.Config{PCorrupt: 0.3}, 4, 6, 0, true},
		{"slow-p0.5", fault.Config{PSlow: 0.5, SlowDelay: 2 * time.Millisecond}, 2, 3, 0, true},
		{"crash+corrupt-p0.2-w1", fault.Config{PCrash: 0.2, PCorrupt: 0.2}, 1, 8, 0, true},
		{"crash+corrupt-p0.2-w8", fault.Config{PCrash: 0.2, PCorrupt: 0.2}, 8, 8, 0, true},
		// The acceptance scenario: crash+hang+corrupt at p=0.3 each over 4
		// workers. Only 10% of attempts run clean, so give a deep budget.
		{"crash+hang+corrupt-p0.3-w4", fault.Config{PCrash: 0.3, PHang: 0.3, PCorrupt: 0.3}, 4, 25, 300 * time.Millisecond, false},
	}

	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			fcfg := row.fcfg
			fcfg.Seed = seed
			cfg := Config{
				Workers: row.workers,
				Search:  fastSearch(),
				Retry:   RetryPolicy{MaxAttempts: row.maxAttempts, JobTimeout: row.timeout, Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond},
				Fault:   mustInjector(t, fcfg),
			}
			needsClock := row.timeout > 0 || fcfg.PSlow > 0
			if needsClock {
				cfg.Clock = testClock{}
			}
			rep, err := Supervise(pat, m, jobs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Results) != len(jobs) {
				t.Fatalf("results = %d, want %d (campaign must always complete)", len(rep.Results), len(jobs))
			}
			requireIdentical(t, byJob, rep)
			succeeded := 0
			for _, r := range rep.Results {
				if r.Err == nil {
					succeeded++
				}
			}
			if succeeded+len(rep.Quarantined) != len(jobs) {
				t.Errorf("%d succeeded + %d quarantined != %d jobs", succeeded, len(rep.Quarantined), len(jobs))
			}
			if succeeded == 0 {
				t.Error("chaos row produced no surviving results at all")
			}
			if row.fcfg == (fault.Config{}) {
				if rep.Stats.Attempts != len(jobs) || rep.Stats.Retries != 0 || len(rep.Quarantined) != 0 {
					t.Errorf("fault-free supervision not transparent: %+v", rep.Stats)
				}
			}

			// Chaos runs without deadline races must replay exactly:
			// same per-job outcomes, same attempt accounting.
			if row.replayable {
				rep2, err := Supervise(pat, m, jobs, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if rep2.Stats != rep.Stats {
					t.Errorf("replay stats differ: %+v vs %+v", rep2.Stats, rep.Stats)
				}
				if len(rep2.Quarantined) != len(rep.Quarantined) {
					t.Fatalf("replay quarantined %d vs %d", len(rep2.Quarantined), len(rep.Quarantined))
				}
				for i := range rep.Results {
					a, b := rep.Results[i], rep2.Results[i]
					if a.Job != b.Job || a.Newick != b.Newick || (a.Err == nil) != (b.Err == nil) {
						t.Errorf("replay diverged on job %+v", a.Job)
					}
				}
			}
		})
	}
}

// TestChaosAcceptance is the issue's acceptance scenario in isolation, with
// the stronger demand that the campaign retries transparently: with a deep
// attempt budget every job must eventually survive and match the baseline.
func TestChaosAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-attempt chaos campaign")
	}
	pat, m := testData(t, 7, 150)
	seed := chaosSeed(t)
	jobs := Plan(1, 3, seed+1)

	base, err := Run(pat, m, jobs, Config{Workers: 1, Search: fastSearch()})
	if err != nil {
		t.Fatal(err)
	}
	byJob := make(map[Job]JobResult, len(base))
	for _, r := range base {
		byJob[r.Job] = r
	}

	cfg := Config{
		Workers: 4,
		Search:  fastSearch(),
		Retry:   RetryPolicy{MaxAttempts: 60, JobTimeout: 300 * time.Millisecond, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond},
		Fault:   mustInjector(t, fault.Config{Seed: seed, PCrash: 0.3, PHang: 0.3, PCorrupt: 0.3}),
		Clock:   testClock{},
	}
	rep, err := Supervise(pat, m, jobs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// P(60 straight faulty attempts) = 0.9^60 ~ 0.002 per job; with this
	// seed every job must come back.
	for _, r := range rep.Results {
		if r.Err != nil {
			t.Fatalf("job %+v quarantined despite 60-attempt budget: %v", r.Job, r.Err)
		}
	}
	requireIdentical(t, byJob, rep)
	if rep.Stats.Retries == 0 || rep.Stats.FaultsInjected == 0 {
		t.Errorf("chaos campaign saw no faults: %+v", rep.Stats)
	}
	if len(rep.Quarantined) != 0 {
		t.Errorf("quarantined = %d, want 0", len(rep.Quarantined))
	}
	if errors.Is(err, ErrCampaignAborted) {
		t.Error("campaign aborted unexpectedly")
	}
}
