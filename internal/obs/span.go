package obs

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMaxSpanEvents bounds a SpanTracer's buffer: a multi-day campaign
// must not grow an unbounded timeline, so past the cap new events are
// counted as dropped instead of recorded.
const DefaultMaxSpanEvents = 1 << 17

// SpanTracer is the wall-clock sibling of Tracer: it records spans,
// instants and counters for the *real* inference pipeline (campaign, job
// attempts, retries, checkpoints, search rounds, candidate batches) against
// an injected monotonic time source, and exports the same byte-deterministic
// Chrome trace-event JSON.
//
// The clock is injected (wallclock.Monotonic in production, a fake counter
// in tests) because this package sits under the simdeterminism analyzer:
// nothing here may read time.Now, so chaos and golden tests stay
// deterministic. Unlike Tracer, a SpanTracer is safe for concurrent use —
// events arrive from every supervision worker — and timestamps are
// microseconds since the tracer's epoch.
type SpanTracer struct {
	now       func() time.Duration
	recording atomic.Bool
	dropped   atomic.Uint64

	mu     sync.Mutex
	events []traceEvent
	tids   map[string]int
	tracks []string
	seq    uint64
	max    int
}

// NewSpanTracer returns a recording tracer over the given monotonic time
// source (nil panics: a tracer without a clock cannot time anything).
func NewSpanTracer(now func() time.Duration) *SpanTracer {
	if now == nil {
		panic("obs: NewSpanTracer needs a time source (wallclock.Monotonic or a test clock)")
	}
	t := &SpanTracer{now: now, tids: make(map[string]int), max: DefaultMaxSpanEvents}
	t.recording.Store(true)
	return t
}

// SetRecording toggles event capture. A non-recording tracer still serves
// as the pipeline's time source — spans started on it keep feeding latency
// histograms through EndObserve — it just stops retaining timeline events.
func (t *SpanTracer) SetRecording(on bool) { t.recording.Store(on) }

// Recording reports whether events are being retained.
func (t *SpanTracer) Recording() bool { return t.recording.Load() }

// SetMaxEvents replaces the retention cap (values < 1 restore the default).
func (t *SpanTracer) SetMaxEvents(n int) {
	if n < 1 {
		n = DefaultMaxSpanEvents
	}
	t.mu.Lock()
	t.max = n
	t.mu.Unlock()
}

// Now reads the tracer's monotonic clock.
func (t *SpanTracer) Now() time.Duration { return t.now() }

// Len reports the number of retained events.
func (t *SpanTracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped reports how many events were discarded at the retention cap.
func (t *SpanTracer) Dropped() uint64 { return t.dropped.Load() }

// usec converts a monotonic offset to the trace "ts" unit (microseconds).
func usec(d time.Duration) int64 { return int64(d / time.Microsecond) }

// record appends one event, resolving the track's stable tid; past the cap
// the event is counted as dropped.
func (t *SpanTracer) record(track string, ev traceEvent) {
	t.mu.Lock()
	if len(t.events) >= t.max {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	tid, ok := t.tids[track]
	if !ok {
		tid = len(t.tracks)
		t.tids[track] = tid
		t.tracks = append(t.tracks, track)
	}
	t.seq++
	ev.seq = t.seq
	ev.tid = tid
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// WriteJSON emits the retained timeline as Chrome trace-event JSON through
// the shared deterministic encoder. Concurrent recording during the write is
// safe; the file reflects the events retained at the time of the call.
func (t *SpanTracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	tracks := append([]string(nil), t.tracks...)
	events := append([]traceEvent(nil), t.events...)
	t.mu.Unlock()
	return writeTraceJSON(w, tracks, events)
}

// Root returns the tracer's root context on the named track. The zero Ctx
// (from an unconfigured pipeline) is valid and disables all tracing, so
// every layer can call through its context unconditionally.
func (t *SpanTracer) Root(track string) Ctx {
	return Ctx{tr: t, track: track}
}

// Ctx is the explicit trace-propagation context threaded through the real
// pipeline (core → mw → search): a tracer handle, the track events land on,
// and the attribution labels (job, worker, round, tenant) rendered into
// every span's args. It is a small value, copied freely; the zero Ctx is a
// no-op sink. Label derivation happens on cold paths (per job, per round),
// so hot loops only ever copy the pre-rendered string.
type Ctx struct {
	tr    *SpanTracer
	track string
	args  string // pre-rendered JSON object, "" = no labels
}

// Enabled reports whether this context can reach a tracer at all.
func (c Ctx) Enabled() bool { return c.tr != nil }

// TimeSource exposes the tracer's injected monotonic clock (nil when the
// context is disabled) — the seam layers use to time work for histograms
// without importing a clock themselves.
func (c Ctx) TimeSource() func() time.Duration {
	if c.tr == nil {
		return nil
	}
	return c.tr.now
}

// withArg returns the context with one more rendered key/value pair
// (jsonVal must already be valid JSON — a quoted string or a number).
func (c Ctx) withArg(key, jsonVal string) Ctx {
	if c.tr == nil {
		return c
	}
	if c.args == "" {
		c.args = `{"` + key + `":` + jsonVal + `}`
	} else {
		c.args = c.args[:len(c.args)-1] + `,"` + key + `":` + jsonVal + `}`
	}
	return c
}

// WithTrack moves subsequent events to the named track (e.g. "worker-2").
func (c Ctx) WithTrack(track string) Ctx {
	c.track = track
	return c
}

// WithJob attaches the job label (e.g. "inference#0") to all events.
func (c Ctx) WithJob(job string) Ctx { return c.withArg("job", quoteJSON(job)) }

// WithWorker attaches the supervision worker index to all events.
func (c Ctx) WithWorker(w int) Ctx { return c.withArg("worker", strconv.Itoa(w)) }

// WithRound attaches the search round to all events.
func (c Ctx) WithRound(round int) Ctx { return c.withArg("round", strconv.Itoa(round)) }

// WithTenant attaches a tenant label — the raxmld multi-tenant attribution
// seam — to all events.
func (c Ctx) WithTenant(tenant string) Ctx { return c.withArg("tenant", quoteJSON(tenant)) }

// Instant records a zero-duration marker carrying the context's labels.
func (c Ctx) Instant(name, cat string) {
	if c.tr == nil || !c.tr.recording.Load() {
		return
	}
	c.tr.record(c.track, traceEvent{
		ts: usec(c.tr.now()), ph: phaseInstant, name: name, cat: cat, args: c.args,
	})
}

// Counter records a sample of a numeric series on the context's track.
func (c Ctx) Counter(name string, value float64) {
	if c.tr == nil || !c.tr.recording.Load() {
		return
	}
	c.tr.record(c.track, traceEvent{
		ts: usec(c.tr.now()), ph: phaseCounter, name: name, val: value,
	})
}

// Start opens a span. The returned Span must be closed with End or
// EndObserve; a Span from a disabled context is a no-op. The start time is
// captured even when the tracer is not recording, so EndObserve keeps
// feeding latency histograms with the timeline capture switched off.
func (c Ctx) Start(name, cat string) Span {
	if c.tr == nil {
		return Span{}
	}
	return Span{tr: c.tr, track: c.track, name: name, cat: cat, args: c.args, start: c.tr.now()}
}

// Span is one open wall-clock interval; close it with End or EndObserve.
type Span struct {
	tr    *SpanTracer
	track string
	name  string
	cat   string
	args  string
	start time.Duration
}

// End closes the span, recording it when the tracer is recording.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	end := s.tr.now()
	if !s.tr.recording.Load() {
		return
	}
	s.emit(end)
}

// EndObserve closes the span and feeds its duration, in milliseconds, into
// h (nil-safe) — the one-call pattern behind the search.round_ms /
// mw.attempt_ms / checkpoint.save_ms latency histograms. The histogram
// sample and the trace span come from the same clock reading.
func (s Span) EndObserve(h *Histogram) {
	if s.tr == nil {
		return
	}
	end := s.tr.now()
	if h != nil {
		h.Observe(float64(end-s.start) / float64(time.Millisecond))
	}
	if s.tr.recording.Load() {
		s.emit(end)
	}
}

// emit records the completed interval, clamping inverted clocks to zero
// duration rather than writing a corrupt event.
func (s Span) emit(end time.Duration) {
	dur := end - s.start
	if dur < 0 {
		dur = 0
	}
	s.tr.record(s.track, traceEvent{
		ts: usec(s.start), dur: usec(dur), ph: phaseComplete, name: s.name, cat: s.cat, args: s.args,
	})
}
