package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"raxmlcell/internal/obs"
)

// populate records a fixed mixed-phase timeline, deliberately out of
// timestamp order to exercise the output sort.
func populate(t *obs.Tracer) {
	t.Span("spe0", "compute", "spe", 100, 250)
	t.Instant("sched", "claim search#0", "sched", 5)
	t.Counter("scheduler", "jobs-pending", 5, 4)
	t.Span("ppe", "phase", "ppe", 0, 90)
	t.Instant("spe0", "adopt", "sched", 100)
	t.Counter("scheduler", "jobs-pending", 250, 3)
	t.Span("spe1", "dma-wait", "dma", 90, 100)
}

func TestWriteJSONByteDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	tr := obs.NewTracer()
	populate(tr)
	if err := tr.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two WriteJSON calls on the same tracer differ")
	}
	// A fresh tracer fed the same calls must serialize identically.
	tr2 := obs.NewTracer()
	populate(tr2)
	var c bytes.Buffer
	if err := tr2.WriteJSON(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("identical event sequences serialized differently")
	}
}

func TestWriteJSONValidAndSorted(t *testing.T) {
	tr := obs.NewTracer()
	populate(tr)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("self-produced trace fails validation: %v", err)
	}
	// 7 events + 2 metadata records per track (spe0, sched, scheduler, ppe, spe1).
	if want := 7 + 2*5; n != want {
		t.Fatalf("validated %d events, want %d", n, want)
	}

	var f struct {
		TraceEvents []struct {
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for i, ev := range f.TraceEvents {
		if ev.Phase == "M" {
			continue
		}
		if ev.TS < last {
			t.Fatalf("event %d: ts %v after %v — not sorted", i, ev.TS, last)
		}
		last = ev.TS
	}
}

func TestSpanInvertedDropped(t *testing.T) {
	tr := obs.NewTracer()
	tr.Span("x", "bad", "c", 10, 5)
	if tr.Len() != 0 {
		t.Fatalf("inverted span recorded; Len = %d", tr.Len())
	}
	tr.Span("x", "zero", "c", 10, 10) // zero-width is legal
	if tr.Len() != 1 {
		t.Fatalf("zero-width span dropped; Len = %d", tr.Len())
	}
}

func TestReset(t *testing.T) {
	tr := obs.NewTracer()
	populate(tr)
	if tr.Len() == 0 {
		t.Fatal("populate recorded nothing")
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after Reset", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	if strings.Contains(buf.String(), "thread_name") {
		t.Fatal("track metadata survived Reset")
	}
}

func TestValidateTraceRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not json", `{"traceEvents":[`},
		{"no traceEvents", `{"other":[]}`},
		{"missing name", `{"traceEvents":[{"ph":"i","s":"t","ts":1,"pid":0,"tid":0}]}`},
		{"missing ph", `{"traceEvents":[{"name":"a","ts":1,"pid":0,"tid":0}]}`},
		{"unknown phase", `{"traceEvents":[{"name":"a","ph":"Q","ts":1,"pid":0,"tid":0}]}`},
		{"complete without dur", `{"traceEvents":[{"name":"a","ph":"X","ts":1,"pid":0,"tid":0}]}`},
		{"negative dur", `{"traceEvents":[{"name":"a","ph":"X","ts":1,"dur":-2,"pid":0,"tid":0}]}`},
		{"missing ts", `{"traceEvents":[{"name":"a","ph":"i","s":"t","pid":0,"tid":0}]}`},
		{"instant without scope", `{"traceEvents":[{"name":"a","ph":"i","ts":1,"pid":0,"tid":0}]}`},
		{"missing tid", `{"traceEvents":[{"name":"a","ph":"i","s":"t","ts":1,"pid":0}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := obs.ValidateTrace(strings.NewReader(c.in)); err == nil {
				t.Fatalf("ValidateTrace accepted %s", c.name)
			}
		})
	}
}
