package obs_test

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"

	"raxmlcell/internal/obs"
)

func TestLevel(t *testing.T) {
	cases := []struct {
		verbose, quiet bool
		want           slog.Level
	}{
		{false, false, slog.LevelInfo},
		{true, false, slog.LevelDebug},
		{false, true, slog.LevelWarn},
		{true, true, slog.LevelWarn}, // quiet wins
	}
	for _, c := range cases {
		if got := obs.Level(c.verbose, c.quiet); got != c.want {
			t.Errorf("Level(%v, %v) = %v, want %v", c.verbose, c.quiet, got, c.want)
		}
	}
}

func TestNewLoggerStripsTimestamp(t *testing.T) {
	var buf bytes.Buffer
	log := obs.NewLogger(&buf, slog.LevelInfo)
	log.Info("campaign start", "jobs", 23)
	line := buf.String()
	if strings.Contains(line, "time=") {
		t.Fatalf("timestamp not stripped: %q", line)
	}
	if !strings.Contains(line, "msg=\"campaign start\"") || !strings.Contains(line, "jobs=23") {
		t.Fatalf("unexpected line: %q", line)
	}

	buf.Reset()
	log.Debug("hidden")
	if buf.Len() != 0 {
		t.Fatalf("debug leaked through Info level: %q", buf.String())
	}
}

func TestDiscard(t *testing.T) {
	log := obs.Discard()
	log.Error("dropped", "k", "v") // must not panic or write anywhere
	if log.Enabled(nil, slog.LevelError) {
		t.Fatal("discard logger claims to be enabled")
	}
}
