package obs

import (
	"io"
	"log/slog"
)

// Level maps the shared CLI verbosity flags to a slog level: -quiet keeps
// warnings and errors only, -v adds per-job and per-step debug detail, and
// the default is campaign-phase progress at Info. Quiet wins when both are
// set.
func Level(verbose, quiet bool) slog.Level {
	switch {
	case quiet:
		return slog.LevelWarn
	case verbose:
		return slog.LevelDebug
	}
	return slog.LevelInfo
}

// NewLogger builds the shared structured logger: a text handler with the
// timestamp attribute stripped, matching the repo's log.SetFlags(0) idiom —
// supervision events stay greppable and stable across runs (job outcomes
// are seed-determined, so the interesting fields are, too).
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	}))
}

// Discard returns a logger that drops everything — the nil-object the
// runtime layers substitute when no logger is configured.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }
