package obs_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"raxmlcell/internal/obs"
)

// getWith issues one GET with an optional Accept header and returns the
// status, Content-Type and body.
func getWith(t *testing.T, url, accept string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), body
}

func TestMetricsContentNegotiation(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("mw.jobs_done").Add(2)
	reg.Histogram("search.round_ms", obs.MsBuckets).Observe(1.5)
	srv := httptest.NewServer(obs.NewDebugMux(reg))
	defer srv.Close()

	// Default: JSON.
	_, ct, body := getWith(t, srv.URL+"/metrics", "")
	if ct != "application/json; charset=utf-8" || body[0] != '{' {
		t.Fatalf("default /metrics: Content-Type %q, body %q...", ct, body[:1])
	}

	// ?format=prom: exposition text, and it must self-validate.
	_, ct, body = getWith(t, srv.URL+"/metrics?format=prom", "")
	if ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("?format=prom Content-Type %q", ct)
	}
	if n, err := obs.ValidatePromFormat(bytes.NewReader(body)); err != nil || n == 0 {
		t.Fatalf("?format=prom output invalid (%d samples): %v\n%s", n, err, body)
	}

	// A scraper-shaped Accept header selects prom; a JSON-preferring one
	// keeps JSON; ?format=json overrides everything.
	if _, ct, _ = getWith(t, srv.URL+"/metrics", "text/plain;version=0.0.4"); !contains(ct, "text/plain") {
		t.Fatalf("Accept text/plain got %q", ct)
	}
	if _, ct, _ = getWith(t, srv.URL+"/metrics", "application/json, text/plain"); !contains(ct, "application/json") {
		t.Fatalf("Accept json+text got %q", ct)
	}
	if _, ct, _ = getWith(t, srv.URL+"/metrics?format=json", "text/plain"); !contains(ct, "application/json") {
		t.Fatalf("?format=json with text Accept got %q", ct)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

func TestDebugFlightEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	f := obs.NewFlightRecorder(16, stepClock(time.Millisecond))
	f.Record("attempt", "inference#0", 1, 0, "")
	f.Record("quarantine", "inference#0", 2, 0, "crash")

	srv := httptest.NewServer(obs.NewDebugMux(reg, obs.WithFlight(f)))
	defer srv.Close()

	code, ct, body := getWith(t, srv.URL+"/debug/flight", "")
	if code != http.StatusOK || ct != "application/json; charset=utf-8" {
		t.Fatalf("/debug/flight: status %d, Content-Type %q", code, ct)
	}
	if n, err := obs.ValidateFlight(bytes.NewReader(body)); err != nil || n != 2 {
		t.Fatalf("/debug/flight payload invalid (%d events): %v\n%s", n, err, body)
	}

	// Without WithFlight the endpoint must not exist.
	bare := httptest.NewServer(obs.NewDebugMux(reg))
	defer bare.Close()
	if code, _, _ := getWith(t, bare.URL+"/debug/flight", ""); code != http.StatusNotFound {
		t.Fatalf("/debug/flight without a recorder: status %d, want 404", code)
	}
}

func TestStartDebugServerShutdown(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr, err := obs.StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/metrics", addr)
	if code, _, _ := getWith(t, url, ""); code != http.StatusOK {
		t.Fatalf("live server: status %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := http.Get(url); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}

func TestStartDebugServerPortInUse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	if srv, _, err := obs.StartDebugServer(ln.Addr().String(), obs.NewRegistry()); err == nil {
		srv.Close()
		t.Fatal("StartDebugServer on an occupied port did not fail")
	}
}
