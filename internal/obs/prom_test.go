package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"raxmlcell/internal/obs"
)

func TestWritePromParsesAndDeterministic(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("mw.jobs_done").Add(7)
	reg.Counter(obs.Key("mw.attempts", "job", "inference#0")).Add(3)
	reg.Gauge("mw.best_logl").Set(-1234.5)
	h := reg.Histogram("search.round_ms", obs.MsBuckets)
	h.Observe(0.02)
	h.Observe(3.5)
	h.Observe(99999) // overflow bucket

	var a, b bytes.Buffer
	if err := reg.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two renders of identical state differ:\n%s\n---\n%s", a.Bytes(), b.Bytes())
	}

	n, err := obs.ValidatePromFormat(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("ValidatePromFormat: %v\n%s", err, a.Bytes())
	}
	// 2 counter samples + 1 gauge + (len(MsBuckets)+1 buckets + sum + count).
	if want := 2 + 1 + len(obs.MsBuckets) + 3; n != want {
		t.Fatalf("validated %d samples, want %d\n%s", n, want, a.Bytes())
	}

	out := a.String()
	for _, frag := range []string{
		"# TYPE mw_jobs_done counter\n",
		"mw_jobs_done 7\n",
		`mw_attempts{job="inference#0"} 3`,
		"# TYPE search_round_ms histogram\n",
		`search_round_ms_bucket{le="+Inf"} 3`,
		"search_round_ms_count 3\n",
		"# TYPE mw_best_logl gauge\n",
		"mw_best_logl -1234.5\n",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q\n%s", frag, out)
		}
	}
	// Sanitized names only: the registry's dots must not leak.
	if strings.Contains(out, "search.round") {
		t.Fatalf("unsanitized name leaked into prom output:\n%s", out)
	}
}

func TestWritePromHistogramCumulative(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat.ms", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.6, 5, 50, 5000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := []string{
		`lat_ms_bucket{le="1"} 2`,
		`lat_ms_bucket{le="10"} 3`,
		`lat_ms_bucket{le="100"} 4`,
		`lat_ms_bucket{le="+Inf"} 5`,
		`lat_ms_sum 5056.1`,
		`lat_ms_count 5`,
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(want)+1 { // +1 for the TYPE line
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), len(want)+1, buf.String())
	}
	for i, w := range want {
		if lines[i+1] != w {
			t.Errorf("line %d = %q, want %q", i+1, lines[i+1], w)
		}
	}
	if _, err := obs.ValidatePromFormat(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWritePromLabelEscaping(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(obs.Key("jobs", "detail", `quo"te\back`)).Inc()
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `jobs{detail="quo\"te\\back"} 1`) {
		t.Fatalf("label not escaped:\n%s", buf.String())
	}
	if _, err := obs.ValidatePromFormat(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("escaped output rejected: %v", err)
	}
}

func TestValidatePromFormatRejects(t *testing.T) {
	cases := map[string]string{
		"duplicate TYPE": "# TYPE a counter\na 1\n# TYPE a counter\na 2\n",
		"bad name":       "# TYPE 1bad counter\n1bad 1\n",
		"bad sample":     "# TYPE a counter\na one\n",
		"unquoted label": "# TYPE a counter\na{x=y} 1\n",
		"bucket counts decrease": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" +
			"h_sum 1\nh_count 3\n",
		"duplicate le bound": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + `h_bucket{le="1"} 2` + "\n" +
			`h_bucket{le="+Inf"} 2` + "\n" + "h_sum 1\nh_count 2\n",
		"missing +Inf bucket": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 1` + "\n" + "h_sum 1\nh_count 1\n",
		"_count disagrees": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 2` + "\n" + "h_sum 1\nh_count 3\n",
	}
	for name, payload := range cases {
		if _, err := obs.ValidatePromFormat(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted\n%s", name, payload)
		}
	}
}

func TestValidatePromFormatAcceptsLabeledHistogram(t *testing.T) {
	// Two label sets of the same histogram base are independent series; each
	// must satisfy the coherence rules on its own.
	payload := "# TYPE h histogram\n" +
		`h_bucket{job="a",le="1"} 1` + "\n" + `h_bucket{job="a",le="+Inf"} 2` + "\n" +
		`h_sum{job="a"} 1.5` + "\n" + `h_count{job="a"} 2` + "\n" +
		`h_bucket{job="b",le="1"} 0` + "\n" + `h_bucket{job="b",le="+Inf"} 1` + "\n" +
		`h_sum{job="b"} 9` + "\n" + `h_count{job="b"} 1` + "\n"
	n, err := obs.ValidatePromFormat(strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("validated %d samples, want 8", n)
	}
}
