package obs_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/obs"
)

func TestDebugMuxEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("mw.jobs_done").Add(7)
	reg.Gauge("mw.best_logl").Set(-1234.5)

	srv := httptest.NewServer(obs.NewDebugMux(reg))
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not a Snapshot: %v\n%s", err, body)
	}
	if v, ok := snap.CounterValue("mw.jobs_done"); !ok || v != 7 {
		t.Fatalf("mw.jobs_done = %d, %v", v, ok)
	}
	if v, ok := snap.GaugeValue("mw.best_logl"); !ok || v != -1234.5 {
		t.Fatalf("mw.best_logl = %v, %v", v, ok)
	}

	for _, path := range []string{"/debug/pprof/", "/debug/vars", "/"} {
		if code, _ := get(path); code != http.StatusOK {
			t.Errorf("%s: status %d", path, code)
		}
	}
	if code, _ := get("/nope"); code != http.StatusNotFound {
		t.Errorf("/nope: status %d, want 404", code)
	}
}

func TestStartDebugServer(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x").Inc()
	srv, addr, err := obs.StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics on live server: status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.CounterValue("x"); !ok || v != 1 {
		t.Fatalf("counter x = %d, %v", v, ok)
	}
}

func TestPublishMeter(t *testing.T) {
	m := likelihood.Meter{NewviewCalls: 10, Muls: 200, Adds: 100, CacheHits: 3}
	reg := obs.NewRegistry()
	obs.PublishMeter(reg, "kernel.", &m)
	snap := reg.Snapshot()
	for name, want := range map[string]uint64{
		"kernel.newview_calls": 10,
		"kernel.muls":          200,
		"kernel.adds":          100,
		"kernel.flops":         m.Flops(),
		"kernel.cache_hits":    3,
	} {
		if v, ok := snap.CounterValue(name); !ok || v != want {
			t.Errorf("%s = %d (present %v), want %d", name, v, ok, want)
		}
	}
	// Republishing updated totals overwrites, not accumulates.
	m.NewviewCalls = 25
	obs.PublishMeter(reg, "kernel.", &m)
	snap = reg.Snapshot()
	if v, _ := snap.CounterValue("kernel.newview_calls"); v != 25 {
		t.Fatalf("republished newview_calls = %d, want 25", v)
	}
	obs.PublishMeter(nil, "kernel.", &m) // nil registry must be a no-op
}
