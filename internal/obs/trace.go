package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"raxmlcell/internal/sim"
)

// Tracer records a timeline of typed events keyed to simulated time. It
// implements sim.Tracer, so it can be attached to a simulation engine
// (sim.Engine.SetTracer) and passed to the Cell runtime (cellrt.Config),
// which emit scheduler- and hardware-level events into it.
//
// Timestamps are simulated cycles, emitted verbatim into the trace-event
// "ts" field (which viewers display as microseconds — the scale is wrong
// but the shape, ordering and proportions are exact). A Tracer is not safe
// for concurrent use; the simulation engine resumes one process at a time,
// so all simulator events arrive from a single goroutine.
//
// Its wall-clock sibling is SpanTracer (span.go), which records the same
// event shapes against an injected monotonic clock and shares this file's
// byte-deterministic encoder.
type Tracer struct {
	events []traceEvent
	tids   map[string]int
	tracks []string // track name by tid, in first-use order
	seq    uint64
}

// Event phases, a subset of the Chrome trace-event format.
const (
	phaseComplete = 'X' // span with a duration
	phaseInstant  = 'i' // zero-duration marker
	phaseCounter  = 'C' // sampled numeric series
)

// traceEvent is the shared in-memory event of both tracers. Timestamps are
// raw int64 "ts" units: simulated cycles for Tracer, wall microseconds for
// SpanTracer. args, when non-empty, is a pre-rendered JSON object emitted
// verbatim as the event's "args" field (the SpanTracer attribution labels).
type traceEvent struct {
	ts   int64
	dur  int64
	seq  uint64 // insertion order, the tie-breaker among same-ts events
	tid  int
	ph   byte
	name string
	cat  string
	val  float64 // counter value (phaseCounter only)
	args string
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{tids: make(map[string]int)}
}

// tid returns the stable thread id of a named track, assigning ids in
// first-use order so the mapping is deterministic for a deterministic run.
func (t *Tracer) tid(track string) int {
	if id, ok := t.tids[track]; ok {
		return id
	}
	id := len(t.tracks)
	t.tids[track] = id
	t.tracks = append(t.tracks, track)
	return id
}

// Instant records a zero-duration marker on the named track.
func (t *Tracer) Instant(track, name, cat string, at sim.Time) {
	t.seq++
	t.events = append(t.events, traceEvent{
		ts: int64(at), seq: t.seq, tid: t.tid(track), ph: phaseInstant, name: name, cat: cat,
	})
}

// Span records a slice covering [from, to] on the named track. Spans whose
// interval is inverted are dropped rather than emitted corrupt.
func (t *Tracer) Span(track, name, cat string, from, to sim.Time) {
	if to < from {
		return
	}
	t.seq++
	t.events = append(t.events, traceEvent{
		ts: int64(from), dur: int64(to - from), seq: t.seq, tid: t.tid(track), ph: phaseComplete, name: name, cat: cat,
	})
}

// Counter records a sample of a numeric series on the named track.
func (t *Tracer) Counter(track, name string, at sim.Time, value float64) {
	t.seq++
	t.events = append(t.events, traceEvent{
		ts: int64(at), seq: t.seq, tid: t.tid(track), ph: phaseCounter, name: name, val: value,
	})
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int { return len(t.events) }

// Reset drops all recorded events and track assignments.
func (t *Tracer) Reset() {
	t.events = t.events[:0]
	t.tracks = t.tracks[:0]
	t.tids = make(map[string]int)
	t.seq = 0
}

// WriteJSON emits the recorded timeline as a Chrome trace-event file; see
// writeTraceJSON for the encoding contract.
func (t *Tracer) WriteJSON(w io.Writer) error {
	return writeTraceJSON(w, t.tracks, t.events)
}

// writeTraceJSON emits a timeline as a Chrome trace-event file:
// thread-name metadata first, then every event sorted by (ts, insertion
// order). The encoding is hand-rolled with a fixed field order, so the
// output is byte-deterministic — the property the golden determinism tests
// pin down. Both Tracer (sim time) and SpanTracer (wall time) funnel
// through here.
func writeTraceJSON(w io.Writer, tracks []string, events []traceEvent) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
	}
	for tid, track := range tracks {
		comma()
		fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%s}}`,
			tid, quoteJSON(track))
		comma()
		fmt.Fprintf(bw, `{"name":"thread_sort_index","ph":"M","pid":0,"tid":%d,"args":{"sort_index":%d}}`,
			tid, tid)
	}
	sorted := append([]traceEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].ts != sorted[j].ts {
			return sorted[i].ts < sorted[j].ts
		}
		return sorted[i].seq < sorted[j].seq
	})
	for _, ev := range sorted {
		comma()
		switch ev.ph {
		case phaseComplete:
			fmt.Fprintf(bw, `{"name":%s,"cat":%s,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d`,
				quoteJSON(ev.name), quoteJSON(ev.cat), ev.ts, ev.dur, ev.tid)
			if ev.args != "" {
				fmt.Fprintf(bw, `,"args":%s`, ev.args)
			}
			bw.WriteByte('}')
		case phaseInstant:
			fmt.Fprintf(bw, `{"name":%s,"cat":%s,"ph":"i","s":"t","ts":%d,"pid":0,"tid":%d`,
				quoteJSON(ev.name), quoteJSON(ev.cat), ev.ts, ev.tid)
			if ev.args != "" {
				fmt.Fprintf(bw, `,"args":%s`, ev.args)
			}
			bw.WriteByte('}')
		case phaseCounter:
			fmt.Fprintf(bw, `{"name":%s,"ph":"C","ts":%d,"pid":0,"tid":%d,"args":{"value":%s}}`,
				quoteJSON(ev.name), ev.ts, ev.tid,
				strconv.FormatFloat(ev.val, 'g', -1, 64))
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// quoteJSON renders s as a JSON string literal.
func quoteJSON(s string) string {
	b, _ := json.Marshal(s) // marshaling a string cannot fail
	return string(b)
}

// validation types mirror the trace-event fields we emit; pointers
// distinguish absent from zero.
type vEvent struct {
	Name  *string  `json:"name"`
	Phase *string  `json:"ph"`
	TS    *float64 `json:"ts"`
	Dur   *float64 `json:"dur"`
	PID   *int     `json:"pid"`
	TID   *int     `json:"tid"`
	Scope *string  `json:"s"`
}

type vFile struct {
	TraceEvents []vEvent `json:"traceEvents"`
}

// ValidateTrace checks that r holds a well-formed Chrome trace-event JSON
// file — the schema gate run by `make trace` and CI before a trace is
// published as an artifact. It returns the number of events validated.
func ValidateTrace(r io.Reader) (int, error) {
	var f vFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return 0, fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return 0, fmt.Errorf("obs: trace has no traceEvents array")
	}
	for i, ev := range f.TraceEvents {
		if ev.Name == nil || *ev.Name == "" {
			return 0, fmt.Errorf("obs: event %d: missing name", i)
		}
		if ev.Phase == nil {
			return 0, fmt.Errorf("obs: event %d (%s): missing ph", i, *ev.Name)
		}
		switch *ev.Phase {
		case "M":
			// Metadata carries no timestamp.
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				return 0, fmt.Errorf("obs: event %d (%s): complete event needs dur >= 0", i, *ev.Name)
			}
			fallthrough
		case "i", "C":
			if ev.TS == nil || *ev.TS < 0 {
				return 0, fmt.Errorf("obs: event %d (%s): needs ts >= 0", i, *ev.Name)
			}
			if *ev.Phase == "i" && (ev.Scope == nil || *ev.Scope == "") {
				return 0, fmt.Errorf("obs: event %d (%s): instant event needs a scope", i, *ev.Name)
			}
		default:
			return 0, fmt.Errorf("obs: event %d (%s): unknown phase %q", i, *ev.Name, *ev.Phase)
		}
		if ev.PID == nil || ev.TID == nil {
			return 0, fmt.Errorf("obs: event %d (%s): missing pid/tid", i, *ev.Name)
		}
	}
	return len(f.TraceEvents), nil
}
