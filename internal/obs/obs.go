// Package obs is the observability layer of the reproduction: timeline
// tracing for both the simulated Cell and the real inference pipeline, a
// unified metrics registry with JSON and Prometheus surfaces, a crash-scoped
// flight recorder, and live introspection endpoints.
//
// The package has five coordinated parts:
//
//   - Tracer records typed span/instant/counter events keyed to simulated
//     time (sim.Time, never the wall clock) and exports them as Chrome
//     trace-event JSON, loadable in Perfetto or chrome://tracing. Output is
//     sorted and byte-deterministic: two runs of the simulator with the
//     same seed and configuration produce identical files, so traces are
//     golden-testable like any other simulator output.
//
//   - SpanTracer is its wall-clock sibling for the *real* pipeline: spans
//     over an injected monotonic time source (wallclock.Monotonic in
//     production, fake counters in tests), threaded through core → mw →
//     search as an explicit Ctx carrying job/worker/round/tenant
//     attribution, and exported through the same deterministic encoder. It
//     covers the campaign, job attempts, retries and backoff, checkpoint
//     save/recover, search rounds, candidate batches and smoothing; kernel
//     calls are timed into per-backend histograms instead of spans (they
//     are too hot for a timeline).
//
//   - FlightRecorder is a fixed-capacity lock-free ring of structured
//     events — the last few thousand things the supervision layer did —
//     snapshotted automatically into each Quarantine and dumpable live
//     (/debug/flight) or at exit (raxml -flight-out) for post-mortems.
//
//   - Registry is a process-wide metrics surface — counters, gauges and
//     lock-free histograms — that unifies the accounting previously
//     scattered across one-off structs: the likelihood kernel Meter,
//     master-worker supervision Stats, checkpoint events, search progress,
//     and the new latency histograms (search.round_ms, mw.attempt_ms,
//     checkpoint.save_ms, kernel.<backend>.<op>_ms). Snapshots are sorted
//     by name, so both the JSON form and the Prometheus text exposition
//     (WriteProm) are deterministic.
//
//   - The debug HTTP mux (NewDebugMux/StartDebugServer) serves
//     net/http/pprof profiles, expvar, /metrics (JSON, or Prometheus text
//     with ?format=prom), and optionally /debug/flight during a live run,
//     and the slog helpers give every CLI the same structured logging
//     levels (-v/-quiet).
//
// obs sits under the simdeterminism analyzer: nothing in this package may
// read the wall clock (all timing flows through injected time sources),
// draw from the global math/rand source, or iterate a map in randomized
// order on a path that feeds trace, snapshot or exposition output.
package obs
