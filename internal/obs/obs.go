// Package obs is the observability layer of the reproduction: deterministic
// timeline tracing for the simulated Cell, a unified metrics registry for
// real inference campaigns, and live introspection endpoints.
//
// The package has three coordinated parts:
//
//   - Tracer records typed span/instant/counter events keyed to simulated
//     time (sim.Time, never the wall clock) and exports them as Chrome
//     trace-event JSON, loadable in Perfetto or chrome://tracing. Output is
//     sorted and byte-deterministic: two runs of the simulator with the
//     same seed and configuration produce identical files, so traces are
//     golden-testable like any other simulator output.
//
//   - Registry is a process-wide metrics surface — counters, gauges and
//     histograms — that unifies the accounting previously scattered across
//     one-off structs: the likelihood kernel Meter, master-worker
//     supervision Stats, checkpoint events and search progress. Snapshots
//     are sorted by name, so their JSON form is deterministic too.
//
//   - The debug HTTP mux (NewDebugMux/StartDebugServer) serves
//     net/http/pprof profiles, expvar, and a /metrics JSON view of a
//     Registry during a live run, and the slog helpers give every CLI the
//     same structured logging levels (-v/-quiet).
//
// obs sits under the simdeterminism analyzer: nothing in this package may
// read the wall clock, draw from the global math/rand source, or iterate a
// map in randomized order on a path that feeds trace or snapshot output.
package obs
