package obs

import "raxmlcell/internal/likelihood"

// PublishMeter copies every field of an aggregated kernel meter into the
// registry as counters under the given prefix (e.g. "kernel."). Meter
// fields are cumulative totals, so republishing after each completed job
// keeps the /metrics view current without sharing the meter itself across
// workers.
func PublishMeter(r *Registry, prefix string, m *likelihood.Meter) {
	if r == nil || m == nil {
		return
	}
	set := func(name string, v uint64) { r.Counter(prefix + name).Store(v) }
	set("newview_calls", m.NewviewCalls)
	set("makenewz_calls", m.MakenewzCalls)
	set("evaluate_calls", m.EvaluateCalls)
	set("newton_iters", m.NewtonIters)
	set("muls", m.Muls)
	set("adds", m.Adds)
	set("flops", m.Flops())
	set("exps", m.Exps)
	set("logs", m.Logs)
	set("scale_checks", m.ScaleChecks)
	set("scale_events", m.ScaleEvents)
	set("small_loop_iters", m.SmallLoopIters)
	set("big_loop_iters", m.BigLoopIters)
	set("bytes_streamed", m.BytesStreamed)
	set("tip_tip_calls", m.TipTipCalls)
	set("tip_inner_calls", m.TipInnerCalls)
	set("inner_inner_calls", m.InnerInnerCalls)
	set("cache_hits", m.CacheHits)
}
