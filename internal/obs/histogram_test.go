package obs_test

import (
	"sync"
	"testing"

	"raxmlcell/internal/obs"
)

func TestHistogramBucketing(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 1.5, 10, 11, 1e6} {
		h.Observe(v)
	}
	hv := reg.Snapshot().Histograms[0]
	if hv.Count != 6 {
		t.Fatalf("count %d, want 6", hv.Count)
	}
	// Bounds are inclusive upper limits: 0.5 and 1 land in the first
	// bucket, 1.5 and 10 in the second, 11 in the third, 1e6 overflows.
	if want := []uint64{2, 2, 1, 1}; len(hv.Counts) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(hv.Counts), len(want))
	} else {
		for i, w := range want {
			if hv.Counts[i] != w {
				t.Errorf("bucket[%d] = %d, want %d", i, hv.Counts[i], w)
			}
		}
	}
	if hv.Sum < 1e6 {
		t.Fatalf("sum %v, want >= 1e6", hv.Sum)
	}
}

// TestHistogramConcurrentObserveSnapshotRace drives concurrent Observe
// writers against a concurrent Snapshot reader; run under -race this
// proves Observe is safe without a mutex and Snapshot never tears the
// histogram's storage.
func TestHistogramConcurrentObserveSnapshotRace(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("mw.attempt_ms", obs.MsBuckets)
	const writers, each = 8, 2000

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < each; i++ {
				h.Observe(float64(i%1000) / 10)
			}
		}()
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			hv := reg.Snapshot().Histograms[0]
			var total uint64
			for _, c := range hv.Counts {
				total += c
			}
			// In-flight observations may skew count vs buckets slightly;
			// neither may ever exceed the number of samples written.
			if hv.Count > writers*each || total > writers*each {
				t.Errorf("snapshot overshoot: count %d, buckets %d", hv.Count, total)
				return
			}
		}
	}()

	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	hv := reg.Snapshot().Histograms[0]
	if hv.Count != writers*each {
		t.Fatalf("final count %d, want %d", hv.Count, writers*each)
	}
	var total uint64
	for _, c := range hv.Counts {
		total += c
	}
	if total != writers*each {
		t.Fatalf("final bucket total %d, want %d", total, writers*each)
	}
}

// TestKernelHists checks the observer adapter end to end: per-op
// histograms registered under kernel.<backend>.<op>_ms and fed through
// ObserveKernel without allocation.
func TestKernelHists(t *testing.T) {
	reg := obs.NewRegistry()
	k := obs.NewKernelHists(reg, "batched")
	k.ObserveKernel(0, 2500000) // OpNewview, 2.5ms as time.Duration
	k.ObserveKernel(0, 500000)
	k.ObserveKernel(2, 100000) // OpEvaluate

	snap := reg.Snapshot()
	byName := map[string]uint64{}
	for _, hv := range snap.Histograms {
		byName[hv.Name] = hv.Count
	}
	if byName["kernel.batched.newview_ms"] != 2 {
		t.Fatalf("newview_ms count = %d, want 2 (%v)", byName["kernel.batched.newview_ms"], byName)
	}
	if byName["kernel.batched.evaluate_ms"] != 1 {
		t.Fatalf("evaluate_ms count = %d, want 1", byName["kernel.batched.evaluate_ms"])
	}
	if byName["kernel.batched.makenewz_ms"] != 0 {
		t.Fatalf("makenewz_ms count = %d, want 0", byName["kernel.batched.makenewz_ms"])
	}
	k.ObserveKernel(-1, 1) // out-of-range ops must be ignored, not panic
	k.ObserveKernel(99, 1)
}
