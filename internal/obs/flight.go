package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultFlightCapacity is the ring size used when a caller passes a
// non-positive capacity.
const DefaultFlightCapacity = 4096

// FlightEvent is one structured entry in the flight recorder: what
// happened, to which job, on which worker, when (milliseconds on the
// recorder's injected clock). Events are plain data so a snapshot taken at
// quarantine time stays meaningful long after the campaign state is gone.
type FlightEvent struct {
	Seq     uint64  `json:"seq"`
	AtMs    float64 `json:"at_ms"`
	Kind    string  `json:"kind"`
	Job     string  `json:"job,omitempty"`
	Attempt int     `json:"attempt,omitempty"`
	Worker  int     `json:"worker"`
	Detail  string  `json:"detail,omitempty"`
}

// FlightRecorder is a fixed-capacity, lock-free ring buffer of the most
// recent structured events — the post-mortem trail behind job failures.
// Writers claim a slot with one atomic increment and publish the event with
// one atomic pointer store, so recording never blocks the supervision hot
// path and is safe from any number of goroutines; old events are simply
// overwritten. Snapshot reassembles the surviving window in order.
//
// The clock is injected (nil is allowed and stamps every event at 0ms) for
// the same simdeterminism reason as SpanTracer.
type FlightRecorder struct {
	now   func() time.Duration
	seq   atomic.Uint64
	slots []atomic.Pointer[FlightEvent]
}

// NewFlightRecorder returns a recorder holding the last capacity events
// (<= 0 selects DefaultFlightCapacity) stamped by the given monotonic time
// source (nil disables timestamps).
func NewFlightRecorder(capacity int, now func() time.Duration) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{now: now, slots: make([]atomic.Pointer[FlightEvent], capacity)}
}

// Record appends one event to the ring; a nil recorder is a no-op so call
// sites need no guard.
func (f *FlightRecorder) Record(kind, job string, attempt, worker int, detail string) {
	if f == nil {
		return
	}
	ev := &FlightEvent{Kind: kind, Job: job, Attempt: attempt, Worker: worker, Detail: detail}
	if f.now != nil {
		ev.AtMs = float64(f.now()) / float64(time.Millisecond)
	}
	ev.Seq = f.seq.Add(1)
	f.slots[(ev.Seq-1)%uint64(len(f.slots))].Store(ev)
}

// Recorded reports the total number of events ever recorded (including
// those the ring has since overwritten).
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Capacity reports the ring size.
func (f *FlightRecorder) Capacity() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Snapshot returns the surviving window, oldest first. It is safe to call
// concurrently with writers; a slot being overwritten during the copy
// yields either the old or the new event, both of which really happened.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		if ev := f.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// flightDump is the JSON file/endpoint schema of a recorder snapshot.
type flightDump struct {
	Capacity int           `json:"capacity"`
	Recorded uint64        `json:"recorded"`
	Events   []FlightEvent `json:"events"`
}

// WriteJSON dumps the current snapshot — the payload behind /debug/flight
// and `raxml -flight-out`. The snapshot is sorted by sequence number, so
// for quiesced state the output is deterministic up to timestamps.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	d := flightDump{Capacity: f.Capacity(), Recorded: f.Recorded(), Events: f.Snapshot()}
	if d.Events == nil {
		d.Events = []FlightEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&d)
}

// ValidateFlight checks that r holds a well-formed flight dump: parseable
// JSON, a sane recorded/capacity pair, and events in strictly increasing
// sequence order with non-empty kinds and non-negative timestamps. It
// returns the number of events validated — the schema gate the CI obs-gate
// job runs on chaos-produced dumps.
func ValidateFlight(r io.Reader) (int, error) {
	var d flightDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return 0, fmt.Errorf("obs: flight dump is not valid JSON: %w", err)
	}
	if d.Capacity < 1 {
		return 0, fmt.Errorf("obs: flight dump capacity %d", d.Capacity)
	}
	if d.Events == nil {
		return 0, fmt.Errorf("obs: flight dump has no events array")
	}
	if uint64(len(d.Events)) > d.Recorded {
		return 0, fmt.Errorf("obs: flight dump holds %d events but records only %d", len(d.Events), d.Recorded)
	}
	var prev uint64
	for i, ev := range d.Events {
		if ev.Kind == "" {
			return 0, fmt.Errorf("obs: flight event %d: missing kind", i)
		}
		if ev.Seq == 0 {
			return 0, fmt.Errorf("obs: flight event %d (%s): missing seq", i, ev.Kind)
		}
		if i > 0 && ev.Seq <= prev {
			return 0, fmt.Errorf("obs: flight event %d (%s): seq %d not after %d", i, ev.Kind, ev.Seq, prev)
		}
		if ev.AtMs < 0 {
			return 0, fmt.Errorf("obs: flight event %d (%s): negative timestamp", i, ev.Kind)
		}
		prev = ev.Seq
	}
	return len(d.Events), nil
}
