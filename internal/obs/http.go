package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the live-introspection handler served under
// -debug-addr: the standard net/http/pprof endpoints (CPU/heap profiles,
// goroutine dumps, execution traces), expvar under /debug/vars, and a
// /metrics JSON snapshot of the registry.
func NewDebugMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.WriteJSON(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "raxml debug server")
		fmt.Fprintln(w, "  /metrics         metrics registry snapshot (JSON)")
		fmt.Fprintln(w, "  /debug/pprof/    pprof profile index")
		fmt.Fprintln(w, "  /debug/vars      expvar")
	})
	return mux
}

// StartDebugServer listens on addr (e.g. "localhost:6060"; a ":0" port
// picks a free one) and serves the debug mux in the background. It returns
// the server — Close it to stop — and the bound address.
func StartDebugServer(addr string, reg *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg)}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return srv, ln.Addr(), nil
}
