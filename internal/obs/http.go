package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// DebugOption configures optional endpoints on the debug mux.
type DebugOption func(*debugConfig)

type debugConfig struct {
	flight *FlightRecorder
}

// WithFlight exposes the flight recorder's current window under
// /debug/flight (the live counterpart of `raxml -flight-out`).
func WithFlight(f *FlightRecorder) DebugOption {
	return func(c *debugConfig) { c.flight = f }
}

// NewDebugMux builds the live-introspection handler served under
// -debug-addr: the standard net/http/pprof endpoints (CPU/heap profiles,
// goroutine dumps, execution traces), expvar under /debug/vars, a /metrics
// registry snapshot (JSON by default; Prometheus text exposition with
// ?format=prom or an Accept header preferring text/plain), and — with
// WithFlight — the flight recorder's window under /debug/flight.
func NewDebugMux(reg *Registry, opts ...DebugOption) *http.ServeMux {
	var cfg debugConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsProm(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WriteProm(w) //nolint:errcheck // headers sent; nothing left to report
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.WriteJSON(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
	if cfg.flight != nil {
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			cfg.flight.WriteJSON(w) //nolint:errcheck // headers sent
		})
	}
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "raxml debug server")
		fmt.Fprintln(w, "  /metrics             metrics registry snapshot (JSON; ?format=prom for Prometheus text)")
		if cfg.flight != nil {
			fmt.Fprintln(w, "  /debug/flight        flight recorder window (JSON)")
		}
		fmt.Fprintln(w, "  /debug/pprof/    pprof profile index")
		fmt.Fprintln(w, "  /debug/vars      expvar")
	})
	return mux
}

// wantsProm decides the /metrics representation: an explicit ?format=prom
// (or ?format=prometheus) always wins; otherwise an Accept header that
// mentions text/plain without mentioning application/json — the shape a
// Prometheus scraper sends — selects the exposition format.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// StartDebugServer listens on addr (e.g. "localhost:6060"; a ":0" port
// picks a free one) and serves the debug mux in the background. It returns
// the server — Close it to stop — and the bound address.
func StartDebugServer(addr string, reg *Registry, opts ...DebugOption) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: NewDebugMux(reg, opts...)}
	go srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return srv, ln.Addr(), nil
}
