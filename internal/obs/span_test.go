package obs_test

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"raxmlcell/internal/obs"
)

// stepClock returns a deterministic monotonic source advancing step per
// read — the test stand-in for wallclock.Monotonic.
func stepClock(step time.Duration) func() time.Duration {
	var n atomic.Int64
	return func() time.Duration { return time.Duration(n.Add(1)) * step }
}

// buildTimeline drives one fixed sequence of spans, instants and counters
// through a tracer — the shared script of the golden-determinism test.
func buildTimeline(tr *obs.SpanTracer) {
	root := tr.Root("campaign").WithTenant("t0")
	csp := root.Start("campaign", "mw")
	for w := 0; w < 2; w++ {
		wctx := root.WithTrack("worker-" + string(rune('0'+w))).WithWorker(w)
		jctx := wctx.WithJob("inference#0")
		asp := jctx.Start("attempt", "mw")
		rsp := jctx.WithRound(1).Start("round", "search")
		jctx.Instant("quarantine", "mw")
		jctx.Counter("logl", -1234.5)
		rsp.End()
		asp.End()
	}
	csp.End()
}

func TestSpanTracerGoldenDeterminism(t *testing.T) {
	render := func() []byte {
		tr := obs.NewSpanTracer(stepClock(time.Microsecond))
		buildTimeline(tr)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical timelines rendered differently:\n%s\n---\n%s", a, b)
	}
	n, err := obs.ValidateTrace(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, a)
	}
	// 2 workers x (attempt span + round span + instant + counter) + the
	// campaign span, plus two metadata events (name + sort index) for each
	// of the three tracks.
	if want := 2*4 + 1 + 3*2; n != want {
		t.Fatalf("trace has %d events, want %d\n%s", n, want, a)
	}
	for _, frag := range []string{
		`"job":"inference#0"`, `"worker":1`, `"round":1`, `"tenant":"t0"`,
		`"name":"quarantine"`, `"thread_name"`,
	} {
		if !strings.Contains(string(a), frag) {
			t.Errorf("trace missing %s\n%s", frag, a)
		}
	}
}

func TestSpanTracerConcurrent(t *testing.T) {
	tr := obs.NewSpanTracer(stepClock(time.Microsecond))
	root := tr.Root("main")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := root.WithTrack("worker").WithWorker(g)
			for i := 0; i < 200; i++ {
				sp := ctx.Start("attempt", "mw")
				ctx.Instant("tick", "mw")
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Len(); got != 8*200*2 {
		t.Fatalf("retained %d events, want %d", got, 8*200*2)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(&buf); err != nil {
		t.Fatalf("ValidateTrace after concurrent recording: %v", err)
	}
}

func TestSpanTracerCapAndDrops(t *testing.T) {
	tr := obs.NewSpanTracer(stepClock(time.Microsecond))
	tr.SetMaxEvents(4)
	ctx := tr.Root("main")
	for i := 0; i < 10; i++ {
		ctx.Instant("tick", "t")
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// 4 retained instants + 2 metadata events for the single track.
	if n, err := obs.ValidateTrace(&buf); err != nil || n != 6 {
		t.Fatalf("capped trace: %d events, err %v", n, err)
	}
}

func TestSpanTracerNonRecordingStillObserves(t *testing.T) {
	tr := obs.NewSpanTracer(stepClock(time.Microsecond))
	tr.SetRecording(false)
	reg := obs.NewRegistry()
	h := reg.Histogram("mw.attempt_ms", obs.MsBuckets)

	sp := tr.Root("main").Start("attempt", "mw")
	sp.EndObserve(h)
	if tr.Len() != 0 {
		t.Fatalf("non-recording tracer retained %d events", tr.Len())
	}
	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 1 {
		t.Fatalf("EndObserve did not feed the histogram: %+v", snap.Histograms)
	}
	if snap.Histograms[0].Sum <= 0 {
		t.Fatalf("histogram sum %v, want > 0", snap.Histograms[0].Sum)
	}
}

func TestSpanTracerNilClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSpanTracer(nil) did not panic")
		}
	}()
	obs.NewSpanTracer(nil)
}

func TestZeroCtxIsNoop(t *testing.T) {
	var ctx obs.Ctx
	if ctx.Enabled() {
		t.Fatal("zero Ctx reports enabled")
	}
	if ctx.TimeSource() != nil {
		t.Fatal("zero Ctx has a time source")
	}
	// None of these may panic.
	ctx = ctx.WithTrack("x").WithJob("j").WithWorker(1).WithRound(2).WithTenant("t")
	ctx.Instant("i", "c")
	ctx.Counter("n", 1)
	sp := ctx.Start("s", "c")
	sp.End()
	sp.EndObserve(nil)
}
