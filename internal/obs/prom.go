package obs

import (
	"bufio"
	"fmt"
	"io"
	"maps"
	"math"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Registry snapshot in the Prometheus text exposition
// format (version 0.0.4) — the scrape surface behind /metrics?format=prom.
// The registry's internal naming ("search.round_ms", labels rendered by
// Key as name{k=v,...}) is mapped onto Prometheus conventions: dots and
// other illegal characters become underscores, labels are re-rendered with
// quoted escaped values, and histograms are expanded into cumulative
// *_bucket series with le labels plus *_sum and *_count. Output order is
// deterministic: series are grouped by sanitized metric name, groups sorted
// by name, each group preceded by exactly one # TYPE line.
//
// Registry names that collide after sanitization merge into one group;
// names must not collide *across* metric kinds (a counter and a gauge
// sharing a name would emit duplicate TYPE lines, which ValidateProm
// rejects — and Prometheus itself would reject on scrape).

// promName sanitizes a metric name: every rune outside [a-zA-Z0-9_:] maps
// to '_', and a leading digit is prefixed.
func promName(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelName sanitizes a label name ([a-zA-Z0-9_], no leading digit).
func promLabelName(s string) string {
	n := promName(s)
	return strings.ReplaceAll(n, ":", "_")
}

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promFloat renders a float64 sample value, using the exposition format's
// special tokens for non-finite values.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// splitKey undoes the Key encoding: "name{k1=v1,k2=v2}" into the base name
// and ordered label pairs. Names without braces carry no labels.
func splitKey(raw string) (base string, labels [][2]string) {
	open := strings.IndexByte(raw, '{')
	if open < 0 || !strings.HasSuffix(raw, "}") {
		return raw, nil
	}
	base = raw[:open]
	for _, pair := range strings.Split(raw[open+1:len(raw)-1], ",") {
		if pair == "" {
			continue
		}
		if eq := strings.IndexByte(pair, '='); eq >= 0 {
			labels = append(labels, [2]string{pair[:eq], pair[eq+1:]})
		} else {
			labels = append(labels, [2]string{pair, ""})
		}
	}
	return base, labels
}

// promLabelSet renders label pairs (plus an optional extra pair, used for
// le) as {k="v",...}; empty input renders as "".
func promLabelSet(labels [][2]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, kv := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promLabelName(kv[0]))
		b.WriteString(`="`)
		b.WriteString(promEscape(kv[1]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(promEscape(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// promGroup is one TYPE group being assembled: the sample lines of every
// series sharing a sanitized base name.
type promGroup struct {
	kind  string
	lines []string
}

// promGroups accumulates groups in deterministic (first-seen within sorted
// snapshot, then name-sorted) order.
type promGroups struct {
	byName map[string]*promGroup
	names  []string
}

func (g *promGroups) add(base, kind string, lines ...string) {
	grp, ok := g.byName[base]
	if !ok {
		grp = &promGroup{kind: kind}
		g.byName[base] = grp
		g.names = append(g.names, base)
	}
	grp.lines = append(grp.lines, lines...)
}

// WriteProm renders a snapshot of the registry in the Prometheus text
// exposition format.
func (r *Registry) WriteProm(w io.Writer) error {
	s := r.Snapshot()
	g := &promGroups{byName: make(map[string]*promGroup)}

	for _, c := range s.Counters {
		base, labels := splitKey(c.Name)
		name := promName(base)
		g.add(name, "counter",
			name+promLabelSet(labels, "", "")+" "+strconv.FormatUint(c.Value, 10))
	}
	for _, gv := range s.Gauges {
		base, labels := splitKey(gv.Name)
		name := promName(base)
		g.add(name, "gauge",
			name+promLabelSet(labels, "", "")+" "+promFloat(gv.Value))
	}
	for _, h := range s.Histograms {
		base, labels := splitKey(h.Name)
		name := promName(base)
		var cum uint64
		lines := make([]string, 0, len(h.Counts)+2)
		for i, cnt := range h.Counts {
			cum += cnt
			le := "+Inf"
			if i < len(h.Bounds) {
				le = promFloat(h.Bounds[i])
			}
			lines = append(lines,
				name+"_bucket"+promLabelSet(labels, "le", le)+" "+strconv.FormatUint(cum, 10))
		}
		lines = append(lines,
			name+"_sum"+promLabelSet(labels, "", "")+" "+promFloat(h.Sum),
			name+"_count"+promLabelSet(labels, "", "")+" "+strconv.FormatUint(h.Count, 10))
		g.add(name, "histogram", lines...)
	}

	sort.Strings(g.names)
	bw := bufio.NewWriter(w)
	for _, name := range g.names {
		grp := g.byName[name]
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, grp.kind)
		for _, line := range grp.lines {
			bw.WriteString(line)
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// promNameOK reports whether s is a legal exposition-format metric name.
func promNameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r == ':':
		case r >= 'a' && r <= 'z':
		case r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parsePromSample parses one sample line into (name, sorted label set
// excluding le, le value or "", numeric value). It mirrors the grammar of
// the text exposition format closely enough to catch malformed output:
// name, optional {k="v",...} with escape sequences, a float value, and an
// optional integer timestamp.
func parsePromSample(line string) (name, labelKey, le string, value float64, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name = line[:i]
	if !promNameOK(name) {
		return "", "", "", 0, fmt.Errorf("bad metric name %q", name)
	}
	var labels [][2]string
	if i < len(line) && line[i] == '{' {
		i++
		for {
			if i >= len(line) {
				return "", "", "", 0, fmt.Errorf("unterminated label set")
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) {
				return "", "", "", 0, fmt.Errorf("label without '='")
			}
			key := line[i:j]
			if !promNameOK(strings.ReplaceAll(key, ":", "_")) || strings.ContainsRune(key, ':') {
				return "", "", "", 0, fmt.Errorf("bad label name %q", key)
			}
			j++ // past '='
			if j >= len(line) || line[j] != '"' {
				return "", "", "", 0, fmt.Errorf("label value for %q not quoted", key)
			}
			j++
			var val strings.Builder
			for {
				if j >= len(line) {
					return "", "", "", 0, fmt.Errorf("unterminated label value for %q", key)
				}
				if line[j] == '\\' {
					if j+1 >= len(line) {
						return "", "", "", 0, fmt.Errorf("dangling escape in label %q", key)
					}
					switch line[j+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", "", "", 0, fmt.Errorf("bad escape \\%c in label %q", line[j+1], key)
					}
					j += 2
					continue
				}
				if line[j] == '"' {
					j++
					break
				}
				val.WriteByte(line[j])
				j++
			}
			if key == "le" {
				le = val.String()
			} else {
				labels = append(labels, [2]string{key, val.String()})
			}
			if j < len(line) && line[j] == ',' {
				j++
			}
			i = j
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return "", "", "", 0, fmt.Errorf("missing value separator")
	}
	rest := strings.TrimSpace(line[i+1:])
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", "", 0, fmt.Errorf("want 'value [timestamp]', got %q", rest)
	}
	value, err = parsePromFloat(fields[0])
	if err != nil {
		return "", "", "", 0, fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", "", "", 0, fmt.Errorf("bad timestamp %q", fields[1])
		}
	}
	sort.Slice(labels, func(a, b int) bool { return labels[a][0] < labels[b][0] })
	var lk strings.Builder
	for _, kv := range labels {
		lk.WriteString(kv[0])
		lk.WriteByte('=')
		lk.WriteString(kv[1])
		lk.WriteByte(';')
	}
	return name, lk.String(), le, value, nil
}

// parsePromFloat parses a sample value, accepting the format's special
// +Inf/-Inf/NaN tokens.
func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// promBucketSeries accumulates one histogram's bucket samples for the
// coherence checks.
type promBucketSeries struct {
	les    []float64
	counts []float64
}

// ValidatePromFormat checks that r holds well-formed Prometheus text
// exposition output: every TYPE comment is unique and well formed, every
// sample line parses under the format's grammar, and every histogram is
// coherent — cumulative bucket counts non-decreasing over ascending le
// bounds, a +Inf bucket present, and the _count series equal to it. It
// returns the number of sample lines validated. This is the line-format
// checker the CI obs-gate job runs against the /metrics?format=prom output.
func ValidatePromFormat(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	types := map[string]string{}
	buckets := map[string]*promBucketSeries{} // "<base>|<labelKey>" -> series
	counts := map[string]float64{}            // histogram _count samples
	samples := 0
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return 0, fmt.Errorf("obs: prom line %d: malformed TYPE comment", lineNo)
				}
				name, kind := fields[2], fields[3]
				if !promNameOK(name) {
					return 0, fmt.Errorf("obs: prom line %d: bad TYPE metric name %q", lineNo, name)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return 0, fmt.Errorf("obs: prom line %d: unknown TYPE %q", lineNo, kind)
				}
				if _, dup := types[name]; dup {
					return 0, fmt.Errorf("obs: prom line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = kind
			}
			continue
		}
		name, labelKey, le, value, err := parsePromSample(line)
		if err != nil {
			return 0, fmt.Errorf("obs: prom line %d: %v", lineNo, err)
		}
		samples++
		if base, ok := strings.CutSuffix(name, "_bucket"); ok && le != "" {
			lev, lerr := parsePromFloat(le)
			if lerr != nil {
				return 0, fmt.Errorf("obs: prom line %d: bad le %q", lineNo, le)
			}
			key := base + "|" + labelKey
			bs := buckets[key]
			if bs == nil {
				bs = &promBucketSeries{}
				buckets[key] = bs
			}
			bs.les = append(bs.les, lev)
			bs.counts = append(bs.counts, value)
		}
		if base, ok := strings.CutSuffix(name, "_count"); ok {
			counts[base+"|"+labelKey] = value
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("obs: reading prom output: %w", err)
	}
	for _, key := range slices.Sorted(maps.Keys(buckets)) {
		bs := buckets[key]
		idx := make([]int, len(bs.les))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return bs.les[idx[a]] < bs.les[idx[b]] })
		prev := math.Inf(-1)
		prevCount := -1.0
		hasInf := false
		var infCount float64
		for _, i := range idx {
			if bs.les[i] <= prev {
				return 0, fmt.Errorf("obs: histogram %s: duplicate le bound %v", key, bs.les[i])
			}
			if bs.counts[i] < prevCount {
				return 0, fmt.Errorf("obs: histogram %s: bucket counts decrease at le=%v", key, bs.les[i])
			}
			prev, prevCount = bs.les[i], bs.counts[i]
			if math.IsInf(bs.les[i], 1) {
				hasInf = true
				infCount = bs.counts[i]
			}
		}
		if !hasInf {
			return 0, fmt.Errorf("obs: histogram %s: missing +Inf bucket", key)
		}
		//lint:ignore floatcmp bucket counts are exact uint64 counters rendered as floats; any drift between _count and the +Inf bucket is a writer bug, not rounding
		if total, ok := counts[key]; ok && total != infCount {
			return 0, fmt.Errorf("obs: histogram %s: _count %v != +Inf bucket %v", key, total, infCount)
		}
	}
	return samples, nil
}
