package obs

import (
	"encoding/json"
	"io"
	"maps"
	"math"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Store replaces the value — for republishing an externally accumulated
// total (e.g. a likelihood.Meter field) through the registry.
func (c *Counter) Store(n uint64) { c.v.Store(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 that can be set to arbitrary values, safe for
// concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Max raises the gauge to v if v is larger (e.g. a best-so-far
// log-likelihood published by racing workers).
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets (a final
// +Inf bucket is implicit), tracking the running count and sum. Observe is
// lock-free — bucket counts and the total are plain atomic increments and
// the sum is a compare-and-swap float add — so hot paths (kernel timing,
// span EndObserve) record samples without contending on a mutex or
// allocating. Snapshot reads the fields individually; under concurrent
// writers the (count, sum, buckets) triple may be skewed by in-flight
// observations, which is the usual monitoring trade-off.
type Histogram struct {
	bounds  []float64       // ascending upper bounds, immutable after creation
	counts  []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	sumBits atomic.Uint64   // float64 bits of the running sum
	n       atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		sum := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(sum)) {
			break
		}
	}
	h.n.Add(1)
}

// Registry is a named collection of metrics. Metric constructors are
// get-or-create and return the same instance for the same name, so any
// layer can cheaply resolve a handle and update it on a hot path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket upper bounds if needed (bounds are ignored on
// later lookups of an existing histogram).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)+1),
		}
		r.hists[name] = h
	}
	return h
}

// Key builds a labeled metric name — name{k1=v1,k2=v2} with the pairs
// sorted by key — so labeled series snapshot deterministically.
func Key(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		kv = append(kv, "")
	}
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, kv[i]+"="+kv[i+1])
	}
	sort.Strings(pairs)
	return name + "{" + strings.Join(pairs, ",") + "}"
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Name   string    `json:"name"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Snapshot is a point-in-time copy of every metric, sorted by name within
// each kind so two snapshots of identical state marshal to identical bytes.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// CounterValue finds a counter by name in the snapshot.
func (s *Snapshot) CounterValue(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// GaugeValue finds a gauge by name in the snapshot.
func (s *Snapshot) GaugeValue(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for _, name := range slices.Sorted(maps.Keys(r.counters)) {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range slices.Sorted(maps.Keys(r.gauges)) {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range slices.Sorted(maps.Keys(r.hists)) {
		h := r.hists[name]
		counts := make([]uint64, len(h.counts))
		for i := range h.counts {
			counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, HistogramValue{
			Name:   name,
			Count:  h.n.Load(),
			Sum:    math.Float64frombits(h.sumBits.Load()),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: counts,
		})
	}
	return s
}

// WriteJSON marshals a snapshot of the registry to w — the payload the
// /metrics endpoint serves.
func (r *Registry) WriteJSON(w io.Writer) error {
	s := r.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&s)
}
