package obs_test

import (
	"bytes"
	"sync"
	"testing"

	"raxmlcell/internal/obs"
)

func TestCounterGauge(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("jobs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("jobs") != c {
		t.Fatal("Counter not get-or-create")
	}
	c.Store(2)
	if got := c.Value(); got != 2 {
		t.Fatalf("counter after Store = %d, want 2", got)
	}

	g := r.Gauge("logl")
	g.Set(-1234.5)
	if got := g.Value(); got != -1234.5 {
		t.Fatalf("gauge = %v", got)
	}
	g.Max(-2000) // lower: ignored
	if got := g.Value(); got != -1234.5 {
		t.Fatalf("Max lowered the gauge to %v", got)
	}
	g.Max(-1000)
	if got := g.Value(); got != -1000 {
		t.Fatalf("Max did not raise the gauge: %v", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := obs.NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("hits")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}

func TestHistogram(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 5, 50, 5000} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms", len(s.Histograms))
	}
	hv := s.Histograms[0]
	if hv.Count != 5 || hv.Sum != 5060.5 {
		t.Fatalf("count=%d sum=%v", hv.Count, hv.Sum)
	}
	want := []uint64{1, 2, 1, 1}
	for i, c := range hv.Counts {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestKey(t *testing.T) {
	if got := obs.Key("mw.jobs"); got != "mw.jobs" {
		t.Fatalf("unlabeled Key = %q", got)
	}
	got := obs.Key("mw.jobs", "kind", "bootstrap", "index", "3")
	if got != "mw.jobs{index=3,kind=bootstrap}" {
		t.Fatalf("Key = %q", got)
	}
	// Label order must not matter.
	if other := obs.Key("mw.jobs", "index", "3", "kind", "bootstrap"); other != got {
		t.Fatalf("Key order-sensitive: %q vs %q", other, got)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *obs.Registry {
		r := obs.NewRegistry()
		// Insertion order differs from sorted order on purpose.
		r.Counter("z.last").Add(3)
		r.Counter("a.first").Add(1)
		r.Gauge("m.mid").Set(2.5)
		r.Gauge("b.low").Set(-1)
		r.Histogram("h", []float64{1}).Observe(0.5)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", a.String(), b.String())
	}

	s := build().Snapshot()
	if s.Counters[0].Name != "a.first" || s.Counters[1].Name != "z.last" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if v, ok := s.CounterValue("z.last"); !ok || v != 3 {
		t.Fatalf("CounterValue(z.last) = %d, %v", v, ok)
	}
	if v, ok := s.GaugeValue("b.low"); !ok || v != -1 {
		t.Fatalf("GaugeValue(b.low) = %v, %v", v, ok)
	}
	if _, ok := s.CounterValue("absent"); ok {
		t.Fatal("lookup of absent counter succeeded")
	}
}
