package obs_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"raxmlcell/internal/obs"
)

func TestFlightRecorderWraparound(t *testing.T) {
	f := obs.NewFlightRecorder(8, stepClock(time.Millisecond))
	for i := 0; i < 20; i++ {
		f.Record("attempt", "inference#0", i, 0, "")
	}
	if f.Recorded() != 20 {
		t.Fatalf("Recorded = %d, want 20", f.Recorded())
	}
	snap := f.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot holds %d events, want the ring's 8", len(snap))
	}
	// The ring keeps the most recent window: seqs 13..20, ascending.
	for i, ev := range snap {
		if want := uint64(13 + i); ev.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := obs.NewFlightRecorder(64, stepClock(time.Microsecond))
	var wg sync.WaitGroup
	const writers, each = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				f.Record("attempt", "inference#0", i, w, "")
			}
		}(w)
	}
	wg.Wait()
	if f.Recorded() != writers*each {
		t.Fatalf("Recorded = %d, want %d", f.Recorded(), writers*each)
	}
	snap := f.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("snapshot holds %d events, want 64", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d after %d", i, snap[i].Seq, snap[i-1].Seq)
		}
	}
}

func TestFlightWriteJSONValidates(t *testing.T) {
	f := obs.NewFlightRecorder(16, stepClock(time.Millisecond))
	f.Record("campaign.start", "", 0, -1, "jobs=2 workers=1")
	f.Record("attempt", "inference#0", 1, 0, "")
	f.Record("quarantine", "inference#0", 2, 0, "crash")
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateFlight(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateFlight: %v\n%s", err, buf.Bytes())
	}
	if n != 3 {
		t.Fatalf("validated %d events, want 3", n)
	}
	if !strings.Contains(buf.String(), `"kind": "quarantine"`) {
		t.Fatalf("dump missing quarantine event:\n%s", buf.String())
	}
}

func TestFlightWriteJSONEmpty(t *testing.T) {
	f := obs.NewFlightRecorder(4, nil)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if n, err := obs.ValidateFlight(&buf); err != nil || n != 0 {
		t.Fatalf("empty dump: %d events, err %v", n, err)
	}
}

func TestValidateFlightRejects(t *testing.T) {
	cases := map[string]string{
		"not json":       `{"capacity": 4,`,
		"no capacity":    `{"capacity": 0, "recorded": 0, "events": []}`,
		"missing events": `{"capacity": 4, "recorded": 0}`,
		"overfull":       `{"capacity": 4, "recorded": 1, "events": [{"seq":1,"kind":"a","worker":0},{"seq":2,"kind":"b","worker":0}]}`,
		"empty kind":     `{"capacity": 4, "recorded": 1, "events": [{"seq":1,"kind":"","worker":0}]}`,
		"zero seq":       `{"capacity": 4, "recorded": 1, "events": [{"seq":0,"kind":"a","worker":0}]}`,
		"seq regression": `{"capacity": 4, "recorded": 2, "events": [{"seq":2,"kind":"a","worker":0},{"seq":1,"kind":"b","worker":0}]}`,
		"negative stamp": `{"capacity": 4, "recorded": 1, "events": [{"seq":1,"at_ms":-1,"kind":"a","worker":0}]}`,
	}
	for name, payload := range cases {
		if _, err := obs.ValidateFlight(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *obs.FlightRecorder
	f.Record("x", "", 0, 0, "") // must not panic
	if f.Recorded() != 0 || f.Capacity() != 0 || f.Snapshot() != nil {
		t.Fatal("nil recorder is not inert")
	}
}
