package obs_test

import (
	"bytes"
	"testing"

	"raxmlcell/internal/cell"
	"raxmlcell/internal/cellrt"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/workload"
)

// runTraced executes a small simulated Cell run with a fresh tracer attached
// and returns the serialized timeline.
func runTraced(t *testing.T, sched cellrt.Scheduler) []byte {
	t.Helper()
	tr := obs.NewTracer()
	_, err := cellrt.Run(workload.Profile42SC(), cell.DefaultCostModel(), cell.DefaultParams(), cellrt.Config{
		Stage:     cellrt.StageAllOffloaded,
		Scheduler: sched,
		Workers:   2,
		Searches:  3,
		Episodes:  8,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("trace fails schema validation: %v", err)
	}
	return buf.Bytes()
}

// TestTraceByteDeterministic is the golden determinism property: two runs of
// the same configuration must serialize to byte-identical timelines. This is
// what makes traces diffable across commits and golden-testable in CI.
func TestTraceByteDeterministic(t *testing.T) {
	for _, sched := range []cellrt.Scheduler{cellrt.SchedEDTLP, cellrt.SchedMGPS} {
		a := runTraced(t, sched)
		b := runTraced(t, sched)
		if !bytes.Equal(a, b) {
			t.Errorf("%v: identical runs produced different traces (%d vs %d bytes)",
				sched, len(a), len(b))
		}
	}
}

// TestTraceDistinguishesSchedulers pins the other half of the contract:
// different schedulers must produce different — but each individually
// stable — timelines, so a trace actually reflects scheduling decisions.
func TestTraceDistinguishesSchedulers(t *testing.T) {
	edtlp := runTraced(t, cellrt.SchedEDTLP)
	mgps := runTraced(t, cellrt.SchedMGPS)
	if bytes.Equal(edtlp, mgps) {
		t.Fatal("EDTLP and MGPS runs produced identical traces")
	}
}
