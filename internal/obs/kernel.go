package obs

import (
	"time"

	"raxmlcell/internal/likelihood"
)

// MsBuckets is the shared latency bucket layout (milliseconds) of every
// duration histogram in the pipeline — kernel calls, search rounds, job
// attempts, checkpoint saves. The range runs from a microsecond (a cached
// newview on a small alignment) to ten seconds (a full search round on a
// large one), roughly 2.5x per step so adjacent buckets stay readable on a
// log axis.
var MsBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000,
}

// KernelHists adapts the likelihood package's KernelObserver seam onto
// per-backend latency histograms: kernel.<backend>.newview_ms,
// kernel.<backend>.makenewz_ms and kernel.<backend>.evaluate_ms. The
// histogram handles are resolved once at construction and indexed by op, so
// ObserveKernel is allocation- and lookup-free — it runs inside the hottest
// loops in the system — and safe for concurrent use from every worker
// context (Histogram.Observe is lock-free).
type KernelHists struct {
	hists [likelihood.NumKernelOps]*Histogram
}

var _ likelihood.KernelObserver = (*KernelHists)(nil)

// NewKernelHists registers the three kernel latency histograms for the
// named backend in reg and returns the observer to hang on
// likelihood.Config.Observer.
func NewKernelHists(reg *Registry, backend string) *KernelHists {
	k := &KernelHists{}
	for op := likelihood.KernelOp(0); op < likelihood.NumKernelOps; op++ {
		k.hists[op] = reg.Histogram("kernel."+backend+"."+op.String()+"_ms", MsBuckets)
	}
	return k
}

// ObserveKernel records one kernel call's elapsed time.
func (k *KernelHists) ObserveKernel(op likelihood.KernelOp, elapsed time.Duration) {
	if op < 0 || op >= likelihood.NumKernelOps {
		return
	}
	k.hists[op].Observe(float64(elapsed) / float64(time.Millisecond))
}
