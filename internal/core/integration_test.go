package core

import (
	"os"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/cellrt"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/search"
	"raxmlcell/internal/workload"
)

// TestFortyTwoSCAnalysis runs a small publishable-analysis workflow
// (2 inferences + 6 bootstraps over 4 workers) on the committed 42_SC
// fixture and checks the analysis artifacts: support values, consensus,
// and the aggregate meter.
func TestFortyTwoSCAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-search 42-taxon analysis")
	}
	f, err := os.Open("testdata/42sc.phy")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := alignment.ReadPhylip(f)
	if err != nil {
		t.Fatal(err)
	}
	pat := alignment.Compress(a)
	cfg := DefaultConfig()
	cfg.Inferences = 2
	cfg.Bootstraps = 6
	cfg.Workers = 4
	cfg.Seed = 17
	cfg.Search = search.Options{Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05, AlphaOpt: true}
	res, err := Analyze(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Support) != 42-3 {
		t.Errorf("support entries = %d, want 39", len(res.Support))
	}
	if res.Consensus == nil || res.Consensus.CountClades() == 0 {
		t.Error("no consensus clades")
	}
	if mean := phylotree.MeanSupport(res.Support); mean < 0.4 {
		t.Errorf("mean support %.2f suspiciously low", mean)
	}
	if res.Meter.NewviewCalls < 100000 {
		t.Errorf("aggregate newview calls = %d; expected a substantial search", res.Meter.NewviewCalls)
	}
	t.Logf("42_SC analysis: best logL %.2f, mean support %.2f, %d consensus clades, %d newview calls",
		res.BestLogL, phylotree.MeanSupport(res.Support), res.Consensus.CountClades(), res.Meter.NewviewCalls)
}

// TestFortyTwoSCIntegration runs the full pipeline on the committed 42_SC
// stand-in fixture (42 taxa x 1167 nt, 249 patterns — the paper's benchmark
// dimensions): parse, infer, compare to the recorded generating tree, trace
// the meter onto the simulated Cell.
func TestFortyTwoSCIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("full 42-taxon inference")
	}
	f, err := os.Open("testdata/42sc.phy")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := alignment.ReadPhylip(f)
	if err != nil {
		t.Fatal(err)
	}
	pat := alignment.Compress(a)
	if pat.NumTaxa != 42 || pat.NumSites != 1167 {
		t.Fatalf("fixture dimensions %dx%d", pat.NumTaxa, pat.NumSites)
	}
	if pat.NumPatterns() != 249 {
		t.Errorf("fixture has %d patterns, expected 249 (paper: ~250)", pat.NumPatterns())
	}

	cfg := DefaultConfig()
	cfg.Seed = 5
	cfg.Search = search.Options{Radius: 4, MaxRounds: 3, SmoothPasses: 3, Epsilon: 0.02, AlphaOpt: true}
	res, meter, err := InferOnce(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogL >= 0 {
		t.Fatalf("logL = %v", res.LogL)
	}

	// Compare against the recorded generating tree.
	raw, err := os.ReadFile("testdata/42sc_true.nwk")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := phylotree.ParseNewick(string(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := truth.AlignTaxa(pat.Names); err != nil {
		t.Fatal(err)
	}
	rf, err := phylotree.RobinsonFoulds(truth, res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	// 42 taxa -> 39 internal edges -> max RF 78. With 0.02 mean branch
	// lengths some edges are weakly supported; demand substantial recovery.
	if rf > 30 {
		t.Errorf("RF to generating tree = %d (max 78)", rf)
	}
	t.Logf("42_SC: logL=%.2f alpha=%.3f moves=%d RF=%d", res.LogL, res.Alpha, res.Moves, rf)

	// The measured workload must replay on the simulated Cell with the
	// naive-offload penalty and the final speedup both visible.
	prof, err := workload.FromMeter("42sc-real", meter, pat.NumPatterns())
	if err != nil {
		t.Fatal(err)
	}
	ppe, err := CellRun(prof, cellrt.StagePPEOnly, cellrt.SchedNaive, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := CellRun(prof, cellrt.StageNaiveOffload, cellrt.SchedNaive, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CellRun(prof, cellrt.StageAllOffloaded, cellrt.SchedNaive, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Seconds <= ppe.Seconds {
		t.Errorf("traced naive offload (%.3fs) not slower than PPE (%.3fs)", naive.Seconds, ppe.Seconds)
	}
	if full.Seconds >= ppe.Seconds {
		t.Errorf("traced tuned port (%.3fs) not faster than PPE (%.3fs)", full.Seconds, ppe.Seconds)
	}
}
