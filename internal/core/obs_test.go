package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"raxmlcell/internal/obs"
	"raxmlcell/internal/wallclock"
)

// TestAnalyzeLiveMetrics is the -debug-addr smoke test: while an analysis
// runs with a registry attached, the debug server's /metrics and
// /debug/pprof/ endpoints must answer, and after the run the snapshot must
// agree with the Analysis — supervision counters and the merged kernel
// meter.
func TestAnalyzeLiveMetrics(t *testing.T) {
	pat, _ := testPatterns(t, 8, 300, 7)
	reg := obs.NewRegistry()
	srv, addr, err := obs.StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Poll the endpoints from a goroutine racing the analysis, so the
	// "during a live run" property is actually exercised.
	stop := make(chan struct{})
	polled := make(chan error, 1)
	go func() {
		defer close(polled)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/debug/pprof/"} {
				resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
				if err != nil {
					polled <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					polled <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}
	}()

	cfg := fastConfig()
	cfg.Inferences, cfg.Bootstraps = 2, 3
	cfg.Log = obs.Discard()
	cfg.Metrics = reg
	a, err := Analyze(pat, cfg)
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if perr := <-polled; perr != nil {
		t.Fatalf("debug endpoint failed during the run: %v", perr)
	}

	// The final /metrics payload must agree with the finished analysis.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := snap.CounterValue("mw.jobs_done"); v != uint64(len(a.Results)) {
		t.Errorf("mw.jobs_done = %d, want %d", v, len(a.Results))
	}
	if v, _ := snap.CounterValue("kernel.newview_calls"); v != a.Meter.NewviewCalls {
		t.Errorf("kernel.newview_calls = %d, Analysis.Meter says %d", v, a.Meter.NewviewCalls)
	}
	// The gauge tracks the best over all jobs (bootstraps included), so it
	// is at least the best inference the analysis reports.
	if v, ok := snap.GaugeValue("mw.best_logl"); !ok || v < a.BestLogL || v >= 0 {
		t.Errorf("mw.best_logl = %v (%v), Analysis best inference %v", v, ok, a.BestLogL)
	}
	if v, _ := snap.CounterValue("search.progress_events"); v == 0 {
		t.Error("no search progress events reached the registry")
	}
}

// TestAnalysisMeterMatchesResults pins the satellite fix: Analysis.Meter is
// the supervisor's merged meter and equals the per-result sum.
func TestAnalysisMeterMatchesResults(t *testing.T) {
	pat, _ := testPatterns(t, 8, 300, 7)
	cfg := fastConfig()
	cfg.Inferences, cfg.Bootstraps = 1, 2
	a, err := Analyze(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var nv, flops uint64
	for _, r := range a.Results {
		if r.Err == nil {
			nv += r.Meter.NewviewCalls
			flops += r.Meter.Flops()
		}
	}
	if nv == 0 {
		t.Fatal("results carry empty meters")
	}
	if a.Meter.NewviewCalls != nv || a.Meter.Flops() != flops {
		t.Fatalf("Analysis.Meter (newview %d, flops %d) != summed results (newview %d, flops %d)",
			a.Meter.NewviewCalls, a.Meter.Flops(), nv, flops)
	}
}

// TestAnalyzeWallTraceEndToEnd is the full-pipeline trace acceptance test:
// Analyze with an explicit recording tracer, a registry, and a flight
// recorder must leave (1) a timeline that renders to valid Chrome trace
// JSON with campaign/attempt/round spans attributed to jobs, (2) non-empty
// kernel.<backend>.<op>_ms and search.round_ms latency histograms, and
// (3) a flight stream bracketed by campaign.start / campaign.end.
func TestAnalyzeWallTraceEndToEnd(t *testing.T) {
	pat, _ := testPatterns(t, 8, 300, 7)
	now := wallclock.Monotonic()
	tracer := obs.NewSpanTracer(now)
	flight := obs.NewFlightRecorder(0, now)
	reg := obs.NewRegistry()

	cfg := fastConfig()
	cfg.Inferences, cfg.Bootstraps = 2, 3
	cfg.Log = obs.Discard()
	cfg.Metrics = reg
	cfg.Trace = tracer.Root("campaign")
	cfg.Flight = flight
	a, err := Analyze(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best == nil {
		t.Fatal("analysis produced no best tree")
	}

	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ValidateTrace on the real pipeline's timeline: %v", err)
	}
	if n == 0 {
		t.Fatal("pipeline recorded an empty timeline")
	}
	trace := buf.String()
	for _, frag := range []string{
		`"name":"campaign"`, `"name":"attempt"`, `"name":"round"`,
		`"name":"smooth"`, `"job":"inference#0"`, `"job":"bootstrap#2"`,
	} {
		if !strings.Contains(trace, frag) {
			t.Errorf("pipeline trace missing %s", frag)
		}
	}
	if d := tracer.Dropped(); d != 0 {
		t.Errorf("tracer dropped %d events on a small campaign", d)
	}

	snap := reg.Snapshot()
	counts := map[string]uint64{}
	for _, h := range snap.Histograms {
		counts[h.Name] = h.Count
	}
	backend := cfg.Kernel.BackendName()
	for _, name := range []string{
		"kernel." + backend + ".newview_ms",
		"search.round_ms",
		"mw.attempt_ms",
	} {
		if counts[name] == 0 {
			t.Errorf("histogram %s empty after a full analysis (%v)", name, counts)
		}
	}

	kinds := map[string]int{}
	for _, ev := range flight.Snapshot() {
		kinds[ev.Kind]++
	}
	if kinds["campaign.start"] != 1 || kinds["campaign.end"] != 1 {
		t.Fatalf("flight stream not bracketed: %v", kinds)
	}
	if kinds["attempt"] == 0 {
		t.Fatalf("flight stream has no attempt events: %v", kinds)
	}
}
