package core

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"raxmlcell/internal/obs"
)

// TestAnalyzeLiveMetrics is the -debug-addr smoke test: while an analysis
// runs with a registry attached, the debug server's /metrics and
// /debug/pprof/ endpoints must answer, and after the run the snapshot must
// agree with the Analysis — supervision counters and the merged kernel
// meter.
func TestAnalyzeLiveMetrics(t *testing.T) {
	pat, _ := testPatterns(t, 8, 300, 7)
	reg := obs.NewRegistry()
	srv, addr, err := obs.StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Poll the endpoints from a goroutine racing the analysis, so the
	// "during a live run" property is actually exercised.
	stop := make(chan struct{})
	polled := make(chan error, 1)
	go func() {
		defer close(polled)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, path := range []string{"/metrics", "/debug/pprof/"} {
				resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
				if err != nil {
					polled <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					polled <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}
	}()

	cfg := fastConfig()
	cfg.Inferences, cfg.Bootstraps = 2, 3
	cfg.Log = obs.Discard()
	cfg.Metrics = reg
	a, err := Analyze(pat, cfg)
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	if perr := <-polled; perr != nil {
		t.Fatalf("debug endpoint failed during the run: %v", perr)
	}

	// The final /metrics payload must agree with the finished analysis.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if v, _ := snap.CounterValue("mw.jobs_done"); v != uint64(len(a.Results)) {
		t.Errorf("mw.jobs_done = %d, want %d", v, len(a.Results))
	}
	if v, _ := snap.CounterValue("kernel.newview_calls"); v != a.Meter.NewviewCalls {
		t.Errorf("kernel.newview_calls = %d, Analysis.Meter says %d", v, a.Meter.NewviewCalls)
	}
	// The gauge tracks the best over all jobs (bootstraps included), so it
	// is at least the best inference the analysis reports.
	if v, ok := snap.GaugeValue("mw.best_logl"); !ok || v < a.BestLogL || v >= 0 {
		t.Errorf("mw.best_logl = %v (%v), Analysis best inference %v", v, ok, a.BestLogL)
	}
	if v, _ := snap.CounterValue("search.progress_events"); v == 0 {
		t.Error("no search progress events reached the registry")
	}
}

// TestAnalysisMeterMatchesResults pins the satellite fix: Analysis.Meter is
// the supervisor's merged meter and equals the per-result sum.
func TestAnalysisMeterMatchesResults(t *testing.T) {
	pat, _ := testPatterns(t, 8, 300, 7)
	cfg := fastConfig()
	cfg.Inferences, cfg.Bootstraps = 1, 2
	a, err := Analyze(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var nv, flops uint64
	for _, r := range a.Results {
		if r.Err == nil {
			nv += r.Meter.NewviewCalls
			flops += r.Meter.Flops()
		}
	}
	if nv == 0 {
		t.Fatal("results carry empty meters")
	}
	if a.Meter.NewviewCalls != nv || a.Meter.Flops() != flops {
		t.Fatalf("Analysis.Meter (newview %d, flops %d) != summed results (newview %d, flops %d)",
			a.Meter.NewviewCalls, a.Meter.Flops(), nv, flops)
	}
}
