// Package core is the top-level engine of the RAxML-Cell reproduction: it
// ties the alignment, model, search, and master-worker layers into the two
// workflows the paper describes — a full phylogenetic analysis (multiple
// inferences plus non-parametric bootstrapping, yielding the best-known ML
// tree with support values) and the Cell port pipeline (re-running a
// measured workload on the simulated Cell Broadband Engine under any
// optimization stage and scheduler).
package core

import (
	"fmt"
	"log/slog"
	"math/rand"
	"time"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/cell"
	"raxmlcell/internal/cellrt"
	"raxmlcell/internal/fault"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/model"
	"raxmlcell/internal/mw"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/search"
	"raxmlcell/internal/wallclock"
	"raxmlcell/internal/workload"
)

// Config parameterizes an analysis.
type Config struct {
	Inferences int   // tree searches on the original alignment (>=1)
	Bootstraps int   // bootstrap replicates (>=0)
	Seed       int64 // master seed; every job seed derives from it
	Workers    int   // parallel workers (the MPI process count)

	Alpha float64 // initial Gamma shape (optimized during search)
	Cats  int     // Gamma categories (default 4)

	// StartTree selects the starting topology: "parsimony" (randomized
	// stepwise addition, RAxML's method and the default), "nj"
	// (neighbor joining on Jukes-Cantor distances), or "random".
	StartTree string

	// Checkpoint, when non-empty, persists every completed job to this
	// file and resumes from it on restart (see mw.SuperviseWithCheckpoint).
	// A damaged checkpoint file is set aside and recomputed, not fatal.
	Checkpoint string

	// Retries is the attempt budget per job before it is quarantined;
	// values below 1 mean a single attempt (no retries). Retried jobs
	// reproduce bit-identical results because every job is a pure
	// function of its seed.
	Retries int

	// JobTimeout is the per-attempt deadline for hung-worker detection;
	// zero disables deadlines.
	JobTimeout time.Duration

	// MaxQuarantine is the number of quarantined (permanently failed)
	// jobs tolerated before the campaign aborts. 0 — the default — aborts
	// on the first quarantined job; a negative value disables the limit,
	// so the analysis completes with a partial-results report.
	MaxQuarantine int

	// Fault injects deterministic faults into the campaign (chaos tests
	// only; leave nil for real analyses).
	Fault *fault.Injector

	// Clock overrides the supervision time source; nil selects the wall
	// clock. Tests inject deterministic clocks here.
	Clock fault.Clock

	Search search.Options

	// Kernel selects the likelihood-kernel variants for every worker
	// engine. Kernel.Incremental enables x-vector partial-likelihood
	// caching: identical trees and log-likelihoods, far fewer newview
	// executions — and therefore a different Meter than the paper's
	// measured full-recomputation workload, so leave it off when feeding
	// the aggregate meter to the Cell simulation tables.
	Kernel likelihood.Config

	// Log receives structured campaign progress (phases, supervision
	// events, per-step search trajectories at Debug). nil disables
	// logging.
	Log *slog.Logger

	// Metrics, when non-nil, is fed live during the analysis — the mw.*
	// supervision counters, kernel.* meter totals, search.* trajectory
	// series and the latency histograms (mw.attempt_ms, search.round_ms,
	// checkpoint.save_ms, kernel.<backend>.<op>_ms) the -debug-addr
	// /metrics endpoint serves.
	Metrics *obs.Registry

	// Trace is the wall-clock span context the whole analysis records into
	// (campaign, per-worker job attempts, search rounds; see obs.SpanTracer).
	// The zero Ctx disables timeline capture — but when Metrics is set,
	// Analyze still mints a non-recording tracer over wallclock.Monotonic
	// internally so the latency histograms have a time source.
	Trace obs.Ctx

	// Flight, when non-nil, receives the supervision event stream for
	// post-mortems (see obs.FlightRecorder and mw.Config.Flight).
	Flight *obs.FlightRecorder
}

// DefaultConfig is a publishable-analysis shape at laptop scale.
func DefaultConfig() Config {
	return Config{
		Inferences: 3,
		Bootstraps: 20,
		Seed:       42,
		Workers:    4,
		Alpha:      0.8,
		Cats:       4,
		Retries:    1, // no retries; raise for flaky environments
		Search:     search.DefaultOptions(),
	}
}

// Analysis is the outcome of a full run.
type Analysis struct {
	Best     *phylotree.Tree // best-known ML tree (aligned to the alignment's taxa)
	BestLogL float64
	Alpha    float64 // fitted Gamma shape of the best inference
	Support  map[phylotree.Bipartition]float64
	// Consensus is the majority-rule consensus of the bootstrap trees
	// (nil when fewer than two bootstraps were run).
	Consensus *phylotree.ConsensusNode
	Results   []mw.JobResult   // every job, ordered (inferences then bootstraps)
	Meter     likelihood.Meter // aggregate kernel operations across all jobs

	// Quarantined lists jobs that exhausted their attempt budget; when
	// non-empty (and within Config.MaxQuarantine) the analysis is a
	// partial-results report over the surviving jobs.
	Quarantined []mw.Quarantine
	// Stats carries the supervision accounting: attempts, retries,
	// timeouts, and checkpoint failures/recovery.
	Stats mw.Stats
}

// ModelFor builds a GTR+Γ model with empirical base frequencies from the
// alignment and unit exchangeabilities (the starting point RAxML also uses
// before model optimization).
func ModelFor(pat *alignment.Patterns, alpha float64, cats int) (*model.Model, error) {
	if cats <= 0 {
		cats = 4
	}
	g, err := model.NewGTR([6]float64{1, 1, 1, 1, 1, 1}, pat.BaseFrequencies())
	if err != nil {
		return nil, err
	}
	return model.NewModel(g, alpha, cats)
}

// Analyze runs the complete master-worker analysis on the alignment.
func Analyze(pat *alignment.Patterns, cfg Config) (*Analysis, error) {
	if pat == nil {
		return nil, fmt.Errorf("core: nil patterns")
	}
	if cfg.Inferences < 1 {
		return nil, fmt.Errorf("core: need at least one inference")
	}
	mod, err := ModelFor(pat, cfg.Alpha, cfg.Cats)
	if err != nil {
		return nil, err
	}
	jobs := mw.Plan(cfg.Inferences, cfg.Bootstraps, cfg.Seed)
	// Timeline capture is the caller's choice (cfg.Trace), but the latency
	// histograms need a monotonic time source regardless; a metrics-only run
	// gets a non-recording tracer, which times spans without retaining them.
	if !cfg.Trace.Enabled() && cfg.Metrics != nil {
		tr := obs.NewSpanTracer(wallclock.Monotonic())
		tr.SetRecording(false)
		cfg.Trace = tr.Root("campaign")
	}
	mwCfg := mw.Config{
		Workers:   cfg.Workers,
		StartTree: cfg.StartTree,
		Search:    cfg.Search,
		Kernel:    cfg.Kernel,
		Retry: mw.RetryPolicy{
			MaxAttempts: cfg.Retries,
			JobTimeout:  cfg.JobTimeout,
			Backoff:     200 * time.Millisecond,
			MaxBackoff:  5 * time.Second,
		},
		Fault:   cfg.Fault,
		Clock:   cfg.Clock,
		Log:     cfg.Log,
		Metrics: cfg.Metrics,
		Trace:   cfg.Trace,
		Flight:  cfg.Flight,
	}
	// Feed the search-level series (candidates scored, parallel rounds,
	// pool occupancy) into the same registry the mw.* counters use, unless
	// the caller routed them elsewhere explicitly.
	if mwCfg.Search.Metrics == nil {
		mwCfg.Search.Metrics = cfg.Metrics
	}
	if cfg.Log == nil {
		cfg.Log = obs.Discard()
	}
	// When the caller already installed a per-round progress hook on the
	// search options (e.g. the CLI's trajectory logging), skip the Debug
	// line here so each round is reported once; the metrics feed stays on.
	logProgress := cfg.Search.OnProgress == nil
	if cfg.Metrics != nil || cfg.Log.Enabled(nil, slog.LevelDebug) {
		log, reg := cfg.Log, cfg.Metrics
		mwCfg.OnProgress = func(job mw.Job, pr search.Progress) {
			if reg != nil {
				reg.Counter("search.progress_events").Inc()
				reg.Gauge(obs.Key("search.logl", "kind", job.Kind.String(),
					"index", fmt.Sprint(job.Index))).Set(pr.LogL)
			}
			if logProgress {
				log.Debug("search progress", "kind", job.Kind.String(), "index", job.Index,
					"phase", pr.Phase, "round", pr.Round, "moves", pr.Moves,
					"logl", pr.LogL, "alpha", pr.Alpha)
			}
		}
	}
	if cfg.MaxQuarantine >= 0 {
		mwCfg.Retry.LimitQuarantine = true
		mwCfg.Retry.MaxQuarantine = cfg.MaxQuarantine
	}
	if mwCfg.Clock == nil {
		mwCfg.Clock = wallclock.Clock{}
	}
	cfg.Log.Info("analysis start",
		"taxa", pat.NumTaxa, "patterns", pat.NumPatterns(),
		"inferences", cfg.Inferences, "bootstraps", cfg.Bootstraps,
		"workers", cfg.Workers, "seed", cfg.Seed)
	var rep *mw.Report
	var err2 error
	if cfg.Checkpoint != "" {
		rep, err2 = mw.SuperviseWithCheckpoint(pat, mod, jobs, mwCfg, cfg.Checkpoint)
	} else {
		rep, err2 = mw.Supervise(pat, mod, jobs, mwCfg)
	}
	if err2 != nil {
		return nil, fmt.Errorf("core: campaign failed: %w", err2)
	}
	results := rep.Results

	best, err := mw.Best(results, mw.Inference)
	if err != nil {
		return nil, err
	}
	bestTree, err := phylotree.ParseNewick(best.Newick)
	if err != nil {
		return nil, fmt.Errorf("core: parsing best tree: %w", err)
	}
	if err := bestTree.AlignTaxa(pat.Names); err != nil {
		return nil, err
	}

	a := &Analysis{
		Best:        bestTree,
		BestLogL:    best.LogL,
		Alpha:       best.Alpha,
		Results:     results,
		Quarantined: rep.Quarantined,
		Stats:       rep.Stats,
		// The supervisor already merged every successful job's kernel meter
		// (including restored checkpoint jobs); reuse it so Analysis and the
		// live /metrics kernel.* counters report the same totals.
		Meter: rep.Meter,
	}
	cfg.Log.Info("campaign done",
		"best_logl", best.LogL, "alpha", best.Alpha,
		"attempts", rep.Stats.Attempts, "retries", rep.Stats.Retries,
		"quarantined", len(rep.Quarantined))

	if cfg.Bootstraps > 0 {
		// Quarantined bootstraps are excluded: support values are computed
		// over the replicates that survived, which is exactly the partial-
		// results semantics of a degraded campaign.
		var boots []*phylotree.Tree
		for _, r := range results {
			if r.Job.Kind != mw.Bootstrap || r.Err != nil {
				continue
			}
			bt, err := phylotree.ParseNewick(r.Newick)
			if err != nil {
				return nil, fmt.Errorf("core: parsing bootstrap tree %d: %w", r.Job.Index, err)
			}
			if err := bt.AlignTaxa(pat.Names); err != nil {
				return nil, err
			}
			boots = append(boots, bt)
		}
		// Replicates that resolved to the same unrooted topology collapse to
		// one representative with a multiplicity before the bipartition
		// passes: the weighted support/consensus reproduce the expanded
		// answer exactly, and on well-resolved datasets (where many
		// replicates agree) the O(replicates x bipartitions) counting work
		// shrinks accordingly. bootstrap.dedup_topologies counts the
		// replicates that were folded into an earlier duplicate.
		uniq, weights, err := phylotree.DedupTopologies(boots)
		if err != nil {
			return nil, err
		}
		if cfg.Metrics != nil {
			cfg.Metrics.Counter("bootstrap.dedup_topologies").Add(uint64(len(boots) - len(uniq)))
		}
		if len(boots) != len(uniq) {
			cfg.Log.Debug("bootstrap dedup", "replicates", len(boots), "distinct", len(uniq))
		}
		if len(uniq) > 0 {
			support, err := phylotree.SupportValuesWeighted(bestTree, uniq, weights)
			if err != nil {
				return nil, err
			}
			a.Support = support
		}
		if len(boots) >= 2 {
			cons, err := phylotree.MajorityRuleConsensusWeighted(uniq, weights, 0.5)
			if err != nil {
				return nil, err
			}
			a.Consensus = cons
		}
	}
	return a, nil
}

// InferOnce runs a single inference (no bootstrapping) and returns the tree
// with its engine meter — the quick path used by examples and by the
// trace-driven Cell simulation.
func InferOnce(pat *alignment.Patterns, cfg Config) (*search.Result, *likelihood.Meter, error) {
	mod, err := ModelFor(pat, cfg.Alpha, cfg.Cats)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start, err := StartingTree(pat, cfg.StartTree, rng)
	if err != nil {
		return nil, nil, err
	}
	if !cfg.Trace.Enabled() && cfg.Metrics != nil {
		tr := obs.NewSpanTracer(wallclock.Monotonic())
		tr.SetRecording(false)
		cfg.Trace = tr.Root("infer")
	}
	kcfg := cfg.Kernel
	if cfg.Metrics != nil {
		if now := cfg.Trace.TimeSource(); now != nil {
			kcfg.Observer = obs.NewKernelHists(cfg.Metrics, kcfg.BackendName())
			kcfg.Now = now
		}
	}
	eng, err := likelihood.NewEngine(pat, mod, kcfg)
	if err != nil {
		return nil, nil, err
	}
	if cfg.Search.Metrics == nil {
		cfg.Search.Metrics = cfg.Metrics
	}
	cfg.Search.Trace = cfg.Trace
	res, err := search.Run(eng, start, cfg.Search)
	if err != nil {
		return nil, nil, err
	}
	return res, &eng.Meter, nil
}

// InferCAT runs a Gamma-model inference and then re-fits the final tree
// under a per-site rate-category (CAT) model with catCount categories —
// RAxML's fast approximation of rate heterogeneity, and the mode whose
// 25-category transition-matrix loop the paper's SPE measurements reflect.
// It returns the search result (tree mutated in place, branch lengths
// re-optimized under CAT), the CAT log-likelihood, and the combined meter.
func InferCAT(pat *alignment.Patterns, cfg Config, catCount int) (*search.Result, float64, *likelihood.Meter, error) {
	res, meter, err := InferOnce(pat, cfg)
	if err != nil {
		return nil, 0, nil, err
	}
	mod, err := ModelFor(pat, cfg.Alpha, cfg.Cats)
	if err != nil {
		return nil, 0, nil, err
	}
	eng, err := likelihood.NewEngine(pat, mod, cfg.Kernel)
	if err != nil {
		return nil, 0, nil, err
	}
	catModel, err := search.FitCAT(eng, res.Tree, catCount)
	if err != nil {
		return nil, 0, nil, err
	}
	catEng, err := likelihood.NewEngine(pat, catModel, cfg.Kernel)
	if err != nil {
		return nil, 0, nil, err
	}
	ll, err := search.SmoothBranches(catEng, res.Tree, 4, 0.01)
	if err != nil {
		return nil, 0, nil, err
	}
	var total likelihood.Meter
	total.Add(meter)
	total.Add(&eng.Meter)
	total.Add(&catEng.Meter)
	return res, ll, &total, nil
}

// AnalyzeAdaptive runs the analysis with bootstopping: bootstraps are added
// in batches of step until the support values stabilize (the divergence of
// the two half-samples drops below threshold) or maxBoots is reached — the
// adaptive replicate-count criterion RAxML later shipped as bootstopping.
// It returns the analysis over the replicates actually run, and the number
// of bootstraps used. Set cfg.Checkpoint to avoid recomputing earlier
// batches between rounds (jobs are seed-determined, so the checkpoint
// satisfies each growing plan's prefix).
func AnalyzeAdaptive(pat *alignment.Patterns, cfg Config, step, maxBoots int, threshold float64) (*Analysis, int, error) {
	if step < 4 {
		step = 4
	}
	if maxBoots < step {
		maxBoots = step
	}
	if threshold <= 0 {
		threshold = 0.03
	}
	for n := step; ; n += step {
		if n > maxBoots {
			n = maxBoots
		}
		run := cfg
		run.Bootstraps = n
		a, err := Analyze(pat, run)
		if err != nil {
			return nil, 0, err
		}
		var boots []*phylotree.Tree
		for _, r := range a.Results {
			if r.Job.Kind != mw.Bootstrap || r.Err != nil {
				continue
			}
			bt, err := phylotree.ParseNewick(r.Newick)
			if err != nil {
				return nil, 0, err
			}
			if err := bt.AlignTaxa(pat.Names); err != nil {
				return nil, 0, err
			}
			boots = append(boots, bt)
		}
		div, err := phylotree.BootstopDivergence(a.Best, boots)
		if err != nil {
			return nil, 0, err
		}
		if div < threshold || n == maxBoots {
			return a, n, nil
		}
	}
}

// StartingTree builds a starting topology of the requested kind; see
// search.StartingTree.
func StartingTree(pat *alignment.Patterns, kind string, rng *rand.Rand) (*phylotree.Tree, error) {
	return search.StartingTree(pat, kind, rng)
}

// CellRun executes a workload profile on the simulated Cell — the bridge
// from a real measured search (via workload.FromMeter) or the paper's 42_SC
// profile to the Tables 1-8 machinery.
func CellRun(prof workload.Profile, stage cellrt.Stage, sched cellrt.Scheduler, workers, searches int) (*cellrt.Report, error) {
	return cellrt.Run(prof, cell.DefaultCostModel(), cell.DefaultParams(), cellrt.Config{
		Stage:     stage,
		Scheduler: sched,
		Workers:   workers,
		Searches:  searches,
	})
}
