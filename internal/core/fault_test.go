package core

import (
	"errors"
	"testing"

	"raxmlcell/internal/fault"
	"raxmlcell/internal/mw"
	"raxmlcell/internal/phylotree"
)

// TestAnalyzeUnderChaosMatchesFaultFree is the end-to-end determinism
// check: a full analysis under crash+corrupt injection with retries must
// produce exactly the fault-free analysis — same best tree, same
// log-likelihood, same support values.
func TestAnalyzeUnderChaosMatchesFaultFree(t *testing.T) {
	pat, _ := testPatterns(t, 9, 400, 11)
	cfg := fastConfig()
	cfg.Inferences = 2
	cfg.Bootstraps = 4
	cfg.Seed = 101

	clean, err := Analyze(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}

	chaos := cfg
	chaos.Retries = 10
	inj, err := fault.New(fault.Config{Seed: 101, PCrash: 0.3, PCorrupt: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	chaos.Fault = inj
	got, err := Analyze(pat, chaos)
	if err != nil {
		t.Fatal(err)
	}

	if got.Best.Newick() != clean.Best.Newick() {
		t.Error("best tree differs under fault injection")
	}
	if got.BestLogL != clean.BestLogL || got.Alpha != clean.Alpha {
		t.Errorf("best fit differs: (%v,%v) vs (%v,%v)", got.BestLogL, got.Alpha, clean.BestLogL, clean.Alpha)
	}
	if len(got.Support) != len(clean.Support) {
		t.Fatalf("support size %d vs %d", len(got.Support), len(clean.Support))
	}
	for b, v := range clean.Support {
		if got.Support[b] != v {
			t.Errorf("support for %q differs: %v vs %v", b, got.Support[b], v)
		}
	}
	if got.Meter != clean.Meter {
		t.Error("aggregate meter differs under fault injection (retried jobs must not double-count)")
	}
	if got.Stats.Retries == 0 {
		t.Error("chaos analysis recorded no retries; injector apparently inert")
	}
	if len(got.Quarantined) != 0 {
		t.Errorf("jobs quarantined despite 10-attempt budget: %d", len(got.Quarantined))
	}
}

// TestAnalyzeQuarantineLimit covers both sides of the graceful-degradation
// contract: the default zero tolerance aborts a campaign with permanently
// failing jobs, while MaxQuarantine = -1 lets it complete with a partial
// report.
func TestAnalyzeQuarantineLimit(t *testing.T) {
	pat, _ := testPatterns(t, 9, 400, 13)
	cfg := fastConfig()
	cfg.Inferences = 2
	cfg.Bootstraps = 5
	cfg.Seed = 7

	// Crash roughly half of all attempts with no retry budget: some jobs
	// must quarantine.
	inj, err := fault.New(fault.Config{Seed: 3, PCrash: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	strict := cfg
	strict.Fault = inj
	if _, err := Analyze(pat, strict); err == nil {
		t.Error("default MaxQuarantine=0 tolerated quarantined jobs")
	} else if !errors.Is(err, mw.ErrCampaignAborted) {
		t.Errorf("abort error %v does not wrap mw.ErrCampaignAborted", err)
	}

	tolerant := cfg
	tolerant.Fault = inj
	tolerant.MaxQuarantine = -1
	a, err := Analyze(pat, tolerant)
	if err != nil {
		t.Fatalf("unlimited-quarantine analysis failed: %v", err)
	}
	if len(a.Quarantined) == 0 {
		t.Fatal("expected quarantined jobs under p=0.5 crashes without retries")
	}
	if a.Best == nil || a.BestLogL >= 0 {
		t.Error("partial analysis lost its best tree")
	}
	if err := a.Best.Validate(); err != nil {
		t.Error(err)
	}
	survivors := 0
	for _, r := range a.Results {
		if r.Err == nil {
			survivors++
		}
	}
	if survivors+len(a.Quarantined) != len(a.Results) {
		t.Errorf("%d survivors + %d quarantined != %d jobs", survivors, len(a.Quarantined), len(a.Results))
	}
	// Support, when present, must come from surviving replicates only.
	if len(a.Support) > 0 {
		if mean := phylotree.MeanSupport(a.Support); mean < 0 || mean > 1 {
			t.Errorf("mean support %v out of range", mean)
		}
	}
}
