package core

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/cellrt"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/search"
	"raxmlcell/internal/seqsim"
	"raxmlcell/internal/workload"
)

func testPatterns(t *testing.T, taxa, sites int, seed int64) (*alignment.Patterns, *phylotree.Tree) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a, truth, err := seqsim.Generate(seqsim.Params{
		Taxa: taxa, Sites: sites, MeanBranch: 0.12, Alpha: 0.8,
	}, seqsim.DefaultModel(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return alignment.Compress(a), truth
}

func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Inferences = 2
	cfg.Bootstraps = 5
	cfg.Workers = 4
	cfg.Search = search.Options{Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05}
	return cfg
}

func TestAnalyzeEndToEnd(t *testing.T) {
	pat, truth := testPatterns(t, 10, 600, 7)
	cfg := fastConfig()
	cfg.Metrics = obs.NewRegistry()
	a, err := Analyze(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bootstrap replicates were deduplicated before support/consensus; the
	// counter reports how many were folded into an earlier duplicate (0 is
	// fine on low-agreement data, absence is not).
	snap := cfg.Metrics.Snapshot()
	dedup, ok := snap.CounterValue("bootstrap.dedup_topologies")
	if !ok {
		t.Error("bootstrap.dedup_topologies counter missing")
	} else if dedup > 5 {
		t.Errorf("deduplicated %d of 5 replicates", dedup)
	}
	if a.Best == nil || a.BestLogL >= 0 {
		t.Fatalf("bad best tree: logL=%v", a.BestLogL)
	}
	if err := a.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != 7 {
		t.Errorf("results = %d", len(a.Results))
	}
	if len(a.Support) != 10-3 {
		t.Errorf("support entries = %d, want 7", len(a.Support))
	}
	if a.Consensus == nil {
		t.Fatal("no consensus tree despite 5 bootstraps")
	}
	if a.Consensus.CountClades() == 0 {
		t.Error("consensus has no majority clades on high-signal data")
	}
	if a.Meter.NewviewCalls == 0 {
		t.Error("aggregate meter empty")
	}
	// Recovered topology should be close to the truth on strong signal.
	if err := truth.AlignTaxa(pat.Names); err != nil {
		t.Fatal(err)
	}
	d, err := phylotree.RobinsonFoulds(truth, a.Best)
	if err != nil {
		t.Fatal(err)
	}
	if d > 6 {
		t.Errorf("best tree RF distance to truth = %d", d)
	}
	// BestLogL must be the max over inference results.
	for _, r := range a.Results {
		if r.Job.Kind.String() == "inference" && r.LogL > a.BestLogL {
			t.Error("Analyze did not pick the best inference")
		}
	}
}

func TestAnalyzeValidation(t *testing.T) {
	pat, _ := testPatterns(t, 6, 100, 8)
	if _, err := Analyze(nil, fastConfig()); err == nil {
		t.Error("nil patterns accepted")
	}
	cfg := fastConfig()
	cfg.Inferences = 0
	if _, err := Analyze(pat, cfg); err == nil {
		t.Error("0 inferences accepted")
	}
}

func TestAnalyzeNoBootstraps(t *testing.T) {
	pat, _ := testPatterns(t, 7, 200, 9)
	cfg := fastConfig()
	cfg.Bootstraps = 0
	a, err := Analyze(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Support != nil {
		t.Error("support computed without bootstraps")
	}
}

func TestInferOnceAndCellBridge(t *testing.T) {
	pat, _ := testPatterns(t, 9, 300, 10)
	cfg := fastConfig()
	res, meter, err := InferOnce(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogL >= 0 || meter.NewviewCalls == 0 {
		t.Fatalf("bad inference: %v / %v", res.LogL, meter)
	}
	// Bridge the measured workload onto the simulated Cell.
	prof, err := workload.FromMeter("measured", meter, pat.NumPatterns())
	if err != nil {
		t.Fatal(err)
	}
	ppe, err := CellRun(prof, cellrt.StagePPEOnly, cellrt.SchedNaive, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := CellRun(prof, cellrt.StageAllOffloaded, cellrt.SchedMGPS, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ppe.Seconds <= 0 || full.Seconds <= 0 {
		t.Error("degenerate simulated timings")
	}
	// 8 searches under MGPS should take less than 8x one PPE search.
	if full.Seconds >= 8*ppe.Seconds {
		t.Errorf("MGPS (%.3fs for 8) not faster than 8x PPE-only (%.3fs each)", full.Seconds, ppe.Seconds)
	}
}

func TestInferCAT(t *testing.T) {
	pat, _ := testPatterns(t, 9, 500, 12)
	cfg := fastConfig()
	res, catLL, meter, err := InferCAT(pat, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if catLL >= 0 || math.IsNaN(catLL) {
		t.Errorf("CAT logL = %v", catLL)
	}
	if meter.NewviewCalls == 0 || meter.MakenewzCalls == 0 {
		t.Error("combined meter empty")
	}
	if _, _, _, err := InferCAT(pat, cfg, 1); err == nil {
		t.Error("CAT with 1 category accepted")
	}
}

func TestAnalyzeAdaptiveBootstop(t *testing.T) {
	// High-signal data: supports stabilize quickly, so bootstopping should
	// halt well before the maximum. Use a checkpoint so the growing batches
	// reuse earlier replicates.
	pat, _ := testPatterns(t, 8, 1500, 21)
	cfg := fastConfig()
	cfg.Inferences = 1
	cfg.Checkpoint = t.TempDir() + "/ckpt.json"
	a, used, err := AnalyzeAdaptive(pat, cfg, 6, 36, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if used < 6 || used > 36 {
		t.Fatalf("used %d bootstraps", used)
	}
	if used == 36 {
		t.Log("bootstopping hit the cap; supports unusually unstable for this data")
	}
	if a.Best == nil || len(a.Support) == 0 {
		t.Fatal("adaptive analysis incomplete")
	}
	t.Logf("bootstopping used %d replicates", used)
}

func TestStartingTreeKinds(t *testing.T) {
	pat, _ := testPatterns(t, 8, 300, 13)
	rng := rand.New(rand.NewSource(1))
	for _, kind := range []string{"", "parsimony", "nj", "random"} {
		tr, err := StartingTree(pat, kind, rng)
		if err != nil {
			t.Fatalf("%q: %v", kind, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%q: %v", kind, err)
		}
		if tr.Taxa[0] != pat.Names[0] {
			t.Errorf("%q: taxa not aligned to alignment order", kind)
		}
	}
	if _, err := StartingTree(pat, "bogus", rng); err == nil {
		t.Error("unknown kind accepted")
	}
	// NJ starting trees feed the full search path.
	cfg := fastConfig()
	cfg.StartTree = "nj"
	res, _, err := InferOnce(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogL >= 0 {
		t.Errorf("NJ-start inference logL = %v", res.LogL)
	}
}

func TestModelFor(t *testing.T) {
	pat, _ := testPatterns(t, 6, 200, 11)
	m, err := ModelFor(pat, 0.7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCats() != 4 {
		t.Errorf("cats = %d", m.NumCats())
	}
	sum := 0.0
	for _, f := range m.GTR.Freqs {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("frequencies sum to %v", sum)
	}
	// Default category count.
	m2, err := ModelFor(pat, 0.7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumCats() != 4 {
		t.Errorf("default cats = %d", m2.NumCats())
	}
}
