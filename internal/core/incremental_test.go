package core

import (
	"math"
	"os"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/search"
)

// TestInferOnceIncrementalMatches runs the same seeded inference on the
// 42_SC fixture with and without Kernel.Incremental and checks the
// top-level contract: identical topology, log-likelihood within 1e-9, and
// a strictly reduced newview count in the aggregate meter.
func TestInferOnceIncrementalMatches(t *testing.T) {
	if testing.Short() {
		t.Skip("two full 42-taxon inferences")
	}
	f, err := os.Open("testdata/42sc.phy")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := alignment.ReadPhylip(f)
	if err != nil {
		t.Fatal(err)
	}
	pat := alignment.Compress(a)

	cfg := DefaultConfig()
	cfg.Seed = 9
	cfg.Search = search.Options{Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05, AlphaOpt: true}

	full, fullMeter, err := InferOnce(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Kernel.Incremental = true
	cached, cachedMeter, err := InferOnce(pat, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if math.Abs(cached.LogL-full.LogL) > 1e-9*math.Abs(full.LogL) {
		t.Errorf("incremental logL %.12f != full %.12f", cached.LogL, full.LogL)
	}
	rf, err := phylotree.RobinsonFoulds(full.Tree, cached.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 0 {
		t.Errorf("incremental inference found a different topology (RF=%d)", rf)
	}
	if cachedMeter.CacheHits == 0 {
		t.Error("incremental inference recorded no cache hits")
	}
	if cachedMeter.NewviewCalls >= fullMeter.NewviewCalls {
		t.Errorf("incremental performed %d newview calls, full %d",
			cachedMeter.NewviewCalls, fullMeter.NewviewCalls)
	}
	t.Logf("newview calls: incremental %d vs full %d (%.2fx), %d cache hits",
		cachedMeter.NewviewCalls, fullMeter.NewviewCalls,
		float64(fullMeter.NewviewCalls)/float64(cachedMeter.NewviewCalls),
		cachedMeter.CacheHits)
}
