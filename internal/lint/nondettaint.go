package lint

// NondetTaint is the interprocedural extension of SimDeterminism: it
// catches nondeterminism laundered through helper calls.
//
// SimDeterminism bans wall-clock reads, the global math/rand source and
// randomized map iteration at their use sites — but only inside the
// deterministic scope (sim, cell, cellrt, mw, obs, fault). A helper in
// any other package can wrap time.Now() and hand the value into the
// simulator with no diagnostic, because the use site sits outside the
// scope and the call site looks pure. NondetTaint closes the hole:
//
//   - on every loaded package (scoped or not, including dependency-only
//     fact passes) it runs the taint fixed point over the package-local
//     call graph, marking each declared function that reaches one of the
//     banned sources — directly, through same-package helpers, or through
//     an imported function already marked by its own package's pass — and
//     exports the result as a cross-package "nondet" fact with the
//     witness chain as its value;
//   - inside the deterministic scope it reports every call whose callee
//     is a tainted function of an out-of-scope package — the frontier
//     where nondeterminism actually enters the simulator. Calls to
//     in-scope callees are not reported here: their own package flags the
//     source (simdeterminism) or its own frontier (nondettaint), so each
//     leak surfaces exactly once, at the deepest in-scope call site.
//
// The analysis is conservative where resolution is dynamic: calls through
// function values, fields and interfaces are not edges. That silence is
// load-bearing — fault.Clock is the sanctioned wall-clock injection seam,
// and precisely because it is an interface, taint stops at the boundary
// while direct calls into a concrete clock (e.g. wallclock.Clock) are
// still caught.
var NondetTaint = &Analyzer{
	Name:  "nondettaint",
	Doc:   "interprocedural taint: forbid calls that launder wall-clock, global-rand or map-order nondeterminism into the simulator scope",
	Facts: true,
	// Match is nil on purpose: fact mining must run everywhere calls can
	// lead. Reporting is gated on simScope inside Run.
	Run: runNondetTaint,
}

// simScopes is the deterministic-replay jurisdiction shared by
// SimDeterminism (use-site bans) and NondetTaint (call-site frontier).
var simScopes = []string{
	"internal/sim", "internal/cell", "internal/cellrt", "internal/mw",
	"internal/fault", "internal/obs",
}

// nondetFact is the cross-package fact name carrying taint witnesses.
const nondetFact = "nondet"

var nondetTaintConfig = &TaintConfig{
	Fact:         nondetFact,
	DirectReason: directNondetReason,
}

func runNondetTaint(pass *Pass) {
	taint := Propagate(pass, nondetTaintConfig)

	if !pathHasAny(pass.Path, simScopes...) {
		return // out of scope: facts only
	}
	for _, node := range pass.CallGraph().Order {
		for _, site := range node.Calls {
			callee := site.Callee
			if callee.Pkg() == nil || callee.Pkg() == pass.Pkg {
				continue // same package: sources are flagged at their own lines
			}
			if pathHasAny(callee.Pkg().Path(), simScopes...) {
				continue // callee's package flags its own sources/frontier
			}
			if reason := taint.Reason(callee); reason != "" {
				pass.Reportf(site.Call.Pos(),
					"call to %s is nondeterministic (it %s); the %s scope must replay bit-identically — inject the value through a seeded RNG, sim time, or an interface seam instead",
					calleeLabel(callee), reason, scopeLabel(pass.Path))
			}
		}
	}
}

// scopeLabel names the matched scope segment for diagnostics.
func scopeLabel(pkgPath string) string {
	for _, s := range simScopes {
		if pathHasAny(pkgPath, s) {
			return s
		}
	}
	return "simulator"
}
