// Package lint is a project-specific static-analysis suite for the
// RAxML-Cell reproduction. It mechanically enforces the invariants the
// codebase otherwise trusts to reviewer memory:
//
//   - simdeterminism: the discrete-event Cell simulator must be
//     bit-deterministic (no wall clock, no global RNG, no map-order
//     dependent event scheduling), or the cycle-accurate tables in
//     EXPERIMENTS.md stop being reproducible.
//   - invalidatepair: every direct SetZ branch-length write in the search
//     layer must be followed by an Engine.Invalidate/InvalidateAll, or the
//     incremental partial-likelihood cache (PR 1) silently serves stale
//     vectors.
//   - hotpathalloc: the likelihood inner kernels must not allocate per
//     pattern-loop iteration or bypass the configured exp() implementation.
//   - floatcmp: floating-point == / != is forbidden outside a small
//     allowlist; call sites should use tolerance helpers instead.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but is self-contained on the standard
// library, so the repo stays dependency-free. cmd/raxmlvet drives the
// analyzers either standalone or as a `go vet -vettool` backend.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, in the image of analysis.Analyzer.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:ignore directives
	Doc  string // one-paragraph description of the enforced invariant

	// Match restricts the analyzer to packages whose import path
	// satisfies it; nil means every package.
	Match func(pkgPath string) bool

	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Fset *token.FileSet
	Path string // import path used for Analyzer.Match
	Pkg  *types.Package
	Info *types.Info

	// Files holds every parsed file of the package, including *_test.go
	// files when the loader saw them. Analyzers use Pass.NonTestFiles to
	// skip test sources.
	Files []*ast.File
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	*Package

	diags *[]Diagnostic
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// NonTestFiles returns the package files that are not _test.go sources.
// Every analyzer in this suite skips test files: determinism of tests is
// enforced by seeds and -race, and tests deliberately compare bit-identical
// floating-point replays.
func (p *Pass) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filepath.Base(name), "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Run executes the analyzers over the package and returns the surviving
// diagnostics: findings on lines covered by a matching //lint:ignore
// directive are dropped. Results are ordered by position then analyzer.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &Pass{Analyzer: a, Package: pkg, diags: &diags}
		a.Run(pass)
	}
	diags = filterSuppressed(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreRe matches suppression directives:
//
//	//lint:ignore <name>[,<name>...] <reason>
//
// The directive must carry a non-empty reason and applies to findings on
// its own line (trailing comment) or on the next line (comment above the
// offending statement). <name> is an analyzer name or "all".
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s+(.+)$`)

type suppression struct {
	analyzers map[string]bool // nil means all
}

// suppressions maps filename -> line -> directive for the package.
func suppressions(pkg *Package) map[string]map[int]suppression {
	out := make(map[string]map[int]suppression)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				sup := suppression{}
				if m[1] != "all" {
					sup.analyzers = make(map[string]bool)
					for _, name := range strings.Split(m[1], ",") {
						sup.analyzers[name] = true
					}
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]suppression)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = sup
			}
		}
	}
	return out
}

func (s suppression) covers(analyzer string) bool {
	return s.analyzers == nil || s.analyzers[analyzer]
}

func filterSuppressed(pkg *Package, diags []Diagnostic) []Diagnostic {
	sups := suppressions(pkg)
	var out []Diagnostic
	for _, d := range diags {
		byLine := sups[d.Pos.Filename]
		if byLine != nil {
			if s, ok := byLine[d.Pos.Line]; ok && s.covers(d.Analyzer) {
				continue
			}
			if s, ok := byLine[d.Pos.Line-1]; ok && s.covers(d.Analyzer) {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// pathHasAny reports whether the import path contains one of the given
// slash-separated fragments as a segment-aligned substring. The bracketed
// " [foo.test]" suffix go list/vet attach to test variants is ignored.
func pathHasAny(pkgPath string, fragments ...string) bool {
	if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	for _, frag := range fragments {
		if pkgPath == frag || strings.HasSuffix(pkgPath, "/"+frag) ||
			strings.HasPrefix(pkgPath, frag+"/") || strings.Contains(pkgPath, "/"+frag+"/") {
			return true
		}
	}
	return false
}

// pkgFuncObject resolves a selector expression like time.Now to the
// package-level object it denotes, or nil when sel is not a qualified
// identifier (e.g. a method selection or field access).
func pkgFuncObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, ok := info.Uses[id].(*types.PkgName); !ok {
		return nil
	}
	return info.Uses[sel.Sel]
}

// isMethodCall reports whether call invokes a method named name (on any
// receiver type — the suite matches the kernel contracts by name so that
// analyzer tests and future refactors do not depend on type identity).
func isMethodCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	found := false
	for _, n := range names {
		if sel.Sel.Name == n {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}
