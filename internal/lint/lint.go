// Package lint is a project-specific static-analysis suite for the
// RAxML-Cell reproduction. It mechanically enforces the invariants the
// codebase otherwise trusts to reviewer memory:
//
//   - simdeterminism: the discrete-event Cell simulator must be
//     bit-deterministic (no wall clock, no global RNG, no map-order
//     dependent event scheduling), or the cycle-accurate tables in
//     EXPERIMENTS.md stop being reproducible.
//   - invalidatepair: every direct SetZ branch-length write in the search
//     layer must be followed by an Engine.Invalidate/InvalidateAll, or the
//     incremental partial-likelihood cache (PR 1) silently serves stale
//     vectors.
//   - hotpathalloc: the likelihood inner kernels must not allocate per
//     pattern-loop iteration or bypass the configured exp() implementation.
//   - floatcmp: floating-point == / != is forbidden outside a small
//     allowlist; call sites should use tolerance helpers instead.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but is self-contained on the standard
// library, so the repo stays dependency-free. cmd/raxmlvet drives the
// analyzers either standalone or as a `go vet -vettool` backend.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, in the image of analysis.Analyzer.
type Analyzer struct {
	Name string // short lower-case identifier, used in //lint:ignore directives
	Doc  string // one-paragraph description of the enforced invariant

	// Match restricts the analyzer to packages whose import path
	// satisfies it; nil means every package.
	Match func(pkgPath string) bool

	// Facts marks the analyzer as interprocedural: it exports facts about
	// package-level functions for downstream packages. Fact analyzers run
	// on every loaded package — including dependency-only passes where
	// diagnostics are discarded (Package.FactsOnly) — so taint can follow
	// calls into packages outside the analyzer's reporting scope.
	Facts bool

	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Package is one type-checked package ready for analysis.
type Package struct {
	Fset *token.FileSet
	Path string // import path used for Analyzer.Match
	Pkg  *types.Package
	Info *types.Info

	// Files holds every parsed file of the package, including *_test.go
	// files when the loader saw them. Analyzers use Pass.NonTestFiles to
	// skip test sources.
	Files []*ast.File

	// Imported carries the facts of this package's dependencies (merged);
	// nil means no facts are available. Exported collects the facts the
	// fact-producing analyzers derive about this package; Run fills it.
	Imported *FactSet
	Exported *FactSet

	// FactsOnly marks a dependency pass: only fact-producing analyzers
	// run and every diagnostic is discarded. The standalone loader sets
	// it for module-local dependencies outside the requested patterns;
	// the vet driver sets it for VetxOnly invocations.
	FactsOnly bool

	cg *CallGraph // lazily built package-local call graph, see Pass.CallGraph
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	*Package

	diags *[]Diagnostic
}

// ImportedFact looks up a fact recorded on fn by the analysis of another
// package (threaded through .vetx files under go vet, or in memory in the
// standalone loader).
func (p *Pass) ImportedFact(fn *types.Func, name string) (string, bool) {
	if p.Imported == nil {
		return "", false
	}
	return p.Imported.Get(ObjectKey(fn), name)
}

// ExportFact records a fact about fn (a function declared in this
// package) for downstream packages.
func (p *Pass) ExportFact(fn *types.Func, name, value string) {
	p.Exported.Add(ObjectKey(fn), name, value)
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// NonTestFiles returns the package files that are not _test.go sources.
// Every analyzer in this suite skips test files: determinism of tests is
// enforced by seeds and -race, and tests deliberately compare bit-identical
// floating-point replays.
func (p *Pass) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(filepath.Base(name), "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Run executes the analyzers over the package and returns the surviving
// diagnostics: findings on lines covered by a matching //lint:ignore
// directive are dropped. Results are ordered by position then analyzer.
// On a FactsOnly package only fact-producing analyzers run and no
// diagnostics are returned; either way pkg.Exported holds the facts the
// pass derived.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := run(pkg, analyzers)
	return diags
}

// RunWithAudit is Run plus the suppression audit: any //lint:ignore
// directive that suppressed nothing — and whose named analyzers were all
// part of this run, so absence of a finding is meaningful — produces an
// "unusedsuppression" diagnostic. The drivers run the full suite through
// it so suppression debt cannot accumulate silently.
func RunWithAudit(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	diags, sups := run(pkg, analyzers)
	if pkg.FactsOnly {
		return diags
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, byLine := range sups {
		for _, s := range byLine {
			if s.used || !s.auditable(ran) {
				continue
			}
			diags = append(diags, Diagnostic{
				Analyzer: "unusedsuppression",
				Pos:      s.pos,
				Message:  fmt.Sprintf("//lint:ignore %s directive suppresses nothing; remove it (or fix the analyzer name)", s.names),
			})
		}
	}
	sortDiagnostics(diags)
	return diags
}

func run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, map[string]map[int]*suppression) {
	if pkg.Exported == nil {
		pkg.Exported = NewFactSet()
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		if pkg.FactsOnly && !a.Facts {
			continue
		}
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &Pass{Analyzer: a, Package: pkg, diags: &diags}
		a.Run(pass)
	}
	if pkg.FactsOnly {
		return nil, nil
	}
	sups := suppressions(pkg)
	diags = filterSuppressed(sups, diags)
	sortDiagnostics(diags)
	return diags, sups
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ignoreRe matches suppression directives:
//
//	//lint:ignore <name>[,<name>...] <reason>
//
// The directive must carry a non-empty reason and applies to findings on
// its own line (trailing comment) or on the next line (comment above the
// offending statement). <name> is an analyzer name or "all".
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s+(.+)$`)

type suppression struct {
	analyzers map[string]bool // nil means all
	names     string          // the directive's name list, verbatim, for audit messages
	pos       token.Position  // directive position, for audit diagnostics
	used      bool            // the directive suppressed at least one finding this run
}

// suppressions maps filename -> line -> directive for the package.
func suppressions(pkg *Package) map[string]map[int]*suppression {
	out := make(map[string]map[int]*suppression)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				sup := &suppression{names: m[1], pos: pos}
				if m[1] != "all" {
					sup.analyzers = make(map[string]bool)
					for _, name := range strings.Split(m[1], ",") {
						sup.analyzers[name] = true
					}
				}
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*suppression)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = sup
			}
		}
	}
	return out
}

func (s *suppression) covers(analyzer string) bool {
	return s.analyzers == nil || s.analyzers[analyzer]
}

// auditable reports whether an unmatched directive is a finding: every
// analyzer it names must have run in this pass, otherwise the absence of
// a match says nothing (linttest runs one analyzer at a time, and its
// testdata directives for other analyzers must not trip the audit).
// Directives in _test.go files are auditable too — the suite skips test
// sources entirely, so a directive there is stale by definition.
func (s *suppression) auditable(ran map[string]bool) bool {
	if s.analyzers == nil {
		return true // "all": any full-suite run can judge it
	}
	for name := range s.analyzers {
		if !ran[name] {
			return false
		}
	}
	return true
}

func filterSuppressed(sups map[string]map[int]*suppression, diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		byLine := sups[d.Pos.Filename]
		if byLine != nil {
			if s, ok := byLine[d.Pos.Line]; ok && s.covers(d.Analyzer) {
				s.used = true
				continue
			}
			if s, ok := byLine[d.Pos.Line-1]; ok && s.covers(d.Analyzer) {
				s.used = true
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// pathHasAny reports whether the import path contains one of the given
// slash-separated fragments as a segment-aligned substring. The bracketed
// " [foo.test]" suffix go list/vet attach to test variants is ignored.
func pathHasAny(pkgPath string, fragments ...string) bool {
	if i := strings.IndexByte(pkgPath, ' '); i >= 0 {
		pkgPath = pkgPath[:i]
	}
	for _, frag := range fragments {
		if pkgPath == frag || strings.HasSuffix(pkgPath, "/"+frag) ||
			strings.HasPrefix(pkgPath, frag+"/") || strings.Contains(pkgPath, "/"+frag+"/") {
			return true
		}
	}
	return false
}

// pkgFuncObject resolves a selector expression like time.Now to the
// package-level object it denotes, or nil when sel is not a qualified
// identifier (e.g. a method selection or field access).
func pkgFuncObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, ok := info.Uses[id].(*types.PkgName); !ok {
		return nil
	}
	return info.Uses[sel.Sel]
}

// isMethodCall reports whether call invokes a method named name (on any
// receiver type — the suite matches the kernel contracts by name so that
// analyzer tests and future refactors do not depend on type identity).
func isMethodCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	found := false
	for _, n := range names {
		if sel.Sel.Name == n {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}
