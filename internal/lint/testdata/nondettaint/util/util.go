// Package util sits OUTSIDE the deterministic scope: simdeterminism
// never looks at it, so nothing here is reported — but nondettaint's
// fact pass marks every function that reaches a nondeterministic source,
// directly or through same-package helpers, and the sim package's pass
// flags the calls (see ../sim.go).
package util

import "time"

// Stamp is a direct source.
func Stamp() int64 { return time.Now().UnixNano() }

// Jitter launders the source through an unexported helper: only the
// interprocedural fixed point connects it to the wall clock.
func Jitter() int64 { return stamp2() + 1 }

func stamp2() int64 { return time.Now().UnixNano() }

// AnyKey is tainted by map-iteration order, not by the clock.
func AnyKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

// Clean is a pure helper; calls to it must stay silent.
func Clean(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
