// Golden case for nondettaint: this file is analyzed under the pretend
// path raxmlcell/internal/sim (inside the deterministic scope) after the
// util package has been analyzed for facts, so calls that launder
// nondeterminism through util helpers are flagged at the frontier — the
// call site where the value enters the simulator.
package sim

import "raxmlcell/internal/util"

type eventQueue struct {
	seq   int64
	names map[string]int
}

func (q *eventQueue) schedule() {
	q.seq = util.Stamp()     // want `call to util\.Stamp is nondeterministic \(it reads the wall clock via time\.Now\)`
	q.seq += util.Jitter()   // want `call to util\.Jitter is nondeterministic \(it calls util\.stamp2, which reads the wall clock via time\.Now\)`
	_ = util.AnyKey(q.names) // want `call to util\.AnyKey is nondeterministic \(it ranges over a map in randomized order\)`
	q.seq = util.Clean(q.seq, 0)
}

// laundered propagates taint through a local helper: the helper itself
// is same-package (not reported here), but its call into util is the
// frontier and carries the two-package witness chain.
func laundered() int64 {
	return localWrap()
}

func localWrap() int64 {
	return util.Jitter() // want `call to util\.Jitter is nondeterministic`
}

// suppressed shows the escape hatch: the directive names the analyzer
// and carries a reason, so no finding survives (and the suppression
// audit sees a used directive).
func suppressed() int64 {
	//lint:ignore nondettaint boot banner timestamp, never replayed
	return util.Stamp()
}
