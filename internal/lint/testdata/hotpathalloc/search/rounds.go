// Golden input for the widened hotpathalloc scope: this file pretends to
// live in raxmlcell/internal/search. Functions whose names contain
// spr/nni/insertion are the search hot loop; per-round buffers (candidate
// lists, score tables) must be hoisted onto the search context, not
// reallocated inside the round loop.
package search

import "fmt"

type node struct{ z float64 }

func sprRoundAllocs(prunes int) float64 {
	total := 0.0
	for p := 0; p < prunes; p++ {
		cands := make([]*node, 0, 8)   // want `make allocates inside a per-pattern loop`
		scores := []float64{0, 0}      // want `slice/map literal allocates inside a per-pattern loop`
		cands = append(cands, &node{}) // want `append inside a per-pattern loop`
		_ = fmt.Sprintf("prune %d", p) // want `fmt.Sprintf inside a per-pattern loop`
		total += scores[0] + cands[0].z
	}
	return total
}

func scoreInsertionsClosure(n int) float64 {
	worker := func(i int) float64 {
		buf := make([]float64, 4) // want `make allocates inside a per-iteration closure`
		return buf[0] + float64(i)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += worker(i)
	}
	return s
}

func nniTargetsPrealloc(out []*node, rounds int) []*node {
	// Reusing a caller-owned buffer and unrolled appends outside loops are
	// the sanctioned idiom: nothing to report.
	out = out[:0]
	out = append(out, &node{z: float64(rounds)})
	return out
}

// collectCandidates is outside the hot set: the same patterns are allowed.
func collectCandidates(n int) []*node {
	var out []*node
	for i := 0; i < n; i++ {
		out = append(out, &node{z: float64(i)})
	}
	return out
}
