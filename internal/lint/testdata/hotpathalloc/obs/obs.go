// Golden input for the obs extension of the hotpathalloc scope: this file
// pretends to live in raxmlcell/internal/obs. Functions whose names
// contain observe/record/span are the instrumentation hot path — they run
// once per kernel call, supervision event or search round, so an
// allocation inside them taxes whatever they instrument.
package obs

import "fmt"

type event struct {
	kind string
	at   float64
}

func observeBatch(samples []float64) float64 {
	total := 0.0
	for _, s := range samples {
		bins := make([]float64, 8)         // want `make allocates inside a per-pattern loop`
		labels := []string{"le", "bucket"} // want `slice/map literal allocates inside a per-pattern loop`
		total += s + bins[0] + float64(len(labels))
	}
	return total
}

func recordEvents(kinds []string) []event {
	var out []event
	for _, k := range kinds {
		out = append(out, event{kind: k}) // want `append inside a per-pattern loop`
		_ = fmt.Sprintf("flight: %s", k)  // want `fmt.Sprintf inside a per-pattern loop`
	}
	return out
}

func spanEmit(n int) float64 {
	emit := func(i int) float64 {
		buf := make([]event, 1) // want `make allocates inside a per-iteration closure`
		buf[0].at = float64(i)
		return buf[0].at
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += emit(i)
	}
	return s
}

// observePrealloc is the sanctioned idiom: fixed-size state allocated once
// at construction, only indexed on the hot path — nothing to report.
func observePrealloc(bins []float64, v float64) {
	for i := range bins {
		if v >= float64(i) {
			bins[i]++
		}
	}
}

// snapshotDump is outside the hot set (snapshots are cold, taken on
// failure or scrape): the same patterns are allowed.
func snapshotDump(events []event) []string {
	var out []string
	for _, e := range events {
		out = append(out, fmt.Sprintf("%s@%v", e.kind, e.at))
	}
	return out
}
