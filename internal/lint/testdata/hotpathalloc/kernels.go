// Golden input for the hotpathalloc analyzer: this file pretends to live in
// raxmlcell/internal/likelihood. Functions whose names contain
// combine/newview/makenewz/evaluate/fastexp/tile/sumtable/newton are
// kernels (the last three cover the compute-backend range methods and
// their tile helpers); allocations in their loops or closures and raw
// math.Exp calls are reported.
package likelihood

import (
	"fmt"
	"math"
)

func combineLoopAllocs(pats int) []float64 {
	var out []float64
	for pat := 0; pat < pats; pat++ {
		out = append(out, float64(pat)) // want `append inside a per-pattern loop`
		buf := make([]float64, 4)       // want `make allocates inside a per-pattern loop`
		tmp := []float64{1, 2}          // want `slice/map literal allocates inside a per-pattern loop`
		_ = fmt.Sprintf("%d", pat)      // want `fmt.Sprintf inside a per-pattern loop`
		out[pat] += buf[0] + tmp[0]
	}
	return out
}

func evaluateRawExp(x float64) float64 {
	return math.Exp(x) // want `raw math.Exp in kernel evaluateRawExp`
}

func makenewzClosureAlloc(n int) float64 {
	likelihoodAt := func(t float64) float64 {
		buf := make([]float64, 4) // want `make allocates inside a per-iteration closure`
		return buf[0] + t
	}
	s := 0.0
	for i := 0; i < n; i++ {
		s += likelihoodAt(float64(i))
	}
	return s
}

func newviewPreallocated(pats int) []float64 {
	out := make([]float64, pats) // allocation outside any loop: allowed
	var scratch [4]float64       // fixed-size array: stack, allowed
	for pat := 0; pat < pats; pat++ {
		scratch[0] = float64(pat)
		out[pat] = scratch[0]
	}
	return out
}

func fastexpSuppressed(x float64) float64 {
	//lint:ignore hotpathalloc reference implementation compared against in calibration
	return math.Exp(x)
}

// projectInnerTileAlloc mimics a batched-backend tile helper: the "tile"
// fragment places it in the hot set.
func projectInnerTileAlloc(lo, hi int) []float64 {
	var out []float64
	for pat := lo; pat < hi; pat++ {
		row := make([]float64, 4) // want `make allocates inside a per-pattern loop`
		out = append(out, row...) // want `append inside a per-pattern loop`
	}
	return out
}

// sumTableRangeScratch mimics a backend sumTableRange: scratch hoisted
// outside the loop is allowed, per-pattern allocation is not.
func sumTableRangeScratch(sumTab []float64, npat int) {
	scratch := make([]float64, 4) // outside the loop: allowed
	for pat := 0; pat < npat; pat++ {
		tmp := map[int]float64{pat: 1} // want `slice/map literal allocates inside a per-pattern loop`
		sumTab[pat] = scratch[0] + tmp[pat]
	}
}

// newtonRangeExp mimics a backend newtonRange: the exp blocks must come
// through the engine's configured expFn, never raw math.Exp.
func newtonRangeExp(x float64) float64 {
	return math.Exp(x) // want `raw math.Exp in kernel newtonRangeExp`
}

// notAKernel is outside the hot set: the same patterns are allowed.
func notAKernel(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
