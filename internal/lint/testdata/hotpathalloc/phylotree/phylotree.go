// Golden input for the memo-widened hotpathalloc scope: this file pretends
// to live in raxmlcell/internal/phylotree. Functions whose names contain
// memo/hash/probe are the topology-memo probe path — they run once per
// SPR/NNI candidate, before (or instead of) the likelihood evaluation, so
// per-candidate allocations tax every candidate whether or not the memo
// hits. Scratch belongs on the hasher/scope struct, sized once.
package phylotree

import "fmt"

type topoHash [2]uint64

type hasher struct {
	keys []topoHash
	acc  []topoHash
}

func (h *hasher) treeHashEdges(edges int) topoHash {
	var sum topoHash
	for e := 0; e < edges; e++ {
		term := make([]uint64, 2)     // want `make allocates inside a per-pattern loop`
		parts := []uint64{1, 2}       // want `slice/map literal allocates inside a per-pattern loop`
		_ = fmt.Sprintf("edge %d", e) // want `fmt.Sprintf inside a per-pattern loop`
		sum[0] += term[0] + parts[0]
		sum[1] += h.keys[e%len(h.keys)][1]
	}
	return sum
}

func (h *hasher) probeCandidates(n int) int {
	hits := 0
	lookup := func(i int) bool {
		seen := make(map[topoHash]bool, 1) // want `make allocates inside a per-iteration closure`
		return seen[h.acc[i%len(h.acc)]]
	}
	for i := 0; i < n; i++ {
		if lookup(i) {
			hits++
		}
	}
	return hits
}

func (h *hasher) candidateHashPrealloc(at int) topoHash {
	// The sanctioned idiom: the accumulator table was sized at Reset time,
	// the per-candidate hash is pure arithmetic on it — nothing to report.
	base := h.acc[at%len(h.acc)]
	base[0] += h.keys[at%len(h.keys)][0]
	base[1] += h.keys[at%len(h.keys)][1]
	return base
}

// buildTaxaIndex is outside the hot set (no memo/hash/probe fragment):
// the same allocation patterns are allowed.
func buildTaxaIndex(n int) map[int]topoHash {
	out := make(map[int]topoHash, n)
	for i := 0; i < n; i++ {
		out[i] = topoHash{uint64(i), uint64(i)}
	}
	return out
}
