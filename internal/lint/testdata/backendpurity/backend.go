// Golden case for backendpurity, analyzed as raxmlcell/internal/likelihood:
// a miniature of the Backend seam. Range methods run concurrently over
// one shared Ctx (one pattern range per fan-out slot), so they may write
// only operand-slice elements, Ctx scratch elements and slot tiles —
// never the Engine, a Ctx field itself, or package state.
package likelihood

type Engine struct {
	total uint64
	tbl   []float64
}

type tile struct{ buf []float64 }

type Ctx struct {
	eng       *Engine
	sumTab    []float64
	tiles     []tile
	underflow uint64
}

type combineOp struct{ dst []float64 }

type patRange struct{ lo, hi int }

type combineStats struct{ muls uint64 }

var globalHits int

type goodBackend struct{}

// initCtx is not a *Range method: sizing Ctx scratch before any kernel
// runs is exactly what it is for, so its field writes are legal.
func (goodBackend) initCtx(c *Ctx, slots int) {
	c.tiles = make([]tile, slots)
	c.sumTab = make([]float64, len(c.eng.tbl))
}

func (goodBackend) combineRange(c *Ctx, op *combineOp, pr patRange, slot int) combineStats {
	var st combineStats
	t := &c.tiles[slot]
	for pat := pr.lo; pat < pr.hi; pat++ {
		t.buf[0] = c.eng.tbl[pat]          // slot tile write, engine read: legal
		op.dst[pat] = t.buf[0] * 2         // operand element: legal
		c.sumTab[pat] = op.dst[pat]        // Ctx scratch element: legal
		c.tiles[slot].buf[0] = op.dst[pat] // slot tile through the Ctx path: legal
		st.muls++                          // local part value: legal
	}
	return st
}

type badBackend struct{}

func (badBackend) combineRange(c *Ctx, op *combineOp, pr patRange, slot int) combineStats {
	c.eng.total++                     // want `writes Engine state through field total in combineRange`
	c.eng.tbl[0] = 1                  // want `writes Engine state through field tbl in combineRange`
	c.sumTab = make([]float64, pr.hi) // want `writes Ctx field sumTab directly in combineRange`
	c.underflow++                     // want `writes Ctx field underflow directly in combineRange`
	globalHits++                      // want `writes package-level variable globalHits in combineRange`
	for pat := pr.lo; pat < pr.hi; pat++ {
		op.dst[pat] = 1
	}
	return combineStats{}
}

// newtonRange launders its store through a helper: only the package-local
// fixed point connects the call site to the write, which is the
// multi-function case the analyzer exists for.
func (badBackend) newtonRange(c *Ctx, op *combineOp, pr patRange, slot int) combineStats {
	bumpUnderflow(c) // want `newtonRange calls likelihood\.bumpUnderflow, which writes Ctx field underflow directly`
	return combineStats{}
}

// bumpUnderflow is fine on its own (drivers call it between fan-outs);
// it is the call from a *Range method that is flagged.
func bumpUnderflow(c *Ctx) { c.underflow++ }
