// Package likelihood is the golden miniature of the kernel package: just
// enough surface for ctxownership to recognize the owned types (Ctx,
// Views), the shared Engine, and the sanctioned patterns inside the
// declaring package itself. Everything in this file must stay silent.
package likelihood

type Engine struct {
	ctx0    *Ctx
	Scratch *Ctx // exported bait: foreign stores into it are flagged
}

type Ctx struct{ eng *Engine }

type Views struct{ ctx *Ctx }

// Job is a non-Engine struct of this package; foreign packages must not
// park owned values in it either.
type Job struct{ V *Views }

type Pool struct{ ctxs []*Ctx }

func NewEngine() *Engine {
	e := &Engine{}
	e.ctx0 = &Ctx{eng: e} // the one sanctioned Engine slot, set by this package
	return e
}

func (e *Engine) NewCtx() *Ctx { return &Ctx{eng: e} }

func (c *Ctx) NewViews() *Views { return &Views{ctx: c} }

func (e *Engine) NewPool(n int) *Pool {
	p := &Pool{ctxs: make([]*Ctx, n)}
	for i := range p.ctxs {
		p.ctxs[i] = e.NewCtx() // same-package struct field: legal
	}
	return p
}

func (p *Pool) Ctx(i int) *Ctx { return p.ctxs[i] }

func (p *Pool) Workers() int { return len(p.ctxs) }

// Run is the sanctioned fan-out; the harness only needs its signature.
func (p *Pool) Run(fn func(w int)) {
	for w := range p.ctxs {
		fn(w)
	}
}
