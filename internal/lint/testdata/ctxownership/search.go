// Golden case for ctxownership, analyzed as raxmlcell/internal/search
// against the miniature likelihood package: the owned types and the
// Engine are recognized across the package boundary (the interprocedural
// half of the invariant), while this package's own structs remain a
// legal home for per-worker state.
package search

import "raxmlcell/internal/likelihood"

var sharedCtx *likelihood.Ctx // want `package-level variable "sharedCtx" holds a likelihood\.Ctx`

// searchCtx is this package's own struct: storing owned values in it is
// the sanctioned pattern (per-worker tables indexed by Pool worker).
type searchCtx struct {
	pool  *likelihood.Pool
	views []*likelihood.Views
}

func legal(eng *likelihood.Engine) {
	sc := &searchCtx{pool: eng.NewPool(4)}
	sc.views = make([]*likelihood.Views, sc.pool.Workers()) // own struct: legal
	sc.pool.Run(func(w int) {
		sc.views[w] = sc.pool.Ctx(w).NewViews() // own struct, pool fan-out: legal
	})
}

func leakStores(eng *likelihood.Engine) {
	ctx := eng.NewCtx()
	sharedCtx = ctx   // want `likelihood\.Ctx stored in package-level variable "sharedCtx"`
	eng.Scratch = ctx // want `likelihood\.Ctx stored into shared Engine field "Scratch"`

	v := ctx.NewViews()
	j := &likelihood.Job{}
	j.V = v // want `likelihood\.Views stored into field V of .*likelihood\.Job, a struct of another package`
	_ = &likelihood.Job{
		V: v, // want `likelihood\.Views stored into a composite literal of foreign struct Job`
	}
}

func leakGoroutine(eng *likelihood.Engine) {
	ctx := eng.NewCtx()
	go func() {
		_ = ctx // want `likelihood\.Ctx "ctx" is referenced by a raw go statement`
	}()
	go consume(ctx) // want `likelihood\.Ctx "ctx" is referenced by a raw go statement`
}

func consume(c *likelihood.Ctx) { _ = c }
