// Golden input for the floatcmp analyzer (active in every package):
// floating-point == / != outside the NaN-idiom and exact-zero allowlist is
// reported.
package floatcmp

func badEq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func badNeq(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

func badMixed(a float64) bool {
	return a == 0.3 // want `floating-point == comparison`
}

func badComplex(a, b complex128) bool {
	return a == b // want `floating-point == comparison`
}

func nanIdiom(a float64) bool {
	return a != a // self-comparison: the NaN test, allowed
}

func zeroSentinel(a float64) bool {
	return a == 0 // exact-zero sentinel: allowed
}

func zeroSentinelTyped(a float64) bool {
	return 0.0 != a // exact-zero sentinel, reversed operands: allowed
}

func intCompare(a, b int) bool {
	return a == b // integers compare exactly: allowed
}

func suppressedBitExact(a, b float64) bool {
	//lint:ignore floatcmp replay check: kernels must reproduce bit-identical values
	return a == b
}

// backendEpilogue mimics the compute-backend per-pattern epilogue: the
// underflow clamp compares against a non-zero constant and is reported,
// while the branch-length "did it change at all" cache check is a
// deliberate bit-exact comparison carrying the suppression directive.
func backendEpilogue(site, z, zEntry float64) bool {
	if site == 4.9e-324 { // want `floating-point == comparison`
		return false
	}
	//lint:ignore floatcmp cache-invalidation check: any bit change must invalidate
	return z != zEntry
}
