// Golden input for the invalidatepair analyzer: this file pretends to live
// in raxmlcell/internal/search, where a direct SetZ must be followed by an
// Engine.Invalidate/InvalidateAll in the same function. The stub types
// mirror the shapes of phylotree.Node and likelihood.Engine; the analyzer
// matches the contract by method name, not type identity.
package search

type node struct{ z float64 }

func (n *node) SetZ(z float64) { n.z = z }

type engine struct{ dirty bool }

func (e *engine) Invalidate(n *node) { e.dirty = true }
func (e *engine) InvalidateAll()     { e.dirty = true }

func badUnpaired(e *engine, n *node) {
	n.SetZ(0.5) // want `not followed by Engine.Invalidate`
}

func badInvalidateBefore(e *engine, n *node) {
	e.Invalidate(n)
	n.SetZ(0.5) // want `not followed by Engine.Invalidate`
}

func goodPaired(e *engine, n *node) {
	n.SetZ(0.5)
	e.Invalidate(n)
}

func goodPairedAll(e *engine, n *node) {
	n.SetZ(0.5)
	e.InvalidateAll()
}

func goodMultiple(e *engine, a, b *node) {
	a.SetZ(0.25)
	b.SetZ(0.75)
	e.InvalidateAll()
}

func setZFreeFunc(z float64) float64 {
	// A plain function named SetZ is not the Node method contract.
	setZ := func(v float64) float64 { return v }
	return setZ(z)
}

func suppressedNoEngine(n *node) {
	//lint:ignore invalidatepair tree construction path: no engine can be attached yet
	n.SetZ(0.25)
}
