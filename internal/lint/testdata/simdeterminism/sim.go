// Golden input for the simdeterminism analyzer: this file pretends to live
// in raxmlcell/internal/sim, where wall-clock access, global math/rand and
// map-order iteration are banned.
package sim

import (
	"maps"
	"math/rand"
	"time"
)

func badClock() int64 {
	t := time.Now()             // want `wall-clock time.Now`
	time.Sleep(time.Nanosecond) // want `wall-clock time.Sleep`
	d := time.Since(t)          // want `wall-clock time.Since`
	return d.Nanoseconds()
}

func badTimer(done func()) {
	time.AfterFunc(time.Millisecond, done) // want `wall-clock time.AfterFunc`
}

func badGlobalRand() int {
	rand.Seed(42)                      // want `global math/rand.Seed`
	n := rand.Intn(10)                 // want `global math/rand.Intn`
	f := rand.Float64()                // want `global math/rand.Float64`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand.Shuffle`
	return n + int(f)
}

func badRandFuncValue() func() float64 {
	return rand.Float64 // want `global math/rand.Float64`
}

func goodSeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // explicitly seeded: allowed
	return rng.Intn(10)
}

func badMapOrder(m map[string]int) int {
	s := 0
	for _, v := range m { // want `map iteration order is randomized`
		s += v
	}
	return s
}

func badMapsKeysOrder(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) { // want `maps.Keys iterates in randomized order`
		out = append(out, k)
	}
	return out
}

func goodSliceOrder(xs []int) int {
	s := 0
	for _, v := range xs { // slices are ordered: allowed
		s += v
	}
	return s
}

func suppressedMapOrder(m map[string]int) int {
	s := 0
	//lint:ignore simdeterminism accumulation is commutative, order cannot leak into event times
	for _, v := range m {
		s += v
	}
	return s
}
