// _test.go files are exempt from simdeterminism: test determinism is
// enforced by seeds and -race, and timeout guards legitimately touch the
// host clock. Nothing in this file may be reported.
package sim

import "time"

func testOnlyClock() time.Time {
	return time.Now() // allowed: test file
}
