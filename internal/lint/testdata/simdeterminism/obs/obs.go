// Golden input for the widened simdeterminism scope: this file pretends to
// live in raxmlcell/internal/obs, where the same determinism contract holds —
// trace files and metrics snapshots are golden-tested byte for byte, so
// wall-clock timestamps, global math/rand and map-order iteration are banned
// exactly as in the simulator packages.
package obs

import (
	"maps"
	"math/rand"
	"slices"
	"time"
)

type tracer struct {
	tids map[string]int
}

func (t *tracer) badWallClockTimestamp() int64 {
	// A trace event stamped from the host clock differs between runs.
	return time.Now().UnixNano() // want `wall-clock time.Now`
}

func (t *tracer) badSamplingJitter() bool {
	// Sampling decisions from the global source reorder emitted events.
	return rand.Float64() < 0.01 // want `global math/rand.Float64`
}

func (t *tracer) badSnapshotOrder() []string {
	var tracks []string
	for name := range t.tids { // want `map iteration order is randomized`
		tracks = append(tracks, name)
	}
	return tracks
}

func (t *tracer) badMapsValuesOrder() []int {
	var tids []int
	for id := range maps.Values(t.tids) { // want `maps.Values iterates in randomized order`
		tids = append(tids, id)
	}
	return tids
}

func (t *tracer) goodSnapshotOrder() []string {
	// The sanctioned pattern: sort the keys, then iterate the slice.
	return slices.Sorted(maps.Keys(t.tids))
}

func goodSeededSampling(seed int64) bool {
	rng := rand.New(rand.NewSource(seed)) // explicitly seeded: allowed
	return rng.Float64() < 0.01
}
