package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallGraph is the package-local static call graph: one node per function
// or method declared in the package (test files excluded, like every
// analyzer in the suite), each listing the statically resolved calls its
// body makes — to other functions of the package or to imported ones.
//
// Resolution is deliberately conservative and syntactic:
//
//   - calls through function values, fields and interface methods are not
//     edges (the callee is unknown at type-check time). The fault.Clock
//     injection seam relies on exactly this: wall-clock implementations
//     are only ever reached through an interface, so taint stops at the
//     injection boundary by construction;
//   - calls inside nested function literals are attributed to the
//     enclosing declaration, whether or not the literal escapes — an
//     over-approximation that errs toward reporting;
//   - generic instantiations resolve to their origin declaration.
type CallGraph struct {
	// Nodes maps each declared function object to its graph node, and
	// Order lists the nodes by source position so fixed-point passes
	// iterate deterministically.
	Nodes map[*types.Func]*CallNode
	Order []*CallNode
}

// CallNode is one declared function with its outgoing static calls.
type CallNode struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Calls []CallSite
}

// CallSite is one resolved call expression inside a node's body.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func
}

// CallGraph returns the package's call graph, building it on first use;
// the graph is shared by every analyzer pass over the package.
func (p *Pass) CallGraph() *CallGraph {
	if p.Package.cg == nil {
		p.Package.cg = buildCallGraph(p.Package)
	}
	return p.Package.cg
}

func buildCallGraph(pkg *Package) *CallGraph {
	cg := &CallGraph{Nodes: make(map[*types.Func]*CallNode)}
	pass := &Pass{Package: pkg} // for NonTestFiles only
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &CallNode{Fn: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := StaticCallee(pkg.Info, call); callee != nil {
					node.Calls = append(node.Calls, CallSite{Call: call, Callee: callee})
				}
				return true
			})
			cg.Nodes[fn] = node
			cg.Order = append(cg.Order, node)
		}
	}
	sort.Slice(cg.Order, func(i, j int) bool {
		return cg.Order[i].Decl.Pos() < cg.Order[j].Decl.Pos()
	})
	return cg
}

// StaticCallee resolves a call expression to the concrete function or
// method it statically invokes, or nil when the callee is dynamic: a
// function value, an interface method, or a type conversion. Generic
// instantiations resolve to the origin declaration, so facts attach to
// the source-level function.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// Method value/expression calls and qualified identifiers both
		// resolve through Uses of the selected name. Interface methods
		// are abstract and excluded below.
		id = fun.Sel
	case *ast.IndexExpr:
		// Explicit generic instantiation f[T](...).
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	fn = fn.Origin()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if types.IsInterface(sig.Recv().Type()) {
			return nil // dynamic dispatch: the concrete method is unknown
		}
	}
	return fn
}
