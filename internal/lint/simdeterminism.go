package lint

import (
	"go/ast"
	"go/types"
)

// SimDeterminism enforces the simulator's bit-determinism contract.
//
// The discrete-event Cell simulator (internal/sim, internal/cell,
// internal/cellrt), the master-worker runtime (internal/mw), the fault
// injector (internal/fault) and the observability layer (internal/obs,
// whose trace files and metrics snapshots are golden-tested byte for byte)
// promise that a run is fully determined by its inputs and seeds: the cycle-accurate tables in EXPERIMENTS.md are diffed
// against the paper, checkpoint/restart relies on replaying identical job
// results, and chaos campaigns must inject the same faults on every replay.
// Three sources of hidden nondeterminism are banned inside those packages:
//
//   - wall-clock access (time.Now/Since/Until, timers, sleeps): simulated
//     time comes from sim.Engine.Now; anything else leaks host scheduling
//     into cycle counts.
//   - the global math/rand functions and rand.Seed: every RNG must be an
//     explicitly seeded *rand.Rand threaded through the call path, so a
//     job's outcome is a pure function of its seed.
//   - ranging over a map: Go randomizes map iteration order, so any event
//     scheduling, queue fill, or accounting fed from a map range can
//     reorder events between runs. Iterate over sorted keys instead.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock, global math/rand and map-order dependence in the simulator packages",
	Match: func(pkgPath string) bool {
		return pathHasAny(pkgPath, simScopes...)
	},
	Run: runSimDeterminism,
}

// forbiddenTimeFuncs are the package-level time functions that observe or
// depend on the host clock.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs are the math/rand package-level constructors that build
// explicitly seeded generators; everything else at package level draws from
// the global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runSimDeterminism(pass *Pass) {
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := pkgFuncObject(pass.Info, n)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					if forbiddenTimeFuncs[obj.Name()] {
						pass.Reportf(n.Pos(),
							"wall-clock time.%s is nondeterministic inside the simulator; use sim.Engine.Now (simulated cycles) or inject a clock", obj.Name())
					}
				case "math/rand", "math/rand/v2":
					if _, isFunc := obj.(*types.Func); isFunc && !allowedRandFuncs[obj.Name()] {
						pass.Reportf(n.Pos(),
							"global math/rand.%s draws from a process-wide source; thread an explicitly seeded *rand.Rand instead", obj.Name())
					}
				}
			case *ast.RangeStmt:
				if n.X == nil {
					return true
				}
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(),
							"map iteration order is randomized and can reorder simulator events between runs; iterate over sorted keys (e.g. slices.Sorted(maps.Keys(m)))")
						return true
					}
				}
				// Ranging over the raw maps.Keys/Values/All iterator
				// has the same randomized order as the map itself.
				if call, ok := n.X.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						if obj := pkgFuncObject(pass.Info, sel); obj != nil && obj.Pkg() != nil &&
							obj.Pkg().Path() == "maps" &&
							(obj.Name() == "Keys" || obj.Name() == "Values" || obj.Name() == "All") {
							pass.Reportf(n.Pos(),
								"maps.%s iterates in randomized order; sort first (e.g. slices.Sorted(maps.Keys(m)))", obj.Name())
						}
					}
				}
			}
			return true
		})
	}
}
