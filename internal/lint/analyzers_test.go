package lint_test

import (
	"testing"

	"raxmlcell/internal/lint"
	"raxmlcell/internal/lint/linttest"
)

// The pretend import paths place each golden package inside the scope its
// analyzer guards, exactly as Analyzer.Match will see real packages.

func TestSimDeterminismGolden(t *testing.T) {
	linttest.Run(t, lint.SimDeterminism, "raxmlcell/internal/sim", "testdata/simdeterminism")
}

// The observability package is inside the widened simdeterminism scope: its
// trace files and metrics snapshots are golden-tested byte for byte, so the
// same bans apply.
func TestSimDeterminismObsGolden(t *testing.T) {
	linttest.Run(t, lint.SimDeterminism, "raxmlcell/internal/obs", "testdata/simdeterminism/obs")
}

func TestInvalidatePairGolden(t *testing.T) {
	linttest.Run(t, lint.InvalidatePair, "raxmlcell/internal/search", "testdata/invalidatepair")
}

func TestHotPathAllocGolden(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "raxmlcell/internal/likelihood", "testdata/hotpathalloc")
}

func TestHotPathAllocSearchGolden(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "raxmlcell/internal/search", "testdata/hotpathalloc/search")
}

// The obs hot-path helpers (Histogram.Observe, FlightRecorder.Record, the
// span emitters) run once per kernel call or supervision event, so the
// allocation bans extend to them.
func TestHotPathAllocObsGolden(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "raxmlcell/internal/obs", "testdata/hotpathalloc/obs")
}

// The topology-memo probe path (TopoHasher edge terms, PruneScope
// candidate hashes, memo probes) runs once per SPR/NNI candidate, so the
// allocation bans extend to internal/phylotree's memo/hash/probe helpers.
func TestHotPathAllocPhylotreeGolden(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "raxmlcell/internal/phylotree", "testdata/hotpathalloc/phylotree")
}

func TestFloatCmpGolden(t *testing.T) {
	linttest.Run(t, lint.FloatCmp, "raxmlcell/internal/model", "testdata/floatcmp")
}

// TestNondetTaintGolden is the two-package interprocedural case: the
// util package (outside the deterministic scope) is analyzed first for
// facts, then the sim package's calls into its tainted helpers are
// flagged at the frontier with cross-package witness chains.
func TestNondetTaintGolden(t *testing.T) {
	linttest.RunPkgs(t, lint.NondetTaint, []linttest.PkgSpec{
		{Path: "raxmlcell/internal/util", Dir: "testdata/nondettaint/util"},
		{Path: "raxmlcell/internal/sim", Dir: "testdata/nondettaint"},
	})
}

// TestCtxOwnershipGolden types the owned values in a miniature
// likelihood package and violates the ownership rules from a dependent
// search package — the cross-package half of the invariant.
func TestCtxOwnershipGolden(t *testing.T) {
	linttest.RunPkgs(t, lint.CtxOwnership, []linttest.PkgSpec{
		{Path: "raxmlcell/internal/likelihood", Dir: "testdata/ctxownership/likelihood"},
		{Path: "raxmlcell/internal/search", Dir: "testdata/ctxownership"},
	})
}

func TestBackendPurityGolden(t *testing.T) {
	linttest.Run(t, lint.BackendPurity, "raxmlcell/internal/likelihood", "testdata/backendpurity")
}

// TestScopedAnalyzersSilentOutOfScope runs each scoped analyzer against a
// golden package that would be riddled with findings in scope, under an
// import path outside its jurisdiction: nothing may be reported.
func TestScopedAnalyzersSilentOutOfScope(t *testing.T) {
	cases := []struct {
		a   *lint.Analyzer
		dir string
	}{
		{lint.SimDeterminism, "testdata/simdeterminism"},
		{lint.InvalidatePair, "testdata/invalidatepair"},
		{lint.HotPathAlloc, "testdata/hotpathalloc"},
	}
	for _, c := range cases {
		t.Run(c.a.Name, func(t *testing.T) {
			if c.a.Match("raxmlcell/internal/alignment") {
				t.Fatalf("%s unexpectedly matches internal/alignment", c.a.Name)
			}
			// FloatCmp has no Match and must cover everything; NondetTaint
			// has no Match because its fact pass must run everywhere
			// (reporting is gated on the sim scope inside Run).
			if lint.FloatCmp.Match != nil {
				t.Fatal("floatcmp should be unscoped")
			}
			if lint.NondetTaint.Match != nil {
				t.Fatal("nondettaint must run (for facts) on every package")
			}
		})
	}
}

func TestAnalyzerScopes(t *testing.T) {
	cases := []struct {
		a    *lint.Analyzer
		path string
		want bool
	}{
		{lint.SimDeterminism, "raxmlcell/internal/sim", true},
		{lint.SimDeterminism, "raxmlcell/internal/cell", true},
		{lint.SimDeterminism, "raxmlcell/internal/cellrt", true},
		{lint.SimDeterminism, "raxmlcell/internal/mw", true},
		{lint.SimDeterminism, "raxmlcell/internal/fault", true},
		{lint.SimDeterminism, "raxmlcell/internal/obs", true},
		{lint.SimDeterminism, "raxmlcell/internal/cellrt [raxmlcell/internal/cellrt.test]", true},
		{lint.SimDeterminism, "raxmlcell/internal/likelihood", false},
		{lint.SimDeterminism, "raxmlcell/internal/wallclock", false}, // the one sanctioned wall-clock impl
		{lint.SimDeterminism, "raxmlcell/internal/cellar", false},    // segment-aligned, no substring tricks
		{lint.InvalidatePair, "raxmlcell/internal/search", true},
		{lint.InvalidatePair, "raxmlcell/internal/core", true},
		{lint.InvalidatePair, "raxmlcell/internal/sim", false},
		{lint.HotPathAlloc, "raxmlcell/internal/likelihood", true},
		{lint.HotPathAlloc, "raxmlcell/internal/search", true},
		{lint.HotPathAlloc, "raxmlcell/internal/obs", true},
		{lint.HotPathAlloc, "raxmlcell/internal/core", false},
		{lint.CtxOwnership, "raxmlcell/internal/likelihood", true},
		{lint.CtxOwnership, "raxmlcell/internal/search", true},
		{lint.CtxOwnership, "raxmlcell/internal/core", true},
		{lint.CtxOwnership, "raxmlcell/cmd/raxmlcell", true},
		{lint.CtxOwnership, "raxmlcell/internal/sim", false},
		{lint.BackendPurity, "raxmlcell/internal/likelihood", true},
		{lint.BackendPurity, "raxmlcell/internal/search", false},
	}
	for _, c := range cases {
		if got := c.a.Match(c.path); got != c.want {
			t.Errorf("%s.Match(%q) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
}
