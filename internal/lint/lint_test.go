package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func parseSrc(fset *token.FileSet, name, src string) ([]*ast.File, error) {
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return []*ast.File{f}, nil
}

func TestSuppressionDirectives(t *testing.T) {
	// A synthetic package: one file with directives on lines 3 and 7.
	fset := token.NewFileSet()
	src := `package p

//lint:ignore floatcmp exact replay comparison
var a = 1

func f() {
	//lint:ignore simdeterminism,hotpathalloc documented twice over
	_ = a
}

//lint:ignore all everything is fine here
var b = 2

//lint:ignore floatcmp
var missingReason = 3
`
	f, err := parseSrc(fset, "p.go", src)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Fset: fset, Path: "x/p", Files: f}

	sups := suppressions(pkg)
	byLine := sups["p.go"]
	if byLine == nil {
		t.Fatal("no suppressions collected")
	}

	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{3, "floatcmp", true},
		{3, "simdeterminism", false},
		{7, "simdeterminism", true},
		{7, "hotpathalloc", true},
		{7, "floatcmp", false},
		{11, "floatcmp", true}, // "all" covers every analyzer
		{11, "anything", true},
	}
	for _, c := range cases {
		s, ok := byLine[c.line]
		if !ok {
			if c.want {
				t.Errorf("line %d: no directive found, want coverage of %s", c.line, c.analyzer)
			}
			continue
		}
		if got := s.covers(c.analyzer); got != c.want {
			t.Errorf("line %d covers(%s) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}

	// A directive without a reason is not a directive at all.
	if _, ok := byLine[14]; ok {
		t.Error("reasonless //lint:ignore should not register")
	}

	// Filtering: a diagnostic on the directive line and on the next line
	// are both covered; two lines below is not. The directive that fired
	// is marked used, the others stay unused for the audit.
	diags := []Diagnostic{
		{Analyzer: "floatcmp", Pos: token.Position{Filename: "p.go", Line: 4}},
		{Analyzer: "floatcmp", Pos: token.Position{Filename: "p.go", Line: 5}},
	}
	out := filterSuppressed(sups, diags)
	if len(out) != 1 || out[0].Pos.Line != 5 {
		t.Errorf("filterSuppressed kept %v, want only the line-5 finding", out)
	}
	if !byLine[3].used {
		t.Error("line-3 directive suppressed the line-4 finding but is not marked used")
	}
	if byLine[7].used || byLine[11].used {
		t.Error("directives that matched nothing must stay unused")
	}
}

func TestPathHasAny(t *testing.T) {
	cases := []struct {
		path string
		frag string
		want bool
	}{
		{"raxmlcell/internal/sim", "internal/sim", true},
		{"raxmlcell/internal/sim/sub", "internal/sim", true},
		{"internal/sim", "internal/sim", true},
		{"raxmlcell/internal/simulator", "internal/sim", false},
		{"raxmlcell/internal/mw [raxmlcell/internal/mw.test]", "internal/mw", true},
		{"other/internal/cellars", "internal/cell", false},
	}
	for _, c := range cases {
		if got := pathHasAny(c.path, c.frag); got != c.want {
			t.Errorf("pathHasAny(%q, %q) = %v, want %v", c.path, c.frag, got, c.want)
		}
	}
}
