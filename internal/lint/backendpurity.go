package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BackendPurity enforces the Backend concurrency contract (backend.go):
// one backend value serves every kernel context of an engine, and with
// Config.Threads > 1 several pattern ranges of a single call run
// concurrently over the SAME Ctx. A *Range method is therefore allowed to
// write only memory that is private to its range or its fan-out slot:
//
//   - elements of the operand slices (op.dst[k], op.perSite[pat], ...) —
//     ranges partition the pattern axis, so element writes are disjoint;
//   - elements reached through Ctx fields (c.sumTab[k],
//     c.tiles[slot].buf[i], ...) — the same disjointness, or scratch
//     indexed by the method's slot argument;
//   - its own locals, including local aliases of the above.
//
// Everything else is shared state and a data race waiting for a second
// thread:
//
//   - any store whose path passes through the Engine (c.eng.f = v,
//     e.tbl[i] = v): the engine is shared by every context and every
//     worker;
//   - reassigning or accumulating into a Ctx field directly
//     (c.sumTab = make(...), c.underflow++, c.meter.muls += n): the Ctx
//     is shared by all ranges of the call, which is exactly why the
//     kernels return their statistics in combineStats/evalPart/... values
//     for the driver to fold;
//   - stores to package-level variables.
//
// The check is interprocedural within the package: a helper that performs
// such a write taints every caller (via the same fixed point nondettaint
// uses), so hiding the store one call deep — backend method calls
// c.ensureScratch(), which reassigns c.sumTab — is flagged at the call
// site in the *Range method with the witness chain.
var BackendPurity = &Analyzer{
	Name: "backendpurity",
	Doc:  "Backend *Range methods may write only operand slices and slot scratch; stores to Engine/Ctx/shared state are races",
	Match: func(pkgPath string) bool {
		return pathHasAny(pkgPath, likelihoodPkg)
	},
	Run: runBackendPurity,
}

// rangeMethodNames are the Backend interface's per-range kernel entry
// points; the purity rule applies to any receiver method with one of
// these names (the interface itself is unexported, so name matching is
// the stable anchor — and keeps the golden mini-package honest).
var rangeMethodNames = map[string]bool{
	"combineRange":  true,
	"evaluateRange": true,
	"sumTableRange": true,
	"newtonRange":   true,
}

var backendPurityConfig = &TaintConfig{
	// Package-local: the Backend seam is one package; no facts needed.
	Fact:         "",
	DirectReason: directImpureWriteReason,
}

func runBackendPurity(pass *Pass) {
	taint := Propagate(pass, backendPurityConfig)

	for _, node := range pass.CallGraph().Order {
		if node.Decl.Recv == nil || !rangeMethodNames[node.Fn.Name()] {
			continue
		}
		// Direct violating writes, at the write itself.
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if reason, ok := directImpureWriteReason(pass.Info, n); ok {
				pass.Reportf(n.Pos(),
					"%s in %s: ranges of one call run concurrently on a shared Ctx — write only operand slices and slot scratch, and return statistics in the part value", reason, node.Fn.Name())
			}
			return true
		})
		// Laundered writes, at the call site into the impure helper.
		for _, site := range node.Calls {
			if site.Callee.Pkg() != pass.Pkg || rangeMethodNames[site.Callee.Name()] {
				continue // range methods are checked on their own lines
			}
			if reason := taint.Reason(site.Callee); reason != "" {
				pass.Reportf(site.Call.Pos(),
					"%s calls %s, which %s; ranges of one call run concurrently on a shared Ctx — keep helpers reachable from *Range methods write-free", node.Fn.Name(), calleeLabel(site.Callee), reason)
			}
		}
	}
}

// directImpureWriteReason reports whether n is a store to shared state
// under the Backend purity rule. It is the DirectReason of the purity
// taint, so it must describe the write tersely ("reassigns Ctx field
// sumTab") for witness chains.
func directImpureWriteReason(info *types.Info, n ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok == token.DEFINE {
			return "", false // := creates locals; selectors cannot appear on its LHS
		}
		for _, lhs := range n.Lhs {
			if r, ok := impureStoreTarget(info, lhs); ok {
				return r, true
			}
		}
	case *ast.IncDecStmt:
		return impureStoreTarget(info, n.X)
	}
	return "", false
}

// impureStoreTarget classifies an assignment target. The spine of the
// LHS expression is walked outside-in:
//
//   - if any receiver along the spine is Engine-typed, the store mutates
//     engine memory (shared by every context) — impure, even through an
//     index (e.eng.tbl[i] = v writes shared memory);
//   - if the outermost target is a selector chain rooted at a Ctx with NO
//     index expression in between, the store replaces or accumulates into
//     a Ctx field itself (c.sumTab = v, c.underflow++, c.meter.muls += n)
//     — impure. With an index on the path (c.sumTab[k] = v,
//     c.tiles[slot].buf[i] = v) the target is an element of scratch the
//     range or slot owns — pure;
//   - if the spine roots at a package-level variable, the store is to
//     process-global state — impure.
func impureStoreTarget(info *types.Info, lhs ast.Expr) (string, bool) {
	indexed := false
	for e := lhs; ; {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			indexed = true
			e = t.X
		case *ast.SelectorExpr:
			sel, ok := info.Selections[t]
			if !ok || sel.Kind() != types.FieldVal {
				return "", false
			}
			if isEngineType(sel.Recv()) {
				return "writes Engine state through field " + sel.Obj().Name(), true
			}
			if !indexed && isCtxType(sel.Recv()) {
				return "writes Ctx field " + t.Sel.Name + " directly", true
			}
			e = t.X
		case *ast.Ident:
			if v, ok := info.Uses[t].(*types.Var); ok && v.Pkg() != nil &&
				v.Parent() == v.Pkg().Scope() {
				return "writes package-level variable " + t.Name, true
			}
			return "", false
		default:
			return "", false
		}
	}
}

// isCtxType reports whether t is likelihood.Ctx or a pointer to it.
func isCtxType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Ctx" && obj.Pkg() != nil && pathHasAny(obj.Pkg().Path(), likelihoodPkg)
}
