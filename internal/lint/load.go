package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps` over the patterns and returns the
// decoded packages in the tool's dependency (depth-first post-) order:
// every package appears after all of its dependencies, which is exactly
// the order the interprocedural fact passes need.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Export,Standard,DepOnly,GoFiles,CgoFiles,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	return parseGoList(bytes.NewReader(out))
}

// parseGoList decodes a `go list -json` stream, preserving order.
func parseGoList(r io.Reader) ([]*listedPackage, error) {
	var pkgs []*listedPackage
	dec := json.NewDecoder(r)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		p := lp
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load resolves the package patterns (e.g. "./...") with the go tool,
// building export data for every dependency, and returns type-checked
// packages ready for analysis, in dependency order. dir is the working
// directory for the go invocation ("" = current).
//
// Two kinds of package come back: the non-standard packages matched by
// the patterns, and — marked FactsOnly — their non-standard dependencies
// outside the patterns, which the interprocedural analyzers still walk so
// cross-package facts exist wherever calls can lead. Standard-library
// dependencies are never type-checked from source: the taint analyzers
// recognize stdlib nondeterminism directly at the call site instead.
//
// The loader leans on `go list -export -deps`: the go command compiles each
// package once into the build cache and reports the export-data file, which
// is exactly what the type checker needs to resolve imports without
// re-typechecking the world from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}

	byPath := make(map[string]*listedPackage, len(listed))
	for _, p := range listed {
		byPath[p.ImportPath] = p
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range listed {
		if t.Standard {
			continue
		}
		if t.Error != nil {
			if t.DepOnly {
				continue // a broken dependency surfaces on its importer
			}
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 && len(t.CgoFiles) == 0 {
			continue
		}
		var filenames []string
		for _, f := range append(append([]string{}, t.GoFiles...), t.CgoFiles...) {
			if !filepath.IsAbs(f) {
				f = filepath.Join(t.Dir, f)
			}
			filenames = append(filenames, f)
		}
		files, err := ParseFiles(fset, filenames)
		if err != nil {
			return nil, err
		}
		imp := ExportDataImporter(fset, t.ImportMap, func(path string) (string, error) {
			dep, ok := byPath[path]
			if !ok || dep.Export == "" {
				return "", fmt.Errorf("no export data for %q", path)
			}
			return dep.Export, nil
		})
		pkg, err := TypeCheck(fset, t.ImportPath, "", files, imp)
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = t.DepOnly
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportDataImporter builds a types.Importer that resolves source-level
// import paths through importMap and reads gc export data located by
// exportFile. Both the standalone loader and the vettool mode use it; they
// differ only in where the export files come from (go list vs. vet.cfg).
func ExportDataImporter(fset *token.FileSet, importMap map[string]string, exportFile func(path string) (string, error)) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, err := exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Analyze loads the patterns and runs the full suite — including the
// cross-package fact propagation and the unused-suppression audit — and
// returns every surviving diagnostic, sorted, with filenames shortened
// relative to dir.
func Analyze(dir string, patterns ...string) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	facts := NewFactSet()
	var diags []Diagnostic
	for _, pkg := range pkgs { // dependency order: facts flow forward
		pkg.Imported = facts
		for _, d := range RunWithAudit(pkg, All()) {
			d.Pos.Filename = shortenPath(d.Pos.Filename, dir)
			diags = append(diags, d)
		}
		facts.Merge(pkg.Exported)
	}
	sortDiagnostics(diags)
	return diags, nil
}

// Main is the standalone entry point shared by cmd/raxmlvet: load the
// patterns, run the full suite, print findings, and report whether any
// finding was produced. With jsonOut false, output lines are
// "file:line:col: message (analyzer)"; with jsonOut true, the findings
// are one stable, sorted JSON array of objects with analyzer / file /
// line / col / message fields (an empty run prints "[]"), ready for CI to
// turn into GitHub annotations.
func Main(w io.Writer, dir string, jsonOut bool, patterns ...string) (clean bool, err error) {
	diags, err := Analyze(dir, patterns...)
	if err != nil {
		return false, err
	}
	if jsonOut {
		if err := WriteJSON(w, diags); err != nil {
			return false, err
		}
		return len(diags) == 0, nil
	}
	for _, d := range diags {
		fmt.Fprintf(w, "%s\n", d.String())
	}
	return len(diags) == 0, nil
}

// jsonDiagnostic is the stable serialized form of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// WriteJSON writes the diagnostics as one indented JSON array in their
// given (already sorted) order. The field set is a stable interface for
// CI tooling; extend, never rename.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func shortenPath(filename, dir string) string {
	if dir == "" {
		dir, _ = os.Getwd()
	}
	if dir != "" {
		if rel, err := filepath.Rel(dir, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
	}
	return filename
}
