package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves the package patterns (e.g. "./...") with the go tool,
// building export data for every dependency, and returns the type-checked
// non-standard target packages ready for analysis. dir is the working
// directory for the go invocation ("" = current).
//
// The loader leans on `go list -export -deps`: the go command compiles each
// package once into the build cache and reports the export-data file, which
// is exactly what the type checker needs to resolve imports without
// re-typechecking the world from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Export,Standard,DepOnly,GoFiles,CgoFiles,ImportMap,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	byPath := make(map[string]*listedPackage)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		p := lp
		byPath[p.ImportPath] = &p
		if !p.Standard && !p.DepOnly {
			targets = append(targets, &p)
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 && len(t.CgoFiles) == 0 {
			continue
		}
		var filenames []string
		for _, f := range append(append([]string{}, t.GoFiles...), t.CgoFiles...) {
			if !filepath.IsAbs(f) {
				f = filepath.Join(t.Dir, f)
			}
			filenames = append(filenames, f)
		}
		files, err := ParseFiles(fset, filenames)
		if err != nil {
			return nil, err
		}
		imp := ExportDataImporter(fset, t.ImportMap, func(path string) (string, error) {
			dep, ok := byPath[path]
			if !ok || dep.Export == "" {
				return "", fmt.Errorf("no export data for %q", path)
			}
			return dep.Export, nil
		})
		pkg, err := TypeCheck(fset, t.ImportPath, "", files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// ExportDataImporter builds a types.Importer that resolves source-level
// import paths through importMap and reads gc export data located by
// exportFile. Both the standalone loader and the vettool mode use it; they
// differ only in where the export files come from (go list vs. vet.cfg).
func ExportDataImporter(fset *token.FileSet, importMap map[string]string, exportFile func(path string) (string, error)) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, err := exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Main is the standalone entry point shared by cmd/raxmlvet: load the
// patterns, run the full suite, print findings, and report whether any
// finding was produced. Output lines are "file:line:col: message (analyzer)".
func Main(w io.Writer, dir string, patterns ...string) (clean bool, err error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return false, err
	}
	clean = true
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, All()) {
			clean = false
			fmt.Fprintf(w, "%s\n", shortenDiag(d, dir))
		}
	}
	return clean, nil
}

func shortenDiag(d Diagnostic, dir string) string {
	if dir == "" {
		dir, _ = os.Getwd()
	}
	if dir != "" {
		if rel, err := filepath.Rel(dir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
	}
	return d.String()
}
