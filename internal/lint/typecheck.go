package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
)

// ParseFiles parses the given Go source files with comments (required for
// //lint:ignore directives) into the file set.
func ParseFiles(fset *token.FileSet, filenames []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// TypeCheck type-checks the parsed files as the package at importPath,
// resolving imports through imp, and returns a Package ready for Run.
// goVersion may be empty (language version of the toolchain).
func TypeCheck(fset *token.FileSet, importPath, goVersion string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	var firstErr error
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if firstErr != nil {
		err = firstErr
	}
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", importPath, err)
	}
	return &Package{Fset: fset, Path: importPath, Pkg: pkg, Info: info, Files: files}, nil
}
