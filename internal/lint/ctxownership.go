package lint

import (
	"go/ast"
	"go/types"
)

// CtxOwnership enforces the kernel-context ownership discipline behind
// task-level parallelism (PR 5/6).
//
// A likelihood.Ctx is one worker's private kernel scratch; a
// likelihood.Views is a lazy-SPR vector cache bound to exactly one Ctx.
// Neither is locked: correctness under the Pool rests entirely on the
// convention that worker w touches only Pool.Ctx(w) and views built on
// it, with Pool.Run's contiguous-block partition as the only fan-out.
// Two escapes break the convention and are flagged:
//
//   - capture by goroutine: a go statement whose call (function, closure
//     body or arguments) references a Ctx or Views value spawns a
//     goroutine outside the pool's partition — nothing then serializes it
//     against the context's real owner. Fan-out must go through Pool.Run,
//     which hands each goroutine its own worker index.
//   - stores that widen reachability: a Ctx/Views written into a
//     package-level variable, into a field of the shared Engine (only the
//     engine's own primary-context slot ctx0, set by the likelihood
//     package, is sanctioned), or into a field of a struct declared in
//     another package. A context stored where code of another package —
//     and so, potentially, another worker's callback — can load it is no
//     longer single-owner. Structs of the using package itself (e.g.
//     search's per-worker views table, indexed by Pool worker) stay
//     legal: the package that declares the struct owns its access
//     discipline, and the go-capture rule still polices its fan-outs.
//
// The analysis is syntactic and intraprocedural by design; the
// cross-package half of the invariant rides on type identity (the owned
// types and the Engine are recognized across package boundaries), which
// is what makes the multi-package golden case interprocedural.
var CtxOwnership = &Analyzer{
	Name: "ctxownership",
	Doc:  "forbid likelihood.Ctx/Views escaping their pool worker: goroutine capture and shared-reachable stores",
	Match: func(pkgPath string) bool {
		return pathHasAny(pkgPath,
			"internal/likelihood", "internal/search", "internal/core", "cmd")
	},
	Run: runCtxOwnership,
}

// likelihoodPkg is the path fragment identifying the kernel package that
// declares the owned types and the shared Engine.
const likelihoodPkg = "internal/likelihood"

// ownedTypeName reports whether t is (or points to, or slices) one of the
// per-worker owned types, returning its short name.
func ownedTypeName(t types.Type) (string, bool) {
	switch u := t.(type) {
	case *types.Pointer:
		return ownedTypeName(u.Elem())
	case *types.Slice:
		return ownedTypeName(u.Elem())
	case *types.Named:
		obj := u.Obj()
		if obj.Pkg() == nil || !pathHasAny(obj.Pkg().Path(), likelihoodPkg) {
			return "", false
		}
		if n := obj.Name(); n == "Ctx" || n == "Views" {
			return n, true
		}
	}
	return "", false
}

// isEngineType reports whether t is likelihood.Engine or a pointer to it.
func isEngineType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Engine" && obj.Pkg() != nil && pathHasAny(obj.Pkg().Path(), likelihoodPkg)
}

func runCtxOwnership(pass *Pass) {
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoCapture(pass, n)
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					rhs := lhs // x, err := f(): judge by the LHS's own type
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					}
					checkOwnedStore(pass, lhs, rhs)
				}
			case *ast.ValueSpec:
				checkOwnedGlobal(pass, n)
			case *ast.CompositeLit:
				checkOwnedCompositeLit(pass, n)
			}
			return true
		})
	}
}

// checkGoCapture flags any reference to an owned value anywhere in a go
// statement's call: closure bodies, the called expression, and arguments.
func checkGoCapture(pass *Pass, g *ast.GoStmt) {
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if name, owned := ownedTypeName(obj.Type()); owned {
			pass.Reportf(id.Pos(),
				"likelihood.%s %q is referenced by a raw go statement; per-worker kernel state must fan out through Pool.Run, which owns the worker partition", name, id.Name)
		}
		return true
	})
}

// checkOwnedStore flags stores of owned values that widen who can reach
// them: package-level variables, shared Engine fields (other than the
// likelihood package's own primary slot), and fields of foreign structs.
func checkOwnedStore(pass *Pass, lhs, rhs ast.Expr) {
	tv, ok := pass.Info.Types[rhs]
	if !ok || tv.Type == nil {
		return
	}
	name, owned := ownedTypeName(tv.Type)
	if !owned {
		return
	}

	// Unwrap index/star layers: a store into x.f[i] is a store governed
	// by field f's declaring struct.
	base := lhs
	for {
		switch b := base.(type) {
		case *ast.IndexExpr:
			base = b.X
			continue
		case *ast.StarExpr:
			base = b.X
			continue
		case *ast.ParenExpr:
			base = b.X
			continue
		}
		break
	}

	switch b := base.(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[b]
		if obj == nil {
			obj = pass.Info.Defs[b]
		}
		if v, isVar := obj.(*types.Var); isVar && v.Parent() == pass.Pkg.Scope() {
			pass.Reportf(lhs.Pos(),
				"likelihood.%s stored in package-level variable %q; a context reachable from every goroutine has no owner — thread it through the Pool worker instead", name, b.Name)
		}
	case *ast.SelectorExpr:
		sel, ok := pass.Info.Selections[b]
		if !ok || sel.Kind() != types.FieldVal {
			return
		}
		field := sel.Obj()
		if isEngineType(sel.Recv()) {
			if field.Name() == "ctx0" && pathHasAny(pass.Path, likelihoodPkg) {
				return // the engine's own primary-context slot
			}
			pass.Reportf(lhs.Pos(),
				"likelihood.%s stored into shared Engine field %q; every worker context reads the engine, so the store leaks one worker's scratch to all of them (only the primary slot ctx0 lives there)", name, field.Name())
			return
		}
		if field.Pkg() != nil && field.Pkg() != pass.Pkg {
			pass.Reportf(lhs.Pos(),
				"likelihood.%s stored into field %s of %s, a struct of another package; ownership of per-worker kernel state cannot be audited across that boundary — keep it in a struct this package declares", name, field.Name(), types.TypeString(sel.Recv(), types.RelativeTo(pass.Pkg)))
		}
	}
}

// checkOwnedGlobal flags package-level variable declarations of owned
// type: `var sharedCtx *likelihood.Ctx` invites every goroutine in.
func checkOwnedGlobal(pass *Pass, spec *ast.ValueSpec) {
	for _, nm := range spec.Names {
		obj, ok := pass.Info.Defs[nm].(*types.Var)
		if !ok || obj.Parent() != pass.Pkg.Scope() {
			continue
		}
		if name, owned := ownedTypeName(obj.Type()); owned {
			pass.Reportf(nm.Pos(),
				"package-level variable %q holds a likelihood.%s; per-worker kernel state must not be globally reachable", nm.Name, name)
		}
	}
}

// checkOwnedCompositeLit applies the foreign-field rule to composite
// literals: Foreign{F: ctx} stores just like foreign.F = ctx.
func checkOwnedCompositeLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg() == pass.Pkg {
		return
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return
	}
	for _, elt := range lit.Elts {
		val := elt
		if kv, isKV := elt.(*ast.KeyValueExpr); isKV {
			val = kv.Value
		}
		vtv, ok := pass.Info.Types[val]
		if !ok || vtv.Type == nil {
			continue
		}
		if name, owned := ownedTypeName(vtv.Type); owned {
			pass.Reportf(val.Pos(),
				"likelihood.%s stored into a composite literal of foreign struct %s; keep per-worker kernel state in structs this package declares", name, named.Obj().Name())
		}
	}
}
