package lint

import (
	"go/ast"
)

// InvalidatePair enforces the incremental-cache coherence rule from PR 1.
//
// likelihood.Engine caches partial likelihood vectors keyed by ring-record
// orientation. Topology edits made through phylotree.Tree fire branch-change
// hooks (AttachTree), and MakeNewz invalidates its own branch — but a
// *direct* branch-length write via Node.SetZ bypasses both. Any search-layer
// code (internal/search, internal/core) that calls SetZ must therefore
// follow it, in the same function, with an Engine.Invalidate(node) or
// Engine.InvalidateAll() call, or cached vectors silently go stale and
// -incremental returns wrong likelihoods.
//
// The check is positional: a SetZ call is flagged unless an
// Invalidate/InvalidateAll method call appears later in the same enclosing
// function declaration. Paths where no engine can be attached (e.g. tree
// construction before an engine exists) should carry a //lint:ignore
// invalidatepair directive with the justification.
var InvalidatePair = &Analyzer{
	Name: "invalidatepair",
	Doc:  "require Engine.Invalidate after direct SetZ branch writes in the search layer",
	Match: func(pkgPath string) bool {
		return pathHasAny(pkgPath, "internal/search", "internal/core")
	},
	Run: runInvalidatePair,
}

func runInvalidatePair(pass *Pass) {
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkInvalidatePairs(pass, fn)
			}
		}
	}
}

func checkInvalidatePairs(pass *Pass, fn *ast.FuncDecl) {
	type setzCall struct {
		call *ast.CallExpr
	}
	var setzs []setzCall
	var invalidatePositions []int // token.Pos offsets of Invalidate/InvalidateAll calls

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isMethodCall(pass.Info, call, "SetZ"):
			setzs = append(setzs, setzCall{call})
		case isMethodCall(pass.Info, call, "Invalidate", "InvalidateAll"):
			invalidatePositions = append(invalidatePositions, int(call.Pos()))
		}
		return true
	})

	for _, s := range setzs {
		paired := false
		for _, p := range invalidatePositions {
			if p > int(s.call.Pos()) {
				paired = true
				break
			}
		}
		if !paired {
			pass.Reportf(s.call.Pos(),
				"direct SetZ bypasses the tree's branch-change hooks and is not followed by Engine.Invalidate/InvalidateAll in %s; the incremental cache would serve stale vectors", fn.Name.Name)
		}
	}
}
