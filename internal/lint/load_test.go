package lint

import (
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func TestParseGoListOrderAndFields(t *testing.T) {
	// Two concatenated JSON objects, exactly as `go list -json` streams
	// them: dependency first, dependent second. Order must be preserved —
	// the fact passes rely on it.
	const stream = `
{
	"Dir": "/src/dep",
	"ImportPath": "example.com/dep",
	"Export": "/cache/dep.a",
	"DepOnly": true,
	"GoFiles": ["dep.go"]
}
{
	"Dir": "/src/top",
	"ImportPath": "example.com/top",
	"GoFiles": ["top.go", "extra.go"],
	"ImportMap": {"dep": "example.com/dep"}
}
`
	pkgs, err := parseGoList(strings.NewReader(stream))
	if err != nil {
		t.Fatalf("parseGoList: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	if pkgs[0].ImportPath != "example.com/dep" || !pkgs[0].DepOnly || pkgs[0].Export != "/cache/dep.a" {
		t.Errorf("dep package decoded wrong: %+v", pkgs[0])
	}
	if pkgs[1].ImportPath != "example.com/top" || len(pkgs[1].GoFiles) != 2 ||
		pkgs[1].ImportMap["dep"] != "example.com/dep" {
		t.Errorf("top package decoded wrong: %+v", pkgs[1])
	}
}

func TestParseGoListMalformed(t *testing.T) {
	cases := []string{
		`{"ImportPath": "a"} garbage-after-object`,
		`{"ImportPath": `,
		`[1, 2, 3]`,
	}
	for _, c := range cases {
		if _, err := parseGoList(strings.NewReader(c)); err == nil {
			t.Errorf("parseGoList(%q): expected error, got nil", c)
		}
	}
}

func TestParseGoListEmpty(t *testing.T) {
	pkgs, err := parseGoList(strings.NewReader(""))
	if err != nil {
		t.Fatalf("empty stream: %v", err)
	}
	if len(pkgs) != 0 {
		t.Fatalf("empty stream yielded %d packages", len(pkgs))
	}
}

// TestExportDataImporterMissing covers the loader's missing-export-data
// path: the importer must surface the lookup error, not panic or return
// an empty package.
func TestExportDataImporterMissing(t *testing.T) {
	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, map[string]string{"vendored/x": "example.com/x"},
		func(path string) (string, error) {
			if path != "example.com/x" {
				t.Errorf("exportFile called with %q, want the mapped path", path)
			}
			return "", errNoExport
		})
	if _, err := imp.Import("vendored/x"); err == nil ||
		!strings.Contains(err.Error(), "no export data") {
		t.Fatalf("Import: err = %v, want the lookup error", err)
	}
}

var errNoExport = &noExportErr{}

type noExportErr struct{}

func (*noExportErr) Error() string { return "no export data for test" }

// TestExportDataImporterUnreadableFile covers the second failure layer:
// the lookup resolves but the export file does not exist.
func TestExportDataImporterUnreadableFile(t *testing.T) {
	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, nil, func(path string) (string, error) {
		return "/nonexistent/raxmlvet-test.a", nil
	})
	if _, err := imp.Import("example.com/y"); err == nil {
		t.Fatal("Import of package with missing export file: expected error")
	}
}

func TestFactsRoundTrip(t *testing.T) {
	fs := NewFactSet()
	fs.Add("pkg.F", "nondet", "reads the wall clock via time.Now")
	fs.Add("(pkg.T).M", "nondet", "line one\nline two\twith tab")
	fs.Add("pkg.F", "nondet", "second value must lose") // first value wins
	fs.Add("pkg.A", "other", "")

	enc := fs.Encode()
	got, err := DecodeFacts(strings.NewReader(string(enc)))
	if err != nil {
		t.Fatalf("DecodeFacts(Encode()): %v", err)
	}
	if got.Len() != 3 {
		t.Fatalf("round trip: %d facts, want 3", got.Len())
	}
	if v, ok := got.Get("pkg.F", "nondet"); !ok || v != "reads the wall clock via time.Now" {
		t.Errorf("pkg.F fact = %q, %v", v, ok)
	}
	if v, ok := got.Get("(pkg.T).M", "nondet"); !ok || v != "line one\nline two\twith tab" {
		t.Errorf("escaped fact corrupted: %q, %v", v, ok)
	}
	if v, ok := got.Get("pkg.A", "other"); !ok || v != "" {
		t.Errorf("empty-value fact = %q, %v", v, ok)
	}

	// Encoding is deterministic: a merged copy re-encodes identically.
	merged := NewFactSet()
	merged.Merge(got)
	if string(merged.Encode()) != string(enc) {
		t.Error("Encode not stable across Merge round trip")
	}
}

func TestDecodeFactsRejectsForeignFormats(t *testing.T) {
	cases := []string{
		"",                              // empty input
		"raxmlvet: no facts\n",          // pre-fact placeholder format
		"raxmlvet-facts/999\na\tb\tc\n", // future version
		factsHeader + "\nonly\ttwo\n",   // malformed fact line
	}
	for _, c := range cases {
		if _, err := DecodeFacts(strings.NewReader(c)); err == nil {
			t.Errorf("DecodeFacts(%q): expected error", c)
		}
	}
}

// TestObjectKeyStripsTestVariant checks the vet/go-list test-variant
// suffix handling: a fact exported while analyzing "pkg [pkg.test]" must
// key identically to the plain package, for both functions and methods
// (where the bracketed suffix lands inside the receiver parentheses).
func TestObjectKeyStripsTestVariant(t *testing.T) {
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	plain := types.NewPackage("example.com/p", "p")
	variant := types.NewPackage("example.com/p [example.com/p.test]", "p")

	fPlain := types.NewFunc(token.NoPos, plain, "F", sig)
	fVariant := types.NewFunc(token.NoPos, variant, "F", sig)
	if ObjectKey(fPlain) != "example.com/p.F" {
		t.Errorf("plain key = %q", ObjectKey(fPlain))
	}
	if ObjectKey(fVariant) != ObjectKey(fPlain) {
		t.Errorf("test-variant key %q != plain key %q", ObjectKey(fVariant), ObjectKey(fPlain))
	}

	mkMethod := func(pkg *types.Package) *types.Func {
		named := types.NewNamed(types.NewTypeName(token.NoPos, pkg, "T", nil), types.NewStruct(nil, nil), nil)
		recv := types.NewVar(token.NoPos, pkg, "t", types.NewPointer(named))
		msig := types.NewSignatureType(recv, nil, nil, nil, nil, false)
		return types.NewFunc(token.NoPos, pkg, "M", msig)
	}
	mPlain, mVariant := mkMethod(plain), mkMethod(variant)
	if ObjectKey(mPlain) != "(*example.com/p.T).M" {
		t.Errorf("plain method key = %q", ObjectKey(mPlain))
	}
	if ObjectKey(mVariant) != ObjectKey(mPlain) {
		t.Errorf("test-variant method key %q != plain %q", ObjectKey(mVariant), ObjectKey(mPlain))
	}
}

func TestWriteJSONStable(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Errorf("empty diagnostics serialize as %q, want []", b.String())
	}

	b.Reset()
	diags := []Diagnostic{
		{Analyzer: "nondettaint", Pos: token.Position{Filename: "a.go", Line: 3, Column: 7}, Message: "m1"},
		{Analyzer: "floatcmp", Pos: token.Position{Filename: "b.go", Line: 1, Column: 1}, Message: "m2"},
	}
	if err := WriteJSON(&b, diags); err != nil {
		t.Fatal(err)
	}
	const want = `[
  {
    "analyzer": "nondettaint",
    "file": "a.go",
    "line": 3,
    "col": 7,
    "message": "m1"
  },
  {
    "analyzer": "floatcmp",
    "file": "b.go",
    "line": 1,
    "col": 1,
    "message": "m2"
  }
]
`
	if b.String() != want {
		t.Errorf("WriteJSON output:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestShortenPath(t *testing.T) {
	if got := shortenPath("/work/repo/internal/x.go", "/work/repo"); got != "internal/x.go" {
		t.Errorf("shortenPath = %q", got)
	}
	if got := shortenPath("/elsewhere/y.go", "/work/repo"); got != "/elsewhere/y.go" {
		t.Errorf("outside-dir path mangled: %q", got)
	}
}
