package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathAlloc polices the likelihood inner kernels.
//
// The per-pattern loops of newview/combine, makenewz and evaluate are the
// paper's hot 90%: they run once per alignment pattern per node visit, so a
// single heap allocation or fmt boxing inside them multiplies into millions
// of allocations per search. Likewise, the kernels must call the engine's
// configured exponential (Engine.expFn, which Config.SDKExp points at
// FastExp) rather than math.Exp directly, or the SDK-exp instruction-mix
// experiments measure the wrong code.
//
// The search hot loop is in scope too: an SPR round prunes every subtree
// and scores every regraft candidate, so a slice reallocated per round (the
// candidate list, the score table) churns the heap tens of thousands of
// times per inference. Those buffers belong on the per-search context
// (searchCtx), reused across rounds.
//
// The compute backends (backend_scalar.go, backend_batched.go) are the
// same hot 90% behind an interface: their range methods (combineRange,
// evaluateRange, sumTableRange, newtonRange) and tile helpers run per
// pattern block, so the fragments below include tile/sumtable/newton to
// keep every backend implementation in scope.
//
// The observability helpers ride the same loops: Histogram.Observe and the
// kernel-observer adapter run once per kernel call, FlightRecorder.Record
// runs on every supervision event, and the span helpers bracket every
// round and candidate batch. An allocation in any of them silently taxes
// whatever hot path they instrument — the whole point of the obs v2 design
// is that instrumentation must be free — so internal/obs is in scope and
// the fragments include observe/record/span.
//
// The topology-memo probe path joined the same loops: every SPR/NNI
// candidate is hashed (TopoHasher edge terms, PruneScope.CandidateHash)
// and probed against the memo before — or instead of — being scored, so
// an allocation in the hashing or probing helpers taxes every candidate
// whether or not the memo hits. internal/phylotree is in scope and the
// fragments include memo/hash/probe.
//
// Inside functions whose name contains combine/newview/makenewz/evaluate/
// fastexp/spr/nni/insertion/tile/sumtable/newton/observe/record/span/
// memo/hash/probe (case-insensitive), the analyzer reports:
//
//   - make(), append(), new() and slice/map composite literals inside any
//     loop — preallocate scratch buffers on the Engine (kernels) or the
//     searchCtx (search rounds) instead;
//   - the same allocations inside a nested func literal: kernel closures
//     run once per Newton iteration or per pattern range, so their
//     allocations are per-iteration too;
//   - fmt.* calls inside loops (interface boxing and formatting);
//   - math.Exp calls anywhere in the kernel.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "report per-pattern-loop allocations and raw math.Exp in the likelihood kernels, search rounds and obs hot-path helpers",
	Match: func(pkgPath string) bool {
		return pathHasAny(pkgPath, "internal/likelihood", "internal/search", "internal/obs", "internal/phylotree")
	},
	Run: runHotPathAlloc,
}

var hotFuncFragments = []string{"combine", "newview", "makenewz", "evaluate", "fastexp", "spr", "nni", "insertion", "tile", "sumtable", "newton", "observe", "record", "span", "memo", "hash", "probe"}

func isHotFuncName(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range hotFuncFragments {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

func runHotPathAlloc(pass *Pass) {
	for _, f := range pass.NonTestFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotFuncName(fn.Name.Name) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
}

// checkHotFunc walks one kernel function tracking loop and closure nesting.
func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	var walk func(n ast.Node, inLoop, inClosure bool)
	walk = func(n ast.Node, inLoop, inClosure bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			walkChildren(n, func(c ast.Node) { walk(c, true, inClosure) })
			return
		case *ast.RangeStmt:
			walkChildren(n, func(c ast.Node) { walk(c, true, inClosure) })
			return
		case *ast.FuncLit:
			// A fresh closure resets the loop context but marks
			// everything inside as per-invocation.
			walkChildren(n, func(c ast.Node) { walk(c, false, true) })
			return
		case *ast.CallExpr:
			checkHotCall(pass, fn, n, inLoop, inClosure)
		case *ast.CompositeLit:
			if inLoop || inClosure {
				if tv, ok := pass.Info.Types[n]; ok {
					switch tv.Type.Underlying().(type) {
					case *types.Slice, *types.Map:
						pass.Reportf(n.Pos(),
							"slice/map literal allocates %s in kernel %s; hoist it out of the hot path",
							hotContext(inLoop), fn.Name.Name)
					}
				}
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, inLoop, inClosure) })
	}
	walkChildren(fn.Body, func(c ast.Node) { walk(c, false, false) })
}

func hotContext(inLoop bool) string {
	if inLoop {
		return "inside a per-pattern loop"
	}
	return "inside a per-iteration closure"
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, inLoop, inClosure bool) {
	// Raw math.Exp anywhere in a kernel bypasses Engine.expFn/FastExp.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj := pkgFuncObject(pass.Info, sel); obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "math":
				if obj.Name() == "Exp" {
					pass.Reportf(call.Pos(),
						"raw math.Exp in kernel %s bypasses the configured expFn/FastExp (Config.SDKExp); call the engine's exp instead", fn.Name.Name)
				}
			case "fmt":
				if inLoop {
					pass.Reportf(call.Pos(),
						"fmt.%s inside a per-pattern loop in kernel %s boxes its operands; format outside the hot path", obj.Name(), fn.Name.Name)
				}
			}
		}
		return
	}
	if !inLoop && !inClosure {
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make", "new":
				pass.Reportf(call.Pos(),
					"%s allocates %s in kernel %s; preallocate the buffer on the Engine and reuse it",
					b.Name(), hotContext(inLoop), fn.Name.Name)
			case "append":
				if inLoop {
					pass.Reportf(call.Pos(),
						"append inside a per-pattern loop in kernel %s may grow per iteration; preallocate with known capacity outside the loop", fn.Name.Name)
				}
			}
		}
	}
}

// walkChildren applies fn to each direct child node of n.
func walkChildren(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}
