// Package linttest is an analysistest-style golden harness for the
// raxmlvet analyzers: a testdata directory holds a small fake package,
// expected findings are written as trailing
//
//	// want "regexp" ["regexp" ...]
//
// comments on the offending lines, and Run fails the test on any
// mismatch in either direction. Suppressed findings (//lint:ignore) are
// filtered before matching, so the suppression path is golden-tested by
// writing a directive and no want comment.
//
// RunPkgs is the multi-package variant for the interprocedural
// analyzers: it type-checks several testdata packages in dependency
// order with a shared fact set — the same threading both raxmlvet
// drivers perform — so golden cases can launder a property through a
// helper package and expect the finding in the dependent one.
package linttest

import (
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"raxmlcell/internal/lint"
)

// The source importer re-typechecks stdlib dependencies from GOROOT
// source; it caches per instance, so all tests share one (guarded: the
// importer is not documented as concurrency-safe).
var (
	fset      = token.NewFileSet()
	impMu     sync.Mutex
	stdSource = importer.ForCompiler(fset, "source", nil)
)

// chainImporter resolves the already-typechecked testdata packages of a
// RunPkgs sequence first and falls back to stdlib source for the rest.
type chainImporter struct {
	local map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := c.local[path]; ok {
		return pkg, nil
	}
	impMu.Lock()
	defer impMu.Unlock()
	return stdSource.Import(path)
}

// PkgSpec names one package of a multi-package golden case: the .go
// files of Dir are analyzed under the pretend import path Path (so
// Analyzer.Match and import statements see realistic paths). Order
// matters: dependencies must precede their importers, exactly like the
// go list -deps order the standalone loader consumes.
type PkgSpec struct {
	Path string
	Dir  string
}

// Run analyzes the package formed by every .go file in dir under the
// pretend import path pkgPath and compares the diagnostics against the
// // want comments.
func Run(t *testing.T, a *lint.Analyzer, pkgPath, dir string) {
	t.Helper()
	RunPkgs(t, a, []PkgSpec{{Path: pkgPath, Dir: dir}})
}

// RunPkgs analyzes the given packages in order with one shared fact set
// and matches // want comments across all of them. Dependency packages
// are analyzed for real (not facts-only), so a golden case may also
// expect findings inside the helper package.
func RunPkgs(t *testing.T, a *lint.Analyzer, specs []PkgSpec) {
	t.Helper()

	imp := &chainImporter{local: make(map[string]*types.Package)}
	facts := lint.NewFactSet()
	var pkgs []*lint.Package
	var diags []lint.Diagnostic
	for _, spec := range specs {
		files, err := lint.ParseFiles(fset, goFilesIn(t, spec.Dir))
		if err != nil {
			t.Fatalf("parsing testdata: %v", err)
		}
		pkg, err := lint.TypeCheck(fset, spec.Path, "", files, imp)
		if err != nil {
			t.Fatalf("typechecking testdata: %v", err)
		}
		imp.local[spec.Path] = pkg.Pkg
		pkg.Imported = facts
		diags = append(diags, lint.Run(pkg, []*lint.Analyzer{a})...)
		facts.Merge(pkg.Exported)
		pkgs = append(pkgs, pkg)
	}

	matchWants(t, pkgs, diags)
}

// goFilesIn lists the non-directory .go files of dir, sorted.
func goFilesIn(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading testdata dir: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}
	sort.Strings(filenames)
	return filenames
}

// matchWants compares diagnostics against the want comments of every
// package, failing on mismatches in either direction.
func matchWants(t *testing.T, pkgs []*lint.Package, diags []lint.Diagnostic) {
	t.Helper()

	var wants []want
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	type key struct {
		file string
		line int
	}
	unmatched := make(map[key][]*want)
	for i := range wants {
		w := &wants[i]
		k := key{w.file, w.line}
		unmatched[k] = append(unmatched[k], w)
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range unmatched[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for _, ws := range unmatched {
		for _, w := range ws {
			if !w.used {
				t.Errorf("no diagnostic matched want %q at %s:%d", w.re, w.file, w.line)
			}
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

func collectWants(t *testing.T, pkg *lint.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRe.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, a := range args {
					pat := a[1]
					if a[2] != "" {
						pat = a[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
