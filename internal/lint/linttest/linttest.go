// Package linttest is an analysistest-style golden harness for the
// raxmlvet analyzers: a testdata directory holds a small fake package,
// expected findings are written as trailing
//
//	// want "regexp" ["regexp" ...]
//
// comments on the offending lines, and Run fails the test on any
// mismatch in either direction. Suppressed findings (//lint:ignore) are
// filtered before matching, so the suppression path is golden-tested by
// writing a directive and no want comment.
package linttest

import (
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"raxmlcell/internal/lint"
)

// The source importer re-typechecks stdlib dependencies from GOROOT
// source; it caches per instance, so all tests share one (guarded: the
// importer is not documented as concurrency-safe).
var (
	fset      = token.NewFileSet()
	impMu     sync.Mutex
	stdSource = importer.ForCompiler(fset, "source", nil)
)

type lockedImporter struct{}

func (lockedImporter) Import(path string) (*types.Package, error) {
	impMu.Lock()
	defer impMu.Unlock()
	return stdSource.Import(path)
}

// Run analyzes the package formed by every .go file in dir under the
// pretend import path pkgPath (so Analyzer.Match sees a realistic path)
// and compares the diagnostics against the // want comments.
func Run(t *testing.T, a *lint.Analyzer, pkgPath, dir string) {
	t.Helper()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading testdata dir: %v", err)
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}
	sort.Strings(filenames)

	files, err := lint.ParseFiles(fset, filenames)
	if err != nil {
		t.Fatalf("parsing testdata: %v", err)
	}
	pkg, err := lint.TypeCheck(fset, pkgPath, "", files, lockedImporter{})
	if err != nil {
		t.Fatalf("typechecking testdata: %v", err)
	}

	diags := lint.Run(pkg, []*lint.Analyzer{a})

	wants := collectWants(t, pkg)
	type key struct {
		file string
		line int
	}
	unmatched := make(map[key][]*want)
	for i := range wants {
		w := &wants[i]
		k := key{w.file, w.line}
		unmatched[k] = append(unmatched[k], w)
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range unmatched[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	for _, ws := range unmatched {
		for _, w := range ws {
			if !w.used {
				t.Errorf("no diagnostic matched want %q at %s:%d", w.re, w.file, w.line)
			}
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

func collectWants(t *testing.T, pkg *lint.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRe.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, a := range args {
					pat := a[1]
					if a[2] != "" {
						pat = a[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
