package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// This file is the reusable ownership/taint dataflow walker behind the
// interprocedural analyzers: a deterministic fixed-point propagation of
// per-function properties ("calls the wall clock", "ranges over a map")
// along the package-local call graph, seeded by direct inspection of each
// body and by imported cross-package facts.

// maxReasonLen caps witness chains so a deep laundering stack produces a
// readable diagnostic instead of a paragraph.
const maxReasonLen = 160

// truncateReason shortens a witness chain at a word-ish boundary.
func truncateReason(s string) string {
	if len(s) <= maxReasonLen {
		return s
	}
	return s[:maxReasonLen] + "..."
}

// directNondetReason inspects a single AST node for a direct source of
// nondeterminism — the same three sources simdeterminism bans at use
// sites — and returns a compact description for witness chains.
//
//   - a reference to a wall-clock time function (time.Now, time.Sleep,
//     timers): even passing time.Now as a value is a source, matching
//     simdeterminism's selector-level ban;
//   - a reference to a global math/rand or math/rand/v2 function (the
//     explicitly seeded constructors are fine);
//   - a range over a map or over a raw maps.Keys/Values/All iterator
//     (randomized order). The slices.Sorted(maps.Keys(m)) idiom never
//     ranges directly and stays clean.
func directNondetReason(info *types.Info, n ast.Node) (string, bool) {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		obj := pkgFuncObject(info, n)
		if obj == nil || obj.Pkg() == nil {
			return "", false
		}
		switch obj.Pkg().Path() {
		case "time":
			if forbiddenTimeFuncs[obj.Name()] {
				return "reads the wall clock via time." + obj.Name(), true
			}
		case "math/rand", "math/rand/v2":
			if _, isFunc := obj.(*types.Func); isFunc && !allowedRandFuncs[obj.Name()] {
				return "draws from the global math/rand source via rand." + obj.Name(), true
			}
		}
	case *ast.RangeStmt:
		return mapRangeReason(info, n)
	}
	return "", false
}

// mapRangeReason reports whether rng iterates in randomized map order.
func mapRangeReason(info *types.Info, rng *ast.RangeStmt) (string, bool) {
	if rng.X == nil {
		return "", false
	}
	if tv, ok := info.Types[rng.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			return "ranges over a map in randomized order", true
		}
	}
	if call, ok := rng.X.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if obj := pkgFuncObject(info, sel); obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "maps" &&
				(obj.Name() == "Keys" || obj.Name() == "Values" || obj.Name() == "All") {
				return "ranges over the unsorted maps." + obj.Name() + " iterator", true
			}
		}
	}
	return "", false
}

// TaintConfig parameterizes one fixed-point propagation over a package's
// call graph.
type TaintConfig struct {
	// Fact is the cross-package fact name carrying the property
	// ("nondet"). Imported facts under this name seed callee taint, and
	// every tainted declared function is exported under it. Empty means
	// the property is package-local: nothing is imported or exported.
	Fact string

	// DirectReason inspects one AST node of a function body and reports
	// a direct source of the property, with a witness description.
	DirectReason func(info *types.Info, n ast.Node) (string, bool)
}

// Taint is the result of a propagation: for each tainted declared
// function, the witness reason; and for each call site whose callee is
// tainted (locally or by imported fact), the callee and its reason.
type Taint struct {
	cfg     *TaintConfig
	pass    *Pass
	reasons map[*types.Func]string
}

// Reason returns the witness for fn — a function declared in this package
// or an imported one carrying the fact — or "" when fn is clean.
func (t *Taint) Reason(fn *types.Func) string {
	if r, ok := t.reasons[fn]; ok {
		return r
	}
	if t.cfg.Fact != "" && fn.Pkg() != nil && t.pass.Pkg != nil && fn.Pkg() != t.pass.Pkg {
		if v, ok := t.pass.ImportedFact(fn, t.cfg.Fact); ok {
			return v
		}
	}
	return ""
}

// Propagate runs the deterministic fixed point: seed every declared
// function with its first direct source (by position), then repeatedly
// fold in calls to tainted callees — local or imported — until nothing
// changes, always scanning functions in declaration order and call sites
// in source order so the recorded witness is reproducible. Every tainted
// function is exported as a fact for downstream packages.
func Propagate(pass *Pass, cfg *TaintConfig) *Taint {
	cg := pass.CallGraph()
	t := &Taint{cfg: cfg, pass: pass, reasons: make(map[*types.Func]string)}

	for _, node := range cg.Order {
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if _, done := t.reasons[node.Fn]; done {
				return false
			}
			if reason, ok := cfg.DirectReason(pass.Info, n); ok {
				t.reasons[node.Fn] = reason
			}
			return true
		})
	}

	for changed := true; changed; {
		changed = false
		for _, node := range cg.Order {
			if _, done := t.reasons[node.Fn]; done {
				continue
			}
			for _, site := range node.Calls {
				r := t.Reason(site.Callee)
				if r == "" {
					continue
				}
				t.reasons[node.Fn] = truncateReason(
					fmt.Sprintf("calls %s, which %s", calleeLabel(site.Callee), r))
				changed = true
				break
			}
		}
	}

	if cfg.Fact != "" {
		for _, node := range cg.Order {
			if r, ok := t.reasons[node.Fn]; ok {
				pass.ExportFact(node.Fn, cfg.Fact, r)
			}
		}
	}
	return t
}

// calleeLabel renders a callee compactly for witness chains: pkg.Func or
// (pkg.Recv).Method, with only the last path segment of the package.
func calleeLabel(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return types.TypeString(sig.Recv().Type(), types.RelativeTo(fn.Pkg())) + "." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}
