package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp forbids == and != on floating-point operands.
//
// Likelihood values, branch lengths and rate parameters travel through
// iterative optimizers; comparing them exactly is almost always a bug that
// works until a compiler, kernel variant or summation order changes the
// last bit. The cross-validation tests compare with tolerances, and
// non-test code should do the same.
//
// Allowlist (not reported):
//
//   - self-comparison (x != x): the standard NaN test;
//   - comparison against an exact zero constant: zero is a deliberate
//     sentinel (unset branch length, empty weight) and is exactly
//     representable;
//   - _test.go files: determinism tests deliberately compare bit-identical
//     replays.
//
// Deliberate exact comparisons elsewhere (e.g. "did the value change at
// all" cache checks) must carry a //lint:ignore floatcmp directive with the
// justification.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= on floating-point operands outside the NaN/zero allowlist",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloatExpr(pass.Info, bin.X) && !isFloatExpr(pass.Info, bin.Y) {
				return true
			}
			if types.ExprString(bin.X) == types.ExprString(bin.Y) {
				return true // NaN idiom: x != x
			}
			if isExactZero(pass.Info, bin.X) || isExactZero(pass.Info, bin.Y) {
				return true // exact-zero sentinel
			}
			pass.Reportf(bin.Pos(),
				"floating-point %s comparison; use a tolerance helper (or //lint:ignore floatcmp with a reason if bit-exact comparison is intended)", bin.Op)
			return true
		})
	}
}

func isFloatExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isExactZero(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}
