package lint

import (
	"bufio"
	"fmt"
	"go/types"
	"io"
	"sort"
	"strings"
)

// A FactSet is the cross-package side channel of the interprocedural
// analyzers: durable statements about package-level objects ("this function
// is nondeterministic because ..."), keyed by the object's fully qualified
// name and a short fact name, carrying a human-readable value (for the
// taint analyzers, the witness chain shown in diagnostics).
//
// Facts produced while analyzing a dependency are serialized into the
// package's .vetx file when raxmlvet runs under `go vet -vettool` (the go
// command threads the files through vetConfig.PackageVetx), and are kept
// in memory when the standalone go-list loader walks the module in
// dependency order. Both paths funnel into Package.Imported, so analyzers
// never care which loader ran them.
type FactSet struct {
	m map[factKey]string
}

type factKey struct {
	object string // qualified object key, see ObjectKey
	name   string // fact name, e.g. "nondet"
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{m: make(map[factKey]string)}
}

// Add records fact name with the given value on the object key. A repeated
// Add for the same (object, name) keeps the first value: fact computation
// is a fixed point and the first witness is as good as any later one.
func (fs *FactSet) Add(object, name, value string) {
	k := factKey{object, name}
	if _, ok := fs.m[k]; !ok {
		fs.m[k] = value
	}
}

// Get returns the value of fact name on the object key.
func (fs *FactSet) Get(object, name string) (string, bool) {
	v, ok := fs.m[factKey{object, name}]
	return v, ok
}

// Len reports the number of recorded facts.
func (fs *FactSet) Len() int { return len(fs.m) }

// Merge copies every fact of other into fs (first value wins, as in Add).
func (fs *FactSet) Merge(other *FactSet) {
	if other == nil {
		return
	}
	for _, k := range other.sortedKeys() {
		fs.Add(k.object, k.name, other.m[k])
	}
}

func (fs *FactSet) sortedKeys() []factKey {
	keys := make([]factKey, 0, len(fs.m))
	for k := range fs.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].object != keys[j].object {
			return keys[i].object < keys[j].object
		}
		return keys[i].name < keys[j].name
	})
	return keys
}

// factsHeader versions the serialized form; a vetx file written by an
// older raxmlvet (including the pre-fact "no facts" placeholder) is
// rejected by DecodeFacts and treated as empty by ReadFacts callers.
const factsHeader = "raxmlvet-facts/1"

// Encode serializes the set in a stable, sorted, line-oriented form:
//
//	raxmlvet-facts/1
//	<object>\t<name>\t<value>
//
// Values are newline-escaped so the format stays one fact per line.
func (fs *FactSet) Encode() []byte {
	var b strings.Builder
	b.WriteString(factsHeader)
	b.WriteByte('\n')
	for _, k := range fs.sortedKeys() {
		v := strings.NewReplacer("\n", `\n`, "\t", `\t`).Replace(fs.m[k])
		fmt.Fprintf(&b, "%s\t%s\t%s\n", k.object, k.name, v)
	}
	return []byte(b.String())
}

// DecodeFacts parses the Encode form. Unknown headers are an error so the
// caller can fall back to an empty set explicitly.
func DecodeFacts(r io.Reader) (*FactSet, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("facts: empty input")
	}
	if sc.Text() != factsHeader {
		return nil, fmt.Errorf("facts: unrecognized header %q", sc.Text())
	}
	fs := NewFactSet()
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("facts: malformed line %q", line)
		}
		v := strings.NewReplacer(`\n`, "\n", `\t`, "\t").Replace(parts[2])
		fs.Add(parts[0], parts[1], v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("facts: %v", err)
	}
	return fs, nil
}

// ObjectKey returns the stable cross-package key of a function or method:
// "path.Func" or "(path.Recv).Method" / "(*path.Recv).Method" — the
// types.Func.FullName form with any " [test-variant]" suffix stripped from
// the package path, so a fact exported while analyzing the test variant of
// a package matches the plain import seen by its dependents.
func ObjectKey(fn *types.Func) string {
	name := fn.FullName()
	if i := strings.Index(name, " ["); i >= 0 {
		// The bracketed vet/go-list test-variant suffix embeds a space;
		// splice it out wherever it appears (plain funcs: in the package
		// qualifier; methods: inside the parenthesized receiver).
		if j := strings.Index(name[i:], "]"); j >= 0 {
			name = name[:i] + name[i+j+1:]
		}
	}
	return name
}
