package lint

// All returns the full raxmlvet analyzer suite in reporting order.
// cmd/raxmlvet registers exactly this list; the registry regression test
// pins the set so an analyzer cannot silently drop out of CI.
func All() []*Analyzer {
	return []*Analyzer{
		SimDeterminism,
		NondetTaint,
		InvalidatePair,
		HotPathAlloc,
		FloatCmp,
		CtxOwnership,
		BackendPurity,
	}
}
