package alignment

import (
	"fmt"
	"math/rand"
)

// BootstrapWeights draws a non-parametric bootstrap replicate over the
// compressed patterns: it resamples NumSites columns with replacement, where
// each pattern's selection probability is proportional to its original
// weight. The result is a new per-pattern weight vector whose sum equals the
// original site count — this is the "column re-weighting" the paper
// describes (a certain amount of columns is re-weighted per replicate).
func BootstrapWeights(p *Patterns, rng *rand.Rand) []int {
	n := p.NumPatterns()
	weights := make([]int, n)
	// Cumulative distribution over patterns by original weight.
	cum := make([]int, n)
	total := 0
	for i, w := range p.Weights {
		total += w
		cum[i] = total
	}
	for draw := 0; draw < p.NumSites; draw++ {
		x := rng.Intn(total)
		// Binary search for the first cum[i] > x.
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] > x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		weights[lo]++
	}
	return weights
}

// BootstrapReplicate returns a Patterns view carrying freshly resampled
// weights for one bootstrap run.
func BootstrapReplicate(p *Patterns, rng *rand.Rand) *Patterns {
	q, err := p.WithWeights(BootstrapWeights(p, rng))
	if err != nil {
		panic(fmt.Sprintf("alignment: internal weight mismatch: %v", err)) // unreachable
	}
	return q
}

// ReweightedFraction reports the fraction of patterns whose weight changed
// relative to the original — the paper quotes "typically 10-20% of columns
// re-weighted" as the character of bootstrap replicates; this diagnostic lets
// tests and examples verify the synthetic workload matches that regime.
func ReweightedFraction(orig, replicate *Patterns) (float64, error) {
	if orig.NumPatterns() != replicate.NumPatterns() {
		return 0, fmt.Errorf("alignment: pattern count mismatch %d vs %d", orig.NumPatterns(), replicate.NumPatterns())
	}
	changed := 0
	for i := range orig.Weights {
		if orig.Weights[i] != replicate.Weights[i] {
			changed++
		}
	}
	return float64(changed) / float64(orig.NumPatterns()), nil
}
