package alignment

import (
	"bytes"
	"strings"
	"testing"
)

const nexusSequential = `#NEXUS
[ generated for the test suite ]
BEGIN DATA;
  DIMENSIONS NTAX=3 NCHAR=8;
  FORMAT DATATYPE=DNA MISSING=? GAP=-;
  MATRIX
    alpha  ACGTACGT
    beta   ACGTACGA
    'taxon three' ACG-ACG?
  ;
END;
`

const nexusInterleaved = `#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=3 NCHAR=8;
  FORMAT DATATYPE=DNA INTERLEAVE=YES;
  MATRIX
    alpha  ACGT
    beta   ACGT
    gamma  ACGT

    alpha  ACGT
    beta   ACGA
    gamma  ACGG
  ;
END;
`

func TestReadNexusSequential(t *testing.T) {
	a, err := ReadNexus(strings.NewReader(nexusSequential))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTaxa() != 3 || a.NumSites() != 8 {
		t.Fatalf("got %dx%d", a.NumTaxa(), a.NumSites())
	}
	if a.Seqs[2].Name != "taxon three" {
		t.Errorf("quoted label = %q", a.Seqs[2].Name)
	}
	if got := a.Seqs[2].String(); got != "ACG-ACG-" {
		// '?' normalizes to gap semantics and prints as '-'.
		t.Errorf("seq3 = %q", got)
	}
}

func TestReadNexusInterleaved(t *testing.T) {
	a, err := ReadNexus(strings.NewReader(nexusInterleaved))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSites() != 8 {
		t.Fatalf("sites = %d", a.NumSites())
	}
	if a.Seqs[1].String() != "ACGTACGA" {
		t.Errorf("beta = %q", a.Seqs[1].String())
	}
}

func TestReadNexusCustomMissingGap(t *testing.T) {
	in := `#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=3 NCHAR=4;
  FORMAT DATATYPE=DNA MISSING=N GAP=.;
  MATRIX
    a  AC.N
    b  ACGT
    c  ACGA
  ;
END;
`
	a, err := ReadNexus(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Seqs[0].String(); got != "AC--" {
		t.Errorf("custom gap/missing: %q", got)
	}
}

func TestReadNexusErrors(t *testing.T) {
	bad := []string{
		"",
		"not nexus\n",
		"#NEXUS\nBEGIN DATA;\nMATRIX\n;\nEND;\n", // no data
		"#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=5 NCHAR=4;\nMATRIX\na ACGT\nb ACGT\nc ACGT\n;\nEND;\n", // taxa mismatch
		"#NEXUS\nBEGIN DATA;\nDIMENSIONS NTAX=3 NCHAR=9;\nMATRIX\na ACGT\nb ACGT\nc ACGT\n;\nEND;\n", // nchar mismatch
		"#NEXUS\nBEGIN DATA;\nFORMAT DATATYPE=PROTEIN;\nMATRIX\na ACGT\n;\nEND;\n",                   // datatype
		"#NEXUS\nBEGIN DATA;\nMATRIX\n'unterminated ACGT\n;\nEND;\n",                                 // bad quote
	}
	for _, in := range bad {
		if _, err := ReadNexus(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestNexusRoundTrip(t *testing.T) {
	a, err := ReadPhylip(strings.NewReader(phylipSequential))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNexus(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadNexus(&buf)
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	for i := range a.Seqs {
		if a.Seqs[i].Name != b.Seqs[i].Name || a.Seqs[i].String() != b.Seqs[i].String() {
			t.Errorf("round trip mismatch at taxon %d", i)
		}
	}
}

func TestNexusCommentStripping(t *testing.T) {
	if got := stripNexusComments("AC[comment]GT"); got != "ACGT" {
		t.Errorf("stripped = %q", got)
	}
	if got := stripNexusComments("AC[unclosed"); got != "AC" {
		t.Errorf("unclosed = %q", got)
	}
	if got := stripNexusComments("[a][b]X"); got != "X" {
		t.Errorf("multiple = %q", got)
	}
}
