package alignment

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"raxmlcell/internal/bio"
)

// ReadPhylip parses a PHYLIP alignment, accepting both sequential and
// interleaved (relaxed) layouts. The header line carries the taxon and site
// counts; names are whitespace-delimited (relaxed PHYLIP, as RAxML accepts).
func ReadPhylip(r io.Reader) (*Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)

	var nTaxa, nSites int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if n, err := fmt.Sscanf(line, "%d %d", &nTaxa, &nSites); n != 2 || err != nil {
			return nil, fmt.Errorf("phylip: bad header %q", line)
		}
		break
	}
	if nTaxa <= 0 || nSites <= 0 {
		return nil, fmt.Errorf("phylip: missing or invalid header (taxa=%d sites=%d)", nTaxa, nSites)
	}

	names := make([]string, 0, nTaxa)
	raw := make([]strings.Builder, nTaxa)
	cur := 0 // next sequence expecting data in the current block

	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r\n")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if len(names) < nTaxa {
			// First block: leading token is the taxon name.
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return nil, fmt.Errorf("phylip: sequence line %q has no data", line)
			}
			names = append(names, fields[0])
			raw[len(names)-1].WriteString(strings.Join(fields[1:], ""))
			continue
		}
		// Continuation blocks (interleaved): data only, cycling through taxa.
		raw[cur].WriteString(strings.Join(strings.Fields(line), ""))
		cur = (cur + 1) % nTaxa
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("phylip: %w", err)
	}
	if len(names) != nTaxa {
		return nil, fmt.Errorf("phylip: found %d taxa, header says %d", len(names), nTaxa)
	}

	seqs := make([]*bio.Sequence, nTaxa)
	for i, name := range names {
		s, err := bio.NewSequence(name, raw[i].String())
		if err != nil {
			return nil, fmt.Errorf("phylip: %w", err)
		}
		if s.Len() != nSites {
			return nil, fmt.Errorf("phylip: taxon %q has %d sites, header says %d", name, s.Len(), nSites)
		}
		seqs[i] = s
	}
	return New(seqs)
}

// WritePhylip emits the alignment in sequential relaxed PHYLIP format.
func WritePhylip(w io.Writer, a *Alignment) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", a.NumTaxa(), a.NumSites()); err != nil {
		return err
	}
	width := 0
	for _, s := range a.Seqs {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range a.Seqs {
		if _, err := fmt.Fprintf(bw, "%-*s  %s\n", width, s.Name, s.String()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFasta parses a FASTA alignment (all records must have equal length).
func ReadFasta(r io.Reader) (*Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var seqs []*bio.Sequence
	var name string
	var data strings.Builder
	flush := func() error {
		if name == "" {
			return nil
		}
		s, err := bio.NewSequence(name, data.String())
		if err != nil {
			return err
		}
		seqs = append(seqs, s)
		data.Reset()
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ">") {
			if err := flush(); err != nil {
				return nil, fmt.Errorf("fasta: %w", err)
			}
			fields := strings.Fields(line[1:])
			if len(fields) == 0 {
				return nil, fmt.Errorf("fasta: empty header line")
			}
			name = fields[0]
			continue
		}
		if name == "" {
			return nil, fmt.Errorf("fasta: data before first header")
		}
		data.WriteString(line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fasta: %w", err)
	}
	if err := flush(); err != nil {
		return nil, fmt.Errorf("fasta: %w", err)
	}
	if len(seqs) == 0 {
		return nil, fmt.Errorf("fasta: no records")
	}
	return New(seqs)
}

// WriteFasta emits the alignment as FASTA with 70-column wrapping.
func WriteFasta(w io.Writer, a *Alignment) error {
	bw := bufio.NewWriter(w)
	for _, s := range a.Seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.Name); err != nil {
			return err
		}
		str := s.String()
		for len(str) > 0 {
			n := 70
			if n > len(str) {
				n = len(str)
			}
			if _, err := fmt.Fprintln(bw, str[:n]); err != nil {
				return err
			}
			str = str[n:]
		}
	}
	return bw.Flush()
}
