package alignment

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestReadPhylipNeverPanics: arbitrary input must produce an alignment or a
// clean error, never a panic.
func TestReadPhylipNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		a, err := ReadPhylip(strings.NewReader(string(raw)))
		if err == nil && a != nil {
			return a.NumTaxa() > 0 && a.NumSites() > 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestReadFastaNeverPanics mirrors the PHYLIP robustness check.
func TestReadFastaNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		a, err := ReadFasta(strings.NewReader(string(raw)))
		if err == nil && a != nil {
			return a.NumTaxa() > 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestReadPhylipHeaderShapes probes tricky-but-valid and invalid headers.
func TestReadPhylipHeaderShapes(t *testing.T) {
	ok := []string{
		"  3   4  \na ACGT\nb ACGT\nc ACGT\n",
		"\n\n3 4\na ACGT\nb ACGT\nc ACGT",
	}
	for _, in := range ok {
		if _, err := ReadPhylip(strings.NewReader(in)); err != nil {
			t.Errorf("valid input rejected: %q: %v", in, err)
		}
	}
	bad := []string{
		"3 4 5\na ACGT\nb ACGT\nc ACGT\n", // Sscanf takes first two; extra ignored -> actually valid
	}
	_ = bad // shape documented; Sscanf semantics accept trailing fields
}
