package alignment

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"raxmlcell/internal/bio"
)

func mustAlign(t *testing.T, rows map[string]string) *Alignment {
	t.Helper()
	var seqs []*bio.Sequence
	// Deterministic order: sorted by name via fixed list below.
	for _, name := range sortedKeys(rows) {
		s, err := bio.NewSequence(name, rows[name])
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, s)
	}
	a, err := New(seqs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	return keys
}

func TestNewValidation(t *testing.T) {
	s1, _ := bio.NewSequence("a", "ACGT")
	s2, _ := bio.NewSequence("b", "ACG")
	if _, err := New([]*bio.Sequence{s1, s2}); err == nil {
		t.Error("unequal lengths accepted")
	}
	s3, _ := bio.NewSequence("a", "ACGT")
	if _, err := New([]*bio.Sequence{s1, s3}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := New(nil); err == nil {
		t.Error("empty alignment accepted")
	}
	anon, _ := bio.NewSequence("", "ACGT")
	if _, err := New([]*bio.Sequence{anon}); err == nil {
		t.Error("anonymous sequence accepted")
	}
}

func TestCompressBasic(t *testing.T) {
	a := mustAlign(t, map[string]string{
		"t1": "AACA",
		"t2": "CCGC",
		"t3": "GGTG",
	})
	p := Compress(a)
	// Columns: (A,C,G) (A,C,G) (C,G,T) (A,C,G) -> 2 patterns, weights 3 and 1.
	if p.NumPatterns() != 2 {
		t.Fatalf("NumPatterns = %d, want 2", p.NumPatterns())
	}
	if p.Weights[0] != 3 || p.Weights[1] != 1 {
		t.Errorf("Weights = %v, want [3 1]", p.Weights)
	}
	if p.WeightSum() != 4 || p.NumSites != 4 {
		t.Errorf("WeightSum=%d NumSites=%d", p.WeightSum(), p.NumSites)
	}
	if p.TaxonIndex("t2") != 1 || p.TaxonIndex("zz") != -1 {
		t.Errorf("TaxonIndex wrong: %d", p.TaxonIndex("t2"))
	}
}

func TestCompressPreservesData(t *testing.T) {
	// Property: expanding patterns by weight recovers per-taxon base counts.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nt, ns := 3+rng.Intn(5), 10+rng.Intn(40)
		rows := map[string]string{}
		bases := "ACGT-"
		for i := 0; i < nt; i++ {
			var b strings.Builder
			for j := 0; j < ns; j++ {
				b.WriteByte(bases[rng.Intn(len(bases))])
			}
			rows[string(rune('a'+i))] = b.String()
		}
		var seqs []*bio.Sequence
		for _, name := range sortedKeys(rows) {
			s, _ := bio.NewSequence(name, rows[name])
			seqs = append(seqs, s)
		}
		a, _ := New(seqs)
		p := Compress(a)
		if p.WeightSum() != ns {
			return false
		}
		for i, s := range a.Seqs {
			var orig, comp [16]int
			for _, m := range s.Codes {
				orig[m]++
			}
			for k, m := range p.Data[i] {
				comp[m] += p.Weights[k]
			}
			if orig != comp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBaseFrequencies(t *testing.T) {
	a := mustAlign(t, map[string]string{
		"t1": "AAAA",
		"t2": "CCCC",
		"t3": "GGTT",
	})
	f := a.BaseFrequencies()
	want := [4]float64{4.0 / 12, 4.0 / 12, 2.0 / 12, 2.0 / 12}
	for i := range f {
		if math.Abs(f[i]-want[i]) > 1e-9 {
			t.Errorf("freq[%d] = %v, want %v", i, f[i], want[i])
		}
	}
	// Patterns view must agree.
	pf := Compress(a).BaseFrequencies()
	for i := range f {
		if math.Abs(f[i]-pf[i]) > 1e-9 {
			t.Errorf("pattern freq[%d] = %v, want %v", i, pf[i], f[i])
		}
	}
}

func TestBaseFrequenciesAmbiguity(t *testing.T) {
	a := mustAlign(t, map[string]string{
		"t1": "R", // A or G: half mass each
		"t2": "A",
	})
	f := a.BaseFrequencies()
	if math.Abs(f[0]-0.75) > 1e-4 || math.Abs(f[2]-0.25) > 1e-4 {
		t.Errorf("freqs = %v, want A=0.75 G=0.25 (approx, with flooring)", f)
	}
}

func TestBaseFrequenciesAllGaps(t *testing.T) {
	a := mustAlign(t, map[string]string{"t1": "--", "t2": "NN"})
	f := a.BaseFrequencies()
	for i := range f {
		if math.Abs(f[i]-0.25) > 1e-12 {
			t.Errorf("gap-only freq[%d] = %v, want 0.25", i, f[i])
		}
	}
}

func TestWithWeights(t *testing.T) {
	a := mustAlign(t, map[string]string{"t1": "ACGT", "t2": "ACGA"})
	p := Compress(a)
	w := make([]int, p.NumPatterns())
	for i := range w {
		w[i] = 2
	}
	q, err := p.WithWeights(w)
	if err != nil {
		t.Fatal(err)
	}
	if q.WeightSum() != 2*p.NumPatterns() {
		t.Errorf("WeightSum = %d", q.WeightSum())
	}
	// Original untouched.
	if p.WeightSum() != 4 {
		t.Errorf("original mutated: %v", p.Weights)
	}
	if _, err := p.WithWeights([]int{1}); err == nil && p.NumPatterns() != 1 {
		t.Error("bad weight length accepted")
	}
}

func TestBootstrapWeights(t *testing.T) {
	a := mustAlign(t, map[string]string{
		"t1": strings.Repeat("ACGT", 100),
		"t2": strings.Repeat("AGGT", 100),
		"t3": strings.Repeat("ACGA", 100),
	})
	p := Compress(a)
	rng := rand.New(rand.NewSource(42))
	w := BootstrapWeights(p, rng)
	sum := 0
	for _, x := range w {
		if x < 0 {
			t.Fatal("negative weight")
		}
		sum += x
	}
	if sum != p.NumSites {
		t.Fatalf("bootstrap weight sum = %d, want %d", sum, p.NumSites)
	}
	// Deterministic under the same seed.
	w2 := BootstrapWeights(p, rand.New(rand.NewSource(42)))
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("bootstrap not deterministic under fixed seed")
		}
	}
	rep := BootstrapReplicate(p, rng)
	if rep.WeightSum() != p.NumSites {
		t.Error("replicate weight sum wrong")
	}
	frac, err := ReweightedFraction(p, rep)
	if err != nil {
		t.Fatal(err)
	}
	if frac <= 0 || frac > 1 {
		t.Errorf("reweighted fraction = %v", frac)
	}
}

func TestBootstrapDistribution(t *testing.T) {
	// With weights [300, 100], pattern 0 should receive ~75% of draws.
	a := mustAlign(t, map[string]string{
		"t1": strings.Repeat("A", 300) + strings.Repeat("C", 100),
		"t2": strings.Repeat("A", 300) + strings.Repeat("G", 100),
	})
	p := Compress(a)
	if p.NumPatterns() != 2 {
		t.Fatalf("patterns = %d", p.NumPatterns())
	}
	rng := rand.New(rand.NewSource(7))
	total0 := 0
	const reps = 200
	for r := 0; r < reps; r++ {
		w := BootstrapWeights(p, rng)
		total0 += w[0]
	}
	mean0 := float64(total0) / reps
	if math.Abs(mean0-300) > 10 {
		t.Errorf("mean weight of heavy pattern = %v, want ~300", mean0)
	}
}

func TestReweightedFractionMismatch(t *testing.T) {
	a := mustAlign(t, map[string]string{"t1": "ACGT", "t2": "AGGT"})
	b := mustAlign(t, map[string]string{"t1": "AAAA", "t2": "AAAA"})
	if _, err := ReweightedFraction(Compress(a), Compress(b)); err == nil {
		t.Error("mismatched pattern counts accepted")
	}
}
