package alignment

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestReadNexusNeverPanics: arbitrary and token-soup input must never panic.
func TestReadNexusNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		a, err := ReadNexus(strings.NewReader("#NEXUS\n" + string(raw)))
		if err == nil && a != nil {
			return a.NumTaxa() > 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	tokens := []string{"BEGIN DATA;", "MATRIX", ";", "END;", "DIMENSIONS",
		"NTAX=3", "NCHAR=4", "FORMAT", "DATATYPE=DNA", "a ACGT", "'q t' ACGT",
		"[comment]", "[unclosed", "MISSING=?", "GAP=-", "\n"}
	g := func(seed int64, n uint8) bool {
		var b strings.Builder
		b.WriteString("#NEXUS\n")
		x := seed
		for i := 0; i < int(n)%40; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			idx := int(uint64(x)>>33) % len(tokens)
			b.WriteString(tokens[idx])
			b.WriteByte('\n')
		}
		_, err := ReadNexus(strings.NewReader(b.String()))
		_ = err
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
