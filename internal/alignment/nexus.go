package alignment

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"raxmlcell/internal/bio"
)

// ReadNexus parses the DATA (or CHARACTERS) block of a NEXUS file: the
// other interchange format phylogenetics tools expect besides PHYLIP and
// FASTA. Supported: DIMENSIONS NTAX/NCHAR, FORMAT DATATYPE=DNA (missing and
// gap characters are honored by mapping them to '?'/'-'), sequential and
// interleaved MATRIX layouts, quoted taxon labels, and [comments].
func ReadNexus(r io.Reader) (*Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() || !strings.EqualFold(strings.TrimSpace(sc.Text()), "#NEXUS") {
		return nil, fmt.Errorf("nexus: missing #NEXUS header")
	}

	var (
		nTax, nChar  int
		missing, gap byte = '?', '-'
		inData       bool
		inMatrix     bool
		names        []string
		seqs         = map[string]*strings.Builder{}
		order        []string
	)

	appendData := func(name, data string) {
		b, ok := seqs[name]
		if !ok {
			b = &strings.Builder{}
			seqs[name] = b
			order = append(order, name)
		}
		b.WriteString(data)
	}

	for sc.Scan() {
		line := stripNexusComments(sc.Text())
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		upper := strings.ToUpper(trimmed)

		switch {
		case strings.HasPrefix(upper, "BEGIN DATA") || strings.HasPrefix(upper, "BEGIN CHARACTERS"):
			inData = true
		case strings.HasPrefix(upper, "END;") || strings.HasPrefix(upper, "ENDBLOCK;"):
			inData, inMatrix = false, false
		case !inData:
			continue
		case strings.HasPrefix(upper, "DIMENSIONS"):
			for _, f := range strings.Fields(strings.TrimSuffix(trimmed, ";")) {
				kv := strings.SplitN(f, "=", 2)
				if len(kv) != 2 {
					continue
				}
				v, err := strconv.Atoi(kv[1])
				if err != nil {
					return nil, fmt.Errorf("nexus: bad dimension %q", f)
				}
				switch strings.ToUpper(kv[0]) {
				case "NTAX":
					nTax = v
				case "NCHAR":
					nChar = v
				}
			}
		case strings.HasPrefix(upper, "FORMAT"):
			for _, f := range strings.Fields(strings.TrimSuffix(trimmed, ";")) {
				kv := strings.SplitN(f, "=", 2)
				if len(kv) != 2 {
					continue
				}
				val := strings.Trim(kv[1], "'\"")
				switch strings.ToUpper(kv[0]) {
				case "DATATYPE":
					if !strings.EqualFold(val, "DNA") && !strings.EqualFold(val, "NUCLEOTIDE") {
						return nil, fmt.Errorf("nexus: unsupported datatype %q (DNA only)", val)
					}
				case "MISSING":
					if len(val) == 1 {
						missing = val[0]
					}
				case "GAP":
					if len(val) == 1 {
						gap = val[0]
					}
				}
			}
		case strings.HasPrefix(upper, "MATRIX"):
			inMatrix = true
		case inMatrix:
			if trimmed == ";" {
				inMatrix = false
				continue
			}
			row := strings.TrimSuffix(trimmed, ";")
			name, data, err := splitNexusRow(row)
			if err != nil {
				return nil, err
			}
			// Normalize the user's missing/gap characters.
			norm := strings.Map(func(c rune) rune {
				switch byte(c) {
				case missing:
					return '?'
				case gap:
					return '-'
				}
				return c
			}, data)
			appendData(name, norm)
			if strings.HasSuffix(trimmed, ";") {
				inMatrix = false
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("nexus: %w", err)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("nexus: no MATRIX data found")
	}
	if nTax > 0 && len(order) != nTax {
		return nil, fmt.Errorf("nexus: found %d taxa, DIMENSIONS says %d", len(order), nTax)
	}
	names = order
	out := make([]*bio.Sequence, 0, len(names))
	for _, name := range names {
		s, err := bio.NewSequence(name, seqs[name].String())
		if err != nil {
			return nil, fmt.Errorf("nexus: %w", err)
		}
		if nChar > 0 && s.Len() != nChar {
			return nil, fmt.Errorf("nexus: taxon %q has %d characters, NCHAR says %d", name, s.Len(), nChar)
		}
		out = append(out, s)
	}
	return New(out)
}

// splitNexusRow separates a matrix row into its (possibly quoted) taxon
// label and sequence data.
func splitNexusRow(row string) (string, string, error) {
	row = strings.TrimSpace(row)
	if row == "" {
		return "", "", fmt.Errorf("nexus: empty matrix row")
	}
	if row[0] == '\'' {
		end := strings.IndexByte(row[1:], '\'')
		if end < 0 {
			return "", "", fmt.Errorf("nexus: unterminated quoted label in %q", row)
		}
		name := row[1 : 1+end]
		data := strings.TrimSpace(row[2+end:])
		if name == "" || data == "" {
			return "", "", fmt.Errorf("nexus: malformed row %q", row)
		}
		return name, strings.Join(strings.Fields(data), ""), nil
	}
	fields := strings.Fields(row)
	if len(fields) < 2 {
		return "", "", fmt.Errorf("nexus: matrix row %q has no data", row)
	}
	return fields[0], strings.Join(fields[1:], ""), nil
}

// stripNexusComments removes [bracketed] comments (single-line scope).
func stripNexusComments(line string) string {
	for {
		open := strings.IndexByte(line, '[')
		if open < 0 {
			return line
		}
		close := strings.IndexByte(line[open:], ']')
		if close < 0 {
			return line[:open]
		}
		line = line[:open] + line[open+close+1:]
	}
}

// WriteNexus emits the alignment as a NEXUS DATA block.
func WriteNexus(w io.Writer, a *Alignment) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#NEXUS")
	fmt.Fprintln(bw, "BEGIN DATA;")
	fmt.Fprintf(bw, "  DIMENSIONS NTAX=%d NCHAR=%d;\n", a.NumTaxa(), a.NumSites())
	fmt.Fprintln(bw, "  FORMAT DATATYPE=DNA MISSING=? GAP=-;")
	fmt.Fprintln(bw, "  MATRIX")
	width := 0
	for _, s := range a.Seqs {
		if len(s.Name) > width {
			width = len(s.Name)
		}
	}
	for _, s := range a.Seqs {
		name := s.Name
		if strings.ContainsAny(name, " \t") {
			name = "'" + name + "'"
		}
		fmt.Fprintf(bw, "    %-*s  %s\n", width+2, name, s.String())
	}
	fmt.Fprintln(bw, "  ;")
	fmt.Fprintln(bw, "END;")
	return bw.Flush()
}
