// Package alignment provides multiple sequence alignment containers, PHYLIP
// and FASTA input/output, site-pattern compression, and non-parametric
// bootstrap resampling.
//
// Site-pattern compression is the representation the likelihood kernels
// operate on: identical alignment columns are collapsed into one pattern with
// an integer weight. For the paper's 42_SC input (42 taxa x 1167 sites) this
// yields on the order of 250 distinct patterns, which sets the trip count of
// the dominant likelihood loop (228 in the paper's measurements).
package alignment

import (
	"fmt"
	"sort"

	"raxmlcell/internal/bio"
)

// Alignment is a set of equal-length, 4-bit encoded sequences.
type Alignment struct {
	Seqs []*bio.Sequence
}

// New validates that all sequences have equal length and distinct names.
func New(seqs []*bio.Sequence) (*Alignment, error) {
	if len(seqs) == 0 {
		return nil, fmt.Errorf("alignment: no sequences")
	}
	n := seqs[0].Len()
	names := make(map[string]bool, len(seqs))
	for _, s := range seqs {
		if s.Len() != n {
			return nil, fmt.Errorf("alignment: sequence %q has length %d, want %d", s.Name, s.Len(), n)
		}
		if s.Name == "" {
			return nil, fmt.Errorf("alignment: empty sequence name")
		}
		if names[s.Name] {
			return nil, fmt.Errorf("alignment: duplicate sequence name %q", s.Name)
		}
		names[s.Name] = true
	}
	return &Alignment{Seqs: seqs}, nil
}

// NumTaxa returns the number of sequences.
func (a *Alignment) NumTaxa() int { return len(a.Seqs) }

// NumSites returns the alignment length.
func (a *Alignment) NumSites() int {
	if len(a.Seqs) == 0 {
		return 0
	}
	return a.Seqs[0].Len()
}

// Names returns the taxon names in order.
func (a *Alignment) Names() []string {
	names := make([]string, len(a.Seqs))
	for i, s := range a.Seqs {
		names[i] = s.Name
	}
	return names
}

// Column writes alignment column j (one code per taxon) into dst and returns
// it. If dst is nil or too small a new slice is allocated.
func (a *Alignment) Column(j int, dst []byte) []byte {
	if cap(dst) < len(a.Seqs) {
		dst = make([]byte, len(a.Seqs))
	}
	dst = dst[:len(a.Seqs)]
	for i, s := range a.Seqs {
		dst[i] = s.Codes[j]
	}
	return dst
}

// BaseFrequencies returns the empirical base frequencies across the whole
// alignment. Ambiguous characters distribute their mass uniformly over the
// bases they allow, matching RAxML's empirical frequency estimation.
func (a *Alignment) BaseFrequencies() [bio.NumStates]float64 {
	var counts [bio.NumStates]float64
	for _, s := range a.Seqs {
		for _, m := range s.Codes {
			bits := 0
			for b := 0; b < bio.NumStates; b++ {
				if m&(1<<b) != 0 {
					bits++
				}
			}
			if bits == 0 || bits == bio.NumStates {
				continue // gaps carry no information
			}
			w := 1.0 / float64(bits)
			for b := 0; b < bio.NumStates; b++ {
				if m&(1<<b) != 0 {
					counts[b] += w
				}
			}
		}
	}
	total := 0.0
	for _, c := range counts {
		total += c
	}
	var freq [bio.NumStates]float64
	if total == 0 {
		for i := range freq {
			freq[i] = 1.0 / bio.NumStates
		}
		return freq
	}
	for i := range freq {
		freq[i] = counts[i] / total
		// Guard against degenerate alignments with absent states: the GTR
		// model requires strictly positive frequencies.
		if freq[i] < 1e-6 {
			freq[i] = 1e-6
		}
	}
	// Renormalize after flooring.
	total = 0
	for _, f := range freq {
		total += f
	}
	for i := range freq {
		freq[i] /= total
	}
	return freq
}

// Patterns is a site-pattern-compressed alignment: data is stored
// taxon-major over distinct patterns, with a weight per pattern.
type Patterns struct {
	NumTaxa  int
	NumSites int      // original (uncompressed) site count
	Names    []string // taxon names, index-aligned with Data
	Data     [][]byte // Data[taxon][pattern] = 4-bit code
	Weights  []int    // Weights[pattern] = column multiplicity
}

// Compress collapses identical columns of the alignment into weighted
// patterns. Pattern order is the order of first appearance, which keeps the
// compression deterministic.
func Compress(a *Alignment) *Patterns {
	nt, ns := a.NumTaxa(), a.NumSites()
	p := &Patterns{
		NumTaxa:  nt,
		NumSites: ns,
		Names:    a.Names(),
		Data:     make([][]byte, nt),
	}
	index := make(map[string]int, ns)
	col := make([]byte, nt)
	for j := 0; j < ns; j++ {
		col = a.Column(j, col)
		key := string(col)
		if k, ok := index[key]; ok {
			p.Weights[k]++
			continue
		}
		index[key] = len(p.Weights)
		p.Weights = append(p.Weights, 1)
		for i := 0; i < nt; i++ {
			p.Data[i] = append(p.Data[i], col[i])
		}
	}
	return p
}

// NumPatterns returns the number of distinct site patterns.
func (p *Patterns) NumPatterns() int { return len(p.Weights) }

// WeightSum returns the total pattern weight. For an unresampled alignment
// it equals NumSites; for a bootstrap replicate it equals the resampled
// column count (also NumSites).
func (p *Patterns) WeightSum() int {
	s := 0
	for _, w := range p.Weights {
		s += w
	}
	return s
}

// TaxonIndex returns the row of the named taxon, or -1.
func (p *Patterns) TaxonIndex(name string) int {
	for i, n := range p.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// WithWeights returns a shallow copy of p sharing Data/Names but carrying the
// given per-pattern weights. It is the primitive under bootstrap replicates:
// resampling columns of the original alignment only changes pattern weights.
func (p *Patterns) WithWeights(weights []int) (*Patterns, error) {
	if len(weights) != len(p.Weights) {
		return nil, fmt.Errorf("alignment: weight vector length %d, want %d", len(weights), len(p.Weights))
	}
	q := *p
	q.Weights = weights
	return &q, nil
}

// BaseFrequencies computes weighted empirical base frequencies over the
// patterns (equivalent to Alignment.BaseFrequencies on the expanded data).
func (p *Patterns) BaseFrequencies() [bio.NumStates]float64 {
	var counts [bio.NumStates]float64
	for i := 0; i < p.NumTaxa; i++ {
		row := p.Data[i]
		for k, m := range row {
			bits := 0
			for b := 0; b < bio.NumStates; b++ {
				if m&(1<<b) != 0 {
					bits++
				}
			}
			if bits == 0 || bits == bio.NumStates {
				continue
			}
			w := float64(p.Weights[k]) / float64(bits)
			for b := 0; b < bio.NumStates; b++ {
				if m&(1<<b) != 0 {
					counts[b] += w
				}
			}
		}
	}
	total := 0.0
	for _, c := range counts {
		total += c
	}
	var freq [bio.NumStates]float64
	if total == 0 {
		for i := range freq {
			freq[i] = 1.0 / bio.NumStates
		}
		return freq
	}
	for i := range freq {
		freq[i] = counts[i] / total
		if freq[i] < 1e-6 {
			freq[i] = 1e-6
		}
	}
	total = 0
	for _, f := range freq {
		total += f
	}
	for i := range freq {
		freq[i] /= total
	}
	return freq
}

// SortedNames returns the taxon names in lexicographic order (used by tests
// and deterministic output paths).
func (p *Patterns) SortedNames() []string {
	names := append([]string(nil), p.Names...)
	sort.Strings(names)
	return names
}
