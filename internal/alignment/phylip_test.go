package alignment

import (
	"bytes"
	"strings"
	"testing"
)

const phylipSequential = `4 12
alpha  ACGTACGTACGT
beta   ACGTACGTACGA
gamma  ACGTACGTACGG
delta  ACGTACGTACGC
`

const phylipInterleaved = `4 12
alpha  ACGTAC
beta   ACGTAC
gamma  ACGTAC
delta  ACGTAC

GTACGT
GTACGA
GTACGG
GTACGC
`

func TestReadPhylipSequential(t *testing.T) {
	a, err := ReadPhylip(strings.NewReader(phylipSequential))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTaxa() != 4 || a.NumSites() != 12 {
		t.Fatalf("got %dx%d", a.NumTaxa(), a.NumSites())
	}
	if a.Seqs[0].Name != "alpha" || a.Seqs[3].Name != "delta" {
		t.Errorf("names = %v", a.Names())
	}
	if a.Seqs[1].String() != "ACGTACGTACGA" {
		t.Errorf("beta = %q", a.Seqs[1].String())
	}
}

func TestReadPhylipInterleaved(t *testing.T) {
	a, err := ReadPhylip(strings.NewReader(phylipInterleaved))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadPhylip(strings.NewReader(phylipSequential))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Seqs {
		if a.Seqs[i].String() != b.Seqs[i].String() {
			t.Errorf("taxon %d: interleaved %q != sequential %q", i, a.Seqs[i].String(), b.Seqs[i].String())
		}
	}
}

func TestReadPhylipErrors(t *testing.T) {
	cases := []string{
		"",                        // empty
		"notaheader\n",            // bad header
		"2 4\nonly ACGT\n",        // missing taxon
		"1 4\nt1 ACG\n",           // short sequence
		"1 4\nt1 ACGZ\n",          // invalid char
		"1 4\nt1\n",               // no data on line
		"0 0\n",                   // zero dims
		"2 4\nt1 ACGT\nt1 ACGT\n", // duplicate names
	}
	for _, in := range cases {
		if _, err := ReadPhylip(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestPhylipRoundTrip(t *testing.T) {
	a, err := ReadPhylip(strings.NewReader(phylipSequential))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePhylip(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadPhylip(&buf)
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	for i := range a.Seqs {
		if a.Seqs[i].Name != b.Seqs[i].Name || a.Seqs[i].String() != b.Seqs[i].String() {
			t.Errorf("round trip mismatch at taxon %d", i)
		}
	}
}

func TestFastaRoundTrip(t *testing.T) {
	a, err := ReadPhylip(strings.NewReader(phylipSequential))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Seqs {
		if a.Seqs[i].Name != b.Seqs[i].Name || a.Seqs[i].String() != b.Seqs[i].String() {
			t.Errorf("fasta round trip mismatch at taxon %d", i)
		}
	}
}

func TestReadFastaWrapped(t *testing.T) {
	in := ">tax1 description ignored\nACGT\nACGT\n>tax2\nACGTACGA\n"
	a, err := ReadFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTaxa() != 2 || a.NumSites() != 8 {
		t.Fatalf("got %dx%d", a.NumTaxa(), a.NumSites())
	}
	if a.Seqs[0].Name != "tax1" {
		t.Errorf("name = %q", a.Seqs[0].Name)
	}
}

func TestReadFastaErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"ACGT\n",               // data before header
		">\nACGT\n",            // empty header
		">a\nACGT\n>b\nACG\n",  // ragged
		">a\nACGT\n>a\nACGT\n", // duplicate
		">a\nAC GZ\n",          // invalid char (Z)
	}
	for _, in := range cases {
		if _, err := ReadFasta(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
