package phylotree

import "fmt"

// Phylo2Vec is an integer-vector encoding of an unrooted binary topology in
// the style of phylo2vec: v has one entry per taxon, v[0] = v[1] = v[2] = 0,
// and for i >= 3, v[i] is the index of the edge that taxon i subdivides when
// the tree is grown by stepwise addition in taxon order. Edge indices are
// assigned by a fixed replay rule (see edge numbering below), so the vector
// is a pure function of the unrooted topology and the taxon labelling:
// two trees over the same taxon set have equal vectors if and only if they
// have equal topologies. Branch lengths are not encoded.
//
// Edge numbering: the tree restricted to taxa {0, 1} is the single edge 0.
// Attaching taxon i to edge e = (p, q) rewrites e as (p, h) keeping index
// e, then appends (h, q) and (h, i) as the next two indices, where h is the
// new internal node. The restriction to {0..i-1} therefore has 2i-3 edges,
// so v[i] ranges over [0, 2i-4].
//
// Phylo2Vec returns the encoding of a complete topology in O(n) time (map
// operations aside). The inverse is TreeFromPhylo2Vec.
func (t *Tree) Phylo2Vec() ([]int, error) {
	n := t.NumTips()
	if !t.Complete() {
		return nil, fmt.Errorf("phylotree: Phylo2Vec on incomplete topology")
	}
	v := make([]int, n)
	if n == 3 {
		return v, nil
	}

	// Build an index-keyed adjacency copy so peeling does not disturb the
	// live topology. Internal indices may exceed MaxNodeIndex after heavy
	// insert/remove churn, so size by the largest index actually present.
	edges := t.Edges()
	maxIdx := 0
	for _, e := range edges {
		if e.Index > maxIdx {
			maxIdx = e.Index
		}
		if e.Back.Index > maxIdx {
			maxIdx = e.Back.Index
		}
	}
	nbr := make([][]int, maxIdx+1)
	for i := range nbr {
		nbr[i] = make([]int, 0, 3)
	}
	for _, e := range edges {
		a, b := e.Index, e.Back.Index
		nbr[a] = append(nbr[a], b)
		nbr[b] = append(nbr[b], a)
	}

	// Peel tips n-1 down to 3. Removing tip i and its internal host h
	// contracts the path a—h—b back into the edge (a, b) that taxon i
	// subdivided in the restriction to {0..i-1}.
	host := make([]int, n)
	remA := make([]int, n)
	remB := make([]int, n)
	for i := n - 1; i >= 3; i-- {
		if len(nbr[i]) != 1 {
			return nil, fmt.Errorf("phylotree: tip %d has %d neighbors during peel", i, len(nbr[i]))
		}
		h := nbr[i][0]
		var a, b int
		found := 0
		for _, x := range nbr[h] {
			if x == i {
				continue
			}
			if found == 0 {
				a = x
			} else {
				b = x
			}
			found++
		}
		if found != 2 {
			return nil, fmt.Errorf("phylotree: host of tip %d has degree %d during peel", i, found+1)
		}
		host[i], remA[i], remB[i] = h, a, b
		replaceNbr(nbr[a], h, b)
		replaceNbr(nbr[b], h, a)
		nbr[i] = nbr[i][:0]
		nbr[h] = nbr[h][:0]
	}
	// What remains is the star on taxa {0, 1, 2}; its center hosts taxon 2.
	if len(nbr[2]) != 1 {
		return nil, fmt.Errorf("phylotree: peel did not terminate at the 0-1-2 star")
	}
	host[2] = nbr[2][0]

	// Replay stepwise addition, assigning edge indices by the fixed rule.
	// Pairs are unordered for lookup but ordered for the split rewrite.
	type pair struct{ p, q int }
	E := make([]pair, 1, 2*n-3)
	E[0] = pair{0, 1}
	pos := make(map[uint64]int, 2*n-3)
	key := func(a, b int) uint64 {
		if a > b {
			a, b = b, a
		}
		return uint64(a)<<32 | uint64(b)
	}
	pos[key(0, 1)] = 0
	split := func(idx, h, ti int) {
		p, q := E[idx].p, E[idx].q
		delete(pos, key(p, q))
		E[idx] = pair{p, h}
		pos[key(p, h)] = idx
		E = append(E, pair{h, q})
		pos[key(h, q)] = len(E) - 1
		E = append(E, pair{h, ti})
		pos[key(h, ti)] = len(E) - 1
	}
	split(0, host[2], 2) // v[2] = 0 by construction
	for i := 3; i < n; i++ {
		idx, ok := pos[key(remA[i], remB[i])]
		if !ok {
			return nil, fmt.Errorf("phylotree: taxon %d subdivides unknown edge (%d,%d)", i, remA[i], remB[i])
		}
		v[i] = idx
		split(idx, host[i], i)
	}
	return v, nil
}

func replaceNbr(s []int, old, new int) {
	for k, x := range s {
		if x == old {
			s[k] = new
			return
		}
	}
}

// ValidatePhylo2Vec checks the structural constraints of an encoding for n
// taxa: length n, v[0..2] zero, and v[i] in [0, 2i-4] for i >= 3.
func ValidatePhylo2Vec(v []int, n int) error {
	if len(v) != n {
		return fmt.Errorf("phylotree: phylo2vec length %d, want %d taxa", len(v), n)
	}
	if n < 3 {
		return fmt.Errorf("phylotree: phylo2vec needs >= 3 taxa, got %d", n)
	}
	for i := 0; i < 3 && i < len(v); i++ {
		if v[i] != 0 {
			return fmt.Errorf("phylotree: phylo2vec v[%d] = %d, want 0", i, v[i])
		}
	}
	for i := 3; i < len(v); i++ {
		if v[i] < 0 || v[i] > 2*i-4 {
			return fmt.Errorf("phylotree: phylo2vec v[%d] = %d out of range [0, %d]", i, v[i], 2*i-4)
		}
	}
	return nil
}

// TreeFromPhylo2Vec reconstructs the unrooted topology encoded by v over the
// given taxa (the inverse of Phylo2Vec). Branch lengths are the stepwise
// defaults, not the original lengths: the encoding is topology-only.
func TreeFromPhylo2Vec(taxa []string, v []int) (*Tree, error) {
	if err := ValidatePhylo2Vec(v, len(taxa)); err != nil {
		return nil, err
	}
	t, err := NewTree(taxa)
	if err != nil {
		return nil, err
	}
	if err := t.InitTriplet(0, 1, 2); err != nil {
		return nil, err
	}
	// E[idx] holds the record at the edge's first endpoint (its Back is the
	// second). InsertTip at the second endpoint's record keeps the first
	// endpoint's record — and hence E[idx] — valid across the split, and the
	// two new edges (h, q) then (h, tip) append in replay order.
	n := len(taxa)
	E := make([]*Node, 3, 2*n-3)
	center := t.Tips[0].Back
	E[0] = t.Tips[0]        // (taxon0, center)
	E[1] = center.Next      // (center, taxon1)
	E[2] = center.Next.Next // (center, taxon2)
	for i := 3; i < n; i++ {
		recP := E[v[i]]
		recQ := recP.Back
		if err := t.InsertTip(i, recQ); err != nil {
			return nil, fmt.Errorf("phylotree: phylo2vec decode at taxon %d: %w", i, err)
		}
		// recQ.Back is now the new ring; its records facing q and the tip
		// become the next two edges.
		E = append(E, recQ.Back)      // (h, q): Back is recQ
		E = append(E, recP.Back.Next) // (h, tip): the ring record r[0]
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("phylotree: phylo2vec decode produced invalid tree: %w", err)
	}
	return t, nil
}
