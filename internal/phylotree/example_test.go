package phylotree_test

import (
	"fmt"

	"raxmlcell/internal/phylotree"
)

func ExampleParseNewick() {
	tr, err := phylotree.ParseNewick("((a:0.1,b:0.2):0.05,c:0.3,d:0.1);")
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.NumTips(), "taxa,", len(tr.Edges()), "branches")
	fmt.Printf("total branch length %.2f\n", tr.TotalBranchLength())
	// Output:
	// 4 taxa, 5 branches
	// total branch length 0.75
}

func ExampleTree_Ascii() {
	tr, err := phylotree.ParseNewick("((a:0.1,b:0.2):0.05,c:0.3,d:0.1);")
	if err != nil {
		panic(err)
	}
	fmt.Println(tr.Ascii())
	// Output:
	// *
	// |-- a:0.100
	// |-- b:0.200
	// `-- +:0.050
	//     |-- c:0.300
	//     `-- d:0.100
}

func ExampleRobinsonFoulds() {
	a, _ := phylotree.ParseNewick("((a,b),(c,d),e);")
	b, _ := phylotree.ParseNewick("((a,c),(b,d),e);")
	if err := b.AlignTaxa(a.Taxa); err != nil {
		panic(err)
	}
	d, err := phylotree.RobinsonFoulds(a, b)
	if err != nil {
		panic(err)
	}
	fmt.Println("RF distance:", d)
	// Output:
	// RF distance: 4
}

func ExampleMajorityRuleConsensus() {
	taxa := []string{"a", "b", "c", "d", "e"}
	var trees []*phylotree.Tree
	for _, s := range []string{
		"((a,b),(c,d),e);",
		"((a,b),(c,e),d);",
		"((a,b),(d,e),c);",
	} {
		tr, err := phylotree.ParseNewick(s)
		if err != nil {
			panic(err)
		}
		if err := tr.AlignTaxa(taxa); err != nil {
			panic(err)
		}
		trees = append(trees, tr)
	}
	cons, err := phylotree.MajorityRuleConsensus(trees, 0.5)
	if err != nil {
		panic(err)
	}
	// The ab|cde split appears in all three trees (displayed as the clade
	// away from taxon a); the others are below majority.
	fmt.Println(cons.Newick())
	// Output:
	// ((c,d,e)1.00,a,b);
}
