package phylotree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNewickNeverPanics feeds the parser adversarial byte soup built
// from Newick-ish tokens: it must always return cleanly (tree or error).
func TestParseNewickNeverPanics(t *testing.T) {
	tokens := []string{"(", ")", ",", ";", ":", "'", "a", "b", "0.5", "-1e3",
		"''", "((", "))", " ", "\t", "taxon", ":::", "1..2"}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var b strings.Builder
		for i := 0; i < int(n)%64; i++ {
			b.WriteString(tokens[rng.Intn(len(tokens))])
		}
		tr, err := ParseNewick(b.String())
		if err == nil && tr != nil {
			// Whatever parsed must be structurally valid.
			return tr.Validate() == nil
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseNewickRandomBytes exercises fully arbitrary input.
func TestParseNewickRandomBytes(t *testing.T) {
	f := func(raw []byte) bool {
		tr, err := ParseNewick(string(raw))
		if err == nil && tr != nil {
			return tr.Validate() == nil
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
