package phylotree

import (
	"reflect"
	"testing"
)

// dedupTree parses a newick string and aligns it to the shared taxon order,
// the contract DedupTopologies and the weighted aggregators require.
func dedupTree(t *testing.T, nw string, taxa []string) *Tree {
	t.Helper()
	tr, err := ParseNewick(nw)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.AlignTaxa(taxa); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestDedupTopologies groups hand-built duplicates: three renderings of one
// topology (rotated children, reordered subtrees, decorated with branch
// lengths) must collapse to one representative — the first — while two
// genuinely different topologies stay separate, preserving input order.
func TestDedupTopologies(t *testing.T) {
	taxa := []string{"A", "B", "C", "D", "E", "F"}
	dup1 := dedupTree(t, "((A,B),(C,D),(E,F));", taxa)
	other := dedupTree(t, "((A,C),(B,D),(E,F));", taxa)
	dup2 := dedupTree(t, "((B,A),(D,C),(F,E));", taxa)
	dup3 := dedupTree(t, "((E,F),(A:0.1,B:0.2):0.3,(C:0.4,D:0.5):0.6);", taxa)
	third := dedupTree(t, "((A,E),(C,D),(B,F));", taxa)

	uniq, weights, err := DedupTopologies([]*Tree{dup1, other, dup2, dup3, third})
	if err != nil {
		t.Fatal(err)
	}
	if len(uniq) != 3 {
		t.Fatalf("distinct topologies = %d, want 3", len(uniq))
	}
	if uniq[0] != dup1 || uniq[1] != other || uniq[2] != third {
		t.Error("representatives are not the first occurrences in input order")
	}
	if !reflect.DeepEqual(weights, []int{3, 1, 1}) {
		t.Fatalf("weights = %v, want [3 1 1]", weights)
	}

	if uniq, weights, err := DedupTopologies(nil); err != nil || uniq != nil || weights != nil {
		t.Errorf("empty input: got (%v, %v, %v)", uniq, weights, err)
	}
}

// TestWeightedAggregatorsMatchExpansion is the exactness contract behind
// core's bootstrap dedup: support values and the majority-rule consensus
// computed from (uniq, weights) must equal — bitwise for the supports,
// structurally for the consensus — the plain aggregators run on the full
// duplicated replicate list.
func TestWeightedAggregatorsMatchExpansion(t *testing.T) {
	taxa := []string{"A", "B", "C", "D", "E", "F"}
	// Six replicates, three distinct topologies with multiplicities 3/2/1 —
	// multiplicity 3 crosses the 0.5 majority line only jointly with the
	// agreeing clades of the others, so the consensus depends on the exact
	// weighted counts.
	reps := []*Tree{
		dedupTree(t, "((A,B),(C,D),(E,F));", taxa),
		dedupTree(t, "((A,C),(B,D),(E,F));", taxa),
		dedupTree(t, "((B,A),(F,E),(C,D));", taxa),
		dedupTree(t, "((A,C),(E,F),(D,B));", taxa),
		dedupTree(t, "((A,B):0.5,(C,D),(E,F));", taxa),
		dedupTree(t, "((A,E),(C,D),(B,F));", taxa),
	}
	ref := dedupTree(t, "((A,B),(C,D),(E,F));", taxa)

	uniq, weights, err := DedupTopologies(reps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(weights, []int{3, 2, 1}) {
		t.Fatalf("weights = %v, want [3 2 1]", weights)
	}

	plain, err := SupportValues(ref, reps)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := SupportValuesWeighted(ref, uniq, weights)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, weighted) {
		t.Errorf("weighted support %v != expanded %v", weighted, plain)
	}

	consPlain, err := MajorityRuleConsensus(reps, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	consWeighted, err := MajorityRuleConsensusWeighted(uniq, weights, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := consWeighted.Newick(), consPlain.Newick(); got != want {
		t.Errorf("weighted consensus %s != expanded %s", got, want)
	}

	// Weight validation: zero weights and length mismatches are rejected.
	if _, err := SupportValuesWeighted(ref, uniq, []int{3, 0, 1}); err == nil {
		t.Error("zero weight accepted by SupportValuesWeighted")
	}
	if _, err := MajorityRuleConsensusWeighted(uniq, []int{1, 2}, 0.5); err == nil {
		t.Error("length mismatch accepted by MajorityRuleConsensusWeighted")
	}
}
