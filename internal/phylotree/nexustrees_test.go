package phylotree

import (
	"bytes"
	"strings"
	"testing"
)

const nexusTrees = `#NEXUS
BEGIN TREES;
  TRANSLATE
    1 'Homo sapiens',
    2 Pan,
    3 Gorilla,
    4 Pongo;
  TREE best = [&U] ((1:0.1,2:0.1):0.05,3:0.2,4:0.3);
  TREE alt = ((1:0.1,3:0.1):0.05,2:0.2,4:0.3);
END;
`

func TestReadNexusTrees(t *testing.T) {
	trees, err := ReadNexusTrees(strings.NewReader(nexusTrees))
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("trees = %d", len(trees))
	}
	if trees[0].Name != "best" || trees[1].Name != "alt" {
		t.Errorf("names = %q, %q", trees[0].Name, trees[1].Name)
	}
	best := trees[0].Tree
	if err := best.Validate(); err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, n := range best.Taxa {
		found[n] = true
	}
	for _, want := range []string{"Homo sapiens", "Pan", "Gorilla", "Pongo"} {
		if !found[want] {
			t.Errorf("taxon %q missing after translation: %v", want, best.Taxa)
		}
	}
	// The two trees differ topologically.
	alt := trees[1].Tree
	if err := alt.AlignTaxa(best.Taxa); err != nil {
		t.Fatal(err)
	}
	d, err := RobinsonFoulds(best, alt)
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Error("best and alt parsed identical")
	}
}

func TestReadNexusTreesNoTranslate(t *testing.T) {
	in := "#NEXUS\nBEGIN TREES;\n  TREE t1 = ((a:1,b:1):1,c:1,d:1);\nEND;\n"
	trees, err := ReadNexusTrees(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if trees[0].Tree.NumTips() != 4 {
		t.Errorf("tips = %d", trees[0].Tree.NumTips())
	}
}

func TestReadNexusTreesErrors(t *testing.T) {
	bad := []string{
		"",
		"not nexus",
		"#NEXUS\nBEGIN TREES;\nEND;\n", // no trees
		"#NEXUS\nBEGIN TREES;\n  TREE broken (a,b,c);\nEND;\n",                     // no '='
		"#NEXUS\nBEGIN TREES;\n  TREE x = ((a,b),c;\nEND;\n",                       // bad newick
		"#NEXUS\nBEGIN TREES;\nTRANSLATE 1 a, 2 a;\nTREE x = (1,2,(1,2));\nEND;\n", // dup after translate
	}
	for _, in := range bad {
		if _, err := ReadNexusTrees(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestNexusTreesRoundTrip(t *testing.T) {
	orig, err := ParseNewick("((a:0.1,b:0.2):0.05,c:0.3,d:0.1);")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNexusTrees(&buf, []NamedTree{{Name: "t1", Tree: orig}}); err != nil {
		t.Fatal(err)
	}
	trees, err := ReadNexusTrees(&buf)
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	got := trees[0].Tree
	if err := got.AlignTaxa(orig.Taxa); err != nil {
		t.Fatal(err)
	}
	d, err := RobinsonFoulds(orig, got)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("round trip changed topology (RF=%d)", d)
	}
}
