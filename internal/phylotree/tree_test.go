package phylotree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%02d", i)
	}
	return out
}

func buildLadder(t *testing.T, n int) *Tree {
	t.Helper()
	tr, err := NewTree(names(n))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.InitTriplet(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < n; i++ {
		// Always insert on the branch leading to tip i-1: a caterpillar.
		if err := tr.InsertTip(i, tr.Tips[i-1]); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree([]string{"a", "b"}); err == nil {
		t.Error("2 taxa accepted")
	}
	if _, err := NewTree([]string{"a", "b", "a"}); err == nil {
		t.Error("duplicate taxa accepted")
	}
	if _, err := NewTree([]string{"a", "", "c"}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestTripletTopology(t *testing.T) {
	tr := buildLadder(t, 3)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Edges()); got != 3 {
		t.Errorf("edges = %d, want 3", got)
	}
	if tr.NumInner() != 1 {
		t.Errorf("inner = %d, want 1", tr.NumInner())
	}
}

func TestStepwiseAdditionInvariants(t *testing.T) {
	for _, n := range []int{4, 5, 8, 16, 42} {
		tr := buildLadder(t, n)
		if err := tr.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got, want := len(tr.Edges()), 2*n-3; got != want {
			t.Errorf("n=%d: edges = %d, want %d", n, got, want)
		}
		if got, want := tr.NumInner(), n-2; got != want {
			t.Errorf("n=%d: inner = %d, want %d", n, got, want)
		}
		if got, want := len(tr.InternalEdges()), n-3; got != want {
			t.Errorf("n=%d: internal edges = %d, want %d", n, got, want)
		}
		po := Postorder(tr.Start(), nil)
		if len(po) != n-2 {
			t.Errorf("n=%d: postorder visited %d internals, want %d", n, len(po), n-2)
		}
	}
}

func TestRandomTopologyProperties(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := 4 + int(rawN)%40
		rng := rand.New(rand.NewSource(seed))
		tr, err := RandomTopology(names(n), rng)
		if err != nil {
			return false
		}
		return tr.Validate() == nil && len(tr.Edges()) == 2*n-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestInsertTipErrors(t *testing.T) {
	tr := buildLadder(t, 4)
	if err := tr.InsertTip(0, tr.Tips[1]); err == nil {
		t.Error("re-inserting attached tip accepted")
	}
	if err := tr.InitTriplet(0, 1, 2); err == nil {
		t.Error("InitTriplet on built tree accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := buildLadder(t, 10)
	cl := tr.Clone()
	if err := cl.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Newick() != cl.Newick() {
		t.Error("clone renders differently")
	}
	// Mutate original; clone must not change.
	tr.Tips[3].SetZ(0.77)
	if tr.Newick() == cl.Newick() {
		t.Error("clone shares branch state with original")
	}
}

func TestSetZSymmetry(t *testing.T) {
	tr := buildLadder(t, 5)
	e := tr.Edges()[2]
	e.SetZ(0.42)
	if e.Back.Z != 0.42 {
		t.Error("SetZ not mirrored to Back")
	}
	e.SetZ(1e-20)
	if e.Z != MinBranchLength {
		t.Errorf("SetZ below min not clamped: %g", e.Z)
	}
	e.SetZ(1e6)
	if e.Z != MaxBranchLength {
		t.Errorf("SetZ above max not clamped: %g", e.Z)
	}
}

func TestPruneRegraftRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr, err := RandomTopology(names(12), rng)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Newick()
	bipBefore := tr.Bipartitions()

	// Prune an internal node adjacent to tip 5's neighborhood.
	p := tr.Tips[5].Back // internal ring record whose Back is tip 5
	ps, err := tr.Prune(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Undo(ps); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.Newick(); got != before {
		t.Errorf("undo did not restore tree:\n before %s\n after  %s", before, got)
	}
	after := tr.Bipartitions()
	if len(after) != len(bipBefore) {
		t.Error("bipartition count changed after undo")
	}
}

func TestPruneRegraftMove(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr, err := RandomTopology(names(15), rng)
	if err != nil {
		t.Fatal(err)
	}
	orig := tr.Clone()

	p := tr.Tips[3].Back
	ps, err := tr.Prune(p)
	if err != nil {
		t.Fatal(err)
	}
	// Regraft somewhere else: pick an edge not in the pruned subtree.
	edges := tr.Edges()
	if err := tr.Regraft(ps, edges[len(edges)-1]); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := RobinsonFoulds(orig, tr)
	if err != nil {
		t.Fatal(err)
	}
	if d == 0 {
		t.Log("SPR happened to restore the same topology (allowed but unusual)")
	}
	// Tip set must be preserved.
	for i, tip := range tr.Tips {
		if tip.Back == nil {
			t.Errorf("tip %d detached after SPR", i)
		}
	}
}

func TestPruneErrors(t *testing.T) {
	tr := buildLadder(t, 6)
	if _, err := tr.Prune(tr.Tips[0]); err == nil {
		t.Error("pruning at a tip record accepted")
	}
}

func TestRegraftIntoPrunedBranchRejected(t *testing.T) {
	tr := buildLadder(t, 8)
	p := tr.Tips[4].Back
	ps, err := tr.Prune(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.RegraftZ(ps, ps.P, 0.1, 0.1); err == nil {
		t.Error("regraft into pruned ring accepted")
	}
	if err := tr.Undo(ps); err != nil {
		t.Fatal(err)
	}
}

func TestRadiusEdges(t *testing.T) {
	tr := buildLadder(t, 10)
	p := tr.Tips[0] // directed into the tree
	e1 := RadiusEdges(p, 1)
	e3 := RadiusEdges(p, 3)
	if len(e1) == 0 || len(e3) <= len(e1) {
		t.Errorf("radius enumeration not growing: r1=%d r3=%d", len(e1), len(e3))
	}
	// All returned edges are attached records.
	for _, e := range e3 {
		if e.Back == nil {
			t.Error("detached edge in radius set")
		}
	}
}

func TestRobinsonFouldsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr, err := RandomTopology(names(10), rng)
		if err != nil {
			return false
		}
		d, err := RobinsonFoulds(tr, tr.Clone())
		return err == nil && d == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRobinsonFouldsDifferent(t *testing.T) {
	a := buildLadder(t, 8)
	rng := rand.New(rand.NewSource(123))
	var b *Tree
	var err error
	for i := 0; i < 10; i++ {
		b, err = RandomTopology(names(8), rng)
		if err != nil {
			t.Fatal(err)
		}
		d, err := RobinsonFoulds(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if d > 0 {
			return // found a differing topology, as expected
		}
	}
	t.Error("10 random topologies all identical to the ladder; RF suspect")
}

func TestBranchScoreDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	tr, err := RandomTopology(names(9), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Identity: distance zero.
	d, err := BranchScoreDistance(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self distance = %v", d)
	}
	// Same topology, one branch stretched by delta: distance = delta.
	cl := tr.Clone()
	e := cl.Tips[2]
	orig := e.Z
	e.SetZ(orig + 0.25)
	d, err = BranchScoreDistance(tr, cl)
	if err != nil {
		t.Fatal(err)
	}
	if got := d; got < 0.2499 || got > 0.2501 {
		t.Errorf("stretched-branch distance = %v, want 0.25", got)
	}
	// Different topologies have positive distance.
	other, err := RandomTopology(names(9), rng)
	if err != nil {
		t.Fatal(err)
	}
	d, err = BranchScoreDistance(tr, other)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("distinct-tree distance = %v", d)
	}
	// Symmetry.
	d2, err := BranchScoreDistance(other, tr)
	if err != nil {
		t.Fatal(err)
	}
	if d != d2 {
		t.Errorf("asymmetric: %v vs %v", d, d2)
	}
	// Mismatched taxa rejected.
	small, err := RandomTopology(names(5), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BranchScoreDistance(tr, small); err == nil {
		t.Error("taxon mismatch accepted")
	}
}

func TestRobinsonFouldsMismatch(t *testing.T) {
	a := buildLadder(t, 5)
	b := buildLadder(t, 6)
	if _, err := RobinsonFoulds(a, b); err == nil {
		t.Error("taxon count mismatch accepted")
	}
}

func TestSubtreeTips(t *testing.T) {
	tr := buildLadder(t, 6)
	// The record from tip 0 toward the tree sees all other tips.
	tips := SubtreeTips(tr.Tips[0], nil)
	if len(tips) != 5 {
		t.Errorf("SubtreeTips from tip0 = %v", tips)
	}
	// The reverse direction sees only tip 0.
	tips = SubtreeTips(tr.Tips[0].Back.Ring()[0], nil)
	_ = tips // direction depends on ring layout; just ensure no panic
}

func TestTotalBranchLength(t *testing.T) {
	tr := buildLadder(t, 5)
	want := float64(len(tr.Edges())) * DefaultBranchLength
	// InsertTip halves some branches, so just check positivity and bound.
	got := tr.TotalBranchLength()
	if got <= 0 || got > want*2 {
		t.Errorf("TotalBranchLength = %v", got)
	}
}

func TestAlignTaxa(t *testing.T) {
	tr := buildLadder(t, 5)
	reordered := []string{"t03", "t01", "t04", "t00", "t02"}
	if err := tr.AlignTaxa(reordered); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, name := range reordered {
		if tr.Tips[i].Name != name || tr.Tips[i].Index != i {
			t.Errorf("tip %d = %q idx %d", i, tr.Tips[i].Name, tr.Tips[i].Index)
		}
	}
	if err := tr.AlignTaxa([]string{"x", "y", "z", "w", "v"}); err == nil {
		t.Error("unknown taxa accepted")
	}
	if err := tr.AlignTaxa([]string{"t00"}); err == nil {
		t.Error("short taxa list accepted")
	}
}
