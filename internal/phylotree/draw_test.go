package phylotree

import (
	"math/rand"
	"strings"
	"testing"
)

func TestAsciiBasics(t *testing.T) {
	tr, err := ParseNewick("((a:1,b:1):0.5,c:1,d:1);")
	if err != nil {
		t.Fatal(err)
	}
	art := tr.Ascii()
	lines := strings.Split(art, "\n")
	// 1 root marker + 2 internal edges' nodes... total lines = 1 + edges
	// hanging off the print root = 1 + (taxa + internal-1) = varies; just
	// check structure: every taxon appears exactly once with its branch
	// length, internal nodes render as "+".
	if lines[0] != "*" {
		t.Errorf("first line = %q", lines[0])
	}
	for _, name := range tr.Taxa {
		if strings.Count(art, " "+name+":") != 1 {
			t.Errorf("taxon %q not rendered exactly once:\n%s", name, art)
		}
	}
	if !strings.Contains(art, "+:0.500") {
		t.Errorf("internal branch not rendered:\n%s", art)
	}
	if !strings.Contains(art, "`-- ") || !strings.Contains(art, "|-- ") {
		t.Errorf("connectors missing:\n%s", art)
	}
}

func TestAsciiLargerTreesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr, err := RandomTopology(names(15), rng)
	if err != nil {
		t.Fatal(err)
	}
	a1 := tr.Ascii()
	a2 := tr.Ascii()
	if a1 != a2 {
		t.Error("rendering not deterministic")
	}
	lines := strings.Split(a1, "\n")
	// One line per directed edge from the print root plus the root marker:
	// edges = 2n-3, minus nothing; every node (tip or internal) below the
	// root ring gets one line. Tips: 15; internals below root: n-3.
	want := 1 + 15 + (15 - 3)
	if len(lines) != want {
		t.Errorf("lines = %d, want %d:\n%s", len(lines), want, a1)
	}
	for _, name := range tr.Taxa {
		if strings.Count(a1, " "+name+":") != 1 {
			t.Errorf("taxon %q count wrong", name)
		}
	}
}
