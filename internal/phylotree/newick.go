package phylotree

import (
	"fmt"
	"strconv"
	"strings"
)

// Newick renders the tree as an unrooted Newick string with branch lengths,
// using the internal node adjacent to tip 0 as the trifurcating print root.
func (t *Tree) Newick() string {
	var b strings.Builder
	root := t.Tips[0].Back // internal ring record
	b.WriteByte('(')
	first := true
	for _, r := range root.Ring() {
		if !first {
			b.WriteByte(',')
		}
		first = false
		writeSubtree(&b, r.Back, r.Z)
	}
	b.WriteString(");")
	return b.String()
}

func writeSubtree(b *strings.Builder, nd *Node, z float64) {
	if nd.IsTip() {
		b.WriteString(quoteName(nd.Name))
	} else {
		b.WriteByte('(')
		first := true
		for _, r := range nd.Ring() {
			if r == nd {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			writeSubtree(b, r.Back, r.Z)
		}
		b.WriteByte(')')
	}
	fmt.Fprintf(b, ":%.6f", z)
}

func quoteName(name string) string {
	if strings.ContainsAny(name, " ():,;'\t\n[]") {
		return "'" + strings.ReplaceAll(name, "'", "''") + "'"
	}
	return name
}

// --- parsing ---

type newickAST struct {
	name     string
	length   float64
	hasLen   bool
	children []*newickAST
}

type newickParser struct {
	s   string
	pos int
}

// ParseNewick parses a Newick tree. Internal nodes must be binary except the
// outermost, which may be bi- or trifurcating; a bifurcating root is
// unrooted by fusing its two child branches. Taxon order is order of first
// appearance in the string.
func ParseNewick(s string) (*Tree, error) {
	p := &newickParser{s: s}
	p.skipSpace()
	ast, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.s) && p.s[p.pos] == ';' {
		p.pos++
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return nil, fmt.Errorf("newick: trailing garbage at offset %d", p.pos)
	}

	var taxa []string
	var collect func(n *newickAST) error
	collect = func(n *newickAST) error {
		if len(n.children) == 0 {
			if n.name == "" {
				return fmt.Errorf("newick: unnamed tip")
			}
			taxa = append(taxa, n.name)
			return nil
		}
		for _, c := range n.children {
			if err := collect(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := collect(ast); err != nil {
		return nil, err
	}

	t, err := NewTree(taxa)
	if err != nil {
		return nil, err
	}
	tipIdx := make(map[string]int, len(taxa))
	for i, name := range taxa {
		tipIdx[name] = i
	}

	// build returns a directed record ready to be connected upward.
	var build func(n *newickAST) (*Node, error)
	build = func(n *newickAST) (*Node, error) {
		if len(n.children) == 0 {
			return t.Tips[tipIdx[n.name]], nil
		}
		if len(n.children) != 2 {
			return nil, fmt.Errorf("newick: internal node with %d children (only binary supported)", len(n.children))
		}
		ring := t.newInner().Ring()
		for i, c := range n.children {
			sub, err := build(c)
			if err != nil {
				return nil, err
			}
			Connect(ring[i+1], sub, lenOrDefault(c))
		}
		return ring[0], nil
	}

	switch len(ast.children) {
	case 3:
		ring := t.newInner().Ring()
		for i, c := range ast.children {
			sub, err := build(c)
			if err != nil {
				return nil, err
			}
			Connect(ring[i], sub, lenOrDefault(c))
		}
	case 2:
		a, err := build(ast.children[0])
		if err != nil {
			return nil, err
		}
		b, err := build(ast.children[1])
		if err != nil {
			return nil, err
		}
		Connect(a, b, lenOrDefault(ast.children[0])+lenOrDefault(ast.children[1]))
	default:
		return nil, fmt.Errorf("newick: root with %d children (want 2 or 3)", len(ast.children))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func lenOrDefault(n *newickAST) float64 {
	if n.hasLen {
		return n.length
	}
	return DefaultBranchLength
}

func (p *newickParser) skipSpace() {
	for p.pos < len(p.s) {
		switch p.s[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *newickParser) parseNode() (*newickAST, error) {
	p.skipSpace()
	n := &newickAST{}
	if p.pos < len(p.s) && p.s[p.pos] == '(' {
		p.pos++
		for {
			child, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, child)
			p.skipSpace()
			if p.pos >= len(p.s) {
				return nil, fmt.Errorf("newick: unexpected end inside group")
			}
			if p.s[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.s[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, fmt.Errorf("newick: unexpected %q at offset %d", p.s[p.pos], p.pos)
		}
	}
	// Optional label.
	name, err := p.parseLabel()
	if err != nil {
		return nil, err
	}
	n.name = name
	// Optional branch length.
	p.skipSpace()
	if p.pos < len(p.s) && p.s[p.pos] == ':' {
		p.pos++
		v, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		n.length = v
		n.hasLen = true
	}
	return n, nil
}

func (p *newickParser) parseLabel() (string, error) {
	p.skipSpace()
	if p.pos < len(p.s) && p.s[p.pos] == '\'' {
		p.pos++
		var b strings.Builder
		for p.pos < len(p.s) {
			c := p.s[p.pos]
			if c == '\'' {
				if p.pos+1 < len(p.s) && p.s[p.pos+1] == '\'' {
					b.WriteByte('\'')
					p.pos += 2
					continue
				}
				p.pos++
				return b.String(), nil
			}
			b.WriteByte(c)
			p.pos++
		}
		return "", fmt.Errorf("newick: unterminated quoted label")
	}
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == ':' || c == ',' || c == ')' || c == '(' || c == ';' ||
			c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			break
		}
		p.pos++
	}
	return p.s[start:p.pos], nil
}

func (p *newickParser) parseNumber() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if start == p.pos {
		return 0, fmt.Errorf("newick: expected number at offset %d", p.pos)
	}
	v, err := strconv.ParseFloat(p.s[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("newick: bad number %q: %w", p.s[start:p.pos], err)
	}
	return v, nil
}
