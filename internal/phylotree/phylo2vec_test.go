package phylotree

import (
	"fmt"
	"math/rand"
	"testing"
)

func randomTaxa(n int) []string {
	taxa := make([]string, n)
	for i := range taxa {
		taxa[i] = fmt.Sprintf("t%03d", i)
	}
	return taxa
}

func TestPhylo2VecTriplet(t *testing.T) {
	tr, err := NewTree([]string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.InitTriplet(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	v, err := tr.Phylo2Vec()
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 3 || v[0] != 0 || v[1] != 0 || v[2] != 0 {
		t.Fatalf("triplet vector = %v, want [0 0 0]", v)
	}
	back, err := TreeFromPhylo2Vec(tr.Taxa, v)
	if err != nil {
		t.Fatal(err)
	}
	if rf, err := RobinsonFoulds(tr, back); err != nil || rf != 0 {
		t.Fatalf("triplet round trip RF = %d, err = %v", rf, err)
	}
}

func TestPhylo2VecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{4, 5, 6, 8, 13, 21, 42, 77} {
		for rep := 0; rep < 8; rep++ {
			tr, err := RandomTopology(randomTaxa(n), rng)
			if err != nil {
				t.Fatal(err)
			}
			v, err := tr.Phylo2Vec()
			if err != nil {
				t.Fatalf("n=%d: encode: %v", n, err)
			}
			if err := ValidatePhylo2Vec(v, n); err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			back, err := TreeFromPhylo2Vec(tr.Taxa, v)
			if err != nil {
				t.Fatalf("n=%d: decode: %v", n, err)
			}
			rf, err := RobinsonFoulds(tr, back)
			if err != nil {
				t.Fatal(err)
			}
			if rf != 0 {
				t.Fatalf("n=%d: round trip changed topology, RF = %d", n, rf)
			}
			v2, err := back.Phylo2Vec()
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(v, v2) {
				t.Fatalf("n=%d: re-encode differs: %v vs %v", n, v, v2)
			}
		}
	}
}

// TestPhylo2VecRepresentationInvariance round-trips a topology through its
// Newick text: the parse builds a structurally different representation
// (different anchor, ring order and internal indices), yet the vector must
// be identical because it only depends on the unrooted topology.
func TestPhylo2VecRepresentationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for rep := 0; rep < 20; rep++ {
		tr, err := RandomTopology(randomTaxa(17), rng)
		if err != nil {
			t.Fatal(err)
		}
		v, err := tr.Phylo2Vec()
		if err != nil {
			t.Fatal(err)
		}
		reparsed, err := ParseNewick(tr.Newick())
		if err != nil {
			t.Fatal(err)
		}
		if err := reparsed.AlignTaxa(tr.Taxa); err != nil {
			t.Fatal(err)
		}
		v2, err := reparsed.Phylo2Vec()
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(v, v2) {
			t.Fatalf("reparse changed vector: %v vs %v", v, v2)
		}
	}
}

func TestPhylo2VecDistinguishesTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	taxa := randomTaxa(12)
	for rep := 0; rep < 20; rep++ {
		a, err := RandomTopology(taxa, rng)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RandomTopology(taxa, rng)
		if err != nil {
			t.Fatal(err)
		}
		rf, err := RobinsonFoulds(a, b)
		if err != nil {
			t.Fatal(err)
		}
		va, err := a.Phylo2Vec()
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.Phylo2Vec()
		if err != nil {
			t.Fatal(err)
		}
		if (rf == 0) != equalInts(va, vb) {
			t.Fatalf("RF = %d but vector equality = %v (%v vs %v)", rf, equalInts(va, vb), va, vb)
		}
	}
}

func TestValidatePhylo2VecErrors(t *testing.T) {
	cases := []struct {
		v []int
		n int
	}{
		{[]int{0, 0}, 3},          // wrong length
		{[]int{0, 1, 0}, 3},       // nonzero prefix
		{[]int{0, 0, 0, 3}, 4},    // v[3] > 2
		{[]int{0, 0, 0, -1}, 4},   // negative
		{[]int{0, 0, 0, 0, 5}, 5}, // v[4] > 4
	}
	for _, c := range cases {
		if err := ValidatePhylo2Vec(c.v, c.n); err == nil {
			t.Errorf("ValidatePhylo2Vec(%v, %d) accepted invalid vector", c.v, c.n)
		}
	}
	if err := ValidatePhylo2Vec([]int{0, 0, 0, 2, 4}, 5); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzPhylo2VecRoundTrip drives encode→decode→re-encode over random taxa
// counts and random topologies: the decode must reproduce the topology
// exactly and the re-encode must be bit-identical to the first vector.
func FuzzPhylo2VecRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(4))
	f.Add(int64(62), uint16(42))
	f.Add(int64(9), uint16(3))
	f.Add(int64(-5), uint16(97))
	f.Fuzz(func(t *testing.T, seed int64, rawN uint16) {
		n := 3 + int(rawN)%126
		rng := rand.New(rand.NewSource(seed))
		tr, err := RandomTopology(randomTaxa(n), rng)
		if err != nil {
			t.Fatal(err)
		}
		v, err := tr.Phylo2Vec()
		if err != nil {
			t.Fatalf("encode n=%d: %v", n, err)
		}
		if err := ValidatePhylo2Vec(v, n); err != nil {
			t.Fatalf("encode produced invalid vector: %v", err)
		}
		back, err := TreeFromPhylo2Vec(tr.Taxa, v)
		if err != nil {
			t.Fatalf("decode n=%d: %v", n, err)
		}
		rf, err := RobinsonFoulds(tr, back)
		if err != nil {
			t.Fatal(err)
		}
		if rf != 0 {
			t.Fatalf("round trip changed topology: RF = %d (n=%d, seed=%d)", rf, n, seed)
		}
		v2, err := back.Phylo2Vec()
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(v, v2) {
			t.Fatalf("re-encode differs (n=%d, seed=%d)", n, seed)
		}
	})
}
