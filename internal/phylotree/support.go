package phylotree

import "fmt"

// SupportValues computes non-parametric bootstrap support: for every
// non-trivial bipartition of the reference tree, the fraction of replicate
// trees that contain the same bipartition. All trees must share the
// reference's taxon order (use AlignTaxa on parsed replicates first).
func SupportValues(ref *Tree, replicates []*Tree) (map[Bipartition]float64, error) {
	return SupportValuesWeighted(ref, replicates, nil)
}

// SupportValuesWeighted is SupportValues over a deduplicated replicate set:
// replicate i counts weights[i] times, so the result is identical — the
// same integer counts, the same division — to expanding every replicate to
// its multiplicity and calling SupportValues. A nil weights slice means all
// ones (plain SupportValues); weights must otherwise match replicates in
// length with every entry >= 1.
func SupportValuesWeighted(ref *Tree, replicates []*Tree, weights []int) (map[Bipartition]float64, error) {
	if len(replicates) == 0 {
		return nil, fmt.Errorf("phylotree: no replicate trees")
	}
	if weights != nil && len(weights) != len(replicates) {
		return nil, fmt.Errorf("phylotree: %d weights for %d replicates", len(weights), len(replicates))
	}
	refBip := ref.Bipartitions()
	counts := make(map[Bipartition]int, len(refBip))
	total := 0
	for i, rep := range replicates {
		w := 1
		if weights != nil {
			if w = weights[i]; w < 1 {
				return nil, fmt.Errorf("phylotree: replicate %d has weight %d, want >= 1", i, w)
			}
		}
		total += w
		if len(rep.Tips) != len(ref.Tips) {
			return nil, fmt.Errorf("phylotree: replicate %d has %d taxa, want %d", i, len(rep.Tips), len(ref.Tips))
		}
		for j := range ref.Taxa {
			if ref.Taxa[j] != rep.Taxa[j] {
				return nil, fmt.Errorf("phylotree: replicate %d taxon order differs at %d", i, j)
			}
		}
		for b := range rep.Bipartitions() {
			if refBip[b] {
				counts[b] += w
			}
		}
	}
	out := make(map[Bipartition]float64, len(refBip))
	for b := range refBip {
		out[b] = float64(counts[b]) / float64(total)
	}
	return out, nil
}

// BootstopDivergence measures how unsettled the bootstrap support values
// still are: the replicates are split into halves (even/odd), each half's
// support for the reference tree's bipartitions is computed, and the mean
// absolute difference is returned. Values near zero mean more replicates
// would barely change the reported supports — the idea behind RAxML's
// bootstopping criteria.
func BootstopDivergence(ref *Tree, replicates []*Tree) (float64, error) {
	if len(replicates) < 4 {
		return 0, fmt.Errorf("phylotree: need >= 4 replicates to assess convergence, got %d", len(replicates))
	}
	var a, b []*Tree
	for i, t := range replicates {
		if i%2 == 0 {
			a = append(a, t)
		} else {
			b = append(b, t)
		}
	}
	sa, err := SupportValues(ref, a)
	if err != nil {
		return 0, err
	}
	sb, err := SupportValues(ref, b)
	if err != nil {
		return 0, err
	}
	sum, n := 0.0, 0
	for k, va := range sa {
		d := va - sb[k]
		if d < 0 {
			d = -d
		}
		sum += d
		n++
	}
	if n == 0 {
		return 0, nil
	}
	return sum / float64(n), nil
}

// MeanSupport averages the support values of a tree's bipartitions — a
// scalar summary used by examples and tests.
func MeanSupport(values map[Bipartition]float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}
