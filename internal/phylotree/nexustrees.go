package phylotree

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// NamedTree pairs a tree with its NEXUS label.
type NamedTree struct {
	Name string
	Tree *Tree
}

// ReadNexusTrees parses the TREES block of a NEXUS file, honoring an
// optional TRANSLATE table (the numeric-label indirection most programs
// emit). Rooted markers [&R]/[&U] and other bracket comments are ignored.
func ReadNexusTrees(r io.Reader) ([]NamedTree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() || !strings.EqualFold(strings.TrimSpace(sc.Text()), "#NEXUS") {
		return nil, fmt.Errorf("nexus: missing #NEXUS header")
	}

	var (
		inTrees     bool
		inTranslate bool
		translate   = map[string]string{}
		out         []NamedTree
	)
	for sc.Scan() {
		line := stripBracketComments(sc.Text())
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		upper := strings.ToUpper(trimmed)
		switch {
		case strings.HasPrefix(upper, "BEGIN TREES"):
			inTrees = true
		case strings.HasPrefix(upper, "END;"):
			inTrees, inTranslate = false, false
		case !inTrees:
			continue
		case strings.HasPrefix(upper, "TRANSLATE"):
			inTranslate = true
			rest := strings.TrimSpace(trimmed[len("TRANSLATE"):])
			if rest != "" {
				inTranslate = !parseTranslate(rest, translate)
			}
		case inTranslate:
			inTranslate = !parseTranslate(trimmed, translate)
		case strings.HasPrefix(upper, "TREE"):
			eq := strings.IndexByte(trimmed, '=')
			if eq < 0 {
				return nil, fmt.Errorf("nexus: malformed tree line %q", trimmed)
			}
			name := strings.TrimSpace(trimmed[len("TREE"):eq])
			name = strings.Trim(name, "'* ")
			newick := strings.TrimSpace(trimmed[eq+1:])
			tr, err := ParseNewick(newick)
			if err != nil {
				return nil, fmt.Errorf("nexus: tree %q: %w", name, err)
			}
			if len(translate) > 0 {
				if err := applyTranslate(tr, translate); err != nil {
					return nil, fmt.Errorf("nexus: tree %q: %w", name, err)
				}
			}
			out = append(out, NamedTree{Name: name, Tree: tr})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("nexus: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("nexus: no trees found")
	}
	return out, nil
}

// parseTranslate consumes one line of a TRANSLATE table ("1 taxonA," ...)
// and reports whether the table is complete (line ended with ';').
func parseTranslate(line string, into map[string]string) (done bool) {
	done = strings.HasSuffix(line, ";")
	line = strings.TrimSuffix(line, ";")
	for _, pair := range strings.Split(line, ",") {
		fields := strings.Fields(strings.TrimSpace(pair))
		if len(fields) >= 2 {
			into[fields[0]] = strings.Trim(strings.Join(fields[1:], " "), "'")
		}
	}
	return done
}

// applyTranslate renames the tree's tips through the TRANSLATE table.
func applyTranslate(tr *Tree, translate map[string]string) error {
	seen := map[string]bool{}
	for i, tip := range tr.Tips {
		full, ok := translate[tip.Name]
		if !ok {
			// Untranslated labels are allowed to be literal names already.
			full = tip.Name
		}
		if seen[full] {
			return fmt.Errorf("duplicate taxon %q after translation", full)
		}
		seen[full] = true
		tip.Name = full
		tr.Taxa[i] = full
	}
	return nil
}

// stripBracketComments removes [...] comments, as in NEXUS.
func stripBracketComments(line string) string {
	for {
		open := strings.IndexByte(line, '[')
		if open < 0 {
			return line
		}
		end := strings.IndexByte(line[open:], ']')
		if end < 0 {
			return line[:open]
		}
		line = line[:open] + line[open+end+1:]
	}
}

// WriteNexusTrees emits a TREES block with the given labelled trees.
func WriteNexusTrees(w io.Writer, trees []NamedTree) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#NEXUS")
	fmt.Fprintln(bw, "BEGIN TREES;")
	for _, nt := range trees {
		fmt.Fprintf(bw, "  TREE %s = %s\n", nt.Name, nt.Tree.Newick())
	}
	fmt.Fprintln(bw, "END;")
	return bw.Flush()
}
