// Package phylotree implements the unrooted binary phylogenetic tree
// topology used by the likelihood and search code, mirroring RAxML's data
// structure: every internal node is a ring of three directed Node records
// that share a likelihood-vector slot, and every directed record has a Back
// pointer to the node at the other end of its branch.
//
// Branch lengths are stored as expected substitutions per site (t), not as
// RAxML's z = exp(-t/fracchange) parameterization; the makenewz kernel in
// internal/likelihood optimizes t directly.
package phylotree

import (
	"fmt"
	"math/rand"
)

// DefaultBranchLength is the initial length assigned to newly created
// branches (RAxML uses 0.1 as its default starting branch length too).
const DefaultBranchLength = 0.1

// MinBranchLength and MaxBranchLength bound all branch lengths; the
// optimizer clamps into this range (mirrors RAxML's zmin/zmax bounds).
const (
	MinBranchLength = 1e-8
	MaxBranchLength = 10.0
)

// Node is one directed record of the topology. A tip is a single record
// (Next == nil); an internal node is a ring of three records connected via
// Next that share the same Index.
type Node struct {
	Index int     // likelihood-vector slot: tips 0..n-1, internals n..2n-3
	Name  string  // tip name; empty for internal records
	Next  *Node   // ring pointer (nil for tips)
	Back  *Node   // node at the other end of this branch (nil if detached)
	Z     float64 // branch length to Back; kept equal on both directions
}

// IsTip reports whether nd is a tip record.
func (nd *Node) IsTip() bool { return nd.Next == nil }

// Ring returns the three records of an internal node (nd, nd.Next,
// nd.Next.Next). It panics on tips.
func (nd *Node) Ring() [3]*Node {
	if nd.IsTip() {
		panic("phylotree: Ring on tip")
	}
	return [3]*Node{nd, nd.Next, nd.Next.Next}
}

// Connect joins a and b with a branch of length z.
func Connect(a, b *Node, z float64) {
	a.Back, b.Back = b, a
	z = clampZ(z)
	a.Z, b.Z = z, z
}

func clampZ(z float64) float64 {
	if z < MinBranchLength {
		return MinBranchLength
	}
	if z > MaxBranchLength {
		return MaxBranchLength
	}
	return z
}

// SetZ sets the branch length on both directions of nd's branch.
func (nd *Node) SetZ(z float64) {
	z = clampZ(z)
	nd.Z = z
	if nd.Back != nil {
		nd.Back.Z = z
	}
}

// Tree is an unrooted binary tree over a fixed taxon set.
type Tree struct {
	Taxa []string // taxon names; tip i has Index i and Name Taxa[i]
	Tips []*Node  // tip records, indexed by taxon index

	inner     []*Node // one representative record per internal ring
	nextInner int     // next internal Index to hand out
	freeIdx   []int   // released internal indices available for reuse

	branchHooks []func(*Node) // observers of topology/branch mutations
}

// NewTree allocates a tree skeleton (no topology yet) for the given taxa.
func NewTree(taxa []string) (*Tree, error) {
	if len(taxa) < 3 {
		return nil, fmt.Errorf("phylotree: need at least 3 taxa, got %d", len(taxa))
	}
	seen := make(map[string]bool, len(taxa))
	t := &Tree{
		Taxa:      append([]string(nil), taxa...),
		Tips:      make([]*Node, len(taxa)),
		nextInner: len(taxa),
	}
	for i, name := range taxa {
		if name == "" {
			return nil, fmt.Errorf("phylotree: empty taxon name at %d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("phylotree: duplicate taxon %q", name)
		}
		seen[name] = true
		t.Tips[i] = &Node{Index: i, Name: name}
	}
	return t, nil
}

// OnBranchChange registers fn as an observer of the tree's own mutating
// operations (InsertTip, RemoveTip, Prune, Regraft, Undo). fn receives one
// directed record per affected branch, called *before* a branch is destroyed
// — while the topology is still fully connected, so the observer can walk
// outward from both ends — and *after* a branch is created or re-joined.
// Likelihood engines use this to invalidate cached partial vectors (see
// likelihood.Engine.AttachTree). Direct SetZ/Connect calls bypass the tree
// and are not observed; callers optimizing branch lengths by hand must
// invalidate explicitly. Hooks are not copied by Clone.
func (t *Tree) OnBranchChange(fn func(*Node)) {
	t.branchHooks = append(t.branchHooks, fn)
}

// notifyBranch reports a branch mutation at nd to all registered observers.
func (t *Tree) notifyBranch(nd *Node) {
	if nd == nil {
		return
	}
	for _, fn := range t.branchHooks {
		fn(nd)
	}
}

// NumTips returns the number of taxa.
func (t *Tree) NumTips() int { return len(t.Tips) }

// NumInner returns the number of internal nodes currently in the topology.
func (t *Tree) NumInner() int { return len(t.inner) }

// MaxNodeIndex returns an exclusive upper bound on Index values, used to
// size likelihood-vector tables (2n-2 covers tips plus all internals).
func (t *Tree) MaxNodeIndex() int { return 2*len(t.Tips) - 2 }

// newInner allocates a fresh internal ring and returns its representative,
// preferring released indices so that repeated insert/remove cycles (trial
// insertions during stepwise addition) do not grow the index space past
// MaxNodeIndex.
func (t *Tree) newInner() *Node {
	var idx int
	if n := len(t.freeIdx); n > 0 {
		idx = t.freeIdx[n-1]
		t.freeIdx = t.freeIdx[:n-1]
	} else {
		idx = t.nextInner
		t.nextInner++
	}
	a := &Node{Index: idx}
	b := &Node{Index: idx}
	c := &Node{Index: idx}
	a.Next, b.Next, c.Next = b, c, a
	t.inner = append(t.inner, a)
	return a
}

// NewInternalRing allocates a fresh, detached internal node ring for
// algorithms that assemble topologies bottom-up (e.g. neighbor joining);
// the caller wires its three records with Connect.
func (t *Tree) NewInternalRing() *Node { return t.newInner() }

// reuseInner re-registers a previously detached ring (after SPR prune).
func (t *Tree) reuseInner(ring *Node) {
	t.inner = append(t.inner, ring)
}

// InitTriplet wires the first three tips around one internal node, the seed
// topology for stepwise addition.
func (t *Tree) InitTriplet(i, j, k int) error {
	if len(t.inner) != 0 {
		return fmt.Errorf("phylotree: InitTriplet on non-empty topology")
	}
	if i == j || j == k || i == k {
		return fmt.Errorf("phylotree: triplet indices must be distinct")
	}
	center := t.newInner()
	r := center.Ring()
	Connect(r[0], t.Tips[i], DefaultBranchLength)
	Connect(r[1], t.Tips[j], DefaultBranchLength)
	Connect(r[2], t.Tips[k], DefaultBranchLength)
	t.notifyBranch(r[0])
	return nil
}

// InsertTip splits the branch (at, at.Back) with a fresh internal node and
// attaches tip index ti to it. The split halves the existing branch length.
func (t *Tree) InsertTip(ti int, at *Node) error {
	tip := t.Tips[ti]
	if tip.Back != nil {
		return fmt.Errorf("phylotree: tip %d already attached", ti)
	}
	if at == nil || at.Back == nil {
		return fmt.Errorf("phylotree: insertion edge is detached")
	}
	t.notifyBranch(at) // the branch about to be split
	other := at.Back
	half := at.Z / 2
	n := t.newInner()
	r := n.Ring()
	Connect(r[0], tip, DefaultBranchLength)
	Connect(r[1], at, half)
	Connect(r[2], other, half)
	t.notifyBranch(r[0])
	t.notifyBranch(r[1])
	t.notifyBranch(r[2])
	return nil
}

// Edges returns one directed record per branch in deterministic discovery
// order starting from the first attached tip. It also works on partially
// built topologies (during stepwise addition), enumerating the connected
// component of that tip.
func (t *Tree) Edges() []*Node {
	var edges []*Node
	seen := make(map[*Node]bool)
	var visit func(nd *Node)
	visit = func(nd *Node) {
		if nd == nil || nd.Back == nil || seen[nd] {
			return
		}
		seen[nd] = true
		seen[nd.Back] = true
		edges = append(edges, nd)
		if !nd.Back.IsTip() {
			for _, r := range nd.Back.Ring() {
				if r != nd.Back {
					visit(r)
				}
			}
		}
	}
	for _, tip := range t.Tips {
		if tip.Back != nil {
			visit(tip)
			break
		}
	}
	return edges
}

// InternalEdges returns the directed records of branches whose both ends are
// internal nodes (the branches that define non-trivial bipartitions).
func (t *Tree) InternalEdges() []*Node {
	var out []*Node
	for _, e := range t.Edges() {
		if !e.IsTip() && !e.Back.IsTip() {
			out = append(out, e)
		}
	}
	return out
}

// Start returns a canonical traversal anchor: the record opposite tip 0.
func (t *Tree) Start() *Node { return t.Tips[0].Back }

// Postorder appends to out every directed record on the "away" side of nd in
// postorder: children before parents. Calling it with t.Start() visits every
// internal record needed to compute the view toward tip 0.
func Postorder(nd *Node, out []*Node) []*Node {
	if nd.IsTip() {
		return out
	}
	for _, r := range nd.Ring() {
		if r != nd {
			out = Postorder(r.Back, out)
		}
	}
	return append(out, nd)
}

// Complete reports whether every tip is attached and the topology has the
// expected number of internal nodes (n-2).
func (t *Tree) Complete() bool {
	for _, tip := range t.Tips {
		if tip.Back == nil {
			return false
		}
	}
	return len(t.inner) == len(t.Tips)-2
}

// Validate walks the topology and checks structural invariants: Back
// symmetry, branch length agreement, ring integrity, and full connectivity.
func (t *Tree) Validate() error {
	if !t.Complete() {
		return fmt.Errorf("phylotree: incomplete topology (%d inner for %d tips)", len(t.inner), len(t.Tips))
	}
	visited := make(map[*Node]bool)
	var walk func(nd *Node) error
	walk = func(nd *Node) error {
		if visited[nd] {
			return nil
		}
		visited[nd] = true
		if nd.Back == nil {
			return fmt.Errorf("phylotree: node %d has nil Back", nd.Index)
		}
		if nd.Back.Back != nd {
			return fmt.Errorf("phylotree: asymmetric Back at node %d", nd.Index)
		}
		//lint:ignore floatcmp invariant check: both directions of a branch must hold the bit-identical length, any drift is a wiring bug
		if nd.Z != nd.Back.Z {
			return fmt.Errorf("phylotree: branch length mismatch at node %d: %g vs %g", nd.Index, nd.Z, nd.Back.Z)
		}
		if nd.Z < MinBranchLength || nd.Z > MaxBranchLength {
			return fmt.Errorf("phylotree: branch length %g out of bounds at node %d", nd.Z, nd.Index)
		}
		if !nd.IsTip() {
			if nd.Next == nil || nd.Next.Next == nil || nd.Next.Next.Next != nd {
				return fmt.Errorf("phylotree: broken ring at node %d", nd.Index)
			}
			for _, r := range nd.Ring() {
				if r.Index != nd.Index {
					return fmt.Errorf("phylotree: ring index mismatch at node %d", nd.Index)
				}
				if err := walk(r); err != nil {
					return err
				}
			}
		}
		return walk(nd.Back)
	}
	if err := walk(t.Tips[0]); err != nil {
		return err
	}
	// All tips reachable?
	for i, tip := range t.Tips {
		if !visited[tip] {
			return fmt.Errorf("phylotree: tip %d (%s) unreachable", i, tip.Name)
		}
	}
	return nil
}

// RandomTopology builds a random topology by stepwise addition with uniform
// random insertion edges — the randomized starting-tree shape RAxML uses
// (there the order/placement is parsimony-guided; see internal/parsimony).
func RandomTopology(taxa []string, rng *rand.Rand) (*Tree, error) {
	t, err := NewTree(taxa)
	if err != nil {
		return nil, err
	}
	order := rng.Perm(len(taxa))
	if err := t.InitTriplet(order[0], order[1], order[2]); err != nil {
		return nil, err
	}
	for _, ti := range order[3:] {
		edges := t.Edges()
		at := edges[rng.Intn(len(edges))]
		if err := t.InsertTip(ti, at); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AlignTaxa renumbers the tree's tips to match the given taxon order (e.g.
// the row order of an alignment), so Index values and bipartitions are
// comparable across trees. The taxon sets must be identical.
func (t *Tree) AlignTaxa(taxa []string) error {
	if len(taxa) != len(t.Taxa) {
		return fmt.Errorf("phylotree: taxon count mismatch %d vs %d", len(taxa), len(t.Taxa))
	}
	byName := make(map[string]*Node, len(t.Tips))
	for _, tip := range t.Tips {
		byName[tip.Name] = tip
	}
	newTips := make([]*Node, len(taxa))
	for i, name := range taxa {
		tip, ok := byName[name]
		if !ok {
			return fmt.Errorf("phylotree: taxon %q not in tree", name)
		}
		tip.Index = i
		newTips[i] = tip
	}
	t.Tips = newTips
	t.Taxa = append(t.Taxa[:0], taxa...)
	return nil
}

// TotalBranchLength sums all branch lengths.
func (t *Tree) TotalBranchLength() float64 {
	sum := 0.0
	for _, e := range t.Edges() {
		sum += e.Z
	}
	return sum
}

// Clone deep-copies the topology and branch lengths. Branch-change hooks
// registered with OnBranchChange are not copied: they observe this tree's
// node identities, which the clone does not share.
func (t *Tree) Clone() *Tree {
	nt := &Tree{
		Taxa:      append([]string(nil), t.Taxa...),
		Tips:      make([]*Node, len(t.Tips)),
		nextInner: t.nextInner,
		freeIdx:   append([]int(nil), t.freeIdx...),
	}
	clone := make(map[*Node]*Node)
	var get func(nd *Node) *Node
	get = func(nd *Node) *Node {
		if nd == nil {
			return nil
		}
		if c, ok := clone[nd]; ok {
			return c
		}
		c := &Node{Index: nd.Index, Name: nd.Name, Z: nd.Z}
		clone[nd] = c
		c.Next = get(nd.Next)
		c.Back = get(nd.Back)
		return c
	}
	for i, tip := range t.Tips {
		nt.Tips[i] = get(tip)
	}
	for _, in := range t.inner {
		nt.inner = append(nt.inner, get(in))
	}
	return nt
}
