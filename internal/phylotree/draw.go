package phylotree

import (
	"fmt"
	"strings"
)

// Ascii renders the tree as an indented outline (the style of the Unix
// `tree` command), rooted at the internal node adjacent to tip 0, with
// branch lengths on every edge — the quick visual check a CLI user wants
// before opening a real tree viewer.
//
//	*
//	|-- a:0.100
//	|-- +:0.200
//	|   |-- b:0.100
//	|   `-- c:0.100
//	`-- d:0.300
func (t *Tree) Ascii() string {
	var b strings.Builder
	b.WriteString("*\n")
	root := t.Tips[0].Back
	ring := root.Ring()
	for i, r := range ring {
		drawNode(&b, r, "", i == len(ring)-1)
	}
	return strings.TrimRight(b.String(), "\n")
}

// drawNode prints the subtree behind record r (r.Back side).
func drawNode(b *strings.Builder, r *Node, prefix string, last bool) {
	conn, cont := "|-- ", "|   "
	if last {
		conn, cont = "`-- ", "    "
	}
	nd := r.Back
	label := "+"
	if nd.IsTip() {
		label = nd.Name
	}
	fmt.Fprintf(b, "%s%s%s:%.3f\n", prefix, conn, label, r.Z)
	if nd.IsTip() {
		return
	}
	var kids []*Node
	for _, k := range nd.Ring() {
		if k != nd {
			kids = append(kids, k)
		}
	}
	for i, k := range kids {
		drawNode(b, k, prefix+cont, i == len(kids)-1)
	}
}
