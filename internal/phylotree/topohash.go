package phylotree

import "fmt"

// TopoHash is a 128-bit canonical topology fingerprint. Two complete trees
// over the same taxon set hash equal iff they have the same unrooted
// topology (up to the usual probabilistic collision bound of a 128-bit
// hash); representation details — traversal order, ring rotation, which tip
// anchors the recursion, branch lengths — do not affect it.
//
// The hash is a wrapping sum over all edges of a per-bipartition term, so it
// can be updated incrementally under local edits: PruneScope exploits this
// to price every SPR/NNI candidate topology in O(1) after an O(n) per-prune
// pass, without rebuilding or rehashing the tree.
type TopoHash [2]uint64

// IsZero reports whether h is the zero fingerprint (no valid hash).
func (h TopoHash) IsZero() bool { return h[0] == 0 && h[1] == 0 }

// String renders the fingerprint as 32 hex digits.
func (h TopoHash) String() string { return fmt.Sprintf("%016x%016x", h[0], h[1]) }

func (h TopoHash) add(o TopoHash) TopoHash { return TopoHash{h[0] + o[0], h[1] + o[1]} }
func (h TopoHash) sub(o TopoHash) TopoHash { return TopoHash{h[0] - o[0], h[1] - o[1]} }

// splitmix64 is the SplitMix64 finalizer, a cheap full-avalanche mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const (
	topoSalt0 = 0x8c2f1d6a9be43710
	topoSalt1 = 0x5e71c9ab04d8f326
)

// TopoHasher derives per-tip Zobrist keys for a fixed taxon count and turns
// tip-set sums into per-bipartition hash terms. One hasher is shared by all
// hashing for a given alignment; it is immutable after construction and safe
// for concurrent use.
type TopoHasher struct {
	n          int
	keyA, keyB []uint64 // independent per-tip keys for the two lanes
	totA, totB uint64   // sums over all tips, for side complementation
}

// NewTopoHasher builds the key tables for n taxa.
func NewTopoHasher(n int) *TopoHasher {
	h := &TopoHasher{
		n:    n,
		keyA: make([]uint64, n),
		keyB: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		h.keyA[i] = splitmix64(uint64(i)*2 + 1)
		h.keyB[i] = splitmix64(uint64(i)*2 + 0x4000000000000000)
		h.totA += h.keyA[i]
		h.totB += h.keyB[i]
	}
	return h
}

// NumTips returns the taxon count the hasher was built for.
func (h *TopoHasher) NumTips() int { return h.n }

// term maps one bipartition to its hash contribution. (a, b) are the
// wrapping key sums of one side's tip set; has0 says whether that side
// contains tip 0. The side holding tip 0 is complemented against the full
// totals, so both orientations of an edge produce the same term.
func (h *TopoHasher) term(a, b uint64, has0 bool) TopoHash {
	if has0 {
		a, b = h.totA-a, h.totB-b
	}
	x0 := splitmix64(a ^ topoSalt0)
	x1 := splitmix64(a ^ topoSalt1)
	return TopoHash{splitmix64(x0 ^ b), splitmix64(x1 ^ b)}
}

// TreeHash computes the canonical fingerprint of a complete topology in one
// O(n) postorder from tip 0. Every edge contributes its bipartition term;
// the recursion always carries the side away from tip 0, so no
// complementation is needed here.
func (h *TopoHasher) TreeHash(t *Tree) (TopoHash, error) {
	if t.NumTips() != h.n {
		return TopoHash{}, fmt.Errorf("phylotree: hasher built for %d taxa, tree has %d", h.n, t.NumTips())
	}
	if !t.Complete() {
		return TopoHash{}, fmt.Errorf("phylotree: TreeHash on incomplete topology")
	}
	var sum TopoHash
	edges := 0
	var rec func(nd *Node) (uint64, uint64)
	rec = func(nd *Node) (uint64, uint64) {
		back := nd.Back
		var a, b uint64
		if back.IsTip() {
			a, b = h.keyA[back.Index], h.keyB[back.Index]
		} else {
			for _, r := range back.Ring() {
				if r != back {
					ra, rb := rec(r)
					a += ra
					b += rb
				}
			}
		}
		sum = sum.add(h.term(a, b, false))
		edges++
		return a, b
	}
	rec(t.Tips[0])
	if want := 2*h.n - 3; edges != want {
		return TopoHash{}, fmt.Errorf("phylotree: TreeHash visited %d edges, want %d", edges, want)
	}
	return sum, nil
}

// psEntry is the per-record state PruneScope precomputes for one candidate
// insertion edge: the key sums of the tips on the record's far side (away
// from the prune junction, never containing the pruned subtree), and the
// accumulated hash correction for all edges on the junction→record path.
type psEntry struct {
	dA, dB uint64
	has0   bool
	acc    TopoHash
}

// PruneScope prices the canonical hash of every would-be topology reachable
// by regrafting one pruned subtree, incrementally from the prune/regraft
// edit. Reset runs two O(n) passes over the pruned tree; CandidateHash then
// answers in O(1) per insertion edge with zero allocations, which is what
// lets the search memo probe every SPR/NNI candidate before scoring it.
//
// The identity it implements: regrafting at candidate edge f changes exactly
// the edges on the junction→f path (the pruned tip set S flips from their
// near side to their far side), removes one of the two junction edges, and
// splits f in two — one half keeps f's old bipartition, the other gains S.
// All terms are precomputed per record in Reset; CandidateHash just sums.
type PruneScope struct {
	h      *TopoHasher
	ent    map[*Node]psEntry
	base   TopoHash // hash of the tree as it stood before the prune
	sA, sB uint64   // key sums of the pruned subtree's tips
	has0S  bool
	valid  bool
}

// NewPruneScope allocates a reusable scope backed by the given hasher.
func NewPruneScope(h *TopoHasher) *PruneScope {
	return &PruneScope{h: h, ent: make(map[*Node]psEntry, 4*h.n)}
}

// Reset recomputes the candidate tables for one prune. It must be called
// with the tree in its pruned state (after Tree.Prune returned pr) and
// before any CandidateHash probes for that prune. The previous prune's
// tables are discarded.
func (s *PruneScope) Reset(pr *PrunedSubtree) error {
	s.valid = false
	clear(s.ent)
	s.base = TopoHash{}
	if pr == nil || pr.P == nil || pr.Q == nil || pr.R == nil {
		return fmt.Errorf("phylotree: PruneScope.Reset on nil prune state")
	}
	if pr.Q.Back != pr.R {
		return fmt.Errorf("phylotree: PruneScope.Reset before prune (junction not joined)")
	}

	// Pruned subtree: key sums plus the base terms of its internal edges
	// and its pendant edge, none of which move under any regraft.
	s.sA, s.sB, s.has0S = s.downAdd(pr.P, false)

	// Each junction side: far-side sums for every record, accumulating the
	// pre-edit terms of all region edges into base.
	rA, rB, has0R := s.sideDown(pr.R)
	qA, qB, has0Q := s.sideDown(pr.Q)
	if rA+qA+s.sA != s.h.totA || rB+qB+s.sB != s.h.totB {
		return fmt.Errorf("phylotree: PruneScope tip-sum mismatch (tree and hasher disagree)")
	}

	// The two pre-edit junction edges: {R | Q∪S} and {Q | R∪S}.
	termR := s.h.term(rA, rB, has0R)
	termQ := s.h.term(qA, qB, has0Q)
	s.base = s.base.add(termR).add(termQ)

	// Path corrections: candidates on the R side lose the {R | Q∪S} edge
	// (the junction closes to {Q | R∪S}), and vice versa.
	s.sideAcc(pr.R, TopoHash{}.sub(termR))
	s.sideAcc(pr.Q, TopoHash{}.sub(termQ))
	s.valid = true
	return nil
}

// downAdd walks the subtree behind nd.Back, returning its tip-key sums and
// adding each visited edge's pre-edit term to base. With record set, every
// visited record also gets a psEntry holding its far-side sums.
func (s *PruneScope) downAdd(nd *Node, record bool) (uint64, uint64, bool) {
	back := nd.Back
	var a, b uint64
	var has0 bool
	if back.IsTip() {
		a, b = s.h.keyA[back.Index], s.h.keyB[back.Index]
		has0 = back.Index == 0
	} else {
		for _, r := range back.Ring() {
			if r != back {
				ra, rb, r0 := s.downAdd(r, record)
				a += ra
				b += rb
				has0 = has0 || r0
			}
		}
	}
	s.base = s.base.add(s.h.term(a, b, has0))
	if record {
		s.ent[nd] = psEntry{dA: a, dB: b, has0: has0}
	}
	return a, b, has0
}

// sideDown covers one junction side: the records behind anchor, which are
// exactly the insertion edges RadiusEdgesInto enumerates from the opposite
// junction record. A tip anchor has no insertable region edges.
func (s *PruneScope) sideDown(anchor *Node) (uint64, uint64, bool) {
	if anchor.IsTip() {
		return s.h.keyA[anchor.Index], s.h.keyB[anchor.Index], anchor.Index == 0
	}
	var a, b uint64
	var has0 bool
	for _, r := range anchor.Ring() {
		if r != anchor {
			ra, rb, r0 := s.downAdd(r, true)
			a += ra
			b += rb
			has0 = has0 || r0
		}
	}
	return a, b, has0
}

// sideAcc runs the preorder pass over one junction side, storing for each
// record the summed correction of all strict-ancestor path edges (each
// flips the pruned tips S from its near to its far side) plus the junction
// correction the side started with.
func (s *PruneScope) sideAcc(anchor *Node, acc0 TopoHash) {
	if anchor.IsTip() {
		return
	}
	for _, r := range anchor.Ring() {
		if r != anchor {
			s.accPass(r, acc0)
		}
	}
}

func (s *PruneScope) accPass(nd *Node, acc TopoHash) {
	e := s.ent[nd]
	e.acc = acc
	s.ent[nd] = e
	back := nd.Back
	if back.IsTip() {
		return
	}
	oldTerm := s.h.term(e.dA, e.dB, e.has0)
	newTerm := s.h.term(e.dA+s.sA, e.dB+s.sB, e.has0 || s.has0S)
	childAcc := acc.add(newTerm).sub(oldTerm)
	for _, r := range back.Ring() {
		if r != back {
			s.accPass(r, childAcc)
		}
	}
}

// CandidateHash returns the canonical hash of the topology that would
// result from regrafting the current prune's subtree at insertion edge at.
// It is O(1), allocation-free, and safe for concurrent calls between a
// Reset and the next mutation of the scope. ok is false when at is not a
// known insertion edge for the current prune (or no prune is loaded).
func (s *PruneScope) CandidateHash(at *Node) (TopoHash, bool) {
	if !s.valid {
		return TopoHash{}, false
	}
	e, ok := s.ent[at]
	if !ok {
		return TopoHash{}, false
	}
	hh := s.base.add(e.acc)
	hh = hh.add(s.h.term(e.dA+s.sA, e.dB+s.sB, e.has0 || s.has0S))
	return hh, true
}

// DedupTopologies groups trees by canonical topology hash, returning the
// first representative of each distinct topology (input order preserved)
// and, aligned with it, each representative's multiplicity. All trees must
// share one taxon set in one order (AlignTaxa parsed trees first): the hash
// is relabel-sensitive by design, so taxon index i must mean the same taxon
// everywhere. Branch lengths are ignored — two trees dedupe iff they are
// the same unrooted topology. Callers feeding consensus or support should
// pair the result with the *Weighted variants, which reproduce the
// undeduplicated answer exactly.
func DedupTopologies(trees []*Tree) (uniq []*Tree, weights []int, err error) {
	if len(trees) == 0 {
		return nil, nil, nil
	}
	h := NewTopoHasher(len(trees[0].Tips))
	idx := make(map[TopoHash]int, len(trees))
	for i, t := range trees {
		th, err := h.TreeHash(t)
		if err != nil {
			return nil, nil, fmt.Errorf("phylotree: dedup tree %d: %w", i, err)
		}
		if j, ok := idx[th]; ok {
			weights[j]++
			continue
		}
		idx[th] = len(uniq)
		uniq = append(uniq, t)
		weights = append(weights, 1)
	}
	return uniq, weights, nil
}
