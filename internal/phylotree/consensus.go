package phylotree

import (
	"fmt"
	"sort"
)

// MajorityRuleConsensus builds the (extended) majority-rule consensus of a
// set of trees over the same taxon set: every bipartition appearing in more
// than threshold (e.g. 0.5) of the input trees becomes a clade of the
// consensus. The result may be multifurcating; it is returned as a rooted
// clade structure (ConsensusNode) rather than a binary Tree, exactly like
// the consensus output of phylogenetics packages.
func MajorityRuleConsensus(trees []*Tree, threshold float64) (*ConsensusNode, error) {
	return MajorityRuleConsensusWeighted(trees, nil, threshold)
}

// MajorityRuleConsensusWeighted is MajorityRuleConsensus over a deduplicated
// tree set: tree i counts weights[i] times. Every count, the majority cutoff
// and the reported supports are computed from the same integers the expanded
// set would produce, so the consensus is identical to replicating each tree
// to its multiplicity. A nil weights slice means all ones; weights must
// otherwise match trees in length with every entry >= 1.
func MajorityRuleConsensusWeighted(trees []*Tree, weights []int, threshold float64) (*ConsensusNode, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("phylotree: no trees for consensus")
	}
	if weights != nil && len(weights) != len(trees) {
		return nil, fmt.Errorf("phylotree: %d weights for %d trees", len(weights), len(trees))
	}
	if threshold < 0.5 || threshold >= 1 {
		return nil, fmt.Errorf("phylotree: consensus threshold %g must be in [0.5, 1)", threshold)
	}
	ref := trees[0]
	n := len(ref.Tips)
	counts := make(map[Bipartition]int)
	total := 0
	for i, t := range trees {
		w := 1
		if weights != nil {
			if w = weights[i]; w < 1 {
				return nil, fmt.Errorf("phylotree: tree %d has weight %d, want >= 1", i, w)
			}
		}
		total += w
		if len(t.Tips) != n {
			return nil, fmt.Errorf("phylotree: tree %d has %d taxa, want %d", i, len(t.Tips), n)
		}
		for j := range ref.Taxa {
			if t.Taxa[j] != ref.Taxa[j] {
				return nil, fmt.Errorf("phylotree: tree %d taxon order differs at %d", i, j)
			}
		}
		for b := range t.Bipartitions() {
			counts[b] += w
		}
	}

	// Keep bipartitions above threshold; they are guaranteed pairwise
	// compatible (any two clades present together in >50% of trees must
	// co-occur in at least one tree, hence nest or be disjoint).
	type clade struct {
		bits    []uint64
		size    int
		support float64
	}
	var clades []clade
	minCount := int(threshold*float64(total)) + 1
	//lint:ignore floatcmp 0.5 is exactly representable; this detects the strict-majority special case, not a computed value
	if threshold == 0.5 && total%2 == 0 {
		minCount = total/2 + 1
	}
	for b, c := range counts {
		if c < minCount {
			continue
		}
		bits := bitsOf(b)
		clades = append(clades, clade{
			bits:    bits,
			size:    popcount(bits),
			support: float64(c) / float64(total),
		})
	}
	// Sort by size descending so parents precede children.
	sort.Slice(clades, func(i, j int) bool {
		if clades[i].size != clades[j].size {
			return clades[i].size > clades[j].size
		}
		return lessBits(clades[i].bits, clades[j].bits)
	})

	words := (n + 63) / 64
	rootBits := make([]uint64, words)
	for i := 0; i < n; i++ {
		rootBits[i/64] |= 1 << (i % 64)
	}
	root := &ConsensusNode{Support: 1}
	nodes := []*consensusBuild{{node: root, bits: rootBits}}

	for _, cl := range clades {
		// Find the smallest existing clade containing this one.
		parent := nodes[0]
		for _, cand := range nodes[1:] {
			if containsBits(cand.bits, cl.bits) &&
				(parent == nil || popcount(cand.bits) < popcount(parent.bits)) {
				parent = cand
			}
		}
		child := &consensusBuild{
			node: &ConsensusNode{Support: cl.support},
			bits: cl.bits,
		}
		parent.node.Children = append(parent.node.Children, child.node)
		parent.children = append(parent.children, child)
		nodes = append(nodes, child)
	}

	// Attach tips to the smallest clade containing them.
	for ti := 0; ti < n; ti++ {
		var owner *consensusBuild
		for _, cand := range nodes {
			if cand.bits[ti/64]&(1<<(ti%64)) != 0 &&
				(owner == nil || popcount(cand.bits) < popcount(owner.bits)) {
				owner = cand
			}
		}
		owner.node.Children = append(owner.node.Children, &ConsensusNode{
			Name: ref.Taxa[ti], Support: 1,
		})
	}
	return root, nil
}

// ConsensusNode is one clade of a (possibly multifurcating) consensus tree.
type ConsensusNode struct {
	Name     string  // taxon name for leaves, empty for clades
	Support  float64 // fraction of input trees containing this clade
	Children []*ConsensusNode
}

type consensusBuild struct {
	node     *ConsensusNode
	bits     []uint64
	children []*consensusBuild
}

// IsLeaf reports whether the node is a taxon.
func (c *ConsensusNode) IsLeaf() bool { return len(c.Children) == 0 }

// Newick renders the consensus with support values as internal labels.
func (c *ConsensusNode) Newick() string {
	return c.newick(true) + ";"
}

func (c *ConsensusNode) newick(root bool) string {
	if c.IsLeaf() {
		return quoteName(c.Name)
	}
	s := "("
	for i, ch := range c.Children {
		if i > 0 {
			s += ","
		}
		s += ch.newick(false)
	}
	s += ")"
	if !root {
		s += fmt.Sprintf("%.2f", c.Support)
	}
	return s
}

// CountClades returns the number of internal (non-root, non-leaf) clades.
func (c *ConsensusNode) CountClades() int {
	n := 0
	for _, ch := range c.Children {
		if !ch.IsLeaf() {
			n += 1 + ch.CountClades()
		}
	}
	return n
}

// --- bitset helpers over the Bipartition byte encoding ---

func bitsOf(b Bipartition) []uint64 {
	raw := []byte(b)
	out := make([]uint64, len(raw)/8)
	for w := range out {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(raw[8*w+i]) << (8 * i)
		}
		out[w] = v
	}
	return out
}

func popcount(bits []uint64) int {
	n := 0
	for _, w := range bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// containsBits reports whether sup is a superset of sub.
func containsBits(sup, sub []uint64) bool {
	for i := range sub {
		if sub[i]&^sup[i] != 0 {
			return false
		}
	}
	return true
}

func lessBits(a, b []uint64) bool {
	for i := len(a) - 1; i >= 0; i-- {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
