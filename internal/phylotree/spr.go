package phylotree

import (
	"fmt"
	"math"
)

// PrunedSubtree records the state needed to undo a Prune.
type PrunedSubtree struct {
	P      *Node   // the detached internal ring record (subtree hangs off P.Back)
	Q, R   *Node   // the records that were joined when P was removed
	QZ, RZ float64 // original branch lengths P.Next—Q and P.Next.Next—R
}

// Prune performs the subtree-pruning half of an SPR move, mirroring RAxML's
// removeNodeBIG: p must be an internal ring record; the subtree consisting of
// p's ring plus everything behind p.Back is detached, and p's two other
// neighbors q and r are joined with a branch of combined length.
func (t *Tree) Prune(p *Node) (*PrunedSubtree, error) {
	if p.IsTip() {
		return nil, fmt.Errorf("phylotree: cannot prune at a tip record")
	}
	q := p.Next.Back
	r := p.Next.Next.Back
	if q == nil || r == nil {
		return nil, fmt.Errorf("phylotree: prune target already detached")
	}
	ps := &PrunedSubtree{P: p, Q: q, R: r, QZ: p.Next.Z, RZ: p.Next.Next.Z}
	// Notify the two branches about to be destroyed while the topology is
	// still connected (observers walk outward from both ends), then the
	// re-joined branch once it exists.
	t.notifyBranch(p.Next)
	t.notifyBranch(p.Next.Next)
	Connect(q, r, ps.QZ+ps.RZ)
	p.Next.Back = nil
	p.Next.Next.Back = nil
	t.removeInner(p.Index)
	t.notifyBranch(q)
	return ps, nil
}

// Regraft inserts the pruned ring held by ps.P into the branch (at,
// at.Back), splitting its length in half (mirrors RAxML's insertBIG).
func (t *Tree) Regraft(ps *PrunedSubtree, at *Node) error {
	return t.RegraftZ(ps, at, at.Z/2, at.Z/2)
}

// RegraftZ inserts with explicit branch lengths: zAt on the at side, zOther
// on the at.Back side.
func (t *Tree) RegraftZ(ps *PrunedSubtree, at *Node, zAt, zOther float64) error {
	p := ps.P
	if p.Next.Back != nil || p.Next.Next.Back != nil {
		return fmt.Errorf("phylotree: subtree already attached")
	}
	if at == nil || at.Back == nil {
		return fmt.Errorf("phylotree: regraft edge is detached")
	}
	if at == p || at.Back == p {
		return fmt.Errorf("phylotree: cannot regraft into the pruned branch")
	}
	t.notifyBranch(at) // the branch about to be split
	other := at.Back
	Connect(p.Next, at, zAt)
	Connect(p.Next.Next, other, zOther)
	t.reuseInner(p)
	t.notifyBranch(p.Next)
	t.notifyBranch(p.Next.Next)
	return nil
}

// Undo reverses a Prune, restoring the original topology and branch lengths.
func (t *Tree) Undo(ps *PrunedSubtree) error {
	// After Prune, Q and R are joined directly; splice P back between them.
	if ps.Q.Back != ps.R {
		return fmt.Errorf("phylotree: cannot undo, joined branch was modified")
	}
	t.notifyBranch(ps.Q) // the joined branch about to be destroyed
	p := ps.P
	Connect(p.Next, ps.Q, ps.QZ)
	Connect(p.Next.Next, ps.R, ps.RZ)
	t.reuseInner(p)
	t.notifyBranch(p.Next)
	t.notifyBranch(p.Next.Next)
	return nil
}

// RemoveTip undoes an InsertTip: it detaches tip ti together with its host
// internal node, re-joins the branch that the insertion had split (summing
// the half lengths back), and releases the internal index for reuse.
func (t *Tree) RemoveTip(ti int) error {
	tip := t.Tips[ti]
	if tip.Back == nil {
		return fmt.Errorf("phylotree: tip %d is not attached", ti)
	}
	host := tip.Back
	if host.IsTip() {
		return fmt.Errorf("phylotree: tip %d attached to a tip", ti)
	}
	a, b := host.Next, host.Next.Next
	if a.Back == nil || b.Back == nil {
		return fmt.Errorf("phylotree: host ring of tip %d is partially detached", ti)
	}
	t.notifyBranch(tip)
	t.notifyBranch(a)
	t.notifyBranch(b)
	join := a.Back
	Connect(a.Back, b.Back, a.Z+b.Z)
	tip.Back = nil
	host.Back = nil
	a.Back = nil
	b.Back = nil
	t.removeInner(host.Index)
	t.freeIdx = append(t.freeIdx, host.Index)
	t.notifyBranch(join)
	return nil
}

func (t *Tree) removeInner(index int) {
	for i, in := range t.inner {
		if in.Index == index {
			t.inner[i] = t.inner[len(t.inner)-1]
			t.inner = t.inner[:len(t.inner)-1]
			return
		}
	}
}

// SubtreeTips collects the tip indices reachable behind nd (through
// nd.Back's far side), i.e. the tip set of the subtree nd points into.
func SubtreeTips(nd *Node, out []int) []int {
	tgt := nd.Back
	if tgt.IsTip() {
		return append(out, tgt.Index)
	}
	for _, r := range tgt.Ring() {
		if r != tgt {
			out = SubtreeTips(r, out)
		}
	}
	return out
}

// RadiusEdges returns the directed insertion edges reachable from origin
// within the given node radius, excluding the origin branch itself. It is
// the move-set enumeration for RAxML's rearrangement-radius-bounded SPR.
func RadiusEdges(origin *Node, radius int) []*Node {
	return RadiusEdgesInto(nil, origin, radius)
}

// RadiusEdgesInto is RadiusEdges appending into a caller-supplied buffer,
// so the per-prune enumeration of the SPR hot loop can reuse one slice
// instead of reallocating the candidate set for every pruned subtree.
func RadiusEdgesInto(out []*Node, origin *Node, radius int) []*Node {
	var walk func(nd *Node, depth int)
	walk = func(nd *Node, depth int) {
		if depth > radius || nd == nil {
			return
		}
		out = append(out, nd)
		tgt := nd.Back
		if tgt.IsTip() {
			return
		}
		for _, r := range tgt.Ring() {
			if r != tgt {
				walk(r, depth+1)
			}
		}
	}
	tgt := origin.Back
	if tgt != nil && !tgt.IsTip() {
		for _, r := range tgt.Ring() {
			if r != tgt {
				walk(r, 1)
			}
		}
	}
	return out
}

// Bipartition is a canonical tip bitset for one internal edge.
type Bipartition string

// bipartitionOf computes the canonical bitset of the tips behind e,
// complemented if necessary so tip 0 is never included.
func bipartitionOf(e *Node, numTips int) Bipartition {
	words := (numTips + 63) / 64
	bits := make([]uint64, words)
	for _, ti := range SubtreeTips(e, nil) {
		bits[ti/64] |= 1 << (ti % 64)
	}
	if bits[0]&1 != 0 { // contains tip 0: take the complement
		for w := range bits {
			bits[w] = ^bits[w]
		}
		// Mask tail bits beyond numTips.
		if numTips%64 != 0 {
			bits[words-1] &= (1 << (numTips % 64)) - 1
		}
	}
	buf := make([]byte, 8*words)
	for w, v := range bits {
		for b := 0; b < 8; b++ {
			buf[8*w+b] = byte(v >> (8 * b))
		}
	}
	return Bipartition(buf)
}

// Bipartitions returns the set of non-trivial bipartitions of the tree.
func (t *Tree) Bipartitions() map[Bipartition]bool {
	out := make(map[Bipartition]bool)
	for _, e := range t.InternalEdges() {
		out[bipartitionOf(e, len(t.Tips))] = true
	}
	return out
}

// BranchScoreDistance returns Kuhner & Felsenstein's branch-score distance:
// the square root of the sum of squared branch-length differences over all
// bipartitions (trivial and non-trivial), with a bipartition's length taken
// as 0 in a tree that lacks it. Unlike RF it is sensitive to branch
// lengths, so it distinguishes trees of equal topology.
func BranchScoreDistance(a, b *Tree) (float64, error) {
	if len(a.Tips) != len(b.Tips) {
		return 0, fmt.Errorf("phylotree: taxon count mismatch %d vs %d", len(a.Tips), len(b.Tips))
	}
	for i := range a.Taxa {
		if a.Taxa[i] != b.Taxa[i] {
			return 0, fmt.Errorf("phylotree: taxon order mismatch at %d: %q vs %q", i, a.Taxa[i], b.Taxa[i])
		}
	}
	lengths := func(t *Tree) map[Bipartition]float64 {
		out := make(map[Bipartition]float64)
		for _, e := range t.Edges() {
			out[bipartitionOf(e, len(t.Tips))] = e.Z
		}
		return out
	}
	la, lb := lengths(a), lengths(b)
	sum := 0.0
	for k, va := range la {
		d := va - lb[k]
		sum += d * d
	}
	for k, vb := range lb {
		if _, ok := la[k]; !ok {
			sum += vb * vb
		}
	}
	return math.Sqrt(sum), nil
}

// RobinsonFoulds returns the RF distance between two trees over the same
// taxon set (taxon order must match; compare by name first if unsure).
func RobinsonFoulds(a, b *Tree) (int, error) {
	if len(a.Tips) != len(b.Tips) {
		return 0, fmt.Errorf("phylotree: taxon count mismatch %d vs %d", len(a.Tips), len(b.Tips))
	}
	for i := range a.Taxa {
		if a.Taxa[i] != b.Taxa[i] {
			return 0, fmt.Errorf("phylotree: taxon order mismatch at %d: %q vs %q", i, a.Taxa[i], b.Taxa[i])
		}
	}
	ba := a.Bipartitions()
	bb := b.Bipartitions()
	d := 0
	for k := range ba {
		if !bb[k] {
			d++
		}
	}
	for k := range bb {
		if !ba[k] {
			d++
		}
	}
	return d, nil
}
