package phylotree

import (
	"math/rand"
	"testing"
)

// TestTreeHashHandRolledEquivalents parses several Newick renderings of the
// same 6-taxon unrooted topology — rotated around a different anchor, with
// children swapped, with sibling order reversed — and demands one hash.
// A genuinely different topology must hash differently.
func TestTreeHashHandRolledEquivalents(t *testing.T) {
	taxa := []string{"A", "B", "C", "D", "E", "F"}
	same := []string{
		"((A,B),(C,D),(E,F));",
		"((B,A),(D,C),(F,E));",
		"((C,D),(A,B),(E,F));",
		"((E,F),(C,D),(B,A));",
		"(A,B,((C,D),(E,F)));",
		"(C,((A,B),(E,F)),D);",
	}
	h := NewTopoHasher(len(taxa))
	var want TopoHash
	for i, nw := range same {
		tr, err := ParseNewick(nw)
		if err != nil {
			t.Fatalf("%q: %v", nw, err)
		}
		if err := tr.AlignTaxa(taxa); err != nil {
			t.Fatalf("%q: %v", nw, err)
		}
		got, err := h.TreeHash(tr)
		if err != nil {
			t.Fatalf("%q: %v", nw, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("%q hashes to %v, want %v", nw, got, want)
		}
	}
	other, err := ParseNewick("((A,C),(B,D),(E,F));")
	if err != nil {
		t.Fatal(err)
	}
	if err := other.AlignTaxa(taxa); err != nil {
		t.Fatal(err)
	}
	got, err := h.TreeHash(other)
	if err != nil {
		t.Fatal(err)
	}
	if got == want {
		t.Error("distinct topology produced the same hash")
	}
}

// TestTreeHashMatchesPhylo2Vec checks on random tree pairs that hash
// equality coincides with phylo2vec vector equality — both must be exact
// topology invariants over the same taxon set.
func TestTreeHashMatchesPhylo2Vec(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	taxa := randomTaxa(14)
	h := NewTopoHasher(len(taxa))
	for rep := 0; rep < 40; rep++ {
		a, err := RandomTopology(taxa, rng)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RandomTopology(taxa, rng)
		if err != nil {
			t.Fatal(err)
		}
		ha, err := h.TreeHash(a)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := h.TreeHash(b)
		if err != nil {
			t.Fatal(err)
		}
		va, err := a.Phylo2Vec()
		if err != nil {
			t.Fatal(err)
		}
		vb, err := b.Phylo2Vec()
		if err != nil {
			t.Fatal(err)
		}
		if (ha == hb) != equalInts(va, vb) {
			t.Fatalf("hash equality %v but vector equality %v", ha == hb, equalInts(va, vb))
		}
	}
}

// TestTreeHashRepresentationInvariance reparses random topologies from
// Newick (different anchor, ring order, internal indices) and requires the
// identical fingerprint. Branch lengths are also perturbed: they must not
// matter.
func TestTreeHashRepresentationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	taxa := randomTaxa(23)
	h := NewTopoHasher(len(taxa))
	for rep := 0; rep < 20; rep++ {
		tr, err := RandomTopology(taxa, rng)
		if err != nil {
			t.Fatal(err)
		}
		want, err := h.TreeHash(tr)
		if err != nil {
			t.Fatal(err)
		}
		re, err := ParseNewick(tr.Newick())
		if err != nil {
			t.Fatal(err)
		}
		if err := re.AlignTaxa(taxa); err != nil {
			t.Fatal(err)
		}
		for _, e := range re.Edges() {
			e.SetZ(rng.Float64())
		}
		got, err := h.TreeHash(re)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("reparse changed hash: %v vs %v", got, want)
		}
	}
}

// collectInsertionEdges mirrors the SPR candidate enumeration: all records
// on both sides of the prune junction, unbounded radius.
func collectInsertionEdges(ps *PrunedSubtree) []*Node {
	out := RadiusEdgesInto(nil, ps.Q, 1<<30)
	return RadiusEdgesInto(out, ps.R, 1<<30)
}

// TestPruneScopeCandidateHash is the load-bearing property test for the
// incremental hash: for random trees, every prune, and every insertion
// edge, CandidateHash must equal the full TreeHash of the tree actually
// regrafted at that edge.
func TestPruneScopeCandidateHash(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, n := range []int{4, 5, 6, 9, 15, 26} {
		taxa := randomTaxa(n)
		h := NewTopoHasher(n)
		scope := NewPruneScope(h)
		for rep := 0; rep < 6; rep++ {
			tr, err := RandomTopology(taxa, rng)
			if err != nil {
				t.Fatal(err)
			}
			baseHash, err := h.TreeHash(tr)
			if err != nil {
				t.Fatal(err)
			}
			prunes := pruneRecords(tr)
			for _, p := range prunes {
				ps, err := tr.Prune(p)
				if err != nil {
					continue // some records are not prunable (tip rings)
				}
				if err := scope.Reset(ps); err != nil {
					t.Fatalf("n=%d: Reset: %v", n, err)
				}
				for _, at := range collectInsertionEdges(ps) {
					got, ok := scope.CandidateHash(at)
					if !ok {
						t.Fatalf("n=%d: no entry for insertion edge", n)
					}
					if err := tr.Regraft(ps, at); err != nil {
						t.Fatalf("n=%d: regraft: %v", n, err)
					}
					want, err := h.TreeHash(tr)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("n=%d: CandidateHash %v != applied-tree hash %v", n, got, want)
					}
					// Re-prune to restore the scored state for the next
					// candidate, exactly as the search's Regraft+Undo cycle
					// would.
					if _, err := tr.Prune(ps.P); err != nil {
						t.Fatalf("n=%d: re-prune: %v", n, err)
					}
				}
				if err := tr.Undo(ps); err != nil {
					t.Fatalf("n=%d: undo: %v", n, err)
				}
				after, err := h.TreeHash(tr)
				if err != nil {
					t.Fatal(err)
				}
				if after != baseHash {
					t.Fatalf("n=%d: undo did not restore the topology hash", n)
				}
			}
		}
	}
}

// pruneRecords enumerates the internal ring records a full SPR sweep prunes
// at (both directions of every edge with an internal near end).
func pruneRecords(tr *Tree) []*Node {
	var out []*Node
	for _, e := range tr.Edges() {
		if !e.IsTip() {
			out = append(out, e)
		}
		if !e.Back.IsTip() {
			out = append(out, e.Back)
		}
	}
	return out
}

// TestPruneScopeDualRouteNNI checks that the same would-be topology reached
// by two different prune/regraft routes (prune A, insert at C's edge vs
// prune C, insert at A's edge — both realize the same NNI swap) hashes
// identically, which is exactly the duplicate the search memo catches.
func TestPruneScopeDualRouteNNI(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	taxa := randomTaxa(10)
	h := NewTopoHasher(len(taxa))
	scope := NewPruneScope(h)
	tr, err := RandomTopology(taxa, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[TopoHash]int)
	for _, p := range pruneRecords(tr) {
		ps, err := tr.Prune(p)
		if err != nil {
			continue
		}
		if err := scope.Reset(ps); err != nil {
			t.Fatal(err)
		}
		for _, at := range collectInsertionEdges(ps) {
			if hh, ok := scope.CandidateHash(at); ok {
				seen[hh]++
			}
		}
		if err := tr.Undo(ps); err != nil {
			t.Fatal(err)
		}
	}
	dup := 0
	for _, c := range seen {
		if c > 1 {
			dup++
		}
	}
	if dup == 0 {
		t.Fatal("full SPR sweep produced no duplicate candidate topologies; memo would never hit")
	}
}
