package phylotree

import (
	"math/rand"
	"strings"
	"testing"
)

func parseAligned(t *testing.T, s string, taxa []string) *Tree {
	t.Helper()
	tr, err := ParseNewick(s)
	if err != nil {
		t.Fatal(err)
	}
	if taxa != nil {
		if err := tr.AlignTaxa(taxa); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestConsensusIdenticalTrees(t *testing.T) {
	base := parseAligned(t, "((a:1,b:1):1,(c:1,d:1):1,e:1);", nil)
	trees := []*Tree{base, base.Clone(), base.Clone()}
	cons, err := MajorityRuleConsensus(trees, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 5 taxa -> 2 non-trivial bipartitions, all at 100% support.
	if got := cons.CountClades(); got != 2 {
		t.Errorf("clades = %d, want 2\n%s", got, cons.Newick())
	}
	var check func(c *ConsensusNode)
	check = func(c *ConsensusNode) {
		if !c.IsLeaf() && c.Support != 1 {
			t.Errorf("clade support = %v, want 1", c.Support)
		}
		for _, ch := range c.Children {
			check(ch)
		}
	}
	check(cons)
	if !strings.HasSuffix(cons.Newick(), ";") {
		t.Error("newick not terminated")
	}
}

func TestConsensusMajority(t *testing.T) {
	taxa := []string{"a", "b", "c", "d", "e"}
	// Two trees support (a,b); one supports (a,c): the consensus keeps only
	// the majority clade.
	t1 := parseAligned(t, "((a:1,b:1):1,(c:1,d:1):1,e:1);", taxa)
	t2 := parseAligned(t, "((a:1,b:1):1,(d:1,e:1):1,c:1);", taxa)
	t3 := parseAligned(t, "((a:1,c:1):1,(b:1,d:1):1,e:1);", taxa)
	cons, err := MajorityRuleConsensus([]*Tree{t1, t2, t3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Splits canonicalize away from tip 0 ("a"), so the a|b split renders
	// as its complement clade (c,d,e).
	nw := cons.Newick()
	if !strings.Contains(nw, "(c,d,e)0.67") {
		t.Errorf("majority split ab|cde missing or mis-supported: %s", nw)
	}
	if strings.Contains(nw, "(b,d,e)") {
		t.Errorf("minority split ac|bde survived: %s", nw)
	}
}

func TestConsensusAllTaxaPresent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	taxa := names(10)
	var trees []*Tree
	for i := 0; i < 7; i++ {
		tr, err := RandomTopology(taxa, rng)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tr)
	}
	cons, err := MajorityRuleConsensus(trees, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var leaves []string
	var walk func(c *ConsensusNode)
	walk = func(c *ConsensusNode) {
		if c.IsLeaf() {
			leaves = append(leaves, c.Name)
			return
		}
		if c.Support <= 0.5 && c != cons {
			t.Errorf("clade below threshold in consensus: %v", c.Support)
		}
		for _, ch := range c.Children {
			walk(ch)
		}
	}
	walk(cons)
	if len(leaves) != 10 {
		t.Fatalf("consensus has %d leaves: %v", len(leaves), leaves)
	}
	seen := map[string]bool{}
	for _, l := range leaves {
		if seen[l] {
			t.Errorf("duplicate leaf %q", l)
		}
		seen[l] = true
	}
}

func TestBootstopDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ref, err := RandomTopology(names(10), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Identical replicates: zero divergence.
	same := []*Tree{ref.Clone(), ref.Clone(), ref.Clone(), ref.Clone()}
	d, err := BootstopDivergence(ref, same)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("identical replicates diverge by %v", d)
	}
	// Random replicates: clearly positive.
	var noisy []*Tree
	for i := 0; i < 8; i++ {
		tr, err := RandomTopology(names(10), rng)
		if err != nil {
			t.Fatal(err)
		}
		noisy = append(noisy, tr)
	}
	d, err = BootstopDivergence(ref, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Errorf("random replicates diverge by %v", d)
	}
	// Too few replicates rejected.
	if _, err := BootstopDivergence(ref, same[:3]); err == nil {
		t.Error("3 replicates accepted")
	}
}

func TestConsensusErrors(t *testing.T) {
	if _, err := MajorityRuleConsensus(nil, 0.5); err == nil {
		t.Error("empty tree set accepted")
	}
	a := parseAligned(t, "(a,b,(c,d));", nil)
	if _, err := MajorityRuleConsensus([]*Tree{a}, 0.4); err == nil {
		t.Error("sub-majority threshold accepted")
	}
	if _, err := MajorityRuleConsensus([]*Tree{a}, 1.0); err == nil {
		t.Error("threshold 1.0 accepted")
	}
	b := parseAligned(t, "(a,b,(c,e));", nil)
	if _, err := MajorityRuleConsensus([]*Tree{a, b}, 0.5); err == nil {
		t.Error("mismatched taxon sets accepted")
	}
}

func TestConsensusStrictThreshold(t *testing.T) {
	taxa := []string{"a", "b", "c", "d", "e", "f"}
	// Clade (a,b) in 2/3 trees; ((a,b),c) in 2/3; (e,f) in 3/3.
	t1 := parseAligned(t, "(((a,b),c),(e,f),d);", taxa)
	t2 := parseAligned(t, "(((a,b),c),(e,f),d);", taxa)
	t3 := parseAligned(t, "(((a,c),b),(e,f),d);", taxa)
	trees := []*Tree{t1, t2, t3}

	// At 0.5: both (a,b) and (e,f) survive.
	c1, err := MajorityRuleConsensus(trees, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := c1.CountClades(); got != 3 {
		t.Errorf("0.5-consensus clades = %d, want 3: %s", got, c1.Newick())
	}
	// At 0.9: the unanimous splits survive — ef|abcd and abc|def (the
	// latter present in all three trees despite the ab/ac disagreement).
	c2, err := MajorityRuleConsensus(trees, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.CountClades(); got != 2 {
		t.Errorf("0.9-consensus clades = %d, want 2: %s", got, c2.Newick())
	}
	if !strings.Contains(c2.Newick(), "(e,f)1.00") && !strings.Contains(c2.Newick(), "(f,e)1.00") {
		t.Errorf("unanimous clade missing: %s", c2.Newick())
	}
}
