package phylotree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestNewickRender(t *testing.T) {
	tr := buildLadder(t, 4)
	s := tr.Newick()
	if !strings.HasSuffix(s, ");") || !strings.HasPrefix(s, "(") {
		t.Errorf("Newick = %q", s)
	}
	for _, name := range tr.Taxa {
		if !strings.Contains(s, name) {
			t.Errorf("Newick missing taxon %q: %s", name, s)
		}
	}
}

func TestParseNewickTrifurcating(t *testing.T) {
	tr, err := ParseNewick("(a:0.1,b:0.2,(c:0.3,d:0.4):0.5);")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTips() != 4 {
		t.Fatalf("tips = %d", tr.NumTips())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Branch c has length 0.3.
	var cTip *Node
	for _, tip := range tr.Tips {
		if tip.Name == "c" {
			cTip = tip
		}
	}
	if math.Abs(cTip.Z-0.3) > 1e-12 {
		t.Errorf("c branch = %v", cTip.Z)
	}
}

func TestParseNewickRootedIsUnrooted(t *testing.T) {
	// Rooted binary input: root fused into a single branch of length 0.3+0.4.
	tr, err := ParseNewick("((a:0.1,b:0.2):0.3,(c:0.1,d:0.2):0.4);")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(tr.Edges()), 2*4-3; got != want {
		t.Errorf("edges = %d, want %d", got, want)
	}
	// Find the internal edge: its length must be 0.7.
	internals := tr.InternalEdges()
	if len(internals) != 1 {
		t.Fatalf("internal edges = %d", len(internals))
	}
	if math.Abs(internals[0].Z-0.7) > 1e-12 {
		t.Errorf("fused root branch = %v, want 0.7", internals[0].Z)
	}
}

func TestParseNewickQuotedAndSpaces(t *testing.T) {
	tr, err := ParseNewick("('taxon one':0.1, 'it''s':0.2, c:0.3);")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Taxa[0] != "taxon one" || tr.Taxa[1] != "it's" {
		t.Errorf("taxa = %v", tr.Taxa)
	}
	// Round trip through quoting.
	rt, err := ParseNewick(tr.Newick())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if err := rt.AlignTaxa(tr.Taxa); err != nil {
		t.Fatal(err)
	}
}

func TestParseNewickMissingLengths(t *testing.T) {
	tr, err := ParseNewick("(a,b,(c,d));")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Edges() {
		if e.Z != DefaultBranchLength {
			t.Errorf("edge z = %v, want default", e.Z)
		}
	}
}

func TestParseNewickErrors(t *testing.T) {
	bad := []string{
		"",
		"(a,b);",             // 2 taxa after unrooting -> NewTree fails
		"(a,b,c,d);",         // quadrifurcating root
		"((a,b,c):1,d,e);",   // internal trifurcation
		"(a:0.1,b:0.2,c:0.3", // unclosed
		"(a,b,c); extra",     // trailing garbage
		"(a,b,(c,));",        // empty child -> unnamed tip
		"(a,b,'unterminated", // bad quote
		"(a,b,c:abc);",       // bad number
		"(a,b,a);",           // duplicate taxon
	}
	for _, s := range bad {
		if _, err := ParseNewick(s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestParseNewickInternalLabels(t *testing.T) {
	// Support-value internal labels (as our consensus trees and most
	// phylogenetics tools emit) parse cleanly and are ignored.
	tr, err := ParseNewick("((a:0.1,b:0.2)0.95:0.3,c:0.1,d:0.2);")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTips() != 4 {
		t.Fatalf("tips = %d", tr.NumTips())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewickRoundTripTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 10; i++ {
		tr, err := RandomTopology(names(12), rng)
		if err != nil {
			t.Fatal(err)
		}
		// Perturb branch lengths for realism.
		for _, e := range tr.Edges() {
			e.SetZ(0.01 + rng.Float64())
		}
		rt, err := ParseNewick(tr.Newick())
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if err := rt.AlignTaxa(tr.Taxa); err != nil {
			t.Fatal(err)
		}
		d, err := RobinsonFoulds(tr, rt)
		if err != nil {
			t.Fatal(err)
		}
		if d != 0 {
			t.Errorf("round trip changed topology (RF=%d):\n%s\n%s", d, tr.Newick(), rt.Newick())
		}
		// Total branch length preserved to print precision.
		if math.Abs(tr.TotalBranchLength()-rt.TotalBranchLength()) > 1e-4 {
			t.Errorf("branch length sum drifted: %v vs %v", tr.TotalBranchLength(), rt.TotalBranchLength())
		}
	}
}
