package search

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/parsimony"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/seqsim"
)

// load42SC reads the committed 42_SC fixture (42 taxa x 1167 nt, 249
// patterns — the paper's benchmark dimensions).
func load42SC(t testing.TB) *alignment.Patterns {
	t.Helper()
	f, err := os.Open("../core/testdata/42sc.phy")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := alignment.ReadPhylip(f)
	if err != nil {
		t.Fatal(err)
	}
	return alignment.Compress(a)
}

// TestIncrementalCrossValidation42SC drives an incremental-caching engine
// and a full-recompute engine through the same 50-step sequence of random
// SPR prune/regraft moves, undos, hand-edited branch lengths and smoothing
// passes on the 42_SC fixture, checking after every step that the two
// engines report the same log-likelihood (within 1e-9 relative) on
// identical topologies. This is the end-to-end guarantee that the
// dirty-flag invalidation never serves a stale partial vector.
func TestIncrementalCrossValidation42SC(t *testing.T) {
	if testing.Short() {
		t.Skip("50-step cross validation on 42 taxa")
	}
	pat := load42SC(t)
	m := seqsim.DefaultModel()

	rng := rand.New(rand.NewSource(4242))
	trA, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(4242)))
	if err != nil {
		t.Fatal(err)
	}
	trB := trA.Clone()

	engA, err := likelihood.NewEngine(pat, m, likelihood.Config{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	engA.AttachTree(trA)
	engB, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}

	check := func(step int, stage string) {
		t.Helper()
		llA, err := SmoothBranches(engA, trA, 1, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		llB, err := SmoothBranches(engB, trB, 1, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(llA-llB) > 1e-9*math.Max(1, math.Abs(llB)) {
			t.Fatalf("step %d (%s): cached logL %.12f != full %.12f", step, stage, llA, llB)
		}
		rf, err := phylotree.RobinsonFoulds(trA, trB)
		if err != nil {
			t.Fatal(err)
		}
		if rf != 0 {
			t.Fatalf("step %d (%s): topologies diverged, RF=%d", step, stage, rf)
		}
	}
	check(-1, "start")

	for step := 0; step < 50; step++ {
		switch step % 5 {
		case 4:
			// Hand-edit a branch length on both trees; the cached engine
			// needs an explicit Invalidate for direct SetZ.
			edgesA, edgesB := trA.Edges(), trB.Edges()
			i := rng.Intn(len(edgesA))
			z := 0.01 + 0.3*rng.Float64()
			edgesA[i].SetZ(z)
			edgesB[i].SetZ(z)
			engA.Invalidate(edgesA[i])
			check(step, "setz")
		default:
			candsA, candsB := pruneCandidates(trA), pruneCandidates(trB)
			if len(candsA) != len(candsB) {
				t.Fatalf("step %d: candidate count mismatch %d vs %d", step, len(candsA), len(candsB))
			}
			i := rng.Intn(len(candsA))
			psA, errA := trA.Prune(candsA[i])
			psB, errB := trB.Prune(candsB[i])
			if (errA == nil) != (errB == nil) {
				t.Fatalf("step %d: prune error mismatch: %v vs %v", step, errA, errB)
			}
			if errA != nil {
				continue
			}
			targetsA := phylotree.RadiusEdges(psA.Q, 6)
			targetsA = append(targetsA, phylotree.RadiusEdges(psA.R, 6)...)
			targetsB := phylotree.RadiusEdges(psB.Q, 6)
			targetsB = append(targetsB, phylotree.RadiusEdges(psB.R, 6)...)
			if len(targetsA) != len(targetsB) {
				t.Fatalf("step %d: target count mismatch %d vs %d", step, len(targetsA), len(targetsB))
			}
			if step%3 == 0 || len(targetsA) == 0 {
				if err := trA.Undo(psA); err != nil {
					t.Fatal(err)
				}
				if err := trB.Undo(psB); err != nil {
					t.Fatal(err)
				}
				check(step, "undo")
				continue
			}
			j := rng.Intn(len(targetsA))
			if err := trA.Regraft(psA, targetsA[j]); err != nil {
				t.Fatal(err)
			}
			if err := trB.Regraft(psB, targetsB[j]); err != nil {
				t.Fatal(err)
			}
			check(step, "regraft")
		}
	}

	if engA.Meter.CacheHits == 0 {
		t.Error("cross validation exercised no cache hits")
	}
	if engA.Meter.NewviewCalls >= engB.Meter.NewviewCalls {
		t.Errorf("incremental engine performed %d combines, full engine %d",
			engA.Meter.NewviewCalls, engB.Meter.NewviewCalls)
	}
	t.Logf("combines: incremental %d vs full %d (%.1fx reduction), %d cache hits",
		engA.Meter.NewviewCalls, engB.Meter.NewviewCalls,
		float64(engB.Meter.NewviewCalls)/float64(engA.Meter.NewviewCalls),
		engA.Meter.CacheHits)
}

// TestIncrementalSmoothingCombineReduction quantifies the tentpole win: a
// converged smoothing workload on the 42_SC tree must execute at least 5x
// fewer newview combines with incremental caching than with full
// recomputation, while producing the same likelihood.
func TestIncrementalSmoothingCombineReduction(t *testing.T) {
	pat := load42SC(t)
	m := seqsim.DefaultModel()
	trA, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	trB := trA.Clone()

	engA, err := likelihood.NewEngine(pat, m, likelihood.Config{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	engB, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	llA, err := SmoothBranches(engA, trA, 4, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	llB, err := SmoothBranches(engB, trB, 4, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(llA-llB) > 1e-9*math.Abs(llB) {
		t.Fatalf("smoothed logL differ: cached %.12f vs full %.12f", llA, llB)
	}
	if engA.Meter.CacheHits == 0 {
		t.Error("no cache hits during smoothing")
	}
	a, b := engA.Meter.NewviewCalls, engB.Meter.NewviewCalls
	if a*5 > b {
		t.Errorf("smoothing combine reduction only %.2fx (cached %d vs full %d), want >= 5x",
			float64(b)/float64(a), a, b)
	}
	t.Logf("smoothing combines: cached %d vs full %d (%.1fx reduction)", a, b, float64(b)/float64(a))
}
