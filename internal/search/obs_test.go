package search

import (
	"bytes"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/obs"
)

// obsClock is a deterministic monotonic source for the wall-clock tracer —
// each read advances one microsecond, so span durations are positive and
// reproducible without touching time.Now.
func obsClock() func() time.Duration {
	var n atomic.Int64
	return func() time.Duration { return time.Duration(n.Add(1)) * time.Microsecond }
}

// TestRunRoundSpansAndHistogram pins the search-layer instrumentation
// contract: with a Trace context and a Metrics registry, every SPR round
// feeds exactly one search.round_ms sample, the timeline carries one
// round-labelled "round" span per round plus candidate-batch spans, and
// the rendered trace passes ValidateTrace.
func TestRunRoundSpansAndHistogram(t *testing.T) {
	pat, _, m := simulated(t, 17, 9, 300)
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	start, err := StartingTree(pat, "random", rng)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	tracer := obs.NewSpanTracer(obsClock())
	opts := DefaultOptions()
	opts.Metrics = reg
	opts.Trace = tracer.Root("search").WithJob("inference#0")
	res, err := Run(eng, start, opts)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	var roundHist *obs.HistogramValue
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "search.round_ms" {
			roundHist = &snap.Histograms[i]
		}
	}
	if roundHist == nil {
		t.Fatal("search.round_ms histogram missing from snapshot")
	}
	if roundHist.Count != uint64(res.Rounds) {
		t.Fatalf("search.round_ms count = %d, result ran %d rounds", roundHist.Count, res.Rounds)
	}

	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("ValidateTrace: %v", err)
	}
	trace := buf.String()
	for round := 1; round <= res.Rounds; round++ {
		frag := `"round":` + itoa(round)
		if !strings.Contains(trace, frag) {
			t.Errorf("trace lacks a span labelled with %s", frag)
		}
	}
	for _, frag := range []string{
		`"name":"round"`, `"name":"smooth"`, `"name":"candidates"`,
		`"job":"inference#0"`,
	} {
		if !strings.Contains(trace, frag) {
			t.Errorf("trace missing %s", frag)
		}
	}
}

func itoa(n int) string {
	if n <= 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestRunInstrumentationNeutral guards determinism: wiring a tracer and a
// registry into a search must not change its trajectory or result.
func TestRunInstrumentationNeutral(t *testing.T) {
	pat, _, m := simulated(t, 17, 9, 300)
	build := func(instrumented bool) *Result {
		eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(17))
		start, err := StartingTree(pat, "random", rng)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		if instrumented {
			opts.Metrics = obs.NewRegistry()
			tracer := obs.NewSpanTracer(obsClock())
			opts.Trace = tracer.Root("search")
		}
		res, err := Run(eng, start, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, traced := build(false), build(true)
	if plain.LogL != traced.LogL || plain.Moves != traced.Moves || plain.Rounds != traced.Rounds {
		t.Fatalf("instrumentation changed the search: %+v vs %+v", plain, traced)
	}
}
