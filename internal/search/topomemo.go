package search

import (
	"math"
	"sync"
	"sync/atomic"

	"raxmlcell/internal/phylotree"
)

// DefaultTopoMemoCap is the memo's entry bound when Options.TopoMemoCap is
// zero: 32k entries ≈ 1 MiB of keys+scores, far below one ancestral vector
// table, yet enough to hold every candidate topology of several full SPR
// rounds on alignments the size of the paper's workloads.
const DefaultTopoMemoCap = 1 << 15

// topoMemoMargin is the safety band (in log-likelihood units) between a
// memoized score and the acceptance threshold below which a hit may stand in
// for a fresh evaluation. A topology's lazy insertion score is not a
// function of its topology alone — the branch lengths it inherits depend on
// which subtree was pruned to propose it and on the smoothing and model
// refits since it was measured, with re-measurements moving by ~28
// log-likelihood units at the worst on the 42-taxon fixture — so the memo
// only replays scores it has confirmed stable (see topoMemoConfirmTol), and
// only when they lose to the threshold by more than this margin, set above
// the worst drift ever observed on the fixture workloads. A replayed
// candidate's true score therefore stays below the acceptance threshold, so
// it could never have been the accepted move, which is what keeps memo-on
// move acceptance identical to the memo-off search (see DESIGN.md "Topology
// memoization"). Entries inside the band are rescored fresh and counted as
// requeries.
const topoMemoMargin = 30.0

// topoMemoConfirmTol is the agreement tolerance that confirms an entry: a
// topology's score may be replayed only after two independent measurements
// agreed within this tolerance. Stability is per-topology — deep losers far
// from the tree's moving parts re-measure nearly unchanged, while volatile
// topologies near accepted moves drift by tens of units and simply never
// confirm. Every refresh re-applies the test, so an entry that starts
// drifting is demoted back to unconfirmed on the spot.
const topoMemoConfirmTol = 1.0

// memoEnt is one memoized candidate score. confirmed marks scores that two
// independent measurements agreed on (within topoMemoConfirmTol) — the only
// entries Probe will ever replay.
type memoEnt struct {
	ll        float64
	confirmed bool
}

// TopoMemo is a bounded, concurrency-safe, content-addressed memo of SPR/NNI
// candidate scores keyed by the canonical topology hash of the would-be
// tree. Scores are stored as absolute log-likelihoods: the acceptance
// threshold only rises as the search improves, so a memoized loser moves
// further below it over time — stale entries get safer, not staler. Replay
// is margin-gated and confirmation-gated (see the constants above), with a
// guardrail that disables the memo outright if a confirmed entry is ever
// re-measured a full margin away — the one event that could have let a
// replayed estimate mask a would-be winner. Probes may run concurrently from
// pool workers; inserts are serialized by the search between fan-outs.
// Eviction is FIFO in insertion order — deterministic, so memo-on searches
// are reproducible run to run.
type TopoMemo struct {
	mu   sync.RWMutex
	ent  map[phylotree.TopoHash]memoEnt
	ring []phylotree.TopoHash // insertion order, len == capacity
	next int                  // next ring slot (the oldest entry once full)
	full bool

	// driftMax is the largest observed re-measurement change of any entry's
	// score (volatile unconfirmed topologies included — the gauge shows the
	// workload's raw volatility); confirmedDriftMax tracks confirmed entries
	// only, the quantity the margin must dominate. disabled latches when a
	// confirmed entry drifts by topoMemoMargin or more.
	driftMax          float64
	confirmedDriftMax float64
	disabled          bool

	hits      atomic.Uint64
	misses    atomic.Uint64
	requeries atomic.Uint64
	evictions atomic.Uint64
}

// NewTopoMemo builds a memo bounded to capacity entries (0 or negative
// selects DefaultTopoMemoCap).
func NewTopoMemo(capacity int) *TopoMemo {
	if capacity <= 0 {
		capacity = DefaultTopoMemoCap
	}
	return &TopoMemo{
		ent:  make(map[phylotree.TopoHash]memoEnt, capacity),
		ring: make([]phylotree.TopoHash, capacity),
	}
}

// Probe looks up the candidate topology h against the current acceptance
// threshold limit. It returns (score, true) — and the caller skips the
// likelihood evaluation — only when the memoized score is confirmed stable
// AND lies more than the safety margin below limit, so the skipped candidate
// could not have been the accepted move. Known-but-unconfirmed and
// known-but-too-close entries report false and count as requeries (their
// fresh rescore is the memo's stability evidence); absent entries count as
// misses.
func (m *TopoMemo) Probe(h phylotree.TopoHash, limit float64) (float64, bool) {
	m.mu.RLock()
	ent, ok := m.ent[h]
	m.mu.RUnlock()
	if !ok {
		m.misses.Add(1)
		return 0, false
	}
	if !ent.confirmed || ent.ll >= limit-topoMemoMargin {
		m.requeries.Add(1)
		return 0, false
	}
	m.hits.Add(1)
	return ent.ll, true
}

// Insert memoizes a freshly measured candidate score, evicting the oldest
// entry when the memo is full. Re-inserting a known topology refreshes its
// score in place and re-applies the stability test: agreement within
// topoMemoConfirmTol confirms the entry (or keeps it confirmed), larger
// drift demotes it to unconfirmed, and drift of a full margin on a
// *confirmed* entry — the sole event that could have let a replay mask a
// would-be winner — clears the memo and disables it for the rest of the
// search. Disabling only causes more fresh scoring, exactly the memo-off
// behavior, so the degradation is always safe.
func (m *TopoMemo) Insert(h phylotree.TopoHash, ll float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.disabled {
		return
	}
	if old, exists := m.ent[h]; exists {
		d := math.Abs(ll - old.ll)
		if d > m.driftMax {
			m.driftMax = d
		}
		if old.confirmed {
			if d > m.confirmedDriftMax {
				m.confirmedDriftMax = d
			}
			if d >= topoMemoMargin {
				// A score two measurements agreed on just moved across the
				// entire safety band: the stability assumption is broken on
				// this workload. Degrade to memo-off behavior.
				m.disabled = true
				clear(m.ent)
				return
			}
		}
		m.ent[h] = memoEnt{ll: ll, confirmed: d <= topoMemoConfirmTol}
		return
	}
	if m.full {
		delete(m.ent, m.ring[m.next])
		m.evictions.Add(1)
	}
	m.ent[h] = memoEnt{ll: ll}
	m.ring[m.next] = h
	m.next++
	if m.next == len(m.ring) {
		m.next = 0
		m.full = true
	}
}

// MaxDrift reports the largest observed re-measurement change of any
// memoized score (confirmed or not), and whether the guardrail tripped and
// disabled the memo.
func (m *TopoMemo) MaxDrift() (drift float64, disabled bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.driftMax, m.disabled
}

// ConfirmedDrift reports the largest observed re-measurement change of a
// confirmed entry — the quantity the safety margin must dominate for replays
// to be exact (the guardrail enforces it at topoMemoMargin).
func (m *TopoMemo) ConfirmedDrift() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.confirmedDriftMax
}

// Disabled reports whether the drift guardrail tripped. The search checks it
// once per fan-out to stop paying for hashing and probing entirely once the
// memo can no longer replay anything.
func (m *TopoMemo) Disabled() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.disabled
}

// Len reports the current entry count.
func (m *TopoMemo) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.ent)
}

// Stats snapshots the lifetime counters: hits (evaluations skipped), misses
// (unknown topologies), requeries (known but unconfirmed or inside the
// safety margin, so rescored), and evictions.
func (m *TopoMemo) Stats() (hits, misses, requeries, evictions uint64) {
	return m.hits.Load(), m.misses.Load(), m.requeries.Load(), m.evictions.Load()
}
