package search

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/parsimony"
	"raxmlcell/internal/seqsim"
)

// run42SCSearch executes the benchmark-shaped SPR search on the 42_SC
// fixture under one (backend, workers) configuration. The starting tree is
// rebuilt from the same seed every call, so any divergence between
// configurations is attributable to the kernels, not the workload.
func run42SCSearch(t *testing.T, backend string, workers int) *Result {
	t.Helper()
	pat := load42SC(t)
	m := seqsim.DefaultModel()
	start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(63)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(eng, start, Options{
		Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestBackendCrossValidation42SC is the release gate for compute backends:
// every registered backend must drive the full 42_SC SPR search to the
// same optimum as the scalar reference — identical accepted-move and round
// counts (the hill-climb took the exact same path, so every intermediate
// comparison agreed) and a final log-likelihood within 1e-9 relative.
// Each backend is additionally run under a 2-worker search pool, which
// exercises the per-slot tile scratch of concurrent kernel contexts.
func TestBackendCrossValidation42SC(t *testing.T) {
	if testing.Short() {
		t.Skip("full 42sc search per backend")
	}
	ref := run42SCSearch(t, "scalar", 1)
	t.Logf("scalar reference: logL=%.6f moves=%d rounds=%d", ref.LogL, ref.Moves, ref.Rounds)
	for _, bk := range likelihood.Backends() {
		if bk == "scalar" {
			continue
		}
		for _, workers := range []int{1, 2} {
			res := run42SCSearch(t, bk, workers)
			if res.Moves != ref.Moves || res.Rounds != ref.Rounds {
				t.Errorf("%s (workers=%d): search path diverged: %d moves/%d rounds, scalar %d/%d",
					bk, workers, res.Moves, res.Rounds, ref.Moves, ref.Rounds)
			}
			if math.Abs(res.LogL-ref.LogL) > 1e-9*math.Max(1, math.Abs(ref.LogL)) {
				t.Errorf("%s (workers=%d): logL %.12f != scalar %.12f",
					bk, workers, res.LogL, ref.LogL)
			}
		}
	}
}
