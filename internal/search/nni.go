package search

import (
	"fmt"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/phylotree"
)

// nniRound performs one sweep of nearest-neighbor interchanges: for every
// internal edge (u, v) there are two alternative topologies obtained by
// swapping one subtree of u with one subtree of v. Each alternative is
// scored with the lazy machinery (prune the swapped subtree, score its
// re-insertion) — accepting the better alternative when it improves the
// current likelihood by more than eps. NNI is the cheap, small-step
// complement to SPR: RAxML applies SPR with radius 1-2 equivalently during
// its fast phases. Scoring goes through sc like the SPR round; the
// acceptance chain is replayed in candidate order (bestNNICandidate), so
// pooled and serial sweeps pick the same interchanges.
func nniRound(eng *likelihood.Engine, tr *phylotree.Tree, sc *searchCtx, baseline, eps float64) (float64, int, error) {
	current := baseline
	accepted := 0
	// Failures break out with a stage tag and are wrapped once after the
	// loop: fmt.Errorf boxes its operands and the sweep is hot (see the
	// hotpathalloc analyzer).
	var stage string
	var stageErr error
	for _, e := range tr.InternalEdges() {
		u, v := e, e.Back
		if u.IsTip() || v.IsTip() {
			continue
		}
		// The two NNI alternatives around edge (u,v): swap u.Next's subtree
		// with each of v's two subtrees. Implemented as prune/regraft of
		// u.Next's subtree onto the two branches on v's side.
		p := u.Next // ring record whose Back is the subtree to move
		if p.Back == nil {
			continue
		}
		ps, err := tr.Prune(p)
		if err != nil {
			continue
		}
		zSub := ps.P.Z

		// After pruning, the joined edge runs Q--R. The NNI targets are the
		// two branches hanging off v (now reachable from the junction).
		sc.cands = appendNNITargets(sc.cands[:0], v, ps.P)

		scores, err := sc.scoreInsertions(eng, sc.cands, ps, zSub, current+eps)
		if err != nil {
			stage, stageErr = "trial", err
			break
		}
		bestIdx, bestZ, bestLL := bestNNICandidate(scores, zSub, current, eps)

		if bestIdx >= 0 {
			if err := tr.Regraft(ps, sc.cands[bestIdx]); err != nil {
				stage, stageErr = "accept", err
				break
			}
			ps.P.SetZ(bestZ)
			eng.Invalidate(ps.P) // direct SetZ bypasses the tree's hooks
			for _, b := range [...]*phylotree.Node{ps.P, ps.P.Next, ps.P.Next.Next} {
				if _, ll, err := eng.MakeNewz(b); err == nil {
					bestLL = ll
				}
			}
			current = bestLL
			accepted++
		} else {
			if err := tr.Undo(ps); err != nil {
				stage, stageErr = "undo", err
				break
			}
		}
	}
	sc.finishRound()
	if stageErr != nil {
		return 0, 0, fmt.Errorf("search: NNI %s: %w", stage, stageErr)
	}
	return current, accepted, nil
}

// NNISearch hill-climbs with nearest-neighbor interchanges only — the
// cheap local search usable as a fast first phase or a comparison baseline
// against the SPR search. It runs serially; NNISearchOpts accepts the full
// option set (worker pool, metrics).
func NNISearch(eng *likelihood.Engine, tr *phylotree.Tree, maxRounds int, eps float64) (float64, int, error) {
	return NNISearchOpts(eng, tr, Options{MaxRounds: maxRounds, Epsilon: eps})
}

// NNISearchOpts is NNISearch with explicit Options: MaxRounds, Epsilon,
// Workers and Metrics apply; the SPR-specific fields are ignored.
func NNISearchOpts(eng *likelihood.Engine, tr *phylotree.Tree, opt Options) (float64, int, error) {
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 10
	}
	if opt.Epsilon <= 0 {
		opt.Epsilon = 0.01
	}
	eps := opt.Epsilon
	// Observe topology mutations for incremental cache invalidation (no-op
	// when Config.Incremental is off).
	eng.AttachTree(tr)
	sc := newSearchCtx(eng, opt)
	defer sc.close(eng)
	ll, err := SmoothBranches(eng, tr, 4, eps)
	if err != nil {
		return 0, 0, err
	}
	moves := 0
	for round := 0; round < opt.MaxRounds; round++ {
		newLL, accepted, err := nniRound(eng, tr, sc, ll, eps)
		if err != nil {
			return 0, 0, err
		}
		moves += accepted
		newLL, err = SmoothBranches(eng, tr, 2, eps)
		if err != nil {
			return 0, 0, err
		}
		if accepted == 0 || newLL-ll < eps {
			if newLL > ll {
				ll = newLL
			}
			break
		}
		ll = newLL
	}
	return ll, moves, nil
}
