package search

import (
	"fmt"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/phylotree"
)

// nniRound performs one sweep of nearest-neighbor interchanges: for every
// internal edge (u, v) there are two alternative topologies obtained by
// swapping one subtree of u with one subtree of v. Each alternative is
// scored with the lazy machinery (prune the swapped subtree, score its
// re-insertion) — accepting the better alternative when it improves the
// current likelihood by more than eps. NNI is the cheap, small-step
// complement to SPR: RAxML applies SPR with radius 1-2 equivalently during
// its fast phases.
func nniRound(eng *likelihood.Engine, tr *phylotree.Tree, baseline, eps float64) (float64, int, error) {
	current := baseline
	accepted := 0
	for _, e := range tr.InternalEdges() {
		u, v := e, e.Back
		if u.IsTip() || v.IsTip() {
			continue
		}
		// The two NNI alternatives around edge (u,v): swap u.Next's subtree
		// with each of v's two subtrees. Implemented as prune/regraft of
		// u.Next's subtree onto the two branches on v's side.
		p := u.Next // ring record whose Back is the subtree to move
		if p.Back == nil {
			continue
		}
		ps, err := tr.Prune(p)
		if err != nil {
			continue
		}
		zSub := ps.P.Z

		// After pruning, the joined edge runs Q--R. The NNI targets are the
		// two branches hanging off v (now reachable from the junction).
		var targets []*phylotree.Node
		for _, r := range v.Ring() {
			if r != v && r.Back != nil {
				targets = append(targets, r)
			}
		}
		views := eng.NewViews()
		bestLL := current
		var bestEdge *phylotree.Node
		bestZ := zSub
		for _, cand := range targets {
			if cand.Back == nil || cand == ps.P || cand.Back == ps.P {
				continue
			}
			z, ll, err := views.InsertionScore(cand, ps.P, zSub)
			if err != nil {
				views.Release()
				return 0, 0, fmt.Errorf("search: NNI trial: %w", err)
			}
			if ll > bestLL+eps {
				bestLL, bestZ, bestEdge = ll, z, cand
			}
		}
		views.Release()

		if bestEdge != nil {
			if err := tr.Regraft(ps, bestEdge); err != nil {
				return 0, 0, fmt.Errorf("search: NNI accept: %w", err)
			}
			ps.P.SetZ(bestZ)
			eng.Invalidate(ps.P) // direct SetZ bypasses the tree's hooks
			for _, b := range []*phylotree.Node{ps.P, ps.P.Next, ps.P.Next.Next} {
				if _, ll, err := eng.MakeNewz(b); err == nil {
					bestLL = ll
				}
			}
			current = bestLL
			accepted++
		} else {
			if err := tr.Undo(ps); err != nil {
				return 0, 0, fmt.Errorf("search: NNI undo: %w", err)
			}
		}
	}
	return current, accepted, nil
}

// NNISearch hill-climbs with nearest-neighbor interchanges only — the
// cheap local search usable as a fast first phase or a comparison baseline
// against the SPR search.
func NNISearch(eng *likelihood.Engine, tr *phylotree.Tree, maxRounds int, eps float64) (float64, int, error) {
	if maxRounds <= 0 {
		maxRounds = 10
	}
	if eps <= 0 {
		eps = 0.01
	}
	// Observe topology mutations for incremental cache invalidation (no-op
	// when Config.Incremental is off).
	eng.AttachTree(tr)
	ll, err := SmoothBranches(eng, tr, 4, eps)
	if err != nil {
		return 0, 0, err
	}
	moves := 0
	for round := 0; round < maxRounds; round++ {
		newLL, accepted, err := nniRound(eng, tr, ll, eps)
		if err != nil {
			return 0, 0, err
		}
		moves += accepted
		newLL, err = SmoothBranches(eng, tr, 2, eps)
		if err != nil {
			return 0, 0, err
		}
		if accepted == 0 || newLL-ll < eps {
			if newLL > ll {
				ll = newLL
			}
			break
		}
		ll = newLL
	}
	return ll, moves, nil
}
