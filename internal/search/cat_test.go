package search

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/model"
	"raxmlcell/internal/seqsim"
)

func TestFitCATImprovesOverUniformRate(t *testing.T) {
	// Heterogeneous data (small alpha): a fitted CAT model must beat the
	// single-rate model and approach the Gamma fit.
	rng := rand.New(rand.NewSource(401))
	gen := seqsim.DefaultModel() // alpha 0.8, strong heterogeneity
	a, truth, err := seqsim.Generate(seqsim.Params{
		Taxa: 10, Sites: 800, MeanBranch: 0.15, Alpha: 0.8,
	}, gen, rng)
	if err != nil {
		t.Fatal(err)
	}
	pat := alignment.Compress(a)
	gtr := gen.GTR

	tr := truth.Clone()
	// Uniform-rate baseline, branch lengths optimized under it.
	uni := &model.Model{GTR: gtr, Cats: []float64{1}}
	engUni, err := likelihood.NewEngine(pat, uni, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	llUni, err := SmoothBranches(engUni, tr, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}

	catModel, err := FitCAT(engUni, tr, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(catModel.Cats) < 2 || len(catModel.Cats) > 25 {
		t.Fatalf("CAT categories = %d, want 2..25", len(catModel.Cats))
	}
	engCat, err := likelihood.NewEngine(pat, catModel, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	llCat, err := SmoothBranches(engCat, tr, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if llCat <= llUni {
		t.Errorf("CAT fit (%.4f) not better than uniform rate (%.4f)", llCat, llUni)
	}

	// Gamma reference.
	gam, err := model.NewModel(gtr, 0.8, 4)
	if err != nil {
		t.Fatal(err)
	}
	engGam, err := likelihood.NewEngine(pat, gam, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	llGam, err := SmoothBranches(engGam, tr, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("uniform %.2f  CAT %.2f  Gamma %.2f", llUni, llCat, llGam)
	// CAT per-site fits typically score at or above Gamma (more free
	// parameters); allow a modest shortfall but catch gross failures.
	if llCat < llGam-math.Abs(llGam)*0.02 {
		t.Errorf("CAT fit %.2f far below Gamma fit %.2f", llCat, llGam)
	}
}

func TestFitCATUsesMultipleCategories(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	gen := seqsim.DefaultModel()
	a, truth, err := seqsim.Generate(seqsim.Params{
		Taxa: 8, Sites: 600, MeanBranch: 0.15, Alpha: 0.5,
	}, gen, rng)
	if err != nil {
		t.Fatal(err)
	}
	pat := alignment.Compress(a)
	uni := &model.Model{GTR: gen.GTR, Cats: []float64{1}}
	eng, err := likelihood.NewEngine(pat, uni, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := truth.Clone()
	if _, err := SmoothBranches(eng, tr, 3, 1e-3); err != nil {
		t.Fatal(err)
	}
	catModel, err := FitCAT(eng, tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, c := range catModel.PatCat {
		used[c] = true
	}
	if len(used) < 3 {
		t.Errorf("CAT assignment uses only %d categories on heterogeneous data", len(used))
	}
}

func TestFitCATValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	gen := seqsim.DefaultModel()
	a, truth, err := seqsim.Generate(seqsim.Params{Taxa: 6, Sites: 100, MeanBranch: 0.1}, gen, rng)
	if err != nil {
		t.Fatal(err)
	}
	pat := alignment.Compress(a)
	eng, err := likelihood.NewEngine(pat, gen, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FitCAT(eng, truth, 1); err == nil {
		t.Error("k=1 accepted")
	}
}
