package search

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/model"
	"raxmlcell/internal/parsimony"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/seqsim"
)

func simulated(t *testing.T, seed int64, taxa, sites int) (*alignment.Patterns, *phylotree.Tree, *model.Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := seqsim.DefaultModel()
	a, truth, err := seqsim.Generate(seqsim.Params{
		Taxa: taxa, Sites: sites, MeanBranch: 0.12, Alpha: 0.8,
	}, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	return alignment.Compress(a), truth, m
}

func TestSmoothBranchesImproves(t *testing.T) {
	pat, truth, m := simulated(t, 11, 10, 400)
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately break all branch lengths.
	tr := truth.Clone()
	for _, e := range tr.Edges() {
		e.SetZ(0.5)
	}
	before, err := eng.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	after, err := SmoothBranches(eng, tr, 6, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Errorf("smoothing did not improve: %.4f -> %.4f", before, after)
	}
	// Second smoothing should be (almost) a no-op: converged.
	again, err := SmoothBranches(eng, tr, 6, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if again < after-0.05 {
		t.Errorf("smoothing not stable: %.6f then %.6f", after, again)
	}
}

func TestOptimizeAlphaRecovers(t *testing.T) {
	// Data generated with alpha=0.8: the fitted alpha should land in a
	// plausible band around it and beat badly mis-specified alphas.
	pat, truth, m := simulated(t, 13, 12, 800)
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := truth.Clone()
	if _, err := SmoothBranches(eng, tr, 4, 1e-3); err != nil {
		t.Fatal(err)
	}
	alpha, ll, err := OptimizeAlpha(eng, tr, 0.02, 50, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 0.2 || alpha > 4 {
		t.Errorf("fitted alpha = %.3f, generated with 0.8", alpha)
	}
	// Compare against a mis-specified alpha.
	bad, err := eng.Mod.WithAlpha(20)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetModel(bad); err != nil {
		t.Fatal(err)
	}
	llBad, err := eng.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	if llBad > ll {
		t.Errorf("alpha=20 scores %.4f better than fitted %.4f", llBad, ll)
	}
}

func TestOptimizeAlphaErrors(t *testing.T) {
	pat, truth, m := simulated(t, 14, 6, 100)
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OptimizeAlpha(eng, truth, -1, 10, 1e-3); err == nil {
		t.Error("negative lower bound accepted")
	}
	if _, _, err := OptimizeAlpha(eng, truth, 5, 1, 1e-3); err == nil {
		t.Error("inverted bounds accepted")
	}
}

func TestSPRRecoversTopology(t *testing.T) {
	// The headline correctness test: from a parsimony starting tree, the
	// SPR search must find a topology close to (usually identical to) the
	// generating tree on high-signal data.
	pat, truth, m := simulated(t, 17, 12, 1000)
	rng := rand.New(rand.NewSource(18))
	start, err := parsimony.BuildStepwise(pat, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(eng, start, Options{Radius: 5, MaxRounds: 8, SmoothPasses: 3, Epsilon: 0.01, AlphaOpt: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatalf("search returned invalid tree: %v", err)
	}
	if err := truth.AlignTaxa(res.Tree.Taxa); err != nil {
		t.Fatal(err)
	}
	d, err := phylotree.RobinsonFoulds(truth, res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	// 12 taxa -> 9 internal edges -> max RF 18. Demand near-perfect recovery.
	if d > 4 {
		t.Errorf("RF distance to true tree = %d (tree: %s)", d, res.Tree.Newick())
	}
	t.Logf("logL=%.3f alpha=%.3f rounds=%d moves=%d RF=%d", res.LogL, res.Alpha, res.Rounds, res.Moves, d)
}

func TestStatisticalConsistency(t *testing.T) {
	// More data must (on average) mean better topology recovery — the
	// end-to-end sanity property of a maximum likelihood implementation.
	// Averaged over several replicates to keep the test stable.
	totalShort, totalLong := 0, 0
	for rep := int64(0); rep < 3; rep++ {
		for _, sites := range []int{150, 2000} {
			rng := rand.New(rand.NewSource(1000 + rep))
			m := seqsim.DefaultModel()
			a, truth, err := seqsim.Generate(seqsim.Params{
				Taxa: 10, Sites: sites, MeanBranch: 0.1, Alpha: 0.8,
			}, m, rng)
			if err != nil {
				t.Fatal(err)
			}
			pat := alignment.Compress(a)
			start, err := parsimony.BuildStepwise(pat, rng)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(eng, start, Options{Radius: 4, MaxRounds: 4, SmoothPasses: 3, Epsilon: 0.02})
			if err != nil {
				t.Fatal(err)
			}
			if err := truth.AlignTaxa(pat.Names); err != nil {
				t.Fatal(err)
			}
			rf, err := phylotree.RobinsonFoulds(truth, res.Tree)
			if err != nil {
				t.Fatal(err)
			}
			if sites == 150 {
				totalShort += rf
			} else {
				totalLong += rf
			}
		}
	}
	if totalLong > totalShort {
		t.Errorf("more data gave worse recovery: RF %d (2000 sites) vs %d (150 sites)", totalLong, totalShort)
	}
	if totalLong > 4 {
		t.Errorf("2000-site recovery too poor: total RF %d over 3 replicates", totalLong)
	}
}

func TestSearchImprovesOverStart(t *testing.T) {
	pat, _, m := simulated(t, 19, 10, 400)
	rng := rand.New(rand.NewSource(20))
	start, err := phylotree.RandomTopology(pat.Names, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := eng.Evaluate(start.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(eng, start, Options{Radius: 4, MaxRounds: 6, SmoothPasses: 3, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogL <= before {
		t.Errorf("search did not improve: %.4f -> %.4f", before, res.LogL)
	}
	if res.Moves == 0 {
		t.Error("random start accepted no SPR moves; suspicious")
	}
}

func TestSearchDeterministic(t *testing.T) {
	pat, _, m := simulated(t, 23, 8, 300)
	run := func() (string, float64) {
		rng := rand.New(rand.NewSource(24))
		start, err := parsimony.BuildStepwise(pat, rng)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(eng, start, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Tree.Newick(), res.LogL
	}
	n1, l1 := run()
	n2, l2 := run()
	if n1 != n2 || math.Abs(l1-l2) > 1e-9 {
		t.Errorf("non-deterministic search: %.6f vs %.6f", l1, l2)
	}
}

func TestRunRejectsBadStart(t *testing.T) {
	pat, _, m := simulated(t, 29, 6, 100)
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	incomplete, err := phylotree.NewTree(pat.Names)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(eng, incomplete, Options{}); err == nil {
		t.Error("incomplete starting tree accepted")
	}
}

func TestKernelVariantsSameSearchResult(t *testing.T) {
	// The optimization-variant kernels must not change which tree the
	// search finds (they are performance variants, not approximations —
	// except SDKExp whose 1e-15 error must still be far below Epsilon).
	pat, _, m := simulated(t, 31, 9, 400)
	var ref string
	for i, cfg := range []likelihood.Config{
		{},
		{IntCond: true, VectorFP: true},
		{SDKExp: true},
	} {
		rng := rand.New(rand.NewSource(32))
		start, err := parsimony.BuildStepwise(pat, rng)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := likelihood.NewEngine(pat, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(eng, start, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res.Tree.Newick()
		} else if res.Tree.Newick() != ref {
			t.Errorf("config %+v found a different tree", cfg)
		}
	}
}
