package search

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/parsimony"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/seqsim"
)

// TestBestCandidateTieBreak pins the deterministic winner selection: the
// highest log-likelihood wins, and an exact tie goes to the lowest
// candidate index — the strictly-greater scan in index order that makes the
// pooled reduction byte-identical to the serial loop's choice.
func TestBestCandidateTieBreak(t *testing.T) {
	scores := []candScore{
		{z: 0.1, ll: -50, ok: true},
		{z: 0.2, ll: -40, ok: true}, // first of the tied best
		{z: 0.3, ll: -40, ok: true}, // tied, higher index: must lose
		{z: 0.4, ll: -45, ok: true},
		{z: 0.5, ll: -30, ok: false}, // unscored (detached edge): ignored
	}
	idx, z, ll := bestCandidate(scores, 0.9)
	if idx != 1 || math.Abs(z-0.2) > 0 || math.Abs(ll-(-40)) > 0 {
		t.Errorf("got (idx=%d z=%g ll=%g), want (1, 0.2, -40)", idx, z, ll)
	}

	// Nothing scored: index -1, fallback z0.
	idx, z, _ = bestCandidate([]candScore{{ok: false}, {ok: false}}, 0.9)
	if idx != -1 || math.Abs(z-0.9) > 0 {
		t.Errorf("empty reduction: got (idx=%d z=%g), want (-1, 0.9)", idx, z)
	}
	idx, _, _ = bestCandidate(nil, 0.9)
	if idx != -1 {
		t.Errorf("nil reduction: got idx=%d, want -1", idx)
	}
}

// TestBestNNICandidateChain pins the NNI acceptance replay: the serial loop
// is an order-dependent chain (a candidate must beat the *incumbent* by
// more than eps, and the incumbent updates as the scan walks), not an
// argmax. A later candidate that beats the start but not the updated
// incumbent must lose.
func TestBestNNICandidateChain(t *testing.T) {
	const current, eps = -100.0, 1.0
	scores := []candScore{
		{z: 0.1, ll: -98, ok: true},   // beats -100+1: incumbent -> -98
		{z: 0.2, ll: -97.5, ok: true}, // beats -100+1 but NOT -98+1: rejected
		{z: 0.3, ll: -96, ok: true},   // beats -98+1: incumbent -> -96
		{z: 0.4, ll: -95.5, ok: true}, // beats -96 but not -96+1: rejected
	}
	idx, z, ll := bestNNICandidate(scores, 0.9, current, eps)
	if idx != 2 || math.Abs(z-0.3) > 0 || math.Abs(ll-(-96)) > 0 {
		t.Errorf("got (idx=%d z=%g ll=%g), want (2, 0.3, -96)", idx, z, ll)
	}

	// No candidate clears the gate: keep the current likelihood.
	idx, _, ll = bestNNICandidate([]candScore{{ll: -99.5, ok: true}}, 0.9, current, eps)
	if idx != -1 || math.Abs(ll-current) > 0 {
		t.Errorf("gated reduction: got (idx=%d ll=%g), want (-1, %g)", idx, ll, current)
	}
}

// runSPR42SC runs the full SPR search on the 42_SC fixture with the given
// worker count, starting from the same parsimony tree every time.
func runSPR42SC(t *testing.T, workers int, reg *obs.Registry) (*Result, likelihood.Meter) {
	t.Helper()
	return runSPR42SCOpts(t, Options{Workers: workers, Metrics: reg})
}

// runSPR42SCOpts is runSPR42SC with full option control (NoSharedCache for
// the redundancy baseline); Radius/rounds/epsilon are pinned.
func runSPR42SCOpts(t *testing.T, opt Options) (*Result, likelihood.Meter) {
	t.Helper()
	pat := load42SC(t)
	m := seqsim.DefaultModel()
	start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(777)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	opt.Radius, opt.MaxRounds, opt.SmoothPasses, opt.Epsilon = 3, 2, 2, 0.05
	res, err := Run(eng, start, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.Meter
}

// TestParallelSPRCrossValidation42SC is the ISSUE's acceptance test: the
// worker-pool SPR search on the 42_SC fixture must reach the identical
// final topology and the same log-likelihood (1e-9 relative) as the serial
// search, with the same move and round counts — parallelism is a pure
// scheduling change, never a search-path change — and, with the shared
// vector store on (the default), the pooled run must not redo shared-path
// kernel work: its newview-call total stays within 1.15x of serial.
func TestParallelSPRCrossValidation42SC(t *testing.T) {
	if testing.Short() {
		t.Skip("full SPR search on 42 taxa, twice")
	}
	serial, mtSerial := runSPR42SC(t, 1, nil)
	pooled, mtPooled := runSPR42SC(t, 4, nil)

	if math.Abs(serial.LogL-pooled.LogL) > 1e-9*math.Max(1, math.Abs(serial.LogL)) {
		t.Errorf("pooled logL %.12f != serial %.12f", pooled.LogL, serial.LogL)
	}
	if serial.Moves != pooled.Moves || serial.Rounds != pooled.Rounds {
		t.Errorf("search path diverged: serial %d moves/%d rounds, pooled %d moves/%d rounds",
			serial.Moves, serial.Rounds, pooled.Moves, pooled.Rounds)
	}
	rf, err := phylotree.RobinsonFoulds(serial.Tree, pooled.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 0 {
		t.Errorf("topologies diverged: RF=%d", rf)
	}
	// The redundancy gate, in-process: the ROADMAP's scaling target is
	// meaningless if each worker redoes the serial work, so the pooled
	// newview total is held to 1.15x serial (it is typically *below*
	// serial: the epoch-tagged store reuses vectors across prunes that
	// serial one-shot Views rebuild).
	ratio := float64(mtPooled.NewviewCalls) / float64(mtSerial.NewviewCalls)
	if ratio > 1.15 {
		t.Errorf("pooled newview calls %d vs serial %d: ratio %.3f > 1.15",
			mtPooled.NewviewCalls, mtSerial.NewviewCalls, ratio)
	}
	if mtPooled.SharedHits == 0 {
		t.Error("pooled run recorded no shared-store hits")
	}
}

// TestParallelSharedCacheRedundancy42SC quantifies what the shared store
// removes: the same pooled search with NoSharedCache (private per-worker
// view tables, the pre-shared-store behaviour) must do strictly more
// newview work, and the opt-out must still reach the identical result.
func TestParallelSharedCacheRedundancy42SC(t *testing.T) {
	if testing.Short() {
		t.Skip("full SPR search on 42 taxa, twice")
	}
	withShared, mtShared := runSPR42SCOpts(t, Options{Workers: 4})
	without, mtPrivate := runSPR42SCOpts(t, Options{Workers: 4, NoSharedCache: true})

	if math.Abs(withShared.LogL-without.LogL) > 1e-9*math.Max(1, math.Abs(without.LogL)) {
		t.Errorf("shared-store logL %.12f != private-views logL %.12f", withShared.LogL, without.LogL)
	}
	if withShared.Moves != without.Moves || withShared.Rounds != without.Rounds {
		t.Errorf("search path diverged: shared %d moves/%d rounds, private %d moves/%d rounds",
			withShared.Moves, withShared.Rounds, without.Moves, without.Rounds)
	}
	if mtShared.NewviewCalls >= mtPrivate.NewviewCalls {
		t.Errorf("shared store did not reduce newview work: %d with vs %d without",
			mtShared.NewviewCalls, mtPrivate.NewviewCalls)
	}
	if mtPrivate.SharedHits != 0 {
		t.Errorf("NoSharedCache run metered %d shared hits", mtPrivate.SharedHits)
	}
}

// TestParallelSearchMeterDeterminism repeats the pooled 42_SC search and
// requires bit-identical results and Meter totals across runs: static
// partitioning plus worker-order merges make the kernel-op accounting a
// pure function of the input, not of goroutine scheduling.
func TestParallelSearchMeterDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full SPR search on 42 taxa, twice")
	}
	resA, mtA := runSPR42SC(t, 3, nil)
	resB, mtB := runSPR42SC(t, 3, nil)
	if math.Abs(resA.LogL-resB.LogL) > 0 {
		t.Errorf("repeat run logL %.15f != %.15f", resB.LogL, resA.LogL)
	}
	if mtA != mtB {
		t.Errorf("repeat run meter differs:\n first %+v\n again %+v", mtA, mtB)
	}
}

// TestParallelNNICrossValidation checks the NNI acceptance chain survives
// pooling: serial NNISearch and the pooled NNISearchOpts must accept the
// same interchanges and land on the same likelihood.
func TestParallelNNICrossValidation(t *testing.T) {
	pat, _, m := simulated(t, 91, 12, 300)
	run := func(workers int) (float64, int, *phylotree.Tree) {
		start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(92)))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ll, moves, err := NNISearchOpts(eng, start, Options{MaxRounds: 4, Epsilon: 0.01, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return ll, moves, start
	}
	llS, movesS, trS := run(1)
	llP, movesP, trP := run(4)
	if math.Abs(llS-llP) > 1e-9*math.Max(1, math.Abs(llS)) {
		t.Errorf("pooled NNI logL %.12f != serial %.12f", llP, llS)
	}
	if movesS != movesP {
		t.Errorf("pooled NNI accepted %d moves, serial %d", movesP, movesS)
	}
	rf, err := phylotree.RobinsonFoulds(trS, trP)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 0 {
		t.Errorf("NNI topologies diverged: RF=%d", rf)
	}
}

// TestParallelSharedCacheStressSPRCycles hammers the shared epoch store
// with the search's real access pattern — repeated Prune / concurrent
// pooled scoring / Regraft-or-Undo cycles on 4 workers — and checks every
// pooled score against a private-Views serial recompute, bitwise. Runs
// under -race in CI, where it doubles as the reader/single-flight race
// probe.
func TestParallelSharedCacheStressSPRCycles(t *testing.T) {
	pat, _, m := simulated(t, 97, 16, 300)
	tr, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(98)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	eng.AttachTree(tr)
	// Memo off: every pooled score below is compared bitwise against a
	// fresh serial recompute, which memo replay (an estimate) would break.
	sc := newSearchCtx(eng, Options{Workers: 4, NoTopoMemo: true})
	defer sc.close(eng)
	if sc.shared == nil {
		t.Fatal("pooled searchCtx did not install the shared store")
	}

	rng := rand.New(rand.NewSource(99))
	cycles, compared := 0, 0
	for cycle := 0; cycle < 30; cycle++ {
		cands := pruneCandidates(tr)
		p := cands[rng.Intn(len(cands))]
		if p.Back == nil || p.Next == nil {
			continue
		}
		ps, err := tr.Prune(p)
		if err != nil {
			continue
		}
		zSub := ps.P.Z
		sc.cands = phylotree.RadiusEdgesInto(sc.cands[:0], ps.Q, 3)
		sc.cands = phylotree.RadiusEdgesInto(sc.cands, ps.R, 3)

		scores, err := sc.scoreInsertions(eng, sc.cands, ps, zSub, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		// Serial reference through one-shot private Views: the pooled,
		// shared-store-served scores must match it bit for bit.
		ref := eng.NewViews()
		for i, cand := range sc.cands {
			if cand.Back == nil {
				continue
			}
			z, ll, err := ref.InsertionScore(cand, ps.P, zSub)
			if err != nil {
				t.Fatal(err)
			}
			if !scores[i].ok || scores[i].z != z || scores[i].ll != ll {
				t.Fatalf("cycle %d cand %d: pooled (ok=%v z=%.17g ll=%.17g) != serial (%.17g, %.17g)",
					cycle, i, scores[i].ok, scores[i].z, scores[i].ll, z, ll)
			}
			compared++
		}
		ref.Release()

		if len(sc.cands) > 0 && rng.Intn(2) == 0 {
			bestIdx, bestZ, _ := bestCandidate(scores, zSub)
			if bestIdx >= 0 {
				if err := tr.Regraft(ps, sc.cands[bestIdx]); err != nil {
					t.Fatal(err)
				}
				ps.P.SetZ(bestZ)
				eng.Invalidate(ps.P)
				for _, b := range [...]*phylotree.Node{ps.P, ps.P.Next, ps.P.Next.Next} {
					if _, _, err := eng.MakeNewz(b); err != nil {
						t.Fatal(err)
					}
				}
				cycles++
				continue
			}
		}
		if err := tr.Undo(ps); err != nil {
			t.Fatal(err)
		}
		cycles++
	}
	if cycles < 10 || compared == 0 {
		t.Fatalf("stress exercised only %d cycles / %d comparisons", cycles, compared)
	}
	if sc.shared.Hits() == 0 {
		t.Error("stress produced no shared-store hits")
	}
}

// TestAutoWorkersFromHonorsMeasuredOccupancy pins the occupancy-sizing
// contract: no registry or no recorded peak falls back to AutoWorkers, a
// positive peak below the CPU count caps the fan-out, and a peak at or
// above it (or a nonsensical zero) changes nothing.
func TestAutoWorkersFromHonorsMeasuredOccupancy(t *testing.T) {
	if got := AutoWorkersFrom(nil); got != AutoWorkers() {
		t.Errorf("nil registry: got %d, want AutoWorkers()=%d", got, AutoWorkers())
	}
	reg := obs.NewRegistry()
	if got := AutoWorkersFrom(reg); got != AutoWorkers() {
		t.Errorf("no recorded peak: got %d, want %d", got, AutoWorkers())
	}
	reg.Gauge("search.pool_busy_peak").Set(0)
	if got := AutoWorkersFrom(reg); got != AutoWorkers() {
		t.Errorf("zero peak: got %d, want %d", got, AutoWorkers())
	}
	reg.Gauge("search.pool_busy_peak").Set(1)
	if got := AutoWorkersFrom(reg); got != 1 {
		t.Errorf("peak 1: got %d, want 1", got)
	}
	reg.Gauge("search.pool_busy_peak").Set(float64(AutoWorkers() + 5))
	if got := AutoWorkersFrom(reg); got != AutoWorkers() {
		t.Errorf("peak above CPU count: got %d, want %d", got, AutoWorkers())
	}
}

// TestSearchMetricsPublished verifies the observability wiring: a pooled
// search publishes scored-candidate and parallel-round counters plus the
// pool-occupancy gauges into the registry that -debug-addr serves.
func TestSearchMetricsPublished(t *testing.T) {
	pat, _, m := simulated(t, 93, 14, 240)
	start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(94)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	if _, err := Run(eng, start, Options{
		Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05,
		Workers: 2, Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if n, ok := snap.CounterValue("search.candidates_scored"); !ok || n == 0 {
		t.Errorf("search.candidates_scored = %d (present %v), want > 0", n, ok)
	}
	if n, ok := snap.CounterValue("search.parallel_rounds"); !ok || n == 0 {
		t.Errorf("search.parallel_rounds = %d (present %v), want > 0", n, ok)
	}
	if v, ok := snap.GaugeValue("search.pool_workers"); !ok || math.Abs(v-2) > 0 {
		t.Errorf("search.pool_workers = %g (present %v), want 2", v, ok)
	}
	if _, ok := snap.GaugeValue("search.pool_busy"); !ok {
		t.Error("search.pool_busy gauge not published")
	}
	if v, ok := snap.GaugeValue("search.pool_busy_peak"); !ok || v < 1 || v > 2 {
		t.Errorf("search.pool_busy_peak = %g (present %v), want in [1, 2]", v, ok)
	}
	if n, ok := snap.CounterValue("cache.shared_hits"); !ok || n == 0 {
		t.Errorf("cache.shared_hits = %d (present %v), want > 0", n, ok)
	}
	if v, ok := snap.GaugeValue("cache.epoch"); !ok || v < 1 {
		t.Errorf("cache.epoch = %g (present %v), want >= 1", v, ok)
	}
	// The measured peak must round-trip into the next fan-out sizing.
	if got := AutoWorkersFrom(reg); got < 1 || got > AutoWorkers() {
		t.Errorf("AutoWorkersFrom after pooled run = %d, want in [1, %d]", got, AutoWorkers())
	}
}

// TestSerialSearchCountsCandidates checks the candidate counter also works
// without a pool (Workers <= 1) and that no pool gauges appear.
func TestSerialSearchCountsCandidates(t *testing.T) {
	pat, _, m := simulated(t, 95, 10, 200)
	start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(96)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	if _, err := Run(eng, start, Options{
		Radius: 2, MaxRounds: 1, SmoothPasses: 2, Epsilon: 0.05, Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if n, ok := snap.CounterValue("search.candidates_scored"); !ok || n == 0 {
		t.Errorf("search.candidates_scored = %d (present %v), want > 0", n, ok)
	}
	if n, _ := snap.CounterValue("search.parallel_rounds"); n != 0 {
		t.Errorf("serial run reported %d parallel rounds", n)
	}
	if _, ok := snap.GaugeValue("search.pool_workers"); ok {
		t.Error("serial run published search.pool_workers")
	}
	// Workers <= 1 must carry zero shared-cache machinery: no store is
	// installed, so no cache series appear and no shared hits are metered.
	if _, ok := snap.CounterValue("cache.shared_hits"); ok {
		t.Error("serial run published cache.shared_hits")
	}
	if _, ok := snap.GaugeValue("cache.epoch"); ok {
		t.Error("serial run published cache.epoch")
	}
	if eng.Meter.SharedHits != 0 {
		t.Errorf("serial run metered %d shared hits", eng.Meter.SharedHits)
	}
}
