package search

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/parsimony"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/seqsim"
)

// TestBestCandidateTieBreak pins the deterministic winner selection: the
// highest log-likelihood wins, and an exact tie goes to the lowest
// candidate index — the strictly-greater scan in index order that makes the
// pooled reduction byte-identical to the serial loop's choice.
func TestBestCandidateTieBreak(t *testing.T) {
	scores := []candScore{
		{z: 0.1, ll: -50, ok: true},
		{z: 0.2, ll: -40, ok: true}, // first of the tied best
		{z: 0.3, ll: -40, ok: true}, // tied, higher index: must lose
		{z: 0.4, ll: -45, ok: true},
		{z: 0.5, ll: -30, ok: false}, // unscored (detached edge): ignored
	}
	idx, z, ll := bestCandidate(scores, 0.9)
	if idx != 1 || math.Abs(z-0.2) > 0 || math.Abs(ll-(-40)) > 0 {
		t.Errorf("got (idx=%d z=%g ll=%g), want (1, 0.2, -40)", idx, z, ll)
	}

	// Nothing scored: index -1, fallback z0.
	idx, z, _ = bestCandidate([]candScore{{ok: false}, {ok: false}}, 0.9)
	if idx != -1 || math.Abs(z-0.9) > 0 {
		t.Errorf("empty reduction: got (idx=%d z=%g), want (-1, 0.9)", idx, z)
	}
	idx, _, _ = bestCandidate(nil, 0.9)
	if idx != -1 {
		t.Errorf("nil reduction: got idx=%d, want -1", idx)
	}
}

// TestBestNNICandidateChain pins the NNI acceptance replay: the serial loop
// is an order-dependent chain (a candidate must beat the *incumbent* by
// more than eps, and the incumbent updates as the scan walks), not an
// argmax. A later candidate that beats the start but not the updated
// incumbent must lose.
func TestBestNNICandidateChain(t *testing.T) {
	const current, eps = -100.0, 1.0
	scores := []candScore{
		{z: 0.1, ll: -98, ok: true},   // beats -100+1: incumbent -> -98
		{z: 0.2, ll: -97.5, ok: true}, // beats -100+1 but NOT -98+1: rejected
		{z: 0.3, ll: -96, ok: true},   // beats -98+1: incumbent -> -96
		{z: 0.4, ll: -95.5, ok: true}, // beats -96 but not -96+1: rejected
	}
	idx, z, ll := bestNNICandidate(scores, 0.9, current, eps)
	if idx != 2 || math.Abs(z-0.3) > 0 || math.Abs(ll-(-96)) > 0 {
		t.Errorf("got (idx=%d z=%g ll=%g), want (2, 0.3, -96)", idx, z, ll)
	}

	// No candidate clears the gate: keep the current likelihood.
	idx, _, ll = bestNNICandidate([]candScore{{ll: -99.5, ok: true}}, 0.9, current, eps)
	if idx != -1 || math.Abs(ll-current) > 0 {
		t.Errorf("gated reduction: got (idx=%d ll=%g), want (-1, %g)", idx, ll, current)
	}
}

// runSPR42SC runs the full SPR search on the 42_SC fixture with the given
// worker count, starting from the same parsimony tree every time.
func runSPR42SC(t *testing.T, workers int, reg *obs.Registry) (*Result, likelihood.Meter) {
	t.Helper()
	pat := load42SC(t)
	m := seqsim.DefaultModel()
	start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(777)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(eng, start, Options{
		Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05,
		Workers: workers, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, eng.Meter
}

// TestParallelSPRCrossValidation42SC is the ISSUE's acceptance test: the
// worker-pool SPR search on the 42_SC fixture must reach the identical
// final topology and the same log-likelihood (1e-9 relative) as the serial
// search, with the same move and round counts — parallelism is a pure
// scheduling change, never a search-path change.
func TestParallelSPRCrossValidation42SC(t *testing.T) {
	if testing.Short() {
		t.Skip("full SPR search on 42 taxa, twice")
	}
	serial, _ := runSPR42SC(t, 1, nil)
	pooled, _ := runSPR42SC(t, 4, nil)

	if math.Abs(serial.LogL-pooled.LogL) > 1e-9*math.Max(1, math.Abs(serial.LogL)) {
		t.Errorf("pooled logL %.12f != serial %.12f", pooled.LogL, serial.LogL)
	}
	if serial.Moves != pooled.Moves || serial.Rounds != pooled.Rounds {
		t.Errorf("search path diverged: serial %d moves/%d rounds, pooled %d moves/%d rounds",
			serial.Moves, serial.Rounds, pooled.Moves, pooled.Rounds)
	}
	rf, err := phylotree.RobinsonFoulds(serial.Tree, pooled.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 0 {
		t.Errorf("topologies diverged: RF=%d", rf)
	}
}

// TestParallelSearchMeterDeterminism repeats the pooled 42_SC search and
// requires bit-identical results and Meter totals across runs: static
// partitioning plus worker-order merges make the kernel-op accounting a
// pure function of the input, not of goroutine scheduling.
func TestParallelSearchMeterDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full SPR search on 42 taxa, twice")
	}
	resA, mtA := runSPR42SC(t, 3, nil)
	resB, mtB := runSPR42SC(t, 3, nil)
	if math.Abs(resA.LogL-resB.LogL) > 0 {
		t.Errorf("repeat run logL %.15f != %.15f", resB.LogL, resA.LogL)
	}
	if mtA != mtB {
		t.Errorf("repeat run meter differs:\n first %+v\n again %+v", mtA, mtB)
	}
}

// TestParallelNNICrossValidation checks the NNI acceptance chain survives
// pooling: serial NNISearch and the pooled NNISearchOpts must accept the
// same interchanges and land on the same likelihood.
func TestParallelNNICrossValidation(t *testing.T) {
	pat, _, m := simulated(t, 91, 12, 300)
	run := func(workers int) (float64, int, *phylotree.Tree) {
		start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(92)))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ll, moves, err := NNISearchOpts(eng, start, Options{MaxRounds: 4, Epsilon: 0.01, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return ll, moves, start
	}
	llS, movesS, trS := run(1)
	llP, movesP, trP := run(4)
	if math.Abs(llS-llP) > 1e-9*math.Max(1, math.Abs(llS)) {
		t.Errorf("pooled NNI logL %.12f != serial %.12f", llP, llS)
	}
	if movesS != movesP {
		t.Errorf("pooled NNI accepted %d moves, serial %d", movesP, movesS)
	}
	rf, err := phylotree.RobinsonFoulds(trS, trP)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 0 {
		t.Errorf("NNI topologies diverged: RF=%d", rf)
	}
}

// TestSearchMetricsPublished verifies the observability wiring: a pooled
// search publishes scored-candidate and parallel-round counters plus the
// pool-occupancy gauges into the registry that -debug-addr serves.
func TestSearchMetricsPublished(t *testing.T) {
	pat, _, m := simulated(t, 93, 14, 240)
	start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(94)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	if _, err := Run(eng, start, Options{
		Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05,
		Workers: 2, Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if n, ok := snap.CounterValue("search.candidates_scored"); !ok || n == 0 {
		t.Errorf("search.candidates_scored = %d (present %v), want > 0", n, ok)
	}
	if n, ok := snap.CounterValue("search.parallel_rounds"); !ok || n == 0 {
		t.Errorf("search.parallel_rounds = %d (present %v), want > 0", n, ok)
	}
	if v, ok := snap.GaugeValue("search.pool_workers"); !ok || math.Abs(v-2) > 0 {
		t.Errorf("search.pool_workers = %g (present %v), want 2", v, ok)
	}
	if _, ok := snap.GaugeValue("search.pool_busy"); !ok {
		t.Error("search.pool_busy gauge not published")
	}
}

// TestSerialSearchCountsCandidates checks the candidate counter also works
// without a pool (Workers <= 1) and that no pool gauges appear.
func TestSerialSearchCountsCandidates(t *testing.T) {
	pat, _, m := simulated(t, 95, 10, 200)
	start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(96)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	if _, err := Run(eng, start, Options{
		Radius: 2, MaxRounds: 1, SmoothPasses: 2, Epsilon: 0.05, Metrics: reg,
	}); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if n, ok := snap.CounterValue("search.candidates_scored"); !ok || n == 0 {
		t.Errorf("search.candidates_scored = %d (present %v), want > 0", n, ok)
	}
	if n, _ := snap.CounterValue("search.parallel_rounds"); n != 0 {
		t.Errorf("serial run reported %d parallel rounds", n)
	}
	if _, ok := snap.GaugeValue("search.pool_workers"); ok {
		t.Error("serial run published search.pool_workers")
	}
}
