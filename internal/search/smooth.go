// Package search implements RAxML's rapid hill-climbing tree search on top
// of the likelihood kernels: branch-length smoothing sweeps, Gamma shape
// optimization by golden-section search, and radius-bounded lazy SPR
// rearrangements with a best-insertion list.
package search

import (
	"fmt"
	"math"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/phylotree"
)

// SmoothBranches runs up to maxPasses Newton sweeps over every branch of
// the tree, stopping early when a full pass improves the log-likelihood by
// less than eps. It returns the final log-likelihood.
//
// No explicit cache management is needed here: MakeNewz invalidates the
// engine's incremental partial-vector caches itself whenever it changes a
// branch length, so under Config.Incremental each Newton step recomputes
// only the views the previous step dirtied instead of the whole tree.
func SmoothBranches(eng *likelihood.Engine, tr *phylotree.Tree, maxPasses int, eps float64) (float64, error) {
	if maxPasses <= 0 {
		maxPasses = 1
	}
	last := math.Inf(-1)
	for pass := 0; pass < maxPasses; pass++ {
		var ll float64
		for _, e := range tr.Edges() {
			var err error
			_, ll, err = eng.MakeNewz(e)
			if err != nil {
				return 0, fmt.Errorf("search: smoothing: %w", err)
			}
		}
		if ll-last < eps {
			return ll, nil
		}
		last = ll
	}
	return last, nil
}

// OptimizeAlpha fits the Gamma shape parameter by golden-section search on
// the tree log-likelihood over alpha in [lo, hi], updating the engine's
// model in place. It returns the best alpha and its log-likelihood.
func OptimizeAlpha(eng *likelihood.Engine, tr *phylotree.Tree, lo, hi, tol float64) (float64, float64, error) {
	if eng.Mod.NumCats() <= 1 {
		// No rate heterogeneity to fit.
		ll, err := eng.Evaluate(tr.Tips[0])
		return eng.Mod.Alpha, ll, err
	}
	if lo <= 0 || hi <= lo {
		return 0, 0, fmt.Errorf("search: bad alpha bounds [%g, %g]", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-3
	}
	eval := func(alpha float64) (float64, error) {
		m, err := eng.Mod.WithAlpha(alpha)
		if err != nil {
			return 0, err
		}
		if err := eng.SetModel(m); err != nil {
			return 0, err
		}
		return eng.Evaluate(tr.Tips[0])
	}
	// Golden-section search in log(alpha) space (the likelihood surface is
	// much closer to symmetric there).
	const phi = 0.6180339887498949
	a, b := math.Log(lo), math.Log(hi)
	x1 := b - phi*(b-a)
	x2 := a + phi*(b-a)
	f1, err := eval(math.Exp(x1))
	if err != nil {
		return 0, 0, err
	}
	f2, err := eval(math.Exp(x2))
	if err != nil {
		return 0, 0, err
	}
	for b-a > tol {
		if f1 < f2 {
			a, x1, f1 = x1, x2, f2
			x2 = a + phi*(b-a)
			f2, err = eval(math.Exp(x2))
		} else {
			b, x2, f2 = x2, x1, f1
			x1 = b - phi*(b-a)
			f1, err = eval(math.Exp(x1))
		}
		if err != nil {
			return 0, 0, err
		}
	}
	best := math.Exp((a + b) / 2)
	ll, err := eval(best)
	if err != nil {
		return 0, 0, err
	}
	return best, ll, nil
}
