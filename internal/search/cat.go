package search

import (
	"fmt"
	"math"
	"sort"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/model"
	"raxmlcell/internal/phylotree"
)

// FitCAT estimates a per-site rate-category (CAT) model on a fixed tree:
// every site pattern is scored under k candidate rates (log-spaced over
// [minRate, maxRate], the spread RAxML's 25-category default covers) and
// assigned to the rate that maximizes its own likelihood; the assignment is
// then normalized to a weighted mean rate of 1 and packaged as a CAT model.
//
// The returned model has a different storage layout than the engine's
// (one category per site), so the caller builds a fresh Engine for it.
func FitCAT(eng *likelihood.Engine, tr *phylotree.Tree, k int) (*model.Model, error) {
	if k < 2 {
		return nil, fmt.Errorf("search: CAT needs >= 2 categories, got %d", k)
	}
	const minRate, maxRate = 0.05, 10.0
	pat := eng.Pat
	g := eng.Mod.GTR

	cands := make([]float64, k)
	for i := range cands {
		f := float64(i) / float64(k-1)
		cands[i] = math.Exp(math.Log(minRate) + f*(math.Log(maxRate)-math.Log(minRate)))
	}

	bestLL := make([]float64, pat.NumPatterns())
	bestRate := make([]float64, pat.NumPatterns())
	for i := range bestLL {
		bestLL[i] = math.Inf(-1)
	}

	anchor := tr.Tips[0]
	var perSite []float64
	score := func(rate float64) error {
		// A single fixed-rate model: Cats = [rate], no averaging.
		m := &model.Model{GTR: g, Cats: []float64{rate}}
		probe, err := likelihood.NewEngine(pat, m, eng.Cfg)
		if err != nil {
			return err
		}
		perSite, err = probe.PerSiteLogL(anchor, perSite)
		if err != nil {
			return err
		}
		for p, ll := range perSite {
			if ll > bestLL[p] {
				bestLL[p] = ll
				bestRate[p] = rate
			}
		}
		return nil
	}
	for _, rate := range cands {
		if err := score(rate); err != nil {
			return nil, err
		}
	}
	// Refinement pass: probe between the coarse grid points actually in
	// use, so each site's rate is located to half a grid step.
	used := map[float64]bool{}
	for _, r := range bestRate {
		used[r] = true
	}
	step := math.Sqrt(cands[1] / cands[0]) // half a log-step
	for r := range used {
		for _, refined := range []float64{r / step, r * step} {
			if refined >= minRate/2 && refined <= maxRate*2 {
				if err := score(refined); err != nil {
					return nil, err
				}
			}
		}
	}
	// Collapse the fitted per-site rates to at most k categories: merge the
	// closest adjacent distinct rates (in log space, weighted by site
	// count) until k remain — RAxML's categorization step.
	type bucket struct {
		logRate float64
		weight  float64
	}
	distinctW := map[float64]float64{}
	for p, r := range bestRate {
		distinctW[r] += float64(pat.Weights[p])
	}
	var buckets []bucket
	for r, w := range distinctW {
		buckets = append(buckets, bucket{math.Log(r), w})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].logRate < buckets[j].logRate })
	for len(buckets) > k {
		// Find the closest adjacent pair.
		best, gap := 0, math.Inf(1)
		for i := 0; i+1 < len(buckets); i++ {
			if d := buckets[i+1].logRate - buckets[i].logRate; d < gap {
				gap, best = d, i
			}
		}
		a, b := buckets[best], buckets[best+1]
		merged := bucket{
			logRate: (a.logRate*a.weight + b.logRate*b.weight) / (a.weight + b.weight),
			weight:  a.weight + b.weight,
		}
		buckets = append(buckets[:best], append([]bucket{merged}, buckets[best+2:]...)...)
	}
	rates := make([]float64, len(buckets))
	for i, b := range buckets {
		rates[i] = math.Exp(b.logRate)
	}
	// Assign each site to the nearest category in log space.
	assign := make([]int, pat.NumPatterns())
	for p, r := range bestRate {
		lr := math.Log(r)
		bi, bd := 0, math.Inf(1)
		for i, b := range buckets {
			if d := math.Abs(lr - b.logRate); d < bd {
				bd, bi = d, i
			}
		}
		assign[p] = bi
	}
	return model.NewCATModel(g, rates, assign, pat.Weights)
}
