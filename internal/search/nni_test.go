package search

import (
	"math/rand"
	"testing"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/parsimony"
	"raxmlcell/internal/phylotree"
)

func TestNNISearchImproves(t *testing.T) {
	pat, truth, m := simulated(t, 801, 12, 800)
	rng := rand.New(rand.NewSource(802))
	start, err := phylotree.RandomTopology(pat.Names, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := eng.Evaluate(start.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	ll, moves, err := NNISearch(eng, start, 10, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := start.Validate(); err != nil {
		t.Fatalf("NNI broke the tree: %v", err)
	}
	if ll <= before {
		t.Errorf("NNI did not improve: %.4f -> %.4f", before, ll)
	}
	if moves == 0 {
		t.Error("NNI accepted no moves from a random start")
	}
	_ = truth
}

func TestNNIStableOnOptimum(t *testing.T) {
	// On the SPR-optimized tree NNI should find (almost) nothing.
	pat, _, m := simulated(t, 803, 10, 600)
	rng := rand.New(rand.NewSource(804))
	start, err := parsimony.BuildStepwise(pat, rng)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(eng, start, Options{Radius: 5, MaxRounds: 6, SmoothPasses: 3, Epsilon: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	ll, moves, err := NNISearch(eng, res.Tree, 5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if moves > 1 {
		t.Errorf("NNI found %d moves after SPR convergence", moves)
	}
	if ll < res.LogL-0.5 {
		t.Errorf("NNI worsened the SPR optimum: %.4f -> %.4f", res.LogL, ll)
	}
}

func TestNNIVersusSPRQuality(t *testing.T) {
	// From the same parsimony start, SPR (radius 5) should match or beat
	// NNI-only search; both must land near each other on easy data.
	pat, _, m := simulated(t, 805, 11, 700)
	runFrom := func(doSPR bool) float64 {
		rng := rand.New(rand.NewSource(806))
		start, err := parsimony.BuildStepwise(pat, rng)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if doSPR {
			res, err := Run(eng, start, Options{Radius: 5, MaxRounds: 6, SmoothPasses: 3, Epsilon: 0.01})
			if err != nil {
				t.Fatal(err)
			}
			return res.LogL
		}
		ll, _, err := NNISearch(eng, start, 10, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		return ll
	}
	spr := runFrom(true)
	nni := runFrom(false)
	if spr < nni-0.5 {
		t.Errorf("SPR (%.4f) worse than NNI (%.4f)", spr, nni)
	}
}
