package search

import (
	"math"
	"runtime"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/phylotree"
)

// AutoWorkers returns the default search-worker fan-out for this process:
// one worker per schedulable CPU (GOMAXPROCS). Callers that expose a
// -search-workers knob should treat 0 as "auto" and resolve it through
// this function before filling Options.Workers, so that Options itself
// keeps its stable contract (Workers <= 1 means serial — a zero value
// never silently spawns a pool).
func AutoWorkers() int { return runtime.GOMAXPROCS(0) }

// AutoWorkersFrom sizes the fan-out from measured occupancy instead of raw
// CPU count: it returns AutoWorkers() capped at the search.pool_busy_peak
// gauge recorded in reg by a previous pooled search. A pool whose peak
// occupancy never reached the worker count was over-provisioned — candidate
// blocks are contiguous and unstolen, so idle workers are pure fan-out
// overhead — and the next search in the same process (bootstrap replicates,
// repeated inferences) right-sizes to what was actually used. With no
// registry, no recorded peak, or a peak at/above the CPU count it behaves
// exactly like AutoWorkers.
func AutoWorkersFrom(reg *obs.Registry) int {
	w := AutoWorkers()
	if reg == nil {
		return w
	}
	snap := reg.Snapshot()
	if peak, ok := snap.GaugeValue("search.pool_busy_peak"); ok {
		if p := int(peak); p >= 1 && p < w {
			return p
		}
	}
	return w
}

// The paper layers task-level parallelism (EDTLP, and at scale MGPS) on
// top of the loop-level parallelism inside each kernel: independent
// likelihood tasks run concurrently on different SPEs. This file is the
// search-side half of that axis — the regraft candidates of one pruned
// subtree are independent read-only queries against the frozen tree, so
// they fan out over a likelihood.Pool, each worker scoring through its own
// context-bound Views. The other half (wavefront traversal execution)
// lives in the likelihood package and reuses the same pool.

// minParallelCandidates is the smallest candidate count worth fanning out;
// below it the per-fanout overhead (goroutine spawn, per-worker view
// warm-up of the shared path to the root) exceeds the win.
const minParallelCandidates = 4

// candScore is one scored insertion candidate. ok marks candidates that
// carry a usable score (detached edges are skipped, mirroring the serial
// loop's continue); hit marks scores replayed from the topology memo
// instead of a fresh likelihood evaluation.
type candScore struct {
	z, ll float64
	ok    bool
	hit   bool
	err   error
}

// topoProbe records the candidate's topology hash between the probe and the
// post-scoring memo insert (only misses that scored fresh are inserted).
type topoProbe struct {
	hash phylotree.TopoHash
	ok   bool
}

// searchCtx carries the task-parallel state of one search: the worker pool
// (nil = serial), per-worker view tables, reusable candidate/score buffers
// (hoisted out of the SPR hot loop — see the hotpathalloc analyzer), and
// live metric handles.
type searchCtx struct {
	pool  *likelihood.Pool
	views []*likelihood.Views

	// shared, when non-nil, is the engine-wide epoch-tagged vector store
	// every worker's Views reads through (Options.NoSharedCache opts out):
	// the composition of the incremental cache with the pool that removes
	// the per-worker recomputation of shared-path vectors. serialViews is
	// its primary-context binding, used by the below-minParallelCandidates
	// fallback so small candidate sets still reuse (and warm) the store
	// with their kernel counters flowing straight into Engine.Meter.
	shared      *likelihood.SharedCache
	serialViews *likelihood.Views

	cands  []*phylotree.Node
	scores []candScore

	// Topology memoization (Options.NoTopoMemo opts out): hasher and
	// per-prune scope compute each candidate's would-be topology hash
	// incrementally, memo replays scores for topologies already measured.
	// probes is the per-candidate hash buffer, reused like cands/scores.
	memo   *TopoMemo
	hasher *phylotree.TopoHasher
	pscope *phylotree.PruneScope
	probes []topoProbe

	// roundParallel records whether the current round used the pool at
	// least once; rounds whose prunes all fell under minParallelCandidates
	// do not count as parallel.
	roundParallel bool

	// traceRound is the current round's trace context (set by Run before
	// each round, round-labeled); candidate-batch spans record through it.
	// The zero Ctx before the first round — e.g. when scoreInsertions runs
	// under OptimizeAlpha's NNI pass — is a valid no-op.
	traceRound obs.Ctx

	candidatesScored *obs.Counter
	parallelRounds   *obs.Counter
	sharedHits       *obs.Counter
	epochGauge       *obs.Gauge
	busyPeak         *obs.Gauge

	topoHits      *obs.Counter
	topoMisses    *obs.Counter
	topoRequeries *obs.Counter
	topoEvictions *obs.Counter
	topoHitRate   *obs.Gauge
	topoDrift     *obs.Gauge
	topoConfDrift *obs.Gauge
}

// newSearchCtx builds the per-search state from the options: a worker pool
// with per-worker view tables when opt.Workers > 1 (also installed as the
// engine's wavefront executor), and metric handles when opt.Metrics is set.
func newSearchCtx(eng *likelihood.Engine, opt Options) *searchCtx {
	sc := &searchCtx{traceRound: opt.Trace}
	if !opt.NoTopoMemo {
		sc.memo = NewTopoMemo(opt.TopoMemoCap)
		sc.hasher = phylotree.NewTopoHasher(eng.Pat.NumTaxa)
		sc.pscope = phylotree.NewPruneScope(sc.hasher)
	}
	if opt.Metrics != nil {
		sc.candidatesScored = opt.Metrics.Counter("search.candidates_scored")
		sc.parallelRounds = opt.Metrics.Counter("search.parallel_rounds")
		if sc.memo != nil {
			sc.topoHits = opt.Metrics.Counter("cache.topo_hits")
			sc.topoMisses = opt.Metrics.Counter("cache.topo_misses")
			sc.topoRequeries = opt.Metrics.Counter("cache.topo_requeries")
			sc.topoEvictions = opt.Metrics.Counter("cache.topo_evictions")
			sc.topoHitRate = opt.Metrics.Gauge("cache.topo_hit_rate")
			sc.topoDrift = opt.Metrics.Gauge("cache.topo_drift_max")
			sc.topoConfDrift = opt.Metrics.Gauge("cache.topo_confirmed_drift_max")
		}
	}
	if opt.Workers > 1 {
		sc.pool = eng.NewPool(opt.Workers)
		eng.UsePool(sc.pool)
		sc.views = make([]*likelihood.Views, sc.pool.Workers())
		if !opt.NoSharedCache {
			sc.shared = eng.NewSharedCache()
			eng.UseSharedCache(sc.shared)
			// Shared-backed view tables are built once and survive tree
			// edits (the store's epoch tags track them) — no per-prune
			// rebuild, unlike the private per-worker tables they replace.
			for w := range sc.views {
				sc.views[w] = sc.pool.Ctx(w).NewSharedViews(sc.shared)
			}
			sc.serialViews = eng.NewSharedViews(sc.shared)
		}
		if opt.Metrics != nil {
			opt.Metrics.Gauge("search.pool_workers").Set(float64(sc.pool.Workers()))
			busy := opt.Metrics.Gauge("search.pool_busy")
			sc.pool.OnOccupancy = func(b, _ int) { busy.Set(float64(b)) }
			sc.busyPeak = opt.Metrics.Gauge("search.pool_busy_peak")
			if sc.shared != nil {
				sc.sharedHits = opt.Metrics.Counter("cache.shared_hits")
				sc.epochGauge = opt.Metrics.Gauge("cache.epoch")
			}
		}
	}
	return sc
}

// close detaches the pool and the shared vector store from the engine; the
// search installed them, so the search removes them before handing the
// engine back to the caller.
func (sc *searchCtx) close(eng *likelihood.Engine) {
	sc.publishCacheMetrics()
	if sc.shared != nil {
		eng.UseSharedCache(nil)
	}
	if sc.pool != nil {
		eng.UsePool(nil)
		if sc.candidatesScored != nil {
			sc.pool.OnOccupancy = nil
		}
	}
}

// publishCacheMetrics republishes the shared-store totals and the pool's
// occupancy high-water mark; called at every round boundary and at close.
func (sc *searchCtx) publishCacheMetrics() {
	if sc.shared != nil && sc.sharedHits != nil {
		sc.sharedHits.Store(sc.shared.Hits())
		sc.epochGauge.Set(float64(sc.shared.Epoch()))
	}
	if sc.pool != nil && sc.busyPeak != nil {
		sc.busyPeak.Set(float64(sc.pool.PeakBusy()))
	}
	if sc.memo != nil && sc.topoHits != nil {
		hits, misses, requeries, evictions := sc.memo.Stats()
		sc.topoHits.Store(hits)
		sc.topoMisses.Store(misses)
		sc.topoRequeries.Store(requeries)
		sc.topoEvictions.Store(evictions)
		if tot := hits + misses + requeries; tot > 0 {
			sc.topoHitRate.Set(float64(hits) / float64(tot))
		}
		drift, _ := sc.memo.MaxDrift()
		sc.topoDrift.Set(drift)
		sc.topoConfDrift.Set(sc.memo.ConfirmedDrift())
	}
}

// scoreInsertions fills sc.scores with the lazy insertion score of every
// candidate edge for the subtree pruned by ps (starting branch length z0).
// With a pool it fans the candidates out, each worker scoring through its
// own context's Views; serially it scores through one shared Views in
// candidate order, exactly like the pre-parallel code. Either way the
// returned slice is indexed by candidate, so the caller's reduction — and
// therefore the chosen move — is independent of scheduling. The first
// error in candidate order wins, matching the serial early-exit.
//
// With the topology memo on, every candidate is first priced by the
// canonical hash of its would-be topology (O(1) per candidate after the
// per-prune PruneScope pass): once the memo is armed, hits more than the
// safety margin below limit — the acceptance threshold current+eps — replay
// the memoized score and skip the evaluation entirely; everything else
// scores fresh and inserts into the memo afterwards. Probes run against the
// memo as it stood before this fan-out (inserts are post-loop in both the
// serial and pooled paths), so hit patterns — and scores — are
// schedule-independent.
func (sc *searchCtx) scoreInsertions(eng *likelihood.Engine, cands []*phylotree.Node, ps *phylotree.PrunedSubtree, z0, limit float64) ([]candScore, error) {
	sub := ps.P
	memoOn := sc.memo != nil && !sc.memo.Disabled()
	if memoOn {
		if err := sc.pscope.Reset(ps); err != nil {
			memoOn = false // fall back to fresh scoring for this prune
		}
	}
	if sc.candidatesScored != nil && !memoOn {
		sc.candidatesScored.Add(uint64(len(cands)))
	}
	csp := sc.traceRound.Start("candidates", "search")
	defer csp.End()
	if cap(sc.scores) < len(cands) {
		sc.scores = make([]candScore, len(cands))
		sc.probes = make([]topoProbe, len(cands))
	}
	scores := sc.scores[:len(cands)]
	probes := sc.probes[:len(cands)]
	for i := range scores {
		scores[i] = candScore{}
		probes[i] = topoProbe{}
	}

	if sc.pool == nil || len(cands) < minParallelCandidates {
		// Small candidate sets score serially: through the shared store's
		// primary-context binding when the search has one (reusing and
		// warming the same vectors the pooled fan-outs do), otherwise
		// through a private one-shot Views exactly like the serial search.
		views, oneShot := sc.serialViews, false
		if views == nil {
			views, oneShot = eng.NewViews(), true
		}
		for i, cand := range cands {
			if cand.Back == nil {
				continue
			}
			if memoOn && sc.probeCandidate(cand, i, scores, probes, z0, limit) {
				continue
			}
			z, ll, err := views.InsertionScore(cand, sub, z0)
			if err != nil {
				if oneShot {
					views.Release()
				}
				return nil, err
			}
			scores[i] = candScore{z: z, ll: ll, ok: true}
		}
		if oneShot {
			views.Release()
		}
		sc.insertMisses(scores, probes, memoOn)
		return scores, nil
	}

	sc.roundParallel = true
	if sc.shared == nil {
		// Private per-worker tables are rebuilt per prune: each worker
		// recomputes its own copy of the shared-path vectors (the pre-PR-8
		// redundancy the shared store eliminates; kept as the
		// NoSharedCache baseline for redundancy accounting).
		for w := range sc.views {
			sc.views[w] = sc.pool.Ctx(w).NewViews()
		}
	}
	sc.pool.Run(len(cands), func(w, i int) {
		cand := cands[i]
		if cand.Back == nil {
			return
		}
		if memoOn && sc.probeCandidate(cand, i, scores, probes, z0, limit) {
			return
		}
		z, ll, err := sc.views[w].InsertionScore(cand, sub, z0)
		scores[i] = candScore{z: z, ll: ll, ok: err == nil, err: err}
	})
	if sc.shared == nil {
		for w := range sc.views {
			sc.views[w].Release()
			sc.views[w] = nil
		}
	}
	for i := range scores {
		if scores[i].err != nil {
			return nil, scores[i].err
		}
	}
	sc.insertMisses(scores, probes, memoOn)
	return scores, nil
}

// probeCandidate prices one candidate against the topology memo, filling
// scores[i] with the replayed score on a hit. It records the hash in
// probes[i] on a miss or requery so insertMisses can memoize the fresh
// score. Safe for concurrent calls from pool workers: the prune scope is
// read-only between Reset and the next prune, the memo probe takes a read
// lock and its arming/disable state only changes in Insert — which the
// search serializes between fan-outs — and each invocation touches only its
// own index.
func (sc *searchCtx) probeCandidate(cand *phylotree.Node, i int, scores []candScore, probes []topoProbe, z0, limit float64) bool {
	h, ok := sc.pscope.CandidateHash(cand)
	if !ok {
		return false
	}
	if est, hit := sc.memo.Probe(h, limit); hit {
		scores[i] = candScore{z: z0, ll: est, ok: true, hit: true}
		return true
	}
	probes[i] = topoProbe{hash: h, ok: true}
	return false
}

// insertMisses memoizes the freshly scored candidates of one fan-out and
// counts them into search.candidates_scored (memo hits are exactly the
// evaluations the search did not run, so they are not counted). It runs on
// the search goroutine after the fan-out joined: probes never race inserts,
// which keeps the per-prune hit pattern deterministic, and every refresh of
// a known topology feeds the memo's drift calibration.
func (sc *searchCtx) insertMisses(scores []candScore, probes []topoProbe, memoOn bool) {
	if !memoOn {
		return
	}
	fresh := 0
	for i := range scores {
		if !scores[i].ok || scores[i].hit {
			continue
		}
		fresh++
		if probes[i].ok {
			sc.memo.Insert(probes[i].hash, scores[i].ll)
		}
	}
	if sc.candidatesScored != nil {
		sc.candidatesScored.Add(uint64(fresh))
	}
}

// bestCandidate is the SPR winner reduction: the highest log-likelihood
// among the scored candidates, ties broken by lowest candidate index (the
// strictly-greater comparison in index order — byte-identical to the
// serial loop's choice). Returns index -1 when nothing was scored.
func bestCandidate(scores []candScore, z0 float64) (bestIdx int, bestZ, bestLL float64) {
	bestIdx, bestZ, bestLL = -1, z0, math.Inf(-1)
	for i := range scores {
		if scores[i].ok && scores[i].ll > bestLL {
			bestIdx, bestZ, bestLL = i, scores[i].z, scores[i].ll
		}
	}
	return bestIdx, bestZ, bestLL
}

// bestNNICandidate is the NNI reduction: replay the serial acceptance
// chain — a candidate displaces the incumbent only when it gains more than
// eps over it, starting from the current likelihood — in candidate order,
// so the pooled scoring pass picks exactly the move the serial loop would.
func bestNNICandidate(scores []candScore, z0, current, eps float64) (bestIdx int, bestZ, bestLL float64) {
	bestIdx, bestZ, bestLL = -1, z0, current
	for i := range scores {
		if scores[i].ok && scores[i].ll > bestLL+eps {
			bestIdx, bestZ, bestLL = i, scores[i].z, scores[i].ll
		}
	}
	return bestIdx, bestZ, bestLL
}

// finishRound publishes the per-round parallelism accounting and resets it.
func (sc *searchCtx) finishRound() {
	if sc.roundParallel && sc.parallelRounds != nil {
		sc.parallelRounds.Inc()
	}
	sc.roundParallel = false
	sc.publishCacheMetrics()
}

// appendNNITargets collects the NNI candidate branches around v: the two
// branches hanging off v's ring besides v itself (after pruning, these are
// the re-insertion points of the swapped subtree). Records touching the
// pruned ring sub are excluded, mirroring the old scoring-loop guard.
func appendNNITargets(out []*phylotree.Node, v, sub *phylotree.Node) []*phylotree.Node {
	ring := v.Ring()
	if r := ring[1]; r != sub && r.Back != nil && r.Back != sub {
		out = append(out, r)
	}
	if r := ring[2]; r != sub && r.Back != nil && r.Back != sub {
		out = append(out, r)
	}
	return out
}
