package search

import (
	"math"
	"runtime"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/phylotree"
)

// AutoWorkers returns the default search-worker fan-out for this process:
// one worker per schedulable CPU (GOMAXPROCS). Callers that expose a
// -search-workers knob should treat 0 as "auto" and resolve it through
// this function before filling Options.Workers, so that Options itself
// keeps its stable contract (Workers <= 1 means serial — a zero value
// never silently spawns a pool).
func AutoWorkers() int { return runtime.GOMAXPROCS(0) }

// AutoWorkersFrom sizes the fan-out from measured occupancy instead of raw
// CPU count: it returns AutoWorkers() capped at the search.pool_busy_peak
// gauge recorded in reg by a previous pooled search. A pool whose peak
// occupancy never reached the worker count was over-provisioned — candidate
// blocks are contiguous and unstolen, so idle workers are pure fan-out
// overhead — and the next search in the same process (bootstrap replicates,
// repeated inferences) right-sizes to what was actually used. With no
// registry, no recorded peak, or a peak at/above the CPU count it behaves
// exactly like AutoWorkers.
func AutoWorkersFrom(reg *obs.Registry) int {
	w := AutoWorkers()
	if reg == nil {
		return w
	}
	snap := reg.Snapshot()
	if peak, ok := snap.GaugeValue("search.pool_busy_peak"); ok {
		if p := int(peak); p >= 1 && p < w {
			return p
		}
	}
	return w
}

// The paper layers task-level parallelism (EDTLP, and at scale MGPS) on
// top of the loop-level parallelism inside each kernel: independent
// likelihood tasks run concurrently on different SPEs. This file is the
// search-side half of that axis — the regraft candidates of one pruned
// subtree are independent read-only queries against the frozen tree, so
// they fan out over a likelihood.Pool, each worker scoring through its own
// context-bound Views. The other half (wavefront traversal execution)
// lives in the likelihood package and reuses the same pool.

// minParallelCandidates is the smallest candidate count worth fanning out;
// below it the per-fanout overhead (goroutine spawn, per-worker view
// warm-up of the shared path to the root) exceeds the win.
const minParallelCandidates = 4

// candScore is one scored insertion candidate. ok marks candidates that
// were actually scored (detached edges are skipped, mirroring the serial
// loop's continue).
type candScore struct {
	z, ll float64
	ok    bool
	err   error
}

// searchCtx carries the task-parallel state of one search: the worker pool
// (nil = serial), per-worker view tables, reusable candidate/score buffers
// (hoisted out of the SPR hot loop — see the hotpathalloc analyzer), and
// live metric handles.
type searchCtx struct {
	pool  *likelihood.Pool
	views []*likelihood.Views

	// shared, when non-nil, is the engine-wide epoch-tagged vector store
	// every worker's Views reads through (Options.NoSharedCache opts out):
	// the composition of the incremental cache with the pool that removes
	// the per-worker recomputation of shared-path vectors. serialViews is
	// its primary-context binding, used by the below-minParallelCandidates
	// fallback so small candidate sets still reuse (and warm) the store
	// with their kernel counters flowing straight into Engine.Meter.
	shared      *likelihood.SharedCache
	serialViews *likelihood.Views

	cands  []*phylotree.Node
	scores []candScore

	// roundParallel records whether the current round used the pool at
	// least once; rounds whose prunes all fell under minParallelCandidates
	// do not count as parallel.
	roundParallel bool

	// traceRound is the current round's trace context (set by Run before
	// each round, round-labeled); candidate-batch spans record through it.
	// The zero Ctx before the first round — e.g. when scoreInsertions runs
	// under OptimizeAlpha's NNI pass — is a valid no-op.
	traceRound obs.Ctx

	candidatesScored *obs.Counter
	parallelRounds   *obs.Counter
	sharedHits       *obs.Counter
	epochGauge       *obs.Gauge
	busyPeak         *obs.Gauge
}

// newSearchCtx builds the per-search state from the options: a worker pool
// with per-worker view tables when opt.Workers > 1 (also installed as the
// engine's wavefront executor), and metric handles when opt.Metrics is set.
func newSearchCtx(eng *likelihood.Engine, opt Options) *searchCtx {
	sc := &searchCtx{traceRound: opt.Trace}
	if opt.Metrics != nil {
		sc.candidatesScored = opt.Metrics.Counter("search.candidates_scored")
		sc.parallelRounds = opt.Metrics.Counter("search.parallel_rounds")
	}
	if opt.Workers > 1 {
		sc.pool = eng.NewPool(opt.Workers)
		eng.UsePool(sc.pool)
		sc.views = make([]*likelihood.Views, sc.pool.Workers())
		if !opt.NoSharedCache {
			sc.shared = eng.NewSharedCache()
			eng.UseSharedCache(sc.shared)
			// Shared-backed view tables are built once and survive tree
			// edits (the store's epoch tags track them) — no per-prune
			// rebuild, unlike the private per-worker tables they replace.
			for w := range sc.views {
				sc.views[w] = sc.pool.Ctx(w).NewSharedViews(sc.shared)
			}
			sc.serialViews = eng.NewSharedViews(sc.shared)
		}
		if opt.Metrics != nil {
			opt.Metrics.Gauge("search.pool_workers").Set(float64(sc.pool.Workers()))
			busy := opt.Metrics.Gauge("search.pool_busy")
			sc.pool.OnOccupancy = func(b, _ int) { busy.Set(float64(b)) }
			sc.busyPeak = opt.Metrics.Gauge("search.pool_busy_peak")
			if sc.shared != nil {
				sc.sharedHits = opt.Metrics.Counter("cache.shared_hits")
				sc.epochGauge = opt.Metrics.Gauge("cache.epoch")
			}
		}
	}
	return sc
}

// close detaches the pool and the shared vector store from the engine; the
// search installed them, so the search removes them before handing the
// engine back to the caller.
func (sc *searchCtx) close(eng *likelihood.Engine) {
	sc.publishCacheMetrics()
	if sc.shared != nil {
		eng.UseSharedCache(nil)
	}
	if sc.pool != nil {
		eng.UsePool(nil)
		if sc.candidatesScored != nil {
			sc.pool.OnOccupancy = nil
		}
	}
}

// publishCacheMetrics republishes the shared-store totals and the pool's
// occupancy high-water mark; called at every round boundary and at close.
func (sc *searchCtx) publishCacheMetrics() {
	if sc.shared != nil && sc.sharedHits != nil {
		sc.sharedHits.Store(sc.shared.Hits())
		sc.epochGauge.Set(float64(sc.shared.Epoch()))
	}
	if sc.pool != nil && sc.busyPeak != nil {
		sc.busyPeak.Set(float64(sc.pool.PeakBusy()))
	}
}

// scoreInsertions fills sc.scores with the lazy insertion score of every
// candidate edge for the pruned subtree behind sub (starting branch length
// z0). With a pool it fans the candidates out, each worker scoring through
// its own context's Views; serially it scores through one shared Views in
// candidate order, exactly like the pre-parallel code. Either way the
// returned slice is indexed by candidate, so the caller's reduction — and
// therefore the chosen move — is independent of scheduling. The first
// error in candidate order wins, matching the serial early-exit.
func (sc *searchCtx) scoreInsertions(eng *likelihood.Engine, cands []*phylotree.Node, sub *phylotree.Node, z0 float64) ([]candScore, error) {
	if sc.candidatesScored != nil {
		sc.candidatesScored.Add(uint64(len(cands)))
	}
	csp := sc.traceRound.Start("candidates", "search")
	defer csp.End()
	if cap(sc.scores) < len(cands) {
		sc.scores = make([]candScore, len(cands))
	}
	scores := sc.scores[:len(cands)]
	for i := range scores {
		scores[i] = candScore{}
	}

	if sc.pool == nil || len(cands) < minParallelCandidates {
		// Small candidate sets score serially: through the shared store's
		// primary-context binding when the search has one (reusing and
		// warming the same vectors the pooled fan-outs do), otherwise
		// through a private one-shot Views exactly like the serial search.
		views, oneShot := sc.serialViews, false
		if views == nil {
			views, oneShot = eng.NewViews(), true
		}
		for i, cand := range cands {
			if cand.Back == nil {
				continue
			}
			z, ll, err := views.InsertionScore(cand, sub, z0)
			if err != nil {
				if oneShot {
					views.Release()
				}
				return nil, err
			}
			scores[i] = candScore{z: z, ll: ll, ok: true}
		}
		if oneShot {
			views.Release()
		}
		return scores, nil
	}

	sc.roundParallel = true
	if sc.shared == nil {
		// Private per-worker tables are rebuilt per prune: each worker
		// recomputes its own copy of the shared-path vectors (the pre-PR-8
		// redundancy the shared store eliminates; kept as the
		// NoSharedCache baseline for redundancy accounting).
		for w := range sc.views {
			sc.views[w] = sc.pool.Ctx(w).NewViews()
		}
	}
	sc.pool.Run(len(cands), func(w, i int) {
		cand := cands[i]
		if cand.Back == nil {
			return
		}
		z, ll, err := sc.views[w].InsertionScore(cand, sub, z0)
		scores[i] = candScore{z: z, ll: ll, ok: err == nil, err: err}
	})
	if sc.shared == nil {
		for w := range sc.views {
			sc.views[w].Release()
			sc.views[w] = nil
		}
	}
	for i := range scores {
		if scores[i].err != nil {
			return nil, scores[i].err
		}
	}
	return scores, nil
}

// bestCandidate is the SPR winner reduction: the highest log-likelihood
// among the scored candidates, ties broken by lowest candidate index (the
// strictly-greater comparison in index order — byte-identical to the
// serial loop's choice). Returns index -1 when nothing was scored.
func bestCandidate(scores []candScore, z0 float64) (bestIdx int, bestZ, bestLL float64) {
	bestIdx, bestZ, bestLL = -1, z0, math.Inf(-1)
	for i := range scores {
		if scores[i].ok && scores[i].ll > bestLL {
			bestIdx, bestZ, bestLL = i, scores[i].z, scores[i].ll
		}
	}
	return bestIdx, bestZ, bestLL
}

// bestNNICandidate is the NNI reduction: replay the serial acceptance
// chain — a candidate displaces the incumbent only when it gains more than
// eps over it, starting from the current likelihood — in candidate order,
// so the pooled scoring pass picks exactly the move the serial loop would.
func bestNNICandidate(scores []candScore, z0, current, eps float64) (bestIdx int, bestZ, bestLL float64) {
	bestIdx, bestZ, bestLL = -1, z0, current
	for i := range scores {
		if scores[i].ok && scores[i].ll > bestLL+eps {
			bestIdx, bestZ, bestLL = i, scores[i].z, scores[i].ll
		}
	}
	return bestIdx, bestZ, bestLL
}

// finishRound publishes the per-round parallelism accounting and resets it.
func (sc *searchCtx) finishRound() {
	if sc.roundParallel && sc.parallelRounds != nil {
		sc.parallelRounds.Inc()
	}
	sc.roundParallel = false
	sc.publishCacheMetrics()
}

// appendNNITargets collects the NNI candidate branches around v: the two
// branches hanging off v's ring besides v itself (after pruning, these are
// the re-insertion points of the swapped subtree). Records touching the
// pruned ring sub are excluded, mirroring the old scoring-loop guard.
func appendNNITargets(out []*phylotree.Node, v, sub *phylotree.Node) []*phylotree.Node {
	ring := v.Ring()
	if r := ring[1]; r != sub && r.Back != nil && r.Back != sub {
		out = append(out, r)
	}
	if r := ring[2]; r != sub && r.Back != nil && r.Back != sub {
		out = append(out, r)
	}
	return out
}
