package search

import (
	"fmt"
	"math"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/phylotree"
)

// Progress is one point on a search's log-likelihood trajectory, reported
// through Options.OnProgress as the hill-climb advances.
type Progress struct {
	Phase string  // "start" (initial smoothing), "round" (after an SPR round), "final"
	Round int     // SPR rounds completed (0 at the start point)
	Moves int     // accepted SPR moves so far
	LogL  float64 // current log-likelihood
	Alpha float64 // current Gamma shape
}

// Options configures the hill-climbing search.
type Options struct {
	Radius       int     // SPR rearrangement radius (RAxML's rearrangement setting)
	MaxRounds    int     // maximum SPR improvement rounds
	SmoothPasses int     // branch smoothing passes between rounds
	Epsilon      float64 // minimum log-likelihood gain to keep iterating
	AlphaOpt     bool    // re-fit the Gamma shape between rounds
	ModelOpt     bool    // fit the GTR exchangeabilities on the final tree

	// OnProgress, when non-nil, receives the per-step log-likelihood
	// trajectory of the search (the series behind live campaign metrics
	// and Figure-3-style scheduler reasoning). It runs on the searching
	// goroutine, so it must be cheap and must not mutate the tree/engine.
	OnProgress func(Progress)

	// Workers > 1 enables task-level parallelism inside this search: the
	// SPR/NNI insertion candidates of each pruned subtree are scored
	// concurrently on a pool of Workers kernel contexts, and traversal
	// descriptors execute wavefront-parallel on the same pool. The chosen
	// moves, final topology and log-likelihood are identical to the serial
	// search (up to documented FP summation order, see DESIGN.md
	// "Parallelism layers"); <= 1 runs fully serial. Orthogonal to
	// likelihood.Config.Threads, which splits the per-pattern loops
	// *inside* one kernel call — total concurrency ≈ Workers × Threads.
	Workers int

	// NoSharedCache disables the epoch-tagged shared ancestral-vector
	// store a pooled search (Workers > 1) installs by default, reverting
	// to private per-worker view tables rebuilt per prune. Results are
	// identical either way; the private tables redo the shared-path
	// newview work once per worker, so this knob exists for redundancy
	// accounting (benchmarks and the scaling-gate tests), not for users.
	NoSharedCache bool

	// NoTopoMemo disables the content-addressed topology score memo that
	// searches run with by default: each SPR/NNI candidate's would-be
	// topology is hashed incrementally from the prune/regraft edit, and
	// topologies already measured this search replay their memoized score
	// instead of re-running the likelihood evaluation. Replay is restricted
	// to scores two measurements confirmed stable, and to candidates that
	// lose to the acceptance threshold by a safety margin, so the accepted
	// moves, round count and final topology are identical to the memo-off
	// search (the memo only deletes repeated work; see DESIGN.md "Topology
	// memoization"). Hits/misses/evictions surface as cache.topo_* metrics.
	NoTopoMemo bool

	// TopoMemoCap bounds the memo's entry count (0 = DefaultTopoMemoCap).
	// Eviction is FIFO and deterministic.
	TopoMemoCap int

	// Metrics, when non-nil, receives the live search series: the
	// search.candidates_scored / search.parallel_rounds counters, the
	// search.pool_workers / search.pool_busy / search.pool_busy_peak
	// occupancy gauges, the search.round_ms latency histogram, and — with
	// the shared vector store on — the cache.shared_hits counter and
	// cache.epoch gauge.
	Metrics *obs.Registry

	// Trace is the wall-clock span context this search records into
	// (smoothing passes, alpha refits, SPR rounds, candidate batches),
	// usually pre-labeled with the job by the mw layer. The zero Ctx
	// disables tracing.
	Trace obs.Ctx
}

// DefaultOptions mirrors the paper's search regime at small scale.
func DefaultOptions() Options {
	return Options{Radius: 5, MaxRounds: 10, SmoothPasses: 4, Epsilon: 0.01, AlphaOpt: true}
}

func (o *Options) fillDefaults() {
	d := DefaultOptions()
	if o.Radius <= 0 {
		o.Radius = d.Radius
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = d.MaxRounds
	}
	if o.SmoothPasses <= 0 {
		o.SmoothPasses = d.SmoothPasses
	}
	if o.Epsilon <= 0 {
		o.Epsilon = d.Epsilon
	}
}

// pruneCandidates enumerates every internal ring record whose removal is a
// legal SPR prune (its Back side is the subtree that moves).
func pruneCandidates(tr *phylotree.Tree) []*phylotree.Node {
	var out []*phylotree.Node
	for _, e := range tr.Edges() {
		if !e.IsTip() {
			out = append(out, e)
		}
		if !e.Back.IsTip() {
			out = append(out, e.Back)
		}
	}
	return out
}

// sprRound performs one pass of lazy SPR over all prune candidates: each
// subtree is pruned, trial-inserted into every edge within the
// rearrangement radius of the detachment point (optimizing only the
// subtree's own branch, RAxML's "lazy" evaluation), and kept at the best
// position if that improves the current likelihood by more than eps.
// It returns the updated log-likelihood and the number of accepted moves.
// Candidate scoring goes through sc — concurrently when the search has a
// worker pool, with the winner reduced deterministically in candidate
// order either way.
func sprRound(eng *likelihood.Engine, tr *phylotree.Tree, sc *searchCtx, radius int, baseline, eps float64) (float64, int, error) {
	current := baseline
	accepted := 0
	// Error wrapping happens after the loop: fmt.Errorf boxes its operands,
	// and the round loop is hot (see the hotpathalloc analyzer), so failures
	// break out with a stage tag and format once on the cold path.
	var stage string
	var stageErr error
	for _, p := range pruneCandidates(tr) {
		if p.Back == nil || p.Next == nil {
			continue // record was detached by a concurrent accepted move
		}
		ps, err := tr.Prune(p)
		if err != nil {
			continue
		}
		zSub := ps.P.Z

		sc.cands = phylotree.RadiusEdgesInto(sc.cands[:0], ps.Q, radius)
		sc.cands = phylotree.RadiusEdgesInto(sc.cands, ps.R, radius)

		// Lazy SPR: score every candidate from cached directed vectors of
		// the (fixed) pruned tree, optimizing only the subtree's branch.
		// current+eps is the acceptance threshold the memo probes against.
		scores, err := sc.scoreInsertions(eng, sc.cands, ps, zSub, current+eps)
		if err != nil {
			stage, stageErr = "trial insertion", err
			break
		}
		bestIdx, bestZ, bestLL := bestCandidate(scores, zSub)

		if bestIdx >= 0 && bestLL > current+eps {
			if err := tr.Regraft(ps, sc.cands[bestIdx]); err != nil {
				stage, stageErr = "accepting move", err
				break
			}
			ps.P.SetZ(bestZ)
			eng.Invalidate(ps.P) // direct SetZ bypasses the tree's hooks
			// Locally optimize the three branches around the insertion.
			for _, b := range [...]*phylotree.Node{ps.P, ps.P.Next, ps.P.Next.Next} {
				if _, ll, err := eng.MakeNewz(b); err == nil {
					bestLL = ll
				}
			}
			current = bestLL
			accepted++
		} else {
			if err := tr.Undo(ps); err != nil {
				stage, stageErr = "undo", err
				break
			}
		}
	}
	sc.finishRound()
	if stageErr != nil {
		return 0, 0, fmt.Errorf("search: %s: %w", stage, stageErr)
	}
	return current, accepted, nil
}

// Result is the outcome of one inference.
type Result struct {
	Tree   *phylotree.Tree
	LogL   float64
	Alpha  float64
	Rounds int
	Moves  int // accepted SPR moves
}

// Run executes the full hill-climbing search on the given starting tree
// (mutated in place): smooth branches, fit alpha, then SPR rounds until no
// round gains more than Epsilon, with a final smoothing.
func Run(eng *likelihood.Engine, start *phylotree.Tree, opt Options) (*Result, error) {
	opt.fillDefaults()
	if err := start.Validate(); err != nil {
		return nil, fmt.Errorf("search: starting tree: %w", err)
	}
	// With incremental caching enabled, let the engine observe topology
	// mutations so cached partial vectors are invalidated automatically
	// (no-op when Config.Incremental is off).
	eng.AttachTree(start)

	// Task-level parallelism: candidate scoring and wavefront traversal
	// execution share one worker pool for the duration of this search.
	sc := newSearchCtx(eng, opt)
	defer sc.close(eng)

	tctx := opt.Trace
	var roundHist *obs.Histogram
	if opt.Metrics != nil {
		roundHist = opt.Metrics.Histogram("search.round_ms", obs.MsBuckets)
	}

	ssp := tctx.Start("smooth", "search")
	ll, err := SmoothBranches(eng, start, opt.SmoothPasses, opt.Epsilon)
	ssp.End()
	if err != nil {
		return nil, err
	}
	alpha := eng.Mod.Alpha
	if opt.AlphaOpt {
		asp := tctx.Start("alpha-opt", "search")
		alpha, ll, err = OptimizeAlpha(eng, start, 0.02, 50, 1e-2)
		asp.End()
		if err != nil {
			return nil, err
		}
	}

	if opt.OnProgress != nil {
		opt.OnProgress(Progress{Phase: "start", LogL: ll, Alpha: alpha})
	}

	res := &Result{Tree: start, Alpha: alpha}
	for round := 0; round < opt.MaxRounds; round++ {
		res.Rounds = round + 1
		// The round's events — including the candidate-batch spans recorded
		// inside scoreInsertions — carry the round label; the round span
		// itself covers SPR + smoothing + alpha refit and feeds the
		// search.round_ms histogram.
		rctx := tctx.WithRound(round + 1)
		sc.traceRound = rctx
		rsp := rctx.Start("round", "search")
		newLL, moves, err := sprRound(eng, start, sc, opt.Radius, ll, opt.Epsilon)
		if err != nil {
			rsp.End()
			return nil, err
		}
		res.Moves += moves
		newLL, err = SmoothBranches(eng, start, opt.SmoothPasses, opt.Epsilon)
		if err != nil {
			rsp.End()
			return nil, err
		}
		if opt.AlphaOpt && moves > 0 {
			alpha, newLL, err = OptimizeAlpha(eng, start, 0.02, 50, 1e-2)
			if err != nil {
				rsp.End()
				return nil, err
			}
			res.Alpha = alpha
		}
		rsp.EndObserve(roundHist)
		if opt.OnProgress != nil {
			opt.OnProgress(Progress{Phase: "round", Round: round + 1, Moves: res.Moves, LogL: newLL, Alpha: alpha})
		}
		if newLL-ll < opt.Epsilon {
			ll = math.Max(ll, newLL)
			break
		}
		ll = newLL
	}
	if opt.ModelOpt {
		fitted, err := OptimizeAll(eng, start, opt.Epsilon)
		if err != nil {
			return nil, err
		}
		if fitted > ll {
			ll = fitted
		}
		res.Alpha = eng.Mod.Alpha
	}
	res.LogL = ll
	if opt.OnProgress != nil {
		opt.OnProgress(Progress{Phase: "final", Round: res.Rounds, Moves: res.Moves, LogL: ll, Alpha: res.Alpha})
	}
	return res, nil
}
