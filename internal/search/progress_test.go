package search

import (
	"math/rand"
	"testing"

	"raxmlcell/internal/likelihood"
)

// TestRunProgressTrajectory pins the OnProgress contract: a start point
// after the initial smoothing/alpha fit, one point per SPR round, and a
// final point whose values match the returned result.
func TestRunProgressTrajectory(t *testing.T) {
	pat, _, m := simulated(t, 17, 9, 300)
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	start, err := StartingTree(pat, "random", rng)
	if err != nil {
		t.Fatal(err)
	}

	var traj []Progress
	opts := DefaultOptions()
	opts.OnProgress = func(pr Progress) { traj = append(traj, pr) }
	res, err := Run(eng, start, opts)
	if err != nil {
		t.Fatal(err)
	}

	if len(traj) < 3 {
		t.Fatalf("trajectory has %d points, want at least start+round+final", len(traj))
	}
	if traj[0].Phase != "start" || traj[0].Round != 0 {
		t.Fatalf("first point = %+v, want phase start at round 0", traj[0])
	}
	last := traj[len(traj)-1]
	if last.Phase != "final" {
		t.Fatalf("last point phase = %q, want final", last.Phase)
	}
	if last.LogL != res.LogL || last.Moves != res.Moves || last.Round != res.Rounds {
		t.Fatalf("final point %+v disagrees with result logL=%v moves=%d rounds=%d",
			last, res.LogL, res.Moves, res.Rounds)
	}
	rounds := 0
	for i, pr := range traj[1 : len(traj)-1] {
		if pr.Phase != "round" {
			t.Fatalf("middle point %d has phase %q", i+1, pr.Phase)
		}
		rounds++
		if pr.Round != rounds {
			t.Fatalf("round points out of order: %+v at position %d", pr, i+1)
		}
		// A hill climb never loses likelihood between rounds.
		if pr.LogL < traj[i].LogL-1e-6 {
			t.Fatalf("logL regressed: %.6f -> %.6f", traj[i].LogL, pr.LogL)
		}
	}
	if rounds != res.Rounds {
		t.Fatalf("saw %d round points, result says %d rounds", rounds, res.Rounds)
	}
}

// TestRunNoProgressCallback guards the nil path: no callback, no panic,
// identical result values.
func TestRunNoProgressCallback(t *testing.T) {
	pat, _, m := simulated(t, 17, 9, 300)
	build := func(withHook bool) *Result {
		eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(17))
		start, err := StartingTree(pat, "random", rng)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		if withHook {
			opts.OnProgress = func(Progress) {}
		}
		res, err := Run(eng, start, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, hooked := build(false), build(true)
	if plain.LogL != hooked.LogL || plain.Moves != hooked.Moves {
		t.Fatalf("progress hook changed the search: %+v vs %+v", plain, hooked)
	}
}
