package search

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/model"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/seqsim"
)

// simulateWithModel generates data under a known, asymmetric GTR so rate
// optimization has a signal to find.
func simulateWithModel(t *testing.T, seed int64, taxa, sites int) (*alignment.Patterns, *phylotree.Tree, *model.Model) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := model.NewGTR(
		[6]float64{0.8, 6.0, 0.6, 0.9, 5.0, 1.0}, // strong transition bias
		[4]float64{0.3, 0.2, 0.2, 0.3},
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewModel(g, 1.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, truth, err := seqsim.Generate(seqsim.Params{Taxa: taxa, Sites: sites, MeanBranch: 0.15, Alpha: 1.2}, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	return alignment.Compress(a), truth, m
}

func TestOptimizeGTRRatesImproves(t *testing.T) {
	pat, truth, gen := simulateWithModel(t, 101, 10, 1000)
	// Start from the wrong model: unit exchangeabilities.
	g, err := model.NewGTR([6]float64{1, 1, 1, 1, 1, 1}, gen.GTR.Freqs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewModel(g, 1.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := truth.Clone()
	before, err := SmoothBranches(eng, tr, 4, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	rates, after, err := OptimizeGTRRates(eng, tr, 3, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Errorf("rate optimization did not improve: %.4f -> %.4f", before, after)
	}
	// The transition rates (AG index 1, CT index 4) were generated much
	// larger than the transversions; the fit must reflect that.
	if rates[1] <= rates[0] || rates[1] <= rates[2] {
		t.Errorf("AG rate %.3f not above transversions %v", rates[1], rates)
	}
	if rates[4] <= rates[3] {
		t.Errorf("CT rate %.3f not above CG %.3f", rates[4], rates[3])
	}
	if rates[5] != 1 {
		t.Errorf("reference rate GT moved: %v", rates[5])
	}
	// Engine left on the fitted model.
	ll, err := eng.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll-after) > 1e-6*math.Abs(after) {
		t.Errorf("engine model inconsistent: %.6f vs %.6f", ll, after)
	}
}

func TestRunWithModelOpt(t *testing.T) {
	pat, truth, gen := simulateWithModel(t, 105, 8, 500)
	g, err := model.NewGTR([6]float64{1, 1, 1, 1, 1, 1}, gen.GTR.Freqs)
	if err != nil {
		t.Fatal(err)
	}
	run := func(modelOpt bool) float64 {
		m, err := model.NewModel(g, 0.8, 4)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(eng, truth.Clone(), Options{
			Radius: 3, MaxRounds: 2, SmoothPasses: 2, Epsilon: 0.05,
			AlphaOpt: true, ModelOpt: modelOpt,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.LogL
	}
	plain := run(false)
	fitted := run(true)
	if fitted <= plain {
		t.Errorf("ModelOpt did not improve on transition-biased data: %.4f vs %.4f", fitted, plain)
	}
}

func TestOptimizeAllConverges(t *testing.T) {
	pat, truth, gen := simulateWithModel(t, 103, 8, 600)
	g, err := model.NewGTR([6]float64{1, 1, 1, 1, 1, 1}, gen.GTR.Freqs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewModel(g, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, m, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tr := truth.Clone()
	ll1, err := OptimizeAll(eng, tr, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// A second cycle must be (nearly) a no-op.
	ll2, err := OptimizeAll(eng, tr, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if ll2 < ll1-0.5 {
		t.Errorf("OptimizeAll unstable: %.4f then %.4f", ll1, ll2)
	}
	if ll2-ll1 > 5 {
		t.Errorf("OptimizeAll had not converged: %.4f then %.4f", ll1, ll2)
	}
}
