package search

import (
	"math"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/model"
	"raxmlcell/internal/phylotree"
)

// OptimizeGTRRates fits the five free GTR exchangeabilities (GT is the
// conventional reference fixed at 1) by cyclic golden-section search in log
// space, updating the engine's model in place. It returns the fitted rates
// and the final log-likelihood. RAxML performs the same style of
// coordinate-wise model optimization between search phases.
func OptimizeGTRRates(eng *likelihood.Engine, tr *phylotree.Tree, sweeps int, tol float64) ([6]float64, float64, error) {
	if sweeps <= 0 {
		sweeps = 2
	}
	if tol <= 0 {
		tol = 1e-2
	}
	rates := eng.Mod.GTR.Rates
	freqs := eng.Mod.GTR.Freqs
	alpha := eng.Mod.Alpha
	cats := eng.Mod.NumCats()

	apply := func(r [6]float64) (float64, error) {
		g, err := model.NewGTR(r, freqs)
		if err != nil {
			return 0, err
		}
		m, err := model.NewModel(g, alpha, cats)
		if err != nil {
			return 0, err
		}
		if err := eng.SetModel(m); err != nil {
			return 0, err
		}
		return eng.Evaluate(tr.Tips[0])
	}

	best, err := apply(rates)
	if err != nil {
		return rates, 0, err
	}
	const phi = 0.6180339887498949
	for sweep := 0; sweep < sweeps; sweep++ {
		improved := false
		for i := 0; i < 5; i++ { // rate 5 (GT) stays fixed at 1
			eval := func(x float64) (float64, error) {
				r := rates
				r[i] = math.Exp(x)
				return apply(r)
			}
			// Bracket around the current value in log space.
			a := math.Log(rates[i]) - 1.5
			b := math.Log(rates[i]) + 1.5
			x1 := b - phi*(b-a)
			x2 := a + phi*(b-a)
			f1, err := eval(x1)
			if err != nil {
				return rates, 0, err
			}
			f2, err := eval(x2)
			if err != nil {
				return rates, 0, err
			}
			for b-a > tol {
				if f1 < f2 {
					a, x1, f1 = x1, x2, f2
					x2 = a + phi*(b-a)
					f2, err = eval(x2)
				} else {
					b, x2, f2 = x2, x1, f1
					x1 = b - phi*(b-a)
					f1, err = eval(x1)
				}
				if err != nil {
					return rates, 0, err
				}
			}
			cand := math.Exp((a + b) / 2)
			r := rates
			r[i] = cand
			ll, err := apply(r)
			if err != nil {
				return rates, 0, err
			}
			if ll > best {
				if ll > best+1e-9 {
					improved = true
				}
				best = ll
				rates = r
			} else {
				// Restore the engine to the best-known model.
				if _, err := apply(rates); err != nil {
					return rates, 0, err
				}
			}
		}
		if !improved {
			break
		}
	}
	// Leave the engine on the fitted model.
	if _, err := apply(rates); err != nil {
		return rates, 0, err
	}
	return rates, best, nil
}

// OptimizeAll runs the full model-plus-branch optimization cycle RAxML
// applies to a fixed topology: branch smoothing, Gamma shape, GTR rates,
// iterated until the likelihood gain per cycle drops below eps.
func OptimizeAll(eng *likelihood.Engine, tr *phylotree.Tree, eps float64) (float64, error) {
	if eps <= 0 {
		eps = 0.05
	}
	last := math.Inf(-1)
	for cycle := 0; cycle < 10; cycle++ {
		if _, err := SmoothBranches(eng, tr, 4, eps/4); err != nil {
			return 0, err
		}
		if _, _, err := OptimizeAlpha(eng, tr, 0.02, 50, 1e-2); err != nil {
			return 0, err
		}
		_, ll, err := OptimizeGTRRates(eng, tr, 1, 2e-2)
		if err != nil {
			return 0, err
		}
		if ll-last < eps {
			return ll, nil
		}
		last = ll
	}
	return last, nil
}
