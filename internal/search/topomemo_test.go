package search

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"raxmlcell/internal/likelihood"
	"raxmlcell/internal/obs"
	"raxmlcell/internal/parsimony"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/seqsim"
)

// TestTopoMemoProbeInsert pins the probe semantics: unknown hashes miss;
// memoized scores replay only once two measurements agreed within the
// confirmation tolerance AND the absolute score loses to the probe-time
// limit by more than the safety margin; known-but-unconfirmed and in-band
// entries count as requeries and are not replayed; re-inserting refreshes
// the score in place without consuming a ring slot.
func TestTopoMemoProbeInsert(t *testing.T) {
	m := NewTopoMemo(8)
	h := phylotree.TopoHash{0xdead, 0xbeef}
	const limit = -100.0
	score := limit - 2*topoMemoMargin

	if _, ok := m.Probe(h, limit); ok {
		t.Fatal("probe of empty memo hit")
	}

	// Measured once, far below the limit — but a single measurement is not
	// stability evidence: requery until confirmed.
	m.Insert(h, score)
	if _, ok := m.Probe(h, limit); ok {
		t.Fatal("unconfirmed entry replayed")
	}

	// The requery's fresh rescore agrees: the entry confirms and replays.
	m.Insert(h, score)
	est, ok := m.Probe(h, limit)
	if !ok || est != score {
		t.Fatalf("confirmed probe = (%g, %v), want (%g, true)", est, ok, score)
	}
	// Scores are absolute: a threshold that has risen (the search improved)
	// moves the entry further below the margin, so it still replays...
	if est, ok := m.Probe(h, limit+50); !ok || est != score {
		t.Fatalf("raised-limit probe = (%g, %v), want (%g, true)", est, ok, score)
	}
	// ...while a threshold near the stored score demotes it to a requery (a
	// potential winner is never decided on a replayed value).
	if _, ok := m.Probe(h, score+topoMemoMargin/2); ok {
		t.Fatal("in-band entry replayed")
	}

	// Refreshing within the tolerance: no new ring slot, stays confirmed,
	// the new score replays.
	m.Insert(h, score+topoMemoConfirmTol/2)
	if m.Len() != 1 {
		t.Fatalf("Len = %d after in-place refresh, want 1", m.Len())
	}
	if est, ok := m.Probe(h, limit); !ok || est != score+topoMemoConfirmTol/2 {
		t.Fatalf("refreshed probe = (%g, %v), want (%g, true)", est, ok, score+topoMemoConfirmTol/2)
	}

	hits, misses, requeries, evictions := m.Stats()
	if hits != 3 || misses != 1 || requeries != 2 || evictions != 0 {
		t.Fatalf("stats = (%d hits, %d misses, %d requeries, %d evictions), want (3, 1, 2, 0)",
			hits, misses, requeries, evictions)
	}
}

// TestTopoMemoFIFOEviction fills a capacity-2 memo with three distinct
// confirmed topologies and checks that the oldest entry — and only it — was
// evicted, in insertion order, independent of hash values; refreshes consume
// no ring slots.
func TestTopoMemoFIFOEviction(t *testing.T) {
	m := NewTopoMemo(2)
	const limit = 0.0
	score := limit - 3*topoMemoMargin
	h1 := phylotree.TopoHash{1, 1}
	h2 := phylotree.TopoHash{2, 2}
	h3 := phylotree.TopoHash{3, 3}

	m.Insert(h1, score)
	m.Insert(h1, score) // confirm: refresh takes no slot
	m.Insert(h2, score)
	m.Insert(h2, score)
	m.Insert(h3, score) // evicts h1 (FIFO)
	m.Insert(h3, score)

	if _, ok := m.Probe(h1, limit); ok {
		t.Error("oldest entry h1 survived eviction")
	}
	for _, h := range []phylotree.TopoHash{h2, h3} {
		if _, ok := m.Probe(h, limit); !ok {
			t.Errorf("entry %v evicted out of FIFO order", h)
		}
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if _, _, _, evictions := m.Stats(); evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
}

// TestTopoMemoDriftGuardrail pins the demote/disable ladder: drift beyond
// the confirmation tolerance demotes the entry back to unconfirmed (the memo
// stays live — volatility is per-topology), a volatile topology that settles
// re-confirms, and a full-margin jump on a *confirmed* entry — the one event
// that could have let a replay mask a would-be winner — clears the memo and
// disables it for the rest of the search.
func TestTopoMemoDriftGuardrail(t *testing.T) {
	m := NewTopoMemo(8)
	h := phylotree.TopoHash{7, 7}
	volatile := phylotree.TopoHash{8, 8}
	const limit = 0.0
	score := limit - 4*topoMemoMargin

	// A volatile topology never confirms, however often it is measured —
	// and unconfirmed drift, however large, never trips the guardrail.
	m.Insert(volatile, score)
	m.Insert(volatile, score+3*topoMemoMargin)
	m.Insert(volatile, score)
	if _, ok := m.Probe(volatile, limit); ok {
		t.Fatal("volatile entry replayed")
	}
	if drift, disabled := m.MaxDrift(); drift != 3*topoMemoMargin || disabled {
		t.Fatalf("MaxDrift = (%g, %v), want (%g, false)", drift, disabled, 3*topoMemoMargin)
	}
	if cd := m.ConfirmedDrift(); cd != 0 {
		t.Fatalf("ConfirmedDrift = %g after unconfirmed drift, want 0", cd)
	}
	// Once it settles — two agreeing measurements — it replays again.
	m.Insert(volatile, score)
	if _, ok := m.Probe(volatile, limit); !ok {
		t.Fatal("settled entry did not replay")
	}

	// Confirmed drift above the tolerance but below the margin: demoted,
	// recorded, memo stays live.
	m.Insert(h, score)
	m.Insert(h, score) // confirm
	m.Insert(h, score+2*topoMemoConfirmTol)
	if cd := m.ConfirmedDrift(); cd != 2*topoMemoConfirmTol {
		t.Fatalf("ConfirmedDrift = %g, want %g", cd, 2*topoMemoConfirmTol)
	}
	if _, ok := m.Probe(h, limit); ok {
		t.Fatal("demoted entry replayed")
	}
	if m.Disabled() {
		t.Fatal("sub-margin confirmed drift disabled the memo")
	}

	// A confirmed entry jumping the full margin: clears and disables.
	m.Insert(h, score+2*topoMemoConfirmTol) // re-confirm
	m.Insert(h, score+2*topoMemoConfirmTol+topoMemoMargin)
	if !m.Disabled() {
		t.Fatal("full-margin confirmed drift did not disable")
	}
	if m.Len() != 0 {
		t.Fatalf("disabled memo holds %d entries, want 0", m.Len())
	}
	if _, ok := m.Probe(volatile, limit); ok {
		t.Fatal("disabled memo replayed a score")
	}
	m.Insert(volatile, score)
	if m.Len() != 0 {
		t.Fatal("disabled memo accepted an insert")
	}
}

// TestTopoMemoEquivalenceGate42SC is the memo's acceptance gate: on the
// 42_SC fixture, the memo-on search must replay the exact move sequence of
// the memo-off search — same accepted-move and round counts, same final
// log-likelihood (1e-9 relative), RF distance zero — while actually
// skipping work (cache.topo_hits > 0) and scoring strictly fewer fresh
// candidates (search.candidates_scored). Both serial and pooled, since the
// pooled path probes the memo concurrently from workers.
func TestTopoMemoEquivalenceGate42SC(t *testing.T) {
	if testing.Short() {
		t.Skip("four full SPR searches on 42 taxa")
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			regOff := obs.NewRegistry()
			off, _ := runSPR42SCOpts(t, Options{Workers: workers, NoTopoMemo: true, Metrics: regOff})
			regOn := obs.NewRegistry()
			on, _ := runSPR42SCOpts(t, Options{Workers: workers, Metrics: regOn})

			if off.Moves != on.Moves || off.Rounds != on.Rounds {
				t.Errorf("search path diverged: memo-off %d moves/%d rounds, memo-on %d moves/%d rounds",
					off.Moves, off.Rounds, on.Moves, on.Rounds)
			}
			if math.Abs(off.LogL-on.LogL) > 1e-9*math.Max(1, math.Abs(off.LogL)) {
				t.Errorf("memo-on logL %.12f != memo-off %.12f", on.LogL, off.LogL)
			}
			rf, err := phylotree.RobinsonFoulds(off.Tree, on.Tree)
			if err != nil {
				t.Fatal(err)
			}
			if rf != 0 {
				t.Errorf("topologies diverged: RF=%d", rf)
			}

			onSnap := regOn.Snapshot()
			hits, ok := onSnap.CounterValue("cache.topo_hits")
			if !ok || hits == 0 {
				t.Errorf("cache.topo_hits = %d, %v — memo never replayed a score", hits, ok)
			}
			scoredOn, _ := onSnap.CounterValue("search.candidates_scored")
			offSnap := regOff.Snapshot()
			scoredOff, _ := offSnap.CounterValue("search.candidates_scored")
			if scoredOn >= scoredOff {
				t.Errorf("memo-on scored %d candidates, memo-off %d — no evaluations were skipped",
					scoredOn, scoredOff)
			}
			// Every skipped evaluation is a hit: the off-run total must be
			// accounted for by fresh scores plus replays (hits can exceed the
			// difference only if the off run skipped detached edges the on
			// run also skipped — never the other way).
			if scoredOn+hits < scoredOff {
				t.Errorf("accounting gap: %d fresh + %d hits < %d memo-off scores",
					scoredOn, hits, scoredOff)
			}
			if rate, ok := onSnap.GaugeValue("cache.topo_hit_rate"); !ok || rate <= 0 || rate > 1 {
				t.Errorf("cache.topo_hit_rate = %g, %v — want in (0, 1]", rate, ok)
			}
		})
	}
}

// TestTopoMemoEquivalenceGate42SCFullSearch runs the gate at the CLI's
// default search regime — Radius 5, up to 10 rounds, AlphaOpt — where
// between-round smoothing, alpha refits and route-dependent branch
// inheritance shift re-measured scores by several log-likelihood units (the
// cache.topo_drift_max gauge shows it). The calibrated margin must keep the
// memo exact anyway: identical moves, rounds, final topology and logL, with
// the memo still replaying deeply-losing known topologies.
func TestTopoMemoEquivalenceGate42SCFullSearch(t *testing.T) {
	if testing.Short() {
		t.Skip("two full default-regime searches on 42 taxa")
	}
	pat := load42SC(t)
	run := func(noMemo bool, reg *obs.Registry) *Result {
		t.Helper()
		start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(777)))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := likelihood.NewEngine(pat, seqsim.DefaultModel(), likelihood.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(eng, start, Options{
			Radius: 5, MaxRounds: 10, SmoothPasses: 4, Epsilon: 0.01,
			AlphaOpt: true, NoTopoMemo: noMemo, Metrics: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	regOff := obs.NewRegistry()
	off := run(true, regOff)
	regOn := obs.NewRegistry()
	on := run(false, regOn)

	if off.Moves != on.Moves || off.Rounds != on.Rounds {
		t.Errorf("search path diverged: memo-off %d moves/%d rounds, memo-on %d moves/%d rounds",
			off.Moves, off.Rounds, on.Moves, on.Rounds)
	}
	if math.Abs(off.LogL-on.LogL) > 1e-9*math.Max(1, math.Abs(off.LogL)) {
		t.Errorf("memo-on logL %.12f != memo-off %.12f", on.LogL, off.LogL)
	}
	rf, err := phylotree.RobinsonFoulds(off.Tree, on.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if rf != 0 {
		t.Errorf("topologies diverged: RF=%d", rf)
	}
	snap := regOn.Snapshot()
	if hits, ok := snap.CounterValue("cache.topo_hits"); !ok || hits == 0 {
		t.Errorf("cache.topo_hits = %d, %v — memo never replayed a score", hits, ok)
	}
	scoredOn, _ := snap.CounterValue("search.candidates_scored")
	offSnap := regOff.Snapshot()
	scoredOff, _ := offSnap.CounterValue("search.candidates_scored")
	if scoredOn >= scoredOff {
		t.Errorf("memo-on scored %d candidates, memo-off %d — no evaluations were skipped",
			scoredOn, scoredOff)
	}
}

// TestTopoMemoConcurrentStress exercises the memo under the race detector
// two ways: raw concurrent Probe/Insert traffic on one memo (the lock
// discipline in isolation), then a pooled SPR search with a deliberately
// tiny memo capacity, so pool workers probe concurrently while evictions
// churn the ring between fan-outs.
func TestTopoMemoConcurrentStress(t *testing.T) {
	m := NewTopoMemo(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 2000; i++ {
				h := phylotree.TopoHash{rng.Uint64() % 97, rng.Uint64() % 97}
				if g%2 == 0 {
					// Scores span under the confirmation tolerance, so
					// entries confirm and refresh without ever generating
					// margin-level confirmed drift.
					m.Insert(h, -50-rng.Float64()*topoMemoConfirmTol/2)
				} else {
					m.Probe(h, -40)
					m.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses, requeries, _ := m.Stats()
	if hits+misses+requeries == 0 {
		t.Fatal("stress recorded no probes")
	}
	if _, disabled := m.MaxDrift(); disabled {
		t.Fatal("bounded-drift stress tripped the guardrail")
	}

	// Real workload: a pooled search whose memo holds only 32 entries, so
	// the FIFO ring wraps and probes race (read-locked) against inserts
	// landing between fan-outs, while workers hash through the shared
	// read-only PruneScope.
	pat, _, mdl := simulated(t, 23, 14, 300)
	start, err := parsimony.BuildStepwise(pat, rand.New(rand.NewSource(23)))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.NewEngine(pat, mdl, likelihood.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, err := Run(eng, start, Options{
		Workers: 4, TopoMemoCap: 32, Metrics: reg,
		Radius: 4, MaxRounds: 3, SmoothPasses: 2, Epsilon: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogL >= 0 {
		t.Fatalf("implausible logL %g", res.LogL)
	}
	snap := reg.Snapshot()
	if ev, ok := snap.CounterValue("cache.topo_evictions"); !ok || ev == 0 {
		t.Errorf("cache.topo_evictions = %d, %v — 32-entry memo never wrapped", ev, ok)
	}
}
