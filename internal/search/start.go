package search

import (
	"fmt"
	"math/rand"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/distance"
	"raxmlcell/internal/parsimony"
	"raxmlcell/internal/phylotree"
)

// StartingTree builds a starting topology of the requested kind:
// "parsimony" (default, RAxML's randomized stepwise addition), "nj"
// (neighbor joining on Jukes-Cantor distances), or "random" (uniform
// stepwise insertion). The returned tree's taxa follow the alignment's row
// order.
func StartingTree(pat *alignment.Patterns, kind string, rng *rand.Rand) (*phylotree.Tree, error) {
	switch kind {
	case "", "parsimony":
		return parsimony.BuildStepwise(pat, rng)
	case "nj":
		dm, err := distance.JukesCantor(pat)
		if err != nil {
			return nil, err
		}
		tr, err := distance.NeighborJoining(dm)
		if err != nil {
			return nil, err
		}
		if err := tr.AlignTaxa(pat.Names); err != nil {
			return nil, err
		}
		return tr, nil
	case "random":
		return phylotree.RandomTopology(pat.Names, rng)
	}
	return nil, fmt.Errorf("search: unknown starting-tree kind %q (want parsimony, nj or random)", kind)
}
