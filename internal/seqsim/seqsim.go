// Package seqsim simulates sequence evolution along a phylogenetic tree
// under a GTR+Γ model. It is the substitute for the paper's 42_SC input
// file (42 organisms x 1167 nucleotides, not distributed with the paper):
// the generated alignments have the same dimensions, tree-like signal, and
// on the order of the same number of distinct site patterns, which is what
// determines the likelihood kernels' loop trip counts.
package seqsim

import (
	"fmt"
	"math/rand"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/bio"
	"raxmlcell/internal/model"
	"raxmlcell/internal/phylotree"
)

// Params configures a simulation.
type Params struct {
	Taxa        int     // number of tips
	Sites       int     // alignment length
	MeanBranch  float64 // mean branch length (expected substitutions/site)
	Alpha       float64 // Gamma shape for site-rate variation (<=0: none)
	GapFraction float64 // fraction of characters replaced by gaps
	// InvariantFraction is the proportion of sites that never mutate —
	// real conserved alignments (like the paper's rRNA-style 42_SC data)
	// are dominated by such columns, which is what pushes the distinct
	// pattern count down to ~250 for 1167 sites over 42 taxa.
	InvariantFraction float64
}

// Params42SC mirrors the paper's benchmark input dimensions and pattern
// density (42 taxa x 1167 nt, on the order of 250 distinct patterns).
func Params42SC() Params {
	return Params{Taxa: 42, Sites: 1167, MeanBranch: 0.02, Alpha: 0.8, InvariantFraction: 0.60}
}

// Generate draws a random topology with exponential branch lengths, then
// evolves an alignment along it. It returns the alignment and the true tree.
func Generate(p Params, m *model.Model, rng *rand.Rand) (*alignment.Alignment, *phylotree.Tree, error) {
	if p.Taxa < 3 {
		return nil, nil, fmt.Errorf("seqsim: need >= 3 taxa, got %d", p.Taxa)
	}
	if p.Sites <= 0 {
		return nil, nil, fmt.Errorf("seqsim: need > 0 sites, got %d", p.Sites)
	}
	if p.MeanBranch <= 0 {
		p.MeanBranch = 0.1
	}
	names := make([]string, p.Taxa)
	for i := range names {
		names[i] = fmt.Sprintf("taxon%03d", i)
	}
	tr, err := phylotree.RandomTopology(names, rng)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range tr.Edges() {
		e.SetZ(p.MeanBranch * rng.ExpFloat64())
	}
	a, err := Evolve(tr, m, p, rng)
	if err != nil {
		return nil, nil, err
	}
	return a, tr, nil
}

// Evolve simulates p.Sites characters down the given tree under model m.
// Site rates are drawn from m's discrete Gamma categories (uniformly, since
// the categories are equiprobable).
func Evolve(tr *phylotree.Tree, m *model.Model, p Params, rng *rand.Rand) (*alignment.Alignment, error) {
	if m == nil {
		return nil, fmt.Errorf("seqsim: nil model")
	}
	nt := tr.NumTips()
	data := make([][]byte, nt) // per tip, raw characters
	for i := range data {
		data[i] = make([]byte, p.Sites)
	}

	g := m.GTR
	// Transition matrices are branch- and category-specific; cache them per
	// (edge, category) for the whole simulation.
	type key struct {
		e *phylotree.Node
		c int
	}
	cache := map[key]*[4][4]float64{}
	pm := func(e *phylotree.Node, c int) *[4][4]float64 {
		k := key{e, c}
		if m0, ok := cache[k]; ok {
			return m0
		}
		var mm [4][4]float64
		g.TransitionMatrix(e.Z, m.Cats[c], &mm)
		cache[k] = &mm
		return &mm
	}

	sample := func(dist []float64) int {
		x := rng.Float64()
		cum := 0.0
		for i, v := range dist {
			cum += v
			if x < cum {
				return i
			}
		}
		return len(dist) - 1
	}

	root := tr.Tips[0].Back // internal ring adjacent to tip 0
	for site := 0; site < p.Sites; site++ {
		cat := rng.Intn(m.NumCats())
		rootState := sample(g.Freqs[:])
		if p.InvariantFraction > 0 && rng.Float64() < p.InvariantFraction {
			// Conserved column: every taxon inherits the root state.
			ch := bio.BaseChar(rootState)
			for i := range data {
				data[i][site] = ch
			}
			continue
		}
		// Walk the three subtrees around the root ring.
		var walk func(e *phylotree.Node, fromState int)
		walk = func(e *phylotree.Node, fromState int) {
			mm := pm(e, cat)
			child := e.Back
			st := sample(mm[fromState][:])
			if child.IsTip() {
				data[child.Index][site] = bio.BaseChar(st)
				return
			}
			for _, r := range child.Ring() {
				if r != child {
					walk(r, st)
				}
			}
		}
		for _, r := range root.Ring() {
			walk(r, rootState)
		}
	}

	// Inject gaps.
	if p.GapFraction > 0 {
		for i := range data {
			for j := range data[i] {
				if rng.Float64() < p.GapFraction {
					data[i][j] = '-'
				}
			}
		}
	}

	seqs := make([]*bio.Sequence, nt)
	for i := range seqs {
		s, err := bio.NewSequence(tr.Taxa[i], string(data[i]))
		if err != nil {
			return nil, err
		}
		seqs[i] = s
	}
	return alignment.New(seqs)
}

// DefaultModel builds a moderately asymmetric GTR+Γ4 model suitable for
// generating benchmark data (fixed parameters, no randomness).
func DefaultModel() *model.Model {
	g, err := model.NewGTR(
		[6]float64{1.4, 3.9, 0.9, 1.2, 4.2, 1.0},
		[4]float64{0.31, 0.19, 0.22, 0.28},
	)
	if err != nil {
		panic("seqsim: default GTR invalid: " + err.Error())
	}
	m, err := model.NewModel(g, 0.8, 4)
	if err != nil {
		panic("seqsim: default model invalid: " + err.Error())
	}
	return m
}
