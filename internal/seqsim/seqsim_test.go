package seqsim

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/alignment"
)

func TestGenerateDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Params{Taxa: 10, Sites: 200, MeanBranch: 0.1, Alpha: 1}
	a, tr, err := Generate(p, DefaultModel(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTaxa() != 10 || a.NumSites() != 200 {
		t.Fatalf("got %dx%d", a.NumTaxa(), a.NumSites())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumTips() != 10 {
		t.Fatalf("tree tips = %d", tr.NumTips())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{Taxa: 8, Sites: 100, MeanBranch: 0.1}
	m := DefaultModel()
	a1, t1, err := Generate(p, m, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	a2, t2, err := Generate(p, m, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if t1.Newick() != t2.Newick() {
		t.Error("trees differ under same seed")
	}
	for i := range a1.Seqs {
		if a1.Seqs[i].String() != a2.Seqs[i].String() {
			t.Fatalf("sequence %d differs under same seed", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := DefaultModel()
	if _, _, err := Generate(Params{Taxa: 2, Sites: 10}, m, rng); err == nil {
		t.Error("2 taxa accepted")
	}
	if _, _, err := Generate(Params{Taxa: 5, Sites: 0}, m, rng); err == nil {
		t.Error("0 sites accepted")
	}
}

func TestEvolvedFrequenciesTrackModel(t *testing.T) {
	// With short branches, base frequencies should be near the model's
	// stationary distribution.
	rng := rand.New(rand.NewSource(3))
	m := DefaultModel()
	p := Params{Taxa: 20, Sites: 3000, MeanBranch: 0.05}
	a, _, err := Generate(p, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	f := a.BaseFrequencies()
	for i := 0; i < 4; i++ {
		if math.Abs(f[i]-m.GTR.Freqs[i]) > 0.03 {
			t.Errorf("freq[%d] = %.3f, model %.3f", i, f[i], m.GTR.Freqs[i])
		}
	}
}

func TestCloseRelativesMoreSimilar(t *testing.T) {
	// Sequences should carry phylogenetic signal: average identity between
	// two sequences joined by short paths must exceed that of distant pairs.
	rng := rand.New(rand.NewSource(5))
	m := DefaultModel()
	p := Params{Taxa: 12, Sites: 1000, MeanBranch: 0.15}
	a, tr, err := Generate(p, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	_ = tr
	identity := func(i, j int) float64 {
		same, n := 0, 0
		for k := 0; k < a.NumSites(); k++ {
			ci, cj := a.Seqs[i].Codes[k], a.Seqs[j].Codes[k]
			n++
			if ci == cj {
				same++
			}
		}
		return float64(same) / float64(n)
	}
	// All pairwise identities must be > 0.25 (random) on average.
	total, pairs := 0.0, 0
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			total += identity(i, j)
			pairs++
		}
	}
	if mean := total / float64(pairs); mean < 0.35 {
		t.Errorf("mean pairwise identity %.3f: no phylogenetic signal", mean)
	}
}

func TestParams42SCPatternCount(t *testing.T) {
	// The 42_SC stand-in must land near the paper's ~250 distinct patterns
	// (the paper's big loop runs 228 iterations for this input).
	rng := rand.New(rand.NewSource(4251))
	a, _, err := Generate(Params42SC(), DefaultModel(), rng)
	if err != nil {
		t.Fatal(err)
	}
	pat := alignment.Compress(a)
	if pat.NumTaxa != 42 || pat.NumSites != 1167 {
		t.Fatalf("dimensions %dx%d", pat.NumTaxa, pat.NumSites)
	}
	np := pat.NumPatterns()
	if np < 120 || np > 700 {
		t.Errorf("pattern count %d implausibly far from the paper's ~250", np)
	}
	t.Logf("42_SC stand-in: %d distinct patterns", np)
}

func TestGapInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := Params{Taxa: 6, Sites: 2000, MeanBranch: 0.1, GapFraction: 0.1}
	a, _, err := Generate(p, DefaultModel(), rng)
	if err != nil {
		t.Fatal(err)
	}
	gaps, total := 0, 0
	for _, s := range a.Seqs {
		for _, c := range s.Codes {
			total++
			if c == 15 {
				gaps++
			}
		}
	}
	frac := float64(gaps) / float64(total)
	if frac < 0.05 || frac > 0.15 {
		t.Errorf("gap fraction %.3f, want ~0.10", frac)
	}
}
