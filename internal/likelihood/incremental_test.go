package likelihood

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/phylotree"
)

// incrTol is the agreement bound between incremental and full recomputation.
// In the serial engine the cached path reuses bit-identical vectors, so the
// bound mostly guards against platform-dependent FMA contraction.
const incrTol = 1e-9

func logLClose(a, b float64) bool {
	return math.Abs(a-b) <= incrTol*math.Max(1, math.Abs(b))
}

// enginePair builds one incremental and one full-recompute engine over the
// same data.
func enginePair(t *testing.T, seed int64, nTaxa, nSites int) (*Engine, *Engine, *phylotree.Tree) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pat := randomPatterns(t, rng, nTaxa, nSites)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)
	cached, err := NewEngine(pat, m, Config{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return cached, full, tr
}

func TestIncrementalEvaluateMatchesFull(t *testing.T) {
	cached, full, tr := enginePair(t, 111, 12, 80)
	for i, e := range tr.Edges() {
		want, err := full.Evaluate(e)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cached.Evaluate(e)
		if err != nil {
			t.Fatal(err)
		}
		if !logLClose(got, want) {
			t.Fatalf("edge %d: incremental logL %.12f != full %.12f", i, got, want)
		}
	}
	// After the first evaluation populated the cache, later evaluations at
	// other branches must have stopped at valid views.
	if cached.Meter.CacheHits == 0 {
		t.Error("no cache hits across repeated evaluations")
	}
	if cached.Meter.NewviewCalls >= full.Meter.NewviewCalls {
		t.Errorf("incremental performed %d combines, full only %d",
			cached.Meter.NewviewCalls, full.Meter.NewviewCalls)
	}
	// The meter counts only work actually performed.
	if cached.Meter.BigLoopIters != uint64(cached.Pat.NumPatterns())*cached.Meter.NewviewCalls {
		t.Errorf("big loop iters %d != patterns*newviews", cached.Meter.BigLoopIters)
	}
}

func TestInvalidateAfterSetZ(t *testing.T) {
	cached, full, tr := enginePair(t, 222, 10, 60)
	if _, err := cached.Evaluate(tr.Tips[0]); err != nil {
		t.Fatal(err)
	}
	// Change branch lengths directly (bypassing MakeNewz) and invalidate by
	// hand, as the documented contract requires.
	edges := tr.Edges()
	for _, i := range []int{2, 7, len(edges) - 1} {
		e := edges[i]
		e.SetZ(e.Z * 1.7)
		cached.Invalidate(e)
		want, err := full.Evaluate(tr.Tips[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := cached.Evaluate(tr.Tips[0])
		if err != nil {
			t.Fatal(err)
		}
		if !logLClose(got, want) {
			t.Fatalf("after SetZ on edge %d: incremental %.12f != full %.12f", i, got, want)
		}
	}
	// A detached record falls back to dropping everything rather than
	// guessing an orientation.
	cached.Invalidate(&phylotree.Node{Index: 0})
	got, err := cached.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	if !logLClose(got, want) {
		t.Fatalf("after InvalidateAll fallback: %.12f != %.12f", got, want)
	}
}

func TestMakeNewzSelfInvalidates(t *testing.T) {
	cached, full, tr := enginePair(t, 333, 10, 60)
	trB := tr.Clone() // same topology/lengths; Edges() enumerates identically
	// A full smoothing sweep on each copy: MakeNewz must keep the cache
	// coherent on its own, so both engines walk identical Newton sequences.
	for pass := 0; pass < 3; pass++ {
		edgesA, edgesB := tr.Edges(), trB.Edges()
		if len(edgesA) != len(edgesB) {
			t.Fatal("clone edge count mismatch")
		}
		for i := range edgesA {
			zc, llc, err := cached.MakeNewz(edgesA[i])
			if err != nil {
				t.Fatal(err)
			}
			zf, llf, err := full.MakeNewz(edgesB[i])
			if err != nil {
				t.Fatal(err)
			}
			if zc != zf {
				t.Fatalf("pass %d edge %d: cached z=%.17g, full z=%.17g", pass, i, zc, zf)
			}
			if !logLClose(llc, llf) {
				t.Fatalf("pass %d edge %d: cached logL %.12f != full %.12f", pass, i, llc, llf)
			}
		}
	}
	if cached.Meter.CacheHits == 0 {
		t.Error("smoothing produced no cache hits")
	}
	if cached.Meter.NewviewCalls*2 > full.Meter.NewviewCalls {
		t.Errorf("smoothing combines barely reduced: cached %d vs full %d",
			cached.Meter.NewviewCalls, full.Meter.NewviewCalls)
	}
}

func TestAttachTreeTopologyMoves(t *testing.T) {
	cached, full, tr := enginePair(t, 444, 12, 60)
	cached.AttachTree(tr)
	rng := rand.New(rand.NewSource(445))

	check := func(stage string) {
		t.Helper()
		want, err := full.Evaluate(tr.Tips[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := cached.Evaluate(tr.Tips[0])
		if err != nil {
			t.Fatal(err)
		}
		if !logLClose(got, want) {
			t.Fatalf("%s: incremental %.12f != full %.12f", stage, got, want)
		}
	}
	check("initial")

	for step := 0; step < 20; step++ {
		// Collect internal prune candidates.
		var cands []*phylotree.Node
		for _, e := range tr.Edges() {
			if !e.IsTip() {
				cands = append(cands, e)
			}
			if !e.Back.IsTip() {
				cands = append(cands, e.Back)
			}
		}
		p := cands[rng.Intn(len(cands))]
		ps, err := tr.Prune(p)
		if err != nil {
			continue
		}
		targets := phylotree.RadiusEdges(ps.Q, 5)
		targets = append(targets, phylotree.RadiusEdges(ps.R, 5)...)
		if step%3 == 0 || len(targets) == 0 {
			if err := tr.Undo(ps); err != nil {
				t.Fatal(err)
			}
			check("undo")
			continue
		}
		if err := tr.Regraft(ps, targets[rng.Intn(len(targets))]); err != nil {
			t.Fatal(err)
		}
		check("regraft")
	}
	if cached.Meter.CacheHits == 0 {
		t.Error("topology moves produced no cache hits")
	}
}

func TestSetModelInvalidates(t *testing.T) {
	cached, full, tr := enginePair(t, 555, 8, 50)
	if _, err := cached.Evaluate(tr.Tips[0]); err != nil {
		t.Fatal(err)
	}
	m2, err := cached.Mod.WithAlpha(cached.Mod.Alpha * 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := cached.SetModel(m2); err != nil {
		t.Fatal(err)
	}
	if err := full.SetModel(m2); err != nil {
		t.Fatal(err)
	}
	got, err := cached.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	if !logLClose(got, want) {
		t.Fatalf("after SetModel: incremental %.12f != full %.12f", got, want)
	}
}
