package likelihood

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"raxmlcell/internal/phylotree"
)

// TestWavefrontNewViewMatchesSerial verifies the wavefront executor is a
// pure scheduling change: with a pool attached, Evaluate must produce the
// same log-likelihood (the partial vectors are computed by the identical
// combine calls, only distributed over workers) and the identical Meter
// totals as the serial engine, for both the full-recompute and the
// incremental configuration.
func TestWavefrontNewViewMatchesSerial(t *testing.T) {
	for _, cfg := range []Config{{}, {Incremental: true}} {
		rng := rand.New(rand.NewSource(301))
		pat := randomPatterns(t, rng, 14, 120)
		m := randomModel(t, rng, 4)
		tr := randomTreeFor(t, rng, pat)

		serial, err := NewEngine(pat, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wave, err := NewEngine(pat, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wave.UsePool(wave.NewPool(4))

		for _, p := range []*phylotree.Node{tr.Tips[0], tr.Tips[5].Back, tr.Tips[9]} {
			llS, err := serial.Evaluate(p)
			if err != nil {
				t.Fatal(err)
			}
			llW, err := wave.Evaluate(p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(llS-llW) > 0 {
				t.Fatalf("cfg %+v: wavefront logL %.15f != serial %.15f", cfg, llW, llS)
			}
		}
		if serial.Meter != wave.Meter {
			t.Errorf("cfg %+v: wavefront meter diverged from serial:\n serial %+v\n wave   %+v",
				cfg, serial.Meter, wave.Meter)
		}
		// Every internal-node vector must be bit-identical, not just the
		// final reduction.
		for i := pat.NumTaxa; i < 2*pat.NumTaxa-2; i++ {
			for j := range serial.lv[i] {
				if math.Abs(serial.lv[i][j]-wave.lv[i][j]) > 0 {
					t.Fatalf("cfg %+v: lv[%d][%d] differs", cfg, i, j)
				}
			}
		}
	}
}

// TestWavefrontMeterDeterminism repeats a pooled evaluation and requires
// identical Meter totals on every run: static block partitioning plus
// worker-order merges make the counters independent of goroutine
// scheduling.
func TestWavefrontMeterDeterminism(t *testing.T) {
	run := func() Meter {
		rng := rand.New(rand.NewSource(302))
		pat := randomPatterns(t, rng, 16, 90)
		m := randomModel(t, rng, 4)
		tr := randomTreeFor(t, rng, pat)
		eng, err := NewEngine(pat, m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		eng.UsePool(eng.NewPool(3))
		if _, err := eng.Evaluate(tr.Tips[0]); err != nil {
			t.Fatal(err)
		}
		if _, _, err := eng.MakeNewz(tr.Tips[2].Back); err != nil {
			t.Fatal(err)
		}
		return eng.Meter
	}
	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); again != first {
			t.Fatalf("run %d meter differs:\n first %+v\n again %+v", i, first, again)
		}
	}
}

// TestPoolRunPartition checks the static contiguous-block task assignment:
// every task runs exactly once, worker w owns the block [w*n/W, (w+1)*n/W),
// and the assignment is a pure function of (n, workers).
func TestPoolRunPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	pat := randomPatterns(t, rng, 8, 40)
	m := randomModel(t, rng, 2)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 4, 7} {
		p := eng.NewPool(workers)
		if p.Workers() != workers {
			t.Fatalf("pool size %d, want %d", p.Workers(), workers)
		}
		for _, n := range []int{0, 1, 2, 5, 16, 33} {
			got := make([]int, n)
			for i := range got {
				got[i] = -1
			}
			var mu sync.Mutex
			p.Run(n, func(w, task int) {
				mu.Lock()
				defer mu.Unlock()
				if got[task] != -1 {
					t.Errorf("task %d ran twice", task)
				}
				got[task] = w
			})
			w := workers
			if w > n {
				w = n
			}
			for task := 0; task < n; task++ {
				want := -1
				for wk := 0; wk < w; wk++ {
					if task >= n*wk/w && task < n*(wk+1)/w {
						want = wk
						break
					}
				}
				if got[task] != want {
					t.Errorf("workers=%d n=%d: task %d ran on worker %d, want %d",
						workers, n, task, got[task], want)
				}
			}
		}
	}
}

// TestPoolRunMergesMeters verifies worker kernel work lands in the engine
// meter after the fan-out, and that worker contexts are drained (a second
// merge adds nothing).
func TestPoolRunMergesMeters(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	pat := randomPatterns(t, rng, 8, 50)
	m := randomModel(t, rng, 4)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := eng.NewPool(3)
	before := eng.Meter
	const tasks = 9
	p.Run(tasks, func(w, task int) {
		c := p.Ctx(w)
		c.transitionMatrices(0.1, c.pLeft)
	})
	gained := eng.Meter.Exps - before.Exps
	want := uint64(tasks * eng.nmat * ns)
	if gained != want {
		t.Errorf("merged Exps %d, want %d", gained, want)
	}
	for i := 0; i < p.Workers(); i++ {
		if p.Ctx(i).ownMeter != (Meter{}) {
			t.Errorf("worker %d meter not drained: %+v", i, p.Ctx(i).ownMeter)
		}
	}
}

// TestPoolOccupancyHook checks the occupancy observer sees plausible
// transitions: busy counts stay within [0, workers] and reach at least 1.
func TestPoolOccupancyHook(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	pat := randomPatterns(t, rng, 8, 40)
	m := randomModel(t, rng, 2)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := eng.NewPool(4)
	var mu sync.Mutex
	maxBusy, calls := 0, 0
	p.OnOccupancy = func(busy, workers int) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if busy < 0 || busy > workers {
			t.Errorf("busy %d out of range [0,%d]", busy, workers)
		}
		if busy > maxBusy {
			maxBusy = busy
		}
	}
	p.Run(8, func(w, task int) {
		c := p.Ctx(w)
		c.transitionMatrices(0.05, c.pLeft)
	})
	if calls == 0 || maxBusy < 1 {
		t.Errorf("occupancy hook saw %d calls, max busy %d", calls, maxBusy)
	}
}

// TestMakeNewzScratchConcurrent is the -race regression for the satellite
// fix: PR 2 hoisted the per-Newton-iteration scratch (e0/e1/e2 exponential
// blocks) onto the Engine, which aliased under concurrent callers. The
// scratch now lives on the per-worker Ctx, and this test drives the shared
// Newton core (newtonOnBranch — the same sum-table/likelihoodAt machinery
// MakeNewz runs) from two goroutines at once, each with its own context
// and Views over the same frozen pruned tree, exactly like parallel SPR
// candidate scoring. Results must match the serial scores bit for bit.
func TestMakeNewzScratchConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(306))
	pat := randomPatterns(t, rng, 12, 80)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}

	ps, err := tr.Prune(tr.Tips[0].Back)
	if err != nil {
		t.Fatal(err)
	}
	z0 := ps.P.Z
	cands := phylotree.RadiusEdges(ps.Q, 4)
	cands = append(cands, phylotree.RadiusEdges(ps.R, 4)...)
	if len(cands) < 4 {
		t.Fatalf("only %d candidates", len(cands))
	}

	// Serial ground truth through the engine's primary context.
	type score struct{ z, ll float64 }
	serial := make([]score, len(cands))
	views := eng.NewViews()
	for i, cand := range cands {
		z, ll, err := views.InsertionScore(cand, ps.P, z0)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = score{z, ll}
	}
	views.Release()

	// Two concurrent scorers, each owning a context and a Views.
	got := make([]score, len(cands))
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := eng.NewCtx().NewViews()
			defer v.Release()
			for i := g; i < len(cands); i += 2 {
				z, ll, err := v.InsertionScore(cands[i], ps.P, z0)
				if err != nil {
					errs[g] = err
					return
				}
				got[i] = score{z, ll}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for i := range cands {
		if math.Abs(got[i].z-serial[i].z) > 0 || math.Abs(got[i].ll-serial[i].ll) > 0 {
			t.Errorf("candidate %d: concurrent (%.15f, %.15f) != serial (%.15f, %.15f)",
				i, got[i].z, got[i].ll, serial[i].z, serial[i].ll)
		}
	}
	if err := tr.Undo(ps); err != nil {
		t.Fatal(err)
	}
}

// TestPoolRunReentrancyPanics documents the Run contract: the pool is a
// single fan-out at a time.
func TestPoolRunReentrancyPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	pat := randomPatterns(t, rng, 8, 40)
	m := randomModel(t, rng, 2)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := eng.NewPool(2)
	var panicked atomic.Bool
	p.Run(2, func(w, task int) {
		if task != 0 {
			return
		}
		defer func() {
			if recover() != nil {
				panicked.Store(true)
			}
		}()
		p.Run(1, func(w, task int) {})
	})
	if !panicked.Load() {
		t.Error("nested Pool.Run did not panic")
	}
}
