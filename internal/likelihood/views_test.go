package likelihood

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/phylotree"
)

func TestViewsVectorMatchesNewView(t *testing.T) {
	// The memoized directed vector at the record opposite tip 0 must match
	// what the engine's own NewView computes for the same orientation.
	rng := rand.New(rand.NewSource(201))
	pat := randomPatterns(t, rng, 10, 60)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}

	p := tr.Tips[0].Back
	eng.NewView(p)
	direct := append([]float64(nil), eng.lv[p.Index]...)

	views := eng.NewViews()
	cached, sc, err := views.Vector(p)
	if err != nil {
		t.Fatal(err)
	}
	if sc == nil {
		t.Fatal("nil scale vector for internal record")
	}
	for i := range direct {
		if direct[i] != cached[i] {
			t.Fatalf("vector entry %d: %g vs %g", i, direct[i], cached[i])
		}
	}
	// Tip records yield nil.
	lv, _, err := views.Vector(tr.Tips[3])
	if err != nil || lv != nil {
		t.Errorf("tip record: %v, %v", lv, err)
	}
	views.Release()
}

func TestViewsMemoization(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	pat := randomPatterns(t, rng, 12, 40)
	m := randomModel(t, rng, 2)
	tr := randomTreeFor(t, rng, pat)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	views := eng.NewViews()
	if _, _, err := views.Vector(tr.Tips[0].Back); err != nil {
		t.Fatal(err)
	}
	calls := eng.Meter.NewviewCalls
	// Re-requesting the same and overlapping vectors must not recompute.
	if _, _, err := views.Vector(tr.Tips[0].Back); err != nil {
		t.Fatal(err)
	}
	if eng.Meter.NewviewCalls != calls {
		t.Error("memoized vector recomputed")
	}
	// Computing every directed vector costs at most 3*(n-2) newviews total.
	for _, e := range tr.Edges() {
		if !e.IsTip() {
			if _, _, err := views.Vector(e); err != nil {
				t.Fatal(err)
			}
		}
		if !e.Back.IsTip() {
			if _, _, err := views.Vector(e.Back); err != nil {
				t.Fatal(err)
			}
		}
	}
	if max := uint64(3 * (12 - 2)); eng.Meter.NewviewCalls > max {
		t.Errorf("views computation used %d newviews, bound %d", eng.Meter.NewviewCalls, max)
	}
	views.Release()
	// Pool reuse: a second Views should allocate nothing new (hard to
	// observe directly; just exercise the path).
	v2 := eng.NewViews()
	if _, _, err := v2.Vector(tr.Tips[1].Back); err != nil {
		t.Fatal(err)
	}
	v2.Release()
}

// insertionScoreExhaustive reproduces the pre-lazy trial: physically
// regraft, run full MakeNewz on the subtree branch, read the likelihood,
// and undo. It is the ground truth the lazy path must match.
func insertionScoreExhaustive(t *testing.T, eng *Engine, tr *phylotree.Tree, ps *phylotree.PrunedSubtree, cand *phylotree.Node, z0 float64) (float64, float64) {
	t.Helper()
	if err := tr.Regraft(ps, cand); err != nil {
		t.Fatal(err)
	}
	ps.P.SetZ(z0)
	z, ll, err := eng.MakeNewz(ps.P)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Prune(ps.P); err != nil {
		t.Fatal(err)
	}
	ps.P.SetZ(z0)
	return z, ll
}

func TestInsertionScoreMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	pat := randomPatterns(t, rng, 12, 80)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}

	p := tr.Tips[4].Back
	ps, err := tr.Prune(p)
	if err != nil {
		t.Fatal(err)
	}
	z0 := ps.P.Z

	cands := phylotree.RadiusEdges(ps.Q, 4)
	cands = append(cands, phylotree.RadiusEdges(ps.R, 4)...)
	if len(cands) < 3 {
		t.Fatalf("only %d candidates", len(cands))
	}
	views := eng.NewViews()
	for i, cand := range cands {
		zLazy, llLazy, err := views.InsertionScore(cand, ps.P, z0)
		if err != nil {
			t.Fatal(err)
		}
		zEx, llEx := insertionScoreExhaustive(t, eng, tr, ps, cand, z0)
		if math.Abs(llLazy-llEx) > 1e-6*math.Abs(llEx) {
			t.Errorf("candidate %d: lazy logL %.8f != exhaustive %.8f", i, llLazy, llEx)
		}
		if math.Abs(zLazy-zEx) > 1e-4*(1+zEx) {
			t.Errorf("candidate %d: lazy z %.8f != exhaustive %.8f", i, zLazy, zEx)
		}
	}
	views.Release()
	if err := tr.Undo(ps); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionScoreErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	pat := randomPatterns(t, rng, 6, 30)
	m := randomModel(t, rng, 2)
	tr := randomTreeFor(t, rng, pat)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	views := eng.NewViews()
	detached := &phylotree.Node{Index: 99}
	if _, _, err := views.InsertionScore(detached, tr.Tips[0].Back, 0.1); err == nil {
		t.Error("detached candidate accepted")
	}
	if _, _, err := views.InsertionScore(tr.Tips[1], detached, 0.1); err == nil {
		t.Error("detached subtree accepted")
	}
	views.Release()
}
