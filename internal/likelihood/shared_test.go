package likelihood

import (
	"fmt"
	"math/rand"
	"testing"

	"raxmlcell/internal/phylotree"
)

// sharedFixture builds an engine with an installed shared vector store and
// tree-edit hooks wired, plus the tree it serves.
func sharedFixture(t *testing.T, seed int64, nTaxa, nSites int) (*Engine, *SharedCache, *phylotree.Tree) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pat := randomPatterns(t, rng, nTaxa, nSites)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)
	eng, err := NewEngine(pat, m, Config{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	shared := eng.NewSharedCache()
	eng.UseSharedCache(shared)
	eng.AttachTree(tr)
	return eng, shared, tr
}

// internalRecords collects every directed internal ring record of the tree:
// the full domain of Views.Vector / SharedCache.vector.
func internalRecords(tr *phylotree.Tree) []*phylotree.Node {
	var out []*phylotree.Node
	for _, e := range tr.Edges() {
		for _, r := range [...]*phylotree.Node{e, e.Back} {
			if !r.IsTip() {
				ring := r.Ring()
				out = append(out, ring[:]...)
			}
		}
	}
	// Ring() may repeat records reachable from both edge ends; dedup.
	seen := make(map[*phylotree.Node]bool, len(out))
	uniq := out[:0]
	for _, r := range out {
		if !seen[r] {
			seen[r] = true
			uniq = append(uniq, r)
		}
	}
	return uniq
}

// assertVectorsEqual requires exact (bitwise) equality of two directed
// vectors and their scale counts.
func assertVectorsEqual(t *testing.T, stage string, gotLv, wantLv []float64, gotSc, wantSc []int32) {
	t.Helper()
	if len(gotLv) != len(wantLv) || len(gotSc) != len(wantSc) {
		t.Fatalf("%s: length mismatch lv %d vs %d, sc %d vs %d",
			stage, len(gotLv), len(wantLv), len(gotSc), len(wantSc))
	}
	for i := range gotLv {
		if gotLv[i] != wantLv[i] {
			t.Fatalf("%s: lv[%d] = %.17g, want %.17g (bit-identical)", stage, i, gotLv[i], wantLv[i])
		}
	}
	for i := range gotSc {
		if gotSc[i] != wantSc[i] {
			t.Fatalf("%s: scale[%d] = %d, want %d", stage, i, gotSc[i], wantSc[i])
		}
	}
}

// TestSharedViewsMatchPrivate pins the equivalence that makes the shared
// store a pure scheduling change: for every directed internal record, the
// vector served by a shared-backed Views is bit-identical to the one a
// private per-context Views computes from scratch.
func TestSharedViewsMatchPrivate(t *testing.T) {
	eng, shared, tr := sharedFixture(t, 801, 12, 80)
	sv := eng.NewSharedViews(shared)
	pv := eng.NewViews()
	defer pv.Release()
	recs := internalRecords(tr)
	if len(recs) == 0 {
		t.Fatal("no internal records")
	}
	for i, r := range recs {
		gotLv, gotSc, err := sv.Vector(r)
		if err != nil {
			t.Fatal(err)
		}
		wantLv, wantSc, err := pv.Vector(r)
		if err != nil {
			t.Fatal(err)
		}
		assertVectorsEqual(t, fmt.Sprintf("record %d", i), gotLv, wantLv, gotSc, wantSc)
	}
	if shared.Computes() == 0 || shared.Computes() > uint64(len(recs)) {
		t.Errorf("shared store computed %d vectors for %d records", shared.Computes(), len(recs))
	}
	// Re-reading everything must be pure hits: no edits, no epoch change.
	computes := shared.Computes()
	for _, r := range recs {
		if _, _, err := sv.Vector(r); err != nil {
			t.Fatal(err)
		}
	}
	if shared.Computes() != computes {
		t.Errorf("re-read recomputed: %d -> %d computes", computes, shared.Computes())
	}
	if eng.Meter.SharedHits == 0 {
		t.Error("no SharedHits metered on the primary context")
	}
}

// TestSharedCacheEpochRetag pins the selective invalidation: after a branch
// change, the one orientation per ring facing the changed branch survives
// into the new epoch (pure hit), every other orientation recomputes, and
// the recomputed vectors are bit-identical to a cold private recompute.
func TestSharedCacheEpochRetag(t *testing.T) {
	eng, shared, tr := sharedFixture(t, 802, 10, 60)
	sv := eng.NewSharedViews(shared)
	recs := internalRecords(tr)
	for _, r := range recs {
		if _, _, err := sv.Vector(r); err != nil {
			t.Fatal(err)
		}
	}
	warm := shared.Computes()
	epoch0 := shared.Epoch()

	// Find an internal-internal edge so both facing records are internal.
	var e *phylotree.Node
	for _, c := range tr.Edges() {
		if !c.IsTip() && !c.Back.IsTip() {
			e = c
			break
		}
	}
	if e == nil {
		t.Fatal("no internal-internal edge")
	}
	e.SetZ(e.Z * 1.31)
	eng.Invalidate(e)
	if shared.Epoch() != epoch0+1 {
		t.Fatalf("epoch %d after one invalidation, want %d", shared.Epoch(), epoch0+1)
	}

	// The records facing the changed branch exclude it from their subtree:
	// both must be served without any recompute.
	for _, r := range [...]*phylotree.Node{e, e.Back} {
		before := shared.Computes()
		if _, _, err := sv.Vector(r); err != nil {
			t.Fatal(err)
		}
		if shared.Computes() != before {
			t.Errorf("facing record recomputed after retag (%d -> %d)", before, shared.Computes())
		}
	}
	// The other orientations at e's ring include the changed branch and must
	// recompute — and match a cold private recompute bit for bit.
	pv := eng.NewViews()
	defer pv.Release()
	for _, r := range [...]*phylotree.Node{e.Next, e.Next.Next, e.Back.Next, e.Back.Next.Next} {
		before := shared.Computes()
		gotLv, gotSc, err := sv.Vector(r)
		if err != nil {
			t.Fatal(err)
		}
		if shared.Computes() == before {
			t.Error("stale orientation served without recompute")
		}
		wantLv, wantSc, err := pv.Vector(r)
		if err != nil {
			t.Fatal(err)
		}
		assertVectorsEqual(t, "post-invalidate", gotLv, wantLv, gotSc, wantSc)
	}

	// InvalidateAll drops everything: the next read of anything recomputes.
	eng.InvalidateAll()
	before := shared.Computes()
	if _, _, err := sv.Vector(recs[0]); err != nil {
		t.Fatal(err)
	}
	if shared.Computes() == before {
		t.Error("read after InvalidateAll did not recompute")
	}
	_ = warm
}

// TestPoolSharedCacheSingleFlight is the redundancy theorem under real
// concurrency: four workers hammering every directed vector through one
// shared store must compute each exactly once — computes equals the
// distinct-record count no matter how the scheduler interleaves, the rest
// of the requests are hits, and per-worker meter attribution sums to the
// engine total. Runs under -race in CI.
func TestPoolSharedCacheSingleFlight(t *testing.T) {
	eng, shared, tr := sharedFixture(t, 803, 14, 80)
	pool := eng.NewPool(4)
	views := make([]*Views, pool.Workers())
	for w := range views {
		views[w] = pool.Ctx(w).NewSharedViews(shared)
	}
	recs := internalRecords(tr)
	const lapsPerWorker = 4
	n := lapsPerWorker * pool.Workers() * len(recs)
	errs := make([]error, pool.Workers())
	pool.Run(n, func(w, i int) {
		if _, _, err := views[w].Vector(recs[i%len(recs)]); err != nil {
			errs[w] = err
		}
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	if got, want := shared.Computes(), uint64(len(recs)); got != want {
		t.Errorf("computes = %d, want exactly %d (one per distinct record)", got, want)
	}
	// Every top-level request beyond the computes was a hit; child-edge
	// requests during computes only add to that.
	if minHits := uint64(n) - shared.Computes(); shared.Hits() < minHits {
		t.Errorf("hits = %d, want >= %d", shared.Hits(), minHits)
	}

	// Per-worker attribution: the workers' private meters were merged into
	// the engine and snapshotted per worker; the snapshot must tile the
	// engine totals exactly.
	var sum Meter
	for w := 0; w < pool.Workers(); w++ {
		wm := pool.WorkerMeter(w)
		sum.Add(&wm)
	}
	if sum.NewviewCalls != eng.Meter.NewviewCalls {
		t.Errorf("per-worker NewviewCalls sum %d != engine total %d", sum.NewviewCalls, eng.Meter.NewviewCalls)
	}
	if sum.SharedHits != eng.Meter.SharedHits {
		t.Errorf("per-worker SharedHits sum %d != engine total %d", sum.SharedHits, eng.Meter.SharedHits)
	}
	if eng.Meter.NewviewCalls != shared.Computes() {
		t.Errorf("engine NewviewCalls %d != shared computes %d", eng.Meter.NewviewCalls, shared.Computes())
	}
	if eng.Meter.SharedHits != shared.Hits() {
		t.Errorf("engine SharedHits %d != shared hits %d", eng.Meter.SharedHits, shared.Hits())
	}
	if pool.PeakBusy() < 1 || pool.PeakBusy() > pool.Workers() {
		t.Errorf("PeakBusy = %d, want in [1, %d]", pool.PeakBusy(), pool.Workers())
	}
}

// TestPoolSharedCacheAcrossInvalidations alternates fan-outs with branch
// edits: each Pool.Run barrier must fully publish the previous epoch's
// vectors before the edit bumps the epoch, and every post-edit read must be
// bit-identical to a cold recompute. Runs under -race in CI.
func TestPoolSharedCacheAcrossInvalidations(t *testing.T) {
	eng, shared, tr := sharedFixture(t, 804, 12, 60)
	pool := eng.NewPool(4)
	views := make([]*Views, pool.Workers())
	for w := range views {
		views[w] = pool.Ctx(w).NewSharedViews(shared)
	}
	rng := rand.New(rand.NewSource(805))
	for round := 0; round < 8; round++ {
		recs := internalRecords(tr)
		errs := make([]error, pool.Workers())
		pool.Run(2*len(recs), func(w, i int) {
			if _, _, err := views[w].Vector(recs[i%len(recs)]); err != nil {
				errs[w] = err
			}
		})
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		// Edit between fan-outs (the search's phasing): bump a branch, then
		// audit a sample of shared vectors against cold recomputes.
		edges := tr.Edges()
		e := edges[rng.Intn(len(edges))]
		e.SetZ(e.Z*0.8 + 0.01)
		eng.Invalidate(e)
		pv := eng.NewViews()
		sv := eng.NewSharedViews(shared)
		for k := 0; k < 5; k++ {
			r := recs[rng.Intn(len(recs))]
			gotLv, gotSc, err := sv.Vector(r)
			if err != nil {
				t.Fatal(err)
			}
			wantLv, wantSc, err := pv.Vector(r)
			if err != nil {
				t.Fatal(err)
			}
			assertVectorsEqual(t, "round audit", gotLv, wantLv, gotSc, wantSc)
		}
		pv.Release()
	}
}

// FuzzEpochCacheEquivalence drives random interleavings of branch edits,
// topology moves, full invalidations and reads over a random small tree,
// asserting after every operation that a sample of shared-store vectors is
// bit-identical to a cold private recompute at the current epoch.
func FuzzEpochCacheEquivalence(f *testing.F) {
	f.Add(int64(1), []byte{0, 1, 2, 3, 0, 1, 2, 3})
	f.Add(int64(7), []byte{1, 1, 1, 2, 0, 3, 2, 2, 1, 0})
	f.Add(int64(42), []byte{2, 0, 2, 0, 2, 1, 3})
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		rng := rand.New(rand.NewSource(seed))
		nTaxa := 6 + int(rng.Int63()%7)
		pat := randomPatterns(t, rng, nTaxa, 24)
		m := randomModel(t, rng, 4)
		tr := randomTreeFor(t, rng, pat)
		eng, err := NewEngine(pat, m, Config{Incremental: true})
		if err != nil {
			t.Fatal(err)
		}
		shared := eng.NewSharedCache()
		eng.UseSharedCache(shared)
		eng.AttachTree(tr)
		sv := eng.NewSharedViews(shared)

		audit := func(stage string) {
			recs := internalRecords(tr)
			pv := eng.NewViews()
			for k := 0; k < 4 && k < len(recs); k++ {
				r := recs[rng.Intn(len(recs))]
				gotLv, gotSc, err := sv.Vector(r)
				if err != nil {
					t.Fatal(err)
				}
				wantLv, wantSc, err := pv.Vector(r)
				if err != nil {
					t.Fatal(err)
				}
				assertVectorsEqual(t, stage, gotLv, wantLv, gotSc, wantSc)
			}
			pv.Release()
		}

		audit("initial")
		for _, op := range ops {
			switch op % 4 {
			case 0: // direct branch change + explicit invalidation
				edges := tr.Edges()
				e := edges[rng.Intn(len(edges))]
				e.SetZ(0.01 + rng.Float64()*0.5)
				eng.Invalidate(e)
			case 1: // SPR move (or undo) through the tree's own hooks
				var cands []*phylotree.Node
				for _, e := range tr.Edges() {
					if !e.IsTip() {
						cands = append(cands, e)
					}
					if !e.Back.IsTip() {
						cands = append(cands, e.Back)
					}
				}
				if len(cands) == 0 {
					continue
				}
				ps, err := tr.Prune(cands[rng.Intn(len(cands))])
				if err != nil {
					continue
				}
				targets := phylotree.RadiusEdges(ps.Q, 3)
				targets = append(targets, phylotree.RadiusEdges(ps.R, 3)...)
				if len(targets) == 0 || rng.Intn(3) == 0 {
					if err := tr.Undo(ps); err != nil {
						t.Fatal(err)
					}
				} else if err := tr.Regraft(ps, targets[rng.Intn(len(targets))]); err != nil {
					t.Fatal(err)
				}
			case 2: // Newton branch optimization (self-invalidating)
				edges := tr.Edges()
				if _, _, err := eng.MakeNewz(edges[rng.Intn(len(edges))]); err != nil {
					t.Fatal(err)
				}
			case 3: // drop everything
				eng.InvalidateAll()
			}
			audit("after op")
		}
	})
}
