package likelihood

import (
	"math"
	"sync"
)

// Reduction helpers shared with the serial kernels.
const minPositive = math.SmallestNonzeroFloat64

var logFn = math.Log

// The paper's RAxML lineage includes RAxML-OMP, which parallelizes the
// likelihood loops over alignment sites on shared-memory machines; the
// Cell port's LLP scheduler is the same idea mapped onto SPEs. This file is
// the real Go analogue: when Config.Threads > 1 the per-pattern loops of
// the kernels fan out over a fixed pool of goroutines, each accumulating
// into private counters that are merged afterwards, so results match the
// serial kernels (bit-for-bit for partial vectors; up to floating point
// summation order for reductions).

// parallelThreshold is the minimum number of patterns per goroutine that
// makes the fan-out worthwhile.
const parallelThreshold = 64

// parallel reports whether kernels should fan out.
func (e *Engine) parallel() bool {
	return e.Cfg.Threads > 1 && e.npat >= parallelThreshold
}

// patRange describes one goroutine's slice of the pattern loop.
type patRange struct{ lo, hi int }

// combineStats are the per-range meter contributions of the newview loop.
type combineStats struct {
	muls, adds               uint64
	bigIters                 uint64
	scaleChecks, scaleEvents uint64
}

func (s *combineStats) add(o combineStats) {
	s.muls += o.muls
	s.adds += o.adds
	s.bigIters += o.bigIters
	s.scaleChecks += o.scaleChecks
	s.scaleEvents += o.scaleEvents
}

// splitPatterns partitions [0, npat) into at most Threads ranges.
func (e *Engine) splitPatterns() []patRange {
	n := e.Cfg.Threads
	if n > e.npat {
		n = e.npat
	}
	out := make([]patRange, 0, n)
	chunk := (e.npat + n - 1) / n
	for lo := 0; lo < e.npat; lo += chunk {
		hi := lo + chunk
		if hi > e.npat {
			hi = e.npat
		}
		out = append(out, patRange{lo, hi})
	}
	return out
}

// runParallel executes fn over the given pattern ranges on worker
// goroutines. Callers compute the ranges once with splitPatterns (they
// usually also need them to size per-slot result buffers) and pass them in,
// so the partitioning is not recomputed per fan-out.
func (e *Engine) runParallel(ranges []patRange, fn func(r patRange, slot int)) {
	var wg sync.WaitGroup
	for slot, r := range ranges {
		wg.Add(1)
		go func(r patRange, slot int) {
			defer wg.Done()
			fn(r, slot)
		}(r, slot)
	}
	wg.Wait()
}

// newtonReduce computes the weighted (logL, d1, d2) triple of the Newton
// iteration from the sum table in c.sumTab and the per-matrix exponential
// blocks — the reduction shared by MakeNewz and the lazy-SPR scorer,
// dispatched to the engine's backend and parallelized over patterns when
// the engine is threaded.
func (c *Ctx) newtonReduce(e0, e1, e2 []float64, weights []int) (ll, d1, d2 float64) {
	e := c.eng
	ncat := e.ncat
	c.newtOp = newtonOp{e0: e0, e1: e1, e2: e2, weights: weights}
	op := &c.newtOp
	bk := e.backend

	var underflow, logs uint64
	if e.parallel() {
		ranges := e.splitPatterns()
		parts := make([]newtonPart, len(ranges))
		e.runParallel(ranges, func(pr patRange, slot int) {
			parts[slot] = bk.newtonRange(c, op, pr, slot)
		})
		for _, p := range parts {
			ll += p.ll
			d1 += p.d1
			d2 += p.d2
			underflow += p.underflow
			logs += p.logs
		}
	} else {
		p := bk.newtonRange(c, op, patRange{0, e.npat}, 0)
		ll, d1, d2, underflow, logs = p.ll, p.d1, p.d2, p.underflow, p.logs
	}
	*c.underflow += underflow
	c.meter.Logs += logs
	c.meter.Muls += uint64(3*e.npat*ncat*ns + 3*e.nmat*ns)
	c.meter.Adds += uint64(3 * e.npat * ncat * ns)
	return ll, d1, d2
}
