package likelihood

import "time"

// KernelOp identifies one of the three PLF kernel entry points, the unit at
// which external observers receive per-call latencies. The values are dense
// so an observer can index a fixed array by op without any lookup on the
// hot path.
type KernelOp int

const (
	// OpNewview is the combine step of NewView: one ancestral-vector
	// recomputation (transition matrices + tip projection + combineRange).
	OpNewview KernelOp = iota
	// OpMakenewz is the Newton-Raphson branch-length solve over a summary
	// table.
	OpMakenewz
	// OpEvaluate is a full log-likelihood evaluation at the virtual root.
	OpEvaluate

	// NumKernelOps bounds KernelOp for array-indexed observers.
	NumKernelOps
)

// String names the op as it appears in metric names (kernel.<backend>.<op>_ms).
func (op KernelOp) String() string {
	switch op {
	case OpNewview:
		return "newview"
	case OpMakenewz:
		return "makenewz"
	case OpEvaluate:
		return "evaluate"
	}
	return "unknown"
}

// KernelObserver receives the elapsed wall time of individual kernel calls.
// It is the likelihood package's outward-facing observability seam: obs
// adapts it onto latency histograms, and this package stays free of any
// dependency on the metrics layer (the import runs obs → likelihood, never
// back). Implementations must be safe for concurrent use — engines time
// kernels from every search worker — and must not allocate per call; the
// engine invokes the observer on the hottest paths in the system.
type KernelObserver interface {
	ObserveKernel(op KernelOp, elapsed time.Duration)
}
