package likelihood

import "math"

// FastExp is the Go analogue of the Cell SDK's numerical exp() (exp.h in SDK
// 1.1): argument reduction x = k·ln2 + r followed by a polynomial evaluation
// of e^r and an exponent re-injection. The paper replaced the libm exp()
// (which consumed 50% of SPE time in newview) with exactly this kind of
// routine. Accuracy is ~1e-15 relative over the likelihood kernels' argument
// range (always negative, moderate magnitude).
func FastExp(x float64) float64 {
	// The likelihood kernels only ever evaluate exp of lambda*t*rate with
	// lambda <= 0; still handle the general finite range for safety.
	if x != x { // NaN
		return x
	}
	if x > 709.0 {
		return math.Inf(1)
	}
	if x < -745.0 {
		return 0
	}
	const (
		log2e = 1.4426950408889634074
		ln2Hi = 6.93147180369123816490e-01
		ln2Lo = 1.90821492927058770002e-10
	)
	k := math.Floor(x*log2e + 0.5)
	// Two-part reduction keeps r accurate to the last bit.
	r := (x - k*ln2Hi) - k*ln2Lo
	// Degree-13 Taylor polynomial of e^r via Horner; |r| <= ln2/2 ≈ 0.3466,
	// so the truncation error is below 1e-17.
	p := 1.0 / 6227020800.0 // 1/13!
	p = p*r + 1.0/479001600.0
	p = p*r + 1.0/39916800.0
	p = p*r + 1.0/3628800.0
	p = p*r + 1.0/362880.0
	p = p*r + 1.0/40320.0
	p = p*r + 1.0/5040.0
	p = p*r + 1.0/720.0
	p = p*r + 1.0/120.0
	p = p*r + 1.0/24.0
	p = p*r + 1.0/6.0
	p = p*r + 0.5
	p = p*r + 1.0
	p = p*r + 1.0
	return math.Ldexp(p, int(k))
}
