package likelihood

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/bio"
	"raxmlcell/internal/model"
	"raxmlcell/internal/phylotree"
)

// --- test helpers ---

func patternsFrom(t *testing.T, rows []string, names []string) *alignment.Patterns {
	t.Helper()
	var seqs []*bio.Sequence
	for i, r := range rows {
		s, err := bio.NewSequence(names[i], r)
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, s)
	}
	a, err := alignment.New(seqs)
	if err != nil {
		t.Fatal(err)
	}
	return alignment.Compress(a)
}

func randomPatterns(t *testing.T, rng *rand.Rand, nTaxa, nSites int) *alignment.Patterns {
	t.Helper()
	bases := "ACGTACGTACGTN-RY" // mostly plain bases with some ambiguity
	rows := make([]string, nTaxa)
	names := make([]string, nTaxa)
	for i := 0; i < nTaxa; i++ {
		var b strings.Builder
		for j := 0; j < nSites; j++ {
			b.WriteByte(bases[rng.Intn(len(bases))])
		}
		rows[i] = b.String()
		names[i] = fmt.Sprintf("t%02d", i)
	}
	return patternsFrom(t, rows, names)
}

func randomModel(t *testing.T, rng *rand.Rand, ncat int) *model.Model {
	t.Helper()
	var rates [6]float64
	for i := range rates {
		rates[i] = 0.3 + 3*rng.Float64()
	}
	var freqs [4]float64
	sum := 0.0
	for i := range freqs {
		freqs[i] = 0.15 + rng.Float64()
		sum += freqs[i]
	}
	for i := range freqs {
		freqs[i] /= sum
	}
	g, err := model.NewGTR(rates, freqs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewModel(g, 0.7, ncat)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomTreeFor(t *testing.T, rng *rand.Rand, pat *alignment.Patterns) *phylotree.Tree {
	t.Helper()
	tr, err := phylotree.RandomTopology(pat.Names, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Edges() {
		e.SetZ(0.02 + 0.3*rng.Float64())
	}
	return tr
}

// bruteForceLogL computes the tree log-likelihood by explicit enumeration of
// all internal-node state assignments — an independent O(4^(n-2)) reference
// implementation with no pruning, no scaling and no shared code with the
// engine's kernels. Only usable for tiny trees.
func bruteForceLogL(t *testing.T, tr *phylotree.Tree, pat *alignment.Patterns, m *model.Model) float64 {
	t.Helper()
	edges := tr.Edges()
	// Collect internal indices.
	internals := map[int]bool{}
	for _, e := range edges {
		if !e.IsTip() {
			internals[e.Index] = true
		}
		if !e.Back.IsTip() {
			internals[e.Back.Index] = true
		}
	}
	var inner []int
	for idx := range internals {
		inner = append(inner, idx)
	}
	nInner := len(inner)
	slot := map[int]int{}
	for i, idx := range inner {
		slot[idx] = i
	}
	rootIdx := inner[0]

	ncat := m.NumCats()
	// Precompute P matrices per edge per cat.
	type edgeP struct {
		a, b int // node indices
		pm   [][4][4]float64
	}
	eps := make([]edgeP, len(edges))
	for k, e := range edges {
		ep := edgeP{a: e.Index, b: e.Back.Index, pm: make([][4][4]float64, ncat)}
		for c := 0; c < ncat; c++ {
			m.GTR.TransitionMatrix(e.Z, m.Cats[c], &ep.pm[c])
		}
		eps[k] = ep
	}
	tipCode := func(idx, pattern int) byte { return pat.Data[idx][pattern] & 0x0f }

	// Direct every edge away from the root (the pi factor sits at the root
	// only, so the P matrix must be indexed [parent state][child state]).
	// BFS from the root through internal nodes; tips are always children.
	adj := map[int][]int{} // node index -> edge positions
	for k, ep := range eps {
		adj[ep.a] = append(adj[ep.a], k)
		adj[ep.b] = append(adj[ep.b], k)
	}
	visited := map[int]bool{rootIdx: true}
	queue := []int{rootIdx}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, k := range adj[u] {
			ep := &eps[k]
			other := ep.b
			if ep.b == u {
				other = ep.a
			}
			if visited[other] {
				continue // the already-oriented edge back toward the root
			}
			if ep.a != u {
				ep.a, ep.b = ep.b, ep.a // a is always the parent
			}
			visited[other] = true
			if internals[other] {
				queue = append(queue, other)
			}
		}
	}

	logL := 0.0
	assign := make([]int, nInner)
	total := 1
	for i := 0; i < nInner; i++ {
		total *= 4
	}
	for p := 0; p < pat.NumPatterns(); p++ {
		site := 0.0
		for c := 0; c < ncat; c++ {
			catSum := 0.0
			for mask := 0; mask < total; mask++ {
				v := mask
				for i := 0; i < nInner; i++ {
					assign[i] = v & 3
					v >>= 2
				}
				term := m.GTR.Freqs[assign[slot[rootIdx]]]
				for _, ep := range eps {
					var sa, sb int
					aTip := !internals[ep.a]
					bTip := !internals[ep.b]
					if !aTip {
						sa = assign[slot[ep.a]]
					}
					if !bTip {
						sb = assign[slot[ep.b]]
					}
					switch {
					case aTip && bTip:
						t.Fatal("tip-tip edge")
					case aTip:
						// Sum transition into the allowed tip states.
						code := tipCode(ep.a, p)
						s := 0.0
						for j := 0; j < 4; j++ {
							if code&(1<<j) != 0 {
								s += ep.pm[c][sb][j]
							}
						}
						term *= s
					case bTip:
						code := tipCode(ep.b, p)
						s := 0.0
						for j := 0; j < 4; j++ {
							if code&(1<<j) != 0 {
								s += ep.pm[c][sa][j]
							}
						}
						term *= s
					default:
						term *= ep.pm[c][sa][sb]
					}
				}
				catSum += term
			}
			site += catSum
		}
		site /= float64(ncat)
		logL += float64(pat.Weights[p]) * math.Log(site)
	}
	return logL
}

// --- tests ---

func TestFastExpAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		x := -40 + 80*rng.Float64()
		got := FastExp(x)
		want := math.Exp(x)
		if math.Abs(got-want) > 1e-13*want {
			t.Fatalf("FastExp(%g) = %g, want %g (rel err %g)", x, got, want, math.Abs(got-want)/want)
		}
	}
	// Edge behaviour.
	if FastExp(0) != 1 {
		t.Error("FastExp(0) != 1")
	}
	if FastExp(-1000) != 0 {
		t.Error("FastExp(-1000) != 0")
	}
	if !math.IsInf(FastExp(1000), 1) {
		t.Error("FastExp(1000) not +Inf")
	}
	if !math.IsNaN(FastExp(math.NaN())) {
		t.Error("FastExp(NaN) not NaN")
	}
}

func TestEvaluateAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		nTaxa := 4 + trial%2 // 4 or 5 taxa
		pat := randomPatterns(t, rng, nTaxa, 30)
		m := randomModel(t, rng, 4)
		tr := randomTreeFor(t, rng, pat)

		want := bruteForceLogL(t, tr, pat, m)

		eng, err := NewEngine(pat, m, Config{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Evaluate(tr.Tips[0])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-8*math.Abs(want) {
			t.Fatalf("trial %d: engine logL = %.10f, brute force = %.10f", trial, got, want)
		}
	}
}

func TestEvaluateBranchInvariance(t *testing.T) {
	// The log likelihood must be identical at every branch of the tree
	// (time-reversibility), as the paper notes in Section 5.2.
	rng := rand.New(rand.NewSource(21))
	pat := randomPatterns(t, rng, 8, 60)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range tr.Edges() {
		ll, err := eng.Evaluate(e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ll-ref) > 1e-7*math.Abs(ref) {
			t.Fatalf("edge %d: logL %.12f differs from reference %.12f", i, ll, ref)
		}
	}
}

func TestConfigVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pat := randomPatterns(t, rng, 10, 80)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)

	var ref float64
	for i, cfg := range []Config{
		{},
		{IntCond: true},
		{VectorFP: true},
		{SDKExp: true},
		{SDKExp: true, IntCond: true, VectorFP: true},
	} {
		eng, err := NewEngine(pat, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ll, err := eng.Evaluate(tr.Tips[2])
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = ll
			continue
		}
		tol := 1e-12 * math.Abs(ref)
		if cfg.SDKExp {
			tol = 1e-8 * math.Abs(ref)
		}
		if math.Abs(ll-ref) > tol {
			t.Errorf("config %+v: logL = %.12f, want %.12f", cfg, ll, ref)
		}
	}
}

// caterpillarTree builds a maximally deep (ladder) topology, which drives
// partial-vector magnitudes down by roughly a factor of 4 per level — the
// regime where RAxML's 2^-256 scaling threshold actually fires.
func caterpillarTree(t *testing.T, pat *alignment.Patterns, z float64) *phylotree.Tree {
	t.Helper()
	tr, err := phylotree.NewTree(pat.Names)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.InitTriplet(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < pat.NumTaxa; i++ {
		if err := tr.InsertTip(i, tr.Tips[i-1]); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range tr.Edges() {
		e.SetZ(z)
	}
	return tr
}

func TestScalingOnDeepTree(t *testing.T) {
	// A 150-taxon caterpillar with long branches underflows unscaled partial
	// vectors; the engine must trigger scale events and still produce a
	// finite likelihood that matches across branches.
	rng := rand.New(rand.NewSource(41))
	pat := randomPatterns(t, rng, 150, 50)
	tr := caterpillarTree(t, pat, 2.5)
	m := randomModel(t, rng, 4)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ll, err := eng.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(ll, 0) || math.IsNaN(ll) {
		t.Fatalf("logL = %v", ll)
	}
	if eng.Meter.ScaleEvents == 0 {
		t.Error("no scale events on deep long-branch tree")
	}
	if eng.UnderflowSites() != 0 {
		t.Errorf("underflow sites = %d despite scaling", eng.UnderflowSites())
	}
	// Branch invariance still holds with scaling active.
	ll2, err := eng.Evaluate(tr.Tips[149])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll-ll2) > 1e-6*math.Abs(ll) {
		t.Errorf("scaled logL differs across branches: %.10f vs %.10f", ll, ll2)
	}
}

func TestIntCondMatchesScalarCond(t *testing.T) {
	// The integer-cast conditional must make the exact same decisions as the
	// scalar float conditional on real partial-vector data, bit for bit.
	rng := rand.New(rand.NewSource(51))
	pat := randomPatterns(t, rng, 150, 40)
	m := randomModel(t, rng, 4)
	tr := caterpillarTree(t, pat, 2.0)

	scalar, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	intc, err := NewEngine(pat, m, Config{IntCond: true})
	if err != nil {
		t.Fatal(err)
	}
	llS, err := scalar.Evaluate(tr.Tips[1])
	if err != nil {
		t.Fatal(err)
	}
	llI, err := intc.Evaluate(tr.Tips[1])
	if err != nil {
		t.Fatal(err)
	}
	if llS != llI {
		t.Errorf("scalar %.15f != intcond %.15f", llS, llI)
	}
	if scalar.Meter.ScaleEvents != intc.Meter.ScaleEvents {
		t.Errorf("scale events differ: %d vs %d", scalar.Meter.ScaleEvents, intc.Meter.ScaleEvents)
	}
	if scalar.Meter.ScaleEvents == 0 {
		t.Error("test tree produced no scaling; not exercising the conditional")
	}
}

func TestNeedsScalingDirect(t *testing.T) {
	pat := patternsFrom(t,
		[]string{"ACGT", "ACGA", "ACGG"},
		[]string{"a", "b", "c"})
	m := randomModel(t, rand.New(rand.NewSource(3)), 2)
	for _, cfg := range []Config{{}, {IntCond: true}} {
		eng, err := NewEngine(pat, m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		small := make([]float64, 8)
		for i := range small {
			small[i] = MinLikelihood / 2
		}
		if !eng.needsScaling(small) {
			t.Errorf("cfg %+v: all-small vector not flagged", cfg)
		}
		small[3] = 0.5
		if eng.needsScaling(small) {
			t.Errorf("cfg %+v: vector with large entry flagged", cfg)
		}
		zero := make([]float64, 8)
		if !eng.needsScaling(zero) {
			t.Errorf("cfg %+v: zero vector not flagged", cfg)
		}
	}
}

func TestMakeNewzImprovesLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pat := randomPatterns(t, rng, 8, 100)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}

	for i, e := range tr.Edges() {
		before, err := eng.Evaluate(e)
		if err != nil {
			t.Fatal(err)
		}
		zOpt, llOpt, err := eng.MakeNewz(e)
		if err != nil {
			t.Fatal(err)
		}
		if llOpt < before-1e-7*math.Abs(before) {
			t.Fatalf("edge %d: MakeNewz worsened logL: %.8f -> %.8f", i, before, llOpt)
		}
		// The branch actually carries the optimized value.
		if e.Z != zOpt && e.Back.Z != zOpt {
			t.Fatalf("edge %d: optimized z=%g not stored (branch has %g)", i, zOpt, e.Z)
		}
		// Verify against a fresh Evaluate.
		fresh, err := eng.Evaluate(e)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fresh-llOpt) > 1e-6*math.Abs(fresh) {
			t.Fatalf("edge %d: MakeNewz logL %.8f disagrees with Evaluate %.8f", i, llOpt, fresh)
		}
		// Local optimality: nudging the branch either way must not improve.
		z := e.Z
		for _, nz := range []float64{z * 0.9, z * 1.1} {
			e.SetZ(nz)
			ll, err := eng.Evaluate(e)
			if err != nil {
				t.Fatal(err)
			}
			if ll > llOpt+1e-6*math.Abs(llOpt)+1e-9 {
				t.Fatalf("edge %d: perturbed z=%g has better logL %.8f > %.8f", i, nz, ll, llOpt)
			}
		}
		e.SetZ(z)
	}
}

func TestMakeNewzTipBranch(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pat := randomPatterns(t, rng, 5, 80)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimize the branch at a tip (kernel must handle the tip side).
	z, ll, err := eng.MakeNewz(tr.Tips[3])
	if err != nil {
		t.Fatal(err)
	}
	if z < phylotree.MinBranchLength || z > phylotree.MaxBranchLength {
		t.Errorf("z = %g out of bounds", z)
	}
	if math.IsNaN(ll) || math.IsInf(ll, 0) {
		t.Errorf("ll = %v", ll)
	}
}

func TestMeterAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	pat := randomPatterns(t, rng, 6, 40)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Evaluate(tr.Tips[0]); err != nil {
		t.Fatal(err)
	}
	mt := &eng.Meter
	if mt.NewviewCalls == 0 || mt.EvaluateCalls != 1 {
		t.Errorf("call counts: %s", mt)
	}
	if mt.TipTipCalls+mt.TipInnerCalls+mt.InnerInnerCalls != mt.NewviewCalls {
		t.Errorf("specialization counts don't sum: %s", mt)
	}
	if mt.Flops() == 0 || mt.Exps == 0 || mt.Logs == 0 {
		t.Errorf("op counts zero: %s", mt)
	}
	if mt.ScaleChecks == 0 {
		t.Error("no scale checks metered")
	}
	if mt.BigLoopIters != uint64(pat.NumPatterns())*mt.NewviewCalls {
		t.Errorf("big loop iters %d != patterns*newviews %d",
			mt.BigLoopIters, uint64(pat.NumPatterns())*mt.NewviewCalls)
	}
	if mt.BytesStreamed == 0 {
		t.Error("no bytes streamed metered")
	}
	// Meter.Add and Reset.
	var sum Meter
	sum.Add(mt)
	sum.Add(mt)
	if sum.NewviewCalls != 2*mt.NewviewCalls || sum.Flops() != 2*mt.Flops() {
		t.Error("Meter.Add wrong")
	}
	sum.Reset()
	if sum.Flops() != 0 {
		t.Error("Meter.Reset wrong")
	}
	if !strings.Contains(mt.String(), "newview=") {
		t.Error("Meter.String malformed")
	}
}

func TestEngineErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	pat := randomPatterns(t, rng, 4, 10)
	m := randomModel(t, rng, 2)
	if _, err := NewEngine(nil, m, Config{}); err == nil {
		t.Error("nil patterns accepted")
	}
	if _, err := NewEngine(pat, nil, Config{}); err == nil {
		t.Error("nil model accepted")
	}
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	detached := &phylotree.Node{Index: 0}
	if _, err := eng.Evaluate(detached); err == nil {
		t.Error("detached branch accepted by Evaluate")
	}
	if _, _, err := eng.MakeNewz(detached); err == nil {
		t.Error("detached branch accepted by MakeNewz")
	}
}

func TestEvaluateDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	pat := randomPatterns(t, rng, 12, 60)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)
	eng, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := eng.Evaluate(tr.Tips[0])
	b, _ := eng.Evaluate(tr.Tips[0])
	if a != b {
		t.Errorf("repeated Evaluate differs: %.15f vs %.15f", a, b)
	}
}
