package likelihood

import "math"

// batchTile is the pattern-tile width of the batched backend: 32 patterns
// × 4 Gamma categories × 4 states × 8 bytes = 4 KiB per projection tile,
// two tiles live at once — comfortably inside L1 alongside the source
// vectors, the same "operate on a resident block" discipline the paper
// used to fit kernel working sets into the 256 KiB SPE local store.
const batchTile = 32

// tileScratch is one fan-out slot's private tile storage. Slots are
// indexed by the Config.Threads slot of the pattern range being computed,
// so concurrent ranges of one call never share a tile.
type tileScratch struct {
	a, b      []float64 // projection tiles, laid out like lv: [t*ncat*ns + cat*ns + i]
	s, s1, s2 []float64 // per-pattern accumulators (site likelihood / Newton L, L', L'')
}

// batchedBackend restructures the kernels pattern-major over cache-blocked
// tiles with the transition-matrix × partial-vector loops fused: each
// matrix (or exponential) row is hoisted into locals once per category and
// reused across the whole tile, instead of being reloaded for every
// pattern as the scalar loops do. This is the Go analogue of the paper's
// SPU vectorization of the two FP-intensive loops (Section 5.2.5, the
// 36→24 and 44→22 instruction-count reductions): the FLOP count is
// unchanged, the per-pattern load traffic and loop overhead are what drop.
//
// Every accumulation keeps the scalar backend's per-element order
// (category-major, state-ascending, sequential adds), so results are
// bit-identical to scalar — the cross-backend tests assert exact equality
// on partial vectors and log-likelihoods.
//
// The CAT layout delegates to the scalar loops: a per-pattern matrix index
// defeats the shared-matrix hoisting the tile transform is built on, so
// there is nothing to fuse across a tile.
type batchedBackend struct {
	scalar scalarBackend
}

func (batchedBackend) Name() string { return "batched" }

// initCtx sizes one tile per Config.Threads fan-out slot.
func (batchedBackend) initCtx(c *Ctx) {
	e := c.eng
	slots := 1
	if e.Cfg.Threads > slots {
		slots = e.Cfg.Threads
	}
	c.tiles = make([]tileScratch, slots)
	for i := range c.tiles {
		c.tiles[i].a = make([]float64, batchTile*e.ncat*ns)
		c.tiles[i].b = make([]float64, batchTile*e.ncat*ns)
		c.tiles[i].s = make([]float64, batchTile)
		c.tiles[i].s1 = make([]float64, batchTile)
		c.tiles[i].s2 = make([]float64, batchTile)
	}
}

// projectInnerTile projects an inner child's partial vectors through the
// per-category transition matrices for one tile of patterns [lo, hi),
// keeping all 16 matrix entries in locals across the tile — the fused loop
// the scalar path re-derives per pattern.
func projectInnerTile(p, src, out []float64, lo, hi, ncat int) {
	stride := ncat * ns
	for cat := 0; cat < ncat; cat++ {
		pc := p[cat*ns*ns : cat*ns*ns+ns*ns]
		p00, p01, p02, p03 := pc[0], pc[1], pc[2], pc[3]
		p10, p11, p12, p13 := pc[4], pc[5], pc[6], pc[7]
		p20, p21, p22, p23 := pc[8], pc[9], pc[10], pc[11]
		p30, p31, p32, p33 := pc[12], pc[13], pc[14], pc[15]
		co := cat * ns
		for pat := lo; pat < hi; pat++ {
			x := src[pat*stride+co : pat*stride+co+ns]
			o := out[(pat-lo)*stride+co : (pat-lo)*stride+co+ns]
			x0, x1, x2, x3 := x[0], x[1], x[2], x[3]
			o[0] = p00*x0 + p01*x1 + p02*x2 + p03*x3
			o[1] = p10*x0 + p11*x1 + p12*x2 + p13*x3
			o[2] = p20*x0 + p21*x1 + p22*x2 + p23*x3
			o[3] = p30*x0 + p31*x1 + p32*x2 + p33*x3
		}
	}
}

// projectTipTile gathers the precomputed tip projections for one tile of
// patterns: a table copy per (pattern, category), the tile form of RAxML's
// tip-case lookup.
func projectTipTile(tab []float64, data []byte, out []float64, lo, hi, ncat int) {
	stride := ncat * ns
	for cat := 0; cat < ncat; cat++ {
		tb := tab[cat*16*ns : cat*16*ns+16*ns]
		co := cat * ns
		for pat := lo; pat < hi; pat++ {
			code := int(data[pat] & 0x0f)
			t := tb[code*ns : code*ns+ns]
			o := out[(pat-lo)*stride+co : (pat-lo)*stride+co+ns]
			o[0], o[1], o[2], o[3] = t[0], t[1], t[2], t[3]
		}
	}
}

func (b batchedBackend) combineRange(c *Ctx, op *combineOp, pr patRange, slot int) combineStats {
	e := c.eng
	if e.patCat != nil {
		return b.scalar.combineRange(c, op, pr, slot)
	}
	ncat := e.ncat
	stride := ncat * ns
	ts := &c.tiles[slot]

	var st combineStats
	for lo := pr.lo; lo < pr.hi; lo += batchTile {
		hi := lo + batchTile
		if hi > pr.hi {
			hi = pr.hi
		}
		n := uint64(hi - lo)
		if op.qData != nil {
			projectTipTile(c.tipPL, op.qData, ts.a, lo, hi, ncat)
		} else {
			projectInnerTile(c.pLeft, op.qLv, ts.a, lo, hi, ncat)
			st.muls += n * uint64(ncat) * ns * ns
			st.adds += n * uint64(ncat) * ns * (ns - 1)
		}
		if op.rData != nil {
			projectTipTile(c.tipPR, op.rData, ts.b, lo, hi, ncat)
		} else {
			projectInnerTile(c.pRight, op.rLv, ts.b, lo, hi, ncat)
			st.muls += n * uint64(ncat) * ns * ns
			st.adds += n * uint64(ncat) * ns * (ns - 1)
		}
		for pat := lo; pat < hi; pat++ {
			to := (pat - lo) * stride
			ta := ts.a[to : to+stride]
			tb := ts.b[to : to+stride]
			d := op.dst[pat*stride : pat*stride+stride]
			for k := 0; k < stride; k++ {
				d[k] = ta[k] * tb[k]
			}
			st.muls += uint64(stride)

			sc := int32(0)
			if op.qSc != nil {
				sc += op.qSc[pat]
			}
			if op.rSc != nil {
				sc += op.rSc[pat]
			}
			st.scaleChecks++
			if e.needsScalingPure(d) {
				for k := 0; k < stride; k++ {
					d[k] *= TwoTo256
				}
				st.muls += uint64(stride)
				sc++
				st.scaleEvents++
			}
			op.dstScale[pat] = sc
		}
		st.bigIters += n
	}
	return st
}

func (b batchedBackend) evaluateRange(c *Ctx, op *evalOp, pr patRange, slot int) evalPart {
	e := c.eng
	if e.patCat != nil {
		return b.scalar.evaluateRange(c, op, pr, slot)
	}
	ncat := e.ncat
	stride := ncat * ns
	freqs := &e.Mod.GTR.Freqs
	f0, f1, f2, f3 := freqs[0], freqs[1], freqs[2], freqs[3]
	ts := &c.tiles[slot]

	var out evalPart
	for lo := pr.lo; lo < pr.hi; lo += batchTile {
		hi := lo + batchTile
		if hi > pr.hi {
			hi = pr.hi
		}
		n := hi - lo
		if op.qData != nil {
			projectTipTile(c.tipPR, op.qData, ts.a, lo, hi, ncat)
		} else {
			projectInnerTile(c.pLeft, op.qLv, ts.a, lo, hi, ncat)
			out.st.muls += uint64(n) * uint64(ncat) * ns * ns
			out.st.adds += uint64(n) * uint64(ncat) * ns * (ns - 1)
		}

		s := ts.s[:n]
		for j := range s {
			s[j] = 0
		}
		// Sequential adds in category-major, state-ascending order — the
		// exact summation order of the scalar site loop, so the tile pass
		// is bit-identical, not just close.
		for cat := 0; cat < ncat; cat++ {
			co := cat * ns
			for pat := lo; pat < hi; pat++ {
				x := op.pLv[pat*stride+co : pat*stride+co+ns]
				a := ts.a[(pat-lo)*stride+co : (pat-lo)*stride+co+ns]
				v := s[pat-lo]
				v += f0 * x[0] * a[0]
				v += f1 * x[1] * a[1]
				v += f2 * x[2] * a[2]
				v += f3 * x[3] * a[3]
				s[pat-lo] = v
			}
		}
		out.st.muls += uint64(n) * uint64(ncat) * 2 * ns
		out.st.adds += uint64(n) * uint64(ncat) * ns

		for pat := lo; pat < hi; pat++ {
			site := s[pat-lo] * e.invCats
			out.st.muls++
			sc := op.pScale[pat]
			if op.qScale != nil {
				sc += op.qScale[pat]
			}
			if site <= 0 || math.IsNaN(site) {
				out.underflow++
				site = math.SmallestNonzeroFloat64
			}
			siteLog := math.Log(site) + float64(sc)*logMinLik
			if op.perSite != nil {
				op.perSite[pat] = siteLog
			}
			out.sum += float64(e.Pat.Weights[pat]) * siteLog
			out.st.bigIters++
			out.st.muls += 2
			out.st.adds += 2
		}
	}
	return out
}

func (b batchedBackend) sumTableRange(c *Ctx, op *sumOp, pr patRange, slot int) sumPart {
	e := c.eng
	if e.patCat != nil {
		return b.scalar.sumTableRange(c, op, pr, slot)
	}
	g := e.Mod.GTR
	ncat := e.ncat
	stride := ncat * ns
	sumTab := c.sumTab
	v := &g.V
	w := &g.VInv
	fr := &g.Freqs

	var out sumPart
	for pat := pr.lo; pat < pr.hi; pat++ {
		sc := op.pSc[pat]
		if op.qSc != nil {
			sc += op.qSc[pat]
		}
		out.scaleConst += float64(e.Pat.Weights[pat]) * float64(sc) * logMinLik
	}
	for cat := 0; cat < ncat; cat++ {
		co := cat * ns
		for pat := pr.lo; pat < pr.hi; pat++ {
			x := op.pLv[pat*stride+co : pat*stride+co+ns]
			// fx[i] = π_i·x_i once per pattern; the flat 4-term forms below
			// group left-associatively exactly like the scalar += chains.
			fx0 := fr[0] * x[0]
			fx1 := fr[1] * x[1]
			fx2 := fr[2] * x[2]
			fx3 := fr[3] * x[3]
			var y0, y1, y2, y3 float64
			if op.qData != nil {
				tv := &e.tipVec[op.qData[pat]&0x0f]
				y0, y1, y2, y3 = tv[0], tv[1], tv[2], tv[3]
			} else {
				y := op.qLv[pat*stride+co : pat*stride+co+ns]
				y0, y1, y2, y3 = y[0], y[1], y[2], y[3]
			}
			st := sumTab[pat*stride+co : pat*stride+co+ns]
			st[0] = (fx0*v[0][0] + fx1*v[1][0] + fx2*v[2][0] + fx3*v[3][0]) * (w[0][0]*y0 + w[0][1]*y1 + w[0][2]*y2 + w[0][3]*y3)
			st[1] = (fx0*v[0][1] + fx1*v[1][1] + fx2*v[2][1] + fx3*v[3][1]) * (w[1][0]*y0 + w[1][1]*y1 + w[1][2]*y2 + w[1][3]*y3)
			st[2] = (fx0*v[0][2] + fx1*v[1][2] + fx2*v[2][2] + fx3*v[3][2]) * (w[2][0]*y0 + w[2][1]*y1 + w[2][2]*y2 + w[2][3]*y3)
			st[3] = (fx0*v[0][3] + fx1*v[1][3] + fx2*v[2][3] + fx3*v[3][3]) * (w[3][0]*y0 + w[3][1]*y1 + w[3][2]*y2 + w[3][3]*y3)
		}
	}
	np := uint64(pr.hi - pr.lo)
	out.muls += np * uint64(ncat) * ns * (2*ns + ns + 1)
	out.adds += np * uint64(ncat) * ns * 2 * (ns - 1)
	return out
}

func (b batchedBackend) newtonRange(c *Ctx, op *newtonOp, pr patRange, slot int) newtonPart {
	e := c.eng
	if e.patCat != nil {
		return b.scalar.newtonRange(c, op, pr, slot)
	}
	ncat := e.ncat
	stride := ncat * ns
	sumTab := c.sumTab
	ts := &c.tiles[slot]

	var out newtonPart
	for lo := pr.lo; lo < pr.hi; lo += batchTile {
		hi := lo + batchTile
		if hi > pr.hi {
			hi = pr.hi
		}
		n := hi - lo
		l0, l1, l2 := ts.s[:n], ts.s1[:n], ts.s2[:n]
		for j := 0; j < n; j++ {
			l0[j], l1[j], l2[j] = 0, 0, 0
		}
		for cat := 0; cat < ncat; cat++ {
			mb := cat * ns
			e00, e01, e02, e03 := op.e0[mb], op.e0[mb+1], op.e0[mb+2], op.e0[mb+3]
			e10, e11, e12, e13 := op.e1[mb], op.e1[mb+1], op.e1[mb+2], op.e1[mb+3]
			e20, e21, e22, e23 := op.e2[mb], op.e2[mb+1], op.e2[mb+2], op.e2[mb+3]
			co := cat * ns
			for pat := lo; pat < hi; pat++ {
				a := sumTab[pat*stride+co : pat*stride+co+ns]
				a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
				j := pat - lo
				u := l0[j]
				u += a0 * e00
				u += a1 * e01
				u += a2 * e02
				u += a3 * e03
				l0[j] = u
				u = l1[j]
				u += a0 * e10
				u += a1 * e11
				u += a2 * e12
				u += a3 * e13
				l1[j] = u
				u = l2[j]
				u += a0 * e20
				u += a1 * e21
				u += a2 * e22
				u += a3 * e23
				l2[j] = u
			}
		}
		for pat := lo; pat < hi; pat++ {
			j := pat - lo
			L := l0[j] * e.invCats
			L1 := l1[j] * e.invCats
			L2 := l2[j] * e.invCats
			if L < minPositive {
				out.underflow++
				L = minPositive
			}
			w := float64(op.weights[pat])
			out.ll += w * logFn(L)
			out.d1 += w * (L1 / L)
			out.d2 += w * (L2/L - (L1/L)*(L1/L))
			out.logs++
		}
	}
	return out
}
