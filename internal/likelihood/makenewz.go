package likelihood

import (
	"fmt"
	"math"
	"time"

	"raxmlcell/internal/phylotree"
)

// newtonMaxIter bounds the Newton-Raphson iteration count per branch.
const newtonMaxIter = 64

// newtonTol is the convergence tolerance on the branch length.
const newtonTol = 1e-9

// MakeNewz optimizes the length of the branch (p, p.Back) with respect to
// the tree likelihood using Newton-Raphson, the paper's makenewz(). As in
// RAxML it first ensures the partial vectors at both branch ends are
// current (calling newview), then iterates on a per-pattern eigenmode sum
// table: the site likelihood along a branch is
//
//	L(t) = (1/C) Σ_c Σ_k A[pat,c,k] · exp(λ_k r_c t)
//
// so first and second derivatives come from the same table. The optimized
// length is written back to the branch and returned together with the
// log-likelihood at the optimum.
func (e *Engine) MakeNewz(p *phylotree.Node) (float64, float64, error) {
	return e.ctx0.MakeNewz(p)
}

// MakeNewz is the context-scoped form of Engine.MakeNewz. All Newton
// scratch (sum table, λr products, exponential blocks) is per-context, so
// the solver itself never aliases across contexts; note however that it
// recomputes the shared per-node vectors (NewView) and writes the branch
// length back into the shared tree, so concurrent calls on one engine are
// only safe when the caller guarantees the touched regions are disjoint.
// The concurrency-safe scoring path is Views.InsertionScore, which runs
// the same Newton core against private buffers.
func (c *Ctx) MakeNewz(p *phylotree.Node) (float64, float64, error) {
	e := c.eng
	q := p.Back
	if q == nil {
		return 0, 0, fmt.Errorf("likelihood: MakeNewz on detached branch")
	}
	if p.IsTip() && q.IsTip() {
		return 0, 0, fmt.Errorf("likelihood: tip-tip branch")
	}
	if p.IsTip() {
		p, q = q, p
	}
	// After these two calls every valid cached view is oriented toward the
	// branch (p, q): the traversal recomputes exactly the mis-oriented
	// nodes, so the final SetZ below only dirties views the Invalidate
	// walk actually finds stale.
	c.NewView(p)
	c.NewView(q)
	c.meter.MakenewzCalls++
	zEntry := p.Z

	pLv := e.lv[p.Index]
	pScale := e.scale[p.Index]
	var qData []byte
	var qLv []float64
	var qScale []int32
	if q.IsTip() {
		qData = e.Pat.Data[q.Index]
	} else {
		qLv = e.lv[q.Index]
		qScale = e.scale[q.Index]
	}
	scaleConst := c.buildSumTable(pLv, pScale, qData, qLv, qScale)
	bestT, bestLL := c.newtonSolve(p.Z, scaleConst)
	p.SetZ(bestT)
	//lint:ignore floatcmp deliberate bit-exact check: any change to the stored branch length, however small, must invalidate cached views
	if p.Z != zEntry {
		e.Invalidate(p)
	}
	return bestT, bestLL, nil
}

// buildSumTable fills c.sumTab with the eigenmode sum table A[pat][c][k]
// of the branch between an explicit vector (pLv/pSc) and a q side (tip
// codes or vector/scale), returning the t-independent scaling constant.
// The build dispatches to the engine's backend but stays single-range: it
// runs once per branch while newtonReduce runs once per Newton iteration,
// and a serial build keeps the scaling-constant summation order
// independent of Config.Threads.
func (c *Ctx) buildSumTable(pLv []float64, pSc []int32, qData []byte, qLv []float64, qSc []int32) float64 {
	e := c.eng
	c.sumOp = sumOp{pLv: pLv, pSc: pSc, qData: qData, qLv: qLv, qSc: qSc}
	part := e.backend.sumTableRange(c, &c.sumOp, patRange{0, e.npat}, 0)
	c.meter.Muls += part.muls
	c.meter.Adds += part.adds
	return part.scaleConst
}

// newtonSolve runs the Newton-Raphson branch-length iteration on the sum
// table prepared in c.sumTab, starting from z0, and returns the best
// (length, logL + scaleConst) point seen. Shared by MakeNewz and the
// lazy-SPR scorer (newtonOnBranch).
func (c *Ctx) newtonSolve(z0, scaleConst float64) (bestT, bestLL float64) {
	e := c.eng
	var tObs time.Duration
	timed := e.kobs != nil
	if timed {
		tObs = e.know()
	}
	g := e.Mod.GTR

	// lamr[matrix][k] = λ_k · r_c, one block per distinct rate category.
	lamr := c.lamr
	for cat := 0; cat < e.nmat; cat++ {
		for k := 0; k < ns; k++ {
			lamr[cat*ns+k] = g.Lambda[k] * e.Mod.Cats[cat]
		}
	}
	c.meter.Muls += uint64(e.nmat * ns)

	weights := e.Pat.Weights
	// likelihoodAt evaluates logL, dlogL/dt and d2logL/dt2 at t.
	likelihoodAt := func(t float64) (ll, d1, d2 float64) {
		// e0 = exp(λrt), e1 = λr·exp, e2 = (λr)²·exp; context-owned
		// scratch, since this closure runs once per Newton iteration.
		e0, e1, e2 := c.newzE0, c.newzE1, c.newzE2
		for i, lr := range lamr {
			ex := e.expFn(lr * t)
			e0[i] = ex
			e1[i] = lr * ex
			e2[i] = lr * lr * ex
		}
		c.meter.Exps += uint64(e.nmat * ns)
		c.meter.Muls += uint64(3 * e.nmat * ns)
		ll, d1, d2 = c.newtonReduce(e0, e1, e2, weights)
		return ll + scaleConst, d1, d2
	}

	t := z0
	bestT, bestLL = t, math.Inf(-1)
	for iter := 0; iter < newtonMaxIter; iter++ {
		c.meter.NewtonIters++
		ll, d1, d2 := likelihoodAt(t)
		if ll > bestLL {
			bestLL, bestT = ll, t
		}
		var next float64
		if d2 < 0 {
			next = t - d1/d2
		} else {
			// Not locally concave: move along the gradient geometrically.
			if d1 > 0 {
				next = t * 2
			} else {
				next = t / 2
			}
		}
		if next < phylotree.MinBranchLength {
			next = phylotree.MinBranchLength
		}
		if next > phylotree.MaxBranchLength {
			next = phylotree.MaxBranchLength
		}
		if math.Abs(next-t) < newtonTol*(1+t) {
			t = next
			break
		}
		t = next
	}
	// Evaluate at the final t; keep the best seen point (Newton can
	// overshoot on flat likelihood surfaces).
	ll, _, _ := likelihoodAt(t)
	if ll >= bestLL {
		bestLL, bestT = ll, t
	}
	if timed {
		e.kobs.ObserveKernel(OpMakenewz, e.know()-tObs)
	}
	return bestT, bestLL
}
