package likelihood

import (
	"fmt"
	"math"

	"raxmlcell/internal/phylotree"
)

// newtonMaxIter bounds the Newton-Raphson iteration count per branch.
const newtonMaxIter = 64

// newtonTol is the convergence tolerance on the branch length.
const newtonTol = 1e-9

// MakeNewz optimizes the length of the branch (p, p.Back) with respect to
// the tree likelihood using Newton-Raphson, the paper's makenewz(). As in
// RAxML it first ensures the partial vectors at both branch ends are
// current (calling newview), then iterates on a per-pattern eigenmode sum
// table: the site likelihood along a branch is
//
//	L(t) = (1/C) Σ_c Σ_k A[pat,c,k] · exp(λ_k r_c t)
//
// so first and second derivatives come from the same table. The optimized
// length is written back to the branch and returned together with the
// log-likelihood at the optimum.
func (e *Engine) MakeNewz(p *phylotree.Node) (float64, float64, error) {
	return e.ctx0.MakeNewz(p)
}

// MakeNewz is the context-scoped form of Engine.MakeNewz. All Newton
// scratch (sum table, λr products, exponential blocks) is per-context, so
// the solver itself never aliases across contexts; note however that it
// recomputes the shared per-node vectors (NewView) and writes the branch
// length back into the shared tree, so concurrent calls on one engine are
// only safe when the caller guarantees the touched regions are disjoint.
// The concurrency-safe scoring path is Views.InsertionScore, which runs
// the same Newton core against private buffers.
func (c *Ctx) MakeNewz(p *phylotree.Node) (float64, float64, error) {
	e := c.eng
	q := p.Back
	if q == nil {
		return 0, 0, fmt.Errorf("likelihood: MakeNewz on detached branch")
	}
	if p.IsTip() && q.IsTip() {
		return 0, 0, fmt.Errorf("likelihood: tip-tip branch")
	}
	if p.IsTip() {
		p, q = q, p
	}
	// After these two calls every valid cached view is oriented toward the
	// branch (p, q): the traversal recomputes exactly the mis-oriented
	// nodes, so the final SetZ below only dirties views the Invalidate
	// walk actually finds stale.
	c.NewView(p)
	c.NewView(q)
	c.meter.MakenewzCalls++
	zEntry := p.Z

	g := e.Mod.GTR
	ncat := e.ncat

	// Build the sum table A[pat][c][k] and the constant per-pattern scaling
	// offsets (independent of t).
	sumTab := c.sumTab
	scaleConst := 0.0

	pLv := e.lv[p.Index]
	pScale := e.scale[p.Index]
	var qData []byte
	var qLv []float64
	var qScale []int32
	if q.IsTip() {
		qData = e.Pat.Data[q.Index]
	} else {
		qLv = e.lv[q.Index]
		qScale = e.scale[q.Index]
	}

	var muls, adds uint64
	for pat := 0; pat < e.npat; pat++ {
		base := pat * ncat * ns
		sc := pScale[pat]
		if qScale != nil {
			sc += qScale[pat]
		}
		scaleConst += float64(e.Pat.Weights[pat]) * float64(sc) * logMinLik
		for cat := 0; cat < ncat; cat++ {
			x := pLv[base+cat*ns:]
			var y [ns]float64
			if qData != nil {
				y = e.tipVec[qData[pat]&0x0f]
			} else {
				copy(y[:], qLv[base+cat*ns:][:ns])
			}
			for k := 0; k < ns; k++ {
				a := 0.0
				b := 0.0
				for i := 0; i < ns; i++ {
					a += g.Freqs[i] * x[i] * g.V[i][k]
					b += g.VInv[k][i] * y[i]
				}
				sumTab[base+cat*ns+k] = a * b
			}
			muls += ns * (2*ns + ns + 1)
			adds += ns * 2 * (ns - 1)
		}
	}
	c.meter.Muls += muls
	c.meter.Adds += adds

	// lamr[matrix][k] = λ_k · r_c, one block per distinct rate category.
	lamr := c.lamr
	for cat := 0; cat < e.nmat; cat++ {
		for k := 0; k < ns; k++ {
			lamr[cat*ns+k] = g.Lambda[k] * e.Mod.Cats[cat]
		}
	}
	c.meter.Muls += uint64(e.nmat * ns)

	weights := e.Pat.Weights
	// likelihoodAt evaluates logL, dlogL/dt and d2logL/dt2 at t.
	likelihoodAt := func(t float64) (ll, d1, d2 float64) {
		// e0 = exp(λrt), e1 = λr·exp, e2 = (λr)²·exp; context-owned
		// scratch, since this closure runs once per Newton iteration.
		e0, e1, e2 := c.newzE0, c.newzE1, c.newzE2
		for i, lr := range lamr {
			ex := e.expFn(lr * t)
			e0[i] = ex
			e1[i] = lr * ex
			e2[i] = lr * lr * ex
		}
		c.meter.Exps += uint64(e.nmat * ns)
		c.meter.Muls += uint64(3 * e.nmat * ns)
		ll, d1, d2 = c.newtonReduce(sumTab, e0, e1, e2, weights)
		return ll + scaleConst, d1, d2
	}

	t := p.Z
	bestT, bestLL := t, math.Inf(-1)
	for iter := 0; iter < newtonMaxIter; iter++ {
		c.meter.NewtonIters++
		ll, d1, d2 := likelihoodAt(t)
		if ll > bestLL {
			bestLL, bestT = ll, t
		}
		var next float64
		if d2 < 0 {
			next = t - d1/d2
		} else {
			// Not locally concave: move along the gradient geometrically.
			if d1 > 0 {
				next = t * 2
			} else {
				next = t / 2
			}
		}
		if next < phylotree.MinBranchLength {
			next = phylotree.MinBranchLength
		}
		if next > phylotree.MaxBranchLength {
			next = phylotree.MaxBranchLength
		}
		if math.Abs(next-t) < newtonTol*(1+t) {
			t = next
			break
		}
		t = next
	}
	// Evaluate at the final t; keep the best seen point (Newton can
	// overshoot on flat likelihood surfaces).
	ll, _, _ := likelihoodAt(t)
	if ll >= bestLL {
		bestLL, bestT = ll, t
	}
	p.SetZ(bestT)
	//lint:ignore floatcmp deliberate bit-exact check: any change to the stored branch length, however small, must invalidate cached views
	if p.Z != zEntry {
		e.Invalidate(p)
	}
	return bestT, bestLL, nil
}
