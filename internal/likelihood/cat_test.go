package likelihood

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/model"
)

func TestCATSingleCategoryEqualsUniform(t *testing.T) {
	// A CAT model where every pattern sits in one rate-1 category must give
	// exactly the same likelihood as the plain single-category model.
	rng := rand.New(rand.NewSource(301))
	pat := randomPatterns(t, rng, 10, 60)
	m := randomModel(t, rng, 1) // ncat forced below
	gtr := m.GTR
	tr := randomTreeFor(t, rng, pat)

	uni := &model.Model{GTR: gtr, Cats: []float64{1}}
	engUni, err := NewEngine(pat, uni, Config{})
	if err != nil {
		t.Fatal(err)
	}
	llUni, err := engUni.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}

	assign := make([]int, pat.NumPatterns())
	cat, err := model.NewCATModel(gtr, []float64{1}, assign, pat.Weights)
	if err != nil {
		t.Fatal(err)
	}
	engCat, err := NewEngine(pat, cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	llCat, err := engCat.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	if llCat != llUni {
		t.Errorf("CAT single category %.12f != uniform %.12f", llCat, llUni)
	}
}

func TestCATMatchesPerRateDecomposition(t *testing.T) {
	// A 2-category CAT likelihood must equal the sum, over patterns, of the
	// per-site log likelihoods computed by single-rate engines at each
	// pattern's assigned rate.
	rng := rand.New(rand.NewSource(302))
	pat := randomPatterns(t, rng, 8, 50)
	m := randomModel(t, rng, 1)
	gtr := m.GTR
	tr := randomTreeFor(t, rng, pat)

	np := pat.NumPatterns()
	assign := make([]int, np)
	for i := range assign {
		assign[i] = i % 2
	}
	rates := []float64{0.4, 1.9}
	cat, err := model.NewCATModel(gtr, rates, assign, pat.Weights)
	if err != nil {
		t.Fatal(err)
	}
	engCat, err := NewEngine(pat, cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	llCat, err := engCat.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}

	// Reference: per-site logs from two fixed-rate engines using the
	// *normalized* CAT rates.
	want := 0.0
	for ci, rate := range cat.Cats {
		single := &model.Model{GTR: gtr, Cats: []float64{rate}}
		probe, err := NewEngine(pat, single, Config{})
		if err != nil {
			t.Fatal(err)
		}
		perSite, err := probe.PerSiteLogL(tr.Tips[0], nil)
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < np; p++ {
			if assign[p] == ci {
				want += float64(pat.Weights[p]) * perSite[p]
			}
		}
	}
	if math.Abs(llCat-want) > 1e-8*math.Abs(want) {
		t.Errorf("CAT logL %.10f != per-rate decomposition %.10f", llCat, want)
	}
}

func TestCATNormalization(t *testing.T) {
	// NewCATModel normalizes to weighted mean rate 1.
	rng := rand.New(rand.NewSource(303))
	pat := randomPatterns(t, rng, 6, 40)
	gtr := randomModel(t, rng, 1).GTR
	np := pat.NumPatterns()
	assign := make([]int, np)
	for i := range assign {
		assign[i] = i % 3
	}
	cat, err := model.NewCATModel(gtr, []float64{0.1, 1, 5}, assign, pat.Weights)
	if err != nil {
		t.Fatal(err)
	}
	sum, wsum := 0.0, 0.0
	for p, c := range cat.PatCat {
		sum += float64(pat.Weights[p]) * cat.Cats[c]
		wsum += float64(pat.Weights[p])
	}
	if math.Abs(sum/wsum-1) > 1e-12 {
		t.Errorf("weighted mean rate = %g, want 1", sum/wsum)
	}
	if !cat.IsCAT() {
		t.Error("IsCAT false")
	}
}

func TestCATModelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	pat := randomPatterns(t, rng, 5, 20)
	gtr := randomModel(t, rng, 1).GTR
	np := pat.NumPatterns()
	good := make([]int, np)
	if _, err := model.NewCATModel(nil, []float64{1}, good, pat.Weights); err == nil {
		t.Error("nil GTR accepted")
	}
	if _, err := model.NewCATModel(gtr, nil, good, pat.Weights); err == nil {
		t.Error("empty rates accepted")
	}
	if _, err := model.NewCATModel(gtr, []float64{-1}, good, pat.Weights); err == nil {
		t.Error("negative rate accepted")
	}
	bad := make([]int, np)
	bad[0] = 7
	if _, err := model.NewCATModel(gtr, []float64{1}, bad, pat.Weights); err == nil {
		t.Error("out-of-range assignment accepted")
	}
	if _, err := model.NewCATModel(gtr, []float64{1}, good, pat.Weights[:1]); err == nil && np > 1 {
		t.Error("weight length mismatch accepted")
	}
}

func TestCATEngineLayoutGuards(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	pat := randomPatterns(t, rng, 6, 30)
	gtr := randomModel(t, rng, 1).GTR
	np := pat.NumPatterns()
	assign := make([]int, np)
	cat, err := model.NewCATModel(gtr, []float64{0.5, 1.5}, assign, pat.Weights)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(pat, cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Swapping to a Gamma model in place must be rejected.
	gamma, err := model.NewModel(gtr, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetModel(gamma); err == nil {
		t.Error("CAT->Gamma in-place swap accepted")
	}
	// Wrong-length assignment rejected at construction.
	bad, err := model.NewCATModel(gtr, []float64{1, 1.5}, make([]int, 3), []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if np != 3 {
		if _, err := NewEngine(pat, bad, Config{}); err == nil {
			t.Error("mismatched CAT assignment accepted by engine")
		}
	}
}

func TestCATBranchOptimizationWorks(t *testing.T) {
	// MakeNewz under CAT must behave like under Gamma: improve and be
	// locally optimal.
	rng := rand.New(rand.NewSource(306))
	pat := randomPatterns(t, rng, 8, 60)
	gtr := randomModel(t, rng, 1).GTR
	tr := randomTreeFor(t, rng, pat)
	np := pat.NumPatterns()
	assign := make([]int, np)
	for i := range assign {
		assign[i] = i % 4
	}
	cat, err := model.NewCATModel(gtr, []float64{0.2, 0.7, 1.4, 3.0}, assign, pat.Weights)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(pat, cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := tr.Edges()[3]
	before, err := eng.Evaluate(e)
	if err != nil {
		t.Fatal(err)
	}
	_, after, err := eng.MakeNewz(e)
	if err != nil {
		t.Fatal(err)
	}
	if after < before-1e-9 {
		t.Errorf("CAT MakeNewz worsened logL: %.6f -> %.6f", before, after)
	}
	z := e.Z
	for _, nz := range []float64{z * 0.8, z * 1.25} {
		e.SetZ(nz)
		ll, err := eng.Evaluate(e)
		if err != nil {
			t.Fatal(err)
		}
		if ll > after+1e-6*math.Abs(after)+1e-9 {
			t.Errorf("perturbed z beats CAT optimum: %.8f > %.8f", ll, after)
		}
	}
}
