package likelihood

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/model"
)

func TestParallelKernelsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	pat := randomPatterns(t, rng, 14, 600) // enough patterns to trigger fan-out
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)

	serial, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(pat, m, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !par.parallel() {
		t.Fatal("test data does not trigger the parallel path")
	}

	// Partial vectors must be bit-identical: NewView writes are disjoint.
	serial.NewView(tr.Tips[0].Back)
	par.NewView(tr.Tips[0].Back)
	idx := tr.Tips[0].Back.Index
	for i := range serial.lv[idx] {
		if serial.lv[idx][i] != par.lv[idx][i] {
			t.Fatalf("partial vector diverges at %d: %g vs %g", i, serial.lv[idx][i], par.lv[idx][i])
		}
	}

	// Log likelihood agrees to summation-order tolerance.
	llS, err := serial.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	llP, err := par.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(llS-llP) > 1e-9*math.Abs(llS) {
		t.Errorf("parallel logL %.12f != serial %.12f", llP, llS)
	}

	// Branch optimization agrees.
	e := tr.Edges()[4]
	zS, mlS, err := serial.MakeNewz(e)
	if err != nil {
		t.Fatal(err)
	}
	e.SetZ(0.1) // reset
	zP, mlP, err := par.MakeNewz(e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zS-zP) > 1e-6*(1+zS) || math.Abs(mlS-mlP) > 1e-8*math.Abs(mlS) {
		t.Errorf("parallel MakeNewz (%.8f, %.6f) != serial (%.8f, %.6f)", zP, mlP, zS, mlS)
	}

	// Meters agree on the deterministic counters.
	if serial.Meter.NewviewCalls != par.Meter.NewviewCalls ||
		serial.Meter.BigLoopIters != par.Meter.BigLoopIters ||
		serial.Meter.ScaleChecks != par.Meter.ScaleChecks ||
		serial.Meter.Flops() != par.Meter.Flops() {
		t.Errorf("meters diverge:\n serial %s\n parallel %s", serial.Meter.String(), par.Meter.String())
	}
}

func TestParallelCATMatchesSerial(t *testing.T) {
	// The CAT layout and the goroutine fan-out must compose.
	rng := rand.New(rand.NewSource(504))
	pat := randomPatterns(t, rng, 10, 500)
	gtr := randomModel(t, rng, 1).GTR
	tr := randomTreeFor(t, rng, pat)
	np := pat.NumPatterns()
	assign := make([]int, np)
	for i := range assign {
		assign[i] = i % 3
	}
	cat, err := model.NewCATModel(gtr, []float64{0.3, 1, 2.5}, assign, pat.Weights)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NewEngine(pat, cat, Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(pat, cat, Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !par.parallel() {
		t.Skip("not enough patterns to fan out")
	}
	llS, err := serial.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	llP, err := par.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(llS-llP) > 1e-9*math.Abs(llS) {
		t.Errorf("CAT parallel %.12f != serial %.12f", llP, llS)
	}
}

func TestParallelSmallInputStaysSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	pat := randomPatterns(t, rng, 6, 20) // below the fan-out threshold
	m := randomModel(t, rng, 2)
	eng, err := NewEngine(pat, m, Config{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if eng.parallel() {
		t.Error("tiny input fanned out")
	}
	tr := randomTreeFor(t, rng, pat)
	if _, err := eng.Evaluate(tr.Tips[0]); err != nil {
		t.Fatal(err)
	}
}

func TestSplitPatternsCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	pat := randomPatterns(t, rng, 10, 500)
	m := randomModel(t, rng, 2)
	for _, threads := range []int{2, 3, 7, 16} {
		eng, err := NewEngine(pat, m, Config{Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		ranges := eng.splitPatterns()
		covered := 0
		last := 0
		for _, r := range ranges {
			if r.lo != last || r.hi <= r.lo {
				t.Fatalf("threads=%d: bad range %+v (last=%d)", threads, r, last)
			}
			covered += r.hi - r.lo
			last = r.hi
		}
		if covered != eng.npat || last != eng.npat {
			t.Errorf("threads=%d: ranges cover %d of %d", threads, covered, eng.npat)
		}
	}
}
