package likelihood

import (
	"fmt"
	"math"
	"time"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/model"
	"raxmlcell/internal/phylotree"
)

const ns = model.NumStates

// Numerical scaling constants (RAxML's twotothe256/minlikelihood scheme):
// when every entry of a pattern's partial vector drops below MinLikelihood,
// the vector is multiplied by 2^256 and a per-pattern scaling counter is
// incremented; evaluate() folds the counters back in log space.
var (
	TwoTo256      = math.Ldexp(1, 256)
	MinLikelihood = math.Ldexp(1, -256)
	logMinLik     = math.Log(MinLikelihood)
)

// Config selects the kernel variants corresponding to the paper's
// optimization steps. All variants compute the same numerical result; they
// differ in instruction mix (metered) and, for SDKExp, in the exp()
// implementation actually used.
type Config struct {
	SDKExp   bool // Section 5.2.2: SDK numerical exp() instead of libm exp()
	IntCond  bool // Section 5.2.3: integer-cast, vectorized scaling conditional
	VectorFP bool // Section 5.2.5: SIMD packing of the two FP loops (metering)

	// Incremental enables RAxML's x-vector partial-likelihood caching:
	// every internal node remembers which of its three ring orientations
	// its stored vector belongs to, NewView recomputes only the invalid
	// nodes of a traversal descriptor, and branch-length or topology
	// changes mark the minimal dirty set via Invalidate/InvalidateAll.
	// Results are bit-identical to full recomputation; only the number of
	// newview (combine) executions — and thus the metered instruction mix
	// — changes. Leave it off to reproduce the paper's original workload
	// shape (every evaluation recomputes the whole tree, as RAxML's
	// profile on the Cell was measured).
	Incremental bool

	// Threads > 1 parallelizes the per-pattern kernel loops over a
	// goroutine pool — the shared-memory loop-level parallelism of
	// RAxML-OMP that the paper's LLP scheduler maps onto SPEs. Partial
	// vectors are bit-identical to the serial kernels; log-likelihood
	// reductions may differ by floating point summation order. This is the
	// *inner* (loop-level) axis; the *outer* (task-level) axis — wavefront
	// traversal and concurrent candidate scoring — is driven by Pool (see
	// Engine.NewPool and search.Options.Workers).
	Threads int

	// Backend selects the compute backend the kernels' per-pattern inner
	// loops run on: "scalar" (the reference loops, the default) or
	// "batched" (pattern-major cache-blocked tiles with fused
	// transition×partial loops — the Go analogue of the paper's SPU
	// vectorization). See RegisterBackend/Backends; every registered
	// backend must agree with scalar to ≤1e-9 logL. Empty means
	// DefaultBackend.
	Backend string

	// Observer, when set together with Now, receives the elapsed wall time
	// of every kernel entry point (newview combine, makenewz Newton solve,
	// evaluate). Now is the monotonic time source the engine reads around
	// each call — injected rather than time.Now so deterministic harnesses
	// stay in control of the clock. Both must be non-nil for timing to
	// engage; otherwise the kernels run exactly as before, with zero
	// overhead.
	Observer KernelObserver
	Now      func() time.Duration
}

// BackendName resolves the configured backend name, mapping the empty
// default to DefaultBackend.
func (cfg Config) BackendName() string {
	if cfg.Backend == "" {
		return DefaultBackend
	}
	return cfg.Backend
}

// Engine computes likelihoods of trees over one compressed alignment and one
// substitution model. It owns the partial likelihood vectors for every node
// index and a Meter of kernel operations.
//
// By default the engine recomputes partial vectors on demand with a full
// per-call traversal, exactly like the code the paper profiled. With
// Config.Incremental it instead keeps a per-node validity/orientation flag
// (RAxML's "x-vector") and recomputes only the dirty nodes of a traversal
// descriptor; see NewView, Invalidate and AttachTree.
//
// All per-call kernel scratch lives in a Ctx. The engine owns a primary
// context that backs every Engine method, so single-threaded use is
// unchanged; task-level parallelism mints extra contexts via NewCtx/NewPool.
type Engine struct {
	Pat   *alignment.Patterns
	Mod   *model.Model
	Cfg   Config
	Meter Meter

	npat, ncat int // ncat is the per-site storage width (1 under CAT)
	nmat       int // distinct rate categories = transition matrices
	patCat     []int
	invCats    float64     // per-site averaging weight (1 under CAT)
	lv         [][]float64 // [nodeIndex][pat*ncat*ns + cat*ns + state]
	scale      [][]int32   // [nodeIndex][pat] cumulative scaling counts
	tipVec     [16][ns]float64
	expFn      func(float64) float64

	// Incremental-caching state (nil orient slice = caching disabled).
	// orient[idx] is the ring record whose directed view the lv/scale
	// slot of internal node idx currently holds, or nil when the slot is
	// invalid. Record identity doubles as the validity flag: a record
	// pointer from a different tree (or a rewired ring) never compares
	// equal, so stale entries read as invalid.
	orient []*phylotree.Node

	underflowSites uint64

	// backend runs the kernels' per-pattern inner loops (Config.Backend).
	// One stateless value serves every context of the engine.
	backend Backend

	// kobs/know are Config.Observer/Config.Now, cached here so the kernel
	// entry points test one pointer; both nil unless both were configured.
	kobs KernelObserver
	know func() time.Duration

	// ctx0 is the primary kernel context backing the Engine methods; its
	// meter/underflow sinks are the engine's own counters.
	ctx0 *Ctx

	// shared, when non-nil (UseSharedCache), is the epoch-tagged
	// ancestral-vector store serving every worker context; Invalidate and
	// InvalidateAll forward to it so its epoch tags track the tree.
	shared *SharedCache

	// Task-level parallelism state: pool, when non-nil (UsePool), executes
	// NewView traversal descriptors wavefront-parallel. levelOf/levels are
	// the wavefront scheduler's reusable scratch.
	pool    *Pool
	levelOf []int32
	levels  [][]*phylotree.Node
}

// NewEngine allocates an engine for trees over pat's taxa with the given
// model and kernel configuration.
func NewEngine(pat *alignment.Patterns, mod *model.Model, cfg Config) (*Engine, error) {
	if pat == nil || mod == nil {
		return nil, fmt.Errorf("likelihood: nil patterns or model")
	}
	if pat.NumTaxa < 3 {
		return nil, fmt.Errorf("likelihood: need >= 3 taxa, got %d", pat.NumTaxa)
	}
	e := &Engine{
		Pat:  pat,
		Mod:  mod,
		Cfg:  cfg,
		npat: pat.NumPatterns(),
		nmat: mod.NumCats(),
	}
	if mod.IsCAT() {
		if len(mod.PatCat) != e.npat {
			return nil, fmt.Errorf("likelihood: CAT assignment covers %d patterns, alignment has %d",
				len(mod.PatCat), e.npat)
		}
		// CAT stores one category per site; the matrix index comes from the
		// per-pattern assignment and sites are not averaged.
		e.ncat = 1
		e.patCat = mod.PatCat
		e.invCats = 1
	} else {
		e.ncat = mod.NumCats()
		e.invCats = 1 / float64(e.ncat)
	}
	maxIdx := 2*pat.NumTaxa - 2
	if cfg.Incremental {
		e.orient = make([]*phylotree.Node, maxIdx)
	}
	e.lv = make([][]float64, maxIdx)
	e.scale = make([][]int32, maxIdx)
	for i := pat.NumTaxa; i < maxIdx; i++ {
		e.lv[i] = make([]float64, e.npat*e.ncat*ns)
		e.scale[i] = make([]int32, e.npat)
	}
	for code := 0; code < 16; code++ {
		for j := 0; j < ns; j++ {
			if code&(1<<j) != 0 {
				e.tipVec[code][j] = 1
			}
		}
	}
	e.expFn = math.Exp
	if cfg.SDKExp {
		e.expFn = FastExp
	}
	bk, err := newBackend(cfg.Backend)
	if err != nil {
		return nil, err
	}
	e.backend = bk
	if cfg.Observer != nil && cfg.Now != nil {
		e.kobs = cfg.Observer
		e.know = cfg.Now
	}
	e.ctx0 = e.newPrimaryCtx()
	return e, nil
}

// Backend reports the name of the compute backend the engine runs on.
func (e *Engine) Backend() string { return e.backend.Name() }

// matIdx maps a pattern and storage-category slot to the transition-matrix
// index: the identity for Gamma, the per-pattern assignment for CAT.
func (e *Engine) matIdx(pat, c int) int {
	if e.patCat != nil {
		return e.patCat[pat]
	}
	return c
}

// SetModel swaps the substitution model (e.g. during Gamma shape or GTR
// rate optimization). The rate-heterogeneity layout (Gamma vs CAT, category
// count) must match the engine's buffers; switching layouts requires a new
// engine.
func (e *Engine) SetModel(mod *model.Model) error {
	if mod == nil {
		return fmt.Errorf("likelihood: nil model")
	}
	if mod.NumCats() != e.nmat {
		return fmt.Errorf("likelihood: category count %d != engine's %d", mod.NumCats(), e.nmat)
	}
	if mod.IsCAT() != (e.patCat != nil) {
		return fmt.Errorf("likelihood: cannot switch between Gamma and CAT layouts in place")
	}
	if mod.IsCAT() {
		e.patCat = mod.PatCat
	}
	e.Mod = mod
	// Every partial vector depends on the transition matrices, so a model
	// swap dirties the whole cache.
	e.InvalidateAll()
	return nil
}

// SetWeights swaps the per-pattern weights (bootstrap replicates share
// pattern data and only differ in weights). The weight vector length must
// match the pattern count. Cached partial vectors stay valid: weights enter
// only the evaluate/makenewz reductions, never the vectors themselves.
func (e *Engine) SetWeights(weights []int) error {
	p, err := e.Pat.WithWeights(weights)
	if err != nil {
		return fmt.Errorf("likelihood: %w", err)
	}
	e.Pat = p
	return nil
}

// UnderflowSites reports how many site-likelihood evaluations had to be
// clamped at the smallest representable magnitude (should stay 0 when
// scaling works).
func (e *Engine) UnderflowSites() uint64 { return e.underflowSites }

// NewView makes the partial likelihood vector behind the internal ring
// record p current — the conditional likelihood of the subtree containing
// p's two other ring members, exactly like the paper's newview() (which
// "calls itself recursively when the two children are not tips"). Tips need
// no computation.
//
// The work is organized as a traversal descriptor: a postorder list of the
// ring records whose views must actually be recomputed. Without
// Config.Incremental the descriptor covers every internal node behind p
// (full recomputation, the paper's measured behaviour); with it, the
// descent stops at nodes whose cached vector is valid in the needed
// orientation, so only the dirty path is recomputed. With a pool attached
// (UsePool) the descriptor executes wavefront-parallel by dependency level.
func (e *Engine) NewView(p *phylotree.Node) { e.ctx0.NewView(p) }

// Invalidate marks the minimal dirty set after a change to the branch
// (p, p.Back): every cached view whose subtree contains that branch — i.e.
// every view not oriented toward it — is dropped. Views oriented toward the
// branch exclude it by construction and stay valid, which is what makes
// branch smoothing O(changed path) instead of O(taxa). The walk is pure
// pointer chasing (no kernel work) and a no-op without Config.Incremental.
//
// Callers that change a branch length directly via SetZ (rather than
// through MakeNewz, which invalidates itself) must call this; topology
// operations on a Tree wired up with AttachTree invalidate automatically.
func (e *Engine) Invalidate(p *phylotree.Node) {
	if e.orient == nil && e.shared == nil {
		return
	}
	q := p.Back
	if q == nil {
		// Detached record: no branch to orient against, drop everything.
		e.InvalidateAll()
		return
	}
	if e.shared != nil {
		e.shared.invalidate(p)
	}
	if e.orient != nil {
		e.invalidateToward(p)
		e.invalidateToward(q)
	}
}

// invalidateToward walks the component behind record a, clearing every
// cached view not oriented at the record facing the changed branch (a
// itself at this ring, the corresponding Back records deeper down).
func (e *Engine) invalidateToward(a *phylotree.Node) {
	if a.IsTip() {
		return
	}
	if o := e.orient[a.Index]; o != nil && o != a {
		e.orient[a.Index] = nil
	}
	if b := a.Next.Back; b != nil {
		e.invalidateToward(b)
	}
	if b := a.Next.Next.Back; b != nil {
		e.invalidateToward(b)
	}
}

// InvalidateAll drops every cached partial vector; the next evaluation
// recomputes the full tree. Model swaps and cross-tree reuse call this.
func (e *Engine) InvalidateAll() {
	if e.shared != nil {
		e.shared.InvalidateAll()
	}
	for i := range e.orient {
		e.orient[i] = nil
	}
}

// AttachTree wires the engine's caches to the tree's branch-change hooks,
// so Prune/Regraft/Undo/InsertTip/RemoveTip invalidate the affected views
// automatically, and clears the caches (the tree may have been mutated
// before attachment). The hook reads the engine's cache state at call time,
// so it also covers a shared ancestral-vector store installed *after*
// attachment (the search attaches first, then installs the store); without
// Config.Incremental and without a store the hook is a cheap no-op.
// Direct SetZ calls bypass the hooks — follow them with Invalidate.
func (e *Engine) AttachTree(tr *phylotree.Tree) {
	tr.OnBranchChange(e.Invalidate)
	e.InvalidateAll()
}

// needsScaling implements the 8-condition check
// if (ABS(x3->a) < ml && ABS(x3->c) < ml && ABS(x3->g) < ml && ABS(x3->t) < ml)
// generalized over rate categories, in one of two variants:
//
// Scalar (paper's original): float ABS + float compare with early exit —
// branchy and mispredict-prone on the SPE.
//
// IntCond (Section 5.2.3): sign-bit masking via the raw IEEE-754 bits and
// unsigned integer comparison (valid because lexicographic ordering of IEEE
// floats matches integer ordering for non-negative values), combined
// branchlessly and tested once.
func (e *Engine) needsScaling(v []float64) bool {
	e.Meter.ScaleChecks++
	return e.needsScalingPure(v)
}

// needsScalingPure is the check without meter side effects, safe for
// concurrent use by the parallel kernels (callers count checks themselves).
func (e *Engine) needsScalingPure(v []float64) bool {
	if e.Cfg.IntCond {
		limit := math.Float64bits(MinLikelihood)
		const signMask = 1<<63 - 1
		all := uint64(1)
		for _, x := range v {
			bits := math.Float64bits(x) & signMask // ABS via bitwise AND
			var below uint64
			if bits < limit {
				below = 1
			}
			all &= below
		}
		return all == 1
	}
	for _, x := range v {
		if !(math.Abs(x) < MinLikelihood) {
			return false
		}
	}
	return true
}

// Evaluate computes the log-likelihood of the tree across the branch
// (p, p.Back), recomputing the partial vectors it needs. This is the
// paper's evaluate(): a weighted sum over the partial likelihood vector
// entries with the scaling counters folded back in log space.
func (e *Engine) Evaluate(p *phylotree.Node) (float64, error) {
	return e.ctx0.evaluate(p, nil)
}

// PerSiteLogL computes the per-pattern log likelihoods (unweighted) across
// the branch (p, p.Back), filling dst (allocated if nil or short). The CAT
// rate-fitting machinery uses these to pick each site's best rate category.
func (e *Engine) PerSiteLogL(p *phylotree.Node, dst []float64) ([]float64, error) {
	if cap(dst) < e.npat {
		dst = make([]float64, e.npat)
	}
	dst = dst[:e.npat]
	if _, err := e.ctx0.evaluate(p, dst); err != nil {
		return nil, err
	}
	return dst, nil
}
