package likelihood

import (
	"fmt"

	"raxmlcell/internal/phylotree"
)

// Ctx is one kernel execution context: all the per-call scratch the hot
// kernels need (transition-matrix panels, tip-projection tables, Newton sum
// tables and exponential blocks, traversal descriptors, Views buffer pools)
// plus the meter/underflow sinks the kernels accumulate into.
//
// The engine owns a primary context whose sinks are Engine.Meter and the
// engine's underflow counter, so the public Engine API behaves exactly as
// before. Engine.NewCtx mints additional worker contexts for task-level
// parallelism (concurrent SPR candidate scoring, wavefront traversal
// execution); each accumulates into private counters that Pool merges back
// deterministically after every fan-out. Two goroutines may run kernels
// concurrently iff each owns its own Ctx: the engine state they share
// (patterns, model, tip vectors, exp function) is read-only, and the
// shared per-node lv/scale/orient tables are only touched by the wavefront
// executor, which guarantees disjoint writes within a dependency level.
type Ctx struct {
	eng *Engine

	// meter/underflow are the accumulation sinks: the engine's own
	// counters for the primary context, the private fields below for pool
	// workers (merged in worker order by Pool.Run, see mergeInto).
	meter     *Meter
	underflow *uint64

	ownMeter     Meter
	ownUnderflow uint64

	// Per-call scratch, reused across invocations.
	pLeft, pRight []float64 // transition matrices [cat*ns*ns + i*ns + j]
	tipPL, tipPR  []float64 // tip projections [cat*16*ns + code*ns + i]

	// Newton-Raphson scratch shared by MakeNewz and the lazy-SPR scorer:
	// the per-pattern eigenmode sum table, λ_k·r_c products, and the
	// exp(λrt) / derivative blocks rebuilt every Newton iteration. Living
	// on the context (not the engine, where PR 2 hoisted them) keeps
	// concurrent Newton solves from aliasing each other's buffers.
	sumTab                 []float64
	lamr                   []float64
	newzE0, newzE1, newzE2 []float64

	trav []*phylotree.Node // traversal-descriptor scratch

	// Buffer pools for Views (lazy-SPR directed-vector caches).
	lvPool [][]float64
	scPool [][]int32

	// Backend operand blocks, stored on the context so passing their
	// address through the Backend interface never escapes into a per-call
	// heap allocation. One of each suffices: a context runs at most one
	// kernel call at a time, and the Threads fan-out shares the (read-only)
	// operands across its ranges.
	combOp combineOp
	evalOp evalOp
	sumOp  sumOp
	newtOp newtonOp

	// tiles is backend-private scratch (sized by Backend.initCtx), one
	// entry per Threads fan-out slot so concurrent ranges never alias.
	tiles []tileScratch
}

// NewCtx returns a fresh worker context over the engine. Its kernel
// counters accumulate privately until merged into the engine (Pool does
// this after every fan-out); use the Engine methods directly when no
// task-level concurrency is involved.
func (e *Engine) NewCtx() *Ctx {
	c := &Ctx{eng: e}
	c.meter = &c.ownMeter
	c.underflow = &c.ownUnderflow
	c.alloc()
	return c
}

// newPrimaryCtx builds the engine-owned context whose counters are the
// engine's public Meter and underflow total.
func (e *Engine) newPrimaryCtx() *Ctx {
	c := &Ctx{eng: e}
	c.meter = &e.Meter
	c.underflow = &e.underflowSites
	c.alloc()
	return c
}

func (c *Ctx) alloc() {
	e := c.eng
	c.pLeft = make([]float64, e.nmat*ns*ns)
	c.pRight = make([]float64, e.nmat*ns*ns)
	c.tipPL = make([]float64, e.nmat*16*ns)
	c.tipPR = make([]float64, e.nmat*16*ns)
	c.sumTab = make([]float64, e.npat*e.ncat*ns)
	c.lamr = make([]float64, e.nmat*ns)
	c.newzE0 = make([]float64, e.nmat*ns)
	c.newzE1 = make([]float64, e.nmat*ns)
	c.newzE2 = make([]float64, e.nmat*ns)
	e.backend.initCtx(c)
}

// Engine returns the engine this context runs kernels for.
func (c *Ctx) Engine() *Engine { return c.eng }

// mergeInto folds the context's private counters into the engine and
// resets them. Pool.Run calls it in worker order after every fan-out;
// uint64 addition commutes, so the merged totals do not depend on how the
// scheduler interleaved the workers.
func (c *Ctx) mergeInto(e *Engine) {
	e.Meter.Add(&c.ownMeter)
	e.underflowSites += c.ownUnderflow
	c.ownMeter.Reset()
	c.ownUnderflow = 0
}

// transitionMatrices fills dst (layout [cat][i][j]) with P(z·rate_c) for
// every rate category. This is the paper's "first loop" (4-25 iterations,
// 36 FP ops each) and the home of the exp() calls that dominated the naive
// SPE port.
func (c *Ctx) transitionMatrices(z float64, dst []float64) {
	e := c.eng
	g := e.Mod.GTR
	for cat := 0; cat < e.nmat; cat++ {
		tr := z * e.Mod.Cats[cat]
		var expl [ns]float64
		for k := 0; k < ns; k++ {
			expl[k] = e.expFn(g.Lambda[k] * tr)
		}
		c.meter.Exps += ns
		c.meter.Muls += ns // lambda*tr
		base := cat * ns * ns
		for i := 0; i < ns; i++ {
			for j := 0; j < ns; j++ {
				s := 0.0
				for k := 0; k < ns; k++ {
					s += g.V[i][k] * expl[k] * g.VInv[k][j]
				}
				if s < 0 {
					s = 0
				}
				dst[base+i*ns+j] = s
			}
		}
		c.meter.Muls += ns * ns * 2 * ns
		c.meter.Adds += ns * ns * (ns - 1)
		c.meter.SmallLoopIters++
	}
}

// tipProjection fills dst (layout [cat][code][i]) with P·tipvec for all 16
// ambiguity codes: the RAxML tip-case specialization that replaces a full
// per-pattern matrix-vector product by a table lookup.
func (c *Ctx) tipProjection(p []float64, dst []float64) {
	e := c.eng
	for cat := 0; cat < e.nmat; cat++ {
		pc := p[cat*ns*ns:]
		for code := 0; code < 16; code++ {
			tv := &e.tipVec[code]
			for i := 0; i < ns; i++ {
				s := 0.0
				for j := 0; j < ns; j++ {
					s += pc[i*ns+j] * tv[j]
				}
				dst[cat*16*ns+code*ns+i] = s
			}
		}
	}
	c.meter.Muls += uint64(e.nmat * 16 * ns * ns)
	c.meter.Adds += uint64(e.nmat * 16 * ns * (ns - 1))
}

// NewView makes the partial likelihood vector behind the internal ring
// record p current; see Engine.NewView for semantics. On the engine's
// primary context with a pool attached (Engine.UsePool), the traversal
// descriptor executes wavefront-parallel: the descriptor is grouped into
// dependency levels and each level's independent computeView calls fan out
// over the pool's worker contexts.
func (c *Ctx) NewView(p *phylotree.Node) {
	if p.IsTip() {
		return
	}
	c.trav = c.appendTraversal(c.trav[:0], p)
	e := c.eng
	if c == e.ctx0 && e.pool != nil && len(c.trav) >= wavefrontMinNodes {
		e.pool.wavefront(c.trav)
		return
	}
	for _, nd := range c.trav {
		c.computeView(nd)
	}
}

// appendTraversal builds the traversal descriptor rooted at p: the
// postorder (children before parents) list of ring records whose views are
// missing or cached under a different orientation.
func (c *Ctx) appendTraversal(steps []*phylotree.Node, p *phylotree.Node) []*phylotree.Node {
	if p.IsTip() {
		return steps
	}
	e := c.eng
	if e.orient != nil && e.orient[p.Index] == p {
		c.meter.CacheHits++
		return steps
	}
	steps = c.appendTraversal(steps, p.Next.Back)
	steps = c.appendTraversal(steps, p.Next.Next.Back)
	return append(steps, p)
}

// computeView executes one descriptor entry: combine the two child vectors
// of ring record p into p's slot and record the orientation. The wavefront
// executor calls this concurrently from several contexts, which is safe
// because entries of one dependency level write disjoint node slots and
// only read slots finished in earlier levels.
func (c *Ctx) computeView(p *phylotree.Node) {
	e := c.eng
	q := p.Next.Back
	r := p.Next.Next.Back
	var qLv, rLv []float64
	var qScale, rScale []int32
	if !q.IsTip() {
		qLv, qScale = e.lv[q.Index], e.scale[q.Index]
	}
	if !r.IsTip() {
		rLv, rScale = e.lv[r.Index], e.scale[r.Index]
	}
	c.combine(q, p.Next.Z, qLv, qScale, r, p.Next.Next.Z, rLv, rScale,
		e.lv[p.Index], e.scale[p.Index])
	if e.orient != nil {
		e.orient[p.Index] = p
	}
}

// evaluate computes the log-likelihood of the tree across the branch
// (p, p.Back), optionally filling perSite with per-pattern logs. It is a
// thin timing shell over evaluateKernel so the kernel body keeps its early
// error returns without threading the observer through each of them.
func (c *Ctx) evaluate(p *phylotree.Node, perSite []float64) (float64, error) {
	e := c.eng
	if e.kobs == nil {
		return c.evaluateKernel(p, perSite)
	}
	t0 := e.know()
	logL, err := c.evaluateKernel(p, perSite)
	e.kobs.ObserveKernel(OpEvaluate, e.know()-t0)
	return logL, err
}

// evaluateKernel is the evaluate body (see evaluate).
func (c *Ctx) evaluateKernel(p *phylotree.Node, perSite []float64) (float64, error) {
	e := c.eng
	q := p.Back
	if q == nil {
		return 0, fmt.Errorf("likelihood: Evaluate on detached branch")
	}
	if p.IsTip() && q.IsTip() {
		return 0, fmt.Errorf("likelihood: tip-tip branch cannot exist in an unrooted tree with >= 3 taxa")
	}
	// Orient so that q is the (possibly) tip side.
	if p.IsTip() {
		p, q = q, p
	}
	c.NewView(p)
	c.NewView(q)
	c.meter.EvaluateCalls++

	c.transitionMatrices(p.Z, c.pLeft)

	pLv := e.lv[p.Index]
	pScale := e.scale[p.Index]
	var qData []byte
	var qLv []float64
	var qScale []int32
	if q.IsTip() {
		qData = e.Pat.Data[q.Index]
		c.tipProjection(c.pLeft, c.tipPR)
	} else {
		qLv = e.lv[q.Index]
		qScale = e.scale[q.Index]
	}

	c.evalOp = evalOp{pLv: pLv, pScale: pScale, qData: qData, qLv: qLv, qScale: qScale, perSite: perSite}
	op := &c.evalOp
	bk := e.backend

	logL := 0.0
	var total combineStats
	var underflow uint64
	if e.parallel() {
		ranges := e.splitPatterns()
		parts := make([]evalPart, len(ranges))
		e.runParallel(ranges, func(pr patRange, slot int) {
			parts[slot] = bk.evaluateRange(c, op, pr, slot)
		})
		for i := range parts {
			logL += parts[i].sum
			total.add(parts[i].st)
			underflow += parts[i].underflow
		}
	} else {
		part := bk.evaluateRange(c, op, patRange{0, e.npat}, 0)
		logL, total, underflow = part.sum, part.st, part.underflow
	}
	c.meter.Muls += total.muls
	c.meter.Adds += total.adds
	c.meter.Logs += total.bigIters
	*c.underflow += underflow
	return logL, nil
}
