package likelihood

import "math"

// scalarBackend is the reference implementation of the Backend contract:
// the pattern-at-a-time loops the engine has always run, moved verbatim so
// every other backend has a bit-exact oracle. It matches the shape the
// paper profiled on the PPE before restructuring — one pattern's full
// category block per iteration, transition-matrix entries reloaded per
// pattern.
type scalarBackend struct{}

func (scalarBackend) Name() string { return "scalar" }

// initCtx is a no-op: the scalar loops run entirely on the shared Ctx
// scratch.
func (scalarBackend) initCtx(*Ctx) {}

func (scalarBackend) combineRange(c *Ctx, op *combineOp, pr patRange, _ int) combineStats {
	e := c.eng
	ncat := e.ncat
	qData, rData := op.qData, op.rData
	qLv, rLv := op.qLv, op.rLv
	qSc, rSc := op.qSc, op.rSc
	dst, dstScale := op.dst, op.dstScale

	var st combineStats
	for pat := pr.lo; pat < pr.hi; pat++ {
		base := pat * ncat * ns
		for cat := 0; cat < ncat; cat++ {
			mi := e.matIdx(pat, cat)
			var left, right [ns]float64
			if qData != nil {
				code := qData[pat] & 0x0f
				copy(left[:], c.tipPL[mi*16*ns+int(code)*ns:][:ns])
			} else {
				pc := c.pLeft[mi*ns*ns:]
				x := qLv[base+cat*ns:]
				for i := 0; i < ns; i++ {
					left[i] = pc[i*ns]*x[0] + pc[i*ns+1]*x[1] + pc[i*ns+2]*x[2] + pc[i*ns+3]*x[3]
				}
				st.muls += ns * ns
				st.adds += ns * (ns - 1)
			}
			if rData != nil {
				code := rData[pat] & 0x0f
				copy(right[:], c.tipPR[mi*16*ns+int(code)*ns:][:ns])
			} else {
				pc := c.pRight[mi*ns*ns:]
				x := rLv[base+cat*ns:]
				for i := 0; i < ns; i++ {
					right[i] = pc[i*ns]*x[0] + pc[i*ns+1]*x[1] + pc[i*ns+2]*x[2] + pc[i*ns+3]*x[3]
				}
				st.muls += ns * ns
				st.adds += ns * (ns - 1)
			}
			for i := 0; i < ns; i++ {
				dst[base+cat*ns+i] = left[i] * right[i]
			}
			st.muls += ns
		}
		st.bigIters++

		sc := int32(0)
		if qSc != nil {
			sc += qSc[pat]
		}
		if rSc != nil {
			sc += rSc[pat]
		}
		st.scaleChecks++
		if e.needsScalingPure(dst[base : base+ncat*ns]) {
			for k := base; k < base+ncat*ns; k++ {
				dst[k] *= TwoTo256
			}
			st.muls += uint64(ncat * ns)
			sc++
			st.scaleEvents++
		}
		dstScale[pat] = sc
	}
	return st
}

func (scalarBackend) evaluateRange(c *Ctx, op *evalOp, pr patRange, _ int) evalPart {
	e := c.eng
	ncat := e.ncat
	freqs := &e.Mod.GTR.Freqs
	pLv, pScale := op.pLv, op.pScale
	qData, qLv, qScale := op.qData, op.qLv, op.qScale
	perSite := op.perSite

	var out evalPart
	for pat := pr.lo; pat < pr.hi; pat++ {
		base := pat * ncat * ns
		site := 0.0
		for cat := 0; cat < ncat; cat++ {
			mi := e.matIdx(pat, cat)
			x := pLv[base+cat*ns:]
			var proj [ns]float64
			if qData != nil {
				code := qData[pat] & 0x0f
				copy(proj[:], c.tipPR[mi*16*ns+int(code)*ns:][:ns])
			} else {
				pc := c.pLeft[mi*ns*ns:]
				y := qLv[base+cat*ns:]
				for i := 0; i < ns; i++ {
					proj[i] = pc[i*ns]*y[0] + pc[i*ns+1]*y[1] + pc[i*ns+2]*y[2] + pc[i*ns+3]*y[3]
				}
				out.st.muls += ns * ns
				out.st.adds += ns * (ns - 1)
			}
			for i := 0; i < ns; i++ {
				site += freqs[i] * x[i] * proj[i]
			}
			out.st.muls += 2 * ns
			out.st.adds += ns
		}
		site *= e.invCats
		out.st.muls++
		sc := pScale[pat]
		if qScale != nil {
			sc += qScale[pat]
		}
		if site <= 0 || math.IsNaN(site) {
			out.underflow++
			site = math.SmallestNonzeroFloat64
		}
		siteLog := math.Log(site) + float64(sc)*logMinLik
		if perSite != nil {
			perSite[pat] = siteLog
		}
		out.sum += float64(e.Pat.Weights[pat]) * siteLog
		out.st.bigIters++ // doubles as the per-pattern log count here
		out.st.muls += 2
		out.st.adds += 2
	}
	return out
}

func (scalarBackend) sumTableRange(c *Ctx, op *sumOp, pr patRange, _ int) sumPart {
	e := c.eng
	g := e.Mod.GTR
	ncat := e.ncat
	sumTab := c.sumTab
	pLv, pSc := op.pLv, op.pSc
	qData, qLv, qSc := op.qData, op.qLv, op.qSc

	var out sumPart
	for pat := pr.lo; pat < pr.hi; pat++ {
		base := pat * ncat * ns
		sc := pSc[pat]
		if qSc != nil {
			sc += qSc[pat]
		}
		out.scaleConst += float64(e.Pat.Weights[pat]) * float64(sc) * logMinLik
		for cat := 0; cat < ncat; cat++ {
			x := pLv[base+cat*ns:]
			var y [ns]float64
			if qData != nil {
				y = e.tipVec[qData[pat]&0x0f]
			} else {
				copy(y[:], qLv[base+cat*ns:][:ns])
			}
			for k := 0; k < ns; k++ {
				a := 0.0
				b := 0.0
				for i := 0; i < ns; i++ {
					a += g.Freqs[i] * x[i] * g.V[i][k]
					b += g.VInv[k][i] * y[i]
				}
				sumTab[base+cat*ns+k] = a * b
			}
			out.muls += ns * (2*ns + ns + 1)
			out.adds += ns * 2 * (ns - 1)
		}
	}
	return out
}

func (scalarBackend) newtonRange(c *Ctx, op *newtonOp, pr patRange, _ int) newtonPart {
	e := c.eng
	ncat := e.ncat
	sumTab := c.sumTab
	e0, e1, e2 := op.e0, op.e1, op.e2
	weights := op.weights

	var out newtonPart
	for pat := pr.lo; pat < pr.hi; pat++ {
		base := pat * ncat * ns
		var L, L1, L2 float64
		for cc := 0; cc < ncat; cc++ {
			mb := e.matIdx(pat, cc) * ns
			for k := 0; k < ns; k++ {
				a := sumTab[base+cc*ns+k]
				L += a * e0[mb+k]
				L1 += a * e1[mb+k]
				L2 += a * e2[mb+k]
			}
		}
		L *= e.invCats
		L1 *= e.invCats
		L2 *= e.invCats
		if L < minPositive {
			out.underflow++
			L = minPositive
		}
		w := float64(weights[pat])
		out.ll += w * logFn(L)
		out.d1 += w * (L1 / L)
		out.d2 += w * (L2/L - (L1/L)*(L1/L))
		out.logs++
	}
	return out
}
