package likelihood

import (
	"sync"
	"sync/atomic"

	"raxmlcell/internal/phylotree"
)

// wavefrontMinNodes is the smallest traversal-descriptor length worth
// scheduling by dependency level instead of executing serially — short
// descriptors (the common incremental-cache case) are path-shaped and have
// no width to exploit.
const wavefrontMinNodes = 4

// wavefrontMinWidth is the smallest dependency-level width worth fanning
// out; narrower levels run on the primary context.
const wavefrontMinWidth = 2

// Pool is a fixed set of worker kernel contexts: the task-level parallelism
// axis of the engine, orthogonal to Config.Threads (which splits the
// per-pattern loops *inside* one kernel call). It corresponds to the
// paper's EDTLP/MGPS schedulers dispatching independent likelihood tasks to
// different SPEs — here, independent SPR insertion candidates (see
// package search) and independent computeView calls of one traversal
// dependency level (see Engine.UsePool).
//
// Determinism: Run partitions tasks into contiguous per-worker blocks that
// depend only on (task count, worker count) — there is no work stealing —
// and merges worker meters into the engine in worker order after every
// fan-out, so per-run Meter totals are reproducible at a fixed seed
// regardless of goroutine scheduling.
type Pool struct {
	eng     *Engine
	ctxs    []*Ctx
	busy    atomic.Int64
	running atomic.Bool

	// peakBusy is the high-water busy-worker count since NewPool — the
	// measured occupancy that AutoWorkersFrom-style fan-out sizing reads
	// back (search.pool_busy_peak).
	peakBusy atomic.Int64

	// workerMeters[w] accumulates worker w's kernel counters across
	// fan-outs, snapshotted in Run before the per-fan-out merge resets the
	// context. Per-worker attribution of shared-cache work (who computed,
	// who hit) depends on goroutine scheduling; only the sum across workers
	// is deterministic.
	workerMeters []Meter

	// OnOccupancy, when non-nil, observes the busy-worker count at every
	// transition — the feed behind the search.pool_busy gauge. It is
	// called concurrently and must be safe for that.
	OnOccupancy func(busy, workers int)
}

// NewPool returns a pool of n worker contexts over the engine (n is
// clamped to >= 1). The pooled resource is the per-worker kernel scratch;
// goroutines themselves are cheap and spawned per fan-out.
func (e *Engine) NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{eng: e, ctxs: make([]*Ctx, n), workerMeters: make([]Meter, n)}
	for i := range p.ctxs {
		p.ctxs[i] = e.NewCtx()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.ctxs) }

// Ctx returns worker i's kernel context, e.g. to bind a per-worker Views.
func (p *Pool) Ctx(i int) *Ctx { return p.ctxs[i] }

// WorkerMeter returns worker i's accumulated kernel counters across every
// fan-out so far: the per-worker attribution of newview/shared-cache work.
// Which worker performed which share is scheduling-dependent under the
// shared cache's single-flight; the sum over all workers equals the
// pool-attributed part of Engine.Meter and is deterministic.
func (p *Pool) WorkerMeter(i int) Meter { return p.workerMeters[i] }

// PeakBusy returns the high-water concurrently-busy worker count observed
// since the pool was created — the measured occupancy behind
// occupancy-sized fan-out (search.AutoWorkersFrom).
func (p *Pool) PeakBusy() int { return int(p.peakBusy.Load()) }

// UsePool installs (or, with nil, removes) the pool as the engine's
// wavefront executor: NewView on the engine groups its traversal
// descriptor into dependency levels and runs each level's independent
// computeView calls on the pool. The pool must belong to this engine.
func (e *Engine) UsePool(p *Pool) {
	e.pool = p
}

// Run executes fn(worker, task) for every task in [0, n), giving each
// worker a contiguous block of tasks, and blocks until all tasks finish.
// Worker w's context must be the only one fn uses on that goroutine.
// After the fan-out every worker context's private meter is merged into
// the engine in worker order, so Engine.Meter stays single-writer and
// deterministic. Run itself must not be called concurrently or re-entrantly.
func (p *Pool) Run(n int, fn func(worker, task int)) {
	if n <= 0 {
		return
	}
	if p.running.Swap(true) {
		panic("likelihood: concurrent or re-entrant Pool.Run")
	}
	defer p.running.Store(false)
	w := len(p.ctxs)
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		lo, hi := n*wk/w, n*(wk+1)/w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			p.setBusy(+1)
			defer p.setBusy(-1)
			for t := lo; t < hi; t++ {
				fn(wk, t)
			}
		}(wk, lo, hi)
	}
	wg.Wait()
	for i, c := range p.ctxs {
		// Snapshot per-worker attribution before mergeInto resets it.
		p.workerMeters[i].Add(&c.ownMeter)
		c.mergeInto(p.eng)
	}
}

func (p *Pool) setBusy(d int64) {
	b := p.busy.Add(d)
	for {
		peak := p.peakBusy.Load()
		if b <= peak || p.peakBusy.CompareAndSwap(peak, b) {
			break
		}
	}
	if p.OnOccupancy != nil {
		p.OnOccupancy(int(b), len(p.ctxs))
	}
}

// wavefront executes a traversal descriptor by dependency level: level 0
// holds the descriptor entries whose children are all tips or already-valid
// cached views, level k+1 the entries depending on level-k results. Within
// a level every computeView writes a distinct node slot and reads only
// slots finished in earlier levels, so the calls are independent and fan
// out over the pool; the WaitGroup barrier between levels provides the
// happens-before edge for the cross-level reads.
//
// This is the engine's analogue of batching independent partial-likelihood
// operations across tree nodes (the paper's EDTLP dispatch; BEAGLE's
// operation batching): a full 42-taxon recomputation has ~20 leaf-adjacent
// views in level 0 alone, while an incremental path descriptor degenerates
// to width-1 levels and runs serially.
func (p *Pool) wavefront(trav []*phylotree.Node) {
	e := p.eng
	if e.levelOf == nil {
		e.levelOf = make([]int32, len(e.lv))
		for i := range e.levelOf {
			e.levelOf[i] = -1
		}
	}
	// Pass 1: level of each entry. The descriptor is postorder, so both
	// children are already leveled when their parent is reached; children
	// outside the descriptor (tips, valid cached views) read as -1 and
	// contribute level 0.
	maxLvl := int32(0)
	for _, nd := range trav {
		lvl := int32(0)
		if q := nd.Next.Back; !q.IsTip() {
			if l := e.levelOf[q.Index] + 1; l > lvl {
				lvl = l
			}
		}
		if r := nd.Next.Next.Back; !r.IsTip() {
			if l := e.levelOf[r.Index] + 1; l > lvl {
				lvl = l
			}
		}
		e.levelOf[nd.Index] = lvl
		if lvl > maxLvl {
			maxLvl = lvl
		}
	}
	// Pass 2: group entries by level, reusing the engine's level buffers.
	for int(maxLvl) >= len(e.levels) {
		e.levels = append(e.levels, nil)
	}
	levels := e.levels[:maxLvl+1]
	for i := range levels {
		levels[i] = levels[i][:0]
	}
	for _, nd := range trav {
		l := e.levelOf[nd.Index]
		levels[l] = append(levels[l], nd)
	}
	// Pass 3: execute level by level; reset the marks for the next call.
	for _, level := range levels {
		if len(level) < wavefrontMinWidth || len(p.ctxs) < 2 {
			for _, nd := range level {
				e.ctx0.computeView(nd)
			}
			continue
		}
		p.Run(len(level), func(w, i int) {
			p.ctxs[w].computeView(level[i])
		})
	}
	for _, nd := range trav {
		e.levelOf[nd.Index] = -1
	}
}
