package likelihood

import (
	"fmt"
	"maps"
	"slices"
)

// Backend is the compute contract behind the engine: the per-pattern inner
// loops of the three paper kernels (newview/combine, evaluate, and the two
// halves of makenewz's Newton iteration), factored out of the traversal,
// caching and scheduling machinery so alternative loop structures can be
// swapped in without touching search code.
//
// Everything outside the contract is backend-independent and stays in
// Ctx/Engine: traversal descriptors and incremental invalidation, wavefront
// scheduling, Views memoization, transition-matrix and tip-projection table
// construction, the Newton solver driver, numerical scaling policy, and the
// Config.Threads pattern-range fan-out. A backend only answers "given these
// operands, compute patterns [lo, hi)" — which is exactly the seam BEAGLE
// 4.1 draws around its CPU/SSE/GPU implementations, and the Go analogue of
// the paper swapping restructured SPU loops under an unchanged search.
//
// Concurrency: a backend must be stateless (its per-range scratch lives on
// the Ctx, indexed by the fan-out slot), because one backend value serves
// every context of an engine, and Threads > 1 runs several ranges of one
// call concurrently. Each method receives the slot its range was assigned
// so tile scratch never aliases across the fan-out.
//
// Numerics: backends must reproduce the scalar reference within 1e-9
// relative log-likelihood on any workload (the 42sc cross-validation gate
// enforces this for every registered backend); the shipped backends keep
// the per-element accumulation order of the reference loops, so they agree
// bit for bit where the compiler does not re-fuse floating point ops.
type Backend interface {
	// Name reports the registry name ("scalar", "batched", ...).
	Name() string

	// initCtx sizes any backend-private scratch on a fresh kernel context
	// (called once from Ctx.alloc, before any kernel runs).
	initCtx(c *Ctx)

	// combineRange executes the newview inner loop for patterns
	// [pr.lo, pr.hi): child-side projections through the transition
	// matrices prepared in c.pLeft/c.pRight (tip children via the
	// c.tipPL/c.tipPR tables), their elementwise product into op.dst, and
	// the 2^-256 scaling check per pattern.
	combineRange(c *Ctx, op *combineOp, pr patRange, slot int) combineStats

	// evaluateRange executes the evaluate inner loop for patterns
	// [pr.lo, pr.hi): the q-side projection through c.pLeft (tips via
	// c.tipPR), the frequency-weighted dot product against op.pLv, the
	// per-pattern log with scaling counters folded back, and the weighted
	// log-likelihood sum of the range.
	evaluateRange(c *Ctx, op *evalOp, pr patRange, slot int) evalPart

	// sumTableRange builds the Newton eigenmode sum table A[pat,c,k] into
	// c.sumTab for patterns [pr.lo, pr.hi) and returns the t-independent
	// scaling constant contribution of the range.
	sumTableRange(c *Ctx, op *sumOp, pr patRange, slot int) sumPart

	// newtonRange reduces (logL, dlogL/dt, d2logL/dt2) over patterns
	// [pr.lo, pr.hi) from c.sumTab and the per-matrix exponential blocks.
	newtonRange(c *Ctx, op *newtonOp, pr patRange, slot int) newtonPart
}

// combineOp is the operand set of one combine (newview) call. Tip children
// carry their pattern codes in qData/rData (and nil vectors); inner
// children carry their vector and scale slices. The transition matrices and
// tip-projection tables for the call are already prepared on the Ctx.
type combineOp struct {
	qData, rData []byte    // tip pattern codes (nil for inner children)
	qLv, rLv     []float64 // inner-child partial vectors (nil for tips)
	qSc, rSc     []int32   // inner-child scale counters (nil for tips)
	dst          []float64
	dstScale     []int32
}

// evalOp is the operand set of one evaluate call across a branch (p, q):
// the p-side is always an inner vector, the q-side a tip (qData) or inner
// vector (qLv/qScale). perSite, when non-nil, receives the per-pattern
// logs.
type evalOp struct {
	pLv     []float64
	pScale  []int32
	qData   []byte
	qLv     []float64
	qScale  []int32
	perSite []float64
}

// evalPart is one range's contribution to an evaluate reduction.
type evalPart struct {
	sum       float64
	st        combineStats
	underflow uint64
}

// sumOp is the operand set of the Newton sum-table build: the two branch
// endpoint vectors (q-side possibly a tip).
type sumOp struct {
	pLv   []float64
	pSc   []int32
	qData []byte
	qLv   []float64
	qSc   []int32
}

// sumPart is one range's contribution to the sum-table build: the
// t-independent scaling constant plus the operation counts.
type sumPart struct {
	scaleConst float64
	muls, adds uint64
}

// newtonOp carries one Newton iteration's exponential blocks
// (e0 = exp(λrt), e1 = λr·e0, e2 = (λr)²·e0, one ns-block per distinct
// rate matrix) and the pattern weights.
type newtonOp struct {
	e0, e1, e2 []float64
	weights    []int
}

// newtonPart is one range's contribution to the Newton reduction.
type newtonPart struct {
	ll, d1, d2 float64
	underflow  uint64
	logs       uint64
}

// DefaultBackend is the backend used when Config.Backend is empty: the
// scalar reference kernels, bit-identical to the pre-backend engine.
const DefaultBackend = "scalar"

// backendRegistry maps names to constructors. Backends register at init
// time; the map is read-only afterwards, so engines may resolve
// concurrently.
var backendRegistry = map[string]func() Backend{}

// RegisterBackend adds a backend constructor under name. It panics on a
// duplicate or empty name — registration is an init-time programming
// action, not a runtime input.
func RegisterBackend(name string, factory func() Backend) {
	if name == "" || factory == nil {
		panic("likelihood: RegisterBackend with empty name or nil factory")
	}
	if _, dup := backendRegistry[name]; dup {
		panic("likelihood: duplicate backend " + name)
	}
	backendRegistry[name] = factory
}

// Backends lists the registered backend names, sorted, for flag help and
// for harnesses that cross-validate every backend.
func Backends() []string {
	return slices.Sorted(maps.Keys(backendRegistry))
}

// newBackend resolves a Config.Backend value ("" selects DefaultBackend).
func newBackend(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	factory, ok := backendRegistry[name]
	if !ok {
		return nil, fmt.Errorf("likelihood: unknown backend %q (registered: %v)", name, Backends())
	}
	return factory(), nil
}

func init() {
	RegisterBackend("scalar", func() Backend { return scalarBackend{} })
	RegisterBackend("batched", func() Backend { return batchedBackend{} })
}
