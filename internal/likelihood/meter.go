// Package likelihood implements the three kernels the paper offloads to the
// Cell SPEs: newview (partial likelihood vectors via Felsenstein pruning,
// with numerical scaling), makenewz (Newton-Raphson branch-length
// optimization), and evaluate (the log-likelihood of the tree at a branch).
//
// Each kernel meters its own operation mix — floating point multiplies/adds,
// exp/log calls, scaling-check comparisons and their outcomes, loop trip
// counts and streamed bytes. The Cell runtime (internal/cellrt) converts
// those counts to SPE cycles under the active optimization stage, which is
// how the paper's Tables 1-7 arise from first principles rather than from
// hard-coded timings.
package likelihood

import "fmt"

// Meter accumulates kernel operation counts. A Meter is not safe for
// concurrent use; every worker owns its own Engine and Meter.
type Meter struct {
	NewviewCalls  uint64
	MakenewzCalls uint64
	EvaluateCalls uint64
	NewtonIters   uint64

	Muls uint64 // floating point multiplications
	Adds uint64 // floating point additions
	Exps uint64 // exponential evaluations
	Logs uint64 // logarithm evaluations

	ScaleChecks uint64 // executions of the 8-condition scaling if()
	ScaleEvents uint64 // times the scaling branch body ran

	SmallLoopIters uint64 // transition-matrix loop iterations
	BigLoopIters   uint64 // likelihood-vector loop iterations (per pattern x invocation)

	BytesStreamed uint64 // likelihood-vector bytes read+written by the big loop

	TipTipCalls     uint64 // newview specialization usage
	TipInnerCalls   uint64
	InnerInnerCalls uint64

	// CacheHits counts traversal-descriptor stops at valid cached vectors
	// (Config.Incremental): newview work avoided, not performed. All other
	// counters always reflect only the operations actually executed.
	CacheHits uint64

	// SharedHits counts vector requests served by the epoch-tagged shared
	// ancestral-vector store (SharedCache) — like CacheHits, work avoided.
	// The total over all workers is deterministic for a fixed search
	// (single-flight makes the computed set a pure function of the request
	// set); per-worker attribution depends on which worker reached a node
	// first and is reported by Pool.WorkerMeter, not asserted on.
	SharedHits uint64
}

// Add accumulates other into m.
func (m *Meter) Add(other *Meter) {
	m.NewviewCalls += other.NewviewCalls
	m.MakenewzCalls += other.MakenewzCalls
	m.EvaluateCalls += other.EvaluateCalls
	m.NewtonIters += other.NewtonIters
	m.Muls += other.Muls
	m.Adds += other.Adds
	m.Exps += other.Exps
	m.Logs += other.Logs
	m.ScaleChecks += other.ScaleChecks
	m.ScaleEvents += other.ScaleEvents
	m.SmallLoopIters += other.SmallLoopIters
	m.BigLoopIters += other.BigLoopIters
	m.BytesStreamed += other.BytesStreamed
	m.TipTipCalls += other.TipTipCalls
	m.TipInnerCalls += other.TipInnerCalls
	m.InnerInnerCalls += other.InnerInnerCalls
	m.CacheHits += other.CacheHits
	m.SharedHits += other.SharedHits
}

// Reset zeroes all counters.
func (m *Meter) Reset() { *m = Meter{} }

// Flops returns the total floating point operation count (muls + adds).
func (m *Meter) Flops() uint64 { return m.Muls + m.Adds }

// String gives a compact profile summary, mirroring the gprof-style numbers
// quoted in Section 5.2 of the paper.
func (m *Meter) String() string {
	return fmt.Sprintf(
		"newview=%d makenewz=%d evaluate=%d flops=%d (mul=%d add=%d) exp=%d log=%d scaleChecks=%d scaleEvents=%d bigIters=%d bytes=%d cacheHits=%d sharedHits=%d",
		m.NewviewCalls, m.MakenewzCalls, m.EvaluateCalls,
		m.Flops(), m.Muls, m.Adds, m.Exps, m.Logs,
		m.ScaleChecks, m.ScaleEvents, m.BigLoopIters, m.BytesStreamed, m.CacheHits, m.SharedHits)
}
