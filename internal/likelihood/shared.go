package likelihood

import (
	"fmt"
	"sync"
	"sync/atomic"

	"raxmlcell/internal/phylotree"
)

// SharedCache is an epoch-tagged, read-mostly store of directed ancestral
// (partial likelihood) vectors shared by every worker context of one
// engine. It is the composition point of the PR-1 incremental cache and the
// PR-5 worker pool: concurrent SPR/NNI candidate scoring used to rebuild
// one private Views per worker and recompute the path vectors the engine
// already held — ~1.7x redundant newview work at 4 workers. With the shared
// store, every directed vector of the frozen tree is computed exactly once
// per epoch no matter how many workers ask for it, the analogue of the
// paper staging partial-likelihood vectors once on the PPE and serving all
// SPEs from them (and of BEAGLE's shared partials buffer with explicit
// invalidation).
//
// Protocol:
//
//   - The cache keeps one entry per directed internal ring record, tagged
//     with the epoch in which its vector was computed. A vector is valid
//     iff its tag equals the cache's current epoch.
//   - Tree edits bump the epoch — implicitly invalidating everything — and
//     then re-tag into the new epoch exactly the entries the edit provably
//     did not touch: the walk mirrors Engine.invalidateToward, keeping at
//     each ring the one orientation facing the changed branch (its subtree
//     excludes the branch by construction). Engine.Invalidate and
//     Engine.InvalidateAll forward here when the cache is installed
//     (Engine.UseSharedCache), so AttachTree hooks, MakeNewz
//     self-invalidation and explicit post-SetZ invalidations all keep the
//     store coherent with no extra call sites.
//   - Readers are lock-free on the hit path: one atomic epoch-tag load,
//     then the vector slices (safe because a vector is never overwritten
//     while its tag is current, and the tag store is the release point of
//     its final write).
//   - On a miss the reader takes the entry's mutex — per-node
//     single-flight — re-checks the tag, and only then computes and
//     publishes, so concurrent workers missing on the same node block
//     briefly instead of duplicating kernel work. Child vectors resolve
//     through the cache recursively; the lock order follows the directed
//     dependency DAG (strictly away from the requesting edge), so it
//     cannot deadlock.
//
// Concurrency contract: any number of goroutines may call vector()
// concurrently (each through its own Ctx), but invalidation — like the
// tree edits that trigger it — must not run concurrently with readers.
// Pool.Run's fan-out barrier provides exactly that phasing in the search.
type SharedCache struct {
	eng   *Engine
	epoch atomic.Uint64
	// entries maps directed internal ring records to their cache slots.
	// sync.Map: reads vastly outnumber the one-time slot creations, and
	// slots are never deleted — invalidation is the epoch tag, not removal.
	entries sync.Map // *phylotree.Node -> *sharedEntry

	// Counters, exported for tests and obs. hits and computes are
	// deterministic for a fixed edit/score sequence (single-flight makes
	// the computed set a pure function of the valid set and the requests);
	// waits — how many hits had to block behind the computing worker — is
	// scheduling-dependent and therefore kept out of Meter.
	hits     atomic.Uint64
	computes atomic.Uint64
	waits    atomic.Uint64
}

// sharedEntry is one directed vector slot. epoch is the validity tag
// (vector valid iff tag == owner's current epoch; 0 = never computed,
// which is why the cache's epoch counter starts at 1). mu is the
// single-flight latch: the holder is the one worker computing the slot.
type sharedEntry struct {
	epoch atomic.Uint64
	mu    sync.Mutex
	lv    []float64
	sc    []int32
}

// NewSharedCache allocates an empty shared ancestral-vector store over the
// engine's patterns and model. Install it with UseSharedCache so tree-edit
// invalidations reach it.
func (e *Engine) NewSharedCache() *SharedCache {
	s := &SharedCache{eng: e}
	s.epoch.Store(1)
	return s
}

// UseSharedCache installs (or, with nil, removes) the shared
// ancestral-vector store: while installed, Engine.Invalidate and
// Engine.InvalidateAll forward every invalidation to it, keeping its epoch
// tags coherent with the tree. The cache must belong to this engine.
// Mirrors UsePool; the search installs both for Workers > 1.
func (e *Engine) UseSharedCache(s *SharedCache) {
	e.shared = s
}

// Epoch returns the current epoch (starts at 1, bumped by every
// invalidation).
func (s *SharedCache) Epoch() uint64 { return s.epoch.Load() }

// Hits returns how many vector requests were served from a current-epoch
// slot (including requests that waited out another worker's compute).
func (s *SharedCache) Hits() uint64 { return s.hits.Load() }

// Computes returns how many vectors were computed and published.
func (s *SharedCache) Computes() uint64 { return s.computes.Load() }

// Waits returns how many hits blocked on the single-flight latch while
// another worker computed the slot. Scheduling-dependent; diagnostics only.
func (s *SharedCache) Waits() uint64 { return s.waits.Load() }

// InvalidateAll drops every cached vector by bumping the epoch without
// re-tagging anything. Model swaps and detached-record invalidations land
// here.
func (s *SharedCache) InvalidateAll() { s.epoch.Add(1) }

// invalidate records a change to the branch (p, p.Back): the epoch is
// bumped, then every directed view whose subtree provably excludes that
// branch — the one orientation per ring facing it — is re-tagged into the
// new epoch and stays servable. Called by Engine.Invalidate with the same
// records (and at the same pre/post-edit instants) as the engine's own
// orientation cache, so the two caches keep identical validity sets.
func (s *SharedCache) invalidate(p *phylotree.Node) {
	q := p.Back
	if q == nil {
		s.InvalidateAll()
		return
	}
	old := s.epoch.Add(1) - 1
	s.retagToward(p, old)
	s.retagToward(q, old)
}

// retagToward walks the component behind record a (away from the changed
// branch), carrying into the new epoch the one orientation per ring that
// faces the branch: record a at this ring, the corresponding Back records
// deeper down. Vectors in other orientations contain the changed branch in
// their subtree and stay stale under the bumped epoch.
func (s *SharedCache) retagToward(a *phylotree.Node, old uint64) {
	if a.IsTip() {
		return
	}
	if v, ok := s.entries.Load(a); ok {
		en := v.(*sharedEntry)
		if en.epoch.Load() == old {
			en.epoch.Store(old + 1)
		}
	}
	if b := a.Next.Back; b != nil {
		s.retagToward(b, old)
	}
	if b := a.Next.Next.Back; b != nil {
		s.retagToward(b, old)
	}
}

// entry returns r's cache slot, creating it on first use. The Load fast
// path keeps the steady state allocation-free.
func (s *SharedCache) entry(r *phylotree.Node) *sharedEntry {
	if v, ok := s.entries.Load(r); ok {
		return v.(*sharedEntry)
	}
	v, _ := s.entries.LoadOrStore(r, &sharedEntry{})
	return v.(*sharedEntry)
}

// vector returns the directed partial likelihood vector and scale counts
// behind record r at the current epoch, computing and publishing it (and,
// recursively, any stale children) under per-node single-flight on a miss.
// Kernel work and meter attribution go to the calling worker's context c.
// Tip records return (nil, nil): callers use the tip codes directly,
// exactly like Views.Vector.
func (s *SharedCache) vector(c *Ctx, r *phylotree.Node) ([]float64, []int32, error) {
	if r.IsTip() {
		return nil, nil, nil
	}
	cur := s.epoch.Load()
	en := s.entry(r)
	if en.epoch.Load() == cur {
		// Lock-free hit: the tag store below is the release point of the
		// vector's final write, so a current tag implies a complete vector.
		s.hits.Add(1)
		c.meter.SharedHits++
		return en.lv, en.sc, nil
	}
	en.mu.Lock()
	if en.epoch.Load() == cur {
		// Another worker computed the slot while we waited on the latch.
		en.mu.Unlock()
		s.hits.Add(1)
		s.waits.Add(1)
		c.meter.SharedHits++
		return en.lv, en.sc, nil
	}
	q := r.Next.Back
	w := r.Next.Next.Back
	if q == nil || w == nil {
		en.mu.Unlock()
		return nil, nil, fmt.Errorf("likelihood: shared view of detached record")
	}
	// Children resolve through the cache first — the recursion follows the
	// directed dependency DAG away from r, so nested latches cannot cycle.
	qLv, qSc, err := s.vector(c, q)
	if err != nil {
		en.mu.Unlock()
		return nil, nil, err
	}
	wLv, wSc, err := s.vector(c, w)
	if err != nil {
		en.mu.Unlock()
		return nil, nil, err
	}
	e := s.eng
	if en.lv == nil {
		en.lv = make([]float64, e.npat*e.ncat*ns)
		en.sc = make([]int32, e.npat)
	}
	c.combine(q, r.Next.Z, qLv, qSc, w, r.Next.Next.Z, wLv, wSc, en.lv, en.sc)
	s.computes.Add(1)
	// Publish: the tag store is the release fence for the vector writes.
	en.epoch.Store(cur)
	en.mu.Unlock()
	return en.lv, en.sc, nil
}
