package likelihood

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/model"
	"raxmlcell/internal/phylotree"
)

func TestBackendRegistry(t *testing.T) {
	names := Backends()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["scalar"] || !found["batched"] {
		t.Fatalf("registry missing shipped backends: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Backends() not sorted: %v", names)
		}
	}

	if got := (Config{}).BackendName(); got != DefaultBackend {
		t.Errorf("empty Config resolves to %q, want %q", got, DefaultBackend)
	}
	if got := (Config{Backend: "batched"}).BackendName(); got != "batched" {
		t.Errorf("BackendName() = %q, want batched", got)
	}

	rng := rand.New(rand.NewSource(601))
	pat := randomPatterns(t, rng, 6, 40)
	m := randomModel(t, rng, 4)
	if _, err := NewEngine(pat, m, Config{Backend: "no-such-backend"}); err == nil {
		t.Error("NewEngine accepted an unknown backend")
	}
	eng, err := NewEngine(pat, m, Config{Backend: "batched"})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Backend() != "batched" {
		t.Errorf("Engine.Backend() = %q, want batched", eng.Backend())
	}
}

// TestBackendsMatchScalarGamma drives every registered backend through
// newview, evaluate, per-site logs and Newton branch optimization on a
// random Gamma-rate workload, asserting exact (bit-for-bit) agreement with
// the scalar reference: the batched tiles are restructured loops over the
// same summation orders, not approximations.
func TestBackendsMatchScalarGamma(t *testing.T) {
	for _, name := range Backends() {
		if name == "scalar" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(602))
			pat := randomPatterns(t, rng, 12, 300)
			m := randomModel(t, rng, 4)
			tr := randomTreeFor(t, rng, pat)

			ref, err := NewEngine(pat, m, Config{})
			if err != nil {
				t.Fatal(err)
			}
			alt, err := NewEngine(pat, m, Config{Backend: name})
			if err != nil {
				t.Fatal(err)
			}

			// Partial vectors and scale counters bit-identical.
			p := tr.Tips[0].Back
			ref.NewView(p)
			alt.NewView(p)
			idx := p.Index
			for i := range ref.lv[idx] {
				if ref.lv[idx][i] != alt.lv[idx][i] {
					t.Fatalf("partial vector diverges at %d: %g vs %g", i, ref.lv[idx][i], alt.lv[idx][i])
				}
			}
			for i := range ref.scale[idx] {
				if ref.scale[idx][i] != alt.scale[idx][i] {
					t.Fatalf("scale counter diverges at pattern %d: %d vs %d", i, ref.scale[idx][i], alt.scale[idx][i])
				}
			}

			// Log-likelihood bit-identical.
			llR, err := ref.Evaluate(tr.Tips[0])
			if err != nil {
				t.Fatal(err)
			}
			llA, err := alt.Evaluate(tr.Tips[0])
			if err != nil {
				t.Fatal(err)
			}
			if llR != llA {
				t.Fatalf("logL diverges: scalar %.17g vs %s %.17g", llR, name, llA)
			}

			// Per-site logs bit-identical.
			psR, err := ref.PerSiteLogL(tr.Tips[0], nil)
			if err != nil {
				t.Fatal(err)
			}
			psA, err := alt.PerSiteLogL(tr.Tips[0], nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range psR {
				if psR[i] != psA[i] {
					t.Fatalf("per-site log diverges at pattern %d: %g vs %g", i, psR[i], psA[i])
				}
			}

			// The deterministic meter counters agree so far: backends
			// restructure the loops but perform the same arithmetic. (The
			// MakeNewz stage below calls the reference engine twice per
			// edge, so the meters are only comparable at this point.)
			if ref.Meter.Flops() != alt.Meter.Flops() ||
				ref.Meter.ScaleChecks != alt.Meter.ScaleChecks ||
				ref.Meter.ScaleEvents != alt.Meter.ScaleEvents {
				t.Errorf("meters diverge:\n scalar  %s\n %s %s", ref.Meter.String(), name, alt.Meter.String())
			}

			// Newton branch optimization: identical iteration trajectory, so
			// identical optimum, for tip and inner branches.
			for _, edgeIdx := range []int{0, 4, 9} {
				eR := tr.Edges()[edgeIdx]
				zR, mlR, err := ref.MakeNewz(eR)
				if err != nil {
					t.Fatal(err)
				}
				zA, mlA, err := alt.MakeNewz(eR)
				// The reference call already moved the branch to its optimum,
				// so the second solve starts there; rerun the reference from
				// the same state for a fair bit comparison.
				if err != nil {
					t.Fatal(err)
				}
				zR2, mlR2, err := ref.MakeNewz(eR)
				if err != nil {
					t.Fatal(err)
				}
				if zA != zR2 && math.Abs(zA-zR)/(1+zR) > 1e-12 {
					t.Fatalf("edge %d: MakeNewz z diverges: scalar %.17g/%.17g vs %s %.17g", edgeIdx, zR, zR2, name, zA)
				}
				if mlA != mlR2 && math.Abs(mlA-mlR)/math.Abs(mlR) > 1e-12 {
					t.Fatalf("edge %d: MakeNewz logL diverges: scalar %.17g/%.17g vs %s %.17g", edgeIdx, mlR, mlR2, name, mlA)
				}
			}

		})
	}
}

// TestBackendsMatchScalarCAT checks the CAT layout (per-pattern rate
// categories) through every backend; the batched backend delegates CAT to
// the scalar loops, so agreement must be exact.
func TestBackendsMatchScalarCAT(t *testing.T) {
	for _, name := range Backends() {
		if name == "scalar" {
			continue
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(603))
			pat := randomPatterns(t, rng, 9, 220)
			gtr := randomModel(t, rng, 1).GTR
			tr := randomTreeFor(t, rng, pat)
			np := pat.NumPatterns()
			assign := make([]int, np)
			for i := range assign {
				assign[i] = i % 4
			}
			cat, err := model.NewCATModel(gtr, []float64{0.2, 0.7, 1.3, 2.8}, assign, pat.Weights)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewEngine(pat, cat, Config{})
			if err != nil {
				t.Fatal(err)
			}
			alt, err := NewEngine(pat, cat, Config{Backend: name})
			if err != nil {
				t.Fatal(err)
			}
			llR, err := ref.Evaluate(tr.Tips[0])
			if err != nil {
				t.Fatal(err)
			}
			llA, err := alt.Evaluate(tr.Tips[0])
			if err != nil {
				t.Fatal(err)
			}
			if llR != llA {
				t.Fatalf("CAT logL diverges: scalar %.17g vs %s %.17g", llR, name, llA)
			}
			zR, mlR, err := ref.MakeNewz(tr.Edges()[2])
			if err != nil {
				t.Fatal(err)
			}
			zA, mlA, err := alt.MakeNewz(tr.Edges()[2])
			if err != nil {
				t.Fatal(err)
			}
			// Second call starts from the reference optimum on both engines,
			// so trajectories coincide.
			if math.Abs(zA-zR) > 1e-12*(1+zR) || math.Abs(mlA-mlR) > 1e-9*math.Abs(mlR) {
				t.Fatalf("CAT MakeNewz diverges: (%.17g, %.17g) vs (%.17g, %.17g)", zR, mlR, zA, mlA)
			}
		})
	}
}

// TestBackendThreadsBitIdentical checks that the batched tiles compose
// with the loop-level Threads fan-out: per-slot tile scratch must keep
// concurrent pattern ranges independent, and partial vectors must stay
// bit-identical to the serial scalar reference. Run under -race this also
// proves the slot isolation.
func TestBackendThreadsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(604))
	pat := randomPatterns(t, rng, 12, 400)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)

	ref, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(pat, m, Config{Backend: "batched", Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !par.parallel() {
		t.Fatal("workload does not trigger the threaded path")
	}
	p := tr.Tips[0].Back
	ref.NewView(p)
	par.NewView(p)
	for i := range ref.lv[p.Index] {
		if ref.lv[p.Index][i] != par.lv[p.Index][i] {
			t.Fatalf("threaded batched vector diverges at %d", i)
		}
	}
	llR, err := ref.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	llP, err := par.Evaluate(tr.Tips[0])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(llR-llP) > 1e-9*math.Abs(llR) {
		t.Errorf("threaded batched logL %.12f != scalar %.12f", llP, llR)
	}
}

// TestBackendUnderPool exercises the batched backend beneath the
// task-level pool: wavefront NewView execution and concurrent
// InsertionScore-style Views on worker contexts. Run under -race this is
// the PR-5-pool race gate for the new backend.
func TestBackendUnderPool(t *testing.T) {
	rng := rand.New(rand.NewSource(605))
	pat := randomPatterns(t, rng, 16, 250)
	m := randomModel(t, rng, 4)
	tr := randomTreeFor(t, rng, pat)

	ref, err := NewEngine(pat, m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(pat, m, Config{Backend: "batched"})
	if err != nil {
		t.Fatal(err)
	}
	pool := eng.NewPool(4)
	eng.UsePool(pool)
	defer eng.UsePool(nil)

	// Wavefront traversal through the batched kernels.
	p := tr.Tips[0].Back
	ref.NewView(p)
	eng.NewView(p)
	for i := range ref.lv[p.Index] {
		if ref.lv[p.Index][i] != eng.lv[p.Index][i] {
			t.Fatalf("wavefront batched vector diverges at %d", i)
		}
	}

	// Concurrent per-worker Views scoring (the SPR fan-out shape).
	var sub *phylotree.Node
	for _, e := range tr.Edges() {
		if !e.IsTip() {
			sub = e
			break
		}
	}
	if sub == nil {
		t.Fatal("no internal record to prune")
	}
	ps, err := tr.Prune(sub)
	if err != nil {
		t.Skipf("prune failed on random tree: %v", err)
	}
	cands := tr.Edges()
	if len(cands) > 8 {
		cands = cands[:8]
	}
	type res struct{ z, ll float64 }
	refViews := ref.NewViews()
	want := make([]res, len(cands))
	for i, cand := range cands {
		if cand.Back == nil {
			continue
		}
		z, ll, err := refViews.InsertionScore(cand, ps.P, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res{z, ll}
	}
	refViews.Release()

	got := make([]res, len(cands))
	views := make([]*Views, pool.Workers())
	for w := range views {
		views[w] = pool.Ctx(w).NewViews()
	}
	pool.Run(len(cands), func(w, i int) {
		cand := cands[i]
		if cand.Back == nil {
			return
		}
		z, ll, err := views[w].InsertionScore(cand, ps.P, 0.1)
		if err != nil {
			return
		}
		got[i] = res{z, ll}
	})
	for w := range views {
		views[w].Release()
	}
	for i := range want {
		if math.Abs(want[i].ll-got[i].ll) > 1e-9*(1+math.Abs(want[i].ll)) ||
			math.Abs(want[i].z-got[i].z) > 1e-9*(1+want[i].z) {
			t.Errorf("candidate %d: batched pool score (%.12g, %.12g) != scalar (%.12g, %.12g)",
				i, got[i].z, got[i].ll, want[i].z, want[i].ll)
		}
	}
	if err := tr.Undo(ps); err != nil {
		t.Fatal(err)
	}
}

// FuzzBackendEquivalence drives random alignments, models and rate
// layouts (Gamma and CAT, varying taxa/sites/categories) through every
// registered backend and asserts agreement with the scalar reference:
// bit-identical partial vectors and ≤1e-9 relative log-likelihoods.
func FuzzBackendEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(6), uint16(80), uint8(4), false)
	f.Add(int64(2), uint8(4), uint16(33), uint8(1), false)
	f.Add(int64(3), uint8(9), uint16(130), uint8(3), true)
	f.Add(int64(4), uint8(12), uint16(64), uint8(2), true)
	f.Fuzz(func(t *testing.T, seed int64, taxa uint8, sites uint16, cats uint8, useCAT bool) {
		nt := 4 + int(taxa)%13 // 4..16 taxa
		nsites := 16 + int(sites)%400
		nc := 1 + int(cats)%4 // 1..4 categories
		rng := rand.New(rand.NewSource(seed))
		pat := randomPatterns(t, rng, nt, nsites)
		var m *model.Model
		if useCAT {
			gtr := randomModel(t, rng, 1).GTR
			np := pat.NumPatterns()
			assign := make([]int, np)
			for i := range assign {
				assign[i] = rng.Intn(nc)
			}
			rates := make([]float64, nc)
			for i := range rates {
				rates[i] = 0.1 + 3*rng.Float64()
			}
			var err error
			m, err = model.NewCATModel(gtr, rates, assign, pat.Weights)
			if err != nil {
				t.Skip(err)
			}
		} else {
			m = randomModel(t, rng, nc)
		}
		tr := randomTreeFor(t, rng, pat)

		ref, err := NewEngine(pat, m, Config{})
		if err != nil {
			t.Skip(err)
		}
		llR, err := ref.Evaluate(tr.Tips[0])
		if err != nil {
			t.Skip(err)
		}
		idx := tr.Tips[0].Back.Index
		for _, name := range Backends() {
			if name == "scalar" {
				continue
			}
			alt, err := NewEngine(pat, m, Config{Backend: name})
			if err != nil {
				t.Fatal(err)
			}
			llA, err := alt.Evaluate(tr.Tips[0])
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(llA-llR) > 1e-9*math.Max(1, math.Abs(llR)) {
				t.Fatalf("%s logL %.15g != scalar %.15g (taxa=%d sites=%d cats=%d cat=%v)",
					name, llA, llR, nt, nsites, nc, useCAT)
			}
			for i := range ref.lv[idx] {
				if ref.lv[idx][i] != alt.lv[idx][i] {
					t.Fatalf("%s partial vector diverges at %d (taxa=%d sites=%d cats=%d cat=%v)",
						name, i, nt, nsites, nc, useCAT)
				}
			}
		}
	})
}
