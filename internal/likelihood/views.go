package likelihood

import (
	"fmt"
	"time"

	"raxmlcell/internal/phylotree"
)

// Views is a memoized table of directed partial likelihood vectors over a
// topologically frozen tree: one vector per directed internal ring record,
// computed on demand and shared across queries. It is the engine's
// implementation of RAxML's lazy SPR evaluation — after pruning a subtree,
// every candidate insertion branch can be scored in O(patterns) time from
// cached vectors instead of recomputing the whole tree.
//
// A Views must be discarded as soon as the tree's topology or any branch
// length changes. A Views is bound to one kernel context and inherits its
// (lack of) concurrency: concurrent scoring uses one Views per worker
// context (see Pool), never one Views from several goroutines.
type Views struct {
	ctx   *Ctx
	lv    map[*phylotree.Node][]float64
	scale map[*phylotree.Node][]int32
	order []*phylotree.Node // memoization order, so Release is deterministic

	// shared, when non-nil, replaces the private memo tables: Vector
	// delegates to the engine-wide epoch-tagged store, so every worker's
	// Views of one pool reads (and fills) the same vectors instead of each
	// recomputing them. The kernel context stays per-worker — only the
	// result vectors are shared. Built by NewSharedViews.
	shared *SharedCache
}

// NewViews creates an empty view table over the engine's current model,
// bound to the engine's primary context.
func (e *Engine) NewViews() *Views { return e.ctx0.NewViews() }

// NewViews creates an empty view table bound to this context: its vectors
// are computed with the context's scratch and pooled in the context's
// buffer pools, so tables of different contexts never share mutable state.
func (c *Ctx) NewViews() *Views {
	return &Views{
		ctx:   c,
		lv:    make(map[*phylotree.Node][]float64),
		scale: make(map[*phylotree.Node][]int32),
	}
}

// NewSharedViews creates a view table backed by the engine's shared
// epoch-tagged vector store instead of private memo tables, bound to the
// engine's primary context: vector hits and computes are attributed to
// Engine.Meter directly. Used by the pooled search's serial fallback so
// small candidate sets still reuse (and warm) the shared store.
func (e *Engine) NewSharedViews(s *SharedCache) *Views { return e.ctx0.NewSharedViews(s) }

// NewSharedViews creates a view table backed by the shared epoch-tagged
// vector store, bound to this context: cached vectors are engine-wide, but
// kernel scratch, metering and the scoring path's scratch buffers stay
// per-worker. Unlike a private Views, a shared-backed table survives tree
// edits (the store's epoch tags track them), needs no Release, and may be
// used from several goroutines — one per distinct bound context.
func (c *Ctx) NewSharedViews(s *SharedCache) *Views {
	return &Views{ctx: c, shared: s}
}

// Release returns all cached buffers to the owning context's pool.
func (v *Views) Release() {
	// Iterate in memoization order, not map order: the pools are stacks, so
	// return order decides which buffer each future view reuses, and replay
	// must hand out identical buffers.
	for _, r := range v.order {
		if buf, ok := v.lv[r]; ok {
			v.ctx.lvPool = append(v.ctx.lvPool, buf)
			delete(v.lv, r)
		}
		if sc, ok := v.scale[r]; ok {
			v.ctx.scPool = append(v.ctx.scPool, sc)
			delete(v.scale, r)
		}
	}
	v.order = v.order[:0]
}

func (c *Ctx) getLvBuf() []float64 {
	if n := len(c.lvPool); n > 0 {
		b := c.lvPool[n-1]
		c.lvPool = c.lvPool[:n-1]
		return b
	}
	e := c.eng
	return make([]float64, e.npat*e.ncat*ns)
}

func (c *Ctx) getScBuf() []int32 {
	if n := len(c.scPool); n > 0 {
		b := c.scPool[n-1]
		c.scPool = c.scPool[:n-1]
		for i := range b {
			b[i] = 0
		}
		return b
	}
	return make([]int32, c.eng.npat)
}

// Vector returns the partial likelihood vector and scale counts of the
// subtree behind record r (computed through r's two other ring members),
// memoizing recursively. For tip records it returns (nil, nil): callers use
// the tip codes directly.
func (v *Views) Vector(r *phylotree.Node) ([]float64, []int32, error) {
	if v.shared != nil {
		return v.shared.vector(v.ctx, r)
	}
	if r.IsTip() {
		return nil, nil, nil
	}
	if lv, ok := v.lv[r]; ok {
		return lv, v.scale[r], nil
	}
	q := r.Next.Back
	w := r.Next.Next.Back
	if q == nil || w == nil {
		return nil, nil, fmt.Errorf("likelihood: view of detached record")
	}
	qLv, qSc, err := v.Vector(q)
	if err != nil {
		return nil, nil, err
	}
	wLv, wSc, err := v.Vector(w)
	if err != nil {
		return nil, nil, err
	}
	dst := v.ctx.getLvBuf()
	dsc := v.ctx.getScBuf()
	v.ctx.combine(q, r.Next.Z, qLv, qSc, w, r.Next.Next.Z, wLv, wSc, dst, dsc)
	v.lv[r] = dst
	v.scale[r] = dsc
	v.order = append(v.order, r)
	return dst, dsc, nil
}

// combine is the core of newview factored over explicit child buffers:
// child vectors may come from the engine's per-node table, a Views cache,
// or (nil for tips) the pattern data of the child's taxon.
func (c *Ctx) combine(q *phylotree.Node, zq float64, qLv []float64, qSc []int32,
	r *phylotree.Node, zr float64, rLv []float64, rSc []int32,
	dst []float64, dstScale []int32) {

	e := c.eng
	var t0 time.Duration
	timed := e.kobs != nil
	if timed {
		t0 = e.know()
	}
	c.meter.NewviewCalls++
	c.transitionMatrices(zq, c.pLeft)
	c.transitionMatrices(zr, c.pRight)

	qTip, rTip := q.IsTip(), r.IsTip()
	switch {
	case qTip && rTip:
		c.meter.TipTipCalls++
	case qTip || rTip:
		c.meter.TipInnerCalls++
	default:
		c.meter.InnerInnerCalls++
	}
	if qTip {
		c.tipProjection(c.pLeft, c.tipPL)
	}
	if rTip {
		c.tipProjection(c.pRight, c.tipPR)
	}
	var qData, rData []byte
	if qTip {
		qData = e.Pat.Data[q.Index]
	}
	if rTip {
		rData = e.Pat.Data[r.Index]
	}

	ncat := e.ncat
	c.combOp = combineOp{qData: qData, rData: rData, qLv: qLv, rLv: rLv, qSc: qSc, rSc: rSc, dst: dst, dstScale: dstScale}
	op := &c.combOp
	bk := e.backend

	var total combineStats
	if e.parallel() {
		ranges := e.splitPatterns()
		stats := make([]combineStats, len(ranges))
		e.runParallel(ranges, func(pr patRange, slot int) {
			stats[slot] = bk.combineRange(c, op, pr, slot)
		})
		for _, st := range stats {
			total.add(st)
		}
	} else {
		total = bk.combineRange(c, op, patRange{0, e.npat}, 0)
	}
	c.meter.Muls += total.muls
	c.meter.Adds += total.adds
	c.meter.BigLoopIters += total.bigIters
	c.meter.ScaleChecks += total.scaleChecks
	c.meter.ScaleEvents += total.scaleEvents
	bytesPerVec := uint64(e.npat * ncat * ns * 8)
	n := uint64(1)
	if !qTip {
		n++
	}
	if !rTip {
		n++
	}
	c.meter.BytesStreamed += n * bytesPerVec
	if timed {
		e.kobs.ObserveKernel(OpNewview, e.know()-t0)
	}
}

// InsertionScore evaluates the lazy-SPR score of regrafting a pruned
// subtree into the branch (cand, cand.Back): a virtual internal node is
// formed over the two branch halves, its vector combined from the cached
// views, and only the subtree's own branch length is optimized by
// Newton-Raphson (RAxML's "lazy" evaluation). sub is the detached ring
// record holding the subtree behind sub.Back; z0 is the starting branch
// length. The tree itself is not modified, and neither is any engine-level
// table — concurrent calls are safe when every goroutine scores through
// its own context's Views.
func (v *Views) InsertionScore(cand *phylotree.Node, sub *phylotree.Node, z0 float64) (bestZ, logL float64, err error) {
	if cand.Back == nil {
		return 0, 0, fmt.Errorf("likelihood: candidate edge is detached")
	}
	s := sub.Back
	if s == nil {
		return 0, 0, fmt.Errorf("likelihood: pruned subtree has no root")
	}
	c := v.ctx

	aLv, aSc, err := v.Vector(cand)
	if err != nil {
		return 0, 0, err
	}
	bLv, bSc, err := v.Vector(cand.Back)
	if err != nil {
		return 0, 0, err
	}
	// Virtual node x over the split candidate branch.
	xLv := c.getLvBuf()
	xSc := c.getScBuf()
	defer func() {
		c.lvPool = append(c.lvPool, xLv)
		c.scPool = append(c.scPool, xSc)
	}()
	half := cand.Z / 2
	c.combine(cand, half, aLv, aSc, cand.Back, half, bLv, bSc, xLv, xSc)

	// Subtree-side vector: viewed through the subtree root record s, whose
	// children live inside the pruned subtree.
	sLv, sSc, err := v.Vector(s)
	if err != nil {
		return 0, 0, err
	}
	return c.newtonOnBranch(xLv, xSc, s, sLv, sSc, z0)
}

// newtonOnBranch optimizes the branch length between an explicit vector
// (pLv/pSc) and a node side given by (q, qLv, qSc) — q may be a tip (qLv
// nil). It is the sum-table core of MakeNewz reused by the lazy SPR path,
// running entirely on context-owned scratch.
func (c *Ctx) newtonOnBranch(pLv []float64, pSc []int32, q *phylotree.Node, qLv []float64, qSc []int32, z0 float64) (float64, float64, error) {
	e := c.eng
	c.meter.MakenewzCalls++
	var qData []byte
	if q.IsTip() {
		qData = e.Pat.Data[q.Index]
	}
	scaleConst := c.buildSumTable(pLv, pSc, qData, qLv, qSc)
	bestT, bestLL := c.newtonSolve(z0, scaleConst)
	return bestT, bestLL, nil
}
