package likelihood

import (
	"fmt"
	"math"

	"raxmlcell/internal/phylotree"
)

// Views is a memoized table of directed partial likelihood vectors over a
// topologically frozen tree: one vector per directed internal ring record,
// computed on demand and shared across queries. It is the engine's
// implementation of RAxML's lazy SPR evaluation — after pruning a subtree,
// every candidate insertion branch can be scored in O(patterns) time from
// cached vectors instead of recomputing the whole tree.
//
// A Views must be discarded as soon as the tree's topology or any branch
// length changes.
type Views struct {
	eng   *Engine
	lv    map[*phylotree.Node][]float64
	scale map[*phylotree.Node][]int32
}

// NewViews creates an empty view table over the engine's current model.
func (e *Engine) NewViews() *Views {
	return &Views{
		eng:   e,
		lv:    make(map[*phylotree.Node][]float64),
		scale: make(map[*phylotree.Node][]int32),
	}
}

// Release returns all cached buffers to the engine's pool.
func (v *Views) Release() {
	for r, buf := range v.lv {
		v.eng.lvPool = append(v.eng.lvPool, buf)
		delete(v.lv, r)
	}
	for r, sc := range v.scale {
		v.eng.scPool = append(v.eng.scPool, sc)
		delete(v.scale, r)
	}
}

func (e *Engine) getLvBuf() []float64 {
	if n := len(e.lvPool); n > 0 {
		b := e.lvPool[n-1]
		e.lvPool = e.lvPool[:n-1]
		return b
	}
	return make([]float64, e.npat*e.ncat*ns)
}

func (e *Engine) getScBuf() []int32 {
	if n := len(e.scPool); n > 0 {
		b := e.scPool[n-1]
		e.scPool = e.scPool[:n-1]
		for i := range b {
			b[i] = 0
		}
		return b
	}
	return make([]int32, e.npat)
}

// Vector returns the partial likelihood vector and scale counts of the
// subtree behind record r (computed through r's two other ring members),
// memoizing recursively. For tip records it returns (nil, nil): callers use
// the tip codes directly.
func (v *Views) Vector(r *phylotree.Node) ([]float64, []int32, error) {
	if r.IsTip() {
		return nil, nil, nil
	}
	if lv, ok := v.lv[r]; ok {
		return lv, v.scale[r], nil
	}
	q := r.Next.Back
	w := r.Next.Next.Back
	if q == nil || w == nil {
		return nil, nil, fmt.Errorf("likelihood: view of detached record")
	}
	qLv, qSc, err := v.Vector(q)
	if err != nil {
		return nil, nil, err
	}
	wLv, wSc, err := v.Vector(w)
	if err != nil {
		return nil, nil, err
	}
	dst := v.eng.getLvBuf()
	dsc := v.eng.getScBuf()
	v.eng.combine(q, r.Next.Z, qLv, qSc, w, r.Next.Next.Z, wLv, wSc, dst, dsc)
	v.lv[r] = dst
	v.scale[r] = dsc
	return dst, dsc, nil
}

// combine is the core of newview factored over explicit child buffers:
// child vectors may come from the engine's per-node table, a Views cache,
// or (nil for tips) the pattern data of the child's taxon.
func (e *Engine) combine(q *phylotree.Node, zq float64, qLv []float64, qSc []int32,
	r *phylotree.Node, zr float64, rLv []float64, rSc []int32,
	dst []float64, dstScale []int32) {

	e.Meter.NewviewCalls++
	e.transitionMatrices(zq, e.pLeft)
	e.transitionMatrices(zr, e.pRight)

	qTip, rTip := q.IsTip(), r.IsTip()
	switch {
	case qTip && rTip:
		e.Meter.TipTipCalls++
	case qTip || rTip:
		e.Meter.TipInnerCalls++
	default:
		e.Meter.InnerInnerCalls++
	}
	if qTip {
		e.tipProjection(e.pLeft, e.tipPL)
	}
	if rTip {
		e.tipProjection(e.pRight, e.tipPR)
	}
	var qData, rData []byte
	if qTip {
		qData = e.Pat.Data[q.Index]
	}
	if rTip {
		rData = e.Pat.Data[r.Index]
	}

	ncat := e.ncat
	work := func(pr patRange) combineStats {
		var st combineStats
		for pat := pr.lo; pat < pr.hi; pat++ {
			base := pat * ncat * ns
			for c := 0; c < ncat; c++ {
				mi := e.matIdx(pat, c)
				var left, right [ns]float64
				if qTip {
					code := qData[pat] & 0x0f
					copy(left[:], e.tipPL[mi*16*ns+int(code)*ns:][:ns])
				} else {
					pc := e.pLeft[mi*ns*ns:]
					x := qLv[base+c*ns:]
					for i := 0; i < ns; i++ {
						left[i] = pc[i*ns]*x[0] + pc[i*ns+1]*x[1] + pc[i*ns+2]*x[2] + pc[i*ns+3]*x[3]
					}
					st.muls += ns * ns
					st.adds += ns * (ns - 1)
				}
				if rTip {
					code := rData[pat] & 0x0f
					copy(right[:], e.tipPR[mi*16*ns+int(code)*ns:][:ns])
				} else {
					pc := e.pRight[mi*ns*ns:]
					x := rLv[base+c*ns:]
					for i := 0; i < ns; i++ {
						right[i] = pc[i*ns]*x[0] + pc[i*ns+1]*x[1] + pc[i*ns+2]*x[2] + pc[i*ns+3]*x[3]
					}
					st.muls += ns * ns
					st.adds += ns * (ns - 1)
				}
				for i := 0; i < ns; i++ {
					dst[base+c*ns+i] = left[i] * right[i]
				}
				st.muls += ns
			}
			st.bigIters++

			sc := int32(0)
			if qSc != nil {
				sc += qSc[pat]
			}
			if rSc != nil {
				sc += rSc[pat]
			}
			st.scaleChecks++
			if e.needsScalingPure(dst[base : base+ncat*ns]) {
				for k := base; k < base+ncat*ns; k++ {
					dst[k] *= TwoTo256
				}
				st.muls += uint64(ncat * ns)
				sc++
				st.scaleEvents++
			}
			dstScale[pat] = sc
		}
		return st
	}

	var total combineStats
	if e.parallel() {
		ranges := e.splitPatterns()
		stats := make([]combineStats, len(ranges))
		e.runParallel(ranges, func(pr patRange, slot int) {
			stats[slot] = work(pr)
		})
		for _, st := range stats {
			total.add(st)
		}
	} else {
		total = work(patRange{0, e.npat})
	}
	e.Meter.Muls += total.muls
	e.Meter.Adds += total.adds
	e.Meter.BigLoopIters += total.bigIters
	e.Meter.ScaleChecks += total.scaleChecks
	e.Meter.ScaleEvents += total.scaleEvents
	bytesPerVec := uint64(e.npat * ncat * ns * 8)
	n := uint64(1)
	if !qTip {
		n++
	}
	if !rTip {
		n++
	}
	e.Meter.BytesStreamed += n * bytesPerVec
}

// InsertionScore evaluates the lazy-SPR score of regrafting a pruned
// subtree into the branch (cand, cand.Back): a virtual internal node is
// formed over the two branch halves, its vector combined from the cached
// views, and only the subtree's own branch length is optimized by
// Newton-Raphson (RAxML's "lazy" evaluation). sub is the detached ring
// record holding the subtree behind sub.Back; z0 is the starting branch
// length. The tree itself is not modified.
func (v *Views) InsertionScore(cand *phylotree.Node, sub *phylotree.Node, z0 float64) (bestZ, logL float64, err error) {
	if cand.Back == nil {
		return 0, 0, fmt.Errorf("likelihood: candidate edge is detached")
	}
	s := sub.Back
	if s == nil {
		return 0, 0, fmt.Errorf("likelihood: pruned subtree has no root")
	}
	e := v.eng

	aLv, aSc, err := v.Vector(cand)
	if err != nil {
		return 0, 0, err
	}
	bLv, bSc, err := v.Vector(cand.Back)
	if err != nil {
		return 0, 0, err
	}
	// Virtual node x over the split candidate branch.
	xLv := e.getLvBuf()
	xSc := e.getScBuf()
	defer func() {
		e.lvPool = append(e.lvPool, xLv)
		e.scPool = append(e.scPool, xSc)
	}()
	half := cand.Z / 2
	e.combine(cand, half, aLv, aSc, cand.Back, half, bLv, bSc, xLv, xSc)

	// Subtree-side vector: viewed through the subtree root record s, whose
	// children live inside the pruned subtree.
	sLv, sSc, err := v.Vector(s)
	if err != nil {
		return 0, 0, err
	}
	return e.newtonOnBranch(xLv, xSc, s, sLv, sSc, z0)
}

// newtonOnBranch optimizes the branch length between an explicit vector
// (pLv/pSc) and a node side given by (q, qLv, qSc) — q may be a tip (qLv
// nil). It is the sum-table core of MakeNewz reused by the lazy SPR path.
func (e *Engine) newtonOnBranch(pLv []float64, pSc []int32, q *phylotree.Node, qLv []float64, qSc []int32, z0 float64) (float64, float64, error) {
	e.Meter.MakenewzCalls++
	g := e.Mod.GTR
	ncat := e.ncat

	sumTab := make([]float64, e.npat*ncat*ns)
	scaleConst := 0.0
	var qData []byte
	if q.IsTip() {
		qData = e.Pat.Data[q.Index]
	}
	for pat := 0; pat < e.npat; pat++ {
		base := pat * ncat * ns
		sc := pSc[pat]
		if qSc != nil {
			sc += qSc[pat]
		}
		scaleConst += float64(e.Pat.Weights[pat]) * float64(sc) * logMinLik
		for c := 0; c < ncat; c++ {
			x := pLv[base+c*ns:]
			var y [ns]float64
			if qData != nil {
				y = e.tipVec[qData[pat]&0x0f]
			} else {
				copy(y[:], qLv[base+c*ns:][:ns])
			}
			for k := 0; k < ns; k++ {
				a, b := 0.0, 0.0
				for i := 0; i < ns; i++ {
					a += g.Freqs[i] * x[i] * g.V[i][k]
					b += g.VInv[k][i] * y[i]
				}
				sumTab[base+c*ns+k] = a * b
			}
		}
	}
	e.Meter.Muls += uint64(e.npat * ncat * ns * (3*ns + 1))
	e.Meter.Adds += uint64(e.npat * ncat * ns * 2 * (ns - 1))

	lamr := make([]float64, e.nmat*ns)
	for c := 0; c < e.nmat; c++ {
		for k := 0; k < ns; k++ {
			lamr[c*ns+k] = g.Lambda[k] * e.Mod.Cats[c]
		}
	}

	weights := e.Pat.Weights
	likelihoodAt := func(t float64) (ll, d1, d2 float64) {
		e0 := make([]float64, e.nmat*ns)
		e1 := make([]float64, e.nmat*ns)
		e2 := make([]float64, e.nmat*ns)
		for i, lr := range lamr {
			ex := e.expFn(lr * t)
			e0[i] = ex
			e1[i] = lr * ex
			e2[i] = lr * lr * ex
		}
		e.Meter.Exps += uint64(e.nmat * ns)
		ll, d1, d2 = e.newtonReduce(sumTab, e0, e1, e2, weights)
		return ll + scaleConst, d1, d2
	}

	t := z0
	bestT, bestLL := t, math.Inf(-1)
	for iter := 0; iter < newtonMaxIter; iter++ {
		e.Meter.NewtonIters++
		ll, d1, d2 := likelihoodAt(t)
		if ll > bestLL {
			bestLL, bestT = ll, t
		}
		var next float64
		if d2 < 0 {
			next = t - d1/d2
		} else if d1 > 0 {
			next = t * 2
		} else {
			next = t / 2
		}
		if next < phylotree.MinBranchLength {
			next = phylotree.MinBranchLength
		}
		if next > phylotree.MaxBranchLength {
			next = phylotree.MaxBranchLength
		}
		if math.Abs(next-t) < newtonTol*(1+t) {
			t = next
			break
		}
		t = next
	}
	ll, _, _ := likelihoodAt(t)
	if ll >= bestLL {
		bestLL, bestT = ll, t
	}
	return bestT, bestLL, nil
}
