// Package parsimony implements Fitch maximum parsimony scoring and the
// randomized stepwise-addition-order starting trees RAxML uses to seed its
// maximum likelihood searches ("random stepwise addition sequence Maximum
// Parsimony trees" in the paper's terminology).
//
// Fitch state sets are exactly the 4-bit ambiguity masks of internal/bio, so
// tip states need no conversion: intersection is bitwise AND, union is
// bitwise OR, and a union event costs one mutation weighted by the site
// pattern's multiplicity.
package parsimony

import (
	"fmt"
	"math/rand"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/phylotree"
)

// Score computes the weighted Fitch parsimony score of a complete tree.
func Score(tr *phylotree.Tree, pat *alignment.Patterns) (int, error) {
	if tr.NumTips() != pat.NumTaxa {
		return 0, fmt.Errorf("parsimony: tree has %d tips, alignment %d taxa", tr.NumTips(), pat.NumTaxa)
	}
	s := newScorer(pat)
	return s.score(tr.Tips[0]), nil
}

// scorer holds the per-pattern Fitch state workspace for one tree walk.
type scorer struct {
	pat   *alignment.Patterns
	npat  int
	state [][]byte // workspace per node index
}

func newScorer(pat *alignment.Patterns) *scorer {
	return &scorer{
		pat:   pat,
		npat:  pat.NumPatterns(),
		state: make([][]byte, 2*pat.NumTaxa-2),
	}
}

// score evaluates the Fitch score of the (sub)tree rooted "away" from the
// given tip, i.e. the whole unrooted tree when called with an attached tip.
func (s *scorer) score(root *phylotree.Node) int {
	// Root the walk at the branch (root, root.Back): the total score is the
	// sum of union events below both ends plus unions at the virtual root.
	score := 0
	a := s.states(root, &score)
	b := s.states(root.Back, &score)
	w := s.pat.Weights
	for p := 0; p < s.npat; p++ {
		if a[p]&b[p] == 0 {
			score += w[p]
		}
	}
	return score
}

// states returns the Fitch state-set vector of the subtree behind nd,
// accumulating union events into score.
func (s *scorer) states(nd *phylotree.Node, score *int) []byte {
	if nd.IsTip() {
		return s.pat.Data[nd.Index]
	}
	q := nd.Next.Back
	r := nd.Next.Next.Back
	a := s.states(q, score)
	b := s.states(r, score)
	buf := s.state[nd.Index]
	if buf == nil {
		buf = make([]byte, s.npat)
		s.state[nd.Index] = buf
	}
	w := s.pat.Weights
	for p := 0; p < s.npat; p++ {
		inter := a[p] & b[p]
		if inter != 0 {
			buf[p] = inter
		} else {
			buf[p] = a[p] | b[p]
			*score += w[p]
		}
	}
	return buf
}

// BuildStepwise constructs a randomized stepwise-addition parsimony tree:
// taxa are added in random order, each at the insertion branch that
// minimizes the Fitch score (ties broken uniformly at random). This is the
// starting-tree generator for every inference and bootstrap run.
func BuildStepwise(pat *alignment.Patterns, rng *rand.Rand) (*phylotree.Tree, error) {
	if pat.NumTaxa < 3 {
		return nil, fmt.Errorf("parsimony: need >= 3 taxa, got %d", pat.NumTaxa)
	}
	tr, err := phylotree.NewTree(pat.Names)
	if err != nil {
		return nil, err
	}
	order := rng.Perm(pat.NumTaxa)
	if err := tr.InitTriplet(order[0], order[1], order[2]); err != nil {
		return nil, err
	}
	s := newScorer(pat)
	for _, ti := range order[3:] {
		edges := tr.Edges()
		best := -1
		bestScore := 0
		nBest := 0
		for k, e := range edges {
			if err := tr.InsertTip(ti, e); err != nil {
				return nil, err
			}
			sc := s.score(tr.Tips[ti])
			if err := tr.RemoveTip(ti); err != nil {
				return nil, err
			}
			switch {
			case best == -1 || sc < bestScore:
				best, bestScore, nBest = k, sc, 1
			case sc == bestScore:
				// Reservoir sampling over tied insertions.
				nBest++
				if rng.Intn(nBest) == 0 {
					best = k
				}
			}
		}
		if err := tr.InsertTip(ti, edges[best]); err != nil {
			return nil, err
		}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
