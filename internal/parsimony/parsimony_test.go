package parsimony

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/bio"
	"raxmlcell/internal/phylotree"
)

func pats(t *testing.T, rows map[string]string) *alignment.Patterns {
	t.Helper()
	names := make([]string, 0, len(rows))
	for k := range rows {
		names = append(names, k)
	}
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	var seqs []*bio.Sequence
	for _, n := range names {
		s, err := bio.NewSequence(n, rows[n])
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, s)
	}
	a, err := alignment.New(seqs)
	if err != nil {
		t.Fatal(err)
	}
	return alignment.Compress(a)
}

func TestScoreHandComputed(t *testing.T) {
	// Four taxa, topology ((a,b),(c,d)) as a trifurcation from parsing.
	tr, err := phylotree.ParseNewick("((a:1,b:1):1,c:1,d:1);")
	if err != nil {
		t.Fatal(err)
	}
	p := pats(t, map[string]string{
		// Site 1: a=A b=A c=C d=C -> 1 change on ((a,b),(c,d)).
		// Site 2: all same          -> 0 changes.
		// Site 3: a=A b=C c=A d=C -> 2 changes on this topology.
		"a": "AGA",
		"b": "AGC",
		"c": "CGA",
		"d": "CGC",
	})
	if err := tr.AlignTaxa(p.Names); err != nil {
		t.Fatal(err)
	}
	got, err := Score(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("Score = %d, want 3", got)
	}
}

func TestScoreConstantAlignment(t *testing.T) {
	p := pats(t, map[string]string{
		"a": "AAAA", "b": "AAAA", "c": "AAAA", "d": "AAAA", "e": "AAAA",
	})
	rng := rand.New(rand.NewSource(1))
	tr, err := phylotree.RandomTopology(p.Names, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Score(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("constant alignment score = %d, want 0", got)
	}
}

func TestScoreGapsAreFree(t *testing.T) {
	// Gaps encode as "all states possible": they never force a union event.
	p := pats(t, map[string]string{
		"a": "A---", "b": "A---", "c": "ANNN", "d": "A???",
	})
	rng := rand.New(rand.NewSource(2))
	tr, err := phylotree.RandomTopology(p.Names, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Score(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("gap columns scored %d, want 0", got)
	}
}

func TestScoreTopologyInvariantToRootChoice(t *testing.T) {
	// Score must not depend on which tip anchors the walk; exercise via
	// identical trees compared across all tips using a tiny wrapper.
	rows := map[string]string{}
	rng := rand.New(rand.NewSource(3))
	bases := "ACGT"
	for i := 0; i < 8; i++ {
		var b strings.Builder
		for j := 0; j < 30; j++ {
			b.WriteByte(bases[rng.Intn(4)])
		}
		rows[fmt.Sprintf("t%d", i)] = b.String()
	}
	p := pats(t, rows)
	tr, err := phylotree.RandomTopology(p.Names, rng)
	if err != nil {
		t.Fatal(err)
	}
	s := newScorer(p)
	ref := s.score(tr.Tips[0])
	for i := 1; i < 8; i++ {
		if got := s.score(tr.Tips[i]); got != ref {
			t.Errorf("score from tip %d = %d, want %d", i, got, ref)
		}
	}
}

func TestScoreWeightsMatchExpansion(t *testing.T) {
	// Pattern compression must not change the score: duplicate columns.
	base := map[string]string{
		"a": "ACGT", "b": "AGGT", "c": "ACTT", "d": "GCGA",
	}
	dup := map[string]string{}
	for k, v := range base {
		dup[k] = v + v + v // every column three times
	}
	p1 := pats(t, base)
	p3 := pats(t, dup)
	rng := rand.New(rand.NewSource(4))
	tr, err := phylotree.RandomTopology(p1.Names, rng)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Score(tr, p1)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := Score(tr, p3)
	if err != nil {
		t.Fatal(err)
	}
	if s3 != 3*s1 {
		t.Errorf("triplicated score = %d, want %d", s3, 3*s1)
	}
}

func TestBuildStepwiseValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := map[string]string{}
		bases := "ACGT"
		n := 5 + rng.Intn(15)
		for i := 0; i < n; i++ {
			var b strings.Builder
			for j := 0; j < 40; j++ {
				b.WriteByte(bases[rng.Intn(4)])
			}
			rows[fmt.Sprintf("t%02d", i)] = b.String()
		}
		names := make([]string, 0, n)
		for k := range rows {
			names = append(names, k)
		}
		var seqs []*bio.Sequence
		for i := range names {
			for j := i + 1; j < len(names); j++ {
				if names[j] < names[i] {
					names[i], names[j] = names[j], names[i]
				}
			}
		}
		for _, nm := range names {
			s, _ := bio.NewSequence(nm, rows[nm])
			seqs = append(seqs, s)
		}
		a, _ := alignment.New(seqs)
		p := alignment.Compress(a)
		tr, err := BuildStepwise(p, rng)
		if err != nil {
			return false
		}
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBuildStepwiseBeatsRandom(t *testing.T) {
	// Stepwise-addition parsimony trees should, on average, score clearly
	// better than uniform random topologies on tree-like data.
	rng := rand.New(rand.NewSource(10))
	// Generate tree-like data: two clades with distinct composition.
	rows := map[string]string{}
	for i := 0; i < 12; i++ {
		var b strings.Builder
		for j := 0; j < 60; j++ {
			var c byte
			if i < 6 {
				c = "AACG"[rng.Intn(4)]
			} else {
				c = "TTCG"[rng.Intn(4)]
			}
			b.WriteByte(c)
		}
		rows[fmt.Sprintf("t%02d", i)] = b.String()
	}
	p := pats(t, rows)

	swTotal, rndTotal := 0, 0
	for rep := 0; rep < 5; rep++ {
		sw, err := BuildStepwise(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		s1, err := Score(sw, p)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := phylotree.RandomTopology(p.Names, rng)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Score(rd, p)
		if err != nil {
			t.Fatal(err)
		}
		swTotal += s1
		rndTotal += s2
	}
	if swTotal >= rndTotal {
		t.Errorf("stepwise total %d not better than random total %d", swTotal, rndTotal)
	}
}

func TestBuildStepwiseDeterministic(t *testing.T) {
	rows := map[string]string{
		"a": "ACGTACGTAA", "b": "ACGTACGTCC", "c": "AGGTACGTAA",
		"d": "ACTTACGTGG", "e": "ACGAACGTTT", "f": "ACGTAAGTAA",
	}
	p := pats(t, rows)
	t1, err := BuildStepwise(p, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := BuildStepwise(p, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if t1.Newick() != t2.Newick() {
		t.Error("same seed produced different trees")
	}
}

func TestScoreMismatch(t *testing.T) {
	p := pats(t, map[string]string{"a": "ACGT", "b": "ACGT", "c": "ACGT", "d": "ACGT"})
	tr, err := phylotree.ParseNewick("(a,b,c);")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Score(tr, p); err == nil {
		t.Error("taxon count mismatch accepted")
	}
}
