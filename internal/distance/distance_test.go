package distance

import (
	"math"
	"math/rand"
	"testing"

	"raxmlcell/internal/alignment"
	"raxmlcell/internal/bio"
	"raxmlcell/internal/phylotree"
	"raxmlcell/internal/seqsim"
)

// pathDistances computes the additive (path-length) distance matrix of a
// tree — the input on which NJ is guaranteed to recover the topology.
func pathDistances(tr *phylotree.Tree) *Matrix {
	n := tr.NumTips()
	m := NewMatrix(tr.Taxa)
	// BFS from each tip over the ring structure.
	for i := 0; i < n; i++ {
		dist := map[*phylotree.Node]float64{}
		var walk func(nd *phylotree.Node, acc float64)
		walk = func(nd *phylotree.Node, acc float64) {
			tgt := nd.Back
			acc += nd.Z
			if tgt.IsTip() {
				m.D[i][tgt.Index] = acc
				return
			}
			if _, seen := dist[tgt]; seen {
				return
			}
			dist[tgt] = acc
			for _, r := range tgt.Ring() {
				if r != tgt {
					walk(r, acc)
				}
			}
		}
		walk(tr.Tips[i], 0)
	}
	// Symmetrize exactly.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (m.D[i][j] + m.D[j][i]) / 2
			m.Set(i, j, v)
		}
	}
	return m
}

func TestNJRecoversAdditiveTree(t *testing.T) {
	// NJ is exact on additive distances: feed it the path metric of a
	// random tree and demand RF = 0.
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(600 + seed))
		names := make([]string, 12)
		for i := range names {
			names[i] = string(rune('a' + i))
		}
		truth, err := phylotree.RandomTopology(names, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range truth.Edges() {
			e.SetZ(0.05 + 0.4*rng.Float64())
		}
		m := pathDistances(truth)
		nj, err := NeighborJoining(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := nj.AlignTaxa(truth.Taxa); err != nil {
			t.Fatal(err)
		}
		rf, err := phylotree.RobinsonFoulds(truth, nj)
		if err != nil {
			t.Fatal(err)
		}
		if rf != 0 {
			t.Errorf("seed %d: NJ on additive distances gave RF %d", seed, rf)
		}
		// Branch lengths are recovered too (additive metric).
		bsd, err := phylotree.BranchScoreDistance(truth, nj)
		if err != nil {
			t.Fatal(err)
		}
		if bsd > 1e-6 {
			t.Errorf("seed %d: branch score distance %g on additive input", seed, bsd)
		}
	}
}

func TestJukesCantorBasics(t *testing.T) {
	mk := func(rows ...string) *alignment.Patterns {
		var seqs []*bio.Sequence
		for i, r := range rows {
			s, err := bio.NewSequence(string(rune('a'+i)), r)
			if err != nil {
				t.Fatal(err)
			}
			seqs = append(seqs, s)
		}
		a, err := alignment.New(seqs)
		if err != nil {
			t.Fatal(err)
		}
		return alignment.Compress(a)
	}
	// Identical sequences: distance 0.
	p := mk("ACGTACGT", "ACGTACGT", "AAAAAAAA")
	m, err := JukesCantor(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.D[0][1] != 0 {
		t.Errorf("identical distance = %v", m.D[0][1])
	}
	// 25% mismatch: d = -3/4 ln(1 - 1/3).
	p = mk("ACGTACGT", "ACGTACGA", "AAAAAAAA")
	m, err = JukesCantor(p)
	if err != nil {
		t.Fatal(err)
	}
	want := -0.75 * math.Log(1-4.0/3.0*0.125)
	if math.Abs(m.D[0][1]-want) > 1e-12 {
		t.Errorf("d = %v, want %v", m.D[0][1], want)
	}
	// Saturated pair capped.
	p = mk("AAAAAAAA", "CCCCCCCC", "GGGGGGGG")
	m, err = JukesCantor(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.D[0][1] != maxJCDistance {
		t.Errorf("saturated distance = %v", m.D[0][1])
	}
	// Gap-only overlap capped, not NaN.
	p = mk("----ACGT", "ACGT----", "ACGTACGT")
	m, err = JukesCantor(p)
	if err != nil {
		t.Fatal(err)
	}
	if m.D[0][1] != maxJCDistance {
		t.Errorf("no-overlap distance = %v", m.D[0][1])
	}
	if _, err := JukesCantor(nil); err == nil {
		t.Error("nil patterns accepted")
	}
}

func TestNJOnSimulatedData(t *testing.T) {
	// End to end: simulate, estimate JC distances, build NJ — topology
	// should be close to the truth on high-signal data.
	rng := rand.New(rand.NewSource(611))
	m := seqsim.DefaultModel()
	a, truth, err := seqsim.Generate(seqsim.Params{
		Taxa: 12, Sites: 2000, MeanBranch: 0.08,
	}, m, rng)
	if err != nil {
		t.Fatal(err)
	}
	pat := alignment.Compress(a)
	dm, err := JukesCantor(pat)
	if err != nil {
		t.Fatal(err)
	}
	nj, err := NeighborJoining(dm)
	if err != nil {
		t.Fatal(err)
	}
	if err := truth.AlignTaxa(pat.Names); err != nil {
		t.Fatal(err)
	}
	if err := nj.AlignTaxa(pat.Names); err != nil {
		t.Fatal(err)
	}
	rf, err := phylotree.RobinsonFoulds(truth, nj)
	if err != nil {
		t.Fatal(err)
	}
	// JC distances on GTR+Γ data are mis-specified and some simulated
	// branches are near zero, so allow a few wrong splits (max RF is 18).
	if rf > 8 {
		t.Errorf("NJ on simulated data: RF %d", rf)
	}
}

func TestNJValidation(t *testing.T) {
	m := NewMatrix([]string{"a", "b"})
	if _, err := NeighborJoining(m); err == nil {
		t.Error("2-taxon NJ accepted")
	}
}
